// Command flvet runs the repo's project-specific static-analysis suite
// (internal/analysis) over the module: determinism and robustness
// invariants — no wall-clock or unseeded randomness in deterministic
// paths, no map-iteration order reaching reductions or the trace,
// goroutines only via internal/parallel, no allocations sized from
// unvalidated wire bytes, nil-safe telemetry instruments — enforced at
// vet time instead of discovered by golden-trace diffs after the fact.
//
// Usage:
//
//	flvet ./...             # whole module (what make lint runs)
//	flvet ./internal/core   # one package
//	flvet -list             # print the checkers and their one-line docs
//
// Findings print as file:line:col: checker: message. A finding is
// suppressed by annotating the offending line (or the line above) with
//
//	//flvet:allow <checker>[,<checker>...] -- <reason>
//
// Unused or malformed directives are errors too. Exit status: 0 clean,
// 1 findings, 2 load failure.
package main

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"hieradmo/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, out, errOut io.Writer) int {
	patterns := make([]string, 0, len(args))
	for _, arg := range args {
		switch arg {
		case "-list", "--list":
			for _, c := range analysis.Checkers() {
				fmt.Fprintf(out, "%-10s %s\n", c.Name, c.Doc)
			}
			return 0
		case "-h", "-help", "--help":
			fmt.Fprintln(errOut, "usage: flvet [-list] [packages]")
			return 2
		default:
			if strings.HasPrefix(arg, "-") {
				fmt.Fprintf(errOut, "flvet: unknown flag %q (usage: flvet [-list] [packages])\n", arg)
				return 2
			}
			patterns = append(patterns, arg)
		}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(errOut, "flvet:", err)
		return 2
	}
	_, module, err := analysis.ModuleRoot(cwd)
	if err != nil {
		fmt.Fprintln(errOut, "flvet:", err)
		return 2
	}
	pkgs, err := analysis.LoadModule(cwd, patterns...)
	if err != nil {
		fmt.Fprintln(errOut, "flvet:", err)
		return 2
	}
	diags := analysis.Run(pkgs, analysis.Checkers(), analysis.DefaultPolicy(module))
	for _, d := range diags {
		pos := d.Pos
		if rel, err := filepath.Rel(cwd, pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			pos.Filename = rel
		}
		fmt.Fprintf(out, "%s: %s: %s\n", pos, d.Checker, d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(errOut, "flvet: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		return 1
	}
	return 0
}
