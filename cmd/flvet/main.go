// Command flvet runs the repo's project-specific static-analysis suite
// (internal/analysis) over the module: determinism and robustness
// invariants — no wall-clock or unseeded randomness in deterministic
// paths, no map-iteration order reaching reductions or the trace,
// goroutines only via internal/parallel, no allocations sized from
// unvalidated wire bytes, nil-safe telemetry instruments, complete
// checkpoint registration, allocation-free pinned hot paths, and
// fixed-order float reductions — enforced at vet time instead of
// discovered by golden-trace diffs after the fact.
//
// Usage:
//
//	flvet ./...                  # whole module (what make lint runs)
//	flvet ./internal/core        # one package
//	flvet -list                  # print the checkers and their one-line docs
//	flvet -json ./...            # findings as a JSON array on stdout
//	flvet -baseline analysis_baseline.json ./...
//	flvet -write-baseline analysis_baseline.json ./...
//
// With -baseline, findings recorded in the committed baseline pass as
// accepted debt, new findings fail, and fixed findings shrink the file
// in place — the count only ratchets down. A missing or malformed
// baseline is a hard error, never an empty one.
//
// Findings print as file:line:col: checker: message. A finding is
// suppressed by annotating the offending line (or the line above) with
//
//	//flvet:allow <checker>[,<checker>...] -- <reason>
//
// Unused or malformed directives are errors too. Exit status: 0 clean,
// 1 findings, 2 load/baseline failure.
package main

import (
	"fmt"
	"io"
	"os"
	"strings"

	"hieradmo/internal/analysis"
)

const usage = "usage: flvet [-list] [-json] [-baseline file] [-write-baseline file] [packages]"

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, out, errOut io.Writer) int {
	var (
		patterns      []string
		asJSON        bool
		baselinePath  string
		writeBaseline string
	)
	for i := 0; i < len(args); i++ {
		arg := args[i]
		switch arg {
		case "-list", "--list":
			for _, c := range analysis.Checkers() {
				fmt.Fprintf(out, "%-10s %s\n", c.Name, c.Doc)
			}
			return 0
		case "-json", "--json":
			asJSON = true
		case "-baseline", "--baseline", "-write-baseline", "--write-baseline":
			if i+1 >= len(args) {
				fmt.Fprintf(errOut, "flvet: %s needs a file argument (%s)\n", arg, usage)
				return 2
			}
			i++
			if strings.Contains(arg, "write") {
				writeBaseline = args[i]
			} else {
				baselinePath = args[i]
			}
		case "-h", "-help", "--help":
			fmt.Fprintln(errOut, usage)
			return 2
		default:
			if strings.HasPrefix(arg, "-") {
				fmt.Fprintf(errOut, "flvet: unknown flag %q (%s)\n", arg, usage)
				return 2
			}
			patterns = append(patterns, arg)
		}
	}
	if baselinePath != "" && writeBaseline != "" {
		fmt.Fprintln(errOut, "flvet: -baseline and -write-baseline are mutually exclusive")
		return 2
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(errOut, "flvet:", err)
		return 2
	}
	root, module, err := analysis.ModuleRoot(cwd)
	if err != nil {
		fmt.Fprintln(errOut, "flvet:", err)
		return 2
	}
	pkgs, err := analysis.LoadModule(cwd, patterns...)
	if err != nil {
		fmt.Fprintln(errOut, "flvet:", err)
		return 2
	}
	diags := analysis.Run(pkgs, analysis.Checkers(), analysis.DefaultPolicy(module))
	// Findings are keyed module-relative so baselines and JSON artifacts
	// are machine- and cwd-independent.
	findings := analysis.FindingsOf(diags, root)

	if writeBaseline != "" {
		if err := analysis.WriteBaseline(writeBaseline, findings); err != nil {
			fmt.Fprintln(errOut, "flvet:", err)
			return 2
		}
		fmt.Fprintf(errOut, "flvet: wrote %d finding(s) to %s\n", len(findings), writeBaseline)
		return 0
	}

	stale := 0
	if baselinePath != "" {
		base, err := analysis.LoadBaseline(baselinePath)
		if err != nil {
			fmt.Fprintln(errOut, "flvet:", err)
			return 2
		}
		findings, stale = analysis.ApplyBaseline(findings, base)
		if stale > 0 {
			// Fixed findings ratchet the committed file down in place.
			all := analysis.FindingsOf(diags, root)
			if err := analysis.WriteBaseline(baselinePath, all); err != nil {
				fmt.Fprintln(errOut, "flvet:", err)
				return 2
			}
			fmt.Fprintf(errOut, "flvet: %d baseline entr(ies) fixed; shrank %s — commit the update\n",
				stale, baselinePath)
		}
	}

	if asJSON {
		data, err := analysis.MarshalFindings(findings)
		if err != nil {
			fmt.Fprintln(errOut, "flvet:", err)
			return 2
		}
		out.Write(data)
	} else {
		for _, f := range findings {
			fmt.Fprintf(out, "%s:%d:%d: %s: %s\n", f.File, f.Line, f.Col, f.Checker, f.Message)
		}
	}
	if len(findings) > 0 {
		word := "finding(s)"
		if baselinePath != "" {
			word = "new finding(s) over baseline"
		}
		fmt.Fprintf(errOut, "flvet: %d %s in %d package(s)\n", len(findings), word, len(pkgs))
		return 1
	}
	return 0
}
