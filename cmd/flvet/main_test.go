package main

import (
	"strings"
	"testing"
)

// TestListCheckers pins the suite the -list flag advertises.
func TestListCheckers(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("flvet -list exited %d: %s", code, errOut.String())
	}
	for _, name := range []string{"detwall", "maporder", "goexec", "wirealloc", "nilsink"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output is missing checker %q:\n%s", name, out.String())
		}
	}
}

// TestUnknownFlag exercises the usage-error path.
func TestUnknownFlag(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-frobnicate"}, &out, &errOut); code != 2 {
		t.Fatalf("unknown flag exited %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "unknown flag") {
		t.Errorf("stderr = %q, want an unknown-flag message", errOut.String())
	}
}

// TestModuleIsClean is the driver-level self-gate: flvet over the whole
// module must exit 0 with no findings, exactly as make lint runs it.
func TestModuleIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the entire module")
	}
	var out, errOut strings.Builder
	if code := run(nil, &out, &errOut); code != 0 {
		t.Fatalf("flvet ./... exited %d:\n%s%s", code, out.String(), errOut.String())
	}
	if out.Len() != 0 {
		t.Errorf("clean tree still printed findings:\n%s", out.String())
	}
}
