package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hieradmo/internal/analysis"
)

// TestListCheckers pins the suite the -list flag advertises.
func TestListCheckers(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("flvet -list exited %d: %s", code, errOut.String())
	}
	for _, name := range []string{
		"detwall", "maporder", "fporder", "goexec",
		"wirealloc", "nilsink", "ckptstate", "allocfree",
	} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output is missing checker %q:\n%s", name, out.String())
		}
	}
}

// TestUnknownFlag exercises the usage-error path.
func TestUnknownFlag(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-frobnicate"}, &out, &errOut); code != 2 {
		t.Fatalf("unknown flag exited %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "unknown flag") {
		t.Errorf("stderr = %q, want an unknown-flag message", errOut.String())
	}
}

// TestModuleIsClean is the driver-level self-gate: flvet over the whole
// module must exit 0 with no findings, exactly as make lint runs it.
func TestModuleIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the entire module")
	}
	var out, errOut strings.Builder
	if code := run(nil, &out, &errOut); code != 0 {
		t.Fatalf("flvet ./... exited %d:\n%s%s", code, out.String(), errOut.String())
	}
	if out.Len() != 0 {
		t.Errorf("clean tree still printed findings:\n%s", out.String())
	}
}

// TestBaselineFlagErrors pins the hard-failure paths of the ratchet: a
// missing file, a malformed file, and the mutually-exclusive flag pair
// must all exit 2 before any analysis runs its course.
func TestBaselineFlagErrors(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the entire module")
	}
	t.Run("missing", func(t *testing.T) {
		var out, errOut strings.Builder
		path := filepath.Join(t.TempDir(), "nope.json")
		if code := run([]string{"-baseline", path, "./internal/tensor"}, &out, &errOut); code != 2 {
			t.Fatalf("missing baseline exited %d, want 2: %s", code, errOut.String())
		}
		if !strings.Contains(errOut.String(), "-write-baseline") {
			t.Errorf("stderr = %q, want a hint to run -write-baseline", errOut.String())
		}
	})
	t.Run("malformed", func(t *testing.T) {
		var out, errOut strings.Builder
		path := filepath.Join(t.TempDir(), "bad.json")
		if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
			t.Fatal(err)
		}
		if code := run([]string{"-baseline", path, "./internal/tensor"}, &out, &errOut); code != 2 {
			t.Fatalf("malformed baseline exited %d, want 2: %s", code, errOut.String())
		}
		if !strings.Contains(errOut.String(), "malformed") {
			t.Errorf("stderr = %q, want a malformed-JSON message", errOut.String())
		}
	})
	t.Run("exclusive", func(t *testing.T) {
		var out, errOut strings.Builder
		if code := run([]string{"-baseline", "a.json", "-write-baseline", "b.json"}, &out, &errOut); code != 2 {
			t.Fatalf("flag pair exited %d, want 2", code)
		}
	})
	t.Run("missing-value", func(t *testing.T) {
		var out, errOut strings.Builder
		if code := run([]string{"-baseline"}, &out, &errOut); code != 2 {
			t.Fatalf("valueless -baseline exited %d, want 2", code)
		}
	})
}

// TestJSONOutput runs one clean package under -json and requires a
// parseable (possibly empty) findings array on stdout.
func TestJSONOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the entire module")
	}
	var out, errOut strings.Builder
	if code := run([]string{"-json", "./internal/tensor"}, &out, &errOut); code != 0 {
		t.Fatalf("flvet -json exited %d:\n%s%s", code, out.String(), errOut.String())
	}
	var findings []analysis.Finding
	if err := json.Unmarshal([]byte(out.String()), &findings); err != nil {
		t.Fatalf("stdout is not a findings array: %v\n%s", err, out.String())
	}
	if len(findings) != 0 {
		t.Errorf("clean package produced findings: %v", findings)
	}
}

// TestWriteAndApplyBaseline round-trips the ratchet on a clean package:
// writing a baseline then checking against it must pass and leave the
// file intact (an empty baseline has nothing to shrink).
func TestWriteAndApplyBaseline(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the entire module")
	}
	path := filepath.Join(t.TempDir(), "base.json")
	var out, errOut strings.Builder
	if code := run([]string{"-write-baseline", path, "./internal/tensor"}, &out, &errOut); code != 0 {
		t.Fatalf("-write-baseline exited %d: %s", code, errOut.String())
	}
	if code := run([]string{"-baseline", path, "./internal/tensor"}, &out, &errOut); code != 0 {
		t.Fatalf("-baseline recheck exited %d:\n%s%s", code, out.String(), errOut.String())
	}
}
