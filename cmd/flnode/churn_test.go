package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeStubRegistry gives run() a parseable registry so flag validation is
// reached; the tests below all fail before any socket is opened.
func writeStubRegistry(t *testing.T) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), "reg.json")
	if err := os.WriteFile(p, []byte(`{"cloud":"127.0.0.1:1"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestJoinRequiresWorkerRole(t *testing.T) {
	err := run([]string{
		"-role", "cloud", "-registry", writeStubRegistry(t),
		"-churn-plan", "join:worker-0-1@3", "-join",
	}, nil)
	if err == nil || !strings.Contains(err.Error(), "worker role") {
		t.Errorf("-join on cloud role = %v, want worker-role refusal", err)
	}
}

func TestJoinRequiresChurnPlan(t *testing.T) {
	err := run([]string{
		"-role", "worker", "-edge", "0", "-index", "1",
		"-registry", writeStubRegistry(t), "-join",
	}, nil)
	if err == nil || !strings.Contains(err.Error(), "churn-plan") {
		t.Errorf("-join without plan = %v, want churn-plan requirement", err)
	}
}

func TestJoinRequiresScheduledEntry(t *testing.T) {
	// The plan joins worker-0-1; launching worker-1-0 with -join is a
	// deployment mistake the flag must catch.
	err := run([]string{
		"-role", "worker", "-edge", "1", "-index", "0",
		"-registry", writeStubRegistry(t),
		"-churn-plan", "join:worker-0-1@3", "-join",
	}, nil)
	if err == nil || !strings.Contains(err.Error(), "no late join") {
		t.Errorf("-join for unscheduled worker = %v, want no-late-join refusal", err)
	}
}

func TestBadMigrationPolicy(t *testing.T) {
	err := run([]string{
		"-role", "cloud", "-registry", writeStubRegistry(t),
		"-migration", "teleport",
	}, nil)
	if err == nil {
		t.Error("unknown migration policy accepted")
	}
}
