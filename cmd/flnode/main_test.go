package main

import (
	"encoding/json"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunValidation(t *testing.T) {
	if err := run([]string{"-role", "cloud"}); err == nil || !strings.Contains(err.Error(), "registry") {
		t.Errorf("missing registry err = %v", err)
	}
	dir := t.TempDir()
	reg := filepath.Join(dir, "reg.json")
	if err := os.WriteFile(reg, []byte(`{"cloud":"127.0.0.1:1"}`), 0o600); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-role", "pilot", "-registry", reg}); err == nil {
		t.Error("unknown role accepted")
	}
	if err := run([]string{"-role", "cloud", "-registry", filepath.Join(dir, "missing.json")}); err == nil {
		t.Error("missing registry file accepted")
	}
	badReg := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(badReg, []byte("{nope"), 0o600); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-role", "cloud", "-registry", badReg}); err == nil {
		t.Error("malformed registry accepted")
	}
	if err := run([]string{"-role", "cloud", "-registry", reg, "-scale", "galactic"}); err == nil {
		t.Error("unknown scale accepted")
	}
	if err := run([]string{"-bogus-flag"}); err == nil {
		t.Error("bad flag accepted")
	}
}

// TestHelperProcess is the re-exec target for the multi-process test: it
// runs one flnode role and exits.
func TestHelperProcess(t *testing.T) {
	if os.Getenv("FLNODE_HELPER") != "1" {
		t.Skip("helper process only")
	}
	args := strings.Split(os.Getenv("FLNODE_ARGS"), " ")
	if err := run(args); err != nil {
		fmt.Fprintln(os.Stderr, "helper:", err)
		os.Exit(1)
	}
	os.Exit(0)
}

// TestMultiProcessDeployment spawns seven REAL OS processes (1 cloud, 2
// edges, 4 workers) that talk over loopback TCP through a shared registry
// file — the closest the test suite gets to the paper's physical testbed.
func TestMultiProcessDeployment(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process test skipped in -short mode")
	}
	dir := t.TempDir()

	// Reserve seven distinct loopback ports.
	ids := []string{"cloud", "edge-0", "edge-1",
		"worker-0-0", "worker-0-1", "worker-1-0", "worker-1-1"}
	registry := make(map[string]string, len(ids))
	var listeners []net.Listener
	for _, id := range ids {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners = append(listeners, ln)
		registry[id] = ln.Addr().String()
	}
	for _, ln := range listeners {
		ln.Close()
	}
	regPath := filepath.Join(dir, "reg.json")
	raw, err := json.Marshal(registry)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(regPath, raw, 0o600); err != nil {
		t.Fatal(err)
	}

	common := "-registry " + regPath + " -model logistic -classes 3"
	spawn := func(args string) *exec.Cmd {
		cmd := exec.Command(os.Args[0], "-test.run", "TestHelperProcess")
		cmd.Env = append(os.Environ(),
			"FLNODE_HELPER=1",
			"FLNODE_ARGS="+args+" "+common)
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		return cmd
	}

	var workers []*exec.Cmd
	for _, args := range []string{
		"-role worker -edge 0 -index 0",
		"-role worker -edge 0 -index 1",
		"-role worker -edge 1 -index 0",
		"-role worker -edge 1 -index 1",
		"-role edge -edge 0",
		"-role edge -edge 1",
	} {
		cmd := spawn(args)
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		workers = append(workers, cmd)
	}
	cloud := spawn("-role cloud")
	if err := cloud.Run(); err != nil {
		t.Fatalf("cloud process failed: %v", err)
	}
	for i, cmd := range workers {
		if err := cmd.Wait(); err != nil {
			t.Errorf("node %d failed: %v", i, err)
		}
	}
}
