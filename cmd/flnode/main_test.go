package main

import (
	"encoding/json"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestRunValidation(t *testing.T) {
	if err := run([]string{"-role", "cloud"}, nil); err == nil || !strings.Contains(err.Error(), "registry") {
		t.Errorf("missing registry err = %v", err)
	}
	dir := t.TempDir()
	reg := filepath.Join(dir, "reg.json")
	if err := os.WriteFile(reg, []byte(`{"cloud":"127.0.0.1:1"}`), 0o600); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-role", "pilot", "-registry", reg}, nil); err == nil {
		t.Error("unknown role accepted")
	}
	if err := run([]string{"-role", "cloud", "-registry", filepath.Join(dir, "missing.json")}, nil); err == nil {
		t.Error("missing registry file accepted")
	}
	badReg := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(badReg, []byte("{nope"), 0o600); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-role", "cloud", "-registry", badReg}, nil); err == nil {
		t.Error("malformed registry accepted")
	}
	if err := run([]string{"-role", "cloud", "-registry", reg, "-scale", "galactic"}, nil); err == nil {
		t.Error("unknown scale accepted")
	}
	if err := run([]string{"-bogus-flag"}, nil); err == nil {
		t.Error("bad flag accepted")
	}
}

// TestHelperProcess is the re-exec target for the multi-process tests: it
// runs one flnode role with the real signal handling and exit-code mapping,
// exactly as the installed binary would.
func TestHelperProcess(t *testing.T) {
	if os.Getenv("FLNODE_HELPER") != "1" {
		t.Skip("helper process only")
	}
	args := strings.Split(os.Getenv("FLNODE_ARGS"), " ")
	os.Exit(mainExit(args, installInterrupt("flnode")))
}

// writeRegistry reserves seven distinct loopback ports (1 cloud, 2 edges, 4
// workers), writes the node-ID → host:port registry JSON into dir, and
// returns its path.
func writeRegistry(t *testing.T, dir string) string {
	t.Helper()
	ids := []string{"cloud", "edge-0", "edge-1",
		"worker-0-0", "worker-0-1", "worker-1-0", "worker-1-1"}
	registry := make(map[string]string, len(ids))
	var listeners []net.Listener
	for _, id := range ids {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners = append(listeners, ln)
		registry[id] = ln.Addr().String()
	}
	for _, ln := range listeners {
		ln.Close()
	}
	regPath := filepath.Join(dir, "reg.json")
	raw, err := json.Marshal(registry)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(regPath, raw, 0o600); err != nil {
		t.Fatal(err)
	}
	return regPath
}

// spawnNode re-execs the test binary as one flnode process.
func spawnNode(args, common string) *exec.Cmd {
	cmd := exec.Command(os.Args[0], "-test.run", "TestHelperProcess")
	cmd.Env = append(os.Environ(),
		"FLNODE_HELPER=1",
		"FLNODE_ARGS="+args+" "+common)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	return cmd
}

// TestMultiProcessDeployment spawns seven REAL OS processes (1 cloud, 2
// edges, 4 workers) that talk over loopback TCP through a shared registry
// file — the closest the test suite gets to the paper's physical testbed.
func TestMultiProcessDeployment(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process test skipped in -short mode")
	}
	dir := t.TempDir()
	common := "-registry " + writeRegistry(t, dir) + " -model logistic -classes 3"

	var workers []*exec.Cmd
	for _, args := range []string{
		"-role worker -edge 0 -index 0",
		"-role worker -edge 0 -index 1",
		"-role worker -edge 1 -index 0",
		"-role worker -edge 1 -index 1",
		"-role edge -edge 0",
		"-role edge -edge 1",
	} {
		cmd := spawnNode(args, common)
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		workers = append(workers, cmd)
	}
	cloud := spawnNode("-role cloud", common)
	if err := cloud.Run(); err != nil {
		t.Fatalf("cloud process failed: %v", err)
	}
	for i, cmd := range workers {
		if err := cmd.Wait(); err != nil {
			t.Errorf("node %d failed: %v", i, err)
		}
	}
}

// TestMultiProcessKillRestart is the crash-recovery acceptance test at the
// process level: a full TCP deployment runs with checkpointing, one worker
// process is SIGKILLed mid-run (no chance to flush anything), and a fresh
// process with the same arguments plus -resume reloads its snapshot and
// rejoins. The deployment runs in quorum mode so the cohort rides out the
// outage, and the whole run — cloud included — must still finish cleanly.
func TestMultiProcessKillRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process test skipped in -short mode")
	}
	dir := t.TempDir()
	ckptDir := filepath.Join(dir, "ckpt")
	if err := os.Mkdir(ckptDir, 0o755); err != nil {
		t.Fatal(err)
	}
	common := strings.Join([]string{
		"-registry", writeRegistry(t, dir),
		"-model", "logistic",
		"-classes", "3",
		"-min-quorum", "0.4",
		"-straggler-deadline", "300ms",
		"-recv-timeout", "10s",
		"-checkpoint-dir", ckptDir,
	}, " ")

	var others []*exec.Cmd
	for _, args := range []string{
		"-role worker -edge 0 -index 0",
		"-role worker -edge 1 -index 0",
		"-role worker -edge 1 -index 1",
		"-role edge -edge 0",
		"-role edge -edge 1",
	} {
		cmd := spawnNode(args, common)
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		others = append(others, cmd)
	}
	victim := spawnNode("-role worker -edge 0 -index 1", common)
	if err := victim.Start(); err != nil {
		t.Fatal(err)
	}
	cloud := spawnNode("-role cloud", common)
	if err := cloud.Start(); err != nil {
		t.Fatal(err)
	}

	// SIGKILL the victim as soon as it has written its first snapshot.
	pattern := filepath.Join(ckptDir, "worker-0-1-*.ckpt")
	deadline := time.Now().Add(60 * time.Second)
	for {
		if matches, _ := filepath.Glob(pattern); len(matches) > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("victim never wrote a snapshot")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := victim.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	if err := victim.Wait(); err == nil {
		t.Fatal("SIGKILLed worker exited cleanly")
	}

	// Relaunch with the same arguments plus -resume: the new process reloads
	// the snapshot the dead one left behind and rejoins the protocol.
	respawned := spawnNode("-role worker -edge 0 -index 1 -resume", common)
	if err := respawned.Start(); err != nil {
		t.Fatal(err)
	}

	if err := cloud.Wait(); err != nil {
		t.Fatalf("cloud process failed: %v", err)
	}
	if err := respawned.Wait(); err != nil {
		t.Errorf("respawned worker failed: %v", err)
	}
	for i, cmd := range others {
		if err := cmd.Wait(); err != nil {
			t.Errorf("node %d failed: %v", i, err)
		}
	}
}
