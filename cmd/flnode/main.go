// Command flnode runs ONE node of a multi-process HierAdMo deployment: a
// cloud, an edge, or a worker, addressed through a shared JSON registry
// mapping node IDs to host:port. Every process regenerates the identical
// synthetic workload deterministically from the shared seed, so no training
// data crosses the wire — only models, momenta, and interval accumulators,
// exactly as Algorithm 1 prescribes.
//
// A 4-worker, 2-edge deployment on one machine:
//
//	cat > reg.json <<'EOF'
//	{"cloud":"127.0.0.1:7000",
//	 "edge-0":"127.0.0.1:7001","edge-1":"127.0.0.1:7002",
//	 "worker-0-0":"127.0.0.1:7010","worker-0-1":"127.0.0.1:7011",
//	 "worker-1-0":"127.0.0.1:7012","worker-1-1":"127.0.0.1:7013"}
//	EOF
//	flnode -role worker -edge 0 -index 0 -registry reg.json &
//	flnode -role worker -edge 0 -index 1 -registry reg.json &
//	flnode -role worker -edge 1 -index 0 -registry reg.json &
//	flnode -role worker -edge 1 -index 1 -registry reg.json &
//	flnode -role edge -edge 0 -registry reg.json &
//	flnode -role edge -edge 1 -registry reg.json &
//	flnode -role cloud -registry reg.json          # prints the result
//
// With -checkpoint-dir every node snapshots its state after each completed
// protocol unit, so a crashed or SIGKILLed node can be relaunched with the
// same arguments plus -resume: it reloads its newest snapshot, replays at
// most one interval of local compute, and rejoins the protocol. SIGINT or
// SIGTERM requests a graceful shutdown — the node stops at its next
// interruptible point and exits with code 3 (resumable); a second signal
// aborts immediately with code 4.
//
// Dynamic membership: give every node the same -churn-plan (and
// -retier-every / -migration) and the deployment replays the trace in
// lockstep. A scheduled late joiner is simply started whenever convenient
// with -join — it blocks until its edge admits it at the planned round:
//
//	flnode -role worker -edge 0 -index 1 -registry reg.json \
//	    -churn-plan "join:worker-0-1@3" -join
//
// Byzantine robustness: give every node the same -attack-plan /
// -attack-seed / -aggregator flags and the deployment replays the same
// adversarial scenario the single-process runtime would — attacking
// workers corrupt their own outgoing reports, edges and the cloud apply
// the selected robust rule to whatever arrives.
//
// N-tier topologies: give every node the same -topology spec and launch one
// "tier" role process per tree node, addressed by -level/-index; registry
// keys are the spec's node IDs (name-index). Level 0 prints the result,
// level depth-1 trains a leaf shard:
//
//	flnode -role tier -level 0 -index 0 -registry reg.json \
//	    -topology "cloud:tau=20/edge*2:tau=10/worker*2"     # the root
//	flnode -role tier -level 2 -index 3 -registry reg.json \
//	    -topology "cloud:tau=20/edge*2:tau=10/worker*2"     # leaf worker-3
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"hieradmo/internal/cluster"
	"hieradmo/internal/experiment"
	"hieradmo/internal/fl"
	"hieradmo/internal/membership"
	"hieradmo/internal/robust"
	"hieradmo/internal/telemetry"
	"hieradmo/internal/topology"
	"hieradmo/internal/transport"
)

func main() {
	os.Exit(mainExit(os.Args[1:], installInterrupt("flnode")))
}

// mainExit runs the node and maps the outcome to the process exit code:
// 0 success, 1 failure, 3 gracefully interrupted (state checkpointed when
// -checkpoint-dir is set; relaunch with -resume to continue).
func mainExit(args []string, interrupt <-chan struct{}) int {
	if err := run(args, interrupt); err != nil {
		fmt.Fprintln(os.Stderr, "flnode:", err)
		if errors.Is(err, cluster.ErrInterrupted) {
			return 3
		}
		return 1
	}
	return 0
}

// installInterrupt returns a channel closed on the first SIGINT/SIGTERM,
// requesting a graceful checkpoint-and-stop. A second signal aborts the
// process immediately with exit code 4.
func installInterrupt(name string) <-chan struct{} {
	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	interrupt := make(chan struct{})
	//flvet:allow goexec -- signal watcher must outlive the run loop; parallel.ForEach is for bounded fan-out, not daemons
	go func() {
		<-sigs
		fmt.Fprintf(os.Stderr, "%s: shutdown requested, stopping at the next snapshot point (signal again to abort)\n", name)
		close(interrupt)
		<-sigs
		fmt.Fprintf(os.Stderr, "%s: aborted\n", name)
		os.Exit(4)
	}()
	return interrupt
}

func run(args []string, interrupt <-chan struct{}) error {
	fs := flag.NewFlagSet("flnode", flag.ContinueOnError)
	var (
		role          = fs.String("role", "", `node role: "cloud", "edge", "worker", or "tier" (-topology deployments)`)
		edgeIdx       = fs.Int("edge", 0, "edge index ℓ (edge and worker roles)")
		workerIdx     = fs.Int("index", 0, "worker index i within the edge (worker role), or node index within the level (tier role)")
		topologySpec  = fs.String("topology", "", `N-tier aggregation tree spec like "cloud:tau=20/edge*2:tau=10/worker*2" (tier role; must match across all nodes)`)
		levelIdx      = fs.Int("level", 0, "tree level of this node, 0 = root (tier role)")
		registryPath  = fs.String("registry", "", "path to the JSON node-ID → host:port registry")
		datasetName   = fs.String("dataset", "mnist", "dataset: mnist|cifar10|imagenet|har")
		modelName     = fs.String("model", "logistic", "model: linear|logistic|cnn|cnn-gap|vgg-mini|resnet-mini")
		classes       = fs.Int("classes", 0, "x-class non-IID assignment (0 = IID)")
		reduced       = fs.Bool("reduced", false, "run HierAdMo-R instead of adaptive HierAdMo")
		scaleName     = fs.String("scale", "bench", `"bench" or "default"`)
		seed          = fs.Uint64("seed", 0, "override seed (must match across all nodes)")
		minQuorum     = fs.Float64("min-quorum", 0, "fraction of reporters an aggregation needs (0 or 1 = strict full cohort)")
		straggler     = fs.Duration("straggler-deadline", 0, "how long an aggregation waits for the full cohort before proceeding with a quorum")
		recvTO        = fs.Duration("recv-timeout", 0, "receive timeout per blocking wait (default 60s)")
		checkpointDir = fs.String("checkpoint-dir", "", "snapshot node state into this directory after every completed round (enables crash recovery)")
		resume        = fs.Bool("resume", false, "reload the newest snapshot from -checkpoint-dir and rejoin the protocol")

		churnSpec   = fs.String("churn-plan", "", `churn trace file, or inline spec like "join:worker-0-1@3,leave:worker-1-0@9" (must match across all nodes)`)
		retierEvery = fs.Int("retier-every", 0, "re-tier workers across edges every this many cloud syncs (0 disables; must match across all nodes)")
		migration   = fs.String("migration", "zero", "gammaEdge migration policy on cohort change: zero|carry|rescale (must match across all nodes)")
		join        = fs.Bool("join", false, "require that the churn plan schedules this worker as a late joiner (worker role; the node then waits to be admitted mid-run)")

		attackSpec = fs.String("attack-plan", "", `Byzantine attack spec like "signflip:worker-0-1@1" (kinds: signflip|scale|noise|replay; must match across all nodes)`)
		attackSeed = fs.Uint64("attack-seed", 1, "seed for the deterministic noise-attack draws (must match across all nodes)")
		aggregator = fs.String("aggregator", "mean", `aggregation rule (mean|median|trimmed|clip|cosine), or per tier like "edge=median,cloud=mean" (must match across all nodes)`)
		trim       = fs.Float64("trim", 0.2, "per-tail trim fraction for -aggregator trimmed, in [0, 0.5) (must match across all nodes)")
		clipNorm   = fs.Float64("clip", 10, "max L2 deviation norm for -aggregator clip (must match across all nodes)")
		cosMin     = fs.Float64("cos-min", 0, "minimum cosine against the cohort's median deviation for -aggregator cosine, in [-1, 1] (must match across all nodes)")

		traceOut    = fs.String("trace-out", "", "write this node's JSONL event trace to this path")
		metricsAddr = fs.String("metrics-addr", "", `serve Prometheus /metrics and /debug/pprof on this address (e.g. "127.0.0.1:9090"; ":0" picks a port)`)
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *registryPath == "" {
		return fmt.Errorf("-registry is required")
	}
	raw, err := os.ReadFile(*registryPath)
	if err != nil {
		return fmt.Errorf("read registry: %w", err)
	}
	var registry map[string]string
	if err := json.Unmarshal(raw, &registry); err != nil {
		return fmt.Errorf("parse registry: %w", err)
	}

	var s experiment.Scale
	switch *scaleName {
	case "bench":
		s = experiment.BenchScale()
	case "default":
		s = experiment.DefaultScale()
	default:
		return fmt.Errorf("unknown scale %q", *scaleName)
	}
	if *seed > 0 {
		s.Seed = *seed
	}
	cfg, err := experiment.BuildConfig(experiment.Workload{
		Dataset:          *datasetName,
		Model:            *modelName,
		ClassesPerWorker: *classes,
	}, s)
	if err != nil {
		return err
	}
	sink, boundAddr, stopTelemetry, err := telemetry.Setup(*traceOut, *metricsAddr)
	if err != nil {
		return err
	}
	defer stopTelemetry()
	if boundAddr != "" {
		fmt.Fprintf(os.Stderr, "flnode: serving /metrics and /debug/pprof on http://%s\n", boundAddr)
	}
	churnPlan, err := loadChurnPlan(*churnSpec)
	if err != nil {
		return err
	}
	migrate, err := membership.ParseMigrationPolicy(*migration)
	if err != nil {
		return err
	}
	if *join {
		if *role != "worker" {
			return fmt.Errorf("-join only applies to the worker role")
		}
		if churnPlan == nil {
			return fmt.Errorf("-join needs a -churn-plan that schedules this worker's entry")
		}
		ref := membership.Ref{Edge: *edgeIdx, Index: *workerIdx}
		scheduled := false
		for _, ev := range churnPlan.Events {
			if ev.Action == membership.ActionJoin && ev.Worker == ref && ev.Round > 1 {
				scheduled = true
			}
		}
		if !scheduled {
			return fmt.Errorf("-join: the churn plan schedules no late join for %s", ref.NodeID())
		}
	}
	attackPlan, err := robust.ParsePlan(*attackSpec, *attackSeed)
	if err != nil {
		return err
	}
	edgeAgg, cloudAgg, err := robust.ParseTierSpecs(*aggregator, *trim, *clipNorm, *cosMin)
	if err != nil {
		return err
	}
	opts := cluster.Options{
		Adaptive:          !*reduced,
		MinQuorum:         *minQuorum,
		StragglerDeadline: *straggler,
		RecvTimeout:       *recvTO,
		CheckpointDir:     *checkpointDir,
		Resume:            *resume,
		Interrupt:         interrupt,
		Telemetry:         sink,
		ChurnPlan:         churnPlan,
		RetierEvery:       *retierEvery,
		Migration:         migrate,
		AttackPlan:        attackPlan,
		EdgeAggregator:    edgeAgg,
		CloudAggregator:   cloudAgg,
	}

	// listen opens this node's endpoint and mirrors its send retries onto
	// the sink (the multi-process counterpart of TCPNetwork.SetTelemetry).
	listen := func(id string) (transport.Endpoint, error) {
		ep, err := transport.ListenStatic(id, registry)
		if err != nil {
			return nil, err
		}
		if ts, ok := ep.(transport.TelemetrySetter); ok {
			ts.SetTelemetry(sink)
		}
		return ep, nil
	}

	if *topologySpec != "" {
		if *role != "tier" {
			return fmt.Errorf("-topology deployments use -role tier (got %q)", *role)
		}
		topo, err := topology.Parse(*topologySpec)
		if err != nil {
			return err
		}
		opts.Topology = topo
		if *levelIdx < 0 || *levelIdx >= topo.Depth() || *workerIdx < 0 || *workerIdx >= topo.Width(*levelIdx) {
			return fmt.Errorf("no node at level %d index %d in topology %q", *levelIdx, *workerIdx, topo)
		}
		ep, err := listen(topo.NodeID(*levelIdx, *workerIdx))
		if err != nil {
			return err
		}
		defer ep.Close()
		res, err := cluster.RunTreeNode(cfg, *levelIdx, *workerIdx, ep, opts)
		if err != nil {
			return err
		}
		if res != nil {
			fmt.Println(res)
			if res.AttackReport != nil {
				fmt.Println(res.AttackReport)
			}
		}
		return nil
	}

	switch *role {
	case "cloud":
		return runCloud(cfg, listen, opts)
	case "edge":
		ep, err := listen(cluster.EdgeID(*edgeIdx))
		if err != nil {
			return err
		}
		defer ep.Close()
		return cluster.RunEdgeNode(cfg, *edgeIdx, ep, opts)
	case "worker":
		ep, err := listen(cluster.WorkerID(*edgeIdx, *workerIdx))
		if err != nil {
			return err
		}
		defer ep.Close()
		return cluster.RunWorkerNode(cfg, *edgeIdx, *workerIdx, ep, opts)
	case "tier":
		return fmt.Errorf("-role tier requires -topology")
	default:
		return fmt.Errorf("unknown role %q (want cloud, edge, worker, or tier)", *role)
	}
}

func runCloud(cfg *fl.Config, listen func(string) (transport.Endpoint, error), opts cluster.Options) error {
	ep, err := listen(cluster.CloudID)
	if err != nil {
		return err
	}
	defer ep.Close()
	res, err := cluster.RunCloudNode(cfg, ep, opts)
	if err != nil {
		return err
	}
	fmt.Println(res)
	if res.Membership != nil {
		fmt.Println(res.Membership)
	}
	if res.AttackReport != nil {
		fmt.Println(res.AttackReport)
	}
	return nil
}

// loadChurnPlan resolves the -churn-plan flag: a path to a churn trace
// file when one exists at that path, otherwise an inline event spec. Empty
// means no churn (nil plan).
func loadChurnPlan(spec string) (*membership.Plan, error) {
	if spec == "" {
		return nil, nil
	}
	if f, err := os.Open(spec); err == nil {
		defer f.Close()
		plan, err := membership.ParseTrace(f)
		if err != nil {
			return nil, fmt.Errorf("churn trace %s: %w", spec, err)
		}
		return &plan, nil
	}
	plan, err := membership.ParseSpec(spec)
	if err != nil {
		return nil, err
	}
	return &plan, nil
}
