// Command flnode runs ONE node of a multi-process HierAdMo deployment: a
// cloud, an edge, or a worker, addressed through a shared JSON registry
// mapping node IDs to host:port. Every process regenerates the identical
// synthetic workload deterministically from the shared seed, so no training
// data crosses the wire — only models, momenta, and interval accumulators,
// exactly as Algorithm 1 prescribes.
//
// A 4-worker, 2-edge deployment on one machine:
//
//	cat > reg.json <<'EOF'
//	{"cloud":"127.0.0.1:7000",
//	 "edge-0":"127.0.0.1:7001","edge-1":"127.0.0.1:7002",
//	 "worker-0-0":"127.0.0.1:7010","worker-0-1":"127.0.0.1:7011",
//	 "worker-1-0":"127.0.0.1:7012","worker-1-1":"127.0.0.1:7013"}
//	EOF
//	flnode -role worker -edge 0 -index 0 -registry reg.json &
//	flnode -role worker -edge 0 -index 1 -registry reg.json &
//	flnode -role worker -edge 1 -index 0 -registry reg.json &
//	flnode -role worker -edge 1 -index 1 -registry reg.json &
//	flnode -role edge -edge 0 -registry reg.json &
//	flnode -role edge -edge 1 -registry reg.json &
//	flnode -role cloud -registry reg.json          # prints the result
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"hieradmo/internal/cluster"
	"hieradmo/internal/experiment"
	"hieradmo/internal/fl"
	"hieradmo/internal/transport"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "flnode:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("flnode", flag.ContinueOnError)
	var (
		role         = fs.String("role", "", `node role: "cloud", "edge", or "worker"`)
		edgeIdx      = fs.Int("edge", 0, "edge index ℓ (edge and worker roles)")
		workerIdx    = fs.Int("index", 0, "worker index i within the edge (worker role)")
		registryPath = fs.String("registry", "", "path to the JSON node-ID → host:port registry")
		datasetName  = fs.String("dataset", "mnist", "dataset: mnist|cifar10|imagenet|har")
		modelName    = fs.String("model", "logistic", "model: linear|logistic|cnn|cnn-gap|vgg-mini|resnet-mini")
		classes      = fs.Int("classes", 0, "x-class non-IID assignment (0 = IID)")
		reduced      = fs.Bool("reduced", false, "run HierAdMo-R instead of adaptive HierAdMo")
		scaleName    = fs.String("scale", "bench", `"bench" or "default"`)
		seed         = fs.Uint64("seed", 0, "override seed (must match across all nodes)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *registryPath == "" {
		return fmt.Errorf("-registry is required")
	}
	raw, err := os.ReadFile(*registryPath)
	if err != nil {
		return fmt.Errorf("read registry: %w", err)
	}
	var registry map[string]string
	if err := json.Unmarshal(raw, &registry); err != nil {
		return fmt.Errorf("parse registry: %w", err)
	}

	var s experiment.Scale
	switch *scaleName {
	case "bench":
		s = experiment.BenchScale()
	case "default":
		s = experiment.DefaultScale()
	default:
		return fmt.Errorf("unknown scale %q", *scaleName)
	}
	if *seed > 0 {
		s.Seed = *seed
	}
	cfg, err := experiment.BuildConfig(experiment.Workload{
		Dataset:          *datasetName,
		Model:            *modelName,
		ClassesPerWorker: *classes,
	}, s)
	if err != nil {
		return err
	}
	opts := cluster.Options{Adaptive: !*reduced}

	switch *role {
	case "cloud":
		return runCloud(cfg, registry, opts)
	case "edge":
		ep, err := transport.ListenStatic(cluster.EdgeID(*edgeIdx), registry)
		if err != nil {
			return err
		}
		defer ep.Close()
		return cluster.RunEdgeNode(cfg, *edgeIdx, ep, opts)
	case "worker":
		ep, err := transport.ListenStatic(cluster.WorkerID(*edgeIdx, *workerIdx), registry)
		if err != nil {
			return err
		}
		defer ep.Close()
		return cluster.RunWorkerNode(cfg, *edgeIdx, *workerIdx, ep, opts)
	default:
		return fmt.Errorf("unknown role %q (want cloud, edge, or worker)", *role)
	}
}

func runCloud(cfg *fl.Config, registry map[string]string, opts cluster.Options) error {
	ep, err := transport.ListenStatic(cluster.CloudID, registry)
	if err != nil {
		return err
	}
	defer ep.Close()
	res, err := cluster.RunCloudNode(cfg, ep, opts)
	if err != nil {
		return err
	}
	fmt.Println(res)
	return nil
}
