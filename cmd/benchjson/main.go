// Command benchjson converts `go test -bench -benchmem` text output on stdin
// into a JSON benchmark record, so `make bench` can track the core perf
// trajectory (ns/op, allocs/op, worker-pool size) across PRs in a file that
// diffs cleanly.
//
// Usage:
//
//	go test -bench=. -benchmem ./internal/core | benchjson -out BENCH_core.json
//
// With -baseline it additionally diffs the fresh run against a committed
// report and exits 1 when any benchmark's ns/op regressed by more than
// -max-regress (default 10%) — the perf gate `make check` runs:
//
//	go test -bench=. -benchmem ./internal/core | benchjson -baseline BENCH_core.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// record is one benchmark result line.
type record struct {
	Name       string  `json:"name"`
	Workers    int     `json:"workers,omitempty"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	BPerOp     float64 `json:"b_per_op"`
	AllocsOp   int64   `json:"allocs_per_op"`
}

// report is the full BENCH_core.json document.
type report struct {
	GoOS       string   `json:"goos,omitempty"`
	GoArch     string   `json:"goarch,omitempty"`
	Package    string   `json:"pkg,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Benchmarks []record `json:"benchmarks"`
}

var (
	// benchLine matches e.g.
	// BenchmarkHierAdMoCNN/workers=2-8  3  412345678 ns/op  1234 B/op  56 allocs/op
	benchLine = regexp.MustCompile(
		`^(Benchmark\S+)\s+(\d+)\s+([0-9.]+) ns/op(?:\s+([0-9.]+) B/op)?(?:\s+(\d+) allocs/op)?`)
	workersTag = regexp.MustCompile(`workers=(\d+)`)
	headerLine = regexp.MustCompile(`^(goos|goarch|pkg|cpu):\s*(.*)$`)
)

func main() {
	out := flag.String("out", "", "write JSON to this file (default stdout)")
	baseline := flag.String("baseline", "", "diff ns/op against this committed report and fail on regression")
	maxRegress := flag.Float64("max-regress", 0.10, "tolerated fractional ns/op growth over the baseline")
	flag.Parse()
	if err := run(*out, *baseline, *maxRegress); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(out, baseline string, maxRegress float64) error {
	rep, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		return err
	}
	if len(rep.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark lines found on stdin")
	}
	if baseline != "" {
		base, err := loadReport(baseline)
		if err != nil {
			return err
		}
		regressions := compare(rep, base, maxRegress)
		for _, r := range regressions {
			fmt.Fprintln(os.Stderr, "benchjson: regression:", r)
		}
		if len(regressions) > 0 {
			return fmt.Errorf("%d benchmark(s) regressed more than %.0f%% over %s",
				len(regressions), 100*maxRegress, baseline)
		}
		fmt.Fprintf(os.Stderr, "benchjson: no ns/op regression beyond %.0f%% vs %s\n",
			100*maxRegress, baseline)
	}
	if out == "" && baseline != "" {
		return nil // diff-only invocation: keep stdout clean for pipelines
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if out == "" {
		_, err = os.Stdout.Write(buf)
		return err
	}
	return os.WriteFile(out, buf, 0o644)
}

// loadReport reads a committed benchmark report.
func loadReport(path string) (*report, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep report
	if err := json.Unmarshal(raw, &rep); err != nil {
		return nil, fmt.Errorf("parse %s: %w", path, err)
	}
	return &rep, nil
}

// compare diffs cur against base by benchmark name and describes every
// entry whose ns/op grew by more than maxRegress. Benchmarks present on
// only one side are skipped: adding or retiring a benchmark is not a
// regression.
func compare(cur, base *report, maxRegress float64) []string {
	baseBy := make(map[string]record, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		baseBy[b.Name] = b
	}
	var out []string
	for _, c := range cur.Benchmarks {
		b, ok := baseBy[c.Name]
		if !ok || b.NsPerOp <= 0 {
			continue
		}
		if growth := c.NsPerOp/b.NsPerOp - 1; growth > maxRegress {
			out = append(out, fmt.Sprintf("%s: %.0f ns/op vs baseline %.0f (%+.1f%%)",
				c.Name, c.NsPerOp, b.NsPerOp, 100*growth))
		}
	}
	return out
}

func parse(sc *bufio.Scanner) (*report, error) {
	rep := &report{Benchmarks: []record{}}
	for sc.Scan() {
		line := sc.Text()
		if h := headerLine.FindStringSubmatch(line); h != nil {
			switch h[1] {
			case "goos":
				rep.GoOS = h[2]
			case "goarch":
				rep.GoArch = h[2]
			case "pkg":
				rep.Package = h[2]
			case "cpu":
				rep.CPU = h[2]
			}
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		rec := record{Name: strings.TrimPrefix(m[1], "Benchmark")}
		var err error
		if rec.Iterations, err = strconv.ParseInt(m[2], 10, 64); err != nil {
			return nil, fmt.Errorf("line %q: %w", line, err)
		}
		if rec.NsPerOp, err = strconv.ParseFloat(m[3], 64); err != nil {
			return nil, fmt.Errorf("line %q: %w", line, err)
		}
		if m[4] != "" {
			if rec.BPerOp, err = strconv.ParseFloat(m[4], 64); err != nil {
				return nil, fmt.Errorf("line %q: %w", line, err)
			}
		}
		if m[5] != "" {
			if rec.AllocsOp, err = strconv.ParseInt(m[5], 10, 64); err != nil {
				return nil, fmt.Errorf("line %q: %w", line, err)
			}
		}
		if w := workersTag.FindStringSubmatch(rec.Name); w != nil {
			rec.Workers, _ = strconv.Atoi(w[1])
		}
		rep.Benchmarks = append(rep.Benchmarks, rec)
	}
	return rep, sc.Err()
}
