// Command benchjson converts `go test -bench -benchmem` text output on stdin
// into a JSON benchmark record, so `make bench` can track the core perf
// trajectory (ns/op, B/op, allocs/op, worker-pool size) across PRs in a file
// that diffs cleanly.
//
// Repeated lines for the same benchmark (a `-count=N` run) are merged
// best-of-N: the minimum ns/op, B/op and allocs/op across repetitions. The
// minimum is the right noise estimator for a gate — scheduling interference
// and GC pauses only ever add time, so the fastest repetition is the closest
// observation of the code's true cost, and a gate on the mean would flap on a
// loaded CI box. The GOMAXPROCS `-N` suffix Go appends to benchmark names on
// multicore hosts is stripped into a `procs` field so reports from different
// machines diff by name.
//
// Usage:
//
//	go test -bench=. -benchmem -count=3 ./internal/core | benchjson -out BENCH_core.json
//
// With -baseline it additionally diffs the fresh run against a committed
// report and exits 1 when any benchmark's ns/op, B/op, or allocs/op regressed
// beyond its tolerance flag — the perf gate `make check` runs:
//
//	go test -bench=. -benchmem -count=3 ./internal/core | benchjson -baseline BENCH_core.json
//
// With -check-scaling it also verifies, within the fresh run, that every
// workers=N benchmark beats its workers=1 sibling by a margin scaled to how
// many cores the host actually has (see checkScaling) — the gate that would
// have caught the flat 1→8 scaling this repo shipped with for five PRs.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// record is one benchmark result (best-of-N when the input repeats names).
type record struct {
	Name       string  `json:"name"`
	Workers    int     `json:"workers,omitempty"`
	Procs      int     `json:"procs,omitempty"` // GOMAXPROCS suffix; 1 when Go omits it
	Runs       int     `json:"runs,omitempty"`  // repetitions merged into this record
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	BPerOp     float64 `json:"b_per_op"`
	AllocsOp   int64   `json:"allocs_per_op"`
}

// report is the full BENCH_core.json document.
type report struct {
	GoOS       string   `json:"goos,omitempty"`
	GoArch     string   `json:"goarch,omitempty"`
	Package    string   `json:"pkg,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Benchmarks []record `json:"benchmarks"`
}

// tolerances are the per-dimension fractional regression budgets.
type tolerances struct {
	ns     float64
	bytes  float64
	allocs float64
}

var (
	// benchLine matches e.g.
	// BenchmarkHierAdMoCNN/workers=2-8  3  412345678 ns/op  1234 B/op  56 allocs/op
	benchLine = regexp.MustCompile(
		`^(Benchmark\S+)\s+(\d+)\s+([0-9.]+) ns/op(?:\s+([0-9.]+) B/op)?(?:\s+(\d+) allocs/op)?`)
	workersTag  = regexp.MustCompile(`workers=(\d+)`)
	headerLine  = regexp.MustCompile(`^(goos|goarch|pkg|cpu):\s*(.*)$`)
	procsSuffix = regexp.MustCompile(`^(.+)-(\d+)$`)
)

func main() {
	out := flag.String("out", "", "write JSON to this file (default stdout)")
	baseline := flag.String("baseline", "", "diff against this committed report and fail on regression")
	maxRegress := flag.Float64("max-regress", 0.10, "tolerated fractional ns/op growth over the baseline")
	maxBytes := flag.Float64("max-bytes-regress", 0.10, "tolerated fractional B/op growth over the baseline")
	maxAllocs := flag.Float64("max-alloc-regress", 0.10, "tolerated fractional allocs/op growth over the baseline")
	checkScal := flag.Bool("check-scaling", false, "verify workers=N benchmarks against workers=1 within the fresh run")
	slack := flag.Float64("scaling-slack", 2.0, "multiple of the ideal 1/min(workers,procs) ratio tolerated when cores are available")
	overhead := flag.Float64("scaling-overhead", 0.15, "tolerated fractional slowdown of workers=N vs workers=1 when cores are not available")
	flag.Parse()
	tol := tolerances{ns: *maxRegress, bytes: *maxBytes, allocs: *maxAllocs}
	if err := run(*out, *baseline, tol, *checkScal, *slack, *overhead); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(out, baseline string, tol tolerances, checkScal bool, slack, overhead float64) error {
	rep, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		return err
	}
	if len(rep.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark lines found on stdin")
	}
	var failures []string
	if checkScal {
		failures = append(failures, checkScaling(rep, slack, overhead)...)
	}
	if baseline != "" {
		base, err := loadReport(baseline)
		if err != nil {
			return err
		}
		failures = append(failures, compare(rep, base, tol)...)
	}
	for _, f := range failures {
		fmt.Fprintln(os.Stderr, "benchjson: regression:", f)
	}
	if len(failures) > 0 {
		return fmt.Errorf("%d benchmark check(s) failed", len(failures))
	}
	if baseline != "" {
		fmt.Fprintf(os.Stderr, "benchjson: no regression beyond ns %.0f%% / bytes %.0f%% / allocs %.0f%% vs %s\n",
			100*tol.ns, 100*tol.bytes, 100*tol.allocs, baseline)
	}
	if out == "" && baseline != "" {
		return nil // diff-only invocation: keep stdout clean for pipelines
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if out == "" {
		_, err = os.Stdout.Write(buf)
		return err
	}
	return os.WriteFile(out, buf, 0o644)
}

// loadReport reads a committed benchmark report.
func loadReport(path string) (*report, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep report
	if err := json.Unmarshal(raw, &rep); err != nil {
		return nil, fmt.Errorf("parse %s: %w", path, err)
	}
	if len(rep.Benchmarks) == 0 {
		// Schema-valid JSON with no records would make every comparison
		// vacuously pass — the silent form of a missing baseline.
		return nil, fmt.Errorf("baseline %s contains no benchmark records; regenerate it with -out", path)
	}
	return &rep, nil
}

// compare diffs cur against base by benchmark name and describes every entry
// whose ns/op, B/op, or allocs/op grew beyond its tolerance. Benchmarks
// present on only one side are skipped: adding or retiring a benchmark is not
// a regression.
func compare(cur, base *report, tol tolerances) []string {
	baseBy := make(map[string]record, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		baseBy[b.Name] = b
	}
	var out []string
	for _, c := range cur.Benchmarks {
		b, ok := baseBy[c.Name]
		if !ok {
			continue
		}
		if b.NsPerOp > 0 {
			if growth := c.NsPerOp/b.NsPerOp - 1; growth > tol.ns {
				out = append(out, fmt.Sprintf("%s: %.0f ns/op vs baseline %.0f (%+.1f%%)",
					c.Name, c.NsPerOp, b.NsPerOp, 100*growth))
			}
		}
		if b.BPerOp > 0 {
			if growth := c.BPerOp/b.BPerOp - 1; growth > tol.bytes {
				out = append(out, fmt.Sprintf("%s: %.0f B/op vs baseline %.0f (%+.1f%%)",
					c.Name, c.BPerOp, b.BPerOp, 100*growth))
			}
		}
		if b.AllocsOp > 0 {
			if growth := float64(c.AllocsOp)/float64(b.AllocsOp) - 1; growth > tol.allocs {
				out = append(out, fmt.Sprintf("%s: %d allocs/op vs baseline %d (%+.1f%%)",
					c.Name, c.AllocsOp, b.AllocsOp, 100*growth))
			}
		}
	}
	return out
}

// checkScaling verifies, within one report, that every workers=N benchmark
// holds its own against the workers=1 variant of the same benchmark family.
//
// The threshold is aware of how many cores the host actually has, which is
// what the old "compare against a fixed expectation" approach got wrong: on
// the single-core container this repo benchmarks in, an 8-goroutine pool
// CANNOT run faster than a 1-goroutine pool — the gate there only demands it
// not be materially slower (1 + overhead). When cores are available the pool
// must deliver real speedup: the allowed ns/op ratio is slack × the ideal
// 1/min(workers, procs). The final threshold is
//
//	min(slack × 1/min(workers, procs), 1 + overhead)
//
// — on one core that is 1+overhead; on ≥2×slack cores it is a hard speedup
// demand. A serialized worker phase (ratio ≈ 1) fails everywhere cores exist.
func checkScaling(rep *report, slack, overhead float64) []string {
	// Index workers=1 baselines by benchmark family (name with the workers
	// tag normalized out).
	family := func(name string) string {
		return workersTag.ReplaceAllString(name, "workers=*")
	}
	base := make(map[string]record)
	for _, b := range rep.Benchmarks {
		if b.Workers == 1 {
			base[family(b.Name)] = b
		}
	}
	var out []string
	for _, c := range rep.Benchmarks {
		if c.Workers <= 1 {
			continue
		}
		b, ok := base[family(c.Name)]
		if !ok || b.NsPerOp <= 0 {
			continue
		}
		procs := c.Procs
		if procs <= 0 {
			procs = 1
		}
		usable := c.Workers
		if procs < usable {
			usable = procs
		}
		threshold := slack / float64(usable)
		if limit := 1 + overhead; threshold > limit {
			threshold = limit
		}
		if ratio := c.NsPerOp / b.NsPerOp; ratio > threshold {
			out = append(out, fmt.Sprintf(
				"%s: %.2fx the workers=1 time, want <= %.2fx (procs=%d, slack=%.2g, overhead=%.2g)",
				c.Name, ratio, threshold, procs, slack, overhead))
		}
	}
	return out
}

// parse consumes `go test -bench` output, stripping the GOMAXPROCS name
// suffix and merging repeated benchmark lines (-count > 1) best-of-N.
func parse(sc *bufio.Scanner) (*report, error) {
	rep := &report{Benchmarks: []record{}}
	index := make(map[string]int)
	for sc.Scan() {
		line := sc.Text()
		if h := headerLine.FindStringSubmatch(line); h != nil {
			switch h[1] {
			case "goos":
				rep.GoOS = h[2]
			case "goarch":
				rep.GoArch = h[2]
			case "pkg":
				rep.Package = h[2]
			case "cpu":
				rep.CPU = h[2]
			}
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		rec := record{Name: strings.TrimPrefix(m[1], "Benchmark"), Procs: 1, Runs: 1}
		if s := procsSuffix.FindStringSubmatch(rec.Name); s != nil {
			// Go appends "-N" (N = GOMAXPROCS) on multicore hosts; fold it
			// into the procs field so names stay comparable across machines.
			rec.Name = s[1]
			rec.Procs, _ = strconv.Atoi(s[2])
		}
		var err error
		if rec.Iterations, err = strconv.ParseInt(m[2], 10, 64); err != nil {
			return nil, fmt.Errorf("line %q: %w", line, err)
		}
		if rec.NsPerOp, err = strconv.ParseFloat(m[3], 64); err != nil {
			return nil, fmt.Errorf("line %q: %w", line, err)
		}
		if m[4] != "" {
			if rec.BPerOp, err = strconv.ParseFloat(m[4], 64); err != nil {
				return nil, fmt.Errorf("line %q: %w", line, err)
			}
		}
		if m[5] != "" {
			if rec.AllocsOp, err = strconv.ParseInt(m[5], 10, 64); err != nil {
				return nil, fmt.Errorf("line %q: %w", line, err)
			}
		}
		if w := workersTag.FindStringSubmatch(rec.Name); w != nil {
			rec.Workers, _ = strconv.Atoi(w[1])
		}
		if at, seen := index[rec.Name]; seen {
			merge(&rep.Benchmarks[at], rec)
			continue
		}
		index[rec.Name] = len(rep.Benchmarks)
		rep.Benchmarks = append(rep.Benchmarks, rec)
	}
	return rep, sc.Err()
}

// merge folds a repetition into the existing record, keeping the minimum of
// every per-op dimension (see the package comment for why minimum).
func merge(dst *record, rep record) {
	dst.Runs += rep.Runs
	if rep.NsPerOp < dst.NsPerOp {
		dst.NsPerOp = rep.NsPerOp
		dst.Iterations = rep.Iterations
	}
	if rep.BPerOp < dst.BPerOp {
		dst.BPerOp = rep.BPerOp
	}
	if rep.AllocsOp < dst.AllocsOp {
		dst.AllocsOp = rep.AllocsOp
	}
}
