package main

import (
	"bufio"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: hieradmo/internal/core
cpu: Test CPU @ 2.10GHz
BenchmarkHierAdMoCNN/workers=1         	       3	  32584745 ns/op	 1265472 B/op	     354 allocs/op
BenchmarkHierAdMoCNN/workers=2         	       3	  34016881 ns/op	 1267712 B/op	     394 allocs/op
PASS
`

func parseSample(t *testing.T, text string) *report {
	t.Helper()
	rep, err := parse(bufio.NewScanner(strings.NewReader(text)))
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestParseBenchOutput(t *testing.T) {
	rep := parseSample(t, sampleBench)
	if rep.GoOS != "linux" || rep.Package != "hieradmo/internal/core" {
		t.Errorf("headers = %q/%q", rep.GoOS, rep.Package)
	}
	if len(rep.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(rep.Benchmarks))
	}
	b := rep.Benchmarks[0]
	if b.Name != "HierAdMoCNN/workers=1" || b.Workers != 1 ||
		b.NsPerOp != 32584745 || b.AllocsOp != 354 {
		t.Errorf("first record = %+v", b)
	}
}

func TestCompareFlagsRegressions(t *testing.T) {
	base := parseSample(t, sampleBench)
	cur := parseSample(t, sampleBench)

	if regs := compare(cur, base, 0.10); len(regs) != 0 {
		t.Errorf("identical runs flagged: %v", regs)
	}

	// 5% slower: inside the budget.
	cur.Benchmarks[0].NsPerOp *= 1.05
	if regs := compare(cur, base, 0.10); len(regs) != 0 {
		t.Errorf("5%% growth flagged at 10%% budget: %v", regs)
	}

	// 25% slower: a regression, and only that entry.
	cur.Benchmarks[0].NsPerOp = base.Benchmarks[0].NsPerOp * 1.25
	regs := compare(cur, base, 0.10)
	if len(regs) != 1 || !strings.Contains(regs[0], "workers=1") {
		t.Errorf("25%% growth yields %v, want one workers=1 regression", regs)
	}

	// Faster is never a regression.
	cur.Benchmarks[0].NsPerOp = base.Benchmarks[0].NsPerOp * 0.5
	if regs := compare(cur, base, 0.10); len(regs) != 0 {
		t.Errorf("speedup flagged: %v", regs)
	}
}

func TestCompareSkipsUnmatchedNames(t *testing.T) {
	base := parseSample(t, sampleBench)
	cur := parseSample(t, sampleBench)
	cur.Benchmarks[0].Name = "BrandNewBenchmark"
	cur.Benchmarks[0].NsPerOp = 1e12
	if regs := compare(cur, base, 0.10); len(regs) != 0 {
		t.Errorf("benchmark missing from baseline flagged: %v", regs)
	}
}
