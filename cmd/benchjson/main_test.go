package main

import (
	"bufio"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// sampleBench is a single-core run: Go omits the -N GOMAXPROCS suffix when
// GOMAXPROCS == 1, and -count=2 repeats each benchmark line.
const sampleBench = `goos: linux
goarch: amd64
pkg: hieradmo/internal/core
cpu: Test CPU @ 2.10GHz
BenchmarkHierAdMoCNN/workers=1         	       3	46504898 ns/op	 1266525 B/op	     405 allocs/op
BenchmarkHierAdMoCNN/workers=8         	       3	45690611 ns/op	 1271832 B/op	     493 allocs/op
BenchmarkHierAdMoCNN/workers=1         	       3	48000000 ns/op	 1266525 B/op	     410 allocs/op
BenchmarkHierAdMoCNN/workers=8         	       3	44000000 ns/op	 1280000 B/op	     493 allocs/op
BenchmarkEdgeCosine                    	   16588	     72171 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	hieradmo/internal/core	5.123s
`

// sampleMulticore is the same family benchmarked on an 8-core host: names
// carry the -8 suffix and the pool delivers a real speedup.
const sampleMulticore = `goos: linux
goarch: amd64
pkg: hieradmo/internal/core
BenchmarkHierAdMoCNN/workers=1-8       	       3	46504898 ns/op	 1266525 B/op	     405 allocs/op
BenchmarkHierAdMoCNN/workers=8-8       	       6	 8000000 ns/op	 1271832 B/op	     493 allocs/op
PASS
`

func parseSample(t *testing.T, text string) *report {
	t.Helper()
	rep, err := parse(bufio.NewScanner(strings.NewReader(text)))
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func defaultTol() tolerances { return tolerances{ns: 0.10, bytes: 0.10, allocs: 0.10} }

func TestParseBenchOutput(t *testing.T) {
	rep := parseSample(t, sampleBench)
	if rep.GoOS != "linux" || rep.Package != "hieradmo/internal/core" {
		t.Errorf("headers = %q/%q", rep.GoOS, rep.Package)
	}
	if len(rep.Benchmarks) != 3 {
		t.Fatalf("parsed %d merged benchmarks, want 3: %+v", len(rep.Benchmarks), rep.Benchmarks)
	}
	b := rep.Benchmarks[0]
	if b.Name != "HierAdMoCNN/workers=1" || b.Workers != 1 || b.Procs != 1 {
		t.Errorf("first record = %+v", b)
	}
	ec := rep.Benchmarks[2]
	if ec.Name != "EdgeCosine" || ec.Workers != 0 || ec.NsPerOp != 72171 || ec.AllocsOp != 0 {
		t.Errorf("EdgeCosine record = %+v", ec)
	}
}

func TestParseMergesBestOfN(t *testing.T) {
	rep := parseSample(t, sampleBench)
	w1 := rep.Benchmarks[0]
	if w1.Runs != 2 {
		t.Fatalf("workers=1 merged %d runs, want 2", w1.Runs)
	}
	// min ns/op and min allocs/op come from different repetitions; best-of
	// takes each dimension's minimum independently.
	if w1.NsPerOp != 46504898 || w1.AllocsOp != 405 {
		t.Errorf("workers=1 best-of = %+v, want ns 46504898 allocs 405", w1)
	}
	w8 := rep.Benchmarks[1]
	if w8.NsPerOp != 44000000 || w8.BPerOp != 1271832 {
		t.Errorf("workers=8 best-of = %+v, want ns 44000000 bytes 1271832", w8)
	}
}

func TestParseStripsProcsSuffix(t *testing.T) {
	rep := parseSample(t, sampleMulticore)
	if len(rep.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(rep.Benchmarks))
	}
	w8 := rep.Benchmarks[1]
	if w8.Name != "HierAdMoCNN/workers=8" {
		t.Errorf("suffix not stripped: %q", w8.Name)
	}
	if w8.Procs != 8 || w8.Workers != 8 {
		t.Errorf("procs/workers = %d/%d, want 8/8", w8.Procs, w8.Workers)
	}
}

func TestCompareFlagsRegressions(t *testing.T) {
	base := parseSample(t, sampleBench)
	cur := parseSample(t, sampleBench)

	if regs := compare(cur, base, defaultTol()); len(regs) != 0 {
		t.Errorf("identical runs flagged: %v", regs)
	}

	// 5% slower: inside the budget.
	cur.Benchmarks[0].NsPerOp *= 1.05
	if regs := compare(cur, base, defaultTol()); len(regs) != 0 {
		t.Errorf("5%% growth flagged at 10%% budget: %v", regs)
	}

	// 25% slower: a regression, and only that entry.
	cur.Benchmarks[0].NsPerOp = base.Benchmarks[0].NsPerOp * 1.25
	regs := compare(cur, base, defaultTol())
	if len(regs) != 1 || !strings.Contains(regs[0], "workers=1") {
		t.Errorf("25%% growth yields %v, want one workers=1 regression", regs)
	}

	// Faster is never a regression.
	cur.Benchmarks[0].NsPerOp = base.Benchmarks[0].NsPerOp * 0.5
	if regs := compare(cur, base, defaultTol()); len(regs) != 0 {
		t.Errorf("speedup flagged: %v", regs)
	}
}

func TestCompareFlagsAllocAndBytesRegressions(t *testing.T) {
	base := parseSample(t, sampleBench)

	// Injected alloc regression: the round loop starts allocating again.
	cur := parseSample(t, sampleBench)
	cur.Benchmarks[0].AllocsOp = base.Benchmarks[0].AllocsOp * 3
	regs := compare(cur, base, defaultTol())
	if len(regs) != 1 || !strings.Contains(regs[0], "allocs/op") {
		t.Fatalf("tripled allocs/op yields %v, want one allocs/op regression", regs)
	}

	// Injected bytes regression, allocs unchanged: only the bytes gate fires.
	cur = parseSample(t, sampleBench)
	cur.Benchmarks[0].BPerOp = base.Benchmarks[0].BPerOp * 2
	regs = compare(cur, base, defaultTol())
	if len(regs) != 1 || !strings.Contains(regs[0], "B/op") {
		t.Fatalf("doubled B/op yields %v, want one B/op regression", regs)
	}

	// The tolerances are independent: a loose alloc budget does not excuse
	// a bytes regression, and a loose bytes budget clears it.
	if regs := compare(cur, base, tolerances{ns: 0.10, bytes: 0.10, allocs: 10}); len(regs) != 1 {
		t.Errorf("bytes gate silenced by alloc budget: %v", regs)
	}
	if regs := compare(cur, base, tolerances{ns: 0.10, bytes: 2.0, allocs: 0.10}); len(regs) != 0 {
		t.Errorf("loose bytes budget still flags: %v", regs)
	}
}

func TestCompareSkipsUnmatchedNames(t *testing.T) {
	base := parseSample(t, sampleBench)
	cur := parseSample(t, sampleBench)
	cur.Benchmarks[0].Name = "BrandNewBenchmark"
	cur.Benchmarks[0].NsPerOp = 1e12
	if regs := compare(cur, base, defaultTol()); len(regs) != 0 {
		t.Errorf("benchmark missing from baseline flagged: %v", regs)
	}
}

func TestCheckScalingSingleCore(t *testing.T) {
	// On one core an 8-worker pool cannot beat one worker; the gate only
	// demands it stay within the overhead budget.
	rep := parseSample(t, sampleBench)
	if f := checkScaling(rep, 2.0, 0.15); len(f) != 0 {
		t.Errorf("near-parity on a single core flagged: %v", f)
	}

	// Injected scaling regression: the worker phase serializes AND adds
	// contention, so workers=8 runs 1.5x the workers=1 time.
	rep.Benchmarks[1].NsPerOp = rep.Benchmarks[0].NsPerOp * 1.5
	f := checkScaling(rep, 2.0, 0.15)
	if len(f) != 1 || !strings.Contains(f[0], "workers=8") {
		t.Fatalf("1.5x slowdown yields %v, want one workers=8 failure", f)
	}
}

func TestCheckScalingMulticore(t *testing.T) {
	// 8 cores, 8 workers, ~5.8x speedup: well under the slack/usable
	// threshold of 0.25x.
	rep := parseSample(t, sampleMulticore)
	if f := checkScaling(rep, 2.0, 0.15); len(f) != 0 {
		t.Errorf("real speedup flagged: %v", f)
	}

	// The bug this gate exists for: flat scaling (ratio ~= 1) with cores
	// available — the workers=8 run barely differs from workers=1.
	rep.Benchmarks[1].NsPerOp = rep.Benchmarks[0].NsPerOp * 0.98
	f := checkScaling(rep, 2.0, 0.15)
	if len(f) != 1 {
		t.Fatalf("flat scaling on 8 cores yields %v, want one failure", f)
	}
	if !strings.Contains(f[0], "want <= 0.25x") {
		t.Errorf("failure %q does not state the 0.25x threshold", f[0])
	}
}

func TestCheckScalingIgnoresFamiliesWithoutBaseline(t *testing.T) {
	rep := parseSample(t, sampleMulticore)
	rep.Benchmarks = rep.Benchmarks[1:] // drop workers=1
	if f := checkScaling(rep, 2.0, 0.15); len(f) != 0 {
		t.Errorf("family without a workers=1 baseline flagged: %v", f)
	}
}

// TestLoadReportRejectsBadBaselines pins the gate's failure modes: a
// missing file, malformed JSON, and — the silent one — schema-valid JSON
// with zero benchmark records, which would make every comparison pass
// vacuously.
func TestLoadReportRejectsBadBaselines(t *testing.T) {
	dir := t.TempDir()

	if _, err := loadReport(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing baseline loaded without error")
	}

	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("{nope"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadReport(bad); err == nil {
		t.Error("malformed baseline loaded without error")
	}

	empty := filepath.Join(dir, "empty.json")
	if err := os.WriteFile(empty, []byte(`{"benchmarks":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadReport(empty); err == nil {
		t.Error("zero-record baseline loaded without error")
	} else if !strings.Contains(err.Error(), "no benchmark records") {
		t.Errorf("zero-record error = %v", err)
	}

	good := filepath.Join(dir, "good.json")
	if err := os.WriteFile(good, []byte(`{"benchmarks":[{"name":"X","iterations":1,"ns_per_op":1,"b_per_op":0,"allocs_per_op":0}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadReport(good); err != nil {
		t.Errorf("valid baseline rejected: %v", err)
	}
}
