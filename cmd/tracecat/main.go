// Command tracecat pretty-prints and filters the JSONL event traces the
// other commands write with -trace-out. Each trace line is one event with a
// monotonic "seq" and an event name "ev"; tracecat renders them aligned and
// in their original field order, so two runs' traces can be eyeballed (or
// diffed) side by side.
//
// Usage:
//
//	tracecat run.trace                        # pretty-print everything
//	tracecat -ev quorum,timeout run.trace     # only fault events
//	tracecat -node edge-0 run.trace           # one node's view of a cluster run
//	tracecat -count run.trace                 # per-event totals
//	tracecat -check run.trace                 # verify seq is 1..N with no gaps
//
// With no file arguments the trace is read from stdin.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "tracecat:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("tracecat", flag.ContinueOnError)
	var (
		evFilter = fs.String("ev", "", "comma-separated event names to keep (empty keeps all)")
		nodeID   = fs.String("node", "", `keep only events whose "node" field equals this ID`)
		check    = fs.Bool("check", false, "verify the sequence numbers are 1..N with no gaps, print nothing on success")
		count    = fs.Bool("count", false, "print per-event totals instead of the events")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	keep := map[string]bool{}
	for _, ev := range strings.Split(*evFilter, ",") {
		if ev = strings.TrimSpace(ev); ev != "" {
			keep[ev] = true
		}
	}

	readers := []io.Reader{os.Stdin}
	if files := fs.Args(); len(files) > 0 {
		readers = readers[:0]
		for _, path := range files {
			f, err := os.Open(path)
			if err != nil {
				return err
			}
			defer f.Close()
			readers = append(readers, f)
		}
	}

	totals := map[string]int{}
	var wantSeq uint64 = 1
	for _, r := range readers {
		sc := bufio.NewScanner(r)
		sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
		for sc.Scan() {
			line := bytes.TrimSpace(sc.Bytes())
			if len(line) == 0 {
				continue
			}
			e, err := parseLine(line)
			if err != nil {
				return fmt.Errorf("event %d: %w", wantSeq, err)
			}
			if *check {
				if e.seq != wantSeq {
					return fmt.Errorf("sequence gap: event %d carries seq %d", wantSeq, e.seq)
				}
				wantSeq++
			}
			if len(keep) > 0 && !keep[e.ev] {
				continue
			}
			if *nodeID != "" && e.field("node") != *nodeID {
				continue
			}
			totals[e.ev]++
			if *check || *count {
				continue
			}
			fmt.Fprintln(out, e)
		}
		if err := sc.Err(); err != nil {
			return err
		}
	}
	if *count {
		names := make([]string, 0, len(totals))
		for ev := range totals {
			names = append(names, ev)
		}
		sort.Strings(names)
		for _, ev := range names {
			fmt.Fprintf(out, "%8d %s\n", totals[ev], ev)
		}
	}
	return nil
}

// field is one key/value pair of an event, rendered for display.
type field struct{ key, val string }

// event is one parsed trace line with its fields in original order.
type event struct {
	seq    uint64
	ev     string
	fields []field
}

func (e event) field(key string) string {
	for _, f := range e.fields {
		if f.key == key {
			return f.val
		}
	}
	return ""
}

func (e event) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%8d  %-20s", e.seq, e.ev)
	for _, f := range e.fields {
		fmt.Fprintf(&b, " %s=%s", f.key, f.val)
	}
	return b.String()
}

// parseLine decodes one JSONL event with a token walk instead of a map, so
// the fields keep the order the emitter wrote them in (maps would shuffle
// them and break side-by-side diffs).
func parseLine(line []byte) (event, error) {
	dec := json.NewDecoder(bytes.NewReader(line))
	dec.UseNumber()
	tok, err := dec.Token()
	if err != nil {
		return event{}, err
	}
	if d, ok := tok.(json.Delim); !ok || d != '{' {
		return event{}, fmt.Errorf("trace line is not a JSON object: %q", line)
	}
	var e event
	for dec.More() {
		kt, err := dec.Token()
		if err != nil {
			return event{}, err
		}
		key, ok := kt.(string)
		if !ok {
			return event{}, fmt.Errorf("non-string key %v", kt)
		}
		vt, err := dec.Token()
		if err != nil {
			return event{}, err
		}
		var val string
		switch v := vt.(type) {
		case json.Number:
			val = v.String()
		case string:
			val = v
		case bool:
			val = strconv.FormatBool(v)
		case nil:
			val = "null"
		default:
			return event{}, fmt.Errorf("field %q holds a nested value; trace events are flat", key)
		}
		switch key {
		case "seq":
			n, ok := vt.(json.Number)
			if !ok {
				return event{}, fmt.Errorf("seq is not a number: %v", vt)
			}
			if e.seq, err = strconv.ParseUint(n.String(), 10, 64); err != nil {
				return event{}, fmt.Errorf("bad seq %v: %w", n, err)
			}
		case "ev":
			e.ev = val
		default:
			e.fields = append(e.fields, field{key: key, val: val})
		}
	}
	if _, err := dec.Token(); err != nil {
		return event{}, err
	}
	// One event per line: trailing bytes after the closing brace mean a torn
	// or concatenated write, not a trace line.
	if _, err := dec.Token(); err != io.EOF {
		return event{}, fmt.Errorf("trailing data after event object: %q", line)
	}
	if e.ev == "" {
		return event{}, fmt.Errorf("trace line is missing the \"ev\" field: %q", line)
	}
	return e, nil
}
