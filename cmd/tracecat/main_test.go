package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hieradmo/internal/telemetry"
)

// writeTrace emits a small well-formed trace to a temp file and returns its
// path.
func writeTrace(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "run.trace")
	tr, err := telemetry.NewFileTracer(path)
	if err != nil {
		t.Fatal(err)
	}
	tr.Emit("run_start", telemetry.String("alg", "HierAdMo"), telemetry.Int("T", 8))
	tr.Emit("worker_train", telemetry.Int("t", 1), telemetry.Int("edge", 0), telemetry.Int("worker", 0), telemetry.Float("loss", 0.5))
	tr.Emit("edge_aggregate", telemetry.Int("t", 4), telemetry.Int("edge", 0), telemetry.Float("gamma", 0.25))
	tr.Emit("quorum", telemetry.String("tier", "edge"), telemetry.Int("t", 4), telemetry.Int("missing", 1))
	tr.Emit("stale_message", telemetry.String("node", "edge-0"))
	tr.Emit("run_end", telemetry.Float("final_acc", 0.9), telemetry.Bool("ok", true))
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestPrettyPrintKeepsFieldOrder(t *testing.T) {
	path := writeTrace(t)
	var out strings.Builder
	if err := run([]string{path}, &out); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 6 {
		t.Fatalf("printed %d lines, want 6:\n%s", len(lines), out.String())
	}
	if !strings.Contains(lines[2], "edge_aggregate") ||
		!strings.Contains(lines[2], "t=4 edge=0 gamma=0.25") {
		t.Errorf("edge_aggregate line lost its field order: %q", lines[2])
	}
	if !strings.HasPrefix(strings.TrimSpace(lines[0]), "1 ") {
		t.Errorf("first line should lead with seq 1: %q", lines[0])
	}
	if !strings.Contains(lines[5], "ok=true") {
		t.Errorf("bool field not rendered: %q", lines[5])
	}
}

func TestEventAndNodeFilters(t *testing.T) {
	path := writeTrace(t)
	var out strings.Builder
	if err := run([]string{"-ev", "quorum,stale_message", path}, &out); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(out.String(), "\n"); got != 2 {
		t.Errorf("-ev filter kept %d lines, want 2:\n%s", got, out.String())
	}

	out.Reset()
	if err := run([]string{"-node", "edge-0", path}, &out); err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(out.String()); !strings.Contains(got, "stale_message") || strings.Count(got, "\n") != 0 {
		t.Errorf("-node filter should keep exactly the stale_message event:\n%s", got)
	}
}

func TestCount(t *testing.T) {
	path := writeTrace(t)
	var out strings.Builder
	if err := run([]string{"-count", path}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "1 quorum") {
		t.Errorf("-count output missing quorum total:\n%s", out.String())
	}
}

func TestCheckDetectsSeqGap(t *testing.T) {
	path := writeTrace(t)
	var out strings.Builder
	if err := run([]string{"-check", path}, &out); err != nil {
		t.Fatalf("well-formed trace failed -check: %v", err)
	}
	if out.Len() != 0 {
		t.Errorf("-check printed output on success:\n%s", out.String())
	}

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Drop the third line to open a gap in the sequence numbers.
	lines := strings.SplitAfter(string(raw), "\n")
	gapped := filepath.Join(t.TempDir(), "gapped.trace")
	if err := os.WriteFile(gapped, []byte(strings.Join(append(lines[:2:2], lines[3:]...), "")), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-check", gapped}, &out); err == nil {
		t.Error("-check accepted a trace with a sequence gap")
	}
}

func TestRejectsMalformedLines(t *testing.T) {
	bad := filepath.Join(t.TempDir(), "bad.trace")
	if err := os.WriteFile(bad, []byte(`{"seq":1,"ev":"x","nested":{"a":1}}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run([]string{bad}, &out); err == nil {
		t.Error("nested field accepted")
	}
	if err := os.WriteFile(bad, []byte(`{"seq":2}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{bad}, &out); err == nil {
		t.Error("line without ev accepted")
	}
}
