package main

import (
	"bytes"
	"strings"
	"testing"

	"hieradmo/internal/telemetry"
)

// FuzzParseLine throws arbitrary single lines at the token-walk parser.
// The contract is total: parseLine either returns an event with a
// non-empty name — whose String and field renderings never panic — or an
// error, and it agrees with telemetry.ReadTrace about which event name a
// line carries whenever both accept it.
func FuzzParseLine(f *testing.F) {
	var buf bytes.Buffer
	tr := telemetry.NewTracer(&buf)
	tr.Emit("edge_aggregate",
		telemetry.Int("t", 3),
		telemetry.String("node", "edge-0"),
		telemetry.Float("gamma", 0.4375),
		telemetry.Bool("clamped", true))
	if err := tr.Flush(); err != nil {
		f.Fatal(err)
	}
	f.Add(bytes.TrimSpace(buf.Bytes()))
	f.Add([]byte(`{"seq":1,"ev":"x","k":"v"}`))
	f.Add([]byte(`{"seq":1,"ev":"x","n":null}`))
	f.Add([]byte(`{"seq":1}`))                            // missing ev
	f.Add([]byte(`{"seq":"1","ev":"x"}`))                 // seq of wrong type
	f.Add([]byte(`{"seq":1,"ev":"x","o":{"k":1}}`))       // nested value
	f.Add([]byte(`{"seq":1,"ev":"x"} trailing`))          // torn/concatenated write
	f.Add([]byte(`{"seq":1,"ev":"x"}}`))                  // stray closing brace
	f.Add([]byte(`{"seq":1,"ev":"x"}{"seq":2,"ev":"y"}`)) // two objects on one line
	f.Add([]byte(`[1,2,3]`))
	f.Add([]byte(`not json`))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, line []byte) {
		e, err := parseLine(line)
		if err != nil {
			return
		}
		if e.ev == "" {
			t.Fatalf("parseLine accepted %q with an empty event name", line)
		}
		if s := e.String(); !strings.Contains(s, e.ev) {
			t.Fatalf("String() %q dropped the event name %q", s, e.ev)
		}
		_ = e.field("node")

		// Cross-check against the structured reader: any single line tracecat
		// accepts must parse to the same event name there too (seq is skipped —
		// ReadTrace narrows it through float64).
		events, rerr := telemetry.ReadTrace(bytes.NewReader(line))
		if rerr != nil || len(events) != 1 {
			return
		}
		if events[0].Ev != e.ev {
			t.Fatalf("event name disagreement: tracecat %q vs telemetry %q for %q",
				e.ev, events[0].Ev, line)
		}
	})
}
