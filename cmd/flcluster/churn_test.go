package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hieradmo/internal/fl"
)

func TestRunChurnFlags(t *testing.T) {
	resPath := filepath.Join(t.TempDir(), "res.json")
	err := run([]string{
		"-transport", "memory",
		"-model", "logistic",
		"-classes", "2",
		"-churn-plan", "join:worker-0-1@3,leave:worker-1-0@30",
		"-retier-every", "4",
		"-migration", "rescale",
		"-save-result", resPath,
	}, nil)
	if err != nil {
		t.Fatalf("churn run: %v", err)
	}
	raw, err := os.ReadFile(resPath)
	if err != nil {
		t.Fatal(err)
	}
	var res fl.Result
	if err := json.Unmarshal(raw, &res); err != nil {
		t.Fatal(err)
	}
	if res.Membership == nil {
		t.Fatal("saved result carries no membership report")
	}
	if res.Membership.Joins != 1 || res.Membership.Leaves != 1 {
		t.Errorf("membership report %+v, want 1 join and 1 leave", res.Membership)
	}
	if res.Membership.MigrationPolicy != "rescale" {
		t.Errorf("migration policy %q, want rescale", res.Membership.MigrationPolicy)
	}
}

func TestRunChurnPlanFromFile(t *testing.T) {
	planPath := filepath.Join(t.TempDir(), "plan.trace")
	trace := "# churn trace\njoin worker-0-1 @3\nleave worker-1-0 @30\n"
	if err := os.WriteFile(planPath, []byte(trace), 0o644); err != nil {
		t.Fatal(err)
	}
	plan, err := loadChurnPlan(planPath)
	if err != nil {
		t.Fatal(err)
	}
	inline, err := loadChurnPlan("join:worker-0-1@3,leave:worker-1-0@30")
	if err != nil {
		t.Fatal(err)
	}
	if plan.Signature() != inline.Signature() {
		t.Errorf("trace file parsed to %q, inline spec to %q", plan.Signature(), inline.Signature())
	}
}

func TestRunChurnRejectsVerify(t *testing.T) {
	err := run([]string{
		"-transport", "memory", "-model", "logistic",
		"-churn-plan", "join:worker-0-1@3", "-verify",
	}, nil)
	if err == nil || !strings.Contains(err.Error(), "static hierarchy") {
		t.Errorf("-verify with churn = %v, want static-hierarchy refusal", err)
	}
	err = run([]string{
		"-transport", "memory", "-model", "logistic",
		"-retier-every", "2", "-verify",
	}, nil)
	if err == nil || !strings.Contains(err.Error(), "static hierarchy") {
		t.Errorf("-verify with re-tiering = %v, want static-hierarchy refusal", err)
	}
}

func TestRunBadMigrationPolicy(t *testing.T) {
	if err := run([]string{"-migration", "teleport"}, nil); err == nil {
		t.Error("unknown migration policy accepted")
	}
}

func TestRunBadChurnSpec(t *testing.T) {
	if err := run([]string{"-churn-plan", "defect:worker-0-1@3"}, nil); err == nil {
		t.Error("malformed churn spec accepted")
	}
}
