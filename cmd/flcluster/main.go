// Command flcluster runs HierAdMo as an actual distributed protocol: one
// node per worker, edge, and cloud, exchanging models and momenta over an
// in-memory hub or real TCP sockets. The distributed run is bit-identical
// to the in-process simulation (same batch streams, same aggregation
// order), which the command verifies when -verify is set.
//
// Usage:
//
//	flcluster -transport tcp -dataset mnist -model cnn
//	flcluster -transport memory -verify -save-result out.json -save-curve out.csv
//
// Fault-tolerance flags turn the run into a deterministic chaos experiment:
//
//	flcluster -crash worker-0-1@40 -min-quorum 0.5 -straggler-deadline 200ms
//	flcluster -drop-rate 0.03 -fault-seed 11 -min-quorum 0.5 \
//	    -straggler-deadline 300ms -recv-timeout 3s
//
// The run then degrades gracefully (quorum aggregation with renormalized
// weights) and prints a fault report instead of dying on the first lost
// message. Tolerance is bounded: a run whose losses exceed what the quorum
// and the one-sync staleness budget can absorb (e.g. heavy sustained loss on
// a topology with no quorum margin) still fails fast, with every node's
// error joined.
//
// Crash recovery: with -checkpoint-dir every node snapshots its state after
// each completed round. SIGINT/SIGTERM stops the run gracefully (exit code
// 3); rerunning with the same flags plus -resume continues from the
// snapshots and finishes with results bit-identical to an uninterrupted run.
// A second signal aborts immediately (exit code 4).
//
//	flcluster -checkpoint-dir ckpt            # ctrl-C mid-run → exit 3
//	flcluster -checkpoint-dir ckpt -resume    # picks up where it stopped
//
// Dynamic membership: -churn-plan replays a deterministic join/leave trace
// (a trace file, or an inline spec) and -retier-every re-clusters workers
// across edges every k cloud syncs; -migration picks the γℓ carry rule on
// cohort change. The whole trajectory is a pure function of the flags, so
// a churn run is bit-identical across reruns and transports:
//
//	flcluster -churn-plan "join:worker-0-1@3,leave:worker-1-0@9" -retier-every 2
//
// Byzantine robustness: -attack-plan injects deterministic adversarial
// reports at the worker boundary (sign-flip, scaling, seeded noise, stale
// replay) and -aggregator swaps the tier aggregation rule for a robust one
// (median, trimmed mean, norm-clipping, cosine-outlier filter), per tier
// if desired. The run prints an attack report with injected and rejected
// counts; both knobs are pure functions of the flags, so Byzantine runs
// replay bit-identically:
//
//	flcluster -attack-plan "signflip:worker-0-1@1" -aggregator median
//	flcluster -attack-plan "noise:worker-1-0@2-6=0.5" \
//	    -aggregator edge=trimmed,cloud=mean -trim 0.2
//
// N-tier topologies: -topology replaces the built-in cloud/edge/worker
// triple with an arbitrary aggregation tree — depth, fan-out, per-level
// sync periods τℓ, and per-level aggregation rules all come from the spec;
// the training leaves regroup the workload's worker shards in order:
//
//	flcluster -model logistic \
//	    -topology "cloud:tau=20/region*2:tau=10,agg=median/edge*2:tau=5/worker"
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"hieradmo/internal/cluster"
	"hieradmo/internal/core"
	"hieradmo/internal/experiment"
	"hieradmo/internal/membership"
	"hieradmo/internal/persist"
	"hieradmo/internal/robust"
	"hieradmo/internal/telemetry"
	"hieradmo/internal/topology"
	"hieradmo/internal/transport"
)

func main() {
	os.Exit(mainExit(os.Args[1:], installInterrupt("flcluster")))
}

// mainExit runs the cluster and maps the outcome to the process exit code:
// 0 success, 1 failure, 3 gracefully interrupted (state checkpointed when
// -checkpoint-dir is set; rerun with -resume to continue).
func mainExit(args []string, interrupt <-chan struct{}) int {
	if err := run(args, interrupt); err != nil {
		fmt.Fprintln(os.Stderr, "flcluster:", err)
		if errors.Is(err, cluster.ErrInterrupted) {
			return 3
		}
		return 1
	}
	return 0
}

// installInterrupt returns a channel closed on the first SIGINT/SIGTERM,
// requesting a graceful checkpoint-and-stop. A second signal aborts the
// process immediately with exit code 4.
func installInterrupt(name string) <-chan struct{} {
	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	interrupt := make(chan struct{})
	//flvet:allow goexec -- signal watcher must outlive the run loop; parallel.ForEach is for bounded fan-out, not daemons
	go func() {
		<-sigs
		fmt.Fprintf(os.Stderr, "%s: shutdown requested, stopping at the next snapshot point (signal again to abort)\n", name)
		close(interrupt)
		<-sigs
		fmt.Fprintf(os.Stderr, "%s: aborted\n", name)
		os.Exit(4)
	}()
	return interrupt
}

func run(args []string, interrupt <-chan struct{}) error {
	fs := flag.NewFlagSet("flcluster", flag.ContinueOnError)
	var (
		transportName = fs.String("transport", "memory", `"memory" or "tcp" (loopback sockets)`)
		datasetName   = fs.String("dataset", "mnist", "dataset: mnist|cifar10|imagenet|har")
		modelName     = fs.String("model", "cnn", "model: linear|logistic|cnn|vgg-mini|resnet-mini")
		classes       = fs.Int("classes", 0, "x-class non-IID assignment (0 = IID)")
		reduced       = fs.Bool("reduced", false, "run HierAdMo-R (fixed gammaEdge) instead of adaptive")
		verify        = fs.Bool("verify", false, "also run the in-process simulation and compare")
		scaleName     = fs.String("scale", "bench", `"bench" or "default"`)
		seed          = fs.Uint64("seed", 0, "override seed")
		saveResult    = fs.String("save-result", "", "write the run result as JSON to this path")
		saveCurve     = fs.String("save-curve", "", "write the accuracy curve as CSV to this path")

		dropRate  = fs.Float64("drop-rate", 0, "inject message loss with this probability (0 disables)")
		maxDelay  = fs.Duration("max-delay", 0, "inject a uniform per-message delay up to this duration")
		faultSeed = fs.Uint64("fault-seed", 1, "seed for the deterministic fault schedule")
		crash     = fs.String("crash", "", `crash nodes at protocol rounds, e.g. "worker-0-1@40,edge-1@80"`)
		restart   = fs.String("restart-after", "", `revive crashed workers after this many rounds, e.g. "worker-0-1@8" (needs -crash, -min-quorum and -checkpoint-dir)`)
		minQuorum = fs.Float64("min-quorum", 0, "fraction of reporters an aggregation needs (0 or 1 = strict full cohort)")
		straggler = fs.Duration("straggler-deadline", 0, "how long an aggregation waits for the full cohort before proceeding with a quorum")
		recvTO    = fs.Duration("recv-timeout", 0, "receive timeout per blocking wait (default 60s)")

		checkpointDir = fs.String("checkpoint-dir", "", "snapshot every node's state into this directory after each completed round (enables crash recovery)")
		resume        = fs.Bool("resume", false, "reload the newest snapshots from -checkpoint-dir and continue the interrupted run")

		attackSpec = fs.String("attack-plan", "", `Byzantine attack spec like "signflip:worker-0-1@1,noise:worker-1-0@2-6=0.5" (kinds: signflip|scale|noise|replay)`)
		attackSeed = fs.Uint64("attack-seed", 1, "seed for the deterministic noise-attack draws")
		aggregator = fs.String("aggregator", "mean", `aggregation rule (mean|median|trimmed|clip|cosine), or per tier like "edge=median,cloud=mean"`)
		trim       = fs.Float64("trim", 0.2, "per-tail trim fraction for -aggregator trimmed, in [0, 0.5)")
		clipNorm   = fs.Float64("clip", 10, "max L2 deviation norm for -aggregator clip")
		cosMin     = fs.Float64("cos-min", 0, "minimum cosine against the cohort's median deviation for -aggregator cosine, in [-1, 1]")

		topologySpec = fs.String("topology", "", `N-tier aggregation tree spec like "cloud:tau=20/region*2:tau=10,agg=median/edge*2:tau=5/worker" (empty = the built-in cloud/edge/worker triple; the tree's leaf count must equal the workload's workers)`)

		churnSpec   = fs.String("churn-plan", "", `churn trace file, or inline spec like "join:worker-0-1@3,leave:worker-1-0@9"`)
		retierEvery = fs.Int("retier-every", 0, "re-tier workers across edges every this many cloud syncs (0 disables)")
		migration   = fs.String("migration", "zero", "gammaEdge migration policy on cohort change: zero|carry|rescale")

		traceOut    = fs.String("trace-out", "", "write a JSONL event trace (one event per line) to this path")
		metricsAddr = fs.String("metrics-addr", "", `serve Prometheus /metrics and /debug/pprof on this address (e.g. "127.0.0.1:9090"; ":0" picks a port)`)
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	crashes, err := parseCrashSpec(*crash)
	if err != nil {
		return err
	}
	restarts, err := parseCrashSpec(*restart)
	if err != nil {
		return err
	}
	for node := range restarts {
		if _, ok := crashes[node]; !ok {
			return fmt.Errorf("-restart-after %s needs a matching -crash entry", node)
		}
	}
	if *verify && (*dropRate > 0 || len(crashes) > 0) {
		return fmt.Errorf("-verify requires a fault-free run: bit-equivalence with the simulation only holds without drops or crashes")
	}
	churnPlan, err := loadChurnPlan(*churnSpec)
	if err != nil {
		return err
	}
	migrate, err := membership.ParseMigrationPolicy(*migration)
	if err != nil {
		return err
	}
	if *verify && (churnPlan != nil || *retierEvery > 0) {
		return fmt.Errorf("-verify requires a static hierarchy: the in-process simulation has no membership dynamics to compare against")
	}
	attackPlan, err := robust.ParsePlan(*attackSpec, *attackSeed)
	if err != nil {
		return err
	}
	edgeAgg, cloudAgg, err := robust.ParseTierSpecs(*aggregator, *trim, *clipNorm, *cosMin)
	if err != nil {
		return err
	}
	if *verify && (attackPlan != nil || edgeAgg.Robust() || cloudAgg.Robust()) {
		return fmt.Errorf("-verify requires an undefended honest run: the in-process simulation has no attackers or robust aggregation to compare against")
	}
	var topo *topology.Topology
	if *topologySpec != "" {
		if topo, err = topology.Parse(*topologySpec); err != nil {
			return err
		}
		if *verify {
			return fmt.Errorf("-verify only covers the built-in 3-tier runtime: the in-process simulation has no N-tier tree to compare against")
		}
	}

	var s experiment.Scale
	switch *scaleName {
	case "bench":
		s = experiment.BenchScale()
	case "default":
		s = experiment.DefaultScale()
	default:
		return fmt.Errorf("unknown scale %q", *scaleName)
	}
	if *seed > 0 {
		s.Seed = *seed
	}
	cfg, err := experiment.BuildConfig(experiment.Workload{
		Dataset:          *datasetName,
		Model:            *modelName,
		ClassesPerWorker: *classes,
	}, s)
	if err != nil {
		return err
	}
	sink, boundAddr, stopTelemetry, err := telemetry.Setup(*traceOut, *metricsAddr)
	if err != nil {
		return err
	}
	defer stopTelemetry()
	cfg.Telemetry = sink
	if boundAddr != "" {
		fmt.Printf("telemetry: serving /metrics and /debug/pprof on http://%s\n", boundAddr)
	}

	var net cluster.Network
	switch *transportName {
	case "memory":
		net = transport.NewMemoryNetwork()
	case "tcp":
		net = transport.NewTCPNetwork()
	default:
		return fmt.Errorf("unknown transport %q", *transportName)
	}
	if *dropRate > 0 || *maxDelay > 0 || len(crashes) > 0 {
		net = transport.NewFaultyNetwork(net, transport.FaultPlan{
			Seed:               *faultSeed,
			DropRate:           *dropRate,
			MaxDelay:           *maxDelay,
			CrashAtRound:       crashes,
			RestartAfterRounds: restarts,
		})
	}

	fmt.Printf("distributed HierAdMo over %s: %d workers, %d edges, tau=%d pi=%d T=%d\n",
		*transportName, cfg.NumWorkers(), cfg.NumEdges(), cfg.Tau, cfg.Pi, cfg.T)
	if topo != nil {
		fmt.Printf("topology: %s (depth %d, %d leaves)\n", topo, topo.Depth(), topo.NumLeaves())
	}
	res, err := cluster.Run(cfg, net, cluster.Options{
		Adaptive:          !*reduced,
		MinQuorum:         *minQuorum,
		StragglerDeadline: *straggler,
		RecvTimeout:       *recvTO,
		CheckpointDir:     *checkpointDir,
		Resume:            *resume,
		Interrupt:         interrupt,
		ChurnPlan:         churnPlan,
		RetierEvery:       *retierEvery,
		Migration:         migrate,
		AttackPlan:        attackPlan,
		EdgeAggregator:    edgeAgg,
		CloudAggregator:   cloudAgg,
		Topology:          topo,
	})
	if err != nil {
		return err
	}
	fmt.Println(res)
	if res.FaultReport.Any() {
		fmt.Println(res.FaultReport)
	}
	if res.Membership != nil {
		fmt.Println(res.Membership)
	}
	if res.AttackReport != nil {
		fmt.Println(res.AttackReport)
	}

	if *verify {
		alg := core.New()
		if *reduced {
			alg = core.NewReduced()
		}
		sim, err := alg.Run(cfg)
		if err != nil {
			return fmt.Errorf("verification run: %w", err)
		}
		if sim.FinalAcc == res.FinalAcc {
			fmt.Printf("verified: distributed final accuracy %.4f matches the in-process simulation exactly\n", res.FinalAcc)
		} else {
			return fmt.Errorf("verification failed: distributed %.6f vs simulation %.6f",
				res.FinalAcc, sim.FinalAcc)
		}
	}
	if *saveResult != "" {
		if err := persist.SaveResult(*saveResult, res); err != nil {
			return err
		}
		fmt.Println("result written to", *saveResult)
	}
	if *saveCurve != "" {
		f, err := os.Create(*saveCurve)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := persist.WriteCurveCSV(f, res); err != nil {
			return err
		}
		fmt.Println("curve written to", *saveCurve)
	}
	return nil
}

// loadChurnPlan resolves the -churn-plan flag: a path to a churn trace
// file when one exists at that path, otherwise an inline event spec. Empty
// means no churn (nil plan).
func loadChurnPlan(spec string) (*membership.Plan, error) {
	if spec == "" {
		return nil, nil
	}
	if f, err := os.Open(spec); err == nil {
		defer f.Close()
		plan, err := membership.ParseTrace(f)
		if err != nil {
			return nil, fmt.Errorf("churn trace %s: %w", spec, err)
		}
		return &plan, nil
	}
	plan, err := membership.ParseSpec(spec)
	if err != nil {
		return nil, err
	}
	return &plan, nil
}

// parseCrashSpec parses a comma-separated "node@round" list, e.g.
// "worker-0-1@40,edge-1@80", into a FaultPlan crash map.
func parseCrashSpec(spec string) (map[string]int, error) {
	if spec == "" {
		return nil, nil
	}
	out := make(map[string]int)
	for _, part := range strings.Split(spec, ",") {
		node, roundStr, ok := strings.Cut(strings.TrimSpace(part), "@")
		if !ok || node == "" {
			return nil, fmt.Errorf("malformed crash spec %q (want node@round)", part)
		}
		round, err := strconv.Atoi(roundStr)
		if err != nil || round < 0 {
			return nil, fmt.Errorf("malformed crash round in %q", part)
		}
		out[node] = round
	}
	return out, nil
}
