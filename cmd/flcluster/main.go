// Command flcluster runs HierAdMo as an actual distributed protocol: one
// node per worker, edge, and cloud, exchanging models and momenta over an
// in-memory hub or real TCP sockets. The distributed run is bit-identical
// to the in-process simulation (same batch streams, same aggregation
// order), which the command verifies when -verify is set.
//
// Usage:
//
//	flcluster -transport tcp -dataset mnist -model cnn
//	flcluster -transport memory -verify -save-result out.json -save-curve out.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"hieradmo/internal/cluster"
	"hieradmo/internal/core"
	"hieradmo/internal/experiment"
	"hieradmo/internal/persist"
	"hieradmo/internal/transport"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "flcluster:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("flcluster", flag.ContinueOnError)
	var (
		transportName = fs.String("transport", "memory", `"memory" or "tcp" (loopback sockets)`)
		datasetName   = fs.String("dataset", "mnist", "dataset: mnist|cifar10|imagenet|har")
		modelName     = fs.String("model", "cnn", "model: linear|logistic|cnn|vgg-mini|resnet-mini")
		classes       = fs.Int("classes", 0, "x-class non-IID assignment (0 = IID)")
		reduced       = fs.Bool("reduced", false, "run HierAdMo-R (fixed gammaEdge) instead of adaptive")
		verify        = fs.Bool("verify", false, "also run the in-process simulation and compare")
		scaleName     = fs.String("scale", "bench", `"bench" or "default"`)
		seed          = fs.Uint64("seed", 0, "override seed")
		saveResult    = fs.String("save-result", "", "write the run result as JSON to this path")
		saveCurve     = fs.String("save-curve", "", "write the accuracy curve as CSV to this path")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var s experiment.Scale
	switch *scaleName {
	case "bench":
		s = experiment.BenchScale()
	case "default":
		s = experiment.DefaultScale()
	default:
		return fmt.Errorf("unknown scale %q", *scaleName)
	}
	if *seed > 0 {
		s.Seed = *seed
	}
	cfg, err := experiment.BuildConfig(experiment.Workload{
		Dataset:          *datasetName,
		Model:            *modelName,
		ClassesPerWorker: *classes,
	}, s)
	if err != nil {
		return err
	}

	var net cluster.Network
	switch *transportName {
	case "memory":
		net = transport.NewMemoryNetwork()
	case "tcp":
		net = transport.NewTCPNetwork()
	default:
		return fmt.Errorf("unknown transport %q", *transportName)
	}

	fmt.Printf("distributed HierAdMo over %s: %d workers, %d edges, tau=%d pi=%d T=%d\n",
		*transportName, cfg.NumWorkers(), cfg.NumEdges(), cfg.Tau, cfg.Pi, cfg.T)
	res, err := cluster.Run(cfg, net, cluster.Options{Adaptive: !*reduced})
	if err != nil {
		return err
	}
	fmt.Println(res)

	if *verify {
		alg := core.New()
		if *reduced {
			alg = core.NewReduced()
		}
		sim, err := alg.Run(cfg)
		if err != nil {
			return fmt.Errorf("verification run: %w", err)
		}
		if sim.FinalAcc == res.FinalAcc {
			fmt.Printf("verified: distributed final accuracy %.4f matches the in-process simulation exactly\n", res.FinalAcc)
		} else {
			return fmt.Errorf("verification failed: distributed %.6f vs simulation %.6f",
				res.FinalAcc, sim.FinalAcc)
		}
	}
	if *saveResult != "" {
		if err := persist.SaveResult(*saveResult, res); err != nil {
			return err
		}
		fmt.Println("result written to", *saveResult)
	}
	if *saveCurve != "" {
		f, err := os.Create(*saveCurve)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := persist.WriteCurveCSV(f, res); err != nil {
			return err
		}
		fmt.Println("curve written to", *saveCurve)
	}
	return nil
}
