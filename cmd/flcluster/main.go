// Command flcluster runs HierAdMo as an actual distributed protocol: one
// node per worker, edge, and cloud, exchanging models and momenta over an
// in-memory hub or real TCP sockets. The distributed run is bit-identical
// to the in-process simulation (same batch streams, same aggregation
// order), which the command verifies when -verify is set.
//
// Usage:
//
//	flcluster -transport tcp -dataset mnist -model cnn
//	flcluster -transport memory -verify -save-result out.json -save-curve out.csv
//
// Fault-tolerance flags turn the run into a deterministic chaos experiment:
//
//	flcluster -crash worker-0-1@40 -min-quorum 0.5 -straggler-deadline 200ms
//	flcluster -drop-rate 0.03 -fault-seed 11 -min-quorum 0.5 \
//	    -straggler-deadline 300ms -recv-timeout 3s
//
// The run then degrades gracefully (quorum aggregation with renormalized
// weights) and prints a fault report instead of dying on the first lost
// message. Tolerance is bounded: a run whose losses exceed what the quorum
// and the one-sync staleness budget can absorb (e.g. heavy sustained loss on
// a topology with no quorum margin) still fails fast, with every node's
// error joined.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"hieradmo/internal/cluster"
	"hieradmo/internal/core"
	"hieradmo/internal/experiment"
	"hieradmo/internal/persist"
	"hieradmo/internal/transport"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "flcluster:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("flcluster", flag.ContinueOnError)
	var (
		transportName = fs.String("transport", "memory", `"memory" or "tcp" (loopback sockets)`)
		datasetName   = fs.String("dataset", "mnist", "dataset: mnist|cifar10|imagenet|har")
		modelName     = fs.String("model", "cnn", "model: linear|logistic|cnn|vgg-mini|resnet-mini")
		classes       = fs.Int("classes", 0, "x-class non-IID assignment (0 = IID)")
		reduced       = fs.Bool("reduced", false, "run HierAdMo-R (fixed gammaEdge) instead of adaptive")
		verify        = fs.Bool("verify", false, "also run the in-process simulation and compare")
		scaleName     = fs.String("scale", "bench", `"bench" or "default"`)
		seed          = fs.Uint64("seed", 0, "override seed")
		saveResult    = fs.String("save-result", "", "write the run result as JSON to this path")
		saveCurve     = fs.String("save-curve", "", "write the accuracy curve as CSV to this path")

		dropRate  = fs.Float64("drop-rate", 0, "inject message loss with this probability (0 disables)")
		maxDelay  = fs.Duration("max-delay", 0, "inject a uniform per-message delay up to this duration")
		faultSeed = fs.Uint64("fault-seed", 1, "seed for the deterministic fault schedule")
		crash     = fs.String("crash", "", `crash nodes at protocol rounds, e.g. "worker-0-1@40,edge-1@80"`)
		minQuorum = fs.Float64("min-quorum", 0, "fraction of reporters an aggregation needs (0 or 1 = strict full cohort)")
		straggler = fs.Duration("straggler-deadline", 0, "how long an aggregation waits for the full cohort before proceeding with a quorum")
		recvTO    = fs.Duration("recv-timeout", 0, "receive timeout per blocking wait (default 60s)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	crashes, err := parseCrashSpec(*crash)
	if err != nil {
		return err
	}
	if *verify && (*dropRate > 0 || len(crashes) > 0) {
		return fmt.Errorf("-verify requires a fault-free run: bit-equivalence with the simulation only holds without drops or crashes")
	}

	var s experiment.Scale
	switch *scaleName {
	case "bench":
		s = experiment.BenchScale()
	case "default":
		s = experiment.DefaultScale()
	default:
		return fmt.Errorf("unknown scale %q", *scaleName)
	}
	if *seed > 0 {
		s.Seed = *seed
	}
	cfg, err := experiment.BuildConfig(experiment.Workload{
		Dataset:          *datasetName,
		Model:            *modelName,
		ClassesPerWorker: *classes,
	}, s)
	if err != nil {
		return err
	}

	var net cluster.Network
	switch *transportName {
	case "memory":
		net = transport.NewMemoryNetwork()
	case "tcp":
		net = transport.NewTCPNetwork()
	default:
		return fmt.Errorf("unknown transport %q", *transportName)
	}
	if *dropRate > 0 || *maxDelay > 0 || len(crashes) > 0 {
		net = transport.NewFaultyNetwork(net, transport.FaultPlan{
			Seed:         *faultSeed,
			DropRate:     *dropRate,
			MaxDelay:     *maxDelay,
			CrashAtRound: crashes,
		})
	}

	fmt.Printf("distributed HierAdMo over %s: %d workers, %d edges, tau=%d pi=%d T=%d\n",
		*transportName, cfg.NumWorkers(), cfg.NumEdges(), cfg.Tau, cfg.Pi, cfg.T)
	res, err := cluster.Run(cfg, net, cluster.Options{
		Adaptive:          !*reduced,
		MinQuorum:         *minQuorum,
		StragglerDeadline: *straggler,
		RecvTimeout:       *recvTO,
	})
	if err != nil {
		return err
	}
	fmt.Println(res)
	if res.FaultReport.Any() {
		fmt.Println(res.FaultReport)
	}

	if *verify {
		alg := core.New()
		if *reduced {
			alg = core.NewReduced()
		}
		sim, err := alg.Run(cfg)
		if err != nil {
			return fmt.Errorf("verification run: %w", err)
		}
		if sim.FinalAcc == res.FinalAcc {
			fmt.Printf("verified: distributed final accuracy %.4f matches the in-process simulation exactly\n", res.FinalAcc)
		} else {
			return fmt.Errorf("verification failed: distributed %.6f vs simulation %.6f",
				res.FinalAcc, sim.FinalAcc)
		}
	}
	if *saveResult != "" {
		if err := persist.SaveResult(*saveResult, res); err != nil {
			return err
		}
		fmt.Println("result written to", *saveResult)
	}
	if *saveCurve != "" {
		f, err := os.Create(*saveCurve)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := persist.WriteCurveCSV(f, res); err != nil {
			return err
		}
		fmt.Println("curve written to", *saveCurve)
	}
	return nil
}

// parseCrashSpec parses a comma-separated "node@round" list, e.g.
// "worker-0-1@40,edge-1@80", into a FaultPlan crash map.
func parseCrashSpec(spec string) (map[string]int, error) {
	if spec == "" {
		return nil, nil
	}
	out := make(map[string]int)
	for _, part := range strings.Split(spec, ",") {
		node, roundStr, ok := strings.Cut(strings.TrimSpace(part), "@")
		if !ok || node == "" {
			return nil, fmt.Errorf("malformed crash spec %q (want node@round)", part)
		}
		round, err := strconv.Atoi(roundStr)
		if err != nil || round < 0 {
			return nil, fmt.Errorf("malformed crash round in %q", part)
		}
		out[node] = round
	}
	return out, nil
}
