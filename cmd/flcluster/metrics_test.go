package main

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"hieradmo/internal/cluster"
	"hieradmo/internal/dataset"
	"hieradmo/internal/fl"
	"hieradmo/internal/model"
	"hieradmo/internal/telemetry"
	"hieradmo/internal/transport"
)

func buildMetricsConfig(t *testing.T, seed uint64) *fl.Config {
	t.Helper()
	genCfg := dataset.GenConfig{
		Name:          "toy",
		Shape:         dataset.Shape{C: 1, H: 5, W: 5},
		NumClasses:    4,
		TemplateScale: 1.0,
		NoiseStd:      0.6,
		SmoothPasses:  1,
	}
	g, err := dataset.NewGenerator(genCfg, seed)
	if err != nil {
		t.Fatal(err)
	}
	train, test := g.TrainTest(320, 80, seed+1)
	shards, err := dataset.PartitionIID(train, 8, seed+2)
	if err != nil {
		t.Fatal(err)
	}
	hier, err := dataset.Hierarchy(shards, []int{4, 4})
	if err != nil {
		t.Fatal(err)
	}
	m, err := model.NewLogisticRegression(genCfg.Shape, genCfg.NumClasses)
	if err != nil {
		t.Fatal(err)
	}
	return &fl.Config{
		Model: m, Edges: hier, Test: test,
		Eta: 0.05, Gamma: 0.5, GammaEdge: 0.5,
		Tau: 2, Pi: 2, T: 24, BatchSize: 8, Seed: seed,
	}
}

// scrapeMetric extracts the value of one un-labelled metric sample from a
// Prometheus text exposition.
func scrapeMetric(t *testing.T, body, name string) float64 {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		rest, ok := strings.CutPrefix(line, name+" ")
		if !ok {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
		if err != nil {
			t.Fatalf("metric %s: bad sample %q: %v", name, line, err)
		}
		return v
	}
	t.Fatalf("metric %s not found in scrape:\n%s", name, body)
	return 0
}

// TestMetricsScrapeMatchesFaultReport runs a degraded cluster with a live
// /metrics endpoint, scrapes it over HTTP while training is in flight, and
// asserts afterwards that every fault-class counter the exporter serves
// equals the corresponding fl.Result.FaultReport total. The counters are
// incremented live by the transport and the fault recorder; the report is
// assembled independently at the end of the run — agreement means neither
// path double-counts.
func TestMetricsScrapeMatchesFaultReport(t *testing.T) {
	cfg := buildMetricsConfig(t, 73)
	reg := telemetry.NewRegistry()
	sink := telemetry.New(reg, nil)
	cfg.Telemetry = sink

	srv := httptest.NewServer(telemetry.Handler(reg))
	defer srv.Close()

	// Scrape concurrently with the run: the exporter must serve consistent
	// output while every tier is hammering the counters.
	done := make(chan struct{})
	midScrapes := make(chan int, 1)
	go func() {
		defer close(midScrapes)
		n := 0
		for {
			select {
			case <-done:
				midScrapes <- n
				return
			default:
			}
			resp, err := http.Get(srv.URL + "/metrics")
			if err == nil {
				if resp.StatusCode == http.StatusOK {
					n++
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()

	net := transport.NewFaultyNetwork(transport.NewMemoryNetwork(), transport.FaultPlan{
		Seed:     9,
		DropRate: 0.05,
	})
	res, err := cluster.Run(cfg, net, cluster.Options{
		Adaptive:          true,
		MinQuorum:         0.5,
		StragglerDeadline: 100 * time.Millisecond,
		RecvTimeout:       5 * time.Second,
		Telemetry:         sink,
	})
	close(done)
	if err != nil {
		t.Fatal(err)
	}
	if n := <-midScrapes; n == 0 {
		t.Error("no successful /metrics scrape completed while the run was in flight")
	}

	rep := res.FaultReport
	if !rep.Any() {
		t.Fatal("fault injection produced a clean run; the comparison below would be vacuous")
	}

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)

	for _, cmp := range []struct {
		metric string
		want   int
	}{
		{"fl_quorum_missing_workers_total", rep.TotalMissingWorkers()},
		{"fl_quorum_missing_edges_total", rep.TotalMissingEdges()},
		{"fl_stale_messages_total", rep.StaleMessages},
		{"fl_duplicate_reports_total", rep.DuplicateReports},
		{"fl_timeouts_total", rep.Timeouts},
		{"fl_dropped_messages_total", rep.Dropped},
		{"fl_send_retries_total", rep.Retries},
	} {
		if got := scrapeMetric(t, body, cmp.metric); got != float64(cmp.want) {
			t.Errorf("%s = %v, FaultReport says %d", cmp.metric, got, cmp.want)
		}
	}
	if got := scrapeMetric(t, body, "fl_dropped_messages_total"); got == 0 {
		t.Error("drop injection left fl_dropped_messages_total at 0")
	}
	// Protocol-progress counters must also reflect a completed run.
	if got := scrapeMetric(t, body, "fl_cloud_syncs_total"); got != float64(cfg.T/(cfg.Tau*cfg.Pi)) {
		t.Errorf("fl_cloud_syncs_total = %v, want %d", got, cfg.T/(cfg.Tau*cfg.Pi))
	}
	if got := scrapeMetric(t, body, "fl_round"); got != float64(cfg.T) {
		t.Errorf("fl_round = %v, want %d", got, cfg.T)
	}
}

// TestRunServesMetricsEndToEnd drives the actual CLI flags: -metrics-addr
// must bind, announce the address on stdout, and serve until the run exits.
func TestRunServesMetricsEndToEnd(t *testing.T) {
	dir := t.TempDir()
	err := run([]string{
		"-transport", "memory",
		"-model", "logistic",
		"-trace-out", dir + "/run.trace",
		"-metrics-addr", "127.0.0.1:0",
	}, nil)
	if err != nil {
		t.Fatalf("run with telemetry flags: %v", err)
	}
	events, err := telemetry.ReadTraceFile(dir + "/run.trace")
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("-trace-out produced an empty trace")
	}
	if err := telemetry.CheckTrace(events); err != nil {
		t.Errorf("cluster trace sequence: %v", err)
	}
}
