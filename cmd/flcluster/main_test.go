package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunUnknownTransport(t *testing.T) {
	if err := run([]string{"-transport", "carrier-pigeon"}); err == nil {
		t.Error("unknown transport accepted")
	}
}

func TestRunUnknownScale(t *testing.T) {
	if err := run([]string{"-scale", "galactic"}); err == nil {
		t.Error("unknown scale accepted")
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-nope"}); err == nil {
		t.Error("bad flag accepted")
	}
}

func TestRunMemoryLogisticWithVerifyAndSave(t *testing.T) {
	dir := t.TempDir()
	resPath := filepath.Join(dir, "res.json")
	curvePath := filepath.Join(dir, "curve.csv")
	err := run([]string{
		"-transport", "memory",
		"-model", "logistic",
		"-classes", "3",
		"-verify",
		"-save-result", resPath,
		"-save-curve", curvePath,
	})
	if err != nil {
		t.Fatalf("memory run: %v", err)
	}
	for _, p := range []string{resPath, curvePath} {
		if st, err := os.Stat(p); err != nil || st.Size() == 0 {
			t.Errorf("artifact %s missing or empty (%v)", p, err)
		}
	}
}
