package main

import (
	"bufio"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

func TestRunUnknownTransport(t *testing.T) {
	if err := run([]string{"-transport", "carrier-pigeon"}, nil); err == nil {
		t.Error("unknown transport accepted")
	}
}

func TestRunUnknownScale(t *testing.T) {
	if err := run([]string{"-scale", "galactic"}, nil); err == nil {
		t.Error("unknown scale accepted")
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-nope"}, nil); err == nil {
		t.Error("bad flag accepted")
	}
}

func TestRunRestartWithoutCrash(t *testing.T) {
	if err := run([]string{"-restart-after", "worker-0-1@4"}, nil); err == nil {
		t.Error("-restart-after without a matching -crash accepted")
	}
}

func TestRunResumeWithoutCheckpointDir(t *testing.T) {
	err := run([]string{"-transport", "memory", "-model", "logistic", "-resume"}, nil)
	if err == nil {
		t.Error("-resume without -checkpoint-dir accepted")
	}
}

func TestRunMemoryLogisticWithVerifyAndSave(t *testing.T) {
	dir := t.TempDir()
	resPath := filepath.Join(dir, "res.json")
	curvePath := filepath.Join(dir, "curve.csv")
	err := run([]string{
		"-transport", "memory",
		"-model", "logistic",
		"-classes", "3",
		"-verify",
		"-save-result", resPath,
		"-save-curve", curvePath,
	}, nil)
	if err != nil {
		t.Fatalf("memory run: %v", err)
	}
	for _, p := range []string{resPath, curvePath} {
		if st, err := os.Stat(p); err != nil || st.Size() == 0 {
			t.Errorf("artifact %s missing or empty (%v)", p, err)
		}
	}
}

// TestHelperProcess is the re-exec target for the signal tests. Mode "1"
// runs flcluster exactly as the installed binary would (real signal handling
// and exit codes); mode "hang" installs the signal handler, announces
// readiness, and blocks forever so the double-signal abort path can be
// exercised without racing a live training run.
func TestHelperProcess(t *testing.T) {
	switch os.Getenv("FLCLUSTER_HELPER") {
	case "1":
		args := strings.Split(os.Getenv("FLCLUSTER_ARGS"), " ")
		os.Exit(mainExit(args, installInterrupt("flcluster")))
	case "hang":
		installInterrupt("flcluster")
		fmt.Println("ready")
		select {}
	default:
		t.Skip("helper process only")
	}
}

// TestSigtermCheckpointsAndResumes sends a real SIGTERM to a live flcluster
// process mid-run and asserts the graceful-shutdown contract: exit code 3,
// resumable snapshots on disk, and a -resume rerun that completes and still
// verifies bit-identical against the in-process simulation.
func TestSigtermCheckpointsAndResumes(t *testing.T) {
	if testing.Short() {
		t.Skip("process signal test skipped in -short mode")
	}
	dir := t.TempDir()
	args := []string{
		"-transport", "memory",
		"-model", "logistic",
		"-classes", "3",
		"-checkpoint-dir", dir,
	}
	// Stretch the monitored run with injected per-message delays so the
	// signal reliably lands mid-run even on a loaded machine; delays change
	// timing only, never results, so the resumed run still verifies.
	cmd := exec.Command(os.Args[0], "-test.run", "TestHelperProcess")
	cmd.Env = append(os.Environ(),
		"FLCLUSTER_HELPER=1",
		"FLCLUSTER_ARGS="+strings.Join(append(args, "-max-delay", "10ms"), " "))
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}

	// Interrupt as soon as the first snapshot lands.
	deadline := time.Now().Add(60 * time.Second)
	for {
		if matches, _ := filepath.Glob(filepath.Join(dir, "*.ckpt")); len(matches) > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("run never wrote a snapshot")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	err := cmd.Wait()
	if code := cmd.ProcessState.ExitCode(); code != 3 {
		t.Fatalf("exit code = %d (err %v), want 3 for a graceful interrupt", code, err)
	}
	if matches, _ := filepath.Glob(filepath.Join(dir, "*.ckpt")); len(matches) == 0 {
		t.Fatal("no snapshots left behind after graceful shutdown")
	}

	// The same command line plus -resume finishes the run, and -verify proves
	// the stitched-together result is bit-identical to the simulation.
	if err := run(append(args, "-resume", "-verify"), nil); err != nil {
		t.Fatalf("resume after SIGTERM: %v", err)
	}
}

// TestDoubleSignalAborts asserts the escalation path: the second
// SIGINT/SIGTERM abandons the graceful shutdown and exits with code 4.
func TestDoubleSignalAborts(t *testing.T) {
	if testing.Short() {
		t.Skip("process signal test skipped in -short mode")
	}
	cmd := exec.Command(os.Args[0], "-test.run", "TestHelperProcess")
	cmd.Env = append(os.Environ(), "FLCLUSTER_HELPER=hang")
	cmd.Stderr = os.Stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	// Wait until the helper has installed its handler.
	sc := bufio.NewScanner(out)
	for sc.Scan() {
		if strings.TrimSpace(sc.Text()) == "ready" {
			break
		}
	}
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	cmd.Wait()
	if code := cmd.ProcessState.ExitCode(); code != 4 {
		t.Fatalf("exit code = %d, want 4 for an aborted shutdown", code)
	}
}
