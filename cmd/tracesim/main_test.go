package main

import "testing"

func TestRunUnknownScale(t *testing.T) {
	if err := run([]string{"-scale", "galactic"}); err == nil {
		t.Error("unknown scale accepted")
	}
}

func TestRunUnknownSetting(t *testing.T) {
	if err := run([]string{"-setting", "3"}); err == nil {
		t.Error("unknown setting accepted")
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-nope"}); err == nil {
		t.Error("bad flag accepted")
	}
}
