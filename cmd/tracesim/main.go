// Command tracesim runs the paper's trace-driven training-time study
// (Fig. 2(h)/(l)): it trains CNN-on-MNIST with every algorithm, replays the
// accuracy curves onto the simulated testbed timelines, and reports the
// wall-clock time each algorithm needs to reach the target accuracy,
// together with the HierAdMo speedup factors.
//
// Usage:
//
//	tracesim -setting 1            # Fig. 2(h): tau=10, pi=2 / two-tier tau=20
//	tracesim -setting 2 -target 0.8
package main

import (
	"flag"
	"fmt"
	"os"

	"hieradmo/internal/experiment"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "tracesim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("tracesim", flag.ContinueOnError)
	var (
		setting   = fs.Int("setting", 1, "paper setting: 1 (Fig. 2h) or 2 (Fig. 2l)")
		target    = fs.Float64("target", 0, "target accuracy (default from scale preset)")
		scaleName = fs.String("scale", "bench", `scale preset: "bench" or "default"`)
		seed      = fs.Uint64("seed", 0, "override seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	var s experiment.Scale
	switch *scaleName {
	case "bench":
		s = experiment.BenchScale()
	case "default":
		s = experiment.DefaultScale()
	default:
		return fmt.Errorf("unknown scale %q", *scaleName)
	}
	if *target > 0 {
		s.TargetAcc = *target
	}
	if *seed > 0 {
		s.Seed = *seed
	}
	var ts experiment.TimingSetting
	switch *setting {
	case 1:
		ts = experiment.TimingSetting1
	case 2:
		ts = experiment.TimingSetting2
	default:
		return fmt.Errorf("setting %d, want 1 or 2", *setting)
	}
	tbl, err := experiment.RunFig2TrainingTime(s, ts)
	if err != nil {
		return err
	}
	fmt.Print(tbl.Render())
	return nil
}
