package main

import "testing"

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatalf("-list: %v", err)
	}
}

func TestRunUnknownScale(t *testing.T) {
	if err := run([]string{"-scale", "galactic"}); err == nil {
		t.Error("unknown scale accepted")
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-exp", "fig99"}); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-definitely-not-a-flag"}); err == nil {
		t.Error("bad flag accepted")
	}
}

func TestRunTheoryExperiment(t *testing.T) {
	// The theory experiment has no training loop, so it is fast enough to
	// exercise the full CLI path end to end.
	if err := run([]string{"-exp", "theory", "-train", "300", "-test", "100"}); err != nil {
		t.Fatalf("theory experiment: %v", err)
	}
}
