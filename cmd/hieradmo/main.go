// Command hieradmo runs the reproduction experiments: every table and
// figure of the HierAdMo paper (ICDCS 2023), at a configurable scale.
//
// Usage:
//
//	hieradmo -list
//	hieradmo -exp table2 -scale bench
//	hieradmo -exp fig2e -scale default -train 8000 -T 2000
//	hieradmo -exp all -scale bench
package main

import (
	"flag"
	"fmt"
	"os"

	"hieradmo/internal/experiment"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "hieradmo:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("hieradmo", flag.ContinueOnError)
	var (
		list      = fs.Bool("list", false, "list experiment IDs and exit")
		exp       = fs.String("exp", "table2", `experiment ID (see -list) or "all"`)
		scaleName = fs.String("scale", "bench", `scale preset: "bench" or "default"`)
		train     = fs.Int("train", 0, "override training samples")
		test      = fs.Int("test", 0, "override test samples")
		tConvex   = fs.Int("tconvex", 0, "override convex-model iteration budget")
		tNonConv  = fs.Int("tnonconvex", 0, "override non-convex iteration budget")
		batch     = fs.Int("batch", 0, "override batch size")
		target    = fs.Float64("target", 0, "override time-to-accuracy target (fig2h/l)")
		repeats   = fs.Int("repeats", 0, "run Table II cells with N seeds and report mean ± std")
		workers   = fs.Int("workers", 0, "goroutine pool size for each run's parallel training phase (0 = GOMAXPROCS, 1 = sequential; results are identical at any setting)")
		csvOut    = fs.Bool("csv", false, "emit tables as CSV instead of aligned text")
		seed      = fs.Uint64("seed", 0, "override seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, id := range experiment.ExperimentIDs() {
			fmt.Println(id)
		}
		return nil
	}

	var s experiment.Scale
	switch *scaleName {
	case "bench":
		s = experiment.BenchScale()
	case "default":
		s = experiment.DefaultScale()
	default:
		return fmt.Errorf("unknown scale %q (want bench or default)", *scaleName)
	}
	if *train > 0 {
		s.TrainSamples = *train
	}
	if *test > 0 {
		s.TestSamples = *test
	}
	if *tConvex > 0 {
		s.TConvex = *tConvex
	}
	if *tNonConv > 0 {
		s.TNonConvex = *tNonConv
	}
	if *batch > 0 {
		s.BatchSize = *batch
	}
	if *target > 0 {
		s.TargetAcc = *target
	}
	if *repeats > 0 {
		s.Repeats = *repeats
	}
	if *workers < 0 {
		return fmt.Errorf("-workers %d must be >= 0", *workers)
	}
	s.Workers = *workers
	if *seed > 0 {
		s.Seed = *seed
	}

	ids := []string{*exp}
	if *exp == "all" {
		ids = experiment.ExperimentIDs()
	}
	reg := experiment.Registry()
	for _, id := range ids {
		runner, ok := reg[id]
		if !ok {
			return fmt.Errorf("unknown experiment %q (use -list)", id)
		}
		tbl, err := runner(s)
		if err != nil {
			return fmt.Errorf("experiment %s: %w", id, err)
		}
		fmt.Println()
		if *csvOut {
			fmt.Print(tbl.RenderCSV())
		} else {
			fmt.Print(tbl.Render())
		}
	}
	return nil
}
