// Package hieradmo is a from-scratch Go implementation of HierAdMo —
// "Hierarchical Federated Learning with Adaptive Momentum in Multi-Tier
// Networks" (Yang et al., ICDCS 2023) — together with every substrate the
// paper's evaluation needs: a pure-Go neural-network stack, synthetic
// dataset generators with the paper's non-IID partitioning protocol, nine
// baseline FL algorithms, a trace-driven network/compute timing simulator,
// and an experiment harness that regenerates every table and figure of the
// paper.
//
// This root package is the stable public facade over the internal packages.
// Typical use:
//
//	cfg, err := hieradmo.BuildConfig(hieradmo.Workload{
//		Dataset: "mnist", Model: "cnn", ClassesPerWorker: 3,
//	}, hieradmo.BenchScale())
//	...
//	res, err := hieradmo.New().Run(cfg)
//	fmt.Println(res)
//
// or run a full paper experiment:
//
//	tbl, err := hieradmo.RunExperiment("table2", hieradmo.DefaultScale())
//	fmt.Print(tbl.Render())
package hieradmo

import (
	"fmt"

	"hieradmo/internal/core"
	"hieradmo/internal/experiment"
	"hieradmo/internal/fl"
)

// Core federated-learning types, re-exported from the framework.
type (
	// Config describes one federated training run (topology, model,
	// hyper-parameters, schedule).
	Config = fl.Config
	// Result is the outcome of a run: final accuracy and the recorded
	// accuracy/loss curve.
	Result = fl.Result
	// Point is one curve sample.
	Point = fl.Point
	// Algorithm is any runnable FL procedure.
	Algorithm = fl.Algorithm
)

// Experiment-harness types, re-exported.
type (
	// Scale sets the cost/fidelity trade-off of experiment runs.
	Scale = experiment.Scale
	// Workload selects dataset, model, topology and schedule.
	Workload = experiment.Workload
	// Table is the rendered result of one experiment.
	Table = experiment.Table
)

// HierAdMo construction options, re-exported from the core package.
type (
	// Option customizes the HierAdMo algorithm.
	Option = core.Option
	// AdaptSignal selects the γℓ adaptation statistic.
	AdaptSignal = core.AdaptSignal
)

// Adaptation signal variants.
const (
	// SignalYSum is the paper's eq. (6) statistic.
	SignalYSum = core.SignalYSum
	// SignalVelocity is the interval-displacement ablation variant.
	SignalVelocity = core.SignalVelocity
)

// New returns the adaptive HierAdMo algorithm (the paper's contribution).
func New(opts ...Option) Algorithm { return core.New(opts...) }

// NewReduced returns HierAdMo-R, the fixed-γℓ variant the paper compares
// against in Theorem 5 and Fig. 2(i)–(k).
func NewReduced(opts ...Option) Algorithm { return core.NewReduced(opts...) }

// WithAdaptSignal selects the adaptation statistic.
func WithAdaptSignal(s AdaptSignal) Option { return core.WithAdaptSignal(s) }

// WithClampCeiling overrides the γℓ clamp of eq. (7) (default 0.99).
func WithClampCeiling(c float64) Option { return core.WithClampCeiling(c) }

// WithParticipation samples only that fraction of each edge's workers into
// every edge aggregation (cross-device extension; default 1).
func WithParticipation(frac float64) Option { return core.WithParticipation(frac) }

// WithUplinkQuantization compresses every worker→edge upload through a
// QSGD-style stochastic quantizer of the given bit width (2–8; 0 disables).
func WithUplinkQuantization(bits int) Option { return core.WithUplinkQuantization(bits) }

// Algorithms returns the paper's full 11-algorithm roster (HierAdMo,
// HierAdMo-R, and the nine baselines) in Table II row order.
func Algorithms() []Algorithm { return experiment.AllAlgorithms() }

// BuildConfig materializes a Workload at a Scale into a runnable Config
// (synthetic dataset generation, hierarchical partitioning, model
// construction, and hyper-parameter defaults from the paper).
func BuildConfig(w Workload, s Scale) (*Config, error) {
	return experiment.BuildConfig(w, s)
}

// BenchScale is the scaled-down experiment preset (seconds per run).
func BenchScale() Scale { return experiment.BenchScale() }

// DefaultScale is the CLI preset (closer to paper budgets).
func DefaultScale() Scale { return experiment.DefaultScale() }

// ExperimentIDs lists every reproducible artifact: "table2", "fig2a" …
// "fig2l", and the ablations.
func ExperimentIDs() []string { return experiment.ExperimentIDs() }

// RunExperiment regenerates one paper table or figure by ID.
func RunExperiment(id string, s Scale) (*Table, error) {
	run, ok := experiment.Registry()[id]
	if !ok {
		return nil, fmt.Errorf("hieradmo: unknown experiment %q (known: %v)",
			id, experiment.ExperimentIDs())
	}
	return run(s)
}
