// Quickstart: train a CNN on the synthetic MNIST stand-in with HierAdMo
// over the paper's default topology (4 workers, 2 edge nodes, 1 cloud) and
// print the accuracy curve.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"hieradmo"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	scale := hieradmo.BenchScale()
	cfg, err := hieradmo.BuildConfig(hieradmo.Workload{
		Dataset: "mnist",
		Model:   "cnn",
	}, scale)
	if err != nil {
		return err
	}
	fmt.Printf("training %d workers over %d edges: tau=%d pi=%d T=%d\n",
		cfg.NumWorkers(), cfg.NumEdges(), cfg.Tau, cfg.Pi, cfg.T)

	res, err := hieradmo.New().Run(cfg)
	if err != nil {
		return err
	}
	fmt.Println(res)
	for _, p := range res.Curve {
		fmt.Printf("  t=%4d  acc=%.3f  loss=%.4f\n", p.Iter, p.TestAcc, p.TrainLoss)
	}
	return nil
}
