// Trace-driven timing study: train CNN-on-MNIST with a three-tier and a
// two-tier algorithm, then replay the accuracy curves onto the simulated
// paper testbed (heterogeneous phones + laptop workers, Wi-Fi LAN, public-
// Internet WAN) to compare wall-clock time-to-accuracy — the paper's
// Fig. 2(h)/(l) scenario.
//
//	go run ./examples/tracedriven
package main

import (
	"fmt"
	"log"

	"hieradmo"
	"hieradmo/internal/experiment"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	scale := hieradmo.BenchScale()
	fmt.Printf("simulated testbed, target accuracy %.2f\n\n", scale.TargetAcc)
	tbl, err := experiment.RunFig2TrainingTime(scale, experiment.TimingSetting1)
	if err != nil {
		return err
	}
	fmt.Print(tbl.Render())
	fmt.Println("\nexpected shape: the three-tier momentum algorithms (HierAdMo first)")
	fmt.Println("reach the target in a fraction of the two-tier baselines' time,")
	fmt.Println("because only edges cross the WAN and only every tau*pi iterations.")
	return nil
}
