// Distributed execution: run HierAdMo as a real message-passing protocol —
// a cloud node, two edge nodes, and four worker nodes exchanging models and
// momenta over loopback TCP sockets — and verify that the distributed run
// reproduces the in-process simulation exactly.
//
//	go run ./examples/distributed
package main

import (
	"fmt"
	"log"

	"hieradmo"
	"hieradmo/internal/cluster"
	"hieradmo/internal/transport"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	scale := hieradmo.BenchScale()
	cfg, err := hieradmo.BuildConfig(hieradmo.Workload{
		Dataset:          "mnist",
		Model:            "logistic",
		ClassesPerWorker: 3,
	}, scale)
	if err != nil {
		return err
	}

	fmt.Printf("spawning 1 cloud + %d edges + %d workers over TCP loopback…\n",
		cfg.NumEdges(), cfg.NumWorkers())
	dist, err := cluster.Run(cfg, transport.NewTCPNetwork(), cluster.Options{Adaptive: true})
	if err != nil {
		return err
	}
	fmt.Println("distributed:", dist)

	sim, err := hieradmo.New().Run(cfg)
	if err != nil {
		return err
	}
	fmt.Println("simulation: ", sim)

	if dist.FinalAcc == sim.FinalAcc {
		fmt.Println("\nbit-identical: the distributed protocol reproduces the simulation exactly.")
	} else {
		fmt.Println("\nWARNING: distributed and simulated results differ!")
	}
	return nil
}
