// Non-IID study (the scenario that motivates the paper): compare HierAdMo
// against hierarchical FedAvg and plain FedAvg while tightening the per-
// worker class budget from 9 classes down to 3 (higher data heterogeneity,
// larger gradient divergence δ), as in Fig. 2(e)–(g).
//
//	go run ./examples/noniid
package main

import (
	"fmt"
	"log"

	"hieradmo"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	scale := hieradmo.BenchScale()
	algorithms := []hieradmo.Algorithm{hieradmo.New(), hieradmo.NewReduced()}
	for _, alg := range hieradmo.Algorithms() {
		if alg.Name() == "HierFAVG" || alg.Name() == "FedAvg" {
			algorithms = append(algorithms, alg)
		}
	}

	fmt.Printf("%-12s", "classes/wkr")
	for _, alg := range algorithms {
		fmt.Printf("  %12s", alg.Name())
	}
	fmt.Println()

	for _, classes := range []int{9, 6, 3} {
		cfg, err := hieradmo.BuildConfig(hieradmo.Workload{
			Dataset:          "mnist",
			Model:            "cnn",
			ClassesPerWorker: classes,
		}, scale)
		if err != nil {
			return err
		}
		fmt.Printf("%-12d", classes)
		for _, alg := range algorithms {
			res, err := alg.Run(cfg)
			if err != nil {
				return err
			}
			fmt.Printf("  %11.2f%%", 100*res.FinalAcc)
		}
		fmt.Println()
	}
	fmt.Println("\nexpected shape: every column degrades as classes/worker shrinks;")
	fmt.Println("HierAdMo stays on top (paper Fig. 2(e)-(g)).")
	return nil
}
