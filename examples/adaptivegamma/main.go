// Adaptive momentum study: compare HierAdMo's online-adapted edge momentum
// factor γℓ against the exhaustive enumeration of fixed γℓ under HierAdMo-R
// (the paper's Fig. 2(i)–(k)). The adaptive run should land at or near the
// best fixed setting without knowing it in advance.
//
//	go run ./examples/adaptivegamma
package main

import (
	"fmt"
	"log"
	"strings"

	"hieradmo"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	scale := hieradmo.BenchScale()
	const gamma = 0.6 // the paper's middle panel, Fig. 2(j)

	fmt.Printf("CNN on synthetic CIFAR-10, worker momentum gamma=%.1f\n\n", gamma)
	var bestFixed float64
	for _, ge := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
		cfg, err := hieradmo.BuildConfig(hieradmo.Workload{
			Dataset: "cifar10", Model: "cnn",
			Gamma: gamma, GammaEdge: ge,
		}, scale)
		if err != nil {
			return err
		}
		res, err := hieradmo.NewReduced().Run(cfg)
		if err != nil {
			return err
		}
		if res.FinalAcc > bestFixed {
			bestFixed = res.FinalAcc
		}
		bar := strings.Repeat("#", int(res.FinalAcc*40))
		fmt.Printf("fixed γℓ=%.1f  %6.2f%%  %s\n", ge, 100*res.FinalAcc, bar)
	}

	cfg, err := hieradmo.BuildConfig(hieradmo.Workload{
		Dataset: "cifar10", Model: "cnn", Gamma: gamma,
	}, scale)
	if err != nil {
		return err
	}
	res, err := hieradmo.New().Run(cfg)
	if err != nil {
		return err
	}
	bar := strings.Repeat("#", int(res.FinalAcc*40))
	fmt.Printf("adaptive      %6.2f%%  %s\n", 100*res.FinalAcc, bar)
	fmt.Printf("\nbest fixed: %.2f%%; adaptive should be at or near it without tuning.\n",
		100*bestFixed)
	return nil
}
