# Developer entry points. The tier-1 gate (what CI and the roadmap require)
# is `make check`; `make race` runs the concurrency-heavy packages under the
# race detector with widened timing windows (see internal/cluster/race_on_test.go).

GO ?= go

.PHONY: build test vet lint lint-fast check race fuzz recover bench benchdiff benchall churn clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

## lint: formatting plus the two static-analysis gates — stock go vet and
## the repo's own flvet suite (determinism, map-order, reduction-order,
## goroutine-policy, wire-allocation, nil-sink, checkpoint-completeness,
## and allocation-free hot-path invariants; see DESIGN.md §11 and §16).
## flvet runs against the committed baseline ratchet: accepted debt in
## analysis_baseline.json passes, new findings fail, fixed findings
## shrink the file.
lint:
	@fmtout=$$(gofmt -l .); if [ -n "$$fmtout" ]; then \
		echo "gofmt needed on:"; echo "$$fmtout"; exit 1; fi
	$(GO) vet ./...
	$(GO) run ./cmd/flvet -baseline analysis_baseline.json ./...

## lint-fast: flvet only over the packages whose files changed vs
## origin/main (plus gofmt on the whole tree, which is cheap). Falls back
## to the full run when the merge base is unavailable (shallow clone) or
## when module-wide files like go.mod or the analysis suite itself
## changed. The whole-program checkers (ckptstate, allocfree) still load
## the full module for cross-package facts — this skips only the
## per-package reporting, which is where the time goes.
lint-fast:
	@fmtout=$$(gofmt -l .); if [ -n "$$fmtout" ]; then \
		echo "gofmt needed on:"; echo "$$fmtout"; exit 1; fi
	@base=$$(git merge-base origin/main HEAD 2>/dev/null); \
	if [ -z "$$base" ]; then \
		echo "lint-fast: no merge base with origin/main; running full lint"; \
		$(GO) run ./cmd/flvet -baseline analysis_baseline.json ./...; exit $$?; fi; \
	changed=$$(git diff --name-only $$base HEAD -- '*.go'; git status --porcelain | awk '/\.go$$/ {print $$2}'); \
	if echo "$$changed" | grep -qE '^(go\.mod|go\.sum|internal/analysis/)'; then \
		echo "lint-fast: analysis suite or module files changed; running full lint"; \
		$(GO) run ./cmd/flvet -baseline analysis_baseline.json ./...; exit $$?; fi; \
	pkgs=$$(echo "$$changed" | xargs -r -n1 dirname | sort -u | sed 's|^|./|'); \
	if [ -z "$$pkgs" ]; then echo "lint-fast: no Go changes vs origin/main"; exit 0; fi; \
	echo "lint-fast: $$pkgs"; \
	$(GO) run ./cmd/flvet -baseline analysis_baseline.json $$pkgs

## check: the tier-1 gate — build, lint (gofmt + go vet + flvet against
## the committed baseline), the full test suite, the crash-recovery
## integration pass, the race-detector sweep, and the perf gate against
## the committed benchmark baseline. Also leaves the machine-readable
## findings artifact (flvet_findings.json) for CI to archive and diff.
check: build lint test recover race benchdiff
	$(GO) run ./cmd/flvet -json ./... > flvet_findings.json || true
	@echo "check: wrote flvet_findings.json"

## race: race-detect the distributed runtime, transport layers, checkpoint
## snapshot/restore, telemetry instruments (scraped concurrently with
## writers), and the parallel training paths (core/baseline worker pools,
## pooled nn workspaces).
race:
	$(GO) test -race -count=1 ./internal/cluster/... ./internal/transport/... \
		./internal/checkpoint/... ./internal/parallel/... ./internal/core/... \
		./internal/baseline/... ./internal/fl/... ./internal/nn/... \
		./internal/tensor/... ./internal/robust/... \
		./internal/telemetry/... ./internal/membership/... ./cmd/tracecat/...

## fuzz: short-budget fuzzing of the byte-boundary decoders — the
## checkpoint snapshot reader, the telemetry JSONL trace reader, and the
## tracecat line parser — plus the conv-kernel equivalence target, which
## asserts the im2col/GEMM forward+backward stays bitwise identical to the
## retained naive reference on fuzzer-chosen shapes and data, and the
## robust-aggregation targets, which assert median/trimmed-mean reject
## (never propagate) non-finite reporter values on fuzzer-chosen cohorts,
## and the topology-spec parser, which must yield a tree or a typed error
## (never a panic) on arbitrary spec strings, with String/Parse
## round-tripping every accepted tree.
## Every input must yield a decoded value or a wrapped error, never a
## panic or an unbounded allocation. Override with FUZZTIME=1m for longer
## runs.
FUZZTIME ?= 10s
fuzz:
	$(GO) test ./internal/checkpoint/ -fuzz FuzzOpenSnapshot -fuzztime $(FUZZTIME)
	$(GO) test ./internal/telemetry/ -run '^$$' -fuzz 'FuzzReadTrace$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/telemetry/ -run '^$$' -fuzz FuzzReadTraceRoundTrip -fuzztime $(FUZZTIME)
	$(GO) test ./cmd/tracecat/ -run '^$$' -fuzz FuzzParseLine -fuzztime $(FUZZTIME)
	$(GO) test ./internal/nn/ -run '^$$' -fuzz FuzzConvGEMMEquivalence -fuzztime $(FUZZTIME)
	$(GO) test ./internal/robust/ -run '^$$' -fuzz FuzzMedianAggregate -fuzztime $(FUZZTIME)
	$(GO) test ./internal/robust/ -run '^$$' -fuzz FuzzTrimmedMean -fuzztime $(FUZZTIME)
	$(GO) test ./internal/topology/ -run '^$$' -fuzz FuzzParseTopology -fuzztime $(FUZZTIME)
	$(GO) test ./internal/analysis/ -run '^$$' -fuzz FuzzAllowDirective -fuzztime $(FUZZTIME)

## recover: the crash-recovery integration suite — checkpoint format and
## corruption handling, bit-identical simulation resume, cluster
## interrupt/restart/rejoin, and the process-level SIGKILL/SIGTERM tests.
recover:
	$(GO) test -count=1 ./internal/checkpoint/... || exit 1
	$(GO) test -count=1 ./internal/core/... ./internal/baseline/... -run 'Resume' || exit 1
	$(GO) test -count=1 ./internal/cluster/... \
		-run 'TestCluster(InterruptResume|CrashRestartMatchesParticipation|WorkerRestartRejoins)' || exit 1
	$(GO) test -count=1 ./cmd/flnode/ -run 'TestMultiProcessKillRestart' || exit 1
	$(GO) test -count=1 ./cmd/flcluster/ -run 'TestSigterm|TestDoubleSignal'

## bench: run the core benchmarks with -benchmem and record the perf
## trajectory (ns/op, B/op, allocs/op, worker-pool size) in BENCH_core.json.
## -count=3 repetitions are merged best-of-N by benchjson: the minimum is
## the stable noise estimator on a shared box, where interference only ever
## adds time (observed single-run spread on this host is >30%).
BENCHFLAGS = -bench=. -benchmem -benchtime=10x -count=3 -run=^$$
bench:
	$(GO) test $(BENCHFLAGS) ./internal/core \
		| $(GO) run ./cmd/benchjson -out BENCH_core.json
	@cat BENCH_core.json

## benchdiff: the perf gate — rerun the core benchmarks and fail when any
## ns/op, B/op, or allocs/op regressed beyond its budget against the
## committed BENCH_core.json, or when a workers=N benchmark stops holding
## its own against workers=1 (core-count-aware: on a single-core host the
## pool must stay within 15% of serial; with cores available it must show
## real speedup — see cmd/benchjson checkScaling). The ns/op budget is
## looser than the byte/alloc budgets: B/op and allocs/op are deterministic
## so 10% catches any real leak, while wall time on a shared single-core
## box still spreads ~15% even best-of-3 — 25% is above the noise floor
## yet far below the 2x-class regressions this gate exists to catch.
benchdiff:
	$(GO) test $(BENCHFLAGS) ./internal/core \
		| $(GO) run ./cmd/benchjson -baseline BENCH_core.json -max-regress 0.25 \
			-max-bytes-regress 0.10 -max-alloc-regress 0.10 -check-scaling

## benchall: every benchmark in the repo (experiment tables, kernels, nn).
benchall:
	$(GO) test -bench=. -benchtime=1x -run=^$$ ./...

## churn: the dynamic-membership study — static hierarchy vs the seeded
## churn trace (late join + permanent leave + re-tiering) under each
## gammaEdge migration policy, with accuracy and traffic side by side.
churn:
	$(GO) run ./cmd/hieradmo -exp churn

clean:
	$(GO) clean ./...
