# Developer entry points. The tier-1 gate (what CI and the roadmap require)
# is `make check`; `make race` runs the concurrency-heavy packages under the
# race detector with widened timing windows (see internal/cluster/race_on_test.go).

GO ?= go

.PHONY: build test vet check race bench clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

## check: the tier-1 gate — build, vet, and the full test suite.
check: build vet test

## race: race-detect the distributed runtime and transport layers.
race:
	$(GO) test -race -count=1 ./internal/cluster/... ./internal/transport/...

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ ./...

clean:
	$(GO) clean ./...
