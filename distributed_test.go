package hieradmo

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunDistributedMatchesSimulation(t *testing.T) {
	cfg, err := BuildConfig(Workload{Dataset: "mnist", Model: "logistic"}, tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	sim, err := New().Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dist, err := RunDistributed(cfg, NewMemoryNetwork(), ClusterOptions{Adaptive: true})
	if err != nil {
		t.Fatal(err)
	}
	if dist.FinalAcc != sim.FinalAcc {
		t.Errorf("distributed %v != simulation %v", dist.FinalAcc, sim.FinalAcc)
	}
}

func TestFacadePersistence(t *testing.T) {
	dir := t.TempDir()
	res := &Result{Algorithm: "x", FinalAcc: 0.5, Iterations: 10,
		Curve: []Point{{Iter: 10, TestAcc: 0.5, TrainLoss: 1}}}
	path := filepath.Join(dir, "r.json")
	if err := SaveResult(path, res); err != nil {
		t.Fatal(err)
	}
	got, err := LoadResult(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.FinalAcc != 0.5 {
		t.Errorf("FinalAcc = %v", got.FinalAcc)
	}

	var buf bytes.Buffer
	if err := WriteCurveCSV(&buf, res); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "test_acc") {
		t.Error("CSV missing header")
	}

	ckpt := filepath.Join(dir, "m.ckpt")
	if err := SaveCheckpoint(ckpt, []float64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	params, err := LoadCheckpoint(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if len(params) != 3 || params[2] != 3 {
		t.Errorf("params = %v", params)
	}
}
