module hieradmo

go 1.22
