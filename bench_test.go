package hieradmo

import (
	"fmt"
	"strconv"
	"strings"
	"testing"

	"hieradmo/internal/experiment"
)

// The benchmarks below regenerate every table and figure of the paper's
// evaluation at BenchScale (scaled-down datasets/iteration budgets that
// preserve ordering; see DESIGN.md §1 and §4). Each benchmark prints the
// regenerated table so `go test -bench=.` output contains the same rows the
// paper reports, and exports the HierAdMo headline accuracy as a custom
// metric.

// runExperimentBench executes runner b.N times and emits the final table.
func runExperimentBench(b *testing.B, runner experiment.Runner, s experiment.Scale) {
	b.Helper()
	var (
		tbl *experiment.Table
		err error
	)
	for i := 0; i < b.N; i++ {
		tbl, err = runner(s)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	reportHeadline(b, tbl)
	fmt.Printf("\n%s\n", tbl.Render())
}

// reportHeadline exports the first parseable cell of the first row (the
// HierAdMo column in accuracy tables) as a benchmark metric.
func reportHeadline(b *testing.B, tbl *experiment.Table) {
	b.Helper()
	if tbl == nil || len(tbl.Rows) == 0 {
		return
	}
	for _, cell := range tbl.Rows[0].Cells {
		if v, err := strconv.ParseFloat(cell, 64); err == nil {
			unit := strings.ReplaceAll(tbl.Rows[0].Label, " ", "_") + "_%"
			b.ReportMetric(v, unit)
			return
		}
	}
}

// BenchmarkTableII regenerates Table II one model×dataset column at a time
// (11 algorithms per column).
func BenchmarkTableII(b *testing.B) {
	for _, combo := range experiment.TableIICombos() {
		combo := combo
		b.Run(combo.Label, func(b *testing.B) {
			runExperimentBench(b, func(s experiment.Scale) (*experiment.Table, error) {
				return experiment.RunTableIISubset(s, []experiment.Combo{combo})
			}, experiment.BenchScale())
		})
	}
}

// BenchmarkFig2a_TauSweep regenerates Fig. 2(a): effect of τ with π fixed.
func BenchmarkFig2a_TauSweep(b *testing.B) {
	runExperimentBench(b, func(s experiment.Scale) (*experiment.Table, error) {
		return experiment.RunFig2TauSweep(s, nil, 0)
	}, experiment.BenchScale())
}

// BenchmarkFig2b_PiSweep regenerates Fig. 2(b): effect of π with τ fixed.
func BenchmarkFig2b_PiSweep(b *testing.B) {
	runExperimentBench(b, func(s experiment.Scale) (*experiment.Table, error) {
		return experiment.RunFig2PiSweep(s, 0, nil)
	}, experiment.BenchScale())
}

// BenchmarkFig2c_JointSweep regenerates Fig. 2(c): fixed τ·π, varying split.
func BenchmarkFig2c_JointSweep(b *testing.B) {
	runExperimentBench(b, func(s experiment.Scale) (*experiment.Table, error) {
		return experiment.RunFig2JointSweep(s, 0)
	}, experiment.BenchScale())
}

// BenchmarkFig2d_LargeN regenerates Fig. 2(d): N=100 workers. The iteration
// budget is reduced relative to the other benches because cost scales with
// worker count (25× the default topology).
func BenchmarkFig2d_LargeN(b *testing.B) {
	s := experiment.BenchScale()
	s.TrainSamples = 1200
	s.TNonConvex = 80
	s.BatchSize = 4
	s.EvalEvery = 20
	runExperimentBench(b, experiment.RunFig2LargeN, s)
}

// BenchmarkFig2e_NonIID3 regenerates Fig. 2(e): 3-class non-IID.
func BenchmarkFig2e_NonIID3(b *testing.B) {
	runExperimentBench(b, func(s experiment.Scale) (*experiment.Table, error) {
		return experiment.RunFig2NonIID(s, 3)
	}, experiment.BenchScale())
}

// BenchmarkFig2f_NonIID6 regenerates Fig. 2(f): 6-class non-IID.
func BenchmarkFig2f_NonIID6(b *testing.B) {
	runExperimentBench(b, func(s experiment.Scale) (*experiment.Table, error) {
		return experiment.RunFig2NonIID(s, 6)
	}, experiment.BenchScale())
}

// BenchmarkFig2g_NonIID9 regenerates Fig. 2(g): 9-class non-IID.
func BenchmarkFig2g_NonIID9(b *testing.B) {
	runExperimentBench(b, func(s experiment.Scale) (*experiment.Table, error) {
		return experiment.RunFig2NonIID(s, 9)
	}, experiment.BenchScale())
}

// BenchmarkFig2h_TrainingTime1 regenerates Fig. 2(h): trace-driven training
// time under setting 1 (τ=10, π=2 three-tier / τ=20 two-tier).
func BenchmarkFig2h_TrainingTime1(b *testing.B) {
	runExperimentBench(b, func(s experiment.Scale) (*experiment.Table, error) {
		return experiment.RunFig2TrainingTime(s, experiment.TimingSetting1)
	}, experiment.BenchScale())
}

// BenchmarkFig2l_TrainingTime2 regenerates Fig. 2(l): setting 2 (τ=20, π=2
// three-tier / τ=40 two-tier).
func BenchmarkFig2l_TrainingTime2(b *testing.B) {
	runExperimentBench(b, func(s experiment.Scale) (*experiment.Table, error) {
		return experiment.RunFig2TrainingTime(s, experiment.TimingSetting2)
	}, experiment.BenchScale())
}

// BenchmarkFig2i regenerates Fig. 2(i): adaptive vs fixed γℓ at γ=0.3.
func BenchmarkFig2i_AdaptiveGamma03(b *testing.B) {
	runExperimentBench(b, func(s experiment.Scale) (*experiment.Table, error) {
		return experiment.RunFig2AdaptiveGamma(s, 0.3)
	}, experiment.BenchScale())
}

// BenchmarkFig2j regenerates Fig. 2(j): adaptive vs fixed γℓ at γ=0.6.
func BenchmarkFig2j_AdaptiveGamma06(b *testing.B) {
	runExperimentBench(b, func(s experiment.Scale) (*experiment.Table, error) {
		return experiment.RunFig2AdaptiveGamma(s, 0.6)
	}, experiment.BenchScale())
}

// BenchmarkFig2k regenerates Fig. 2(k): adaptive vs fixed γℓ at γ=0.9.
func BenchmarkFig2k_AdaptiveGamma09(b *testing.B) {
	runExperimentBench(b, func(s experiment.Scale) (*experiment.Table, error) {
		return experiment.RunFig2AdaptiveGamma(s, 0.9)
	}, experiment.BenchScale())
}

// BenchmarkAblationAdaptSignal compares the eq. (6) adaptation statistic
// against the velocity variant and no adaptation (design-choice ablation
// from DESIGN.md §4).
func BenchmarkAblationAdaptSignal(b *testing.B) {
	runExperimentBench(b, experiment.RunAblationAdaptSignal, experiment.BenchScale())
}

// BenchmarkAblationClampCeiling sweeps the eq. (7) γℓ clamp ceiling.
func BenchmarkAblationClampCeiling(b *testing.B) {
	runExperimentBench(b, experiment.RunAblationClampCeiling, experiment.BenchScale())
}

// BenchmarkAblationParticipation extends HierAdMo to partial worker
// participation (the cross-device regime the paper leaves as future work).
func BenchmarkAblationParticipation(b *testing.B) {
	runExperimentBench(b, experiment.RunAblationParticipation, experiment.BenchScale())
}

// BenchmarkAblationArchitecture compares the flatten-dense CNN head against
// a global-average-pool head under HierAdMo.
func BenchmarkAblationArchitecture(b *testing.B) {
	runExperimentBench(b, experiment.RunAblationArchitecture, experiment.BenchScale())
}

// BenchmarkDirichletSweep extends the heterogeneity study with the
// Dirichlet(α) partitioning protocol.
func BenchmarkDirichletSweep(b *testing.B) {
	runExperimentBench(b, experiment.RunDirichletSweep, experiment.BenchScale())
}

// BenchmarkQuantizationSweep measures HierAdMo's tolerance to lossy uplink
// compression (bit width vs accuracy vs compression ratio).
func BenchmarkQuantizationSweep(b *testing.B) {
	runExperimentBench(b, experiment.RunQuantizationSweep, experiment.BenchScale())
}

// BenchmarkGammaTrace records the adapted γℓ trajectory (the diagnostic
// behind Fig. 2(i)-(k)).
func BenchmarkGammaTrace(b *testing.B) {
	runExperimentBench(b, experiment.RunGammaTrace, experiment.BenchScale())
}

// BenchmarkTheoryBound regenerates the measured-δ vs Theorem-4 gap table
// connecting the non-IID level to the theoretical convergence gap.
func BenchmarkTheoryBound(b *testing.B) {
	runExperimentBench(b, experiment.RunTheoryBound, experiment.BenchScale())
}
