package dataset

import (
	"fmt"

	"hieradmo/internal/rng"
	"hieradmo/internal/tensor"
)

// GenConfig configures the synthetic class-template generator.
type GenConfig struct {
	Name       string
	Shape      Shape
	NumClasses int
	// TemplateScale is the magnitude of the per-class signal.
	TemplateScale float64
	// NoiseStd is the additive Gaussian noise standard deviation; the ratio
	// TemplateScale/NoiseStd controls separability and hence achievable
	// accuracy.
	NoiseStd float64
	// SmoothPasses applies that many 3×3 box-blur passes to each class
	// template so the signal has spatial structure a convolution can exploit.
	SmoothPasses int
	// WarpStd randomly scales each sample's template contribution
	// (1 + WarpStd·N(0,1)), adding intra-class variation.
	WarpStd float64
}

// Generator produces samples for a fixed set of class templates. The same
// (config, seed) pair always yields identical templates, so train and test
// splits generated from one Generator are drawn from the same distribution.
type Generator struct {
	cfg       GenConfig
	templates []tensor.Vector
}

// NewGenerator validates cfg and draws the class templates from seed.
func NewGenerator(cfg GenConfig, seed uint64) (*Generator, error) {
	if cfg.NumClasses < 2 {
		return nil, fmt.Errorf("dataset: %d classes, need at least 2", cfg.NumClasses)
	}
	if cfg.Shape.Size() <= 0 {
		return nil, fmt.Errorf("dataset: invalid shape %+v", cfg.Shape)
	}
	r := rng.New(seed).Split(0xdada)
	g := &Generator{cfg: cfg, templates: make([]tensor.Vector, cfg.NumClasses)}
	for c := range g.templates {
		t := tensor.NewVector(cfg.Shape.Size())
		for i := range t {
			t[i] = cfg.TemplateScale * r.Norm()
		}
		for p := 0; p < cfg.SmoothPasses; p++ {
			smooth2D(t, cfg.Shape)
		}
		g.templates[c] = t
	}
	return g, nil
}

// Config returns the generator configuration.
func (g *Generator) Config() GenConfig { return g.cfg }

// Template returns the class template for label c (a view, do not mutate).
func (g *Generator) Template(c int) tensor.Vector { return g.templates[c] }

// Generate draws n samples with uniformly random labels using the stream
// derived from seed.
func (g *Generator) Generate(n int, seed uint64) *Dataset {
	r := rng.New(seed).Split(0x5a3a)
	ds := &Dataset{
		Name:       g.cfg.Name,
		Shape:      g.cfg.Shape,
		NumClasses: g.cfg.NumClasses,
		Samples:    make([]Sample, n),
	}
	for i := 0; i < n; i++ {
		label := r.Intn(g.cfg.NumClasses)
		ds.Samples[i] = g.sample(label, r)
	}
	return ds
}

func (g *Generator) sample(label int, r *rng.RNG) Sample {
	t := g.templates[label]
	x := tensor.NewVector(len(t))
	warp := 1 + g.cfg.WarpStd*r.Norm()
	for i := range x {
		x[i] = warp*t[i] + g.cfg.NoiseStd*r.Norm()
	}
	return Sample{X: x, Label: label}
}

// smooth2D applies one 3×3 box blur to each channel of a CHW vector in
// place, giving templates local spatial correlation.
func smooth2D(v tensor.Vector, sh Shape) {
	if sh.H < 2 && sh.W < 2 {
		return
	}
	tmp := make([]float64, sh.H*sh.W)
	for c := 0; c < sh.C; c++ {
		plane := v[c*sh.H*sh.W : (c+1)*sh.H*sh.W]
		for y := 0; y < sh.H; y++ {
			for x := 0; x < sh.W; x++ {
				var sum float64
				var cnt int
				for dy := -1; dy <= 1; dy++ {
					for dx := -1; dx <= 1; dx++ {
						ny, nx := y+dy, x+dx
						if ny < 0 || ny >= sh.H || nx < 0 || nx >= sh.W {
							continue
						}
						sum += plane[ny*sh.W+nx]
						cnt++
					}
				}
				tmp[y*sh.W+x] = sum / float64(cnt)
			}
		}
		copy(plane, tmp)
	}
}

// The stock configurations below are the synthetic stand-ins for the paper's
// four datasets. Class counts and rough input geometry match the originals;
// noise levels are tuned so difficulty ordering matches the paper's Table II
// (MNIST ≫ HAR > CIFAR-10 > ImageNet in achievable accuracy).

// MNISTConfig is the synthetic stand-in for MNIST: 10 classes of 14×14
// grayscale images with high separability.
func MNISTConfig() GenConfig {
	return GenConfig{
		Name:          "synth-mnist",
		Shape:         Shape{C: 1, H: 14, W: 14},
		NumClasses:    10,
		TemplateScale: 1.0,
		NoiseStd:      0.9,
		SmoothPasses:  2,
		WarpStd:       0.15,
	}
}

// CIFAR10Config is the synthetic stand-in for CIFAR-10: 10 classes of
// 3×12×12 color images with moderate separability.
func CIFAR10Config() GenConfig {
	return GenConfig{
		Name:          "synth-cifar10",
		Shape:         Shape{C: 3, H: 12, W: 12},
		NumClasses:    10,
		TemplateScale: 1.0,
		NoiseStd:      1.2,
		SmoothPasses:  2,
		WarpStd:       0.3,
	}
}

// ImageNetConfig is the synthetic stand-in for Tiny-ImageNet: 20 classes of
// 3×16×16 color images with low separability.
func ImageNetConfig() GenConfig {
	return GenConfig{
		Name:          "synth-imagenet",
		Shape:         Shape{C: 3, H: 16, W: 16},
		NumClasses:    20,
		TemplateScale: 1.0,
		NoiseStd:      1.5,
		SmoothPasses:  2,
		WarpStd:       0.35,
	}
}

// HARConfig is the synthetic stand-in for UCI-HAR: 6 activity classes of
// 9-channel × 32-step sensor windows, laid out as a 1×9×32 plane so 2-D
// convolutions span sensors and time.
func HARConfig() GenConfig {
	return GenConfig{
		Name:          "synth-har",
		Shape:         Shape{C: 1, H: 9, W: 32},
		NumClasses:    6,
		TemplateScale: 1.0,
		NoiseStd:      1.1,
		SmoothPasses:  3,
		WarpStd:       0.25,
	}
}

// TrainTest generates an n-sample training set and a m-sample test set from
// independent streams of the same generator.
func (g *Generator) TrainTest(n, m int, seed uint64) (train, test *Dataset) {
	return g.Generate(n, seed), g.Generate(m, seed+0x7e57)
}
