package dataset

import (
	"errors"
	"math"
	"testing"

	"hieradmo/internal/rng"
)

func TestPartitionDirichletCompleteAndNonEmpty(t *testing.T) {
	ds := testMNIST(t, 800)
	shards, err := PartitionDirichlet(ds, 6, 0.5, 11)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for w, s := range shards {
		if s.Len() == 0 {
			t.Errorf("shard %d empty", w)
		}
		total += s.Len()
	}
	if total != 800 {
		t.Errorf("total = %d, want 800", total)
	}
}

func TestPartitionDirichletSkewIncreasesWithSmallAlpha(t *testing.T) {
	// Smaller α must produce more skewed class distributions. Measure skew
	// as the mean (over shards) of the max class share within each shard.
	ds := testMNIST(t, 2000)
	skew := func(alpha float64) float64 {
		shards, err := PartitionDirichlet(ds, 8, alpha, 13)
		if err != nil {
			t.Fatal(err)
		}
		var total float64
		for _, s := range shards {
			counts := s.ClassCounts()
			maxC, sum := 0, 0
			for _, c := range counts {
				if c > maxC {
					maxC = c
				}
				sum += c
			}
			total += float64(maxC) / float64(sum)
		}
		return total / float64(len(shards))
	}
	concentrated := skew(0.1)
	mild := skew(10)
	if concentrated <= mild {
		t.Errorf("alpha=0.1 skew %v not above alpha=10 skew %v", concentrated, mild)
	}
	// At large alpha the shards approach the uniform class share (0.1 for
	// 10 classes); allow generous slack.
	if mild > 0.3 {
		t.Errorf("alpha=10 skew %v too high for near-IID", mild)
	}
}

func TestPartitionDirichletErrors(t *testing.T) {
	ds := testMNIST(t, 100)
	if _, err := PartitionDirichlet(ds, 0, 1, 1); err == nil {
		t.Error("accepted zero shards")
	}
	if _, err := PartitionDirichlet(ds, 4, 0, 1); err == nil {
		t.Error("accepted zero alpha")
	}
	empty := &Dataset{NumClasses: 10}
	if _, err := PartitionDirichlet(empty, 2, 1, 1); !errors.Is(err, ErrEmpty) {
		t.Errorf("empty err = %v", err)
	}
}

func TestPartitionDirichletDeterministic(t *testing.T) {
	ds := testMNIST(t, 500)
	a, err := PartitionDirichlet(ds, 5, 0.3, 17)
	if err != nil {
		t.Fatal(err)
	}
	b, err := PartitionDirichlet(ds, 5, 0.3, 17)
	if err != nil {
		t.Fatal(err)
	}
	for w := range a {
		if a[w].Len() != b[w].Len() {
			t.Fatalf("shard %d sizes differ across identical seeds", w)
		}
	}
}

func TestGammaVariateMoments(t *testing.T) {
	// Gamma(k,1) has mean k and variance k.
	r := rng.New(23)
	for _, shape := range []float64{0.5, 1, 2.5} {
		const n = 100000
		var sum, sumSq float64
		for i := 0; i < n; i++ {
			x := gammaVariate(r, shape)
			if x < 0 {
				t.Fatalf("negative gamma variate %v", x)
			}
			sum += x
			sumSq += x * x
		}
		mean := sum / n
		variance := sumSq/n - mean*mean
		if math.Abs(mean-shape) > 0.05*math.Max(1, shape) {
			t.Errorf("shape %v: mean %v", shape, mean)
		}
		if math.Abs(variance-shape) > 0.1*math.Max(1, shape) {
			t.Errorf("shape %v: variance %v", shape, variance)
		}
	}
}

func TestDirichletSharesSumToOne(t *testing.T) {
	r := rng.New(29)
	for trial := 0; trial < 100; trial++ {
		shares := dirichlet(r, 7, 0.4)
		var sum float64
		for _, s := range shares {
			if s < 0 {
				t.Fatalf("negative share %v", s)
			}
			sum += s
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Fatalf("shares sum to %v", sum)
		}
	}
}
