package dataset

import (
	"fmt"
	"math"

	"hieradmo/internal/rng"
)

// PartitionIID splits d into numShards shards of (near-)equal size after a
// uniform shuffle, so every shard is an IID draw from the full distribution.
// Shards share sample storage with d.
func PartitionIID(d *Dataset, numShards int, seed uint64) ([]*Dataset, error) {
	if numShards <= 0 {
		return nil, fmt.Errorf("dataset: %d shards, need at least 1", numShards)
	}
	if d.Len() < numShards {
		return nil, fmt.Errorf("dataset: %d samples cannot fill %d shards", d.Len(), numShards)
	}
	r := rng.New(seed).Split(0x11d)
	perm := r.Perm(d.Len())
	shards := make([]*Dataset, numShards)
	for s := 0; s < numShards; s++ {
		lo := s * d.Len() / numShards
		hi := (s + 1) * d.Len() / numShards
		shards[s] = d.Subset(perm[lo:hi])
	}
	return shards, nil
}

// PartitionClasses implements the paper's x-class non-IID protocol: each of
// numShards workers is assigned exactly classesPerShard distinct classes
// (chosen at random), and each class's samples are divided evenly among the
// workers holding that class. Smaller classesPerShard means a higher level
// of non-IID-ness (larger gradient divergence δ).
//
// Class-to-worker assignment round-robins over a shuffled class multiset so
// every class is held by at least one worker whenever
// numShards*classesPerShard >= NumClasses.
func PartitionClasses(d *Dataset, numShards, classesPerShard int, seed uint64) ([]*Dataset, error) {
	switch {
	case numShards <= 0:
		return nil, fmt.Errorf("dataset: %d shards, need at least 1", numShards)
	case classesPerShard <= 0 || classesPerShard > d.NumClasses:
		return nil, fmt.Errorf("dataset: %d classes per shard out of range [1,%d]",
			classesPerShard, d.NumClasses)
	case d.Len() == 0:
		return nil, ErrEmpty
	}
	r := rng.New(seed).Split(0xc1a55)

	// Build the class multiset: numShards*classesPerShard slots filled by
	// cycling through a shuffled class order, then deal slots to workers.
	totalSlots := numShards * classesPerShard
	order := r.Perm(d.NumClasses)
	slots := make([]int, totalSlots)
	for i := range slots {
		slots[i] = order[i%d.NumClasses]
	}
	r.Shuffle(len(slots), func(i, j int) { slots[i], slots[j] = slots[j], slots[i] })

	// Assign slots worker by worker, avoiding duplicate classes within a
	// worker by swapping with a later slot when possible.
	classOwners := make(map[int][]int, d.NumClasses) // class -> worker ids
	workerClasses := make([]map[int]bool, numShards)
	for w := 0; w < numShards; w++ {
		workerClasses[w] = make(map[int]bool, classesPerShard)
		for k := 0; k < classesPerShard; k++ {
			idx := w*classesPerShard + k
			if workerClasses[w][slots[idx]] {
				// Find a later slot with a class this worker lacks.
				for j := idx + 1; j < totalSlots; j++ {
					if !workerClasses[w][slots[j]] {
						slots[idx], slots[j] = slots[j], slots[idx]
						break
					}
				}
			}
			c := slots[idx]
			if workerClasses[w][c] {
				continue // duplicates can remain in degenerate settings; skip
			}
			workerClasses[w][c] = true
			classOwners[c] = append(classOwners[c], w)
		}
	}

	// Group sample indices per class, shuffled.
	byClass := make([][]int, d.NumClasses)
	for i, s := range d.Samples {
		byClass[s.Label] = append(byClass[s.Label], i)
	}
	for c := range byClass {
		idx := byClass[c]
		r.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
	}

	// Deal each class's samples evenly to its owners. Classes are walked in
	// index order, NOT map order: shard contents must be reproducible across
	// processes so a checkpointed run can be resumed bit-identically.
	assigned := make([][]int, numShards)
	for c := 0; c < d.NumClasses; c++ {
		owners := classOwners[c]
		idx := byClass[c]
		if len(owners) == 0 || len(idx) == 0 {
			continue
		}
		for i, sampleIdx := range idx {
			w := owners[i%len(owners)]
			assigned[w] = append(assigned[w], sampleIdx)
		}
	}

	shards := make([]*Dataset, numShards)
	for w := range shards {
		if len(assigned[w]) == 0 {
			return nil, fmt.Errorf("dataset: worker %d received no samples "+
				"(dataset too small for %d shards × %d classes)", w, numShards, classesPerShard)
		}
		shards[w] = d.Subset(assigned[w])
	}
	return shards, nil
}

// PartitionDirichlet implements the Dirichlet(α) non-IID protocol common in
// the FL literature: for each class, the per-worker share of that class's
// samples is drawn from a symmetric Dirichlet distribution. Small α gives
// highly skewed (near single-class) shards; large α approaches IID. It
// complements the paper's x-class protocol with a continuously tunable
// heterogeneity level.
func PartitionDirichlet(d *Dataset, numShards int, alpha float64, seed uint64) ([]*Dataset, error) {
	switch {
	case numShards <= 0:
		return nil, fmt.Errorf("dataset: %d shards, need at least 1", numShards)
	case alpha <= 0:
		return nil, fmt.Errorf("dataset: dirichlet alpha %v must be positive", alpha)
	case d.Len() == 0:
		return nil, ErrEmpty
	}
	r := rng.New(seed).Split(0xd112)

	byClass := make([][]int, d.NumClasses)
	for i, s := range d.Samples {
		byClass[s.Label] = append(byClass[s.Label], i)
	}
	assigned := make([][]int, numShards)
	for _, idx := range byClass {
		if len(idx) == 0 {
			continue
		}
		r.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		shares := dirichlet(r, numShards, alpha)
		// Convert shares to cumulative sample boundaries.
		start := 0
		var cum float64
		for w := 0; w < numShards; w++ {
			cum += shares[w]
			end := int(cum*float64(len(idx)) + 0.5)
			if w == numShards-1 {
				end = len(idx)
			}
			if end > len(idx) {
				end = len(idx)
			}
			if end > start {
				assigned[w] = append(assigned[w], idx[start:end]...)
			}
			start = end
		}
	}
	// Guarantee no empty shard: steal one sample from the largest shard.
	for w := range assigned {
		if len(assigned[w]) > 0 {
			continue
		}
		largest := 0
		for j := range assigned {
			if len(assigned[j]) > len(assigned[largest]) {
				largest = j
			}
		}
		if len(assigned[largest]) < 2 {
			return nil, fmt.Errorf("dataset: too few samples to fill %d dirichlet shards", numShards)
		}
		n := len(assigned[largest])
		assigned[w] = append(assigned[w], assigned[largest][n-1])
		assigned[largest] = assigned[largest][:n-1]
	}
	shards := make([]*Dataset, numShards)
	for w := range shards {
		shards[w] = d.Subset(assigned[w])
	}
	return shards, nil
}

// dirichlet draws one symmetric Dirichlet(α) sample of dimension n via
// normalized Gamma(α,1) variates (Marsaglia–Tsang for α ≥ 1, boosting for
// α < 1).
func dirichlet(r *rng.RNG, n int, alpha float64) []float64 {
	out := make([]float64, n)
	var sum float64
	for i := range out {
		out[i] = gammaVariate(r, alpha)
		sum += out[i]
	}
	if sum == 0 {
		// Degenerate draw (vanishingly unlikely); fall back to uniform.
		for i := range out {
			out[i] = 1 / float64(n)
		}
		return out
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

// gammaVariate samples Gamma(shape, 1) using Marsaglia–Tsang, with the
// standard U^{1/α} boost for shape < 1.
func gammaVariate(r *rng.RNG, shape float64) float64 {
	if shape < 1 {
		u := r.Float64()
		if u == 0 {
			u = 1e-300
		}
		return gammaVariate(r, shape+1) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := r.Norm()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := r.Float64()
		if u == 0 {
			u = 1e-300
		}
		if math.Log(u) < 0.5*x*x+d-d*v+d*math.Log(v) {
			return d * v
		}
	}
}

// Hierarchy arranges flat worker shards into the paper's L-edge topology:
// edges[ℓ][i] is the dataset of worker {i,ℓ}. Workers are dealt to edges in
// order, workersPerEdge[ℓ] at a time.
func Hierarchy(shards []*Dataset, workersPerEdge []int) ([][]*Dataset, error) {
	total := 0
	for _, c := range workersPerEdge {
		if c <= 0 {
			return nil, fmt.Errorf("dataset: edge with %d workers", c)
		}
		total += c
	}
	if total != len(shards) {
		return nil, fmt.Errorf("dataset: %d shards for %d hierarchy slots", len(shards), total)
	}
	edges := make([][]*Dataset, len(workersPerEdge))
	next := 0
	for l, c := range workersPerEdge {
		edges[l] = shards[next : next+c]
		next += c
	}
	return edges, nil
}

// UniformEdges returns a workersPerEdge slice with numEdges edges of
// workersPerEdge workers each.
func UniformEdges(numEdges, workersPerEdge int) []int {
	out := make([]int, numEdges)
	for i := range out {
		out[i] = workersPerEdge
	}
	return out
}
