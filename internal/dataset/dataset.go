// Package dataset provides the data substrate for the federated-learning
// experiments: deterministic synthetic stand-ins for the paper's four
// real-world datasets (MNIST, CIFAR-10, Tiny-ImageNet, UCI-HAR) plus the
// IID and x-class non-IID partitioning protocols the paper uses to shard
// data over a worker hierarchy.
//
// The generators produce class-template-plus-noise data with genuine spatial
// structure (smoothed 2-D templates) so convolutional models have an
// advantage over linear ones, and with per-dataset noise levels chosen so
// the difficulty ordering matches the paper (MNIST easiest, ImageNet-like
// hardest). See DESIGN.md §1 for the substitution rationale.
package dataset

import (
	"errors"
	"fmt"

	"hieradmo/internal/rng"
	"hieradmo/internal/tensor"
)

// ErrEmpty is returned when an operation needs at least one sample.
var ErrEmpty = errors.New("dataset: empty dataset")

// Shape describes sample geometry as channels × height × width. Flat feature
// vectors use C=1, H=1, W=dim.
type Shape struct {
	C, H, W int
}

// Size returns the flattened feature count.
func (s Shape) Size() int { return s.C * s.H * s.W }

// Sample is one labelled example with flattened features in CHW order.
type Sample struct {
	X     tensor.Vector
	Label int
}

// Dataset is an in-memory labelled dataset.
type Dataset struct {
	Name       string
	Shape      Shape
	NumClasses int
	Samples    []Sample
}

// Len returns the number of samples.
func (d *Dataset) Len() int { return len(d.Samples) }

// Batch draws size samples uniformly with replacement using r. It returns an
// error if the dataset is empty or size is not positive.
func (d *Dataset) Batch(r *rng.RNG, size int) ([]Sample, error) {
	return d.BatchInto(r, size, nil)
}

// BatchInto is Batch with a caller-owned buffer: buf is reused when its
// capacity suffices and grown otherwise, so a training loop that feeds the
// returned slice back in draws every batch after the first without
// allocating. The RNG consumption is identical to Batch — the two are
// interchangeable mid-stream.
func (d *Dataset) BatchInto(r *rng.RNG, size int, buf []Sample) ([]Sample, error) {
	if d.Len() == 0 {
		return nil, ErrEmpty
	}
	if size <= 0 {
		return nil, fmt.Errorf("dataset: batch size %d must be positive", size)
	}
	if cap(buf) < size {
		buf = make([]Sample, size)
	}
	out := buf[:size]
	for i := range out {
		out[i] = d.Samples[r.Intn(d.Len())]
	}
	return out, nil
}

// Subset returns a new dataset sharing sample storage, restricted to the
// given indices.
func (d *Dataset) Subset(idx []int) *Dataset {
	sub := &Dataset{
		Name:       d.Name,
		Shape:      d.Shape,
		NumClasses: d.NumClasses,
		Samples:    make([]Sample, len(idx)),
	}
	for i, j := range idx {
		sub.Samples[i] = d.Samples[j]
	}
	return sub
}

// ClassCounts returns a histogram of labels.
func (d *Dataset) ClassCounts() []int {
	counts := make([]int, d.NumClasses)
	for _, s := range d.Samples {
		if s.Label >= 0 && s.Label < d.NumClasses {
			counts[s.Label]++
		}
	}
	return counts
}

// ClassesPresent returns the number of distinct labels that appear.
func (d *Dataset) ClassesPresent() int {
	present := 0
	for _, c := range d.ClassCounts() {
		if c > 0 {
			present++
		}
	}
	return present
}
