package dataset

import (
	"errors"
	"testing"

	"hieradmo/internal/rng"
)

func testMNIST(t *testing.T, n int) *Dataset {
	t.Helper()
	g, err := NewGenerator(MNISTConfig(), 1)
	if err != nil {
		t.Fatalf("generator: %v", err)
	}
	return g.Generate(n, 2)
}

func TestShapeSize(t *testing.T) {
	tests := []struct {
		name string
		sh   Shape
		want int
	}{
		{name: "image", sh: Shape{C: 3, H: 4, W: 5}, want: 60},
		{name: "flat", sh: Shape{C: 1, H: 1, W: 7}, want: 7},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.sh.Size(); got != tt.want {
				t.Errorf("Size = %d, want %d", got, tt.want)
			}
		})
	}
}

func TestGeneratorValidation(t *testing.T) {
	if _, err := NewGenerator(GenConfig{NumClasses: 1, Shape: Shape{C: 1, H: 1, W: 4}}, 1); err == nil {
		t.Error("accepted single-class config")
	}
	if _, err := NewGenerator(GenConfig{NumClasses: 3, Shape: Shape{}}, 1); err == nil {
		t.Error("accepted empty shape")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := testMNIST(t, 50)
	b := testMNIST(t, 50)
	for i := range a.Samples {
		if a.Samples[i].Label != b.Samples[i].Label {
			t.Fatalf("labels diverge at %d", i)
		}
		for j := range a.Samples[i].X {
			if a.Samples[i].X[j] != b.Samples[i].X[j] {
				t.Fatalf("features diverge at sample %d feature %d", i, j)
			}
		}
	}
}

func TestGenerateShapes(t *testing.T) {
	cfgs := []GenConfig{MNISTConfig(), CIFAR10Config(), ImageNetConfig(), HARConfig()}
	for _, cfg := range cfgs {
		t.Run(cfg.Name, func(t *testing.T) {
			g, err := NewGenerator(cfg, 7)
			if err != nil {
				t.Fatal(err)
			}
			ds := g.Generate(30, 8)
			if ds.Len() != 30 {
				t.Fatalf("Len = %d", ds.Len())
			}
			for _, s := range ds.Samples {
				if len(s.X) != cfg.Shape.Size() {
					t.Fatalf("feature dim %d, want %d", len(s.X), cfg.Shape.Size())
				}
				if s.Label < 0 || s.Label >= cfg.NumClasses {
					t.Fatalf("label %d out of range", s.Label)
				}
			}
		})
	}
}

func TestTrainTestIndependentStreams(t *testing.T) {
	g, err := NewGenerator(MNISTConfig(), 5)
	if err != nil {
		t.Fatal(err)
	}
	train, test := g.TrainTest(40, 40, 9)
	diff := false
	for i := range train.Samples {
		if train.Samples[i].Label != test.Samples[i].Label {
			diff = true
			break
		}
		if train.Samples[i].X[0] != test.Samples[i].X[0] {
			diff = true
			break
		}
	}
	if !diff {
		t.Error("train and test streams coincide")
	}
}

func TestBatch(t *testing.T) {
	ds := testMNIST(t, 20)
	r := rng.New(3)
	batch, err := ds.Batch(r, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != 8 {
		t.Fatalf("batch len = %d", len(batch))
	}
}

func TestBatchErrors(t *testing.T) {
	empty := &Dataset{NumClasses: 10}
	if _, err := empty.Batch(rng.New(1), 4); !errors.Is(err, ErrEmpty) {
		t.Errorf("empty batch err = %v, want ErrEmpty", err)
	}
	ds := testMNIST(t, 5)
	if _, err := ds.Batch(rng.New(1), 0); err == nil {
		t.Error("accepted zero batch size")
	}
}

func TestSubsetAndClassCounts(t *testing.T) {
	ds := testMNIST(t, 100)
	counts := ds.ClassCounts()
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != 100 {
		t.Errorf("class counts sum to %d, want 100", total)
	}
	sub := ds.Subset([]int{0, 1, 2})
	if sub.Len() != 3 {
		t.Errorf("subset len = %d", sub.Len())
	}
	if sub.NumClasses != ds.NumClasses || sub.Shape != ds.Shape {
		t.Error("subset lost metadata")
	}
}

func TestClassesPresent(t *testing.T) {
	ds := testMNIST(t, 500)
	if got := ds.ClassesPresent(); got != 10 {
		t.Errorf("ClassesPresent = %d, want 10 for 500 samples", got)
	}
}

func TestTemplatesSeparated(t *testing.T) {
	g, err := NewGenerator(MNISTConfig(), 11)
	if err != nil {
		t.Fatal(err)
	}
	// Different class templates must be distinguishable: the distance between
	// two templates should exceed a reasonable fraction of their norms.
	for a := 0; a < 10; a++ {
		for b := a + 1; b < 10; b++ {
			ta, tb := g.Template(a), g.Template(b)
			var dist2 float64
			for i := range ta {
				d := ta[i] - tb[i]
				dist2 += d * d
			}
			if dist2 == 0 {
				t.Fatalf("templates %d and %d identical", a, b)
			}
		}
	}
}
