package dataset

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestPartitionIIDCoverage(t *testing.T) {
	ds := testMNIST(t, 103)
	shards, err := PartitionIID(ds, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(shards) != 4 {
		t.Fatalf("got %d shards", len(shards))
	}
	total := 0
	for _, s := range shards {
		total += s.Len()
	}
	if total != 103 {
		t.Errorf("shards hold %d samples, want 103", total)
	}
	// Near-equal sizes: max-min <= 1.
	minLen, maxLen := shards[0].Len(), shards[0].Len()
	for _, s := range shards {
		if s.Len() < minLen {
			minLen = s.Len()
		}
		if s.Len() > maxLen {
			maxLen = s.Len()
		}
	}
	if maxLen-minLen > 1 {
		t.Errorf("unbalanced IID shards: min %d max %d", minLen, maxLen)
	}
}

func TestPartitionIIDErrors(t *testing.T) {
	ds := testMNIST(t, 3)
	if _, err := PartitionIID(ds, 0, 1); err == nil {
		t.Error("accepted 0 shards")
	}
	if _, err := PartitionIID(ds, 10, 1); err == nil {
		t.Error("accepted more shards than samples")
	}
}

func TestPartitionClassesLimitsClasses(t *testing.T) {
	ds := testMNIST(t, 1000)
	for _, x := range []int{1, 3, 6, 9} {
		shards, err := PartitionClasses(ds, 4, x, 7)
		if err != nil {
			t.Fatalf("x=%d: %v", x, err)
		}
		for w, s := range shards {
			if got := s.ClassesPresent(); got > x {
				t.Errorf("x=%d worker %d holds %d classes", x, w, got)
			}
		}
	}
}

func TestPartitionClassesDisjointAndComplete(t *testing.T) {
	ds := testMNIST(t, 600)
	shards, err := PartitionClasses(ds, 6, 3, 9)
	if err != nil {
		t.Fatal(err)
	}
	// Count distinct samples by feature identity: each original index should
	// appear in exactly one shard, so total size matches, given every class
	// is owned (6*3=18 slots >= 10 classes cycles all classes).
	total := 0
	for _, s := range shards {
		total += s.Len()
	}
	if total != 600 {
		t.Errorf("total after partition = %d, want 600", total)
	}
}

func TestPartitionClassesErrors(t *testing.T) {
	ds := testMNIST(t, 100)
	if _, err := PartitionClasses(ds, 0, 3, 1); err == nil {
		t.Error("accepted 0 shards")
	}
	if _, err := PartitionClasses(ds, 2, 0, 1); err == nil {
		t.Error("accepted 0 classes per shard")
	}
	if _, err := PartitionClasses(ds, 2, 11, 1); err == nil {
		t.Error("accepted classesPerShard > NumClasses")
	}
	empty := &Dataset{NumClasses: 10}
	if _, err := PartitionClasses(empty, 2, 3, 1); !errors.Is(err, ErrEmpty) {
		t.Errorf("empty dataset err = %v, want ErrEmpty", err)
	}
}

func TestPartitionClassesDeterministic(t *testing.T) {
	ds := testMNIST(t, 400)
	a, err := PartitionClasses(ds, 4, 3, 13)
	if err != nil {
		t.Fatal(err)
	}
	b, err := PartitionClasses(ds, 4, 3, 13)
	if err != nil {
		t.Fatal(err)
	}
	for w := range a {
		if a[w].Len() != b[w].Len() {
			t.Fatalf("worker %d sizes differ across identical seeds", w)
		}
		// Sample ORDER must match too, not just the contents: mini-batch
		// streams index into the shard, so a reordered shard silently changes
		// every batch — and with it any resumed run's trajectory.
		for k := range a[w].Samples {
			if &a[w].Samples[k].X[0] != &b[w].Samples[k].X[0] {
				t.Fatalf("worker %d sample %d differs across identical seeds", w, k)
			}
		}
	}
}

func TestPartitionClassesPropertySizes(t *testing.T) {
	ds := testMNIST(t, 500)
	f := func(shardsRaw, classesRaw uint8, seed uint64) bool {
		numShards := 1 + int(shardsRaw%8)
		classes := 1 + int(classesRaw%10)
		shards, err := PartitionClasses(ds, numShards, classes, seed)
		if err != nil {
			// Tiny/degenerate combinations may legitimately fail with an
			// explanatory error; that is acceptable behaviour.
			return true
		}
		total := 0
		for _, s := range shards {
			if s.Len() == 0 {
				return false
			}
			if s.ClassesPresent() > classes {
				return false
			}
			total += s.Len()
		}
		return total <= ds.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestHierarchy(t *testing.T) {
	ds := testMNIST(t, 160)
	shards, err := PartitionIID(ds, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	edges, err := Hierarchy(shards, []int{2, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(edges) != 2 || len(edges[0]) != 2 || len(edges[1]) != 2 {
		t.Fatalf("bad hierarchy shape: %d edges", len(edges))
	}
	if edges[1][0] != shards[2] {
		t.Error("hierarchy does not deal shards in order")
	}
}

func TestHierarchyErrors(t *testing.T) {
	ds := testMNIST(t, 40)
	shards, err := PartitionIID(ds, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Hierarchy(shards, []int{2, 3}); err == nil {
		t.Error("accepted mismatched slot count")
	}
	if _, err := Hierarchy(shards, []int{4, 0}); err == nil {
		t.Error("accepted zero-worker edge")
	}
}

func TestUniformEdges(t *testing.T) {
	got := UniformEdges(3, 5)
	if len(got) != 3 {
		t.Fatalf("len = %d", len(got))
	}
	for _, c := range got {
		if c != 5 {
			t.Errorf("edge size %d, want 5", c)
		}
	}
}
