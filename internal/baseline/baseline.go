// Package baseline implements the nine comparison algorithms from the
// paper's evaluation (§V-B), spanning all four benchmark categories:
//
//   - three-tier without momentum: HierFAVG, CFL
//   - two-tier with momentum: FedMom, SlowMo, FedNAG, Mime, FastSlowMo,
//     FedADC
//   - two-tier without momentum: FedAvg
//
// Two-tier algorithms flatten the configured hierarchy and connect every
// worker directly to the cloud with one aggregation period of τ·π, matching
// the paper's fair-comparison setup. CFL and FedADC follow the published
// update rules at the level of mechanism; see DESIGN.md §1 for the
// documented approximations.
package baseline

import (
	"fmt"

	"hieradmo/internal/fl"
	"hieradmo/internal/parallel"
	"hieradmo/internal/telemetry"
	"hieradmo/internal/tensor"
)

// flatWorker addresses one worker in the flattened two-tier view.
type flatWorker struct {
	l, i   int
	weight float64 // D(i,ℓ)/D
}

// flatten lists every worker with its global data weight.
func flatten(hn *fl.Harness) []flatWorker {
	var out []flatWorker
	for l := range hn.WorkerWeights {
		for i := range hn.WorkerWeights[l] {
			out = append(out, flatWorker{l: l, i: i, weight: hn.GlobalWeight(l, i)})
		}
	}
	return out
}

// forEachWorker runs step(j, workers[j]) for every flattened worker over the
// harness's goroutine pool and joins before returning. A step must write
// only state owned by its worker index (its model, momentum, and scratch
// vectors; its sampler stream inside hn.Grad); every cross-worker reduction
// happens after the barrier in fixed index order, so baseline results are
// bit-identical at any pool size.
func forEachWorker(hn *fl.Harness, workers []flatWorker, step func(j int, w flatWorker) error) error {
	return parallel.ForEach(len(workers), func(j int) error {
		return step(j, workers[j])
	}, parallel.WithWorkers(hn.Workers()))
}

// workerScratch allocates the per-worker gradient scratch the parallel local
// phase needs (the sequential loops used to share one vector).
func workerScratch(n, dim int) []tensor.Vector {
	out := make([]tensor.Vector, n)
	for j := range out {
		out[j] = tensor.NewVector(dim)
	}
	return out
}

// flatAverage overwrites dst with the globally weighted average of the
// workers' vectors.
func flatAverage(dst tensor.Vector, workers []flatWorker, vecs []tensor.Vector) error {
	weights := make([]float64, len(workers))
	for j, w := range workers {
		weights[j] = w.weight
	}
	return tensor.WeightedSum(dst, weights, vecs)
}

// checkpointRun prepares crash recovery for a baseline Run: it registers
// every named vector group (indexed slices like per-worker models) and every
// single vector (server model, global momentum) with the snapshot, restores
// the newest valid generation, and returns the checkpointer plus the last
// completed iteration; the training loop resumes at start+1. Scratch vectors
// that are fully overwritten before use each iteration are not registered.
func checkpointRun(hn *fl.Harness, name string, res *fl.Result, groups map[string][]tensor.Vector, singles map[string]tensor.Vector) (*fl.Checkpointer, int, error) {
	ck, err := fl.NewCheckpointer(hn, name, "", res)
	if err != nil {
		return nil, 0, err
	}
	for gname, vecs := range groups {
		for j, v := range vecs {
			ck.Vector(fmt.Sprintf("%s/%d", gname, j), v)
		}
	}
	for sname, v := range singles {
		ck.Vector(sname, v)
	}
	start, err := ck.Restore()
	if err != nil {
		return nil, 0, err
	}
	return ck, start, nil
}

// traceStart emits the run_start event for a baseline and hands back the
// run's sink. All baseline events, like core's, are emitted from
// sequential code only, so traces stay byte-identical at any worker-pool
// size. The sink may be nil; every use below is nil-safe and free.
func traceStart(hn *fl.Harness, name string, start int) *telemetry.Sink {
	sink := hn.Sink()
	if sink.Tracing() {
		cfg := hn.Cfg()
		sink.Emit("run_start",
			telemetry.String("alg", name),
			telemetry.Int("edges", cfg.NumEdges()),
			telemetry.Int("workers", cfg.NumWorkers()),
			telemetry.Int("tau", cfg.Tau),
			telemetry.Int("pi", cfg.Pi),
			telemetry.Int("T", cfg.T),
			telemetry.Int64("seed", int64(cfg.Seed)),
			telemetry.Int("start_t", start))
	}
	return sink
}

// traceEdgeAggregate records one edge-tier aggregation (HierFAVG/CFL).
func traceEdgeAggregate(sink *telemetry.Sink, t, l, participants int) {
	sink.M().EdgeAggregations.Inc()
	if sink.Tracing() {
		sink.Emit("edge_aggregate",
			telemetry.Int("t", t),
			telemetry.Int("edge", l),
			telemetry.Int("participants", participants))
	}
}

// traceCloudSync records one server/cloud synchronisation. Two-tier
// baselines aggregate every worker directly, so reporters is the worker
// count there and the edge count for the hierarchical ones.
func traceCloudSync(sink *telemetry.Sink, t, reporters int) {
	m := sink.M()
	m.CloudSyncs.Inc()
	m.Round.Set(float64(t))
	if sink.Tracing() {
		sink.Emit("cloud_aggregate",
			telemetry.Int("t", t),
			telemetry.Int("reporters", reporters))
	}
}

// traceEnd emits the run_end event with the final result.
func traceEnd(sink *telemetry.Sink, res *fl.Result) {
	if sink.Tracing() {
		sink.Emit("run_end",
			telemetry.Float("final_acc", res.FinalAcc),
			telemetry.Float("final_loss", res.FinalLoss))
	}
}

// recordFlat appends a curve point for the weighted average of the flattened
// worker models, when t is a recording instant.
func recordFlat(hn *fl.Harness, res *fl.Result, t int, workers []flatWorker, xs []tensor.Vector, scratch tensor.Vector) error {
	if !hn.ShouldEval(t) {
		return nil
	}
	if err := flatAverage(scratch, workers, xs); err != nil {
		return err
	}
	return hn.RecordPoint(res, t, scratch)
}
