package baseline

import (
	"hieradmo/internal/fl"
	"hieradmo/internal/tensor"
)

// FedNAG (Yang et al., TPDS'22) runs Nesterov accelerated gradient at every
// worker and aggregates both the model and the momentum variable at the
// cloud every τ·π iterations, redistributing the averages.
type FedNAG struct{}

var _ fl.Algorithm = FedNAG{}

// NewFedNAG returns the FedNAG baseline.
func NewFedNAG() FedNAG { return FedNAG{} }

// Name implements fl.Algorithm.
func (FedNAG) Name() string { return "FedNAG" }

// Run implements fl.Algorithm.
func (FedNAG) Run(cfg *fl.Config) (*fl.Result, error) {
	hn, err := fl.NewHarness(cfg)
	if err != nil {
		return nil, err
	}
	res := hn.NewResult("FedNAG")
	x0 := hn.InitParams()
	dim := len(x0)
	workers := flatten(hn)
	period := cfg.Tau * cfg.Pi

	xs := make([]tensor.Vector, len(workers))
	ys := make([]tensor.Vector, len(workers))
	for j := range xs {
		xs[j] = x0.Clone()
		ys[j] = x0.Clone()
	}
	grads := workerScratch(len(workers), dim)
	yPrevs := workerScratch(len(workers), dim)
	serverX := x0.Clone()
	serverY := x0.Clone()
	scratch := tensor.NewVector(dim)

	ck, start, err := checkpointRun(hn, "FedNAG", res,
		map[string][]tensor.Vector{"x": xs, "y": ys},
		map[string]tensor.Vector{"serverX": serverX, "serverY": serverY})
	if err != nil {
		return nil, err
	}
	sink := traceStart(hn, "FedNAG", start)

	for t := start + 1; t <= cfg.T; t++ {
		err := forEachWorker(hn, workers, func(j int, w flatWorker) error {
			if _, err := hn.Grad(w.l, w.i, xs[j], grads[j]); err != nil {
				return err
			}
			if err := yPrevs[j].CopyFrom(ys[j]); err != nil {
				return err
			}
			if err := ys[j].CopyFrom(xs[j]); err != nil {
				return err
			}
			if err := ys[j].AXPY(-cfg.Eta, grads[j]); err != nil {
				return err
			}
			if err := xs[j].CopyFrom(ys[j]); err != nil {
				return err
			}
			if err := xs[j].AXPY(cfg.Gamma, ys[j]); err != nil {
				return err
			}
			return xs[j].AXPY(-cfg.Gamma, yPrevs[j])
		})
		if err != nil {
			return nil, err
		}
		if t%period == 0 {
			if err := flatAverage(serverX, workers, xs); err != nil {
				return nil, err
			}
			if err := flatAverage(serverY, workers, ys); err != nil {
				return nil, err
			}
			for j := range xs {
				if err := xs[j].CopyFrom(serverX); err != nil {
					return nil, err
				}
				if err := ys[j].CopyFrom(serverY); err != nil {
					return nil, err
				}
			}
			traceCloudSync(sink, t, len(workers))
		}
		if err := recordFlat(hn, res, t, workers, xs, scratch); err != nil {
			return nil, err
		}
		if err := ck.MaybeSnapshot(t); err != nil {
			return nil, err
		}
	}
	if err := hn.Finish(res, serverX); err != nil {
		return nil, err
	}
	traceEnd(sink, res)
	return res, nil
}
