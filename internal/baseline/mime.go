package baseline

import (
	"hieradmo/internal/fl"
	"hieradmo/internal/tensor"
)

// Mime (Karimireddy et al., MimeLite variant) mimics centralized momentum
// inside the local steps: every worker applies a *frozen* global momentum m
// during its round,
//
//	x ← x − η·((1−γ)·g + γ·m),
//
// and the server refreshes m from the average of the workers' mean interval
// gradients after each round:
//
//	m ← (1−γ)·ḡ + γ·m.
type Mime struct{}

var _ fl.Algorithm = Mime{}

// NewMime returns the MimeLite baseline.
func NewMime() Mime { return Mime{} }

// Name implements fl.Algorithm.
func (Mime) Name() string { return "Mime" }

// Run implements fl.Algorithm.
func (Mime) Run(cfg *fl.Config) (*fl.Result, error) {
	hn, err := fl.NewHarness(cfg)
	if err != nil {
		return nil, err
	}
	res := hn.NewResult("Mime")
	x0 := hn.InitParams()
	dim := len(x0)
	workers := flatten(hn)
	period := cfg.Tau * cfg.Pi

	xs := make([]tensor.Vector, len(workers))
	gradSums := make([]tensor.Vector, len(workers))
	for j := range xs {
		xs[j] = x0.Clone()
		gradSums[j] = tensor.NewVector(dim)
	}
	grads := workerScratch(len(workers), dim)
	mom := tensor.NewVector(dim)
	server := x0.Clone()
	avgGrad := tensor.NewVector(dim)
	scratch := tensor.NewVector(dim)

	ck, start, err := checkpointRun(hn, "Mime", res,
		map[string][]tensor.Vector{"x": xs, "gradSum": gradSums},
		map[string]tensor.Vector{"server": server, "mom": mom})
	if err != nil {
		return nil, err
	}
	sink := traceStart(hn, "Mime", start)

	for t := start + 1; t <= cfg.T; t++ {
		// mom is frozen during the round, so the parallel steps only read it.
		err := forEachWorker(hn, workers, func(j int, w flatWorker) error {
			if _, err := hn.Grad(w.l, w.i, xs[j], grads[j]); err != nil {
				return err
			}
			if err := gradSums[j].Add(grads[j]); err != nil {
				return err
			}
			// x ← x − η·((1−γ)·g + γ·m) with m frozen for the round.
			if err := xs[j].AXPY(-cfg.Eta*(1-cfg.Gamma), grads[j]); err != nil {
				return err
			}
			return xs[j].AXPY(-cfg.Eta*cfg.Gamma, mom)
		})
		if err != nil {
			return nil, err
		}
		if t%period == 0 {
			if err := flatAverage(server, workers, xs); err != nil {
				return nil, err
			}
			// Refresh the global momentum from the mean interval gradients.
			if err := flatAverage(avgGrad, workers, gradSums); err != nil {
				return nil, err
			}
			avgGrad.Scale(1 / float64(period))
			mom.Scale(cfg.Gamma)
			if err := mom.AXPY(1-cfg.Gamma, avgGrad); err != nil {
				return nil, err
			}
			for j := range xs {
				if err := xs[j].CopyFrom(server); err != nil {
					return nil, err
				}
				gradSums[j].Zero()
			}
			traceCloudSync(sink, t, len(workers))
		}
		if err := recordFlat(hn, res, t, workers, xs, scratch); err != nil {
			return nil, err
		}
		if err := ck.MaybeSnapshot(t); err != nil {
			return nil, err
		}
	}
	if err := hn.Finish(res, server); err != nil {
		return nil, err
	}
	traceEnd(sink, res)
	return res, nil
}
