package baseline

import (
	"fmt"

	"hieradmo/internal/fl"
	"hieradmo/internal/tensor"
)

// HierFAVG is client–edge–cloud hierarchical FedAvg (Liu et al., ICC'20):
// plain SGD at the workers, weighted model averaging at each edge every τ
// iterations and at the cloud every τπ iterations.
type HierFAVG struct {
	// edgeMix is the fraction of the fresh worker average blended into the
	// edge model at each edge aggregation. 1 is full replacement (HierFAVG);
	// CFL uses a partial value.
	edgeMix float64
	name    string
}

var (
	_ fl.Algorithm = (*HierFAVG)(nil)
	_ fl.Algorithm = (*CFL)(nil)
)

// NewHierFAVG returns the standard hierarchical FedAvg baseline.
func NewHierFAVG() *HierFAVG {
	return &HierFAVG{edgeMix: 1, name: "HierFAVG"}
}

// CFL approximates resource-efficient hierarchical aggregation (Wang et al.,
// INFOCOM'21) as hierarchical FedAvg with partial edge aggregation:
// x_edge ← (1−κ)·x_edge + κ·avg(workers). See DESIGN.md §1.
type CFL struct {
	inner *HierFAVG
}

// NewCFL returns the CFL baseline with the documented κ = 0.9.
func NewCFL() *CFL {
	return &CFL{inner: &HierFAVG{edgeMix: 0.9, name: "CFL"}}
}

// Name implements fl.Algorithm.
func (c *CFL) Name() string { return c.inner.name }

// Run implements fl.Algorithm.
func (c *CFL) Run(cfg *fl.Config) (*fl.Result, error) { return c.inner.Run(cfg) }

// Name implements fl.Algorithm.
func (a *HierFAVG) Name() string { return a.name }

// Run implements fl.Algorithm.
func (a *HierFAVG) Run(cfg *fl.Config) (*fl.Result, error) {
	hn, err := fl.NewHarness(cfg)
	if err != nil {
		return nil, err
	}
	res := hn.NewResult(a.Name())
	x0 := hn.InitParams()
	dim := len(x0)

	xs := hn.CloneGrid(x0)    // worker models
	grads := hn.ZeroGrid(dim) // per-worker scratch gradients
	workers := flatten(hn)
	edgeX := make([]tensor.Vector, cfg.NumEdges())
	for l := range edgeX {
		edgeX[l] = x0.Clone()
	}
	cloudX := x0.Clone()
	scratch := tensor.NewVector(dim)

	groups := map[string][]tensor.Vector{"edgeX": edgeX}
	for l, row := range xs {
		groups[fmt.Sprintf("x/%d", l)] = row
	}
	ck, start, err := checkpointRun(hn, a.Name(), res, groups,
		map[string]tensor.Vector{"cloudX": cloudX})
	if err != nil {
		return nil, err
	}
	sink := traceStart(hn, a.Name(), start)

	for t := start + 1; t <= cfg.T; t++ {
		err := forEachWorker(hn, workers, func(_ int, w flatWorker) error {
			if _, err := hn.Grad(w.l, w.i, xs[w.l][w.i], grads[w.l][w.i]); err != nil {
				return err
			}
			return xs[w.l][w.i].AXPY(-cfg.Eta, grads[w.l][w.i])
		})
		if err != nil {
			return nil, err
		}
		if t%cfg.Tau == 0 {
			for l := range xs {
				if err := hn.EdgeAverage(scratch, l, xs[l]); err != nil {
					return nil, err
				}
				// Partial (CFL) or full (HierFAVG) edge aggregation.
				if err := tensor.Lerp(edgeX[l], edgeX[l], scratch, a.edgeMix); err != nil {
					return nil, fmt.Errorf("baseline %s: edge mix: %w", a.name, err)
				}
				for i := range xs[l] {
					if err := xs[l][i].CopyFrom(edgeX[l]); err != nil {
						return nil, err
					}
				}
				traceEdgeAggregate(sink, t, l, len(xs[l]))
			}
		}
		if t%(cfg.Tau*cfg.Pi) == 0 {
			if err := hn.CloudAverage(cloudX, edgeX); err != nil {
				return nil, err
			}
			for l := range edgeX {
				if err := edgeX[l].CopyFrom(cloudX); err != nil {
					return nil, err
				}
				for i := range xs[l] {
					if err := xs[l][i].CopyFrom(cloudX); err != nil {
						return nil, err
					}
				}
			}
			traceCloudSync(sink, t, len(edgeX))
		}
		if hn.ShouldEval(t) {
			if err := hn.GlobalAverage(scratch, xs); err != nil {
				return nil, err
			}
			if err := hn.RecordPoint(res, t, scratch); err != nil {
				return nil, err
			}
		}
		if err := ck.MaybeSnapshot(t); err != nil {
			return nil, err
		}
	}
	if err := hn.Finish(res, cloudX); err != nil {
		return nil, err
	}
	traceEnd(sink, res)
	return res, nil
}
