package baseline

import (
	"testing"

	"hieradmo/internal/dataset"
	"hieradmo/internal/fl"
	"hieradmo/internal/model"
)

func buildConfig(t *testing.T, seed uint64) *fl.Config {
	t.Helper()
	cfg := dataset.GenConfig{
		Name:          "toy",
		Shape:         dataset.Shape{C: 1, H: 5, W: 5},
		NumClasses:    4,
		TemplateScale: 1.0,
		NoiseStd:      0.6,
		SmoothPasses:  1,
	}
	g, err := dataset.NewGenerator(cfg, seed)
	if err != nil {
		t.Fatal(err)
	}
	train, test := g.TrainTest(400, 120, seed+1)
	shards, err := dataset.PartitionIID(train, 4, seed+2)
	if err != nil {
		t.Fatal(err)
	}
	hier, err := dataset.Hierarchy(shards, []int{2, 2})
	if err != nil {
		t.Fatal(err)
	}
	m, err := model.NewLogisticRegression(cfg.Shape, cfg.NumClasses)
	if err != nil {
		t.Fatal(err)
	}
	return &fl.Config{
		Model:     m,
		Edges:     hier,
		Test:      test,
		Eta:       0.05,
		Gamma:     0.5,
		GammaEdge: 0.5,
		Tau:       2,
		Pi:        2,
		T:         120,
		BatchSize: 8,
		Seed:      seed,
		EvalEvery: 40,
	}
}

func allAlgorithms() []fl.Algorithm {
	return []fl.Algorithm{
		NewHierFAVG(),
		NewCFL(),
		NewFedAvg(),
		NewFedNAG(),
		NewFedMom(),
		NewSlowMo(),
		NewMime(),
		NewFastSlowMo(),
		NewFedADC(),
	}
}

func TestNames(t *testing.T) {
	want := map[string]bool{
		"HierFAVG": true, "CFL": true, "FedAvg": true, "FedNAG": true,
		"FedMom": true, "SlowMo": true, "Mime": true, "FastSlowMo": true,
		"FedADC": true,
	}
	for _, alg := range allAlgorithms() {
		if !want[alg.Name()] {
			t.Errorf("unexpected algorithm name %q", alg.Name())
		}
		delete(want, alg.Name())
	}
	if len(want) != 0 {
		t.Errorf("missing algorithms: %v", want)
	}
}

func TestAllBaselinesLearn(t *testing.T) {
	// Every baseline must run to completion, record a well-formed curve, and
	// beat chance (0.25 on 4 classes) on the easy IID task.
	for _, alg := range allAlgorithms() {
		alg := alg
		t.Run(alg.Name(), func(t *testing.T) {
			t.Parallel()
			cfg := buildConfig(t, 21)
			res, err := alg.Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res.Algorithm != alg.Name() {
				t.Errorf("result algorithm %q", res.Algorithm)
			}
			if res.FinalAcc < 0.5 {
				t.Errorf("final accuracy %.3f, want >= 0.5", res.FinalAcc)
			}
			if len(res.Curve) == 0 || res.Curve[len(res.Curve)-1].Iter != cfg.T {
				t.Errorf("malformed curve (%d points)", len(res.Curve))
			}
		})
	}
}

func TestAllBaselinesDeterministic(t *testing.T) {
	for _, alg := range allAlgorithms() {
		alg := alg
		t.Run(alg.Name(), func(t *testing.T) {
			t.Parallel()
			cfg := buildConfig(t, 23)
			cfg.T = 40
			cfg.EvalEvery = 0
			a, err := alg.Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			b, err := alg.Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if a.FinalAcc != b.FinalAcc || a.FinalLoss != b.FinalLoss {
				t.Errorf("non-deterministic run: %v/%v vs %v/%v",
					a.FinalAcc, a.FinalLoss, b.FinalAcc, b.FinalLoss)
			}
		})
	}
}

func TestBaselinesRejectBadConfig(t *testing.T) {
	cfg := buildConfig(t, 25)
	cfg.Eta = -1
	for _, alg := range allAlgorithms() {
		if _, err := alg.Run(cfg); err == nil {
			t.Errorf("%s accepted invalid config", alg.Name())
		}
	}
}

func TestFlattenWeights(t *testing.T) {
	cfg := buildConfig(t, 27)
	hn, err := fl.NewHarness(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ws := flatten(hn)
	if len(ws) != 4 {
		t.Fatalf("flattened %d workers, want 4", len(ws))
	}
	var sum float64
	for _, w := range ws {
		sum += w.weight
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("flat weights sum = %v", sum)
	}
}

// TestMomentumHelpsNonIID checks the paper's core ordering on a non-IID
// workload: the momentum-based two-tier algorithm (FedNAG) should reach at
// least the accuracy neighbourhood of plain FedAvg, and hierarchical
// averaging (HierFAVG) should not trail FedAvg materially. These are shape
// assertions with generous tolerances to stay robust across seeds.
func TestMomentumHelpsNonIID(t *testing.T) {
	base := buildConfig(t, 29)
	shards, err := dataset.PartitionClasses(mergeShards(base), 4, 2, 31)
	if err != nil {
		t.Fatal(err)
	}
	hier, err := dataset.Hierarchy(shards, []int{2, 2})
	if err != nil {
		t.Fatal(err)
	}
	base.Edges = hier
	base.T = 160
	base.EvalEvery = 0

	fedavg, err := NewFedAvg().Run(base)
	if err != nil {
		t.Fatal(err)
	}
	fednag, err := NewFedNAG().Run(base)
	if err != nil {
		t.Fatal(err)
	}
	if fednag.FinalAcc < fedavg.FinalAcc-0.1 {
		t.Errorf("FedNAG %.3f materially below FedAvg %.3f on non-IID data",
			fednag.FinalAcc, fedavg.FinalAcc)
	}
}

// mergeShards reassembles the training dataset from a config's edges.
func mergeShards(cfg *fl.Config) *dataset.Dataset {
	merged := &dataset.Dataset{}
	for _, edge := range cfg.Edges {
		for _, shard := range edge {
			if merged.NumClasses == 0 {
				merged.Name = shard.Name
				merged.Shape = shard.Shape
				merged.NumClasses = shard.NumClasses
			}
			merged.Samples = append(merged.Samples, shard.Samples...)
		}
	}
	return merged
}
