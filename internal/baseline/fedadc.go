package baseline

import (
	"hieradmo/internal/fl"
	"hieradmo/internal/tensor"
)

// FedADC approximates accelerated federated learning with drift control
// (Ozfatura et al., ISIT'21): the server maintains a momentum of the
// aggregated pseudo-gradient and pushes it down to the workers, who mix it
// into every local step so their updates are steered toward the global
// descent direction (controlling client drift):
//
//	local:  x ← x − η·(g + γℓ·m)          (m frozen during the round)
//	server: ĝ  = (x_server − x̄)/(η·τπ)
//	        m ← γℓ·m + (1−γℓ)·ĝ
//	        x_server ← x̄
//
// See DESIGN.md §1 for the approximation note.
type FedADC struct{}

var _ fl.Algorithm = FedADC{}

// NewFedADC returns the FedADC baseline.
func NewFedADC() FedADC { return FedADC{} }

// Name implements fl.Algorithm.
func (FedADC) Name() string { return "FedADC" }

// Run implements fl.Algorithm.
func (FedADC) Run(cfg *fl.Config) (*fl.Result, error) {
	hn, err := fl.NewHarness(cfg)
	if err != nil {
		return nil, err
	}
	res := hn.NewResult("FedADC")
	x0 := hn.InitParams()
	dim := len(x0)
	workers := flatten(hn)
	period := cfg.Tau * cfg.Pi

	xs := make([]tensor.Vector, len(workers))
	for j := range xs {
		xs[j] = x0.Clone()
	}
	grads := workerScratch(len(workers), dim)
	mom := tensor.NewVector(dim)
	server := x0.Clone()
	avg := tensor.NewVector(dim)
	pseudo := tensor.NewVector(dim)
	scratch := tensor.NewVector(dim)

	ck, start, err := checkpointRun(hn, "FedADC", res,
		map[string][]tensor.Vector{"x": xs},
		map[string]tensor.Vector{"server": server, "mom": mom})
	if err != nil {
		return nil, err
	}
	sink := traceStart(hn, "FedADC", start)

	for t := start + 1; t <= cfg.T; t++ {
		// mom is frozen during the round, so the parallel steps only read it.
		err := forEachWorker(hn, workers, func(j int, w flatWorker) error {
			if _, err := hn.Grad(w.l, w.i, xs[j], grads[j]); err != nil {
				return err
			}
			if err := xs[j].AXPY(-cfg.Eta, grads[j]); err != nil {
				return err
			}
			return xs[j].AXPY(-cfg.Eta*cfg.GammaEdge, mom)
		})
		if err != nil {
			return nil, err
		}
		if t%period == 0 {
			if err := flatAverage(avg, workers, xs); err != nil {
				return nil, err
			}
			// Pseudo-gradient of the round, per local step.
			if err := pseudo.CopyFrom(server); err != nil {
				return nil, err
			}
			if err := pseudo.Sub(avg); err != nil {
				return nil, err
			}
			pseudo.Scale(1 / (cfg.Eta * float64(period)))
			mom.Scale(cfg.GammaEdge)
			if err := mom.AXPY(1-cfg.GammaEdge, pseudo); err != nil {
				return nil, err
			}
			if err := server.CopyFrom(avg); err != nil {
				return nil, err
			}
			for j := range xs {
				if err := xs[j].CopyFrom(server); err != nil {
					return nil, err
				}
			}
			traceCloudSync(sink, t, len(workers))
		}
		if err := recordFlat(hn, res, t, workers, xs, scratch); err != nil {
			return nil, err
		}
		if err := ck.MaybeSnapshot(t); err != nil {
			return nil, err
		}
	}
	if err := hn.Finish(res, server); err != nil {
		return nil, err
	}
	traceEnd(sink, res)
	return res, nil
}
