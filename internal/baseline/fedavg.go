package baseline

import (
	"hieradmo/internal/fl"
	"hieradmo/internal/tensor"
)

// FedAvg is the classic two-tier baseline (McMahan et al.): plain local SGD
// with weighted model averaging at the cloud every τ·π iterations.
type FedAvg struct{}

var _ fl.Algorithm = FedAvg{}

// NewFedAvg returns the FedAvg baseline.
func NewFedAvg() FedAvg { return FedAvg{} }

// Name implements fl.Algorithm.
func (FedAvg) Name() string { return "FedAvg" }

// Run implements fl.Algorithm.
func (FedAvg) Run(cfg *fl.Config) (*fl.Result, error) {
	hn, err := fl.NewHarness(cfg)
	if err != nil {
		return nil, err
	}
	res := hn.NewResult("FedAvg")
	x0 := hn.InitParams()
	dim := len(x0)
	workers := flatten(hn)
	period := cfg.Tau * cfg.Pi

	xs := make([]tensor.Vector, len(workers))
	grads := workerScratch(len(workers), dim)
	for j := range xs {
		xs[j] = x0.Clone()
	}
	server := x0.Clone()
	scratch := tensor.NewVector(dim)

	ck, start, err := checkpointRun(hn, "FedAvg", res,
		map[string][]tensor.Vector{"x": xs},
		map[string]tensor.Vector{"server": server})
	if err != nil {
		return nil, err
	}
	sink := traceStart(hn, "FedAvg", start)

	for t := start + 1; t <= cfg.T; t++ {
		err := forEachWorker(hn, workers, func(j int, w flatWorker) error {
			if _, err := hn.Grad(w.l, w.i, xs[j], grads[j]); err != nil {
				return err
			}
			return xs[j].AXPY(-cfg.Eta, grads[j])
		})
		if err != nil {
			return nil, err
		}
		if t%period == 0 {
			if err := flatAverage(server, workers, xs); err != nil {
				return nil, err
			}
			for j := range xs {
				if err := xs[j].CopyFrom(server); err != nil {
					return nil, err
				}
			}
			traceCloudSync(sink, t, len(workers))
		}
		if err := recordFlat(hn, res, t, workers, xs, scratch); err != nil {
			return nil, err
		}
		if err := ck.MaybeSnapshot(t); err != nil {
			return nil, err
		}
	}
	if err := hn.Finish(res, server); err != nil {
		return nil, err
	}
	traceEnd(sink, res)
	return res, nil
}
