package baseline

import (
	"hieradmo/internal/fl"
	"hieradmo/internal/tensor"
)

// FastSlowMo (Yang et al., TAI'22) combines worker and aggregator momenta in
// the two-tier setting: workers run NAG, and at each aggregation the server
// applies its own momentum to the averaged worker models while the averaged
// worker momentum is redistributed — structurally the two-tier reduction of
// HierAdMo-R.
type FastSlowMo struct{}

var _ fl.Algorithm = FastSlowMo{}

// NewFastSlowMo returns the FastSlowMo baseline.
func NewFastSlowMo() FastSlowMo { return FastSlowMo{} }

// Name implements fl.Algorithm.
func (FastSlowMo) Name() string { return "FastSlowMo" }

// Run implements fl.Algorithm.
func (FastSlowMo) Run(cfg *fl.Config) (*fl.Result, error) {
	hn, err := fl.NewHarness(cfg)
	if err != nil {
		return nil, err
	}
	res := hn.NewResult("FastSlowMo")
	x0 := hn.InitParams()
	dim := len(x0)
	workers := flatten(hn)
	period := cfg.Tau * cfg.Pi

	xs := make([]tensor.Vector, len(workers))
	ys := make([]tensor.Vector, len(workers))
	for j := range xs {
		xs[j] = x0.Clone()
		ys[j] = x0.Clone()
	}
	grads := workerScratch(len(workers), dim)
	yPrevs := workerScratch(len(workers), dim)
	serverX := x0.Clone()
	serverYPrev := x0.Clone() // aggregator momentum history
	avgX := tensor.NewVector(dim)
	avgY := tensor.NewVector(dim)
	scratch := tensor.NewVector(dim)

	ck, start, err := checkpointRun(hn, "FastSlowMo", res,
		map[string][]tensor.Vector{"x": xs, "y": ys},
		map[string]tensor.Vector{"serverX": serverX, "serverYPrev": serverYPrev})
	if err != nil {
		return nil, err
	}
	sink := traceStart(hn, "FastSlowMo", start)

	for t := start + 1; t <= cfg.T; t++ {
		err := forEachWorker(hn, workers, func(j int, w flatWorker) error {
			if _, err := hn.Grad(w.l, w.i, xs[j], grads[j]); err != nil {
				return err
			}
			if err := yPrevs[j].CopyFrom(ys[j]); err != nil {
				return err
			}
			if err := ys[j].CopyFrom(xs[j]); err != nil {
				return err
			}
			if err := ys[j].AXPY(-cfg.Eta, grads[j]); err != nil {
				return err
			}
			if err := xs[j].CopyFrom(ys[j]); err != nil {
				return err
			}
			if err := xs[j].AXPY(cfg.Gamma, ys[j]); err != nil {
				return err
			}
			return xs[j].AXPY(-cfg.Gamma, yPrevs[j])
		})
		if err != nil {
			return nil, err
		}
		if t%period == 0 {
			if err := flatAverage(avgX, workers, xs); err != nil {
				return nil, err
			}
			if err := flatAverage(avgY, workers, ys); err != nil {
				return nil, err
			}
			// Server model: x ← x̄ + γℓ(x̄ − x̄_prev), aggregator momentum on
			// the averaged models.
			if err := serverX.CopyFrom(avgX); err != nil {
				return nil, err
			}
			if err := serverX.AXPY(cfg.GammaEdge, avgX); err != nil {
				return nil, err
			}
			if err := serverX.AXPY(-cfg.GammaEdge, serverYPrev); err != nil {
				return nil, err
			}
			if err := serverYPrev.CopyFrom(avgX); err != nil {
				return nil, err
			}
			for j := range xs {
				if err := xs[j].CopyFrom(serverX); err != nil {
					return nil, err
				}
				if err := ys[j].CopyFrom(avgY); err != nil {
					return nil, err
				}
			}
			traceCloudSync(sink, t, len(workers))
		}
		if err := recordFlat(hn, res, t, workers, xs, scratch); err != nil {
			return nil, err
		}
		if err := ck.MaybeSnapshot(t); err != nil {
			return nil, err
		}
	}
	if err := hn.Finish(res, serverX); err != nil {
		return nil, err
	}
	traceEnd(sink, res)
	return res, nil
}
