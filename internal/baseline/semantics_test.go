package baseline

import (
	"testing"

	"hieradmo/internal/dataset"
	"hieradmo/internal/fl"
	"hieradmo/internal/model"
	"hieradmo/internal/tensor"
)

// The tests below pin each baseline to its defining degenerate behaviour:
// with the right hyper-parameters the algorithms collapse onto one another
// exactly, which catches any drift in the update rules.

// datasetAlias keeps the hierarchy literals below readable.
type datasetAlias = dataset.Dataset

// accuracyOf evaluates params on the config's full test set.
func accuracyOf(cfg *fl.Config, params tensor.Vector) (float64, error) {
	return model.Accuracy(cfg.Model, params, cfg.Test)
}

func TestFedAvgSingleWorkerIsSGD(t *testing.T) {
	// One worker, aggregation is the identity ⇒ FedAvg is plain SGD. Replay
	// SGD manually over the same batch stream and compare exactly.
	cfg := buildConfig(t, 71)
	cfg.Edges = cfg.Edges[:1]
	cfg.Edges[0] = cfg.Edges[0][:1]
	cfg.T = 24
	cfg.EvalEvery = 0

	res, err := NewFedAvg().Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	hn, err := fl.NewHarness(cfg)
	if err != nil {
		t.Fatal(err)
	}
	x := hn.InitParams()
	grad := tensor.NewVector(len(x))
	for step := 0; step < cfg.T; step++ {
		if _, err := hn.Grad(0, 0, x, grad); err != nil {
			t.Fatal(err)
		}
		if err := x.AXPY(-cfg.Eta, grad); err != nil {
			t.Fatal(err)
		}
	}
	acc, err := accuracyOf(cfg, x)
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalAcc != acc {
		t.Errorf("FedAvg single-worker %v != manual SGD %v", res.FinalAcc, acc)
	}
}

func TestMimeZeroGammaIsFedAvg(t *testing.T) {
	// With γ = 0, Mime's local step is x ← x − η·g and its momentum is
	// never applied ⇒ identical to FedAvg.
	cfg := buildConfig(t, 73)
	cfg.Gamma = 0
	cfg.T = 24
	cfg.EvalEvery = 0
	mime, err := NewMime().Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fedavg, err := NewFedAvg().Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if mime.FinalAcc != fedavg.FinalAcc {
		t.Errorf("Mime(γ=0) %v != FedAvg %v", mime.FinalAcc, fedavg.FinalAcc)
	}
}

func TestFedADCZeroGammaEdgeIsFedAvg(t *testing.T) {
	// With γℓ = 0 the drift-control term vanishes and the server momentum
	// is never mixed in ⇒ FedADC is FedAvg.
	cfg := buildConfig(t, 79)
	cfg.GammaEdge = 0
	cfg.T = 24
	cfg.EvalEvery = 0
	adc, err := NewFedADC().Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fedavg, err := NewFedAvg().Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if adc.FinalAcc != fedavg.FinalAcc {
		t.Errorf("FedADC(γℓ=0) %v != FedAvg %v", adc.FinalAcc, fedavg.FinalAcc)
	}
}

func TestSlowMoZeroMomentaIsFedAvg(t *testing.T) {
	// γ = 0 kills the local momentum (v accumulates −ηg then x += v — the
	// SGD step) and γℓ = 0 makes the server update x ← x − (x − avg) = avg.
	cfg := buildConfig(t, 83)
	cfg.Gamma = 0
	cfg.GammaEdge = 0
	cfg.T = 24
	cfg.EvalEvery = 0
	slowmo, err := NewSlowMo().Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fedavg, err := NewFedAvg().Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if slowmo.FinalAcc != fedavg.FinalAcc {
		t.Errorf("SlowMo(γ=γℓ=0) %v != FedAvg %v", slowmo.FinalAcc, fedavg.FinalAcc)
	}
}

func TestFedMomZeroGammaEdgeIsFedAvg(t *testing.T) {
	cfg := buildConfig(t, 89)
	cfg.GammaEdge = 0
	cfg.T = 24
	cfg.EvalEvery = 0
	fedmom, err := NewFedMom().Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fedavg, err := NewFedAvg().Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if fedmom.FinalAcc != fedavg.FinalAcc {
		t.Errorf("FedMom(γℓ=0) %v != FedAvg %v", fedmom.FinalAcc, fedavg.FinalAcc)
	}
}

func TestFastSlowMoZeroGammaEdgeIsFedNAG(t *testing.T) {
	// With γℓ = 0 the aggregator momentum disappears and FastSlowMo reduces
	// to FedNAG (model + momentum averaging).
	cfg := buildConfig(t, 97)
	cfg.GammaEdge = 0
	cfg.T = 24
	cfg.EvalEvery = 0
	fsm, err := NewFastSlowMo().Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fednag, err := NewFedNAG().Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if fsm.FinalAcc != fednag.FinalAcc {
		t.Errorf("FastSlowMo(γℓ=0) %v != FedNAG %v", fsm.FinalAcc, fednag.FinalAcc)
	}
}

func TestHierFAVGSingleTierIsFedAvg(t *testing.T) {
	// With one edge holding all workers and π = 1, HierFAVG's edge
	// aggregation every τ is exactly FedAvg's aggregation every τ·π.
	cfg := buildConfig(t, 101)
	var flat []*datasetAlias
	for _, edge := range cfg.Edges {
		flat = append(flat, edge...)
	}
	cfg.Edges = [][]*datasetAlias{flat}
	cfg.Pi = 1
	cfg.T = 24
	cfg.EvalEvery = 0
	hier, err := NewHierFAVG().Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fedavg, err := NewFedAvg().Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if hier.FinalAcc != fedavg.FinalAcc {
		t.Errorf("HierFAVG(L=1,π=1) %v != FedAvg %v", hier.FinalAcc, fedavg.FinalAcc)
	}
}
