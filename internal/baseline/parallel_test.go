package baseline

import (
	"reflect"
	"testing"
)

// TestBaselinesBitIdenticalAcrossPoolSizes asserts every baseline's full
// result — curve, final accuracy, final loss — is unchanged by the
// worker-pool size: the parallel local phase only writes worker-owned state,
// and every reduction runs after the barrier in fixed index order.
func TestBaselinesBitIdenticalAcrossPoolSizes(t *testing.T) {
	cfg := buildConfig(t, 31)
	cfg.T = 24
	cfg.EvalEvery = 8
	for _, alg := range allAlgorithms() {
		t.Run(alg.Name(), func(t *testing.T) {
			seq := *cfg
			seq.Workers = 1
			want, err := alg.Run(&seq)
			if err != nil {
				t.Fatal(err)
			}
			for _, pool := range []int{2, 8} {
				c := *cfg
				c.Workers = pool
				got, err := alg.Run(&c)
				if err != nil {
					t.Fatalf("pool=%d: %v", pool, err)
				}
				if !reflect.DeepEqual(want, got) {
					t.Errorf("pool=%d result diverged from sequential run:\nseq: %+v\ngot: %+v",
						pool, want, got)
				}
			}
		})
	}
}
