package baseline

import (
	"hieradmo/internal/fl"
	"hieradmo/internal/tensor"
)

// serverMomentum is the shared skeleton of FedMom and SlowMo: workers run
// local SGD (optionally with local Polyak momentum), and the server applies
// heavy-ball momentum to the aggregated round update:
//
//	Δ   = x_server − avg_i(x_i)
//	m   ← γℓ·m + Δ
//	x   ← x_server − m
type serverMomentum struct {
	name          string
	localMomentum bool // SlowMo keeps Polyak momentum at the workers
}

var (
	_ fl.Algorithm = (*serverMomentum)(nil)
)

// NewFedMom returns the federated server-momentum baseline (Huo et al.):
// plain SGD workers, heavy-ball momentum at the aggregator.
func NewFedMom() fl.Algorithm {
	return &serverMomentum{name: "FedMom"}
}

// NewSlowMo returns the SlowMo baseline (Wang et al., ICLR'20): local SGD
// with worker-level Polyak momentum plus slow server momentum.
func NewSlowMo() fl.Algorithm {
	return &serverMomentum{name: "SlowMo", localMomentum: true}
}

// Name implements fl.Algorithm.
func (a *serverMomentum) Name() string { return a.name }

// Run implements fl.Algorithm.
func (a *serverMomentum) Run(cfg *fl.Config) (*fl.Result, error) {
	hn, err := fl.NewHarness(cfg)
	if err != nil {
		return nil, err
	}
	res := hn.NewResult(a.name)
	x0 := hn.InitParams()
	dim := len(x0)
	workers := flatten(hn)
	period := cfg.Tau * cfg.Pi

	xs := make([]tensor.Vector, len(workers))
	vs := make([]tensor.Vector, len(workers)) // local Polyak momentum (SlowMo)
	for j := range xs {
		xs[j] = x0.Clone()
		vs[j] = tensor.NewVector(dim)
	}
	grads := workerScratch(len(workers), dim)
	server := x0.Clone()
	serverMom := tensor.NewVector(dim)
	avg := tensor.NewVector(dim)
	scratch := tensor.NewVector(dim)

	ck, start, err := checkpointRun(hn, a.name, res,
		map[string][]tensor.Vector{"x": xs, "v": vs},
		map[string]tensor.Vector{"server": server, "serverMom": serverMom})
	if err != nil {
		return nil, err
	}
	sink := traceStart(hn, a.name, start)

	for t := start + 1; t <= cfg.T; t++ {
		err := forEachWorker(hn, workers, func(j int, w flatWorker) error {
			if _, err := hn.Grad(w.l, w.i, xs[j], grads[j]); err != nil {
				return err
			}
			if a.localMomentum {
				// v ← γ·v − η·g ; x ← x + v
				vs[j].Scale(cfg.Gamma)
				if err := vs[j].AXPY(-cfg.Eta, grads[j]); err != nil {
					return err
				}
				return xs[j].Add(vs[j])
			}
			return xs[j].AXPY(-cfg.Eta, grads[j])
		})
		if err != nil {
			return nil, err
		}
		if t%period == 0 {
			if err := flatAverage(avg, workers, xs); err != nil {
				return nil, err
			}
			// m ← γℓ·m + (x_server − avg); x_server ← x_server − m.
			serverMom.Scale(cfg.GammaEdge)
			if err := serverMom.Add(server); err != nil {
				return nil, err
			}
			if err := serverMom.Sub(avg); err != nil {
				return nil, err
			}
			if err := server.Sub(serverMom); err != nil {
				return nil, err
			}
			for j := range xs {
				if err := xs[j].CopyFrom(server); err != nil {
					return nil, err
				}
			}
			traceCloudSync(sink, t, len(workers))
		}
		if err := recordFlat(hn, res, t, workers, xs, scratch); err != nil {
			return nil, err
		}
		if err := ck.MaybeSnapshot(t); err != nil {
			return nil, err
		}
	}
	if err := hn.Finish(res, server); err != nil {
		return nil, err
	}
	traceEnd(sink, res)
	return res, nil
}
