package baseline

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"hieradmo/internal/fl"
)

// assertSameResult fails unless a and b are bit-identical.
func assertSameResult(t *testing.T, a, b *fl.Result) {
	t.Helper()
	if a.FinalAcc != b.FinalAcc || a.FinalLoss != b.FinalLoss {
		t.Fatalf("final metrics diverge: (%v, %v) vs (%v, %v)",
			a.FinalAcc, a.FinalLoss, b.FinalAcc, b.FinalLoss)
	}
	if len(a.Curve) != len(b.Curve) {
		t.Fatalf("curve lengths diverge: %d vs %d", len(a.Curve), len(b.Curve))
	}
	for i := range a.Curve {
		if a.Curve[i] != b.Curve[i] {
			t.Fatalf("curve point %d diverges: %+v vs %+v", i, a.Curve[i], b.Curve[i])
		}
	}
}

// deleteNewestSnapshot rewinds dir to the state a crash between the last two
// snapshots leaves behind.
func deleteNewestSnapshot(t *testing.T, dir string) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".ckpt") {
			names = append(names, e.Name())
		}
	}
	if len(names) < 2 {
		t.Fatalf("need at least 2 snapshot generations to rewind, have %v", names)
	}
	sort.Strings(names)
	if err := os.Remove(filepath.Join(dir, names[len(names)-1])); err != nil {
		t.Fatal(err)
	}
}

// TestBaselinesResumeBitIdentical verifies crash recovery across every
// baseline: an interrupted-and-resumed run reproduces the uninterrupted
// run's curve and final metrics exactly, at several worker-pool sizes.
func TestBaselinesResumeBitIdentical(t *testing.T) {
	for _, alg := range allAlgorithms() {
		alg := alg
		t.Run(alg.Name(), func(t *testing.T) {
			t.Parallel()
			cfg := buildConfig(t, 11)
			cfg.T = 40
			cfg.EvalEvery = 8
			ref, err := alg.Run(cfg)
			if err != nil {
				t.Fatal(err)
			}

			for _, pool := range []int{1, 2, 8} {
				t.Run(fmt.Sprintf("pool-%d", pool), func(t *testing.T) {
					dir := t.TempDir()
					run := func() *fl.Result {
						c := buildConfig(t, 11)
						c.T = 40
						c.EvalEvery = 8
						c.Workers = pool
						c.CheckpointDir = dir
						res, err := alg.Run(c)
						if err != nil {
							t.Fatal(err)
						}
						return res
					}
					assertSameResult(t, ref, run())
					deleteNewestSnapshot(t, dir)
					assertSameResult(t, ref, run())
				})
			}
		})
	}
}
