package experiment

import (
	"strings"
	"testing"
)

// tinyScale keeps experiment integration tests fast while exercising every
// code path.
func tinyScale() Scale {
	return Scale{
		TrainSamples: 300,
		TestSamples:  100,
		TConvex:      40,
		TNonConvex:   40,
		BatchSize:    4,
		EvalEvery:    20,
		EvalSamples:  60,
		TargetAcc:    0.5,
		Seed:         3,
	}
}

func TestScaleValidate(t *testing.T) {
	if err := BenchScale().Validate(); err != nil {
		t.Errorf("BenchScale invalid: %v", err)
	}
	if err := DefaultScale().Validate(); err != nil {
		t.Errorf("DefaultScale invalid: %v", err)
	}
	bad := BenchScale()
	bad.TrainSamples = 0
	if err := bad.Validate(); err == nil {
		t.Error("accepted zero train samples")
	}
	bad = BenchScale()
	bad.TargetAcc = 1.5
	if err := bad.Validate(); err == nil {
		t.Error("accepted target accuracy > 1")
	}
	bad = BenchScale()
	bad.BatchSize = -1
	if err := bad.Validate(); err == nil {
		t.Error("accepted negative batch")
	}
	bad = BenchScale()
	bad.TConvex = 0
	if err := bad.Validate(); err == nil {
		t.Error("accepted zero budget")
	}
}

func TestBuildConfigDefaults(t *testing.T) {
	cfg, err := BuildConfig(Workload{Dataset: "mnist", Model: "logistic"}, tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Tau != 10 || cfg.Pi != 2 {
		t.Errorf("convex defaults tau=%d pi=%d, want 10/2", cfg.Tau, cfg.Pi)
	}
	if cfg.T%(cfg.Tau*cfg.Pi) != 0 {
		t.Errorf("T=%d not rounded to multiple of %d", cfg.T, cfg.Tau*cfg.Pi)
	}
	if cfg.NumWorkers() != 4 || cfg.NumEdges() != 2 {
		t.Errorf("default topology %d workers / %d edges", cfg.NumWorkers(), cfg.NumEdges())
	}
	cfg2, err := BuildConfig(Workload{Dataset: "mnist", Model: "cnn"}, tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if cfg2.Tau != 20 {
		t.Errorf("non-convex default tau = %d, want 20", cfg2.Tau)
	}
}

func TestBuildConfigErrors(t *testing.T) {
	s := tinyScale()
	if _, err := BuildConfig(Workload{Dataset: "nope", Model: "cnn"}, s); err == nil {
		t.Error("accepted unknown dataset")
	}
	if _, err := BuildConfig(Workload{Dataset: "mnist", Model: "nope"}, s); err == nil {
		t.Error("accepted unknown model")
	}
	bad := s
	bad.BatchSize = 0
	if _, err := BuildConfig(Workload{Dataset: "mnist", Model: "cnn"}, bad); err == nil {
		t.Error("accepted invalid scale")
	}
}

func TestBuildConfigNonIID(t *testing.T) {
	cfg, err := BuildConfig(Workload{
		Dataset: "mnist", Model: "logistic", ClassesPerWorker: 3,
	}, tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	for _, edge := range cfg.Edges {
		for _, shard := range edge {
			if got := shard.ClassesPresent(); got > 3 {
				t.Errorf("worker shard holds %d classes, want <= 3", got)
			}
		}
	}
}

func TestAllAlgorithmsRoster(t *testing.T) {
	algos := AllAlgorithms()
	if len(algos) != 11 {
		t.Fatalf("%d algorithms, want the paper's 11", len(algos))
	}
	if algos[0].Name() != "HierAdMo" {
		t.Errorf("first algorithm %q, want HierAdMo", algos[0].Name())
	}
	seen := make(map[string]bool, len(algos))
	for _, a := range algos {
		if seen[a.Name()] {
			t.Errorf("duplicate algorithm %q", a.Name())
		}
		seen[a.Name()] = true
	}
}

func TestTierAndTrafficClassification(t *testing.T) {
	for _, name := range []string{"HierAdMo", "HierAdMo-R", "HierFAVG", "CFL"} {
		if !ThreeTier(name) {
			t.Errorf("%s should be three-tier", name)
		}
	}
	for _, name := range []string{"FedAvg", "FedNAG", "SlowMo", "Mime", "FedMom", "FastSlowMo", "FedADC"} {
		if ThreeTier(name) {
			t.Errorf("%s should be two-tier", name)
		}
	}
	if !MomentumTraffic("HierAdMo") || MomentumTraffic("FedAvg") {
		t.Error("momentum traffic classification wrong")
	}
}

func TestTableRender(t *testing.T) {
	tbl := &Table{
		Title:   "demo",
		Columns: []string{"a", "bb"},
		Notes:   []string{"a note"},
	}
	tbl.AddRow("row1", "1", "2")
	tbl.AddRow("longer-row", "3", "4")
	out := tbl.Render()
	for _, want := range []string{"demo", "row1", "longer-row", "a note", "bb"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestRunTableIISubsetSmall(t *testing.T) {
	// One convex combo, full 11-algorithm column, tiny scale.
	tbl, err := RunTableIISubset(tinyScale(), []Combo{{Label: "Logistic/MNIST", Dataset: "mnist", Model: "logistic"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 11 {
		t.Fatalf("%d rows, want 11", len(tbl.Rows))
	}
	if tbl.Rows[0].Label != "HierAdMo" {
		t.Errorf("first row %q", tbl.Rows[0].Label)
	}
	for _, r := range tbl.Rows {
		if len(r.Cells) != 1 || r.Cells[0] == "" {
			t.Errorf("row %s malformed: %v", r.Label, r.Cells)
		}
	}
}

func TestRunFig2TauSweepSmall(t *testing.T) {
	tbl, err := RunFig2TauSweep(tinyScale(), []int{2, 4}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("%d rows", len(tbl.Rows))
	}
}

func TestRunFig2PiSweepSmall(t *testing.T) {
	tbl, err := RunFig2PiSweep(tinyScale(), 2, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("%d rows", len(tbl.Rows))
	}
}

func TestRunFig2JointSweepSmall(t *testing.T) {
	tbl, err := RunFig2JointSweep(tinyScale(), 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) < 2 {
		t.Fatalf("%d rows", len(tbl.Rows))
	}
}

func TestRunFig2NonIIDSmall(t *testing.T) {
	tbl, err := RunFig2NonIID(tinyScale(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 11 {
		t.Fatalf("%d rows", len(tbl.Rows))
	}
	if _, err := RunFig2NonIID(tinyScale(), 0); err == nil {
		t.Error("accepted x=0")
	}
}

func TestRunFig2AdaptiveGammaSmall(t *testing.T) {
	tbl, err := RunFig2AdaptiveGamma(tinyScale(), 0.6)
	if err != nil {
		t.Fatal(err)
	}
	// Nine fixed settings plus the adaptive row.
	if len(tbl.Rows) != 10 {
		t.Fatalf("%d rows, want 10", len(tbl.Rows))
	}
	if tbl.Rows[9].Label != "adaptive" {
		t.Errorf("last row %q, want adaptive", tbl.Rows[9].Label)
	}
	if _, err := RunFig2AdaptiveGamma(tinyScale(), 1.2); err == nil {
		t.Error("accepted gamma > 1")
	}
}

func TestRunFig2TrainingTimeSmall(t *testing.T) {
	tbl, err := RunFig2TrainingTime(tinyScale(), TimingSetting1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 11 {
		t.Fatalf("%d rows", len(tbl.Rows))
	}
	for _, r := range tbl.Rows {
		if len(r.Cells) != 4 {
			t.Errorf("row %s has %d cells", r.Label, len(r.Cells))
		}
		if r.Cells[0] != "3-tier" && r.Cells[0] != "2-tier" {
			t.Errorf("row %s tier cell %q", r.Label, r.Cells[0])
		}
	}
	if _, err := RunFig2TrainingTime(tinyScale(), TimingSetting(99)); err == nil {
		t.Error("accepted unknown setting")
	}
}

func TestAblationsSmall(t *testing.T) {
	tbl, err := RunAblationAdaptSignal(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("signal ablation rows = %d", len(tbl.Rows))
	}
	tbl, err = RunAblationClampCeiling(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("clamp ablation rows = %d", len(tbl.Rows))
	}
}

func TestRegistryComplete(t *testing.T) {
	reg := Registry()
	for _, id := range ExperimentIDs() {
		if _, ok := reg[id]; !ok {
			t.Errorf("registry missing %q", id)
		}
	}
	if len(reg) != len(ExperimentIDs()) {
		t.Errorf("registry has %d entries, ids list %d", len(reg), len(ExperimentIDs()))
	}
}

func TestSpeedupOverBest(t *testing.T) {
	got := SpeedupOverBest([]float64{100, 200, 0, 50})
	want := []float64{2, 4, 0, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("speedup[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if out := SpeedupOverBest([]float64{0, 0}); out[0] != 0 || out[1] != 0 {
		t.Error("all-unreached speedups should be zero")
	}
}

func TestTableRenderCSV(t *testing.T) {
	tbl := &Table{
		Title:   "demo",
		Columns: []string{"a", "b,with comma"},
	}
	tbl.AddRow("row \"quoted\"", "1", "2")
	out := tbl.RenderCSV()
	if !strings.Contains(out, `"b,with comma"`) {
		t.Errorf("comma column not escaped: %q", out)
	}
	if !strings.Contains(out, `"row ""quoted"""`) {
		t.Errorf("quote not escaped: %q", out)
	}
	if !strings.HasPrefix(out, "label,") {
		t.Errorf("missing header: %q", out)
	}
}
