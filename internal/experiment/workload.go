package experiment

import (
	"fmt"

	"hieradmo/internal/baseline"
	"hieradmo/internal/core"
	"hieradmo/internal/dataset"
	"hieradmo/internal/fl"
	"hieradmo/internal/model"
)

// Workload specifies one training setup (dataset, model, topology,
// heterogeneity, and schedule). Zero-valued hyper-parameters take the
// paper's defaults.
type Workload struct {
	// Dataset is one of "mnist", "cifar10", "imagenet", "har".
	Dataset string
	// Model is a model.ByName name ("linear", "logistic", "cnn", ...).
	Model string
	// Edges lists workers per edge (default: two edges of two workers, the
	// paper's Table II topology).
	Edges []int
	// ClassesPerWorker enables x-class non-IID partitioning; 0 keeps the
	// random (IID) shuffle the paper uses by default.
	ClassesPerWorker int
	// DirichletAlpha enables Dirichlet(α) non-IID partitioning (mutually
	// exclusive with ClassesPerWorker); 0 disables it.
	DirichletAlpha float64
	// Tau and Pi are the aggregation periods (defaults per paper: τ=10,π=2
	// for convex models, τ=20,π=2 otherwise).
	Tau, Pi int
	// T overrides the scale's iteration budget when positive.
	T int
	// Eta, Gamma, GammaEdge override the paper defaults when positive.
	Eta, Gamma, GammaEdge float64
}

// datasetConfig maps a dataset name to its synthetic generator config.
func datasetConfig(name string) (dataset.GenConfig, error) {
	switch name {
	case "mnist":
		return dataset.MNISTConfig(), nil
	case "cifar10":
		return dataset.CIFAR10Config(), nil
	case "imagenet":
		return dataset.ImageNetConfig(), nil
	case "har":
		return dataset.HARConfig(), nil
	default:
		return dataset.GenConfig{}, fmt.Errorf("experiment: unknown dataset %q", name)
	}
}

// convexModel reports whether the named model yields a convex objective.
func convexModel(name string) bool {
	return name == "linear" || name == "logistic"
}

// BuildConfig materializes a Workload at the given Scale into a validated
// fl.Config.
func BuildConfig(w Workload, s Scale) (*fl.Config, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	genCfg, err := datasetConfig(w.Dataset)
	if err != nil {
		return nil, err
	}
	gen, err := dataset.NewGenerator(genCfg, s.Seed)
	if err != nil {
		return nil, fmt.Errorf("experiment: %s generator: %w", w.Dataset, err)
	}
	train, test := gen.TrainTest(s.TrainSamples, s.TestSamples, s.Seed+1)

	edges := w.Edges
	if len(edges) == 0 {
		edges = []int{2, 2} // the paper's N=4, L=2 Table II topology
	}
	numWorkers := 0
	for _, c := range edges {
		numWorkers += c
	}
	if w.ClassesPerWorker > 0 && w.DirichletAlpha > 0 {
		return nil, fmt.Errorf("experiment: ClassesPerWorker and DirichletAlpha are mutually exclusive")
	}
	var shards []*dataset.Dataset
	switch {
	case w.ClassesPerWorker > 0:
		shards, err = dataset.PartitionClasses(train, numWorkers, w.ClassesPerWorker, s.Seed+2)
	case w.DirichletAlpha > 0:
		shards, err = dataset.PartitionDirichlet(train, numWorkers, w.DirichletAlpha, s.Seed+2)
	default:
		shards, err = dataset.PartitionIID(train, numWorkers, s.Seed+2)
	}
	if err != nil {
		return nil, fmt.Errorf("experiment: partition: %w", err)
	}
	hier, err := dataset.Hierarchy(shards, edges)
	if err != nil {
		return nil, fmt.Errorf("experiment: hierarchy: %w", err)
	}

	m, err := model.ByName(w.Model, genCfg.Shape, genCfg.NumClasses)
	if err != nil {
		return nil, err
	}

	convex := convexModel(w.Model)
	tau, pi := w.Tau, w.Pi
	if tau == 0 {
		if convex {
			tau = 10
		} else {
			tau = 20
		}
	}
	if pi == 0 {
		pi = 2
	}
	t := w.T
	if t == 0 {
		if convex {
			t = s.TConvex
		} else {
			t = s.TNonConvex
		}
	}
	// Round T up to a multiple of τπ (the paper picks budgets that divide).
	if rem := t % (tau * pi); rem != 0 {
		t += tau*pi - rem
	}
	eta := w.Eta
	if eta == 0 {
		eta = fl.DefaultEta
	}
	gamma := w.Gamma
	if gamma == 0 {
		gamma = fl.DefaultGamma
	}
	gammaEdge := w.GammaEdge
	if gammaEdge == 0 {
		gammaEdge = fl.DefaultGammaEdge
	}
	evalEvery := s.EvalEvery
	if evalEvery == 0 {
		evalEvery = t / 10
	}
	cfg := &fl.Config{
		Model:       m,
		Edges:       hier,
		Test:        test,
		Eta:         eta,
		Gamma:       gamma,
		GammaEdge:   gammaEdge,
		Tau:         tau,
		Pi:          pi,
		T:           t,
		BatchSize:   s.BatchSize,
		Workers:     s.Workers,
		Seed:        s.Seed + 17,
		EvalEvery:   evalEvery,
		EvalSamples: s.EvalSamples,
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return cfg, nil
}

// AllAlgorithms lists the 11 algorithms of Table II in the paper's row
// order: HierAdMo first, then the three comparison categories.
func AllAlgorithms() []fl.Algorithm {
	return []fl.Algorithm{
		core.New(),
		core.NewReduced(),
		baseline.NewHierFAVG(),
		baseline.NewCFL(),
		baseline.NewFastSlowMo(),
		baseline.NewFedADC(),
		baseline.NewFedMom(),
		baseline.NewSlowMo(),
		baseline.NewFedNAG(),
		baseline.NewMime(),
		baseline.NewFedAvg(),
	}
}

// ThreeTier reports whether the named algorithm uses the client–edge–cloud
// hierarchy (it affects which timing simulation Fig. 2h/l applies).
func ThreeTier(name string) bool {
	switch name {
	case "HierAdMo", "HierAdMo-R", "HierFAVG", "CFL":
		return true
	default:
		return false
	}
}

// MomentumTraffic reports whether the named algorithm ships momentum state
// alongside the model at synchronization (it affects the Fig. 2h/l payload).
func MomentumTraffic(name string) bool {
	switch name {
	case "HierAdMo", "HierAdMo-R", "FastSlowMo", "FedNAG", "FedADC", "Mime":
		return true
	default:
		return false
	}
}
