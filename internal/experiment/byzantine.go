package experiment

import (
	"fmt"
	"math"

	"hieradmo/internal/cluster"
	"hieradmo/internal/fl"
	"hieradmo/internal/robust"
	"hieradmo/internal/telemetry"
	"hieradmo/internal/transport"
)

// byzantineColumns sweeps the attacker fraction left to right; the last
// column shows how many reports the robust rule actually excluded under
// the heaviest attack, cross-checked against the telemetry counters.
var byzantineColumns = []string{"clean", "20% flipped", "40% flipped", "rejected@40%"}

// ByzantineTopology is the robustness study's setup: ten workers over two
// edges, so 20% and 40% attacker fractions land as one and two attackers
// per five-worker cohort — an honest per-edge majority in both cases,
// which is the regime robust aggregation can defend.
func ByzantineTopology() []int { return []int{5, 5} }

// ByzantinePlan builds a sign-flip attack plan covering the given fraction
// of the topology's workers for the whole run. Attackers are assigned
// round-robin across edges (worker-0-0, worker-1-0, worker-0-1, ...) so no
// cohort is majority-attacked before the others; a zero fraction returns
// nil (no plan).
func ByzantinePlan(frac float64, edges []int, seed uint64) *robust.AttackPlan {
	total := 0
	for _, c := range edges {
		total += c
	}
	count := int(math.Round(frac * float64(total)))
	if count <= 0 {
		return nil
	}
	var attacks []robust.Attack
	for i := 0; len(attacks) < count; i++ {
		for l := range edges {
			if i < edges[l] && len(attacks) < count {
				attacks = append(attacks, robust.Attack{
					Node: cluster.WorkerID(l, i),
					Kind: robust.SignFlip,
					From: 1,
				})
			}
		}
	}
	return &robust.AttackPlan{Seed: seed, Attacks: attacks}
}

// RunByzantine sweeps sign-flip attacker fraction × aggregation rule: one
// row per aggregator (the undefended mean baseline, then the robust
// rules), one accuracy column per attacker fraction. Every run verifies
// that the attack report's injected/rejected totals match the telemetry
// counters exactly — the report is derived state and must never drift
// from the instruments.
func RunByzantine(s Scale) (*Table, error) {
	cfg, err := BuildConfig(Workload{
		Dataset: "mnist", Model: "logistic",
		Edges:            ByzantineTopology(),
		ClassesPerWorker: 2,
		Tau:              5, Pi: 2,
	}, s)
	if err != nil {
		return nil, fmt.Errorf("byzantine: %w", err)
	}
	fractions := []float64{0, 0.2, 0.4}

	// run executes one cell and returns the final accuracy plus the
	// rejected-report total, after cross-checking report vs counters.
	run := func(spec robust.Spec, plan *robust.AttackPlan) (*fl.Result, int, error) {
		reg := telemetry.NewRegistry()
		sink := telemetry.New(reg, nil)
		net := transport.NewMemoryNetwork()
		defer net.Close()
		res, err := cluster.Run(cfg, net, cluster.Options{
			Adaptive:        true,
			Telemetry:       sink,
			AttackPlan:      plan,
			EdgeAggregator:  spec,
			CloudAggregator: spec,
		})
		if err != nil {
			return nil, 0, err
		}
		var injected, rejected int
		if res.AttackReport != nil {
			injected = res.AttackReport.TotalInjected()
			rejected = res.AttackReport.TotalRejected()
		}
		if got := reg.Counter("fl_attack_injected_total").Value(); got != int64(injected) {
			return nil, 0, fmt.Errorf("injected count drift: report %d vs counter %d", injected, got)
		}
		if got := reg.Counter("fl_robust_rejected_total").Value(); got != int64(rejected) {
			return nil, 0, fmt.Errorf("rejected count drift: report %d vs counter %d", rejected, got)
		}
		return res, rejected, nil
	}

	tbl := &Table{
		Title: fmt.Sprintf("Byzantine — sign-flip attackers vs aggregation rule, logistic on MNIST, N=10 L=2, tau=%d pi=%d",
			cfg.Tau, cfg.Pi),
		Columns: byzantineColumns,
	}
	for _, spec := range []robust.Spec{
		{Kind: robust.Mean},
		{Kind: robust.Median},
		{Kind: robust.Trimmed, Trim: 0.4},
		{Kind: robust.Clip, Clip: 1},
		{Kind: robust.Cosine, CosMin: 0},
	} {
		cells := make([]string, 0, len(byzantineColumns))
		rejectedAtMax := 0
		for _, frac := range fractions {
			res, rejected, err := run(spec, ByzantinePlan(frac, ByzantineTopology(), s.Seed))
			if err != nil {
				return nil, fmt.Errorf("byzantine %s at %.0f%%: %w", spec, 100*frac, err)
			}
			cells = append(cells, Pct(res.FinalAcc))
			rejectedAtMax = rejected
		}
		cells = append(cells, fmt.Sprintf("%d", rejectedAtMax))
		tbl.AddRow(spec.String(), cells...)
	}
	return tbl, nil
}
