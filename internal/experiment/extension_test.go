package experiment

import (
	"strconv"
	"strings"
	"testing"
)

func TestRunAblationParticipationSmall(t *testing.T) {
	tbl, err := RunAblationParticipation(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("%d rows, want 4", len(tbl.Rows))
	}
	if tbl.Rows[0].Label != "participation=1.00" {
		t.Errorf("first row %q", tbl.Rows[0].Label)
	}
}

func TestRunGammaTraceSmall(t *testing.T) {
	tbl, err := RunGammaTrace(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) == 0 {
		t.Fatal("no trace segments")
	}
	for _, r := range tbl.Rows {
		mean, err := strconv.ParseFloat(r.Cells[0], 64)
		if err != nil {
			t.Fatalf("unparseable mean %q", r.Cells[0])
		}
		if mean < 0 || mean > 0.99 {
			t.Errorf("mean γℓ %v outside [0, 0.99]", mean)
		}
	}
}

func TestRunTheoryBoundSmall(t *testing.T) {
	tbl, err := RunTheoryBound(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("%d rows, want 4", len(tbl.Rows))
	}
	// Shape assertion: measured δ must grow as the class restriction
	// tightens — rows are ordered IID, 9-class, 6-class, 3-class.
	parse := func(row Row) float64 {
		v, err := strconv.ParseFloat(row.Cells[0], 64)
		if err != nil {
			t.Fatalf("unparseable δ %q", row.Cells[0])
		}
		return v
	}
	iid := parse(tbl.Rows[0])
	three := parse(tbl.Rows[3])
	if three <= iid {
		t.Errorf("3-class δ %v should exceed IID δ %v", three, iid)
	}
	// j must be finite, positive, and ordered with δ.
	jIID, _ := strconv.ParseFloat(tbl.Rows[0].Cells[2], 64)
	j3, _ := strconv.ParseFloat(tbl.Rows[3].Cells[2], 64)
	if !(j3 > jIID && jIID > 0) {
		t.Errorf("Theorem-4 gaps not ordered: IID %v vs 3-class %v", jIID, j3)
	}
	if !strings.Contains(tbl.Render(), "Theorem 4") {
		t.Error("theory table missing context")
	}
}

func TestTableIIRepeats(t *testing.T) {
	s := tinyScale()
	s.Repeats = 2
	tbl, err := RunTableIISubset(s, []Combo{{Label: "Logistic/MNIST", Dataset: "mnist", Model: "logistic"}})
	if err != nil {
		t.Fatal(err)
	}
	foundPM := false
	for _, r := range tbl.Rows {
		if strings.Contains(r.Cells[0], "±") {
			foundPM = true
		}
	}
	if !foundPM {
		t.Error("repeated Table II cells should report mean ± std")
	}
}

func TestRunDirichletSweepSmall(t *testing.T) {
	tbl, err := RunDirichletSweep(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("%d rows, want 3", len(tbl.Rows))
	}
	if len(tbl.Rows[0].Cells) != 3 {
		t.Fatalf("%d cells, want 3", len(tbl.Rows[0].Cells))
	}
}

func TestRunQuantizationSweepSmall(t *testing.T) {
	tbl, err := RunQuantizationSweep(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("%d rows, want 4", len(tbl.Rows))
	}
	if tbl.Rows[0].Label != "float64 (off)" {
		t.Errorf("first row %q", tbl.Rows[0].Label)
	}
	// Compression column is last.
	last := tbl.Rows[1].Cells[len(tbl.Rows[1].Cells)-1]
	if !strings.HasSuffix(last, "x") {
		t.Errorf("compression cell %q", last)
	}
}

func TestRunAblationArchitectureSmall(t *testing.T) {
	tbl, err := RunAblationArchitecture(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("%d rows, want 2", len(tbl.Rows))
	}
}

func TestBuildConfigDirichlet(t *testing.T) {
	cfg, err := BuildConfig(Workload{
		Dataset: "mnist", Model: "logistic", DirichletAlpha: 0.5,
	}, tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if cfg.NumWorkers() != 4 {
		t.Errorf("workers = %d", cfg.NumWorkers())
	}
	if _, err := BuildConfig(Workload{
		Dataset: "mnist", Model: "logistic",
		DirichletAlpha: 0.5, ClassesPerWorker: 3,
	}, tinyScale()); err == nil {
		t.Error("accepted both partition protocols at once")
	}
}
