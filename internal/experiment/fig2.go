package experiment

import (
	"fmt"

	"hieradmo/internal/core"
	"hieradmo/internal/fl"
)

// curveColumns describes the checkpoint columns used by the sweep tables:
// accuracy at 25/50/75/100% of the iteration budget, mirroring the paper's
// accuracy-vs-iteration curves in tabular form.
var curveColumns = []string{"acc@25%", "acc@50%", "acc@75%", "final"}

func curveCells(res *fl.Result, t int) []string {
	return []string{
		Pct(res.AccuracyAt(t / 4)),
		Pct(res.AccuracyAt(t / 2)),
		Pct(res.AccuracyAt(3 * t / 4)),
		Pct(res.FinalAcc),
	}
}

// fig2Topology is the Fig. 2(a)–(c) setup: 16 workers over 4 edges.
func fig2Topology() []int { return []int{4, 4, 4, 4} }

// RunFig2TauSweep reproduces Fig. 2(a): HierAdMo accuracy for τ ∈ taus with
// π fixed, CNN on MNIST, 16 workers over 4 edges. Larger τ must lower
// accuracy at a fixed T (Theorem 4).
func RunFig2TauSweep(s Scale, taus []int, pi int) (*Table, error) {
	if len(taus) == 0 {
		taus = []int{5, 10, 20, 40}
	}
	if pi == 0 {
		pi = 2
	}
	tbl := &Table{
		Title:   fmt.Sprintf("Fig. 2(a) — effect of tau (pi=%d), HierAdMo, CNN on MNIST, N=16 L=4", pi),
		Columns: curveColumns,
	}
	rows, err := sweepRows(len(taus), func(k int) ([]string, error) {
		tau := taus[k]
		cfg, err := BuildConfig(Workload{
			Dataset: "mnist", Model: "cnn",
			Edges: fig2Topology(), Tau: tau, Pi: pi,
		}, s)
		if err != nil {
			return nil, fmt.Errorf("fig2a tau=%d: %w", tau, err)
		}
		res, err := core.New().Run(cfg)
		if err != nil {
			return nil, fmt.Errorf("fig2a tau=%d: %w", tau, err)
		}
		return curveCells(res, cfg.T), nil
	})
	if err != nil {
		return nil, err
	}
	for k, tau := range taus {
		tbl.AddRow(fmt.Sprintf("tau=%d", tau), rows[k]...)
	}
	return tbl, nil
}

// RunFig2PiSweep reproduces Fig. 2(b): HierAdMo accuracy for π ∈ pis with τ
// fixed. Larger π must lower accuracy at a fixed T (Theorem 4).
func RunFig2PiSweep(s Scale, tau int, pis []int) (*Table, error) {
	if tau == 0 {
		tau = 10
	}
	if len(pis) == 0 {
		pis = []int{1, 2, 4, 8}
	}
	tbl := &Table{
		Title:   fmt.Sprintf("Fig. 2(b) — effect of pi (tau=%d), HierAdMo, CNN on MNIST, N=16 L=4", tau),
		Columns: curveColumns,
	}
	rows, err := sweepRows(len(pis), func(k int) ([]string, error) {
		pi := pis[k]
		cfg, err := BuildConfig(Workload{
			Dataset: "mnist", Model: "cnn",
			Edges: fig2Topology(), Tau: tau, Pi: pi,
		}, s)
		if err != nil {
			return nil, fmt.Errorf("fig2b pi=%d: %w", pi, err)
		}
		res, err := core.New().Run(cfg)
		if err != nil {
			return nil, fmt.Errorf("fig2b pi=%d: %w", pi, err)
		}
		return curveCells(res, cfg.T), nil
	})
	if err != nil {
		return nil, err
	}
	for k, pi := range pis {
		tbl.AddRow(fmt.Sprintf("pi=%d", pi), rows[k]...)
	}
	return tbl, nil
}

// RunFig2JointSweep reproduces Fig. 2(c): fixed τ·π product with varying
// split. Smaller τ (more frequent edge aggregation) should win.
func RunFig2JointSweep(s Scale, product int) (*Table, error) {
	if product == 0 {
		product = 40
	}
	splits := [][2]int{}
	for tau := product; tau >= 1; tau /= 2 {
		if product%tau == 0 {
			splits = append(splits, [2]int{tau, product / tau})
		}
	}
	tbl := &Table{
		Title:   fmt.Sprintf("Fig. 2(c) — fixed tau*pi=%d, varying split, HierAdMo, CNN on MNIST, N=16 L=4", product),
		Columns: curveColumns,
	}
	rows, err := sweepRows(len(splits), func(k int) ([]string, error) {
		sp := splits[k]
		cfg, err := BuildConfig(Workload{
			Dataset: "mnist", Model: "cnn",
			Edges: fig2Topology(), Tau: sp[0], Pi: sp[1],
		}, s)
		if err != nil {
			return nil, fmt.Errorf("fig2c tau=%d pi=%d: %w", sp[0], sp[1], err)
		}
		res, err := core.New().Run(cfg)
		if err != nil {
			return nil, fmt.Errorf("fig2c tau=%d pi=%d: %w", sp[0], sp[1], err)
		}
		return curveCells(res, cfg.T), nil
	})
	if err != nil {
		return nil, err
	}
	for k, sp := range splits {
		tbl.AddRow(fmt.Sprintf("tau=%d pi=%d", sp[0], sp[1]), rows[k]...)
	}
	return tbl, nil
}

// RunFig2LargeN reproduces Fig. 2(d): the full algorithm comparison at
// cross-silo scale, N=100 workers over 10 edges, CNN on MNIST.
func RunFig2LargeN(s Scale) (*Table, error) {
	edges := make([]int, 10)
	for i := range edges {
		edges[i] = 10
	}
	cfg, err := BuildConfig(Workload{Dataset: "mnist", Model: "cnn", Edges: edges}, s)
	if err != nil {
		return nil, fmt.Errorf("fig2d: %w", err)
	}
	algos := AllAlgorithms()
	results, err := runAlgorithms(algos, cfg)
	if err != nil {
		return nil, fmt.Errorf("fig2d: %w", err)
	}
	tbl := &Table{
		Title:   "Fig. 2(d) — accuracy with N=100 workers (10 edges x 10), CNN on MNIST",
		Columns: curveColumns,
	}
	for i, res := range results {
		tbl.AddRow(algos[i].Name(), curveCells(res, cfg.T)...)
	}
	return tbl, nil
}

// RunFig2NonIID reproduces one panel of Fig. 2(e)–(g): the full algorithm
// comparison when every worker holds only classesPerWorker of the 10 MNIST
// classes (3, 6, or 9 in the paper).
func RunFig2NonIID(s Scale, classesPerWorker int) (*Table, error) {
	if classesPerWorker <= 0 {
		return nil, fmt.Errorf("fig2e-g: classesPerWorker %d must be positive", classesPerWorker)
	}
	cfg, err := BuildConfig(Workload{
		Dataset: "mnist", Model: "cnn",
		ClassesPerWorker: classesPerWorker,
	}, s)
	if err != nil {
		return nil, fmt.Errorf("fig2e-g x=%d: %w", classesPerWorker, err)
	}
	algos := AllAlgorithms()
	results, err := runAlgorithms(algos, cfg)
	if err != nil {
		return nil, fmt.Errorf("fig2e-g x=%d: %w", classesPerWorker, err)
	}
	tbl := &Table{
		Title: fmt.Sprintf("Fig. 2(e)-(g) — %d-class non-IID, CNN on MNIST, N=4 L=2",
			classesPerWorker),
		Columns: curveColumns,
	}
	for i, res := range results {
		tbl.AddRow(algos[i].Name(), curveCells(res, cfg.T)...)
	}
	return tbl, nil
}

// RunFig2AdaptiveGamma reproduces one panel of Fig. 2(i)–(k): HierAdMo's
// adaptive γℓ against the exhaustive enumeration of fixed γℓ under
// HierAdMo-R, CNN on CIFAR-10 with the given worker momentum factor γ
// (0.3, 0.6, 0.9 in the paper's three panels).
func RunFig2AdaptiveGamma(s Scale, gamma float64) (*Table, error) {
	if gamma <= 0 || gamma >= 1 {
		return nil, fmt.Errorf("fig2i-k: gamma %v outside (0,1)", gamma)
	}
	tbl := &Table{
		Title:   fmt.Sprintf("Fig. 2(i)-(k) — adaptive vs fixed gammaEdge, CNN on CIFAR-10, gamma=%.1f, tau=20 pi=2", gamma),
		Columns: []string{"final"},
	}
	// The exhaustive fixed-γℓ enumeration plus the adaptive run are ten
	// independent trainings; sweep them concurrently, adaptive last.
	fixed := []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}
	rows, err := sweepRows(len(fixed)+1, func(k int) ([]string, error) {
		w := Workload{
			Dataset: "cifar10", Model: "cnn",
			Tau: 20, Pi: 2, Gamma: gamma,
		}
		label := "adaptive"
		if k < len(fixed) {
			w.GammaEdge = fixed[k]
			label = fmt.Sprintf("gammaEdge=%.1f", fixed[k])
		}
		cfg, err := BuildConfig(w, s)
		if err != nil {
			return nil, fmt.Errorf("fig2i-k %s: %w", label, err)
		}
		var alg fl.Algorithm = core.New()
		if k < len(fixed) {
			alg = core.NewReduced()
		}
		res, err := alg.Run(cfg)
		if err != nil {
			return nil, fmt.Errorf("fig2i-k %s: %w", label, err)
		}
		return []string{Pct(res.FinalAcc)}, nil
	})
	if err != nil {
		return nil, err
	}
	for k, ge := range fixed {
		tbl.AddRow(fmt.Sprintf("fixed %.1f", ge), rows[k]...)
	}
	tbl.AddRow("adaptive", rows[len(fixed)]...)
	return tbl, nil
}
