package experiment

import (
	"fmt"

	"hieradmo/internal/core"
	"hieradmo/internal/fl"
)

// RunAblationAdaptSignal compares the paper's adaptation statistic (the Σy
// inner-product of eq. (6)) against the interval-velocity variant and
// against no adaptation at all, on the non-IID workload where adaptation
// matters most.
func RunAblationAdaptSignal(s Scale) (*Table, error) {
	cfg, err := BuildConfig(Workload{
		Dataset: "mnist", Model: "cnn",
		ClassesPerWorker: 3,
	}, s)
	if err != nil {
		return nil, fmt.Errorf("ablation signal: %w", err)
	}
	variants := []struct {
		label string
		alg   fl.Algorithm
	}{
		{label: "ysum (paper eq. 6)", alg: core.New(core.WithAdaptSignal(core.SignalYSum))},
		{label: "velocity", alg: core.New(core.WithAdaptSignal(core.SignalVelocity))},
		{label: "none (HierAdMo-R)", alg: core.NewReduced()},
	}
	tbl := &Table{
		Title:   "Ablation — gammaEdge adaptation signal, CNN on MNIST, 3-class non-IID",
		Columns: curveColumns,
	}
	for _, v := range variants {
		res, err := v.alg.Run(cfg)
		if err != nil {
			return nil, fmt.Errorf("ablation signal %s: %w", v.label, err)
		}
		tbl.AddRow(v.label, curveCells(res, cfg.T)...)
	}
	return tbl, nil
}

// RunAblationClampCeiling sweeps the γℓ upper clamp of eq. (7). The paper
// fixes 0.99; the sweep shows the sensitivity of that choice.
func RunAblationClampCeiling(s Scale) (*Table, error) {
	cfg, err := BuildConfig(Workload{
		Dataset: "mnist", Model: "cnn",
		ClassesPerWorker: 3,
	}, s)
	if err != nil {
		return nil, fmt.Errorf("ablation clamp: %w", err)
	}
	tbl := &Table{
		Title:   "Ablation — gammaEdge clamp ceiling (eq. 7), CNN on MNIST, 3-class non-IID",
		Columns: curveColumns,
	}
	for _, ceiling := range []float64{0.5, 0.9, 0.99, 0.999} {
		alg := core.New(core.WithClampCeiling(ceiling))
		res, err := alg.Run(cfg)
		if err != nil {
			return nil, fmt.Errorf("ablation clamp %.3f: %w", ceiling, err)
		}
		tbl.AddRow(fmt.Sprintf("ceiling=%.3f", ceiling), curveCells(res, cfg.T)...)
	}
	return tbl, nil
}

// Runner executes one named experiment at a scale.
type Runner func(s Scale) (*Table, error)

// Registry maps experiment IDs (as used by the CLI and DESIGN.md's
// per-experiment index) to their runners.
func Registry() map[string]Runner {
	return map[string]Runner{
		"table2":                 RunTableII,
		"fig2a":                  func(s Scale) (*Table, error) { return RunFig2TauSweep(s, nil, 0) },
		"fig2b":                  func(s Scale) (*Table, error) { return RunFig2PiSweep(s, 0, nil) },
		"fig2c":                  func(s Scale) (*Table, error) { return RunFig2JointSweep(s, 0) },
		"fig2d":                  RunFig2LargeN,
		"fig2e":                  func(s Scale) (*Table, error) { return RunFig2NonIID(s, 3) },
		"fig2f":                  func(s Scale) (*Table, error) { return RunFig2NonIID(s, 6) },
		"fig2g":                  func(s Scale) (*Table, error) { return RunFig2NonIID(s, 9) },
		"fig2h":                  func(s Scale) (*Table, error) { return RunFig2TrainingTime(s, TimingSetting1) },
		"fig2i":                  func(s Scale) (*Table, error) { return RunFig2AdaptiveGamma(s, 0.3) },
		"fig2j":                  func(s Scale) (*Table, error) { return RunFig2AdaptiveGamma(s, 0.6) },
		"fig2k":                  func(s Scale) (*Table, error) { return RunFig2AdaptiveGamma(s, 0.9) },
		"fig2l":                  func(s Scale) (*Table, error) { return RunFig2TrainingTime(s, TimingSetting2) },
		"ablation-signal":        RunAblationAdaptSignal,
		"ablation-clamp":         RunAblationClampCeiling,
		"ablation-participation": RunAblationParticipation,
		"ablation-arch":          RunAblationArchitecture,
		"dirichlet":              RunDirichletSweep,
		"quantization":           RunQuantizationSweep,
		"gamma-trace":            RunGammaTrace,
		"theory":                 RunTheoryBound,
		"churn":                  RunChurn,
		"byzantine":              RunByzantine,
		"depth":                  RunDepth,
	}
}

// ExperimentIDs returns the registry keys in a stable, report-friendly
// order.
func ExperimentIDs() []string {
	return []string{
		"table2",
		"fig2a", "fig2b", "fig2c", "fig2d",
		"fig2e", "fig2f", "fig2g",
		"fig2h", "fig2i", "fig2j", "fig2k", "fig2l",
		"ablation-signal", "ablation-clamp", "ablation-participation",
		"ablation-arch", "dirichlet", "quantization", "gamma-trace", "theory",
		"churn",
		"byzantine",
		"depth",
	}
}
