package experiment

import (
	"fmt"

	"hieradmo/internal/cluster"
	"hieradmo/internal/fl"
	"hieradmo/internal/membership"
	"hieradmo/internal/transport"
)

// churnColumns reports accuracy and communication cost side by side: churn
// changes both the learning trajectory and how much traffic the hierarchy
// moves, so the table keeps them in one row per variant.
var churnColumns = []string{"acc@50%", "final", "messages", "payload-KB"}

// ChurnTopology is the churn study's setup: six workers over two edges,
// large enough that one leave never collapses a cohort.
func ChurnTopology() []int { return []int{3, 3} }

// ChurnPlan draws the study's seeded churn trace over the given topology:
// one late join in the first half of the run and one permanent leave in the
// second, a pure function of (seed, topology, K).
func ChurnPlan(seed uint64, edges []int, k int) (membership.Plan, error) {
	var refs []membership.Ref
	for l, count := range edges {
		for i := 0; i < count; i++ {
			refs = append(refs, membership.Ref{Edge: l, Index: i})
		}
	}
	return membership.Generate(membership.GenSpec{Seed: seed, Joins: 1, Leaves: 1}, refs, k)
}

// RunChurn compares the static hierarchy against the same run under a
// seeded churn trace (join + leave) with cloud re-tiering every other sync,
// one row per γℓ migration policy. Accuracy shows what churn costs the
// model; the traffic columns what the membership protocol costs the wire.
func RunChurn(s Scale) (*Table, error) {
	cfg, err := BuildConfig(Workload{
		Dataset: "mnist", Model: "logistic",
		Edges:            ChurnTopology(),
		ClassesPerWorker: 2,
		Tau:              5, Pi: 2,
	}, s)
	if err != nil {
		return nil, fmt.Errorf("churn: %w", err)
	}
	plan, err := ChurnPlan(s.Seed, ChurnTopology(), cfg.T/cfg.Tau)
	if err != nil {
		return nil, fmt.Errorf("churn: %w", err)
	}

	run := func(opts cluster.Options) (*fl.Result, int64, int64, error) {
		net := transport.NewCountingNetwork(transport.NewMemoryNetwork())
		defer net.Close()
		res, err := cluster.Run(cfg, net, opts)
		if err != nil {
			return nil, 0, 0, err
		}
		msgs, bytes := net.Traffic()
		return res, msgs, bytes, nil
	}
	cells := func(res *fl.Result, msgs, bytes int64) []string {
		return []string{
			Pct(res.AccuracyAt(cfg.T / 2)),
			Pct(res.FinalAcc),
			fmt.Sprintf("%d", msgs),
			fmt.Sprintf("%.1f", float64(bytes)/1024),
		}
	}

	tbl := &Table{
		Title: fmt.Sprintf("Churn — static vs seeded trace %q with re-tiering every 2 syncs, logistic on MNIST, N=6 L=2",
			plan.Signature()),
		Columns: churnColumns,
	}
	res, msgs, bytes, err := run(cluster.Options{Adaptive: true})
	if err != nil {
		return nil, fmt.Errorf("churn static: %w", err)
	}
	tbl.AddRow("static", cells(res, msgs, bytes)...)

	for _, pol := range []membership.MigrationPolicy{
		membership.MigrateZero, membership.MigrateCarry, membership.MigrateRescale,
	} {
		p := plan.Clone()
		res, msgs, bytes, err := run(cluster.Options{
			Adaptive:    true,
			ChurnPlan:   &p,
			RetierEvery: 2,
			Migration:   pol,
		})
		if err != nil {
			return nil, fmt.Errorf("churn %s: %w", pol, err)
		}
		tbl.AddRow("churn/"+pol.String(), cells(res, msgs, bytes)...)
	}
	return tbl, nil
}
