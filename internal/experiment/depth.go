package experiment

import (
	"fmt"

	"hieradmo/internal/cluster"
	"hieradmo/internal/netsim"
	"hieradmo/internal/topology"
	"hieradmo/internal/transport"
)

// DepthTopologies returns the tree specs of the depth study: 2-, 3-, and
// 4-level trees over the same eight training leaves with the same 20
// iterations of local work between root syncs, so the only thing that
// varies is how many aggregation tiers sit between a leaf and the root —
// and therefore how often the expensive WAN uplink is paid.
func DepthTopologies() []string {
	return []string{
		"cloud:tau=20/worker*8",
		"cloud:tau=20/edge*2:tau=10/worker*4",
		"cloud:tau=20/region*2:tau=10/edge*2:tau=5/worker*2",
	}
}

// RunDepth compares tree depths under the WAN cost model: each topology
// trains the same logistic-on-MNIST workload through the N-tier cluster
// runtime (bit-identical across depths in inputs, differing only in
// aggregation structure), then replays its accuracy curve onto a
// trace-driven timeline from the paper-testbed tree environment. Deeper
// trees sync leaves cheaply and often and pay the WAN rarely; the flat tree
// pays it every sync.
func RunDepth(s Scale) (*Table, error) {
	cfg, err := BuildConfig(Workload{
		Dataset: "mnist", Model: "logistic",
		Edges: []int{4, 4},
		Tau:   10, Pi: 2,
	}, s)
	if err != nil {
		return nil, fmt.Errorf("depth: %w", err)
	}
	payload := netsim.ModelPayload(cfg.Model.Dim(), true)
	tbl := &Table{
		Title: fmt.Sprintf("Depth — aggregation-tree depth vs simulated time to %.2f accuracy, logistic on MNIST, N=8",
			s.TargetAcc),
		Columns: []string{"topology", "final acc", "time-to-target", "sim total"},
		Notes: []string{
			"same leaves, same local work per root sync; only the tier structure varies",
			"delays sampled from the paper-testbed tree environment (netsim.SimulateTree)",
		},
	}
	for _, spec := range DepthTopologies() {
		topo, err := topology.Parse(spec)
		if err != nil {
			return nil, fmt.Errorf("depth %q: %w", spec, err)
		}
		net := transport.NewMemoryNetwork()
		res, err := cluster.Run(cfg, net, cluster.Options{Adaptive: true, Topology: topo})
		if err != nil {
			return nil, fmt.Errorf("depth %q: %w", spec, err)
		}
		tl, err := netsim.SimulateTree(netsim.PaperTreeTestbed(topo, s.Seed+99), payload, cfg.T)
		if err != nil {
			return nil, fmt.Errorf("depth %q: %w", spec, err)
		}
		curve := make([]netsim.CurvePoint, len(res.Curve))
		for j, p := range res.Curve {
			curve[j] = netsim.CurvePoint{Iter: p.Iter, Acc: p.TestAcc}
		}
		cell := "not reached"
		if d, ok := netsim.TimeToAccuracy(tl, curve, s.TargetAcc); ok {
			cell = Dur(d)
		}
		tbl.AddRow(fmt.Sprintf("depth-%d", topo.Depth()),
			topo.String(), Pct(res.FinalAcc), cell, Dur(tl.Total()))
	}
	return tbl, nil
}
