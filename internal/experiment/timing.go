package experiment

import (
	"fmt"

	"hieradmo/internal/netsim"
)

// TimingSetting selects the Fig. 2(h) or Fig. 2(l) hyper-parameters.
type TimingSetting int

const (
	// TimingSetting1 is Fig. 2(h): τ=20 (two-tier) or τ=10, π=2 (three-tier).
	TimingSetting1 TimingSetting = iota + 1
	// TimingSetting2 is Fig. 2(l): τ=40 (two-tier) or τ=20, π=2 (three-tier).
	TimingSetting2
)

// RunFig2TrainingTime reproduces Fig. 2(h)/(l): total simulated training
// time for every algorithm to reach the target accuracy when CNN is trained
// on MNIST over the paper's testbed (4 workers, 2 edges; trace-driven device
// and link delays from internal/netsim).
func RunFig2TrainingTime(s Scale, setting TimingSetting) (*Table, error) {
	var tau int
	switch setting {
	case TimingSetting1:
		tau = 10
	case TimingSetting2:
		tau = 20
	default:
		return nil, fmt.Errorf("fig2h/l: unknown setting %d", setting)
	}
	const pi = 2

	cfg, err := BuildConfig(Workload{
		Dataset: "mnist", Model: "cnn",
		Tau: tau, Pi: pi,
	}, s)
	if err != nil {
		return nil, fmt.Errorf("fig2h/l: %w", err)
	}
	algos := AllAlgorithms()
	results, err := runAlgorithms(algos, cfg)
	if err != nil {
		return nil, fmt.Errorf("fig2h/l: %w", err)
	}

	env := netsim.PaperTestbed([]int{2, 2}, s.Seed+99)
	// The training substrate uses a laptop-scale CNN, but the timing study
	// models shipping the paper's CNN (~6×10⁵ float64 parameters) over the
	// wire — the over-the-network cost is part of the testbed being
	// reproduced, not of the scaled-down learner (DESIGN.md §1).
	const paperCNNDim = 600_000
	dim := cfg.Model.Dim()
	if dim < paperCNNDim {
		dim = paperCNNDim
	}
	tbl := &Table{
		Title: fmt.Sprintf("Fig. 2(%s) — simulated training time to %.2f accuracy, CNN on MNIST, testbed trace",
			map[TimingSetting]string{TimingSetting1: "h", TimingSetting2: "l"}[setting], s.TargetAcc),
		Columns: []string{"tier", "time-to-target", "final acc", "sim total"},
		Notes: []string{
			fmt.Sprintf("three-tier: tau=%d pi=%d; two-tier: tau=%d", tau, pi, tau*pi),
			"delays sampled from the paper-testbed device/link profiles (netsim)",
		},
	}
	for i, res := range results {
		name := algos[i].Name()
		payload := netsim.ModelPayload(dim, MomentumTraffic(name))
		var (
			tl   netsim.Timeline
			tier string
		)
		if ThreeTier(name) {
			tier = "3-tier"
			tl, err = netsim.SimulateThreeTier(env, payload, cfg.T, tau, pi)
		} else {
			tier = "2-tier"
			tl, err = netsim.SimulateTwoTier(env, payload, cfg.T, tau*pi)
		}
		if err != nil {
			return nil, fmt.Errorf("fig2h/l %s: %w", name, err)
		}
		curve := make([]netsim.CurvePoint, len(res.Curve))
		for j, p := range res.Curve {
			curve[j] = netsim.CurvePoint{Iter: p.Iter, Acc: p.TestAcc}
		}
		cell := "not reached"
		if d, ok := netsim.TimeToAccuracy(tl, curve, s.TargetAcc); ok {
			cell = Dur(d)
		}
		tbl.AddRow(name, tier, cell, Pct(res.FinalAcc), Dur(tl.Total()))
	}
	return tbl, nil
}

// SpeedupOverBest returns how much faster (×) the first result reaching the
// target is than each other result, using the provided timelines — the
// paper's headline "1.30x–4.36x" metric. Exposed for tests and reports.
func SpeedupOverBest(times []float64) []float64 {
	best := 0.0
	for _, t := range times {
		if t > 0 && (best == 0 || t < best) {
			best = t
		}
	}
	out := make([]float64, len(times))
	for i, t := range times {
		if best > 0 && t > 0 {
			out[i] = t / best
		}
	}
	return out
}
