package experiment

import (
	"fmt"

	"hieradmo/internal/baseline"
	"hieradmo/internal/core"
	"hieradmo/internal/fl"
	"hieradmo/internal/metrics"
	"hieradmo/internal/quant"
	"hieradmo/internal/rng"
	"hieradmo/internal/theory"
)

// baselineHierFAVG keeps the Dirichlet sweep's algorithm list compact.
func baselineHierFAVG() fl.Algorithm { return baseline.NewHierFAVG() }

// RunAblationParticipation extends the paper to the cross-device regime it
// leaves as future work: HierAdMo with only a sampled fraction of each
// edge's workers joining every edge aggregation, on the non-IID workload.
func RunAblationParticipation(s Scale) (*Table, error) {
	cfg, err := BuildConfig(Workload{
		Dataset: "mnist", Model: "cnn",
		Edges:            []int{4, 4},
		ClassesPerWorker: 3,
	}, s)
	if err != nil {
		return nil, fmt.Errorf("ablation participation: %w", err)
	}
	tbl := &Table{
		Title:   "Extension — partial worker participation, HierAdMo, CNN on MNIST, 3-class non-IID, N=8 L=2",
		Columns: curveColumns,
		Notes:   []string{"participation < 1 samples that fraction of each edge's workers per aggregation"},
	}
	for _, frac := range []float64{1.0, 0.75, 0.5, 0.25} {
		alg := core.New(core.WithParticipation(frac))
		res, err := alg.Run(cfg)
		if err != nil {
			return nil, fmt.Errorf("ablation participation %.2f: %w", frac, err)
		}
		tbl.AddRow(fmt.Sprintf("participation=%.2f", frac), curveCells(res, cfg.T)...)
	}
	return tbl, nil
}

// RunAblationArchitecture compares the paper's classic flatten-dense CNN
// head against a global-average-pool head under HierAdMo, on the non-IID
// workload — a design-space probe the paper's fixed architecture leaves
// unexplored.
func RunAblationArchitecture(s Scale) (*Table, error) {
	tbl := &Table{
		Title:   "Extension — CNN classifier head (flatten-dense vs global-average-pool), HierAdMo, CNN on MNIST, 3-class non-IID",
		Columns: curveColumns,
	}
	for _, m := range []string{"cnn", "cnn-gap"} {
		cfg, err := BuildConfig(Workload{
			Dataset: "mnist", Model: m,
			ClassesPerWorker: 3,
		}, s)
		if err != nil {
			return nil, fmt.Errorf("ablation architecture %s: %w", m, err)
		}
		res, err := core.New().Run(cfg)
		if err != nil {
			return nil, fmt.Errorf("ablation architecture %s: %w", m, err)
		}
		tbl.AddRow(m, curveCells(res, cfg.T)...)
	}
	return tbl, nil
}

// RunDirichletSweep extends the paper's x-class heterogeneity study with
// the Dirichlet(α) protocol common in the wider FL literature: HierAdMo vs
// hierarchical FedAvg as α shrinks from near-IID (α=10) to highly skewed
// (α=0.1).
func RunDirichletSweep(s Scale) (*Table, error) {
	tbl := &Table{
		Title:   "Extension — Dirichlet(α) heterogeneity sweep, CNN on MNIST, N=4 L=2",
		Columns: []string{"HierAdMo", "HierAdMo-R", "HierFAVG"},
		Notes:   []string{"smaller α = more skewed per-worker class distributions"},
	}
	algos := []fl.Algorithm{core.New(), core.NewReduced(), baselineHierFAVG()}
	for _, alpha := range []float64{10, 1, 0.1} {
		cfg, err := BuildConfig(Workload{
			Dataset: "mnist", Model: "cnn",
			DirichletAlpha: alpha,
		}, s)
		if err != nil {
			return nil, fmt.Errorf("dirichlet alpha=%v: %w", alpha, err)
		}
		cells := make([]string, len(algos))
		for i, alg := range algos {
			res, err := alg.Run(cfg)
			if err != nil {
				return nil, fmt.Errorf("dirichlet alpha=%v %s: %w", alpha, alg.Name(), err)
			}
			cells[i] = Pct(res.FinalAcc)
		}
		tbl.AddRow(fmt.Sprintf("alpha=%g", alpha), cells...)
	}
	return tbl, nil
}

// RunQuantizationSweep measures HierAdMo's tolerance to lossy uplink
// compression (QSGD-style stochastic quantization of the worker→edge
// payload): accuracy vs bit width, with the per-upload compression ratio.
func RunQuantizationSweep(s Scale) (*Table, error) {
	cfg, err := BuildConfig(Workload{
		Dataset: "mnist", Model: "cnn",
		ClassesPerWorker: 3,
	}, s)
	if err != nil {
		return nil, fmt.Errorf("quantization: %w", err)
	}
	tbl := &Table{
		Title:   "Extension — uplink quantization tolerance, HierAdMo, CNN on MNIST, 3-class non-IID",
		Columns: append(append([]string{}, curveColumns...), "compression"),
		Notes:   []string{"QSGD-style unbiased stochastic quantization of every worker→edge vector"},
	}
	for _, bits := range []int{0, 8, 4, 2} {
		var opts []core.Option
		label := "float64 (off)"
		compression := "1.0x"
		if bits > 0 {
			opts = append(opts, core.WithUplinkQuantization(bits))
			label = fmt.Sprintf("%d-bit", bits)
			q, qerr := quant.New(bits, 1)
			if qerr != nil {
				return nil, qerr
			}
			compression = fmt.Sprintf("%.1fx", q.CompressionRatio(cfg.Model.Dim()))
		}
		res, err := core.New(opts...).Run(cfg)
		if err != nil {
			return nil, fmt.Errorf("quantization %s: %w", label, err)
		}
		tbl.AddRow(label, append(curveCells(res, cfg.T), compression)...)
	}
	return tbl, nil
}

// RunGammaTrace records how HierAdMo's adapted γℓ evolves over the course
// of training on the non-IID workload — the diagnostic behind Fig. 2(i)-(k):
// the adapted factor settles wherever the worker/edge momenta agree.
func RunGammaTrace(s Scale) (*Table, error) {
	cfg, err := BuildConfig(Workload{
		Dataset: "mnist", Model: "cnn",
		ClassesPerWorker: 3,
	}, s)
	if err != nil {
		return nil, fmt.Errorf("gamma trace: %w", err)
	}
	var trace []float64
	alg := core.New(core.WithGammaObserver(func(edge int, gamma float64) {
		trace = append(trace, gamma)
	}))
	if _, err := alg.Run(cfg); err != nil {
		return nil, fmt.Errorf("gamma trace: %w", err)
	}
	if len(trace) == 0 {
		return nil, fmt.Errorf("gamma trace: no adaptations recorded")
	}
	tbl := &Table{
		Title:   "Diagnostic — adapted gammaEdge over training, HierAdMo, CNN on MNIST, 3-class non-IID",
		Columns: []string{"mean γℓ", "min", "max"},
	}
	const segments = 5
	per := (len(trace) + segments - 1) / segments
	for seg := 0; seg < segments; seg++ {
		lo := seg * per
		hi := lo + per
		if lo >= len(trace) {
			break
		}
		if hi > len(trace) {
			hi = len(trace)
		}
		sum, err := metrics.Summarize(trace[lo:hi])
		if err != nil {
			return nil, err
		}
		tbl.AddRow(fmt.Sprintf("rounds %d-%d", lo+1, hi),
			fmt.Sprintf("%.3f", sum.Mean),
			fmt.Sprintf("%.3f", sum.Min),
			fmt.Sprintf("%.3f", sum.Max))
	}
	return tbl, nil
}

// RunTheoryBound connects the empirical heterogeneity of the x-class
// partitionings (Assumption 3's δ, measured at the shared initialization)
// to the Theorem 4 gap term j(τ, π, δℓ, δ): more non-IID data measures a
// larger δ and therefore a larger theoretical convergence gap — the
// mechanism behind Fig. 2(e)-(g).
func RunTheoryBound(s Scale) (*Table, error) {
	// Nominal analysis constants in Theorem 4's valid regime; δ comes from
	// measurement. γℓ uses Theorem 5's adaptive expectation E(γℓ) = 1/4.
	p := theory.Params{
		Eta:       fl.DefaultEta,
		Gamma:     0.5,
		GammaEdge: theory.ExpectedGammaAdaptive(),
		Beta:      10,
		Rho:       1,
	}
	c, err := theory.Derive(p)
	if err != nil {
		return nil, fmt.Errorf("theory bound: %w", err)
	}
	tbl := &Table{
		Title:   "Theory — measured gradient divergence δ vs Theorem 4 gap j(τ,π,δℓ,δ), logistic on MNIST",
		Columns: []string{"δ (global)", "δℓ (mean)", "j(τ,π)"},
		Notes: []string{
			"δ measured at the shared initialization (Assumption 3 proxy); β, ρ nominal",
			"larger x-class restriction ⇒ larger δ ⇒ larger theoretical gap (Theorem 4)",
		},
	}
	cases := []struct {
		label   string
		classes int
	}{
		{label: "IID", classes: 0},
		{label: "9-class", classes: 9},
		{label: "6-class", classes: 6},
		{label: "3-class", classes: 3},
	}
	for _, tc := range cases {
		cfg, err := BuildConfig(Workload{
			Dataset: "mnist", Model: "logistic",
			ClassesPerWorker: tc.classes,
		}, s)
		if err != nil {
			return nil, fmt.Errorf("theory bound %s: %w", tc.label, err)
		}
		params := cfg.Model.Init(rng.New(s.Seed))
		div, err := theory.EstimateDivergence(cfg, params)
		if err != nil {
			return nil, fmt.Errorf("theory bound %s: %w", tc.label, err)
		}
		edgeWeights, err := theory.EdgeWeightsOf(cfg)
		if err != nil {
			return nil, fmt.Errorf("theory bound %s: %w", tc.label, err)
		}
		j, err := theory.J4(p, c, cfg.Tau, cfg.Pi, edgeWeights, div.PerEdge, div.Global, 0.1)
		if err != nil {
			return nil, fmt.Errorf("theory bound %s: %w", tc.label, err)
		}
		var meanEdge float64
		for i, d := range div.PerEdge {
			meanEdge += edgeWeights[i] * d
		}
		tbl.AddRow(tc.label,
			fmt.Sprintf("%.4f", div.Global),
			fmt.Sprintf("%.4f", meanEdge),
			fmt.Sprintf("%.4f", j))
	}
	return tbl, nil
}
