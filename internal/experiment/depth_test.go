package experiment

import "testing"

// TestRunDepth runs the depth study at tiny scale: one row per tree depth,
// every cell filled, and the cluster runs behind it deterministic — a rerun
// reproduces the table exactly.
func TestRunDepth(t *testing.T) {
	tbl, err := RunDepth(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != len(DepthTopologies()) {
		t.Fatalf("depth table has %d rows, want %d", len(tbl.Rows), len(DepthTopologies()))
	}
	for _, row := range tbl.Rows {
		if len(row.Cells) != len(tbl.Columns) {
			t.Fatalf("row %s has %d cells for %d columns", row.Label, len(row.Cells), len(tbl.Columns))
		}
		for i, c := range row.Cells {
			if c == "" {
				t.Errorf("row %s cell %d empty", row.Label, i)
			}
		}
	}
	again, err := RunDepth(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	for i := range tbl.Rows {
		for j := range tbl.Rows[i].Cells {
			if tbl.Rows[i].Cells[j] != again.Rows[i].Cells[j] {
				t.Errorf("row %d cell %d: %q != %q across reruns",
					i, j, tbl.Rows[i].Cells[j], again.Rows[i].Cells[j])
			}
		}
	}
}
