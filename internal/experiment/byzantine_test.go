package experiment

import (
	"strconv"
	"testing"
)

func TestByzantinePlan(t *testing.T) {
	if p := ByzantinePlan(0, ByzantineTopology(), 1); p != nil {
		t.Fatalf("zero fraction produced plan %v", p.Attacks)
	}
	p := ByzantinePlan(0.4, ByzantineTopology(), 1)
	if p == nil || len(p.Attacks) != 4 {
		t.Fatalf("40%% of 10 workers should yield 4 attackers, got %+v", p)
	}
	// Round-robin across edges: two attackers per five-worker cohort, so
	// every cohort keeps an honest majority.
	perEdge := map[string]int{}
	for _, a := range p.Attacks {
		if a.Kind != "signflip" || a.From != 1 || a.To != 0 {
			t.Fatalf("attack %+v is not a whole-run sign flip", a)
		}
		perEdge[a.Node[:len("worker-0")]]++
	}
	for edge, n := range perEdge {
		if n != 2 {
			t.Fatalf("edge %s carries %d attackers, want 2", edge, n)
		}
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRunByzantine(t *testing.T) {
	tbl, err := RunByzantine(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 5 {
		t.Fatalf("byzantine table rows = %d, want mean + 4 robust rules", len(tbl.Rows))
	}
	if tbl.Rows[0].Label != "mean" || tbl.Rows[1].Label != "median" {
		t.Fatalf("unexpected row order: %q, %q", tbl.Rows[0].Label, tbl.Rows[1].Label)
	}

	acc := func(row, col int) float64 {
		v, err := strconv.ParseFloat(tbl.Rows[row].Cells[col], 64)
		if err != nil {
			t.Fatalf("row %d cell %d %q: %v", row, col, tbl.Rows[row].Cells[col], err)
		}
		return v
	}
	// At 40% sign-flip attackers the undefended mean must lose materially
	// to the median — that gap is the experiment's whole point.
	meanAt40, medianAt40 := acc(0, 2), acc(1, 2)
	if medianAt40 <= meanAt40 {
		t.Errorf("median at 40%% attackers (%.2f) does not beat mean (%.2f)", medianAt40, meanAt40)
	}
	// The median-referenced cosine filter drops the flipped reports
	// outright, so it must beat the undefended mean at both fractions.
	for col := 1; col <= 2; col++ {
		if cosine, mean := acc(4, col), acc(0, col); cosine <= mean {
			t.Errorf("cosine in column %d (%.2f) does not beat mean (%.2f)", col, cosine, mean)
		}
	}
	// The mean row never rejects. The median defends by rank, not by
	// exclusion, so its rejected count stays 0 on finite attacks; the
	// cosine filter is the rule that must actually reject the sign-flipped
	// reports — they point away from the honest mean by construction.
	if got := tbl.Rows[0].Cells[3]; got != "0" {
		t.Errorf("mean row rejected %s reports, want 0", got)
	}
	if got := tbl.Rows[4].Cells[3]; got == "0" {
		t.Errorf("cosine row rejected nothing at 40%% sign-flip attackers")
	}

	// Same scale, same plan: the experiment itself must be deterministic.
	again, err := RunByzantine(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	for i := range tbl.Rows {
		for j := range tbl.Rows[i].Cells {
			if got, want := again.Rows[i].Cells[j], tbl.Rows[i].Cells[j]; got != want {
				t.Errorf("row %d cell %d: %q != %q across reruns", i, j, got, want)
			}
		}
	}
}
