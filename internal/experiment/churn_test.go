package experiment

import "testing"

func TestRunChurn(t *testing.T) {
	tbl, err := RunChurn(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("churn table rows = %d, want static + 3 migration policies", len(tbl.Rows))
	}
	if tbl.Rows[0].Label != "static" {
		t.Fatalf("first row %q, want static", tbl.Rows[0].Label)
	}
	// The churn variants move membership traffic the static run does not:
	// identical message counts would mean the plan was silently ignored.
	static, zero := tbl.Rows[0].Cells, tbl.Rows[1].Cells
	if static[2] == zero[2] && static[3] == zero[3] {
		t.Errorf("static row %v and churn row %v report identical traffic", static, zero)
	}

	// Same scale, same trace: the experiment itself must be deterministic.
	again, err := RunChurn(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	for i := range tbl.Rows {
		if got, want := again.Rows[i].Cells, tbl.Rows[i].Cells; len(got) != len(want) {
			t.Fatalf("row %d width changed across reruns", i)
		} else {
			for j := range want {
				if got[j] != want[j] {
					t.Errorf("row %d cell %d: %q != %q across reruns", i, j, got[j], want[j])
				}
			}
		}
	}
}
