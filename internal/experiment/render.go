package experiment

import (
	"fmt"
	"strings"
	"time"
)

// Table is the uniform result container for every experiment: one labelled
// row per configuration (usually per algorithm) and one column per reported
// quantity.
type Table struct {
	// Title names the experiment and echoes its parameters.
	Title string
	// Columns are the value-column headers (the label column is implicit).
	Columns []string
	// Rows hold the results in presentation order.
	Rows []Row
	// Notes are appended under the table (substitution caveats, scale info).
	Notes []string
}

// Row is one labelled table line.
type Row struct {
	Label string
	Cells []string
}

// AddRow appends a row.
func (t *Table) AddRow(label string, cells ...string) {
	t.Rows = append(t.Rows, Row{Label: label, Cells: cells})
}

// Render produces an aligned plain-text rendering.
func (t *Table) Render() string {
	var b strings.Builder
	b.WriteString(t.Title)
	b.WriteByte('\n')

	widths := make([]int, len(t.Columns)+1)
	for _, r := range t.Rows {
		if len(r.Label) > widths[0] {
			widths[0] = len(r.Label)
		}
	}
	for c, h := range t.Columns {
		widths[c+1] = len(h)
		for _, r := range t.Rows {
			if c < len(r.Cells) && len(r.Cells[c]) > widths[c+1] {
				widths[c+1] = len(r.Cells[c])
			}
		}
	}

	line := func(cells []string) {
		for c, cell := range cells {
			if c == 0 {
				fmt.Fprintf(&b, "  %-*s", widths[0], cell)
			} else {
				fmt.Fprintf(&b, "  %*s", widths[c], cell)
			}
		}
		b.WriteByte('\n')
	}
	header := append([]string{""}, t.Columns...)
	line(header)
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(append([]string{r.Label}, r.Cells...))
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "  note: %s\n", n)
	}
	return b.String()
}

// RenderCSV produces a machine-readable CSV rendering (label column first,
// then the value columns; notes are omitted).
func (t *Table) RenderCSV() string {
	var b strings.Builder
	escape := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	b.WriteString("label")
	for _, c := range t.Columns {
		b.WriteByte(',')
		b.WriteString(escape(c))
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		b.WriteString(escape(r.Label))
		for _, cell := range r.Cells {
			b.WriteByte(',')
			b.WriteString(escape(cell))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Pct formats a [0,1] accuracy as a percentage cell.
func Pct(v float64) string { return fmt.Sprintf("%.2f", 100*v) }

// Dur formats a duration cell with sub-second precision trimmed.
func Dur(d time.Duration) string { return d.Round(10 * time.Millisecond).String() }
