package experiment

import (
	"fmt"

	"hieradmo/internal/fl"
	"hieradmo/internal/metrics"
	"hieradmo/internal/parallel"
)

// Combo is one model×dataset column of Table II.
type Combo struct {
	// Label matches the paper's column header.
	Label string
	// Dataset and Model select the workload.
	Dataset, Model string
}

// TableIICombos returns the paper's seven Table II columns in order.
func TableIICombos() []Combo {
	return []Combo{
		{Label: "Linear/MNIST", Dataset: "mnist", Model: "linear"},
		{Label: "Logistic/MNIST", Dataset: "mnist", Model: "logistic"},
		{Label: "CNN/MNIST", Dataset: "mnist", Model: "cnn"},
		{Label: "CNN/CIFAR10", Dataset: "cifar10", Model: "cnn"},
		{Label: "VGG/CIFAR10", Dataset: "cifar10", Model: "vgg-mini"},
		{Label: "ResNet/ImageNet", Dataset: "imagenet", Model: "resnet-mini"},
		{Label: "CNN/UCI-HAR", Dataset: "har", Model: "cnn"},
	}
}

// RunTableII reproduces Table II: final accuracy (%) of all 11 algorithms
// over the seven model×dataset combinations, with the paper's N=4, L=2
// topology, γ = γℓ = 0.5, and τ=10,π=2 (convex) or τ=20,π=2 (non-convex).
// Two-tier algorithms aggregate every τ·π iterations for fairness.
func RunTableII(s Scale) (*Table, error) {
	return RunTableIISubset(s, TableIICombos())
}

// RunTableIISubset reproduces Table II restricted to the given combos (used
// by the per-combo benchmarks).
func RunTableIISubset(s Scale, combos []Combo) (*Table, error) {
	algos := AllAlgorithms()
	tbl := &Table{
		Title:   "Table II — accuracy (%) of FL algorithms after T local iterations",
		Columns: make([]string, len(combos)),
		Notes: []string{
			"synthetic stand-in datasets and laptop-scale models; compare ordering, not absolute values (DESIGN.md §1)",
			fmt.Sprintf("scale: %d train / %d test samples, T=%d (convex) / %d (non-convex)",
				s.TrainSamples, s.TestSamples, s.TConvex, s.TNonConvex),
		},
	}
	cells := make([][]string, len(algos))
	for i := range cells {
		cells[i] = make([]string, len(combos))
	}
	repeats := s.Repeats
	if repeats < 1 {
		repeats = 1
	}
	for c, combo := range combos {
		tbl.Columns[c] = combo.Label
		accs := make([][]float64, len(algos))
		for rep := 0; rep < repeats; rep++ {
			rs := s
			rs.Seed = s.Seed + uint64(rep)*1000
			cfg, err := BuildConfig(Workload{Dataset: combo.Dataset, Model: combo.Model}, rs)
			if err != nil {
				return nil, fmt.Errorf("table2 %s: %w", combo.Label, err)
			}
			results, err := runAlgorithms(algos, cfg)
			if err != nil {
				return nil, fmt.Errorf("table2 %s: %w", combo.Label, err)
			}
			for a, res := range results {
				accs[a] = append(accs[a], 100*res.FinalAcc)
			}
		}
		for a := range algos {
			sum, err := metrics.Summarize(accs[a])
			if err != nil {
				return nil, fmt.Errorf("table2 %s: %w", combo.Label, err)
			}
			cells[a][c] = sum.String()
		}
	}
	for a, alg := range algos {
		tbl.AddRow(alg.Name(), cells[a]...)
	}
	return tbl, nil
}

// runAlgorithms executes every algorithm on cfg concurrently and returns
// results in algorithm order. Runs are independent — each builds its own
// harness from the shared read-only config — so the fan-out changes
// wall-clock only, never results.
func runAlgorithms(algos []fl.Algorithm, cfg *fl.Config) ([]*fl.Result, error) {
	out := make([]*fl.Result, len(algos))
	err := parallel.ForEach(len(algos), func(i int) error {
		res, err := algos[i].Run(cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", algos[i].Name(), err)
		}
		out[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// sweepRows fills one table row per item concurrently: run(k) produces the
// cells for item k, and rows are returned in item order so the rendered
// table is identical to a sequential sweep.
func sweepRows(n int, run func(k int) ([]string, error)) ([][]string, error) {
	rows := make([][]string, n)
	err := parallel.ForEach(n, func(k int) error {
		cells, err := run(k)
		if err != nil {
			return err
		}
		rows[k] = cells
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}
