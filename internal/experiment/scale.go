// Package experiment regenerates every table and figure of the paper's
// evaluation section (§V): Table II's 11-algorithm comparison over seven
// model×dataset combinations, the τ/π hyper-parameter sweeps (Fig. 2a–c),
// the 100-worker run (Fig. 2d), the non-IID level study (Fig. 2e–g), the
// trace-driven training-time comparison (Fig. 2h/l), and the adaptive-γℓ
// versus exhaustive-fixed-γℓ study (Fig. 2i–k), plus two ablations of the
// adaptation design.
//
// All experiments are parameterized by a Scale so the full suite runs in
// minutes on a laptop (BenchScale) or at paper-like iteration counts
// (PaperScale) from the CLI.
package experiment

import "fmt"

// Scale sets the cost/fidelity trade-off of an experiment run.
type Scale struct {
	// TrainSamples/TestSamples size the synthetic datasets.
	TrainSamples, TestSamples int
	// TConvex and TNonConvex are total local-iteration budgets for convex
	// (linear/logistic) and non-convex (CNN/VGG/ResNet) models.
	TConvex, TNonConvex int
	// BatchSize is the worker mini-batch size.
	BatchSize int
	// EvalEvery is the curve-recording period (0 derives T/10).
	EvalEvery int
	// EvalSamples caps per-point evaluation cost (0 = full test set).
	EvalSamples int
	// TargetAcc is the time-to-accuracy target for the Fig. 2h/l study.
	TargetAcc float64
	// Repeats runs each Table II cell with that many different seeds and
	// reports "mean ± std" like the paper (0 or 1 = single run).
	Repeats int
	// Workers bounds the goroutine pool of every run's parallel
	// local-training phase (0 = runtime.GOMAXPROCS(0), 1 = sequential).
	// Results are bit-identical at every setting; only wall-clock changes.
	Workers int
	// Seed drives all randomness.
	Seed uint64
}

// Validate checks the scale for structural errors.
func (s Scale) Validate() error {
	switch {
	case s.TrainSamples <= 0 || s.TestSamples <= 0:
		return fmt.Errorf("experiment: non-positive dataset sizes %d/%d", s.TrainSamples, s.TestSamples)
	case s.TConvex <= 0 || s.TNonConvex <= 0:
		return fmt.Errorf("experiment: non-positive iteration budgets %d/%d", s.TConvex, s.TNonConvex)
	case s.BatchSize <= 0:
		return fmt.Errorf("experiment: non-positive batch size %d", s.BatchSize)
	case s.TargetAcc <= 0 || s.TargetAcc >= 1:
		return fmt.Errorf("experiment: target accuracy %v outside (0,1)", s.TargetAcc)
	case s.Repeats < 0:
		return fmt.Errorf("experiment: negative repeats %d", s.Repeats)
	case s.Workers < 0:
		return fmt.Errorf("experiment: negative worker pool size %d", s.Workers)
	}
	return nil
}

// BenchScale is the scaled-down preset used by the bench harness: small
// datasets and iteration budgets that preserve ordering (who beats whom) at
// a fraction of the paper's cost.
func BenchScale() Scale {
	return Scale{
		TrainSamples: 800,
		TestSamples:  600,
		TConvex:      400,
		TNonConvex:   320,
		BatchSize:    8,
		EvalEvery:    40,
		EvalSamples:  150,
		// The paper targets 0.95 at full scale; at bench scale the curves
		// top out near 0.87, so the time-to-accuracy study targets 0.75.
		TargetAcc: 0.75,
		Seed:      1,
	}
}

// DefaultScale is the CLI preset: closer to the paper's budgets while still
// laptop-friendly.
func DefaultScale() Scale {
	return Scale{
		TrainSamples: 4000,
		TestSamples:  1000,
		TConvex:      1000,
		TNonConvex:   1600,
		BatchSize:    16,
		EvalEvery:    80,
		EvalSamples:  400,
		TargetAcc:    0.95,
		Seed:         1,
	}
}
