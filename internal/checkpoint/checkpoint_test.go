package checkpoint

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hieradmo/internal/rng"
)

func sampleState() *State {
	st := NewState("fp-v1", 7)
	st.Vectors["model/x"] = []float64{1.5, -2.25, 0, 3e-17}
	st.Vectors["mom/y"] = []float64{0.125}
	r := rng.New(99)
	r.Norm() // cache a spare
	st.RNGs["sampler"] = r.Snapshot()
	st.Ints["synced"] = -4
	st.Floats["loss"] = 0.6931471805599453
	return st
}

func encode(t *testing.T, st *State) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := Write(&buf, st); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestWriteReadRoundtrip(t *testing.T) {
	st := sampleState()
	got, err := Read(bytes.NewReader(encode(t, st)))
	if err != nil {
		t.Fatal(err)
	}
	if got.Fingerprint != st.Fingerprint || got.Seq != st.Seq {
		t.Fatalf("header roundtrip = (%q, %d), want (%q, %d)", got.Fingerprint, got.Seq, st.Fingerprint, st.Seq)
	}
	for name, v := range st.Vectors {
		gv := got.Vectors[name]
		if len(gv) != len(v) {
			t.Fatalf("vector %q length %d, want %d", name, len(gv), len(v))
		}
		for i := range v {
			if gv[i] != v[i] {
				t.Fatalf("vector %q[%d] = %v, want %v", name, i, gv[i], v[i])
			}
		}
	}
	if got.RNGs["sampler"] != st.RNGs["sampler"] {
		t.Fatalf("rng roundtrip = %+v, want %+v", got.RNGs["sampler"], st.RNGs["sampler"])
	}
	if got.Ints["synced"] != st.Ints["synced"] || got.Floats["loss"] != st.Floats["loss"] {
		t.Fatal("scalar sections did not roundtrip")
	}
}

func TestWriteIsDeterministic(t *testing.T) {
	a := encode(t, sampleState())
	b := encode(t, sampleState())
	if !bytes.Equal(a, b) {
		t.Fatal("identical states serialized to different bytes")
	}
}

// TestReadRejectsCorruption is the corruption table: every malformed input
// must fail with a wrapped ErrFormat and never panic.
func TestReadRejectsCorruption(t *testing.T) {
	valid := encode(t, sampleState())
	headerLen := len(magic) + 4 + 8

	cases := []struct {
		name string
		mut  func([]byte) []byte
	}{
		{"empty file", func(b []byte) []byte { return nil }},
		{"truncated header", func(b []byte) []byte { return b[:5] }},
		{"truncated payload", func(b []byte) []byte { return b[:headerLen+3] }},
		{"truncated crc", func(b []byte) []byte { return b[:len(b)-2] }},
		{"bad magic", func(b []byte) []byte { b[0] = 'X'; return b }},
		{"old persist magic", func(b []byte) []byte { copy(b, "HADMOCK1"); return b }},
		{"wrong version", func(b []byte) []byte { b[len(magic)] = 0xFF; return b }},
		{"flipped payload bit", func(b []byte) []byte { b[headerLen+2] ^= 0x10; return b }},
		{"flipped crc bit", func(b []byte) []byte { b[len(b)-1] ^= 0x01; return b }},
		{"implausible payload length", func(b []byte) []byte {
			for i := 0; i < 8; i++ {
				b[len(magic)+4+i] = 0xFF
			}
			return b
		}},
		{"trailing garbage", func(b []byte) []byte { return append(b, 0xAA) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := tc.mut(append([]byte(nil), valid...))
			st, err := Read(bytes.NewReader(b))
			if st != nil || !errors.Is(err, ErrFormat) {
				t.Fatalf("Read(%s) = (%v, %v), want wrapped ErrFormat", tc.name, st, err)
			}
		})
	}
}

func TestManagerSaveLoadAndPrune(t *testing.T) {
	dir := t.TempDir()
	m, err := NewManager(dir, "node")
	if err != nil {
		t.Fatal(err)
	}
	for seq := 1; seq <= 5; seq++ {
		st := NewState("fp", seq)
		st.Floats["v"] = float64(seq)
		if err := m.Save(st); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != keepGenerations {
		t.Fatalf("kept %d generation files, want %d", len(entries), keepGenerations)
	}
	st, err := m.Latest()
	if err != nil {
		t.Fatal(err)
	}
	if st == nil || st.Seq != 5 || st.Floats["v"] != 5 {
		t.Fatalf("Latest = %+v, want seq 5", st)
	}
}

// TestManagerFallsBackToPreviousGeneration corrupts the newest generation
// and expects Latest to recover from the one before it.
func TestManagerFallsBackToPreviousGeneration(t *testing.T) {
	dir := t.TempDir()
	m, err := NewManager(dir, "node")
	if err != nil {
		t.Fatal(err)
	}
	for seq := 1; seq <= 2; seq++ {
		st := NewState("fp", seq)
		st.Floats["v"] = float64(seq)
		if err := m.Save(st); err != nil {
			t.Fatal(err)
		}
	}
	// Flip one payload bit in the newest generation.
	newest := m.path(2)
	raw, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-7] ^= 0x40
	if err := os.WriteFile(newest, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	st, err := m.Latest()
	if err != nil {
		t.Fatalf("Latest with corrupt newest generation: %v", err)
	}
	if st.Seq != 1 || st.Floats["v"] != 1 {
		t.Fatalf("fell back to seq %d, want 1", st.Seq)
	}

	// Corrupt the surviving generation too: now every generation is bad and
	// Latest must fail with a wrapped ErrFormat, not pretend a fresh start.
	prev := m.path(1)
	if err := os.WriteFile(prev, []byte("HADMOCK2 but nonsense"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Latest(); !errors.Is(err, ErrFormat) {
		t.Fatalf("all-corrupt Latest err = %v, want wrapped ErrFormat", err)
	}
}

func TestManagerLatestEmptyDirIsFreshStart(t *testing.T) {
	m, err := NewManager(t.TempDir(), "node")
	if err != nil {
		t.Fatal(err)
	}
	st, err := m.Latest()
	if st != nil || err != nil {
		t.Fatalf("Latest on empty dir = (%v, %v), want (nil, nil)", st, err)
	}
}

func TestManagerIgnoresForeignFiles(t *testing.T) {
	dir := t.TempDir()
	m, err := NewManager(dir, "node")
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"other-0000000001.ckpt", "node-junk.ckpt", "node-1.txt"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if st, err := m.Latest(); st != nil || err != nil {
		t.Fatalf("Latest with only foreign files = (%v, %v), want (nil, nil)", st, err)
	}
}

func TestRegistryRoundtripAndMismatch(t *testing.T) {
	dir := t.TempDir()
	mgr, err := NewManager(dir, "run")
	if err != nil {
		t.Fatal(err)
	}
	vec := []float64{1, 2, 3}
	r := rng.New(5)
	counter := 9
	scalar := 0.25
	var curve []float64

	bind := func(g *Registry) {
		g.Vector("vec", vec)
		g.RNG("r", r)
		g.Int("counter", &counter)
		g.Float("scalar", &scalar)
		g.Dynamic("curve",
			func() []float64 { return curve },
			func(v []float64) error { curve = append([]float64(nil), v...); return nil })
	}

	g := NewRegistry(mgr, "fp")
	bind(g)
	r.Uint64()
	curve = []float64{10, 0.5}
	if err := g.Save(3); err != nil {
		t.Fatal(err)
	}
	want := r.Uint64()

	// Mutate everything, then restore.
	vec[0], counter, scalar, curve = -1, 0, 0, nil
	r.Restore(rng.Snapshot{})
	g2 := NewRegistry(mgr, "fp")
	bind(g2)
	seq, ok, err := g2.Restore()
	if err != nil || !ok || seq != 3 {
		t.Fatalf("Restore = (%d, %v, %v), want (3, true, nil)", seq, ok, err)
	}
	if vec[0] != 1 || counter != 9 || scalar != 0.25 || len(curve) != 2 || curve[0] != 10 {
		t.Fatalf("restored state wrong: vec=%v counter=%d scalar=%v curve=%v", vec, counter, scalar, curve)
	}
	if got := r.Uint64(); got != want {
		t.Fatalf("restored RNG draw = %d, want %d", got, want)
	}

	// A different fingerprint must refuse to resume.
	g3 := NewRegistry(mgr, "other-config")
	bind(g3)
	if _, _, err := g3.Restore(); !errors.Is(err, ErrMismatch) {
		t.Fatalf("fingerprint-mismatch Restore err = %v, want wrapped ErrMismatch", err)
	}
	if err != nil && strings.Contains(strings.ToLower(errors.Unwrap(err).Error()), "panic") {
		t.Fatal("unexpected panic text in error")
	}

	// Fresh registry on an empty manager: no snapshot, no error.
	mgr2, err := NewManager(t.TempDir(), "run")
	if err != nil {
		t.Fatal(err)
	}
	g4 := NewRegistry(mgr2, "fp")
	bind(g4)
	if seq, ok, err := g4.Restore(); seq != 0 || ok || err != nil {
		t.Fatalf("empty Restore = (%d, %v, %v), want (0, false, nil)", seq, ok, err)
	}
}

func TestRegistryRejectsShapeDrift(t *testing.T) {
	mgr, err := NewManager(t.TempDir(), "run")
	if err != nil {
		t.Fatal(err)
	}
	g := NewRegistry(mgr, "fp")
	g.Vector("v", []float64{1, 2})
	if err := g.Save(1); err != nil {
		t.Fatal(err)
	}
	g2 := NewRegistry(mgr, "fp")
	g2.Vector("v", []float64{1, 2, 3}) // dimension changed
	if _, _, err := g2.Restore(); !errors.Is(err, ErrFormat) {
		t.Fatalf("shape-drift Restore err = %v, want wrapped ErrFormat", err)
	}
	g3 := NewRegistry(mgr, "fp")
	g3.Vector("v", []float64{1, 2})
	g3.Vector("missing", []float64{0}) // state the snapshot never captured
	if _, _, err := g3.Restore(); !errors.Is(err, ErrFormat) {
		t.Fatalf("missing-field Restore err = %v, want wrapped ErrFormat", err)
	}
}
