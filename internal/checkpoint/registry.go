package checkpoint

import (
	"fmt"

	"hieradmo/internal/rng"
)

// Registry binds named live training state to snapshot fields: an algorithm
// registers each persistent vector, RNG stream, and counter once, then calls
// Save after completed iterations and Restore once at startup. Registration
// order does not matter; names must be unique per kind and stable across
// runs (they address the state inside the snapshot).
//
// Vectors are captured by reference: Save copies their current contents, and
// Restore copies snapshot contents back into the same backing arrays, so the
// algorithm's aliases (momentum buffers shared with a harness, for example)
// stay intact.
type Registry struct {
	mgr         *Manager
	fingerprint string

	vectors map[string][]float64
	rngs    map[string]*rng.RNG
	ints    map[string]*int
	floats  map[string]*float64
	// dynamics serialize variable-size state (accuracy curves, message
	// backlogs) through an encode/decode pair.
	dynamics map[string]dynamic
}

type dynamic struct {
	save func() []float64
	load func([]float64) error
}

// NewRegistry returns a registry persisting through mgr under the given
// config fingerprint.
func NewRegistry(mgr *Manager, fingerprint string) *Registry {
	return &Registry{
		mgr:         mgr,
		fingerprint: fingerprint,
		vectors:     make(map[string][]float64),
		rngs:        make(map[string]*rng.RNG),
		ints:        make(map[string]*int),
		floats:      make(map[string]*float64),
		dynamics:    make(map[string]dynamic),
	}
}

// Vector registers a fixed-size float64 slice (model parameters, momentum,
// accumulators). The slice length must not change between registration and
// Save/Restore.
func (g *Registry) Vector(name string, v []float64) { g.vectors[name] = v }

// RNG registers a random stream whose position is captured and restored.
func (g *Registry) RNG(name string, r *rng.RNG) { g.rngs[name] = r }

// Int registers an integer counter.
func (g *Registry) Int(name string, p *int) { g.ints[name] = p }

// Float registers a scalar.
func (g *Registry) Float(name string, p *float64) { g.floats[name] = p }

// Dynamic registers variable-size state through an encode/decode pair: save
// flattens the current value, load rebuilds it from a restored snapshot.
func (g *Registry) Dynamic(name string, save func() []float64, load func([]float64) error) {
	g.dynamics[name] = dynamic{save: save, load: load}
}

// Save snapshots every registered binding as the generation for seq (the
// last completed iteration or round).
func (g *Registry) Save(seq int) error {
	st := NewState(g.fingerprint, seq)
	for name, v := range g.vectors {
		st.Vectors[name] = append([]float64(nil), v...)
	}
	for name, r := range g.rngs {
		st.RNGs[name] = r.Snapshot()
	}
	for name, p := range g.ints {
		st.Ints[name] = int64(*p)
	}
	for name, p := range g.floats {
		st.Floats[name] = *p
	}
	for name, d := range g.dynamics {
		st.Vectors["dyn/"+name] = d.save()
	}
	return g.mgr.Save(st)
}

// Restore loads the newest valid snapshot generation into the registered
// bindings and returns its sequence number. With no snapshot present it
// returns (0, false, nil): start from scratch. A snapshot carrying a
// different fingerprint fails with a wrapped ErrMismatch — resuming it would
// silently train a different configuration.
func (g *Registry) Restore() (int, bool, error) {
	st, err := g.mgr.Latest()
	if err != nil {
		return 0, false, err
	}
	if st == nil {
		return 0, false, nil
	}
	if st.Fingerprint != g.fingerprint {
		return 0, false, fmt.Errorf("%w: snapshot %q vs run %q", ErrMismatch, st.Fingerprint, g.fingerprint)
	}
	for name, v := range g.vectors {
		sv, ok := st.Vectors[name]
		if !ok {
			return 0, false, fmt.Errorf("%w: snapshot missing vector %q", ErrFormat, name)
		}
		if len(sv) != len(v) {
			return 0, false, fmt.Errorf("%w: vector %q has %d elements, want %d", ErrFormat, name, len(sv), len(v))
		}
		copy(v, sv)
	}
	for name, r := range g.rngs {
		s, ok := st.RNGs[name]
		if !ok {
			return 0, false, fmt.Errorf("%w: snapshot missing rng %q", ErrFormat, name)
		}
		r.Restore(s)
	}
	for name, p := range g.ints {
		v, ok := st.Ints[name]
		if !ok {
			return 0, false, fmt.Errorf("%w: snapshot missing int %q", ErrFormat, name)
		}
		*p = int(v)
	}
	for name, p := range g.floats {
		v, ok := st.Floats[name]
		if !ok {
			return 0, false, fmt.Errorf("%w: snapshot missing float %q", ErrFormat, name)
		}
		*p = v
	}
	for name, d := range g.dynamics {
		sv, ok := st.Vectors["dyn/"+name]
		if !ok {
			return 0, false, fmt.Errorf("%w: snapshot missing dynamic %q", ErrFormat, name)
		}
		if err := d.load(sv); err != nil {
			return 0, false, fmt.Errorf("checkpoint: restore dynamic %q: %w", name, err)
		}
	}
	return st.Seq, true, nil
}

// Clear removes this registry's snapshot generations (fresh-start runs in a
// previously used directory).
func (g *Registry) Clear() error { return g.mgr.Clear() }
