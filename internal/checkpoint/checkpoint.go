// Package checkpoint persists complete mid-run training state so crashed or
// interrupted runs resume bit-exactly. It extends internal/persist's binary
// artifact format (magic + little-endian, length-prefixed payloads) with the
// three properties recovery needs that final artifacts do not:
//
//   - integrity: a version field and a CRC-32 over the payload, so a torn or
//     bit-flipped file is detected and rejected (wrapped ErrFormat) instead of
//     silently resuming from garbage;
//   - atomicity: snapshots are written to a temp file in the target
//     directory, fsynced, and renamed into place, so a crash mid-write never
//     destroys the previous snapshot;
//   - identity: every snapshot embeds a config fingerprint, and restore
//     refuses (ErrMismatch) to load state produced under a different
//     configuration.
//
// A Manager keeps the last two snapshot generations per node and falls back
// to the previous generation when the newest is corrupt. A Registry binds
// named live state (vectors, RNG streams, counters) to snapshot fields so
// algorithms declare once what their resumable state is.
package checkpoint

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"hieradmo/internal/rng"
)

var (
	// ErrFormat wraps every malformed-snapshot failure: truncation, bad
	// magic, unknown version, CRC mismatch, implausible lengths.
	ErrFormat = errors.New("checkpoint: malformed snapshot")
	// ErrMismatch wraps fingerprint mismatches: the snapshot is intact but
	// was produced by a different configuration, so resuming from it would
	// silently train the wrong run.
	ErrMismatch = errors.New("checkpoint: config fingerprint mismatch")
)

// magic identifies snapshot files; "HADMOCK1" is internal/persist's
// parameters-only checkpoint, this is its stateful successor.
const magic = "HADMOCK2"

// version is bumped on any incompatible payload layout change.
const version = 1

const (
	// maxStringLen bounds decoded string lengths (names, fingerprints).
	maxStringLen = 1 << 20
	// maxVectorLen bounds decoded vector lengths (8 GiB of float64s),
	// matching persist.ReadCheckpoint's guard against corrupt lengths.
	maxVectorLen = 1 << 30
	// maxEntries bounds every section's entry count.
	maxEntries = 1 << 24
)

// State is one complete, self-describing training snapshot: a config
// fingerprint, the sequence number of the last completed iteration (or
// protocol round), and named sections for every kind of resumable state.
type State struct {
	// Fingerprint identifies the configuration that produced the snapshot.
	Fingerprint string
	// Seq is the last fully completed iteration/round the snapshot captures.
	Seq int
	// Vectors holds model parameters, momentum buffers, and accumulators.
	Vectors map[string][]float64
	// RNGs holds the position of every random stream (mini-batch samplers,
	// participation sampling, stochastic quantization).
	RNGs map[string]rng.Snapshot
	// Ints holds integer counters (protocol watermarks like syncedThrough).
	Ints map[string]int64
	// Floats holds scalar state (losses, momentum magnitudes).
	Floats map[string]float64
}

// NewState returns an empty snapshot for the given fingerprint and sequence
// number.
func NewState(fingerprint string, seq int) *State {
	return &State{
		Fingerprint: fingerprint,
		Seq:         seq,
		Vectors:     make(map[string][]float64),
		RNGs:        make(map[string]rng.Snapshot),
		Ints:        make(map[string]int64),
		Floats:      make(map[string]float64),
	}
}

// Write serializes the state to w: magic, version, payload length, payload,
// CRC-32 (IEEE) of the payload. Map sections are encoded in sorted key order
// so identical states serialize to identical bytes.
func Write(w io.Writer, st *State) error {
	payload, err := encodePayload(st)
	if err != nil {
		return err
	}
	header := make([]byte, 0, len(magic)+4+8)
	header = append(header, magic...)
	header = binary.LittleEndian.AppendUint32(header, version)
	header = binary.LittleEndian.AppendUint64(header, uint64(len(payload)))
	if _, err := w.Write(header); err != nil {
		return fmt.Errorf("checkpoint: write header: %w", err)
	}
	if _, err := w.Write(payload); err != nil {
		return fmt.Errorf("checkpoint: write payload: %w", err)
	}
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(payload))
	if _, err := w.Write(crc[:]); err != nil {
		return fmt.Errorf("checkpoint: write crc: %w", err)
	}
	return nil
}

// Read deserializes a state written by Write, verifying magic, version, and
// CRC. Every malformed input fails with a wrapped ErrFormat; Read never
// panics on corrupt bytes.
func Read(r io.Reader) (*State, error) {
	head := make([]byte, len(magic)+4+8)
	if _, err := io.ReadFull(r, head); err != nil {
		return nil, fmt.Errorf("%w: header: %v", ErrFormat, err)
	}
	if string(head[:len(magic)]) != magic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrFormat, head[:len(magic)])
	}
	if v := binary.LittleEndian.Uint32(head[len(magic):]); v != version {
		return nil, fmt.Errorf("%w: unsupported version %d (want %d)", ErrFormat, v, version)
	}
	n := binary.LittleEndian.Uint64(head[len(magic)+4:])
	if n > maxVectorLen*8 {
		return nil, fmt.Errorf("%w: implausible payload length %d", ErrFormat, n)
	}
	// Grow the payload buffer from bytes actually read rather than trusting
	// the declared length: a corrupt header must not force a multi-GiB
	// allocation before the short read is detected.
	var pbuf bytes.Buffer
	if m, err := io.CopyN(&pbuf, r, int64(n)); err != nil {
		return nil, fmt.Errorf("%w: payload: short read (%d of %d bytes): %v", ErrFormat, m, n, err)
	}
	payload := pbuf.Bytes()
	var crc [4]byte
	if _, err := io.ReadFull(r, crc[:]); err != nil {
		return nil, fmt.Errorf("%w: crc: %v", ErrFormat, err)
	}
	if want, got := binary.LittleEndian.Uint32(crc[:]), crc32.ChecksumIEEE(payload); want != got {
		return nil, fmt.Errorf("%w: crc mismatch (stored %08x, computed %08x)", ErrFormat, want, got)
	}
	if extra, err := io.Copy(io.Discard, r); err == nil && extra > 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes after crc", ErrFormat, extra)
	}
	return decodePayload(payload)
}

// encoder appends little-endian fields to a growing payload buffer.
type encoder struct{ buf []byte }

func (e *encoder) u32(v uint32)  { e.buf = binary.LittleEndian.AppendUint32(e.buf, v) }
func (e *encoder) u64(v uint64)  { e.buf = binary.LittleEndian.AppendUint64(e.buf, v) }
func (e *encoder) i64(v int64)   { e.u64(uint64(v)) }
func (e *encoder) f64(v float64) { e.u64(math.Float64bits(v)) }

func (e *encoder) str(s string) error {
	if len(s) > maxStringLen {
		return fmt.Errorf("checkpoint: string field of %d bytes exceeds limit", len(s))
	}
	e.u32(uint32(len(s)))
	e.buf = append(e.buf, s...)
	return nil
}

func encodePayload(st *State) ([]byte, error) {
	e := &encoder{}
	if err := e.str(st.Fingerprint); err != nil {
		return nil, err
	}
	e.i64(int64(st.Seq))

	e.u32(uint32(len(st.Vectors)))
	for _, name := range sortedKeys(st.Vectors) {
		v := st.Vectors[name]
		if len(v) > maxVectorLen {
			return nil, fmt.Errorf("checkpoint: vector %q of %d elements exceeds limit", name, len(v))
		}
		if err := e.str(name); err != nil {
			return nil, err
		}
		e.u64(uint64(len(v)))
		for _, x := range v {
			e.f64(x)
		}
	}
	e.u32(uint32(len(st.RNGs)))
	for _, name := range sortedKeys(st.RNGs) {
		s := st.RNGs[name]
		if err := e.str(name); err != nil {
			return nil, err
		}
		e.u64(s.State)
		e.f64(s.Spare)
		if s.HasSpare {
			e.buf = append(e.buf, 1)
		} else {
			e.buf = append(e.buf, 0)
		}
	}
	e.u32(uint32(len(st.Ints)))
	for _, name := range sortedKeys(st.Ints) {
		if err := e.str(name); err != nil {
			return nil, err
		}
		e.i64(st.Ints[name])
	}
	e.u32(uint32(len(st.Floats)))
	for _, name := range sortedKeys(st.Floats) {
		if err := e.str(name); err != nil {
			return nil, err
		}
		e.f64(st.Floats[name])
	}
	return e.buf, nil
}

// decoder consumes little-endian fields from a payload, failing with
// ErrFormat on any short read or implausible length.
type decoder struct{ buf []byte }

func (d *decoder) take(n int) ([]byte, error) {
	if n < 0 || len(d.buf) < n {
		return nil, fmt.Errorf("%w: payload truncated (%d bytes left, need %d)", ErrFormat, len(d.buf), n)
	}
	b := d.buf[:n]
	d.buf = d.buf[n:]
	return b, nil
}

func (d *decoder) u32() (uint32, error) {
	b, err := d.take(4)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b), nil
}

func (d *decoder) u64() (uint64, error) {
	b, err := d.take(8)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b), nil
}

func (d *decoder) f64() (float64, error) {
	v, err := d.u64()
	return math.Float64frombits(v), err
}

func (d *decoder) str() (string, error) {
	n, err := d.u32()
	if err != nil {
		return "", err
	}
	if n > maxStringLen {
		return "", fmt.Errorf("%w: implausible string length %d", ErrFormat, n)
	}
	b, err := d.take(int(n))
	return string(b), err
}

func (d *decoder) count(section string) (int, error) {
	n, err := d.u32()
	if err != nil {
		return 0, err
	}
	if n > maxEntries {
		return 0, fmt.Errorf("%w: implausible %s count %d", ErrFormat, section, n)
	}
	return int(n), nil
}

func decodePayload(payload []byte) (*State, error) {
	d := &decoder{buf: payload}
	fp, err := d.str()
	if err != nil {
		return nil, err
	}
	seq, err := d.u64()
	if err != nil {
		return nil, err
	}
	st := NewState(fp, int(int64(seq)))

	nVec, err := d.count("vector")
	if err != nil {
		return nil, err
	}
	for j := 0; j < nVec; j++ {
		name, err := d.str()
		if err != nil {
			return nil, err
		}
		n, err := d.u64()
		if err != nil {
			return nil, err
		}
		if n > maxVectorLen || n*8 > uint64(len(d.buf)) {
			return nil, fmt.Errorf("%w: implausible vector length %d for %q", ErrFormat, n, name)
		}
		v := make([]float64, n)
		for i := range v {
			if v[i], err = d.f64(); err != nil {
				return nil, err
			}
		}
		st.Vectors[name] = v
	}
	nRNG, err := d.count("rng")
	if err != nil {
		return nil, err
	}
	for j := 0; j < nRNG; j++ {
		name, err := d.str()
		if err != nil {
			return nil, err
		}
		var s rng.Snapshot
		if s.State, err = d.u64(); err != nil {
			return nil, err
		}
		if s.Spare, err = d.f64(); err != nil {
			return nil, err
		}
		b, err := d.take(1)
		if err != nil {
			return nil, err
		}
		s.HasSpare = b[0] != 0
		st.RNGs[name] = s
	}
	nInt, err := d.count("int")
	if err != nil {
		return nil, err
	}
	for j := 0; j < nInt; j++ {
		name, err := d.str()
		if err != nil {
			return nil, err
		}
		v, err := d.u64()
		if err != nil {
			return nil, err
		}
		st.Ints[name] = int64(v)
	}
	nFloat, err := d.count("float")
	if err != nil {
		return nil, err
	}
	for j := 0; j < nFloat; j++ {
		name, err := d.str()
		if err != nil {
			return nil, err
		}
		if st.Floats[name], err = d.f64(); err != nil {
			return nil, err
		}
	}
	if len(d.buf) != 0 {
		return nil, fmt.Errorf("%w: %d unconsumed payload bytes", ErrFormat, len(d.buf))
	}
	return st, nil
}
