package checkpoint

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzOpenSnapshot throws arbitrary bytes at the snapshot decoder. The
// contract under fuzzing is total: for every input, Read either returns a
// fully decoded *State, or a nil state with an error wrapping ErrFormat —
// it never panics, never returns a partial state, and never reports success
// on bytes Write would not reproduce. A decoded state is additionally pushed
// through the fingerprint check so the ErrMismatch path is exercised too.
func FuzzOpenSnapshot(f *testing.F) {
	valid := new(bytes.Buffer)
	if err := Write(valid, sampleState()); err != nil {
		f.Fatal(err)
	}
	empty := new(bytes.Buffer)
	if err := Write(empty, NewState("", 0)); err != nil {
		f.Fatal(err)
	}

	// Seed the corpus with the interesting regions: intact snapshots, every
	// corruption class from the table test, and raw junk.
	f.Add(valid.Bytes())
	f.Add(empty.Bytes())
	f.Add([]byte{})
	f.Add(valid.Bytes()[:5])                        // truncated header
	f.Add(valid.Bytes()[:len(valid.Bytes())-2])     // truncated crc
	f.Add(append(valid.Bytes(), 0xAA))              // trailing garbage
	f.Add([]byte("HADMOCK1 not a snapshot at all")) // old persist magic
	f.Add(bytes.Repeat([]byte{0xFF}, 64))           // implausible lengths

	f.Fuzz(func(t *testing.T, data []byte) {
		st, err := Read(bytes.NewReader(data))
		if err != nil {
			if st != nil {
				t.Fatalf("Read returned a state alongside error %v", err)
			}
			if !errors.Is(err, ErrFormat) {
				t.Fatalf("Read error %v does not wrap ErrFormat", err)
			}
			return
		}
		// Accepted input: re-encoding must reproduce the canonical bytes, so
		// the decoder cannot accept a second representation of any state.
		var reenc bytes.Buffer
		if err := Write(&reenc, st); err != nil {
			t.Fatalf("re-encode of accepted snapshot failed: %v", err)
		}
		if !bytes.Equal(reenc.Bytes(), data) {
			t.Fatalf("decoder accepted non-canonical bytes: %d in, %d re-encoded", len(data), reenc.Len())
		}
		// Restoring under a different config fingerprint must refuse with
		// ErrMismatch (the snapshot is intact, just foreign). Only decoded
		// inputs reach this, so the filesystem round-trip stays off the hot
		// fuzz path.
		mgr, err := NewManager(t.TempDir(), "fuzz")
		if err != nil {
			t.Fatal(err)
		}
		if err := mgr.Save(st); err != nil {
			t.Fatalf("re-save of accepted snapshot failed: %v", err)
		}
		foreign := NewRegistry(mgr, st.Fingerprint+"-other")
		if _, _, err := foreign.Restore(); !errors.Is(err, ErrMismatch) {
			t.Fatalf("foreign fingerprint err = %v, want wrapped ErrMismatch", err)
		}
	})
}
