package checkpoint

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// keepGenerations is how many snapshot generations a Manager retains per
// base name. Two generations means a crash during (or a corruption of) the
// newest write always leaves the previous one to fall back to.
const keepGenerations = 2

// Manager owns the snapshot files of one logical node (or one simulation
// run) inside a checkpoint directory: it writes generations atomically,
// prunes old ones, and loads the newest generation that still validates,
// falling back past corrupt files.
//
// Files are named "<base>-<seq>.ckpt"; base isolates multiple nodes sharing
// one directory (the in-process cluster) from each other.
type Manager struct {
	dir  string
	base string
}

// NewManager prepares (and creates, if needed) dir for snapshots of the
// given base name.
func NewManager(dir, base string) (*Manager, error) {
	if dir == "" {
		return nil, fmt.Errorf("checkpoint: empty directory")
	}
	if base == "" || strings.ContainsAny(base, "/\\") {
		return nil, fmt.Errorf("checkpoint: invalid base name %q", base)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint: create dir: %w", err)
	}
	return &Manager{dir: dir, base: base}, nil
}

// path returns the file name of the generation with sequence number seq.
func (m *Manager) path(seq int) string {
	return filepath.Join(m.dir, fmt.Sprintf("%s-%010d.ckpt", m.base, seq))
}

// Save writes st as a new generation atomically — temp file in the same
// directory, fsync, close, rename — then prunes generations beyond
// keepGenerations. A crash at any point leaves at least the previous
// generation intact and readable.
func (m *Manager) Save(st *State) error {
	f, err := os.CreateTemp(m.dir, m.base+"-*.tmp")
	if err != nil {
		return fmt.Errorf("checkpoint: temp file: %w", err)
	}
	tmp := f.Name()
	// Write, sync, and close exactly once, propagating the first failure;
	// the temp file is unlinked on any error so aborted writes leave no
	// debris behind.
	err = Write(f, st)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("checkpoint: write %s seq %d: %w", m.base, st.Seq, err)
	}
	if err := os.Rename(tmp, m.path(st.Seq)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("checkpoint: publish %s seq %d: %w", m.base, st.Seq, err)
	}
	return m.prune()
}

// generations lists this base's snapshot sequence numbers, newest first.
func (m *Manager) generations() ([]int, error) {
	entries, err := os.ReadDir(m.dir)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, nil
		}
		return nil, fmt.Errorf("checkpoint: list %s: %w", m.dir, err)
	}
	prefix := m.base + "-"
	var seqs []int
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, ".ckpt") {
			continue
		}
		seqStr := strings.TrimSuffix(strings.TrimPrefix(name, prefix), ".ckpt")
		seq, err := strconv.Atoi(seqStr)
		if err != nil {
			continue // foreign file that happens to share the prefix
		}
		seqs = append(seqs, seq)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(seqs)))
	return seqs, nil
}

// prune removes generations beyond keepGenerations, oldest first.
func (m *Manager) prune() error {
	seqs, err := m.generations()
	if err != nil {
		return err
	}
	for _, seq := range seqs[min(len(seqs), keepGenerations):] {
		if err := os.Remove(m.path(seq)); err != nil && !errors.Is(err, fs.ErrNotExist) {
			return fmt.Errorf("checkpoint: prune seq %d: %w", seq, err)
		}
	}
	return nil
}

// Latest loads the newest snapshot generation that validates. A corrupt
// newest generation (wrapped ErrFormat from Read) falls back to the previous
// one; only when every existing generation is corrupt does Latest fail. With
// no snapshot files at all it returns (nil, nil): a fresh start.
func (m *Manager) Latest() (*State, error) {
	seqs, err := m.generations()
	if err != nil {
		return nil, err
	}
	var lastErr error
	for _, seq := range seqs {
		st, err := m.load(m.path(seq))
		if err == nil {
			return st, nil
		}
		if !errors.Is(err, ErrFormat) {
			return nil, err
		}
		lastErr = err // corrupt: fall back to the previous generation
	}
	if lastErr != nil {
		return nil, fmt.Errorf("checkpoint: every generation of %s is corrupt: %w", m.base, lastErr)
	}
	return nil, nil
}

func (m *Manager) load(path string) (*State, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	defer f.Close()
	st, err := Read(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return st, nil
}

// Clear removes every snapshot generation of this base, for runs starting
// fresh in a previously used directory.
func (m *Manager) Clear() error {
	seqs, err := m.generations()
	if err != nil {
		return err
	}
	for _, seq := range seqs {
		if err := os.Remove(m.path(seq)); err != nil && !errors.Is(err, fs.ErrNotExist) {
			return fmt.Errorf("checkpoint: clear seq %d: %w", seq, err)
		}
	}
	return nil
}

// sortedKeys returns a map's keys in ascending order, for deterministic
// serialization.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
