// Package metrics provides the evaluation statistics used by the experiment
// harness: summary statistics over repeated seeded runs (the "± std" the
// paper's Table II reports), confusion matrices and per-class
// precision/recall, and curve utilities (smoothing, area-under-curve) for
// comparing convergence trajectories.
package metrics

import (
	"errors"
	"fmt"
	"math"
)

// ErrEmpty is returned when a statistic needs at least one observation.
var ErrEmpty = errors.New("metrics: no observations")

// Summary is the mean and sample standard deviation of a set of
// observations, plus their extremes.
type Summary struct {
	N         int
	Mean, Std float64
	Min, Max  float64
}

// Summarize computes a Summary over xs.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, ErrEmpty
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	// Welford's online algorithm: overflow-resistant and single-pass.
	var m2 float64
	for i, x := range xs {
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
		d := x - s.Mean
		s.Mean += d / float64(i+1)
		m2 += d * (x - s.Mean)
	}
	if len(xs) > 1 {
		s.Std = math.Sqrt(m2 / float64(len(xs)-1))
	}
	return s, nil
}

// String renders "mean ± std" with percent-style precision, matching the
// paper's Table II cells.
func (s Summary) String() string {
	if s.N <= 1 {
		return fmt.Sprintf("%.2f", s.Mean)
	}
	return fmt.Sprintf("%.2f ± %.2f", s.Mean, s.Std)
}

// Confusion is a square confusion matrix: Counts[true][predicted].
type Confusion struct {
	Counts [][]int
}

// NewConfusion returns an empty numClasses × numClasses matrix.
func NewConfusion(numClasses int) (*Confusion, error) {
	if numClasses <= 0 {
		return nil, fmt.Errorf("metrics: %d classes", numClasses)
	}
	c := &Confusion{Counts: make([][]int, numClasses)}
	for i := range c.Counts {
		c.Counts[i] = make([]int, numClasses)
	}
	return c, nil
}

// Observe records one (true label, prediction) pair; out-of-range values
// are rejected.
func (c *Confusion) Observe(label, pred int) error {
	n := len(c.Counts)
	if label < 0 || label >= n || pred < 0 || pred >= n {
		return fmt.Errorf("metrics: observation (%d,%d) outside %d classes", label, pred, n)
	}
	c.Counts[label][pred]++
	return nil
}

// Total returns the number of recorded observations.
func (c *Confusion) Total() int {
	total := 0
	for _, row := range c.Counts {
		for _, v := range row {
			total += v
		}
	}
	return total
}

// Accuracy returns the trace fraction.
func (c *Confusion) Accuracy() float64 {
	total := c.Total()
	if total == 0 {
		return 0
	}
	correct := 0
	for i := range c.Counts {
		correct += c.Counts[i][i]
	}
	return float64(correct) / float64(total)
}

// Precision returns TP/(TP+FP) for class k, or 0 when the class is never
// predicted.
func (c *Confusion) Precision(k int) float64 {
	var predicted int
	for i := range c.Counts {
		predicted += c.Counts[i][k]
	}
	if predicted == 0 {
		return 0
	}
	return float64(c.Counts[k][k]) / float64(predicted)
}

// Recall returns TP/(TP+FN) for class k, or 0 when the class never occurs.
func (c *Confusion) Recall(k int) float64 {
	var actual int
	for _, v := range c.Counts[k] {
		actual += v
	}
	if actual == 0 {
		return 0
	}
	return float64(c.Counts[k][k]) / float64(actual)
}

// MacroF1 returns the unweighted mean F1 over classes (classes with neither
// predictions nor occurrences contribute 0).
func (c *Confusion) MacroF1() float64 {
	var sum float64
	for k := range c.Counts {
		p, r := c.Precision(k), c.Recall(k)
		if p+r > 0 {
			sum += 2 * p * r / (p + r)
		}
	}
	return sum / float64(len(c.Counts))
}

// EMA returns the exponential moving average of xs with smoothing factor
// alpha ∈ (0,1]; alpha = 1 returns a copy.
func EMA(xs []float64, alpha float64) ([]float64, error) {
	if alpha <= 0 || alpha > 1 {
		return nil, fmt.Errorf("metrics: alpha %v outside (0,1]", alpha)
	}
	if len(xs) == 0 {
		return nil, ErrEmpty
	}
	out := make([]float64, len(xs))
	out[0] = xs[0]
	for i := 1; i < len(xs); i++ {
		out[i] = alpha*xs[i] + (1-alpha)*out[i-1]
	}
	return out, nil
}

// AUC returns the trapezoidal area under a (x, y) curve normalized by the x
// span, a scale-free convergence-speed score for accuracy curves (higher
// is better: the curve rose earlier).
func AUC(xs []int, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, fmt.Errorf("metrics: %d xs for %d ys", len(xs), len(ys))
	}
	if len(xs) < 2 {
		return 0, ErrEmpty
	}
	var area float64
	for i := 1; i < len(xs); i++ {
		dx := float64(xs[i] - xs[i-1])
		if dx <= 0 {
			return 0, fmt.Errorf("metrics: x not strictly increasing at %d", i)
		}
		area += dx * (ys[i] + ys[i-1]) / 2
	}
	span := float64(xs[len(xs)-1] - xs[0])
	return area / span, nil
}
