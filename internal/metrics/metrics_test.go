package metrics

import (
	"errors"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummarize(t *testing.T) {
	s, err := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 8 || s.Mean != 5 {
		t.Errorf("summary %+v", s)
	}
	// Sample std of this classic set is ~2.138.
	if math.Abs(s.Std-2.1380899) > 1e-6 {
		t.Errorf("std = %v", s.Std)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Errorf("min/max %v/%v", s.Min, s.Max)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if _, err := Summarize(nil); !errors.Is(err, ErrEmpty) {
		t.Errorf("err = %v", err)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s, err := Summarize([]float64{3})
	if err != nil {
		t.Fatal(err)
	}
	if s.Std != 0 || s.Mean != 3 {
		t.Errorf("single summary %+v", s)
	}
	if strings.Contains(s.String(), "±") {
		t.Errorf("single-run String %q should not show ±", s.String())
	}
}

func TestSummaryString(t *testing.T) {
	s, err := Summarize([]float64{80, 90})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(s.String(), "±") {
		t.Errorf("String %q missing ±", s.String())
	}
}

func TestSummarizeMeanBounds(t *testing.T) {
	// Property: min ≤ mean ≤ max. Inputs whose spread approaches the
	// float64 range are skipped: x − mean legitimately overflows there, and
	// the statistic is meaningless at such magnitudes.
	f := func(xs []float64) bool {
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > math.MaxFloat64/4 {
				return true
			}
		}
		s, err := Summarize(xs)
		if errors.Is(err, ErrEmpty) {
			return true
		}
		return s.Min <= s.Mean+1e-9*math.Abs(s.Mean)+1e-9 &&
			s.Mean <= s.Max+1e-9*math.Abs(s.Max)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestConfusion(t *testing.T) {
	c, err := NewConfusion(3)
	if err != nil {
		t.Fatal(err)
	}
	obs := [][2]int{{0, 0}, {0, 0}, {0, 1}, {1, 1}, {2, 2}, {2, 0}}
	for _, o := range obs {
		if err := c.Observe(o[0], o[1]); err != nil {
			t.Fatal(err)
		}
	}
	if c.Total() != 6 {
		t.Errorf("total = %d", c.Total())
	}
	if got := c.Accuracy(); math.Abs(got-4.0/6.0) > 1e-12 {
		t.Errorf("accuracy = %v", got)
	}
	// Class 0: predicted 3 times, correct 2 → precision 2/3.
	if got := c.Precision(0); math.Abs(got-2.0/3.0) > 1e-12 {
		t.Errorf("precision(0) = %v", got)
	}
	// Class 0 occurs 3 times, correct 2 → recall 2/3.
	if got := c.Recall(0); math.Abs(got-2.0/3.0) > 1e-12 {
		t.Errorf("recall(0) = %v", got)
	}
	if f1 := c.MacroF1(); f1 <= 0 || f1 > 1 {
		t.Errorf("macro F1 = %v", f1)
	}
}

func TestConfusionErrors(t *testing.T) {
	if _, err := NewConfusion(0); err == nil {
		t.Error("accepted 0 classes")
	}
	c, err := NewConfusion(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Observe(2, 0); err == nil {
		t.Error("accepted out-of-range label")
	}
	if err := c.Observe(0, -1); err == nil {
		t.Error("accepted negative prediction")
	}
}

func TestConfusionDegenerateClasses(t *testing.T) {
	c, err := NewConfusion(2)
	if err != nil {
		t.Fatal(err)
	}
	if c.Accuracy() != 0 {
		t.Error("empty accuracy should be 0")
	}
	if c.Precision(1) != 0 || c.Recall(1) != 0 {
		t.Error("never-seen class should score 0")
	}
}

func TestEMA(t *testing.T) {
	out, err := EMA([]float64{0, 10, 10, 10}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0, 5, 7.5, 8.75}
	for i := range want {
		if math.Abs(out[i]-want[i]) > 1e-12 {
			t.Errorf("ema[%d] = %v, want %v", i, out[i], want[i])
		}
	}
	if _, err := EMA([]float64{1}, 0); err == nil {
		t.Error("accepted alpha 0")
	}
	if _, err := EMA(nil, 0.5); !errors.Is(err, ErrEmpty) {
		t.Errorf("err = %v", err)
	}
	same, err := EMA([]float64{1, 2}, 1)
	if err != nil || same[1] != 2 {
		t.Errorf("alpha=1 should copy: %v %v", same, err)
	}
}

func TestAUC(t *testing.T) {
	// A flat curve at 0.5 has normalized AUC 0.5.
	got, err := AUC([]int{0, 10, 20}, []float64{0.5, 0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.5) > 1e-12 {
		t.Errorf("flat AUC = %v", got)
	}
	// An early riser dominates a late riser.
	early, err := AUC([]int{0, 10, 20}, []float64{0, 0.9, 0.9})
	if err != nil {
		t.Fatal(err)
	}
	late, err := AUC([]int{0, 10, 20}, []float64{0, 0.1, 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if early <= late {
		t.Errorf("early %v should beat late %v", early, late)
	}
}

func TestAUCErrors(t *testing.T) {
	if _, err := AUC([]int{1}, []float64{1}); !errors.Is(err, ErrEmpty) {
		t.Errorf("short AUC err = %v", err)
	}
	if _, err := AUC([]int{1, 2}, []float64{1}); err == nil {
		t.Error("accepted mismatched lengths")
	}
	if _, err := AUC([]int{2, 1}, []float64{1, 1}); err == nil {
		t.Error("accepted decreasing x")
	}
}
