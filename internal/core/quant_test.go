package core

import "testing"

func TestQuantizedUplinkRunsAndLearns(t *testing.T) {
	cfg := buildConfig(t, []int{2, 2}, 2, 67)
	cfg.T = 120
	res, err := New(WithUplinkQuantization(8)).Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalAcc < 0.4 { // chance = 0.25
		t.Errorf("8-bit quantized accuracy %.3f, want >= 0.4", res.FinalAcc)
	}
}

func TestQuantizedUplinkInvalidBits(t *testing.T) {
	cfg := buildConfig(t, []int{2, 2}, 0, 69)
	if _, err := New(WithUplinkQuantization(1)).Run(cfg); err == nil {
		t.Error("1-bit quantizer accepted")
	}
	if _, err := New(WithUplinkQuantization(16)).Run(cfg); err == nil {
		t.Error("16-bit quantizer accepted")
	}
}

func TestQuantizationOffIsDefault(t *testing.T) {
	// bits = 0 disables quantization entirely: identical to the default run.
	cfg := buildConfig(t, []int{2, 2}, 2, 71)
	a, err := New().Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(WithUplinkQuantization(0)).Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.FinalAcc != b.FinalAcc || a.FinalLoss != b.FinalLoss {
		t.Error("bits=0 changed the run")
	}
}

func TestQuantizationDegradesGracefully(t *testing.T) {
	// 8-bit quantization should track the unquantized run closely; 2-bit is
	// allowed to lose accuracy but must not destroy the run.
	cfg := buildConfig(t, []int{2, 2}, 0, 73)
	cfg.T = 120
	full, err := New().Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	q8, err := New(WithUplinkQuantization(8)).Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if q8.FinalAcc < full.FinalAcc-0.15 {
		t.Errorf("8-bit run %.3f far below float run %.3f", q8.FinalAcc, full.FinalAcc)
	}
}
