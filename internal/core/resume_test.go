package core

import (
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"hieradmo/internal/fl"
)

// assertSameResult fails unless a and b are bit-identical: same final
// metrics and the exact same curve.
func assertSameResult(t *testing.T, a, b *fl.Result) {
	t.Helper()
	if a.FinalAcc != b.FinalAcc || a.FinalLoss != b.FinalLoss {
		t.Fatalf("final metrics diverge: (%v, %v) vs (%v, %v)",
			a.FinalAcc, a.FinalLoss, b.FinalAcc, b.FinalLoss)
	}
	if len(a.Curve) != len(b.Curve) {
		t.Fatalf("curve lengths diverge: %d vs %d", len(a.Curve), len(b.Curve))
	}
	for i := range a.Curve {
		if a.Curve[i] != b.Curve[i] {
			t.Fatalf("curve point %d diverges: %+v vs %+v", i, a.Curve[i], b.Curve[i])
		}
	}
}

// deleteNewestSnapshot removes the newest .ckpt generation in dir, rewinding
// the directory to the state a crash between the last two snapshots leaves.
func deleteNewestSnapshot(t *testing.T, dir string) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".ckpt") {
			names = append(names, e.Name())
		}
	}
	if len(names) < 2 {
		t.Fatalf("need at least 2 snapshot generations to rewind, have %v", names)
	}
	sort.Strings(names)
	if err := os.Remove(filepath.Join(dir, names[len(names)-1])); err != nil {
		t.Fatal(err)
	}
}

// TestResumeBitIdentical is the recovery acceptance test for the simulation
// engine: a run interrupted mid-way and resumed from its checkpoint must
// reproduce the uninterrupted run's curve and final metrics exactly — for
// every worker-pool size, with partial participation and uplink quantization
// enabled (the options with their own RNG streams).
func TestResumeBitIdentical(t *testing.T) {
	build := func(pool int, dir string) *fl.Config {
		cfg := buildConfig(t, []int{2, 2}, 0, 7)
		cfg.EvalEvery = 8
		cfg.Workers = pool
		cfg.CheckpointDir = dir
		return cfg
	}
	newAlg := func() *HierAdMo {
		return New(WithParticipation(0.5), WithUplinkQuantization(4))
	}

	ref, err := newAlg().Run(build(1, ""))
	if err != nil {
		t.Fatal(err)
	}

	for _, pool := range []int{1, 2, 8} {
		t.Run(poolName(pool), func(t *testing.T) {
			dir := t.TempDir()

			// A checkpointed but uninterrupted run must already match the
			// reference: snapshotting is observation, not interference.
			full, err := newAlg().Run(build(pool, dir))
			if err != nil {
				t.Fatal(err)
			}
			assertSameResult(t, ref, full)

			// Rewind the directory past the newest generation — the state a
			// crash leaves — and rerun: the run resumes mid-training and must
			// land on the identical result.
			deleteNewestSnapshot(t, dir)
			resumed, err := newAlg().Run(build(pool, dir))
			if err != nil {
				t.Fatal(err)
			}
			assertSameResult(t, ref, resumed)
		})
	}
}

// TestResumeRefusesOtherConfig checks the fingerprint guard end to end: a
// checkpoint directory written under one configuration must refuse to seed a
// run under another.
func TestResumeRefusesOtherConfig(t *testing.T) {
	dir := t.TempDir()
	cfg := buildConfig(t, []int{2, 2}, 0, 7)
	cfg.CheckpointDir = dir
	if _, err := New().Run(cfg); err != nil {
		t.Fatal(err)
	}

	other := buildConfig(t, []int{2, 2}, 0, 7)
	other.CheckpointDir = dir
	other.Eta = cfg.Eta * 2 // a silent hyper-parameter drift
	if _, err := New().Run(other); err == nil {
		t.Fatal("resuming under a different eta succeeded; want fingerprint mismatch")
	}

	// Different run options outside the Config must be caught too.
	variant := buildConfig(t, []int{2, 2}, 0, 7)
	variant.CheckpointDir = dir
	if _, err := New(WithParticipation(0.5)).Run(variant); err == nil {
		t.Fatal("resuming under different participation succeeded; want fingerprint mismatch")
	}
}

func poolName(pool int) string {
	return "pool-" + string(rune('0'+pool))
}
