package core

import (
	"bytes"
	"reflect"
	"testing"

	"hieradmo/internal/fl"
	"hieradmo/internal/telemetry"
)

// runTraced executes a fresh algorithm on a copy of cfg with the given
// worker-pool size, streaming the event trace into a buffer, and returns the
// result, the raw trace bytes, and the run's metric set.
func runTraced(t *testing.T, cfg *fl.Config, pool int, build func(...Option) *HierAdMo, opts ...Option) (*fl.Result, []byte, *telemetry.RunMetrics) {
	t.Helper()
	var buf bytes.Buffer
	reg := telemetry.NewRegistry()
	sink := telemetry.New(reg, telemetry.NewTracer(&buf))
	c := *cfg
	c.Workers = pool
	c.Telemetry = sink
	res, err := build(opts...).Run(&c)
	if err != nil {
		t.Fatalf("pool=%d: %v", pool, err)
	}
	if err := sink.Tracer().Flush(); err != nil {
		t.Fatal(err)
	}
	return res, buf.Bytes(), sink.M()
}

// TestGoldenTraceByteIdentical is the golden-trace satellite: the JSONL
// event stream of a deterministic run is byte-identical across repeated runs
// AND across worker-pool sizes — including under partial participation and
// uplink quantization, whose extra control flow must not perturb event
// order. This only holds because every Emit happens in sequential code.
func TestGoldenTraceByteIdentical(t *testing.T) {
	cfg := buildConfig(t, []int{2, 2}, 0, 11)
	cfg.EvalEvery = 8

	variants := []struct {
		name string
		opts []Option
	}{
		{name: "plain"},
		{name: "participation+quantization", opts: []Option{WithParticipation(0.5), WithUplinkQuantization(8)}},
	}
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			wantRes, wantTrace, _ := runTraced(t, cfg, 1, New, v.opts...)
			if len(wantTrace) == 0 {
				t.Fatal("empty trace")
			}
			rerunRes, rerunTrace, _ := runTraced(t, cfg, 1, New, v.opts...)
			if !bytes.Equal(wantTrace, rerunTrace) {
				t.Errorf("two identical runs produced different traces (%d vs %d bytes)",
					len(wantTrace), len(rerunTrace))
			}
			if !reflect.DeepEqual(wantRes, rerunRes) {
				t.Error("two identical runs produced different results")
			}
			for _, pool := range []int{2, 8} {
				res, trace, _ := runTraced(t, cfg, pool, New, v.opts...)
				if !bytes.Equal(wantTrace, trace) {
					t.Errorf("pool=%d trace diverged from sequential trace", pool)
				}
				if !reflect.DeepEqual(wantRes, res) {
					t.Errorf("pool=%d result diverged under tracing", pool)
				}
			}
		})
	}
}

// TestTelemetryDoesNotPerturbResults pins the nil-sink contract from the
// other side: a run with full telemetry enabled is bit-identical to a run
// with cfg.Telemetry == nil.
func TestTelemetryDoesNotPerturbResults(t *testing.T) {
	cfg := buildConfig(t, []int{2, 1}, 0, 7)
	cfg.EvalEvery = 8

	plain := *cfg
	res, err := New().Run(&plain)
	if err != nil {
		t.Fatal(err)
	}
	traced, _, _ := runTraced(t, cfg, 1, New)
	if !reflect.DeepEqual(res, traced) {
		t.Errorf("telemetry perturbed the run:\nplain:  %+v\ntraced: %+v", res, traced)
	}
}

// TestTraceStructureAndMetricTotals checks the emitted event vocabulary
// against the protocol arithmetic: every round boundary, aggregation, and
// sync shows up exactly as often as Algorithm 1 prescribes, the trace is
// gap-free, and the metric counters agree with the trace.
func TestTraceStructureAndMetricTotals(t *testing.T) {
	cfg := buildConfig(t, []int{2, 2}, 0, 13)
	cfg.EvalEvery = 8
	_, trace, m := runTraced(t, cfg, 1, New)

	events, err := telemetry.ReadTrace(bytes.NewReader(trace))
	if err != nil {
		t.Fatal(err)
	}
	if err := telemetry.CheckTrace(events); err != nil {
		t.Fatalf("trace sequence: %v", err)
	}
	if events[0].Ev != "run_start" || events[len(events)-1].Ev != "run_end" {
		t.Errorf("trace must be bracketed by run_start/run_end, got %s..%s",
			events[0].Ev, events[len(events)-1].Ev)
	}
	counts := map[string]int{}
	for _, e := range events {
		counts[e.Ev]++
	}
	numEdges := cfg.NumEdges()
	numWorkers := cfg.NumWorkers()
	rounds := cfg.T / cfg.Tau
	syncs := cfg.T / (cfg.Tau * cfg.Pi)
	wants := map[string]int{
		"run_start":       1,
		"run_end":         1,
		"round_start":     rounds,
		"round_end":       rounds,
		"edge_aggregate":  rounds * numEdges,
		"cloud_aggregate": syncs,
		"worker_train":    rounds * numWorkers, // full participation: every worker, every round
	}
	for ev, want := range wants {
		if counts[ev] != want {
			t.Errorf("%s count = %d, want %d", ev, counts[ev], want)
		}
	}
	if counts["eval"] == 0 {
		t.Error("no eval events despite EvalEvery")
	}

	// The metric counters must tell the same story as the trace.
	if got := m.EdgeAggregations.Value(); got != int64(rounds*numEdges) {
		t.Errorf("EdgeAggregations = %d, want %d", got, rounds*numEdges)
	}
	if got := m.CloudSyncs.Value(); got != int64(syncs) {
		t.Errorf("CloudSyncs = %d, want %d", got, syncs)
	}
	if got := m.WorkerSteps.Value(); got != int64(cfg.T*numWorkers) {
		t.Errorf("WorkerSteps = %d, want %d", got, cfg.T*numWorkers)
	}
	if got := m.Evals.Value(); got != int64(counts["eval"]) {
		t.Errorf("Evals = %d, want %d (trace)", got, counts["eval"])
	}
	if got := m.IterationSeconds.Count(); got != int64(cfg.T) {
		t.Errorf("IterationSeconds count = %d, want %d", got, cfg.T)
	}
}

// TestReducedRunHasNoCosineField: the edge_aggregate field set is fixed per
// configuration (cos only when adaptation is on), which golden traces rely
// on.
func TestReducedRunHasNoCosineField(t *testing.T) {
	cfg := buildConfig(t, []int{2}, 0, 5)
	_, trace, _ := runTraced(t, cfg, 1, NewReduced)
	events, err := telemetry.ReadTrace(bytes.NewReader(trace))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range events {
		if e.Ev != "edge_aggregate" {
			continue
		}
		if _, ok := e.Fields["cos"]; ok {
			t.Fatal("HierAdMo-R emitted a cos field")
		}
		if _, ok := e.Fields["gamma"]; !ok {
			t.Fatal("edge_aggregate without gamma field")
		}
	}
}
