package core

import (
	"bytes"
	"errors"
	"math"
	"testing"

	"hieradmo/internal/telemetry"
	"hieradmo/internal/tensor"
)

// TestClampGammaTable pins eq. (7) at its boundaries: the obtuse-angle rule
// zeroes γℓ on any non-positive cosine (including exactly 0, where momentum
// carries no usable information), and agreement saturates at the ceiling.
func TestClampGammaTable(t *testing.T) {
	cases := []struct {
		name         string
		cos, ceiling float64
		want         float64
	}{
		{"anti-parallel", -1, DefaultClampCeiling, 0},
		{"obtuse", -0.5, DefaultClampCeiling, 0},
		{"exact orthogonal", 0, DefaultClampCeiling, 0},
		{"negative zero", math.Copysign(0, -1), DefaultClampCeiling, 0},
		{"barely acute", 1e-12, DefaultClampCeiling, 1e-12},
		{"interior", 0.5, DefaultClampCeiling, 0.5},
		{"at ceiling", 0.99, DefaultClampCeiling, 0.99},
		{"parallel clamps", 1, DefaultClampCeiling, 0.99},
		{"custom ceiling", 0.8, 0.6, 0.6},
		{"ceiling zero kills momentum", 0.7, 0, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := ClampGamma(tc.cos, tc.ceiling); got != tc.want {
				t.Errorf("ClampGamma(%v, %v) = %v, want %v", tc.cos, tc.ceiling, got, tc.want)
			}
		})
	}
}

// TestEdgeCosineTable pins eq. (6) on degenerate geometry. EdgeCosine
// compares the NEGATED gradient sum against the momentum signal, so a signal
// pointing exactly along the descent direction (opposite the gradient) is
// perfect agreement.
func TestEdgeCosineTable(t *testing.T) {
	v := func(xs ...float64) tensor.Vector { return tensor.Vector(xs) }
	cases := []struct {
		name     string
		weights  []float64
		gradSums []tensor.Vector
		signals  []tensor.Vector
		want     float64
	}{
		{
			name:    "single worker, signal opposes gradient (descent agreement)",
			weights: []float64{1}, gradSums: []tensor.Vector{v(3, 0)}, signals: []tensor.Vector{v(-2, 0)},
			want: 1,
		},
		{
			name:    "single worker, signal along gradient (full disagreement)",
			weights: []float64{1}, gradSums: []tensor.Vector{v(1, 1)}, signals: []tensor.Vector{v(2, 2)},
			want: -1,
		},
		{
			name:    "exact orthogonal",
			weights: []float64{1}, gradSums: []tensor.Vector{v(1, 0)}, signals: []tensor.Vector{v(0, 5)},
			want: 0,
		},
		{
			name:    "zero-norm gradient accumulator",
			weights: []float64{1}, gradSums: []tensor.Vector{v(0, 0)}, signals: []tensor.Vector{v(1, 2)},
			want: 0,
		},
		{
			name:    "zero-norm momentum signal",
			weights: []float64{1}, gradSums: []tensor.Vector{v(1, 2)}, signals: []tensor.Vector{v(0, 0)},
			want: 0,
		},
		{
			name:    "both accumulators zero",
			weights: []float64{1}, gradSums: []tensor.Vector{v(0, 0)}, signals: []tensor.Vector{v(0, 0)},
			want: 0,
		},
		{
			name:    "subnormal norms treated as no signal",
			weights: []float64{1}, gradSums: []tensor.Vector{v(1e-200, 0)}, signals: []tensor.Vector{v(1e-200, 0)},
			want: 0,
		},
		{
			name:     "weighted mixture of agree and disagree",
			weights:  []float64{0.75, 0.25},
			gradSums: []tensor.Vector{v(1, 0), v(1, 0)},
			signals:  []tensor.Vector{v(-1, 0), v(1, 0)},
			want:     0.75*1 + 0.25*(-1),
		},
		{
			name:     "weighted orthogonal pair stays zero",
			weights:  []float64{0.5, 0.5},
			gradSums: []tensor.Vector{v(1, 0), v(0, 1)},
			signals:  []tensor.Vector{v(0, 1), v(1, 0)},
			want:     0,
		},
		{
			name:    "no workers",
			weights: nil, gradSums: nil, signals: nil,
			want: 0,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := EdgeCosine(tc.weights, tc.gradSums, tc.signals)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(got-tc.want) > 1e-12 {
				t.Errorf("EdgeCosine = %v, want %v", got, tc.want)
			}
			// Every table row must survive the clamp without producing a
			// gamma outside [0, ceiling].
			if g := ClampGamma(got, DefaultClampCeiling); g < 0 || g > DefaultClampCeiling {
				t.Errorf("ClampGamma(%v) = %v escapes [0, %v]", got, g, DefaultClampCeiling)
			}
		})
	}
}

func TestEdgeCosineRejectsLengthMismatch(t *testing.T) {
	_, err := EdgeCosine([]float64{1}, []tensor.Vector{{1}, {2}}, []tensor.Vector{{1}})
	if !errors.Is(err, tensor.ErrDimMismatch) {
		t.Fatalf("err = %v, want wrapped tensor.ErrDimMismatch", err)
	}
	_, err = EdgeCosine([]float64{1}, []tensor.Vector{{1, 2}}, []tensor.Vector{{1}})
	if !errors.Is(err, tensor.ErrDimMismatch) {
		t.Fatalf("mismatched vector dims err = %v, want wrapped tensor.ErrDimMismatch", err)
	}
}

// TestObservedGammasObeyClampRule runs the full algorithm — including a
// single-worker edge, where eq. (6) reduces to one unweighted cosine — and
// cross-checks every γℓ the observer reports against the clamp of the cosine
// the trace recorded for the same aggregation. This ties the table tests
// above to the production code path.
func TestObservedGammasObeyClampRule(t *testing.T) {
	cfg := buildConfig(t, []int{3, 1}, 0, 17) // edge 1 has a single worker
	cfg.EvalEvery = 8
	const ceiling = 0.5

	var buf bytes.Buffer
	cfg.Telemetry = telemetry.New(nil, telemetry.NewTracer(&buf))
	type obs struct {
		edge  int
		gamma float64
	}
	var seen []obs
	res, err := New(
		WithClampCeiling(ceiling),
		WithGammaObserver(func(edge int, gamma float64) { seen = append(seen, obs{edge, gamma}) }),
	).Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res == nil {
		t.Fatal("nil result")
	}
	if err := cfg.Telemetry.Tracer().Flush(); err != nil {
		t.Fatal(err)
	}
	if want := (cfg.T / cfg.Tau) * cfg.NumEdges(); len(seen) != want {
		t.Fatalf("observer saw %d gammas, want %d", len(seen), want)
	}

	events, err := telemetry.ReadTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	i := 0
	for _, e := range events {
		if e.Ev != "edge_aggregate" {
			continue
		}
		if i >= len(seen) {
			t.Fatal("more edge_aggregate events than observed gammas")
		}
		gamma, cos := e.Fields["gamma"].(float64), e.Fields["cos"].(float64)
		if gamma != seen[i].gamma {
			t.Errorf("event %d: traced gamma %v != observed %v", i, gamma, seen[i].gamma)
		}
		if want := ClampGamma(cos, ceiling); gamma != want {
			t.Errorf("event %d: gamma %v != ClampGamma(%v, %v) = %v", i, gamma, cos, ceiling, want)
		}
		if cos <= 0 && gamma != 0 {
			t.Errorf("event %d: obtuse cosine %v kept momentum %v", i, cos, gamma)
		}
		i++
	}
	if i == 0 {
		t.Fatal("trace contained no edge_aggregate events")
	}
}
