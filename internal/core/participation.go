package core

import "hieradmo/internal/rng"

// ParticipationSchedule reproduces the per-round participant cohorts that a
// WithParticipation(frac) run samples for the given seed and topology:
// cohorts[k][l] lists (sorted) the workers of edge l participating in the
// (k+1)-th edge aggregation. It consumes the participation stream in
// exactly the order Run does — per round, edges in index order — so
// external engines (the cluster runtime's quorum path, tests) can match a
// simulation cohort for cohort.
func ParticipationSchedule(seed uint64, frac float64, workersPerEdge []int, rounds int) [][][]int {
	h := New(WithParticipation(frac))
	r := rng.New(seed).Split(0x9a47)
	out := make([][][]int, rounds)
	for k := range out {
		out[k] = make([][]int, len(workersPerEdge))
		for l, n := range workersPerEdge {
			out[k][l] = h.sampleParticipants(r, n)
		}
	}
	return out
}
