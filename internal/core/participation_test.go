package core

import (
	"testing"

	"hieradmo/internal/rng"
)

func TestParticipationFullMatchesDefault(t *testing.T) {
	// participation=1 must be byte-for-byte the default algorithm.
	cfg := buildConfig(t, []int{2, 2}, 2, 61)
	a, err := New().Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(WithParticipation(1)).Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.FinalAcc != b.FinalAcc || a.FinalLoss != b.FinalLoss {
		t.Errorf("full participation diverges: %v/%v vs %v/%v",
			a.FinalAcc, a.FinalLoss, b.FinalAcc, b.FinalLoss)
	}
}

func TestParticipationPartialRunsAndLearns(t *testing.T) {
	cfg := buildConfig(t, []int{4, 4}, 2, 63)
	cfg.T = 120
	res, err := New(WithParticipation(0.5)).Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalAcc < 0.4 { // chance = 0.25
		t.Errorf("partial participation accuracy %.3f, want >= 0.4", res.FinalAcc)
	}
}

func TestParticipationDeterministic(t *testing.T) {
	cfg := buildConfig(t, []int{4, 4}, 0, 65)
	a, err := New(WithParticipation(0.5)).Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(WithParticipation(0.5)).Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.FinalAcc != b.FinalAcc {
		t.Errorf("partial participation is not deterministic: %v vs %v", a.FinalAcc, b.FinalAcc)
	}
}

func TestParticipationOptionClamps(t *testing.T) {
	// Out-of-range fractions are ignored (keep full participation).
	for _, bad := range []float64{0, -0.5, 1.5} {
		h := New(WithParticipation(bad))
		if h.participation != 1 {
			t.Errorf("WithParticipation(%v) set %v, want 1", bad, h.participation)
		}
	}
	h := New(WithParticipation(0.25))
	if h.participation != 0.25 {
		t.Errorf("participation = %v, want 0.25", h.participation)
	}
}

func TestSampleParticipants(t *testing.T) {
	h := New(WithParticipation(0.5))
	r := rng.New(9)
	for trial := 0; trial < 50; trial++ {
		idx := h.sampleParticipants(r, 8)
		if len(idx) != 4 {
			t.Fatalf("sampled %d of 8 at 0.5 participation", len(idx))
		}
		for j := 1; j < len(idx); j++ {
			if idx[j] <= idx[j-1] {
				t.Fatalf("indices not strictly increasing: %v", idx)
			}
		}
		for _, i := range idx {
			if i < 0 || i >= 8 {
				t.Fatalf("index %d out of range", i)
			}
		}
	}
	// At least one worker always participates.
	tiny := New(WithParticipation(0.01))
	if got := tiny.sampleParticipants(r, 4); len(got) != 1 {
		t.Errorf("minimum participation %d, want 1", len(got))
	}
	// Full participation returns everyone in order.
	full := New()
	idx := full.sampleParticipants(r, 3)
	if len(idx) != 3 || idx[0] != 0 || idx[2] != 2 {
		t.Errorf("full participation indices %v", idx)
	}
}

func TestParticipationSchedule(t *testing.T) {
	workersPerEdge := []int{4, 3}
	a := ParticipationSchedule(67, 0.5, workersPerEdge, 6)
	b := ParticipationSchedule(67, 0.5, workersPerEdge, 6)
	if len(a) != 6 {
		t.Fatalf("schedule has %d rounds, want 6", len(a))
	}
	for k := range a {
		for l, n := range workersPerEdge {
			cohort := a[k][l]
			// k = int(frac*n + 0.5), at least 1: 4→2, 3→2.
			want := int(0.5*float64(n) + 0.5)
			if len(cohort) != want {
				t.Errorf("round %d edge %d cohort size %d, want %d", k, l, len(cohort), want)
			}
			for j, i := range cohort {
				if i < 0 || i >= n {
					t.Errorf("round %d edge %d index %d out of range [0,%d)", k, l, i, n)
				}
				if j > 0 && cohort[j] <= cohort[j-1] {
					t.Errorf("round %d edge %d cohort not strictly increasing: %v", k, l, cohort)
				}
			}
			if len(b[k][l]) != len(cohort) {
				t.Fatalf("same seed diverges at round %d edge %d", k, l)
			}
			for j := range cohort {
				if b[k][l][j] != cohort[j] {
					t.Fatalf("same seed diverges at round %d edge %d: %v vs %v", k, l, cohort, b[k][l])
				}
			}
		}
	}
	// A different seed must produce a different schedule somewhere.
	c := ParticipationSchedule(68, 0.5, workersPerEdge, 6)
	same := true
	for k := range a {
		for l := range a[k] {
			for j := range a[k][l] {
				if c[k][l][j] != a[k][l][j] {
					same = false
				}
			}
		}
	}
	if same {
		t.Error("seeds 67 and 68 produced identical schedules")
	}
}
