package core

import (
	"math"
	"testing"
	"testing/quick"

	"hieradmo/internal/dataset"
	"hieradmo/internal/fl"
	"hieradmo/internal/model"
	"hieradmo/internal/tensor"
)

// buildConfig assembles a small logistic-regression run over a 2-edge ×
// 2-worker hierarchy.
func buildConfig(t *testing.T, edges []int, classesPerWorker int, seed uint64) *fl.Config {
	t.Helper()
	cfg := dataset.GenConfig{
		Name:          "toy",
		Shape:         dataset.Shape{C: 1, H: 5, W: 5},
		NumClasses:    4,
		TemplateScale: 1.0,
		NoiseStd:      0.6,
		SmoothPasses:  1,
	}
	g, err := dataset.NewGenerator(cfg, seed)
	if err != nil {
		t.Fatal(err)
	}
	train, test := g.TrainTest(400, 120, seed+1)
	numWorkers := 0
	for _, c := range edges {
		numWorkers += c
	}
	var shards []*dataset.Dataset
	if classesPerWorker > 0 {
		shards, err = dataset.PartitionClasses(train, numWorkers, classesPerWorker, seed+2)
	} else {
		shards, err = dataset.PartitionIID(train, numWorkers, seed+2)
	}
	if err != nil {
		t.Fatal(err)
	}
	hier, err := dataset.Hierarchy(shards, edges)
	if err != nil {
		t.Fatal(err)
	}
	m, err := model.NewLogisticRegression(cfg.Shape, cfg.NumClasses)
	if err != nil {
		t.Fatal(err)
	}
	return &fl.Config{
		Model:     m,
		Edges:     hier,
		Test:      test,
		Eta:       0.05,
		Gamma:     0.5,
		GammaEdge: 0.5,
		Tau:       2,
		Pi:        2,
		T:         40,
		BatchSize: 8,
		Seed:      seed,
	}
}

func TestClampGamma(t *testing.T) {
	tests := []struct {
		name    string
		cos     float64
		ceiling float64
		want    float64
	}{
		{name: "strongly negative", cos: -1, ceiling: 0.99, want: 0},
		{name: "zero", cos: 0, ceiling: 0.99, want: 0},
		{name: "mid", cos: 0.5, ceiling: 0.99, want: 0.5},
		{name: "just below ceiling", cos: 0.98, ceiling: 0.99, want: 0.98},
		{name: "at ceiling", cos: 0.99, ceiling: 0.99, want: 0.99},
		{name: "above ceiling", cos: 1, ceiling: 0.99, want: 0.99},
		{name: "custom ceiling", cos: 0.95, ceiling: 0.9, want: 0.9},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := ClampGamma(tt.cos, tt.ceiling); got != tt.want {
				t.Errorf("ClampGamma(%v, %v) = %v, want %v", tt.cos, tt.ceiling, got, tt.want)
			}
		})
	}
}

func TestClampGammaPropertyRange(t *testing.T) {
	// Property (eq. 7): γℓ always lands in [0, ceiling].
	f := func(cos float64) bool {
		g := ClampGamma(cos, DefaultClampCeiling)
		return g >= 0 && g <= DefaultClampCeiling
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEdgeCosine(t *testing.T) {
	// One worker, gradient sum g, signal -g: cos(-g, -g) = 1.
	g := tensor.Vector{1, 2}
	neg := tensor.Vector{-1, -2}
	got, err := EdgeCosine([]float64{1}, []tensor.Vector{g}, []tensor.Vector{neg})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-1) > 1e-12 {
		t.Errorf("cos = %v, want 1", got)
	}
	// Signal equal to +g: cos(-g, g) = -1.
	got, err = EdgeCosine([]float64{1}, []tensor.Vector{g}, []tensor.Vector{g})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got+1) > 1e-12 {
		t.Errorf("cos = %v, want -1", got)
	}
	// Weighted mix of agree and disagree cancels.
	got, err = EdgeCosine([]float64{0.5, 0.5},
		[]tensor.Vector{g, g}, []tensor.Vector{neg, g})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got) > 1e-12 {
		t.Errorf("cos = %v, want 0", got)
	}
}

func TestEdgeCosineErrors(t *testing.T) {
	if _, err := EdgeCosine([]float64{1}, nil, nil); err == nil {
		t.Error("accepted mismatched slice counts")
	}
}

func TestAdaptSignalString(t *testing.T) {
	if SignalYSum.String() != "ysum" || SignalVelocity.String() != "velocity" {
		t.Error("signal names wrong")
	}
	if AdaptSignal(99).String() == "" {
		t.Error("unknown signal produced empty string")
	}
}

func TestNames(t *testing.T) {
	if New().Name() != "HierAdMo" {
		t.Errorf("adaptive name = %q", New().Name())
	}
	if NewReduced().Name() != "HierAdMo-R" {
		t.Errorf("reduced name = %q", NewReduced().Name())
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	cfg := buildConfig(t, []int{2, 2}, 0, 1)
	cfg.T = 7 // not a multiple of tau*pi
	if _, err := New().Run(cfg); err == nil {
		t.Error("accepted invalid config")
	}
}

func TestRunDeterministic(t *testing.T) {
	cfg := buildConfig(t, []int{2, 2}, 2, 3)
	a, err := New().Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New().Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.FinalAcc != b.FinalAcc || a.FinalLoss != b.FinalLoss {
		t.Errorf("non-deterministic: %v/%v vs %v/%v", a.FinalAcc, a.FinalLoss, b.FinalAcc, b.FinalLoss)
	}
}

func TestAdaptedGammaWithinClamp(t *testing.T) {
	cfg := buildConfig(t, []int{2, 2}, 2, 5)
	var observed []float64
	alg := New(WithGammaObserver(func(edge int, g float64) {
		observed = append(observed, g)
	}))
	if _, err := alg.Run(cfg); err != nil {
		t.Fatal(err)
	}
	if len(observed) == 0 {
		t.Fatal("no γℓ adaptations observed")
	}
	for _, g := range observed {
		if g < 0 || g > DefaultClampCeiling {
			t.Errorf("adapted γℓ = %v outside [0, %v]", g, DefaultClampCeiling)
		}
	}
}

func TestReducedUsesFixedGamma(t *testing.T) {
	cfg := buildConfig(t, []int{2, 2}, 0, 7)
	cfg.GammaEdge = 0.25
	var observed []float64
	alg := NewReduced(WithGammaObserver(func(edge int, g float64) {
		observed = append(observed, g)
	}))
	if _, err := alg.Run(cfg); err != nil {
		t.Fatal(err)
	}
	for _, g := range observed {
		if g != 0.25 {
			t.Fatalf("reduced variant used γℓ = %v, want fixed 0.25", g)
		}
	}
}

// TestEquivalenceCentralizedNAG: with one edge, one worker, τ = π = 1, and
// γℓ = 0, HierAdMo degenerates to centralized Nesterov accelerated gradient.
// The test replays the identical batch stream manually and compares the
// resulting model exactly (same accuracy, same final mini-batch loss).
func TestEquivalenceCentralizedNAG(t *testing.T) {
	cfg := buildConfig(t, []int{1}, 0, 9)
	cfg.Tau, cfg.Pi, cfg.T = 1, 1, 30
	cfg.GammaEdge = 0

	res, err := NewReduced().Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Manual centralized NAG over the same deterministic batch stream.
	hn, err := fl.NewHarness(cfg)
	if err != nil {
		t.Fatal(err)
	}
	x := hn.InitParams()
	y := x.Clone()
	grad := tensor.NewVector(len(x))
	var lastLoss float64
	for step := 0; step < cfg.T; step++ {
		loss, err := hn.Grad(0, 0, x, grad)
		if err != nil {
			t.Fatal(err)
		}
		lastLoss = loss
		yPrev := y.Clone()
		if err := y.CopyFrom(x); err != nil {
			t.Fatal(err)
		}
		if err := y.AXPY(-cfg.Eta, grad); err != nil {
			t.Fatal(err)
		}
		if err := x.CopyFrom(y); err != nil {
			t.Fatal(err)
		}
		if err := x.AXPY(cfg.Gamma, y); err != nil {
			t.Fatal(err)
		}
		if err := x.AXPY(-cfg.Gamma, yPrev); err != nil {
			t.Fatal(err)
		}
	}
	// With γℓ=0 and a single worker the redistributed model is the worker
	// model: x_cloud == the NAG iterate... except redistribution replaces
	// x with y+0 = avg(x) = x, so trajectories match exactly.
	wantAcc, err := model.Accuracy(cfg.Model, x, cfg.Test)
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalAcc != wantAcc {
		t.Errorf("FinalAcc = %v, centralized NAG = %v", res.FinalAcc, wantAcc)
	}
	if math.Abs(res.FinalLoss-lastLoss) > 1e-9 {
		t.Errorf("FinalLoss = %v, centralized NAG = %v", res.FinalLoss, lastLoss)
	}
}

func TestCurveRecorded(t *testing.T) {
	cfg := buildConfig(t, []int{2, 2}, 0, 11)
	cfg.EvalEvery = 8
	res, err := New().Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Curve) < 4 {
		t.Fatalf("curve has %d points, want >= 4", len(res.Curve))
	}
	last := res.Curve[len(res.Curve)-1]
	if last.Iter != cfg.T {
		t.Errorf("last curve point at %d, want %d", last.Iter, cfg.T)
	}
	for i := 1; i < len(res.Curve); i++ {
		if res.Curve[i].Iter <= res.Curve[i-1].Iter {
			t.Errorf("curve iterations not increasing at %d", i)
		}
	}
}

func TestHierAdMoLearns(t *testing.T) {
	cfg := buildConfig(t, []int{2, 2}, 2, 13)
	cfg.T = 120
	res, err := New().Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalAcc < 0.5 { // chance = 0.25
		t.Errorf("final accuracy %.3f, want >= 0.5", res.FinalAcc)
	}
}

func TestVelocitySignalRuns(t *testing.T) {
	cfg := buildConfig(t, []int{2, 2}, 2, 15)
	res, err := New(WithAdaptSignal(SignalVelocity)).Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalAcc <= 0 {
		t.Errorf("velocity-signal run accuracy = %v", res.FinalAcc)
	}
}

func TestCustomClampCeiling(t *testing.T) {
	cfg := buildConfig(t, []int{2, 2}, 2, 17)
	var maxGamma float64
	alg := New(WithClampCeiling(0.5), WithGammaObserver(func(_ int, g float64) {
		if g > maxGamma {
			maxGamma = g
		}
	}))
	if _, err := alg.Run(cfg); err != nil {
		t.Fatal(err)
	}
	if maxGamma > 0.5 {
		t.Errorf("γℓ = %v exceeded custom ceiling 0.5", maxGamma)
	}
}
