package core

import (
	"fmt"
	"testing"

	"hieradmo/internal/dataset"
	"hieradmo/internal/fl"
	"hieradmo/internal/model"
	"hieradmo/internal/robust"
	"hieradmo/internal/tensor"
)

// benchCNNConfig builds the CNN workload the perf trajectory tracks
// (BENCH_core.json via `make bench`): 8 workers over 2 edges, the paper's
// non-convex aggregation schedule, no curve evaluation so the measurement is
// the round loop itself.
func benchCNNConfig(b *testing.B, workers int) *fl.Config {
	b.Helper()
	gen := dataset.GenConfig{
		Name:          "bench",
		Shape:         dataset.Shape{C: 1, H: 8, W: 8},
		NumClasses:    4,
		TemplateScale: 1.0,
		NoiseStd:      0.6,
		SmoothPasses:  1,
	}
	g, err := dataset.NewGenerator(gen, 1)
	if err != nil {
		b.Fatal(err)
	}
	train, test := g.TrainTest(320, 64, 2)
	shards, err := dataset.PartitionIID(train, 8, 3)
	if err != nil {
		b.Fatal(err)
	}
	hier, err := dataset.Hierarchy(shards, []int{4, 4})
	if err != nil {
		b.Fatal(err)
	}
	m, err := model.NewCNN(gen.Shape, gen.NumClasses)
	if err != nil {
		b.Fatal(err)
	}
	return &fl.Config{
		Model:     m,
		Edges:     hier,
		Test:      test,
		Eta:       0.05,
		Gamma:     0.5,
		GammaEdge: 0.5,
		Tau:       2,
		Pi:        2,
		T:         8,
		BatchSize: 8,
		Workers:   workers,
		Seed:      5,
	}
}

// BenchmarkHierAdMoCNN measures the Algorithm-1 round loop on the CNN
// workload across worker-pool sizes. Results are bit-identical at every
// size (see parallel_test.go); only wall-clock and allocation behaviour may
// differ. On a multi-core host workers=8 should beat workers=1 by the core
// count, up to the reduction phases' sequential share.
func BenchmarkHierAdMoCNN(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			cfg := benchCNNConfig(b, workers)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := New().Run(cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRobustAggregate prices the Byzantine defenses against the
// undefended mean on a realistic edge aggregation (8 reporters, 4096-dim
// model, the two Algorithm-1 line-11/12 components). The robust rules are
// slab-backed: after the first call every rule must run allocation-free,
// so B/op and allocs/op are pinned at zero by the perf gate.
func BenchmarkRobustAggregate(b *testing.B) {
	const dim, n = 4096, 8
	weights := make([]float64, n)
	comps := make([][]tensor.Vector, 2)
	for c := range comps {
		comps[c] = make([]tensor.Vector, n)
	}
	for i := 0; i < n; i++ {
		weights[i] = 1.0 / n
		for c := range comps {
			comps[c][i] = tensor.NewVector(dim)
			for j := 0; j < dim; j++ {
				comps[c][i][j] = float64((i+c)*dim+j%97) - 48
			}
		}
	}
	dsts := []tensor.Vector{tensor.NewVector(dim), tensor.NewVector(dim)}
	prev := []tensor.Vector{tensor.NewVector(dim), tensor.NewVector(dim)}
	for _, spec := range []robust.Spec{
		{Kind: robust.Mean},
		{Kind: robust.Median},
		{Kind: robust.Trimmed, Trim: 0.25},
		{Kind: robust.Clip, Clip: 100},
		{Kind: robust.Cosine, CosMin: -0.5},
	} {
		b.Run(spec.String(), func(b *testing.B) {
			agg, err := robust.New(spec)
			if err != nil {
				b.Fatal(err)
			}
			// Prime the aggregator's scratch slab so the measured loop is
			// the steady state the cluster rounds run in.
			if _, err := agg.Aggregate(dsts, prev, weights, comps); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := agg.Aggregate(dsts, prev, weights, comps); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEdgeCosine tracks the hot-loop fix that folded the gradient
// negation into the cosine reduction: allocs/op must stay at zero.
func BenchmarkEdgeCosine(b *testing.B) {
	const dim, n = 4096, 8
	weights := make([]float64, n)
	gradSums := make([]tensor.Vector, n)
	signals := make([]tensor.Vector, n)
	for i := 0; i < n; i++ {
		weights[i] = 1.0 / n
		gradSums[i] = tensor.NewVector(dim)
		signals[i] = tensor.NewVector(dim)
		for j := 0; j < dim; j++ {
			gradSums[i][j] = float64(i*dim+j%97) - 48
			signals[i][j] = 48 - float64(i*dim+j%89)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := EdgeCosine(weights, gradSums, signals); err != nil {
			b.Fatal(err)
		}
	}
}
