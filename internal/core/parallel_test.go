package core

import (
	"reflect"
	"testing"

	"hieradmo/internal/dataset"
	"hieradmo/internal/fl"
	"hieradmo/internal/model"
)

// buildCNNConfig assembles a small CNN run over an uneven 2-edge hierarchy,
// exercising the pooled nn workspace path the parallel worker phase leans on.
func buildCNNConfig(t *testing.T, seed uint64) *fl.Config {
	t.Helper()
	gen := dataset.GenConfig{
		Name:          "toy",
		Shape:         dataset.Shape{C: 1, H: 8, W: 8},
		NumClasses:    4,
		TemplateScale: 1.0,
		NoiseStd:      0.6,
		SmoothPasses:  1,
	}
	g, err := dataset.NewGenerator(gen, seed)
	if err != nil {
		t.Fatal(err)
	}
	train, test := g.TrainTest(200, 80, seed+1)
	shards, err := dataset.PartitionIID(train, 5, seed+2)
	if err != nil {
		t.Fatal(err)
	}
	hier, err := dataset.Hierarchy(shards, []int{3, 2})
	if err != nil {
		t.Fatal(err)
	}
	m, err := model.NewCNN(gen.Shape, gen.NumClasses)
	if err != nil {
		t.Fatal(err)
	}
	return &fl.Config{
		Model:     m,
		Edges:     hier,
		Test:      test,
		Eta:       0.05,
		Gamma:     0.5,
		GammaEdge: 0.5,
		Tau:       2,
		Pi:        2,
		T:         16,
		BatchSize: 4,
		Seed:      seed,
		EvalEvery: 4,
	}
}

// gammaEvent is one gammaStats observer delivery.
type gammaEvent struct {
	edge  int
	gamma float64
}

// runWithPool executes a fresh algorithm built from opts on a copy of cfg
// with the given worker-pool size, capturing the observer sequence. The
// observer needs no lock: delivery is part of the sequential edge-reduction
// phase, and its order is part of the determinism contract under test.
func runWithPool(t *testing.T, cfg *fl.Config, pool int, build func(...Option) *HierAdMo, opts ...Option) (*fl.Result, []gammaEvent) {
	t.Helper()
	c := *cfg
	c.Workers = pool
	var events []gammaEvent
	alg := build(append(opts, WithGammaObserver(func(edge int, gamma float64) {
		events = append(events, gammaEvent{edge: edge, gamma: gamma})
	}))...)
	res, err := alg.Run(&c)
	if err != nil {
		t.Fatalf("pool=%d: %v", pool, err)
	}
	return res, events
}

// TestParallelPoolSizesBitIdentical is the tentpole acceptance check: the
// same seed must produce bit-identical curves, final metrics, and adapted-γℓ
// observer sequences at worker-pool sizes 1, 2, and 8.
func TestParallelPoolSizesBitIdentical(t *testing.T) {
	cfg := buildCNNConfig(t, 21)
	want, wantEvents := runWithPool(t, cfg, 1, New)
	if len(wantEvents) == 0 {
		t.Fatal("no γℓ adaptations observed at pool=1")
	}
	for _, pool := range []int{2, 8} {
		got, gotEvents := runWithPool(t, cfg, pool, New)
		if !reflect.DeepEqual(want, got) {
			t.Errorf("pool=%d result diverged from sequential run:\nseq: %+v\ngot: %+v", pool, want, got)
		}
		if !reflect.DeepEqual(wantEvents, gotEvents) {
			t.Errorf("pool=%d γℓ observer sequence diverged (%d vs %d events)",
				pool, len(wantEvents), len(gotEvents))
		}
	}
}

// TestParallelPoolSizesBitIdenticalReduced covers HierAdMo-R plus the
// partial-participation and quantized-uplink paths, whose shared RNG streams
// (participation sampling, stochastic rounding) must stay on the sequential
// reduction side of the barrier.
func TestParallelPoolSizesBitIdenticalReduced(t *testing.T) {
	cfg := buildConfig(t, []int{3, 3}, 0, 23)
	opts := []Option{WithParticipation(0.67), WithUplinkQuantization(4)}
	want, wantEvents := runWithPool(t, cfg, 1, NewReduced, opts...)
	for _, pool := range []int{2, 8} {
		got, gotEvents := runWithPool(t, cfg, pool, NewReduced, opts...)
		if !reflect.DeepEqual(want, got) {
			t.Errorf("pool=%d reduced/participation/quant result diverged from sequential run", pool)
		}
		if !reflect.DeepEqual(wantEvents, gotEvents) {
			t.Errorf("pool=%d observer sequence diverged", pool)
		}
	}
}

// TestWorkersConfigValidation pins the knob's contract: negative pool sizes
// are rejected, zero defaults to GOMAXPROCS.
func TestWorkersConfigValidation(t *testing.T) {
	cfg := buildConfig(t, []int{2, 2}, 0, 25)
	cfg.Workers = -1
	if _, err := New().Run(cfg); err == nil {
		t.Error("negative Workers accepted")
	}
	cfg.Workers = 0
	if _, err := New().Run(cfg); err != nil {
		t.Errorf("zero Workers rejected: %v", err)
	}
}
