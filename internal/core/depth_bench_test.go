// Depth-scaling benchmark of the N-tier cluster runtime. It lives in the
// core benchmark suite so the perf gate (make benchdiff against
// BENCH_core.json) tracks the tree engine's cost alongside the kernels,
// but in the external test package: the benchmark drives internal/cluster,
// which imports core.
package core_test

import (
	"fmt"
	"testing"

	"hieradmo/internal/cluster"
	"hieradmo/internal/dataset"
	"hieradmo/internal/fl"
	"hieradmo/internal/model"
	"hieradmo/internal/topology"
	"hieradmo/internal/transport"
)

// depthBenchConfig is the 8-leaf toy workload every depth shares: identical
// shards, model, and horizon, so the benchmark isolates the per-tier
// goroutine, messaging, and aggregation overhead the tree adds.
func depthBenchConfig(b *testing.B) *fl.Config {
	b.Helper()
	genCfg := dataset.GenConfig{
		Name:          "toy",
		Shape:         dataset.Shape{C: 1, H: 5, W: 5},
		NumClasses:    4,
		TemplateScale: 1.0,
		NoiseStd:      0.6,
		SmoothPasses:  1,
	}
	g, err := dataset.NewGenerator(genCfg, 19)
	if err != nil {
		b.Fatal(err)
	}
	train, test := g.TrainTest(320, 80, 20)
	shards, err := dataset.PartitionIID(train, 8, 21)
	if err != nil {
		b.Fatal(err)
	}
	hier, err := dataset.Hierarchy(shards, []int{4, 4})
	if err != nil {
		b.Fatal(err)
	}
	m, err := model.NewLogisticRegression(genCfg.Shape, genCfg.NumClasses)
	if err != nil {
		b.Fatal(err)
	}
	return &fl.Config{
		Model: m, Edges: hier, Test: test,
		Eta: 0.05, Gamma: 0.5, GammaEdge: 0.5,
		Tau: 2, Pi: 2, T: 24, BatchSize: 8, Seed: 19,
	}
}

// BenchmarkDepthScale runs the same workload through 2-, 3-, and 4-level
// aggregation trees over the in-memory transport: how much a full
// distributed round trip costs as tiers are added.
func BenchmarkDepthScale(b *testing.B) {
	specs := []string{
		"cloud:tau=4/worker*8",
		"cloud:tau=4/edge*2:tau=2/worker*4",
		"cloud:tau=8/region*2:tau=4/edge*2:tau=2/worker*2",
	}
	cfg := depthBenchConfig(b)
	for _, spec := range specs {
		topo, err := topology.Parse(spec)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("depth=%d", topo.Depth()), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := cluster.Run(cfg, transport.NewMemoryNetwork(),
					cluster.Options{Adaptive: true, Topology: topo})
				if err != nil {
					b.Fatal(err)
				}
				if res.FinalAcc <= 0 {
					b.Fatal("degenerate run")
				}
			}
		})
	}
}
