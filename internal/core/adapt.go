package core

import (
	"fmt"

	"hieradmo/internal/tensor"
)

// AdaptSignal selects which per-worker interval statistic the edge momentum
// adaptation compares against the accumulated gradient direction.
type AdaptSignal int

const (
	// SignalYSum is the paper's eq. (6): the angle between −Σₜ∇F(i,ℓ)(xᵗ)
	// and Σₜ yᵗ over the edge interval. With the common zero-centred
	// initialization, Σy tracks the accumulated update direction.
	SignalYSum AdaptSignal = iota + 1
	// SignalVelocity is an ablation variant that uses the interval momentum
	// displacement y^{kτ} − y^{(k−1)τ} instead of Σy.
	SignalVelocity
)

// String implements fmt.Stringer for reports.
func (s AdaptSignal) String() string {
	switch s {
	case SignalYSum:
		return "ysum"
	case SignalVelocity:
		return "velocity"
	default:
		return fmt.Sprintf("AdaptSignal(%d)", int(s))
	}
}

// DefaultClampCeiling is the paper's upper clamp on γℓ in eq. (7); values at
// or above 1 would risk divergence, so the paper caps at 0.99.
const DefaultClampCeiling = 0.99

// ClampGamma applies the paper's eq. (7) to a raw cosine: negative agreement
// zeroes the edge momentum, positive agreement is used directly as the
// momentum weight, and values at or above ceiling are clamped to ceiling.
func ClampGamma(cos, ceiling float64) float64 {
	switch {
	case cos <= 0:
		return 0
	case cos >= ceiling:
		return ceiling
	default:
		return cos
	}
}

// EdgeCosine computes eq. (6): the Dᵢ/Dℓ-weighted average over the edge's
// workers of the cosine between the negated accumulated gradient and the
// chosen momentum signal. The negation is folded into the reduction
// (tensor.NegCosine), so no worker's gradient sum is ever cloned.
func EdgeCosine(weights []float64, gradSums, signals []tensor.Vector) (float64, error) {
	if len(weights) != len(gradSums) || len(weights) != len(signals) {
		return 0, fmt.Errorf("core: cosine over %d/%d/%d entries: %w",
			len(weights), len(gradSums), len(signals), tensor.ErrDimMismatch)
	}
	var cos float64
	for i := range weights {
		c, err := tensor.NegCosine(gradSums[i], signals[i])
		if err != nil {
			return 0, fmt.Errorf("core: worker %d cosine: %w", i, err)
		}
		cos += weights[i] * c
	}
	return cos, nil
}
