// Package core implements the paper's primary contribution: HierAdMo, the
// three-tier client–edge–cloud federated-learning algorithm with Nesterov
// momentum at the worker level, a second momentum at the edge level, and
// online adaptation of the edge momentum factor γℓ from the real-time angle
// between accumulated worker gradients and worker momenta (Algorithm 1 with
// eq. (6)–(7)).
//
// The reduced variant HierAdMo-R (fixed γℓ, no adaptation — the paper's
// comparison point for Theorem 5) is the same implementation with adaptation
// disabled.
package core

import (
	"fmt"
	"time"

	"hieradmo/internal/fl"
	"hieradmo/internal/parallel"
	"hieradmo/internal/quant"
	"hieradmo/internal/rng"
	"hieradmo/internal/telemetry"
	"hieradmo/internal/tensor"
)

// HierAdMo executes Algorithm 1. The zero value is not usable; construct
// with New or NewReduced.
type HierAdMo struct {
	adaptive bool
	signal   AdaptSignal
	ceiling  float64
	// participation is the fraction of each edge's workers sampled into
	// every edge aggregation (1 = the paper's full cross-silo
	// participation; smaller values model the cross-device regime the
	// paper leaves as future work). Non-participants keep training locally
	// and re-join at a later aggregation.
	participation float64
	// quantBits > 0 simulates a lossy uplink: every vector a worker ships
	// to its edge passes through a QSGD-style stochastic quantizer of that
	// width (see internal/quant).
	quantBits int
	// gammaStats optionally receives every adapted γℓ value (edge index,
	// value) for diagnostics and tests.
	gammaStats func(edge int, gamma float64)
}

var _ fl.Algorithm = (*HierAdMo)(nil)

// Option customizes a HierAdMo instance.
type Option func(*HierAdMo)

// WithAdaptSignal selects the adaptation statistic (default SignalYSum, the
// paper's eq. (6)).
func WithAdaptSignal(s AdaptSignal) Option {
	return func(h *HierAdMo) { h.signal = s }
}

// WithClampCeiling overrides the γℓ upper clamp (default 0.99, eq. (7)).
func WithClampCeiling(c float64) Option {
	return func(h *HierAdMo) { h.ceiling = c }
}

// WithGammaObserver registers a callback invoked with every adapted γℓ.
func WithGammaObserver(fn func(edge int, gamma float64)) Option {
	return func(h *HierAdMo) { h.gammaStats = fn }
}

// WithParticipation sets the fraction of each edge's workers sampled into
// every edge aggregation (default 1, full participation). Values are
// clamped to (0, 1]; each aggregation always includes at least one worker.
func WithParticipation(frac float64) Option {
	return func(h *HierAdMo) {
		if frac > 0 && frac <= 1 {
			h.participation = frac
		}
	}
}

// WithUplinkQuantization compresses every worker→edge upload through a
// QSGD-style stochastic quantizer of the given bit width (2–8; 0 disables).
// Invalid widths are ignored and surface when the run starts.
func WithUplinkQuantization(bits int) Option {
	return func(h *HierAdMo) { h.quantBits = bits }
}

// New returns the full adaptive HierAdMo algorithm.
func New(opts ...Option) *HierAdMo {
	h := &HierAdMo{
		adaptive:      true,
		signal:        SignalYSum,
		ceiling:       DefaultClampCeiling,
		participation: 1,
	}
	for _, o := range opts {
		o(h)
	}
	return h
}

// NewReduced returns HierAdMo-R: the same two-level momentum scheme with the
// edge momentum factor fixed to the config's GammaEdge.
func NewReduced(opts ...Option) *HierAdMo {
	h := &HierAdMo{
		adaptive:      false,
		signal:        SignalYSum,
		ceiling:       DefaultClampCeiling,
		participation: 1,
	}
	for _, o := range opts {
		o(h)
	}
	return h
}

// Name implements fl.Algorithm.
func (h *HierAdMo) Name() string {
	if h.adaptive {
		return "HierAdMo"
	}
	return "HierAdMo-R"
}

// variant folds the run options living outside fl.Config into the
// checkpoint fingerprint, so a snapshot never resumes under different
// adaptation, participation, or quantization settings.
func (h *HierAdMo) variant() string {
	return fmt.Sprintf("adaptive=%v signal=%d ceiling=%g participation=%g quantBits=%d",
		h.adaptive, h.signal, h.ceiling, h.participation, h.quantBits)
}

// workerState holds one worker's Algorithm-1 state. Every vector is owned
// exclusively by its worker, so distinct workers step concurrently without
// synchronization.
type workerState struct {
	x, y tensor.Vector
	// Interval accumulators received by the edge at t = kτ (Alg. 1 line 9).
	gradSum, ySum tensor.Vector
	// yStart is y at the beginning of the current edge interval, used by the
	// SignalVelocity ablation.
	yStart tensor.Vector
	grad   tensor.Vector //flvet:allow ckptstate -- per-step scratch, overwritten by Grad before use
	// yPrev is per-iteration scratch for the NAG extrapolation; preallocated
	// so the hot loop never clones a model-sized vector.
	yPrev tensor.Vector //flvet:allow ckptstate -- per-step scratch, refilled from y before use
}

// step advances the worker through lines 5–6 of Algorithm 1 (one NAG
// iteration) and extends its interval accumulators. It touches only the
// worker's own vectors and its own sampler stream inside hn.Grad, so the
// round loop fans one goroutine out per worker.
func (w *workerState) step(hn *fl.Harness, cfg *fl.Config, l, i int) error {
	//flvet:allow allocfree -- workspace pool miss only; steady-state gradient calls reuse pooled buffers
	if _, err := hn.Grad(l, i, w.x, w.grad); err != nil {
		return err
	}
	if err := w.gradSum.Add(w.grad); err != nil {
		return err
	}
	if err := w.yPrev.CopyFrom(w.y); err != nil {
		return err
	}
	// y ← x − η∇F(x)
	if err := w.y.CopyFrom(w.x); err != nil {
		return err
	}
	if err := w.y.AXPY(-cfg.Eta, w.grad); err != nil {
		return err
	}
	if err := w.ySum.Add(w.y); err != nil {
		return err
	}
	// x ← y + γ(y − yPrev)
	if err := w.x.CopyFrom(w.y); err != nil {
		return err
	}
	if err := w.x.AXPY(cfg.Gamma, w.y); err != nil {
		return err
	}
	return w.x.AXPY(-cfg.Gamma, w.yPrev)
}

// workerRef addresses one worker in the flattened [edge][worker] grid.
type workerRef struct{ l, i int }

// flattenRefs lists every worker coordinate in fixed (edge, worker) order.
func flattenRefs(workers [][]*workerState) []workerRef {
	var refs []workerRef
	for l := range workers {
		for i := range workers[l] {
			refs = append(refs, workerRef{l: l, i: i})
		}
	}
	return refs
}

// edgeState holds one edge node's Algorithm-1 state.
type edgeState struct {
	xPlus     tensor.Vector // x_{ℓ+}
	yPlus     tensor.Vector // y_{ℓ+} (previous edge aggregation's value)
	yMinus    tensor.Vector // y_{ℓ−} (latest aggregated worker momentum)
	yPlusNext tensor.Vector //flvet:allow ckptstate -- per-round scratch for line 12, overwritten before use
}

// edgeScratch is the preallocated working storage every edgeUpdate call
// reuses: participant weights, the uplink slice headers, and — when the run
// quantizes uploads or adapts γℓ — slab-backed payload and signal vectors.
// Before this existed, every aggregation allocated fresh slices and cloned
// model-sized vectors, which dominated the round loop's allocation profile.
type edgeScratch struct {
	weights  []float64
	ys       []tensor.Vector
	xs       []tensor.Vector
	gradSums []tensor.Vector
	ySums    []tensor.Vector
	signals  []tensor.Vector
	// sigBuf backs signals under adaptation; quantBuf holds the four
	// quantized uplink copies per participant. Both live in the run's slab.
	sigBuf   []tensor.Vector
	quantBuf []tensor.Vector
	// fullIdx is the precomputed 0..maxC-1 participant list used verbatim at
	// full participation (the common case draws nothing from the RNG).
	fullIdx []int
}

// Run implements fl.Algorithm.
func (h *HierAdMo) Run(cfg *fl.Config) (*fl.Result, error) {
	hn, err := fl.NewHarness(cfg)
	if err != nil {
		return nil, err
	}
	res := hn.NewResult(h.Name())

	x0 := hn.InitParams()
	dim := len(x0)

	// All run state — seven vectors per worker, four per edge, the cloud
	// pair, the eval model, and the edge-scratch payload buffers — lives in
	// one pooled slab, so repeated runs (benchmarks, sweeps, tests) recycle
	// a single arena instead of re-allocating hundreds of model-sized
	// vectors, and a worker's vectors stay cache-line aligned and disjoint
	// from its neighbours'.
	numWorkers, maxC := 0, 0
	for l := range cfg.Edges {
		n := len(cfg.Edges[l])
		numWorkers += n
		if n > maxC {
			maxC = n
		}
	}
	vecCount := 7*numWorkers + 4*cfg.NumEdges() + 3
	if h.adaptive {
		vecCount += maxC
	}
	if h.quantBits > 0 {
		vecCount += 4 * maxC
	}
	slab := tensor.GetSlab(vecCount * tensor.Padded(dim))
	defer tensor.PutSlab(slab)
	newVec := func() tensor.Vector { return slab.Alloc(dim) }
	cloneX0 := func() tensor.Vector {
		v := slab.Alloc(dim)
		copy(v, x0)
		return v
	}

	workers := make([][]*workerState, cfg.NumEdges())
	edges := make([]*edgeState, cfg.NumEdges())
	for l := range cfg.Edges {
		workers[l] = make([]*workerState, len(cfg.Edges[l]))
		for i := range cfg.Edges[l] {
			workers[l][i] = &workerState{
				x:       cloneX0(),
				y:       cloneX0(), // y⁰ = x⁰ (line 1)
				gradSum: newVec(),
				ySum:    newVec(),
				yStart:  cloneX0(),
				grad:    newVec(),
				yPrev:   newVec(),
			}
		}
		edges[l] = &edgeState{
			xPlus:     cloneX0(), // x⁰_{ℓ+} = x⁰ (line 2)
			yPlus:     cloneX0(), // y⁰_{ℓ+} = x⁰_{ℓ+} (line 2)
			yMinus:    cloneX0(),
			yPlusNext: newVec(),
		}
	}

	cloudX := cloneX0()
	cloudY := cloneX0()
	evalModel := newVec()
	partRNG := rng.New(cfg.Seed).Split(0x9a47)

	var quantizer *quant.Quantizer
	if h.quantBits > 0 {
		var qerr error
		quantizer, qerr = quant.New(h.quantBits, cfg.Seed)
		if qerr != nil {
			return nil, qerr
		}
	}

	es := &edgeScratch{
		weights:  make([]float64, maxC),
		ys:       make([]tensor.Vector, maxC),
		xs:       make([]tensor.Vector, maxC),
		gradSums: make([]tensor.Vector, maxC),
		ySums:    make([]tensor.Vector, maxC),
		signals:  make([]tensor.Vector, maxC),
		fullIdx:  make([]int, maxC),
	}
	for i := range es.fullIdx {
		es.fullIdx[i] = i
	}
	if h.adaptive {
		es.sigBuf = make([]tensor.Vector, maxC)
		for i := range es.sigBuf {
			es.sigBuf[i] = newVec()
		}
	}
	if quantizer != nil {
		es.quantBuf = make([]tensor.Vector, 4*maxC)
		for i := range es.quantBuf {
			es.quantBuf[i] = newVec()
		}
	}

	// Crash recovery: register every state vector and RNG stream that
	// determines the trajectory, then resume after the last snapshotted
	// iteration (start = 0 without a snapshot). Scratch vectors (grad,
	// yPrev, yPlusNext, evalModel) are overwritten before use and stay out.
	ck, err := fl.NewCheckpointer(hn, h.Name(), h.variant(), res)
	if err != nil {
		return nil, err
	}
	for l := range workers {
		for i, w := range workers[l] {
			ck.Vector(fmt.Sprintf("worker/%d/%d/x", l, i), w.x)
			ck.Vector(fmt.Sprintf("worker/%d/%d/y", l, i), w.y)
			ck.Vector(fmt.Sprintf("worker/%d/%d/gradSum", l, i), w.gradSum)
			ck.Vector(fmt.Sprintf("worker/%d/%d/ySum", l, i), w.ySum)
			ck.Vector(fmt.Sprintf("worker/%d/%d/yStart", l, i), w.yStart)
		}
		ck.Vector(fmt.Sprintf("edge/%d/xPlus", l), edges[l].xPlus)
		ck.Vector(fmt.Sprintf("edge/%d/yPlus", l), edges[l].yPlus)
		ck.Vector(fmt.Sprintf("edge/%d/yMinus", l), edges[l].yMinus)
	}
	ck.Vector("cloud/x", cloudX)
	ck.Vector("cloud/y", cloudY)
	ck.RNG("participation", partRNG)
	if quantizer != nil {
		ck.RNG("quantizer", quantizer.RNG())
	}
	start, err := ck.Restore()
	if err != nil {
		return nil, err
	}

	// Telemetry. Counters and gauges are updated unconditionally (nil-safe,
	// zero-cost on a nil sink); wall-clock reads and trace-field slices are
	// gated so the nil-sink hot loop stays allocation-neutral. Every Emit
	// below runs in sequential code — worker_train events are written from
	// the edge's participant loop, not the goroutine pool — so the event
	// order, and therefore the whole JSONL stream, is deterministic.
	sink := hn.Sink()
	m := sink.M()
	if sink.Tracing() {
		sink.Emit("run_start",
			telemetry.String("alg", h.Name()),
			telemetry.Int("edges", cfg.NumEdges()),
			telemetry.Int("workers", cfg.NumWorkers()),
			telemetry.Int("tau", cfg.Tau),
			telemetry.Int("pi", cfg.Pi),
			telemetry.Int("T", cfg.T),
			telemetry.Int64("seed", int64(cfg.Seed)),
			telemetry.Int("start_t", start))
	}

	refs := flattenRefs(workers)
	poolSize := hn.Workers()

	// The per-edge vector headers are stable for the whole run (every update
	// rewrites contents in place), so the cloud-reduction inputs and the
	// evaluation grid are assembled once, not per aggregation.
	yMinuses := make([]tensor.Vector, len(edges))
	xPluses := make([]tensor.Vector, len(edges))
	for l, e := range edges {
		yMinuses[l] = e.yMinus
		xPluses[l] = e.xPlus
	}
	evalGrid := make([][]tensor.Vector, len(workers))
	for l := range workers {
		evalGrid[l] = make([]tensor.Vector, len(workers[l]))
		for i, w := range workers[l] {
			evalGrid[l][i] = w.x
		}
	}

	for t := start + 1; t <= cfg.T; t++ {
		if sink.Tracing() && (t-1)%cfg.Tau == 0 {
			sink.Emit("round_start",
				telemetry.Int("k", (t-1)/cfg.Tau+1),
				telemetry.Int("t", t))
		}
		var iterStart time.Time
		if sink != nil {
			iterStart = time.Now() //flvet:allow detwall -- wall-clock feeds the timing histograms only, never the trace or training state
		}
		// Worker momentum and model updates (lines 5–6, NAG form). The phase
		// is embarrassingly parallel — each worker owns its state vectors and
		// RNG stream — so it fans out over the goroutine pool; every
		// cross-worker reduction below runs after this barrier in fixed
		// worker-index order, keeping the run bit-identical at any pool size.
		if err := parallel.ForEach(len(refs), func(j int) error {
			r := refs[j]
			return workers[r.l][r.i].step(hn, cfg, r.l, r.i)
		}, parallel.WithWorkers(poolSize)); err != nil {
			return nil, err
		}
		if sink != nil {
			m.IterationSeconds.Observe(time.Since(iterStart).Seconds()) //flvet:allow detwall -- wall-clock feeds the timing histograms only, never the trace or training state
		}
		m.Round.Set(float64(t))

		// Edge update every τ iterations (lines 7–16). The reductions stay
		// sequential in edge-index order: they cost O(L·dim) against the
		// workers' O(N·batch·model) training phase, and the fixed order keeps
		// the participation RNG, the quantizer's rounding stream, and the
		// gammaStats observer delivery deterministic.
		if t%cfg.Tau == 0 {
			for l := range edges {
				var aggStart time.Time
				if sink != nil {
					aggStart = time.Now() //flvet:allow detwall -- wall-clock feeds the timing histograms only, never the trace or training state
				}
				// Full participation includes everyone and draws nothing from
				// the RNG, so the precomputed index list is used verbatim;
				// partial participation keeps the allocating Perm path to
				// preserve the historical RNG consumption exactly.
				idx := es.fullIdx[:len(workers[l])]
				if h.participation < 1 {
					idx = h.sampleParticipants(partRNG, len(workers[l]))
				}
				if err := h.edgeUpdate(hn, cfg, t, l, edges[l], workers[l], idx, quantizer, x0, es); err != nil {
					return nil, err
				}
				if sink != nil {
					m.EdgeAggSeconds.Observe(time.Since(aggStart).Seconds()) //flvet:allow detwall -- wall-clock feeds the timing histograms only, never the trace or training state
				}
			}
		}

		// Cloud update every τπ iterations (lines 17–24).
		if t%(cfg.Tau*cfg.Pi) == 0 {
			var syncStart time.Time
			if sink != nil {
				syncStart = time.Now() //flvet:allow detwall -- wall-clock feeds the timing histograms only, never the trace or training state
			}
			if err := hn.CloudAverage(cloudY, yMinuses); err != nil { // line 18
				return nil, err
			}
			if err := hn.CloudAverage(cloudX, xPluses); err != nil { // line 19
				return nil, err
			}
			// Redistribution (lines 20–23): edges and workers all adopt the
			// cloud-aggregated momentum and model.
			for l, e := range edges {
				if err := e.yMinus.CopyFrom(cloudY); err != nil {
					return nil, err
				}
				if err := e.xPlus.CopyFrom(cloudX); err != nil {
					return nil, err
				}
				for _, w := range workers[l] {
					if err := w.y.CopyFrom(cloudY); err != nil {
						return nil, err
					}
					if err := w.x.CopyFrom(cloudX); err != nil {
						return nil, err
					}
					if err := w.yStart.CopyFrom(cloudY); err != nil {
						return nil, err
					}
				}
			}
			m.CloudSyncs.Inc()
			if sink != nil {
				m.CloudSyncSeconds.Observe(time.Since(syncStart).Seconds()) //flvet:allow detwall -- wall-clock feeds the timing histograms only, never the trace or training state
			}
			if sink.Tracing() {
				sink.Emit("cloud_aggregate",
					telemetry.Int("t", t),
					telemetry.Int("edges", len(edges)))
			}
		}

		if sink.Tracing() && t%cfg.Tau == 0 {
			sink.Emit("round_end",
				telemetry.Int("k", t/cfg.Tau),
				telemetry.Int("t", t))
		}

		if hn.ShouldEval(t) {
			// The global data-weighted worker-model average is the evaluation
			// point between aggregation instants.
			if err := hn.GlobalAverage(evalModel, evalGrid); err != nil {
				return nil, err
			}
			if err := hn.RecordPoint(res, t, evalModel); err != nil {
				return nil, err
			}
		}

		if err := ck.MaybeSnapshot(t); err != nil {
			return nil, err
		}
	}

	// T is a multiple of τπ, so the final cloud model is the run's output.
	if err := hn.Finish(res, cloudX); err != nil {
		return nil, err
	}
	if sink.Tracing() {
		sink.Emit("run_end",
			telemetry.Float("final_acc", res.FinalAcc),
			telemetry.Float("final_loss", res.FinalLoss))
	}
	return res, nil
}

// sampleParticipants returns the sorted worker indices taking part in an
// edge aggregation: all of them at full participation, otherwise a uniform
// sample of max(1, round(frac·C)) workers.
func (h *HierAdMo) sampleParticipants(r *rng.RNG, numWorkers int) []int {
	if h.participation >= 1 {
		idx := make([]int, numWorkers)
		for i := range idx {
			idx[i] = i
		}
		return idx
	}
	k := int(h.participation*float64(numWorkers) + 0.5)
	if k < 1 {
		k = 1
	}
	if k > numWorkers {
		k = numWorkers
	}
	perm := r.Perm(numWorkers)[:k]
	// Sort for deterministic aggregation order.
	for i := 1; i < len(perm); i++ {
		for j := i; j > 0 && perm[j] < perm[j-1]; j-- {
			perm[j], perm[j-1] = perm[j-1], perm[j]
		}
	}
	return perm
}

// edgeUpdate executes lines 9–15 of Algorithm 1 for edge ℓ at t = kτ over
// the participating workers (idx; all workers under full participation).
// Aggregation weights are the data weights renormalized over participants.
// All working storage comes from es; the only remaining allocations are the
// gated trace fields.
func (h *HierAdMo) edgeUpdate(hn *fl.Harness, cfg *fl.Config, t, l int, e *edgeState, ws []*workerState, idx []int, quantizer *quant.Quantizer, x0 tensor.Vector, es *edgeScratch) error {
	sink := hn.Sink()
	if sink.Tracing() {
		// The workers trained on the goroutine pool, but their per-step
		// losses are re-read here, in fixed participant order, so the trace
		// stays deterministic at every pool size.
		for _, i := range idx {
			sink.Emit("worker_train",
				telemetry.Int("t", t),
				telemetry.Int("edge", l),
				telemetry.Int("worker", i),
				telemetry.Float("loss", hn.LastLoss(l, i)))
		}
	}
	weights := es.weights[:len(idx)]
	for j, i := range idx {
		weights[j] = hn.WorkerWeights[l][i]
	}
	// Renormalize only under partial participation: at full participation
	// the data weights are used verbatim so results stay bit-identical to
	// the distributed cluster runtime.
	if len(idx) < len(ws) {
		var wsum float64
		for _, w := range weights {
			wsum += w
		}
		for j := range weights {
			weights[j] /= wsum
		}
	}

	// Assemble the uplink payload (Alg. 1 line 9); a configured quantizer
	// compresses shipped copies (in reusable slab vectors), never the
	// workers' local state.
	ys := es.ys[:len(idx)]
	xs := es.xs[:len(idx)]
	gradSums := es.gradSums[:len(idx)]
	ySums := es.ySums[:len(idx)]
	for j, i := range idx {
		w := ws[i]
		ys[j], xs[j], gradSums[j], ySums[j] = w.y, w.x, w.gradSum, w.ySum
		if quantizer != nil {
			qy, qx, qg, qs := es.quantBuf[4*j], es.quantBuf[4*j+1], es.quantBuf[4*j+2], es.quantBuf[4*j+3]
			if err := qy.CopyFrom(w.y); err != nil {
				return err
			}
			if err := qx.CopyFrom(w.x); err != nil {
				return err
			}
			if err := qg.CopyFrom(w.gradSum); err != nil {
				return err
			}
			if err := qs.CopyFrom(w.ySum); err != nil {
				return err
			}
			ys[j], xs[j], gradSums[j], ySums[j] = qy, qx, qg, qs
			quantizer.Roundtrip(qy)
			quantizer.Roundtrip(qx)
			quantizer.Roundtrip(qg)
			quantizer.Roundtrip(qs)
		}
	}

	// Adapt the edge momentum factor (line 10, eq. (6)–(7)). The Σy
	// statistic is evaluated in the coordinate frame centred at the shared
	// initialization x⁰ (Σ(yᵗ − x⁰)), so it measures the accumulated update
	// direction rather than the arbitrary initial position; for the
	// zero-initialized convex models this is exactly eq. (6). See DESIGN.md.
	gammaEdge := cfg.GammaEdge
	var cosVal float64
	if h.adaptive {
		signals := es.signals[:len(idx)]
		for j, i := range idx {
			sig := es.sigBuf[j]
			switch h.signal {
			case SignalVelocity:
				if err := sig.CopyFrom(ys[j]); err != nil {
					return err
				}
				if err := sig.Sub(ws[i].yStart); err != nil {
					return err
				}
			default:
				if err := sig.CopyFrom(ySums[j]); err != nil {
					return err
				}
				if err := sig.AXPY(-float64(cfg.Tau), x0); err != nil {
					return err
				}
			}
			signals[j] = sig
		}
		cos, err := EdgeCosine(weights, gradSums, signals)
		if err != nil {
			return fmt.Errorf("core: edge %d adapt: %w", l, err)
		}
		gammaEdge = ClampGamma(cos, h.ceiling)
		cosVal = cos
		if gammaEdge == 0 {
			sink.M().GammaZeroed.Inc()
		}
		sink.M().EdgeCosine.Set(cos)
	}
	if h.gammaStats != nil {
		h.gammaStats(l, gammaEdge)
	}
	sink.M().EdgeAggregations.Inc()
	sink.M().GammaEdge.Set(gammaEdge)
	if sink.Tracing() {
		fields := []telemetry.Field{
			telemetry.Int("t", t),
			telemetry.Int("edge", l),
			telemetry.Int("participants", len(idx)),
			telemetry.Float("gamma", gammaEdge),
		}
		if h.adaptive {
			fields = append(fields, telemetry.Float("cos", cosVal))
		}
		sink.Emit("edge_aggregate", fields...)
	}
	if err := tensor.WeightedSum(e.yMinus, weights, ys); err != nil {
		return err
	}

	// Edge momentum update (line 12): y_{ℓ+}^{kτ} reduces to the weighted
	// average of the worker models (tested in hieradmo_test.go).
	if err := tensor.WeightedSum(e.yPlusNext, weights, xs); err != nil {
		return err
	}
	// Edge model update (line 13): x_{ℓ+} ← y⁺ + γℓ(y⁺ − y_{ℓ+}^{(k−1)τ}).
	if err := e.xPlus.CopyFrom(e.yPlusNext); err != nil {
		return err
	}
	if err := e.xPlus.AXPY(gammaEdge, e.yPlusNext); err != nil {
		return err
	}
	if err := e.xPlus.AXPY(-gammaEdge, e.yPlus); err != nil {
		return err
	}
	if err := e.yPlus.CopyFrom(e.yPlusNext); err != nil {
		return err
	}

	// Redistribution to the participating workers (lines 14–15) and
	// interval-state reset; non-participants keep their local state.
	for _, i := range idx {
		w := ws[i]
		if err := w.y.CopyFrom(e.yMinus); err != nil {
			return err
		}
		if err := w.x.CopyFrom(e.xPlus); err != nil {
			return err
		}
		if err := w.yStart.CopyFrom(w.y); err != nil {
			return err
		}
		w.gradSum.Zero()
		w.ySum.Zero()
	}
	return nil
}
