package rng

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("%d/100 identical draws across different seeds", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Split(1)
	c2 := parent.Split(2)
	c1again := parent.Split(1)
	if c1.Uint64() != c1again.Uint64() {
		t.Error("Split is not deterministic in its label")
	}
	if c1.Uint64() == c2.Uint64() {
		t.Error("sibling streams coincide")
	}
}

func TestSplitDoesNotAdvanceParent(t *testing.T) {
	a, b := New(9), New(9)
	_ = a.Split(5)
	if a.Uint64() != b.Uint64() {
		t.Error("Split advanced the parent stream")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestIntnBoundsAndDegenerate(t *testing.T) {
	r := New(5)
	for i := 0; i < 1000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d", v)
		}
	}
	if got := r.Intn(0); got != 0 {
		t.Errorf("Intn(0) = %d, want 0", got)
	}
	if got := r.Intn(-3); got != 0 {
		t.Errorf("Intn(-3) = %d, want 0", got)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(17)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestNormMoments(t *testing.T) {
	r := New(23)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		x := r.Norm()
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Errorf("gaussian mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Errorf("gaussian variance = %v, want ~1", variance)
	}
}

func TestNormMeanStd(t *testing.T) {
	r := New(29)
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.NormMeanStd(10, 2)
	}
	if mean := sum / n; math.Abs(mean-10) > 0.05 {
		t.Errorf("mean = %v, want ~10", mean)
	}
}

func TestLogNormalPositive(t *testing.T) {
	r := New(31)
	for i := 0; i < 10000; i++ {
		if x := r.LogNormal(0, 0.5); x <= 0 {
			t.Fatalf("lognormal variate %v <= 0", x)
		}
	}
}

func TestLogNormalMedian(t *testing.T) {
	r := New(37)
	const n = 100001
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = r.LogNormal(1, 0.5)
	}
	// Median of LogNormal(mu, sigma) is exp(mu).
	below := 0
	want := math.E
	for _, x := range xs {
		if x < want {
			below++
		}
	}
	frac := float64(below) / n
	if math.Abs(frac-0.5) > 0.01 {
		t.Errorf("fraction below exp(mu) = %v, want ~0.5", frac)
	}
}

func TestExpMean(t *testing.T) {
	r := New(41)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Exp(2) // mean should be 1/2
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Errorf("exp mean = %v, want ~0.5", mean)
	}
}

func TestShuffleKeepsElements(t *testing.T) {
	r := New(43)
	xs := []int{1, 2, 3, 4, 5}
	sum := 0
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	for _, x := range xs {
		sum += x
	}
	if sum != 15 {
		t.Errorf("shuffle lost elements: %v", xs)
	}
}

func TestSplitManyLabelsNoObviousCollisions(t *testing.T) {
	// Derived streams for distinct labels must produce distinct first draws
	// (a cheap collision smoke test over a realistic label space).
	parent := New(123)
	seen := make(map[uint64]uint64, 4096)
	for label := uint64(0); label < 4096; label++ {
		v := parent.Split(label).Uint64()
		if prev, dup := seen[v]; dup {
			t.Fatalf("labels %d and %d collide on first draw", prev, label)
		}
		seen[v] = label
	}
}

func TestPermZeroAndOne(t *testing.T) {
	r := New(5)
	if p := r.Perm(0); len(p) != 0 {
		t.Errorf("Perm(0) = %v", p)
	}
	if p := r.Perm(1); len(p) != 1 || p[0] != 0 {
		t.Errorf("Perm(1) = %v", p)
	}
}
