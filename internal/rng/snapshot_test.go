package rng

import "testing"

// TestSnapshotRestoreResumesExactly verifies that restoring a snapshot
// replays the exact variate sequence across every draw kind, including the
// Box-Muller spare cache.
func TestSnapshotRestoreResumesExactly(t *testing.T) {
	r := New(42)
	// Burn an odd number of Norm draws so a spare is cached.
	for i := 0; i < 7; i++ {
		r.Norm()
	}
	r.Uint64()

	snap := r.Snapshot()
	want := []float64{r.Norm(), r.Float64(), r.Norm(), float64(r.Intn(1000)), r.Norm()}

	r2 := New(0)
	r2.Restore(snap)
	got := []float64{r2.Norm(), r2.Float64(), r2.Norm(), float64(r2.Intn(1000)), r2.Norm()}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("draw %d after restore = %v, want %v", i, got[i], want[i])
		}
	}

	// Restoring the original generator itself rewinds it.
	r.Restore(snap)
	if v := r.Norm(); v != want[0] {
		t.Fatalf("rewound Norm = %v, want %v", v, want[0])
	}
}
