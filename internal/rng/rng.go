// Package rng provides a small deterministic pseudo-random number generator
// used throughout the repository so every experiment is exactly reproducible
// from a seed, independent of math/rand's global state or Go version.
//
// The core generator is splitmix64, which has excellent statistical quality
// for simulation workloads and supports cheap, collision-resistant stream
// splitting: each worker, dataset shard, and delay sampler gets its own
// derived stream.
package rng

import "math"

// RNG is a deterministic splitmix64 generator. The zero value is a valid
// generator seeded with 0; prefer New to make seeding explicit.
type RNG struct {
	state uint64
	// spare holds a cached Gaussian variate from the Box-Muller transform.
	spare    float64
	hasSpare bool
}

// New returns a generator seeded with seed.
func New(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Split derives an independent child stream from the parent's seed and a
// label. The parent's own sequence is not advanced, so stream layouts stay
// stable when unrelated draws are added elsewhere.
func (r *RNG) Split(label uint64) *RNG {
	// Mix the label through one splitmix64 round against the parent state.
	z := r.state + 0x9e3779b97f4a7c15*(label+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return &RNG{state: z ^ (z >> 31)}
}

// Snapshot is the complete serializable position of an RNG stream. Restoring
// a snapshot resumes the stream bit-exactly, including the cached Box-Muller
// spare, so checkpointed runs replay the same variate sequence they would
// have drawn uninterrupted.
type Snapshot struct {
	State    uint64
	Spare    float64
	HasSpare bool
}

// Snapshot captures the generator's current position.
func (r *RNG) Snapshot() Snapshot {
	return Snapshot{State: r.state, Spare: r.spare, HasSpare: r.hasSpare}
}

// Restore rewinds (or fast-forwards) the generator to a captured position.
func (r *RNG) Restore(s Snapshot) {
	r.state = s.State
	r.spare = s.Spare
	r.hasSpare = s.HasSpare
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform variate in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform integer in [0, n). n must be positive.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.Uint64() % uint64(n))
}

// Perm returns a uniformly random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle performs a Fisher-Yates shuffle of n elements using swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Norm returns a standard Gaussian variate (mean 0, stddev 1) via the
// Box-Muller transform.
func (r *RNG) Norm() float64 {
	if r.hasSpare {
		r.hasSpare = false
		return r.spare
	}
	var u, v, s float64
	for {
		u = 2*r.Float64() - 1
		v = 2*r.Float64() - 1
		s = u*u + v*v
		if s > 0 && s < 1 {
			break
		}
	}
	f := math.Sqrt(-2 * math.Log(s) / s)
	r.spare = v * f
	r.hasSpare = true
	return u * f
}

// NormMeanStd returns a Gaussian variate with the given mean and standard
// deviation.
func (r *RNG) NormMeanStd(mean, std float64) float64 {
	return mean + std*r.Norm()
}

// LogNormal returns a log-normal variate with the given parameters of the
// underlying normal distribution (mu, sigma). Used by netsim for compute and
// network delay sampling, which are heavy-tailed in practice.
func (r *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*r.Norm())
}

// Exp returns an exponential variate with the given rate (λ > 0).
func (r *RNG) Exp(rate float64) float64 {
	u := r.Float64()
	// Guard u == 0; log(0) would be -Inf.
	if u <= 0 {
		u = math.SmallestNonzeroFloat64
	}
	return -math.Log(u) / rate
}
