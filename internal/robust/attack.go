// Package robust implements the Byzantine fault layer: seeded,
// replayable adversarial attacks injected at the worker-report boundary,
// and robust aggregation rules pluggable at the edge and cloud tiers
// (DESIGN.md §14).
//
// The determinism contract matches the rest of the runtime: every attack
// draw is a pure function of (plan seed, node ID, edge round), so a
// worker that crashes and re-sends a boundary report reproduces the same
// attacked bytes, and a run with a fixed seed and plan replays
// bit-identically across processes, pool sizes, and transports.
package robust

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"hieradmo/internal/rng"
	"hieradmo/internal/tensor"
)

// Attack kinds. SignFlip negates every component of the report
// (gradient/model poisoning); Scale multiplies it by Param
// (scale-amplification); Noise adds i.i.d. Gaussian noise with standard
// deviation Param; Replay re-sends the node's previous boundary report
// under the current round number (stale-replay).
const (
	SignFlip = "signflip"
	Scale    = "scale"
	Noise    = "noise"
	Replay   = "replay"
)

// Attack is one adversarial behaviour assigned to a node over a window
// of edge rounds (the rounds at which workers report, t/τ, 1-based).
// To == 0 leaves the window open to the end of the run. Param is the
// scale factor for Scale and the noise standard deviation for Noise;
// SignFlip and Replay ignore it.
type Attack struct {
	Node  string
	Kind  string
	From  int
	To    int
	Param float64
}

func (a Attack) active(k int) bool {
	return k >= a.From && (a.To == 0 || k <= a.To)
}

// String renders the attack in the spec syntax accepted by ParsePlan.
func (a Attack) String() string {
	s := fmt.Sprintf("%s:%s@%d", a.Kind, a.Node, a.From)
	if a.To != 0 {
		s += fmt.Sprintf("-%d", a.To)
	}
	switch a.Kind {
	case Scale, Noise:
		s += fmt.Sprintf("=%g", a.Param)
	}
	return s
}

func (a Attack) validate() error {
	switch a.Kind {
	case SignFlip, Replay:
	case Scale:
		// Any factor is a legal attack (0 sends zero updates); only the
		// identity is meaningless.
		if a.Param == 1 {
			return fmt.Errorf("robust: scale attack on %s with factor 1 is a no-op", a.Node)
		}
	case Noise:
		if !(a.Param > 0) {
			return fmt.Errorf("robust: noise attack on %s needs sigma > 0, got %g", a.Node, a.Param)
		}
	default:
		return fmt.Errorf("robust: unknown attack kind %q", a.Kind)
	}
	if a.Node == "" {
		return fmt.Errorf("robust: attack %s has empty node", a.Kind)
	}
	if a.From < 1 {
		return fmt.Errorf("robust: attack %s on %s starts at round %d, want >= 1", a.Kind, a.Node, a.From)
	}
	if a.To != 0 && a.To < a.From {
		return fmt.Errorf("robust: attack %s on %s has window %d-%d, want to >= from", a.Kind, a.Node, a.From, a.To)
	}
	return nil
}

// AttackPlan is a replayable Byzantine scenario: a seed for the noise
// draws plus per-node attack windows. The zero plan attacks nobody.
// Plans compose freely with transport.FaultPlan and membership churn
// plans — attacks mutate report contents, faults and churn decide
// whether and when reports arrive.
type AttackPlan struct {
	Seed    uint64
	Attacks []Attack
}

// Empty reports whether the plan injects no attacks.
func (p *AttackPlan) Empty() bool { return p == nil || len(p.Attacks) == 0 }

// Validate checks every attack entry.
func (p *AttackPlan) Validate() error {
	if p == nil {
		return nil
	}
	for _, a := range p.Attacks {
		if err := a.validate(); err != nil {
			return err
		}
	}
	return nil
}

// Signature is a canonical one-line rendering of the plan, stable under
// reordering of equivalent entries, used in checkpoint fingerprints so
// resuming under a different plan is refused.
func (p *AttackPlan) Signature() string {
	if p.Empty() {
		return fmt.Sprintf("seed=%d none", p.seed())
	}
	parts := make([]string, len(p.Attacks))
	for i, a := range p.Attacks {
		parts[i] = a.String()
	}
	sort.Strings(parts)
	return fmt.Sprintf("seed=%d %s", p.seed(), strings.Join(parts, ","))
}

func (p *AttackPlan) seed() uint64 {
	if p == nil {
		return 0
	}
	return p.Seed
}

// Attacker returns the per-node attack executor for node, or nil when
// the plan never touches it. nvec and dim size the replay stash and the
// mutation scratch (the worker boundary reports nvec vectors of dim
// components each).
func (p *AttackPlan) Attacker(node string, nvec, dim int) *Attacker {
	if p.Empty() {
		return nil
	}
	var mine []Attack
	for _, a := range p.Attacks {
		if a.Node == node {
			mine = append(mine, a)
		}
	}
	if len(mine) == 0 {
		return nil
	}
	// Earliest window wins when windows overlap; ties broken by kind so
	// the choice never depends on plan-entry order.
	sort.Slice(mine, func(i, j int) bool {
		if mine[i].From != mine[j].From {
			return mine[i].From < mine[j].From
		}
		return mine[i].Kind < mine[j].Kind
	})
	att := &Attacker{
		node:    node,
		seed:    p.Seed,
		nodeTag: fnvHash(node),
		attacks: mine,
		prev:    make([]tensor.Vector, nvec),
		out:     make([]tensor.Vector, nvec),
	}
	for c := range att.prev {
		att.prev[c] = tensor.NewVector(dim)
		att.out[c] = tensor.NewVector(dim)
	}
	return att
}

// Nodes returns the sorted set of node IDs the plan attacks.
func (p *AttackPlan) Nodes() []string {
	if p.Empty() {
		return nil
	}
	seen := make(map[string]bool, len(p.Attacks))
	var ids []string
	for _, a := range p.Attacks {
		if !seen[a.Node] {
			seen[a.Node] = true
			ids = append(ids, a.Node)
		}
	}
	sort.Strings(ids)
	return ids
}

// fnvHash is FNV-1a over the node ID, the same per-node label derivation
// transport.FaultyNetwork uses for link RNGs.
func fnvHash(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

// Attacker mutates one node's boundary reports according to its plan
// entries. It is owned by a single worker goroutine and is not safe for
// concurrent use. The replay stash (the previous round's honest report)
// is the only mutable state; it is exposed via PrevVectors/PrevRoundPtr
// so the worker checkpoint can register it, keeping resumed runs
// bit-identical.
type Attacker struct {
	node      string
	seed      uint64
	nodeTag   uint64
	attacks   []Attack
	prev      []tensor.Vector
	prevRound int
	out       []tensor.Vector
}

// Node returns the node ID this attacker is bound to.
func (a *Attacker) Node() string { return a.node }

// PrevVectors exposes the replay stash for checkpoint registration.
func (a *Attacker) PrevVectors() []tensor.Vector { return a.prev }

// PrevRoundPtr exposes the stash round (0 = empty) for checkpoint
// registration.
func (a *Attacker) PrevRoundPtr() *int { return &a.prevRound }

// Apply mutates the honest boundary report vecs for edge round k
// (1-based) and returns the vectors to send, the attack kind applied,
// and whether an attack was injected. The returned slice aliases either
// vecs (no attack) or the attacker's internal scratch (valid until the
// next Apply); callers must not retain it across rounds.
//
// Apply is idempotent per round given the same stash: the noise draw is
// derived from (seed, node, k) alone, and the stash is only advanced to
// round k, so a worker that re-sends round k's report after a crash
// produces identical bytes.
func (a *Attacker) Apply(k int, vecs []tensor.Vector) ([]tensor.Vector, string, bool, error) {
	var act *Attack
	for i := range a.attacks {
		if a.attacks[i].active(k) {
			act = &a.attacks[i]
			break
		}
	}
	if act == nil {
		return vecs, "", false, a.stash(k, vecs)
	}
	switch act.Kind {
	case SignFlip:
		for c, v := range vecs {
			if err := a.out[c].CopyFrom(v); err != nil {
				return nil, "", false, err
			}
			a.out[c].Scale(-1)
		}
	case Scale:
		for c, v := range vecs {
			if err := a.out[c].CopyFrom(v); err != nil {
				return nil, "", false, err
			}
			a.out[c].Scale(act.Param)
		}
	case Noise:
		// One RNG per (seed, node, round), consumed in fixed
		// component-then-index order: the draw is independent of any
		// other randomness in the run and replays exactly.
		r := rng.New(a.seed).Split(a.nodeTag).Split(uint64(k))
		for c, v := range vecs {
			out := a.out[c]
			if err := out.CopyFrom(v); err != nil {
				return nil, "", false, err
			}
			for d := range out {
				out[d] += r.NormMeanStd(0, act.Param)
			}
		}
	case Replay:
		if a.prevRound == 0 {
			// Nothing stashed yet: the first boundary has no past to
			// replay, so the report goes out honest and uncounted.
			return vecs, "", false, a.stash(k, vecs)
		}
		for c := range vecs {
			if err := a.out[c].CopyFrom(a.prev[c]); err != nil {
				return nil, "", false, err
			}
		}
	}
	if err := a.stash(k, vecs); err != nil {
		return nil, "", false, err
	}
	return a.out, act.Kind, true, nil
}

func (a *Attacker) stash(k int, vecs []tensor.Vector) error {
	for c, v := range vecs {
		if err := a.prev[c].CopyFrom(v); err != nil {
			return err
		}
	}
	a.prevRound = k
	return nil
}

// ParsePlan parses a comma-separated attack spec into a plan seeded with
// seed. Each entry is kind:node@from[-to][=param], e.g.
//
//	signflip:worker-0-1@3
//	scale:worker-1-0@2-6=10
//	noise:worker-0-0@1=0.5
//	replay:worker-1-1@4-4
//
// Windows are edge rounds (1-based); omitting -to leaves the window open.
// Omitted params default to 10 for scale and 0.1 for noise. An empty
// spec returns nil (no plan).
func ParsePlan(spec string, seed uint64) (*AttackPlan, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	plan := &AttackPlan{Seed: seed}
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		a, err := parseAttack(entry)
		if err != nil {
			return nil, err
		}
		plan.Attacks = append(plan.Attacks, a)
	}
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	return plan, nil
}

func parseAttack(entry string) (Attack, error) {
	var a Attack
	kind, rest, ok := strings.Cut(entry, ":")
	if !ok {
		return a, fmt.Errorf("robust: attack entry %q: want kind:node@from[-to][=param]", entry)
	}
	a.Kind = kind
	if body, param, ok := strings.Cut(rest, "="); ok {
		p, err := strconv.ParseFloat(param, 64)
		if err != nil {
			return a, fmt.Errorf("robust: attack entry %q: bad param: %v", entry, err)
		}
		a.Param = p
		rest = body
	} else {
		switch kind {
		case Scale:
			a.Param = 10
		case Noise:
			a.Param = 0.1
		}
	}
	node, window, ok := strings.Cut(rest, "@")
	if !ok {
		return a, fmt.Errorf("robust: attack entry %q: missing @round window", entry)
	}
	a.Node = node
	from, to, ranged := strings.Cut(window, "-")
	f, err := strconv.Atoi(from)
	if err != nil {
		return a, fmt.Errorf("robust: attack entry %q: bad from round: %v", entry, err)
	}
	a.From = f
	if ranged {
		t, err := strconv.Atoi(to)
		if err != nil {
			return a, fmt.Errorf("robust: attack entry %q: bad to round: %v", entry, err)
		}
		a.To = t
	}
	return a, nil
}
