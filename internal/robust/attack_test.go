package robust

import (
	"reflect"
	"testing"

	"hieradmo/internal/tensor"
)

func vecs(vs ...[]float64) []tensor.Vector {
	out := make([]tensor.Vector, len(vs))
	for i, v := range vs {
		out[i] = tensor.Vector(v)
	}
	return out
}

func TestParsePlanRoundTrip(t *testing.T) {
	plan, err := ParsePlan("signflip:worker-0-1@3, scale:worker-1-0@2-6=10, noise:worker-0-0@1=0.5, replay:worker-1-1@4-4", 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Attacks) != 4 {
		t.Fatalf("got %d attacks, want 4", len(plan.Attacks))
	}
	want := Attack{Node: "worker-1-0", Kind: Scale, From: 2, To: 6, Param: 10}
	if plan.Attacks[1] != want {
		t.Fatalf("attack[1] = %+v, want %+v", plan.Attacks[1], want)
	}
	// Signature is canonical: re-parsing a reordered spec matches.
	reordered, err := ParsePlan("replay:worker-1-1@4-4,noise:worker-0-0@1=0.5,signflip:worker-0-1@3,scale:worker-1-0@2-6=10", 9)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Signature() != reordered.Signature() {
		t.Fatalf("signatures differ:\n%s\n%s", plan.Signature(), reordered.Signature())
	}
	if got := plan.Nodes(); !reflect.DeepEqual(got, []string{"worker-0-0", "worker-0-1", "worker-1-0", "worker-1-1"}) {
		t.Fatalf("Nodes() = %v", got)
	}
}

func TestParsePlanDefaultsAndErrors(t *testing.T) {
	plan, err := ParsePlan("scale:w@1,noise:w2@2", 0)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Attacks[0].Param != 10 || plan.Attacks[1].Param != 0.1 {
		t.Fatalf("default params = %g, %g", plan.Attacks[0].Param, plan.Attacks[1].Param)
	}
	if p, err := ParsePlan("", 1); p != nil || err != nil {
		t.Fatalf("empty spec: %v, %v", p, err)
	}
	for _, bad := range []string{
		"flip:w@1",          // unknown kind
		"signflip:w",        // missing window
		"signflip:w@0",      // round < 1
		"signflip:w@5-2",    // inverted window
		"noise:w@1=0",       // sigma <= 0
		"scale:w@1=1",       // identity scale
		"signflip",          // no colon
		"signflip:w@x",      // bad round
		"scale:w@1=banana",  // bad param
		"signflip:w@1-nope", // bad to-round
	} {
		if _, err := ParsePlan(bad, 1); err == nil {
			t.Errorf("ParsePlan(%q) accepted", bad)
		}
	}
}

func TestAttackerWindowAndKinds(t *testing.T) {
	plan := &AttackPlan{Seed: 7, Attacks: []Attack{
		{Node: "w", Kind: SignFlip, From: 2, To: 3},
		{Node: "w", Kind: Scale, From: 4, Param: 10},
	}}
	if plan.Attacker("other", 2, 3) != nil {
		t.Fatal("unaffected node got an attacker")
	}
	att := plan.Attacker("w", 2, 3)
	honest := vecs([]float64{1, -2, 3}, []float64{0.5, 0, -1})

	out, kind, hit, err := att.Apply(1, honest)
	if err != nil || hit || kind != "" {
		t.Fatalf("round 1: hit=%v kind=%q err=%v", hit, kind, err)
	}
	if &out[0][0] != &honest[0][0] {
		t.Fatal("no-attack round must pass vectors through unmutated")
	}

	out, kind, hit, err = att.Apply(2, honest)
	if err != nil || !hit || kind != SignFlip {
		t.Fatalf("round 2: hit=%v kind=%q err=%v", hit, kind, err)
	}
	if out[0][0] != -1 || out[1][2] != 1 {
		t.Fatalf("signflip output %v", out)
	}
	if honest[0][0] != 1 {
		t.Fatal("signflip mutated the caller's vectors")
	}

	out, _, _, err = att.Apply(4, honest)
	if err != nil {
		t.Fatal(err)
	}
	if out[0][0] != 10 || out[1][0] != 5 {
		t.Fatalf("scale output %v", out)
	}
}

func TestAttackerNoiseDeterministicPerRound(t *testing.T) {
	plan := &AttackPlan{Seed: 11, Attacks: []Attack{{Node: "w", Kind: Noise, From: 1, Param: 0.5}}}
	honest := vecs([]float64{1, 2}, []float64{3, 4})

	a1 := plan.Attacker("w", 2, 2)
	out1, _, _, err := a1.Apply(3, honest)
	if err != nil {
		t.Fatal(err)
	}
	got1 := append(append([]float64{}, out1[0]...), out1[1]...)

	// A fresh attacker (a resumed worker) reproduces round 3 exactly,
	// with no dependence on earlier rounds having been drawn.
	a2 := plan.Attacker("w", 2, 2)
	if _, _, _, err := a2.Apply(1, honest); err != nil {
		t.Fatal(err)
	}
	out2, _, _, err := a2.Apply(3, honest)
	if err != nil {
		t.Fatal(err)
	}
	got2 := append(append([]float64{}, out2[0]...), out2[1]...)
	if !reflect.DeepEqual(got1, got2) {
		t.Fatalf("noise not replayable: %v vs %v", got1, got2)
	}
	if reflect.DeepEqual(got1, []float64{1, 2, 3, 4}) {
		t.Fatal("noise attack did nothing")
	}

	// Different rounds draw different noise.
	out3, _, _, err := a2.Apply(4, honest)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(got2, append(append([]float64{}, out3[0]...), out3[1]...)) {
		t.Fatal("rounds 3 and 4 drew identical noise")
	}
}

func TestAttackerReplay(t *testing.T) {
	plan := &AttackPlan{Seed: 1, Attacks: []Attack{{Node: "w", Kind: Replay, From: 1}}}
	att := plan.Attacker("w", 1, 2)

	// First boundary: nothing to replay, honest and uncounted.
	r1 := vecs([]float64{1, 1})
	out, _, hit, err := att.Apply(1, r1)
	if err != nil || hit {
		t.Fatalf("first boundary: hit=%v err=%v", hit, err)
	}
	if out[0][0] != 1 {
		t.Fatalf("first boundary output %v", out)
	}

	// Second boundary replays round 1's report.
	r2 := vecs([]float64{2, 2})
	var kind string
	out, kind, hit, err = att.Apply(2, r2)
	if err != nil || !hit || kind != Replay {
		t.Fatalf("second boundary: kind=%q hit=%v err=%v", kind, hit, err)
	}
	if out[0][0] != 1 {
		t.Fatalf("replay sent %v, want round-1 bytes", out)
	}

	// Third boundary replays round 2's honest report, not the mutated
	// bytes: the stash always tracks what the node really computed.
	r3 := vecs([]float64{3, 3})
	out, _, _, err = att.Apply(3, r3)
	if err != nil {
		t.Fatal(err)
	}
	if out[0][0] != 2 {
		t.Fatalf("round 3 replayed %v, want round-2 honest bytes", out)
	}

	// Re-sending the same round (crash + resend) is idempotent: the
	// stash holds round 3, and replaying round 3 again re-reads it only
	// if the stash round logic is per-round pure. Simulate by restoring
	// the registered state.
	if *att.PrevRoundPtr() != 3 {
		t.Fatalf("stash round = %d, want 3", *att.PrevRoundPtr())
	}
}

func TestAttackerReplayResendIdempotent(t *testing.T) {
	plan := &AttackPlan{Seed: 1, Attacks: []Attack{{Node: "w", Kind: Replay, From: 2}}}
	att := plan.Attacker("w", 1, 1)
	if _, _, _, err := att.Apply(1, vecs([]float64{10})); err != nil {
		t.Fatal(err)
	}
	first, _, _, err := att.Apply(2, vecs([]float64{20}))
	if err != nil {
		t.Fatal(err)
	}
	v1 := first[0][0]
	// The same boundary re-applied (worker restarted inside the round
	// and recomputed the same honest report) must produce the same
	// bytes. After the first Apply the stash moved to round 2, so a
	// resumed worker restores the checkpointed stash before re-sending;
	// emulate that restore.
	*att.PrevRoundPtr() = 1
	att.PrevVectors()[0][0] = 10
	second, _, _, err := att.Apply(2, vecs([]float64{20}))
	if err != nil {
		t.Fatal(err)
	}
	if second[0][0] != v1 {
		t.Fatalf("re-sent round differs: %g vs %g", second[0][0], v1)
	}
}

func TestPlanSignatureDistinguishesPlans(t *testing.T) {
	p1, _ := ParsePlan("signflip:w@1", 3)
	p2, _ := ParsePlan("signflip:w@1", 4)
	p3, _ := ParsePlan("signflip:w@2", 3)
	var empty *AttackPlan
	sigs := map[string]bool{p1.Signature(): true, p2.Signature(): true, p3.Signature(): true, empty.Signature(): true}
	if len(sigs) != 4 {
		t.Fatalf("signatures collide: %v", sigs)
	}
}
