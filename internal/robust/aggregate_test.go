package robust

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"hieradmo/internal/tensor"
)

func agg(t *testing.T, s Spec) Aggregator {
	t.Helper()
	a, err := New(s)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// one-component cohort helper
func cohort(rows ...[]float64) [][]tensor.Vector {
	return [][]tensor.Vector{vecs(rows...)}
}

func uniform(n int) []float64 {
	w := make([]float64, n)
	for i := range w {
		w[i] = 1 / float64(n)
	}
	return w
}

func TestMeanMatchesWeightedSum(t *testing.T) {
	a := agg(t, Spec{Kind: Mean})
	dst := vecs([]float64{0, 0})
	prev := vecs([]float64{9, 9})
	comps := cohort([]float64{1, 2}, []float64{3, 6})
	weights := []float64{0.25, 0.75}
	st, err := a.Aggregate(dst, prev, weights, comps)
	if err != nil {
		t.Fatal(err)
	}
	want := tensor.NewVector(2)
	if err := tensor.WeightedSum(want, weights, comps[0]); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual([]float64(dst[0]), []float64(want)) {
		t.Fatalf("mean %v, want %v", dst[0], want)
	}
	if st.Participants != 2 || len(st.Rejected) != 0 {
		t.Fatalf("stats %+v", st)
	}
}

func TestMedianOddEvenAndNonFinite(t *testing.T) {
	a := agg(t, Spec{Kind: Median})
	dst := vecs([]float64{0, 0})
	prev := vecs([]float64{0, 0})

	// Odd cohort: exact middle per coordinate.
	st, err := a.Aggregate(dst, prev, uniform(3), cohort(
		[]float64{1, 100}, []float64{2, -5}, []float64{3, 7}))
	if err != nil {
		t.Fatal(err)
	}
	if dst[0][0] != 2 || dst[0][1] != 7 {
		t.Fatalf("odd median %v", dst[0])
	}
	if st.Participants != 3 || len(st.Rejected) != 0 {
		t.Fatalf("stats %+v", st)
	}

	// Even cohort: mean of the two middle values.
	if _, err := a.Aggregate(dst, prev, uniform(4), cohort(
		[]float64{1, 0}, []float64{2, 0}, []float64{10, 0}, []float64{3, 0})); err != nil {
		t.Fatal(err)
	}
	if dst[0][0] != 2.5 {
		t.Fatalf("even median %v", dst[0])
	}

	// A NaN reporter is rejected wholesale, not propagated.
	st, err = a.Aggregate(dst, prev, uniform(3), cohort(
		[]float64{1, 1}, []float64{math.NaN(), 2}, []float64{3, 3}))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(st.Rejected, []int{1}) {
		t.Fatalf("rejected %v", st.Rejected)
	}
	if dst[0][0] != 2 || dst[0][1] != 2 {
		t.Fatalf("median after rejection %v", dst[0])
	}

	// All-NaN cohort errors instead of emitting garbage.
	if _, err := a.Aggregate(dst, prev, uniform(1), cohort([]float64{math.Inf(1), 0})); err == nil {
		t.Fatal("all-non-finite cohort accepted")
	}
}

func TestMedianIgnoresWeights(t *testing.T) {
	a := agg(t, Spec{Kind: Median})
	dst := vecs([]float64{0})
	prev := vecs([]float64{0})
	comps := cohort([]float64{1}, []float64{2}, []float64{900})
	if _, err := a.Aggregate(dst, prev, []float64{0.98, 0.01, 0.01}, comps); err != nil {
		t.Fatal(err)
	}
	if dst[0][0] != 2 {
		t.Fatalf("median %v should ignore weights", dst[0])
	}
}

func TestTrimmedMean(t *testing.T) {
	a := agg(t, Spec{Kind: Trimmed, Trim: 0.25})
	dst := vecs([]float64{0})
	prev := vecs([]float64{0})
	// n=4, g=1: drop min and max, average the middle two.
	if _, err := a.Aggregate(dst, prev, uniform(4), cohort(
		[]float64{-100}, []float64{2}, []float64{4}, []float64{100})); err != nil {
		t.Fatal(err)
	}
	if dst[0][0] != 3 {
		t.Fatalf("trimmed mean %v", dst[0])
	}

	// Trim never eats the whole cohort: single finite survivor wins.
	st, err := a.Aggregate(dst, prev, uniform(2), cohort(
		[]float64{math.Inf(-1)}, []float64{7}))
	if err != nil {
		t.Fatal(err)
	}
	if dst[0][0] != 7 || !reflect.DeepEqual(st.Rejected, []int{0}) {
		t.Fatalf("single survivor: dst=%v stats=%+v", dst[0], st)
	}

	// trim=0 degrades to the unweighted mean.
	a0 := agg(t, Spec{Kind: Trimmed})
	if _, err := a0.Aggregate(dst, prev, uniform(2), cohort([]float64{1}, []float64{3})); err != nil {
		t.Fatal(err)
	}
	if dst[0][0] != 2 {
		t.Fatalf("trim=0 mean %v", dst[0])
	}
}

func TestClipBoundsDeviations(t *testing.T) {
	a := agg(t, Spec{Kind: Clip, Clip: 1})
	dst := vecs([]float64{0}, []float64{0})
	prev := vecs([]float64{1}, []float64{2})
	// Reporter 0 honest (deviation 0.5), reporter 1 poisoned (deviation
	// -101 on component 0).
	comps := [][]tensor.Vector{
		vecs([]float64{1.5}, []float64{-100}),
		vecs([]float64{2.5}, []float64{2}),
	}
	st, err := a.Aggregate(dst, prev, []float64{0.5, 0.5}, comps)
	if err != nil {
		t.Fatal(err)
	}
	// Component 0: 1 + 0.5*0.5 + 0.5*(-1) = 0.75 (poisoned deviation
	// clipped from 101 to 1).
	if math.Abs(dst[0][0]-0.75) > 1e-12 {
		t.Fatalf("clip dst[0] = %v", dst[0])
	}
	// Component 1: reporter 1's deviation is 0 there, nothing clipped:
	// 2 + 0.5*0.5 + 0 = 2.25.
	if math.Abs(dst[1][0]-2.25) > 1e-12 {
		t.Fatalf("clip dst[1] = %v", dst[1])
	}
	if !reflect.DeepEqual(st.Clipped, []int{1}) || st.MaxNorm != 101 {
		t.Fatalf("stats %+v", st)
	}

	// Within the bound, clip is exactly the weighted mean.
	small := [][]tensor.Vector{vecs([]float64{1.2}, []float64{0.8})}
	dst1 := vecs([]float64{0})
	prev1 := vecs([]float64{1})
	if _, err := a.Aggregate(dst1, prev1, []float64{0.5, 0.5}, small); err != nil {
		t.Fatal(err)
	}
	if math.Abs(dst1[0][0]-1.0) > 1e-12 {
		t.Fatalf("unclipped mean %v", dst1[0])
	}
}

func TestClipRejectsNonFiniteAndRenormalizes(t *testing.T) {
	a := agg(t, Spec{Kind: Clip, Clip: 100})
	dst := vecs([]float64{0})
	prev := vecs([]float64{0})
	st, err := a.Aggregate(dst, prev, []float64{0.5, 0.25, 0.25}, cohort(
		[]float64{math.NaN()}, []float64{2}, []float64{4}))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(st.Rejected, []int{0}) {
		t.Fatalf("rejected %v", st.Rejected)
	}
	// Survivor weights renormalize to 0.5/0.5: 0 + 0.5*2 + 0.5*4 = 3.
	if math.Abs(dst[0][0]-3) > 1e-12 {
		t.Fatalf("renormalized clip mean %v", dst[0])
	}
}

func TestCosineFiltersDirectionOutliers(t *testing.T) {
	a := agg(t, Spec{Kind: Cosine})
	dst := vecs([]float64{0, 0})
	prev := vecs([]float64{1, 1})
	// Three honest reporters move toward (+1,+1); the attacker
	// sign-flips, pointing at (-3,-3) from prev.
	comps := cohort(
		[]float64{3, 3}, []float64{3.2, 2.8}, []float64{2.9, 3.1}, []float64{-2, -2})
	st, err := a.Aggregate(dst, prev, uniform(4), comps)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(st.Rejected, []int{3}) {
		t.Fatalf("rejected %v", st.Rejected)
	}
	want := []float64{(3 + 3.2 + 2.9) / 3, (3 + 2.8 + 3.1) / 3}
	for d := range want {
		if math.Abs(dst[0][d]-want[d]) > 1e-12 {
			t.Fatalf("cosine mean %v, want %v", dst[0], want)
		}
	}
}

func TestCosineFallbackWhenAllRejected(t *testing.T) {
	// Two reporters pulling in exactly opposite directions: the mean
	// deviation is zero, every cosine is 0, and a threshold above 0
	// rejects everyone. The filter must fall back to all finite
	// reporters, not error.
	a := agg(t, Spec{Kind: Cosine, CosMin: 0.5})
	dst := vecs([]float64{0})
	prev := vecs([]float64{0})
	st, err := a.Aggregate(dst, prev, uniform(2), cohort([]float64{1}, []float64{-1}))
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Rejected) != 0 {
		t.Fatalf("fallback should clear rejections, got %v", st.Rejected)
	}
	if dst[0][0] != 0 {
		t.Fatalf("fallback mean %v", dst[0])
	}
}

func TestAggregateShapeErrors(t *testing.T) {
	for _, k := range []Kind{Mean, Median, Trimmed, Clip, Cosine} {
		a := agg(t, Spec{Kind: k, Clip: 1})
		// Mismatched report dimension.
		_, err := a.Aggregate(vecs([]float64{0, 0}), vecs([]float64{0, 0}),
			uniform(2), cohort([]float64{1, 2}, []float64{3}))
		if err == nil {
			t.Errorf("%v accepted mismatched dims", k)
		}
		// Empty cohort.
		_, err = a.Aggregate(vecs([]float64{0}), vecs([]float64{0}), nil, [][]tensor.Vector{{}})
		if err == nil {
			t.Errorf("%v accepted empty cohort", k)
		}
		// Component count mismatch.
		_, err = a.Aggregate(vecs([]float64{0}), vecs([]float64{0}, []float64{0}),
			uniform(1), cohort([]float64{1}))
		if err == nil {
			t.Errorf("%v accepted component mismatch", k)
		}
	}
}

func TestAggregateSteadyStateAllocs(t *testing.T) {
	// Robust rules must be slab-friendly: after warm-up, Aggregate
	// allocates nothing.
	n, dim := 8, 64
	weights := uniform(n)
	comps := make([][]tensor.Vector, 2)
	for c := range comps {
		comps[c] = make([]tensor.Vector, n)
		for j := range comps[c] {
			v := tensor.NewVector(dim)
			for d := range v {
				v[d] = float64(c+1) * float64(j*dim+d) * 0.01
			}
			comps[c][j] = v
		}
	}
	dst := []tensor.Vector{tensor.NewVector(dim), tensor.NewVector(dim)}
	prev := []tensor.Vector{tensor.NewVector(dim), tensor.NewVector(dim)}
	for _, s := range []Spec{{Kind: Median}, {Kind: Trimmed, Trim: 0.25}, {Kind: Clip, Clip: 1}, {Kind: Cosine}} {
		a := agg(t, s)
		if _, err := a.Aggregate(dst, prev, weights, comps); err != nil {
			t.Fatal(err)
		}
		avg := testing.AllocsPerRun(50, func() {
			if _, err := a.Aggregate(dst, prev, weights, comps); err != nil {
				t.Fatal(err)
			}
		})
		if avg > 0 {
			t.Errorf("%s: %v allocs per steady-state Aggregate, want 0", a.Name(), avg)
		}
	}
}

func TestSpecStringAndParse(t *testing.T) {
	cases := map[string]Spec{
		"mean":         {Kind: Mean},
		"median":       {Kind: Median},
		"trimmed(0.2)": {Kind: Trimmed, Trim: 0.2},
		"clip(1.5)":    {Kind: Clip, Clip: 1.5},
		"cosine(0)":    {Kind: Cosine},
	}
	for want, s := range cases {
		if s.String() != want {
			t.Errorf("Spec%+v.String() = %q, want %q", s, s.String(), want)
		}
	}
	if err := (Spec{Kind: Trimmed, Trim: 0.5}).Validate(); err == nil {
		t.Error("trim 0.5 accepted")
	}
	if err := (Spec{Kind: Clip}).Validate(); err == nil {
		t.Error("clip 0 accepted")
	}
	if err := (Spec{Kind: Cosine, CosMin: 2}).Validate(); err == nil {
		t.Error("cosine 2 accepted")
	}

	edge, cloud, err := ParseTierSpecs("edge=median, cloud=trimmed", 0.1, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if edge.Kind != Median || cloud.Kind != Trimmed || cloud.Trim != 0.1 {
		t.Fatalf("per-tier parse: edge=%v cloud=%v", edge, cloud)
	}
	edge, cloud, err = ParseTierSpecs("clip", 0, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if edge.Kind != Clip || cloud.Clip != 2 {
		t.Fatalf("single-rule parse: edge=%v cloud=%v", edge, cloud)
	}
	if _, _, err := ParseTierSpecs("edge=magic", 0, 0, 0); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Fatalf("bad rule error %v", err)
	}
	if _, _, err := ParseTierSpecs("tower=median", 0, 0, 0); err == nil {
		t.Fatal("bad tier accepted")
	}
	if _, _, err := ParseTierSpecs("clip", 0, 0, 0); err == nil {
		t.Fatal("clip with zero bound accepted")
	}
}
