package robust

import (
	"fmt"
	"strings"
)

// ParseTierSpecs parses the -aggregator flag into per-tier specs. sel is
// either a single rule name applied at both tiers ("median") or
// per-tier assignments ("edge=median,cloud=mean"); empty means mean
// everywhere. trim, clip, and cosMin parameterize whichever tiers select
// the trimmed, clip, or cosine rules.
func ParseTierSpecs(sel string, trim, clip, cosMin float64) (edge, cloud Spec, err error) {
	mk := func(k Kind) Spec { return Spec{Kind: k, Trim: trim, Clip: clip, CosMin: cosMin} }
	sel = strings.TrimSpace(sel)
	if sel == "" {
		sel = "mean"
	}
	if !strings.Contains(sel, "=") {
		k, err := ParseKind(sel)
		if err != nil {
			return Spec{}, Spec{}, err
		}
		edge, cloud = mk(k), mk(k)
	} else {
		edge, cloud = mk(Mean), mk(Mean)
		for _, part := range strings.Split(sel, ",") {
			part = strings.TrimSpace(part)
			if part == "" {
				continue
			}
			tier, name, ok := strings.Cut(part, "=")
			if !ok {
				return Spec{}, Spec{}, fmt.Errorf("robust: aggregator entry %q: want tier=rule", part)
			}
			k, err := ParseKind(strings.TrimSpace(name))
			if err != nil {
				return Spec{}, Spec{}, err
			}
			switch strings.TrimSpace(tier) {
			case "edge":
				edge = mk(k)
			case "cloud":
				cloud = mk(k)
			default:
				return Spec{}, Spec{}, fmt.Errorf("robust: unknown tier %q (want edge or cloud)", tier)
			}
		}
	}
	if err := edge.Validate(); err != nil {
		return Spec{}, Spec{}, err
	}
	if err := cloud.Validate(); err != nil {
		return Spec{}, Spec{}, err
	}
	return edge, cloud, nil
}
