package robust

import (
	"encoding/binary"
	"math"
	"testing"

	"hieradmo/internal/tensor"
)

// fuzzCohort decodes an arbitrary byte string into an aggregation call:
// cohort size, dimension, a weight vector, and per-reporter values that
// can be any float64 bit pattern (NaN, ±Inf, subnormals). The decoder
// also mis-sizes one report when the input asks for it, so shape
// validation is fuzzed alongside value handling.
func fuzzCohort(data []byte) (dsts, prev []tensor.Vector, weights []float64, comps [][]tensor.Vector, ok bool) {
	if len(data) < 3 {
		return nil, nil, nil, nil, false
	}
	n := int(data[0]%8) + 1   // 1..8 reporters
	dim := int(data[1]%6) + 1 // 1..6 coordinates
	misshape := data[2]&1 == 1
	data = data[3:]

	f64 := func() float64 {
		if len(data) < 8 {
			// Exhausted input degrades to a fixed finite value rather
			// than rejecting the case: short inputs still exercise the
			// rules.
			return 0.5
		}
		v := math.Float64frombits(binary.LittleEndian.Uint64(data))
		data = data[8:]
		return v
	}

	weights = make([]float64, n)
	for j := range weights {
		// Weights come from the harness/membership schedule, which only
		// ever emits finite non-negative values; keep them in range so
		// the fuzz targets the report values.
		w := math.Abs(f64())
		if !(w < math.MaxFloat64) {
			w = 1
		}
		weights[j] = w
	}

	comps = make([][]tensor.Vector, 2)
	for c := range comps {
		comps[c] = make([]tensor.Vector, n)
		for j := range comps[c] {
			d := dim
			if misshape && c == 1 && j == n-1 {
				d = dim + 1
			}
			v := tensor.NewVector(d)
			for i := range v {
				v[i] = f64()
			}
			comps[c][j] = v
		}
	}
	dsts = []tensor.Vector{tensor.NewVector(dim), tensor.NewVector(dim)}
	prev = []tensor.Vector{tensor.NewVector(dim), tensor.NewVector(dim)}
	for c := range prev {
		for i := range prev[c] {
			// prev models the node's previous aggregate, which is
			// trusted finite state in the runtime; keep it finite so
			// the targets fuzz report handling, not precondition
			// violations.
			v := f64()
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 0
			}
			prev[c][i] = v
		}
	}
	return dsts, prev, weights, comps, true
}

// fuzzAggregate drives one rule over a decoded cohort and enforces the
// robustness contract: no panic ever, and on success the output carries
// no non-finite values (rejection, not propagation) when the previous
// aggregate was finite.
func fuzzAggregate(t *testing.T, a Aggregator, data []byte) {
	dsts, prev, weights, comps, ok := fuzzCohort(data)
	if !ok {
		return
	}
	st, err := a.Aggregate(dsts, prev, weights, comps)
	if err != nil {
		return
	}
	if st.Participants != len(weights) {
		t.Fatalf("participants %d, want %d", st.Participants, len(weights))
	}
	for i := 1; i < len(st.Rejected); i++ {
		if st.Rejected[i-1] >= st.Rejected[i] {
			t.Fatalf("rejected not ascending: %v", st.Rejected)
		}
	}
	for c := range dsts {
		if !dsts[c].IsFinite() {
			t.Fatalf("%s propagated non-finite values: comp %d = %v (rejected %v)",
				a.Name(), c, dsts[c], st.Rejected)
		}
	}
}

func FuzzMedianAggregate(f *testing.F) {
	f.Add([]byte{2, 3, 0})
	f.Add([]byte{0, 0, 1})
	seed := make([]byte, 3+8*20)
	seed[0], seed[1] = 4, 2
	binary.LittleEndian.PutUint64(seed[3:], math.Float64bits(math.NaN()))
	binary.LittleEndian.PutUint64(seed[11:], math.Float64bits(math.Inf(1)))
	f.Add(seed)
	a, err := New(Spec{Kind: Median})
	if err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		fuzzAggregate(t, a, data)
	})
}

func FuzzTrimmedMean(f *testing.F) {
	f.Add([]byte{7, 4, 0})
	f.Add([]byte{1, 1, 1})
	a, err := New(Spec{Kind: Trimmed, Trim: 0.25})
	if err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		fuzzAggregate(t, a, data)
	})
}
