package robust

import (
	"fmt"
	"sort"

	"hieradmo/internal/tensor"
)

// Kind selects an aggregation rule.
type Kind int

const (
	// Mean is the undefended weighted average — the HierAdMo baseline.
	// The cluster runtime keeps its original tensor.WeightedSum code
	// path for Mean so undefended runs stay byte-identical to pre-robust
	// builds; MeanAggregator exists for benchmarks and tests.
	Mean Kind = iota
	// Median takes the coordinate-wise median across reporters
	// (weight-agnostic, the classic Byzantine-robust rule).
	Median
	// Trimmed drops the Trim fraction of extreme values per coordinate
	// from each tail, then averages the rest (coordinate-wise trimmed
	// mean, weight-agnostic).
	Trimmed
	// Clip bounds each reporter's deviation from the previous aggregate
	// to L2 norm Clip before weighted averaging (norm-clipping).
	Clip
	// Cosine rejects reporters whose primary-component deviation points
	// away from the cohort's coordinate-wise median deviation — the same
	// direction-agreement geometry core.EdgeCosine uses for γℓ
	// adaptation, turned into an outlier filter. The reference is a
	// median (not a weighted mean) so a single large-norm attacker
	// cannot hijack the reference and get the honest majority rejected.
	Cosine
)

// String returns the CLI name of the kind.
func (k Kind) String() string {
	switch k {
	case Mean:
		return "mean"
	case Median:
		return "median"
	case Trimmed:
		return "trimmed"
	case Clip:
		return "clip"
	case Cosine:
		return "cosine"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// ParseKind parses a CLI aggregator name.
func ParseKind(name string) (Kind, error) {
	switch name {
	case "mean":
		return Mean, nil
	case "median":
		return Median, nil
	case "trimmed":
		return Trimmed, nil
	case "clip":
		return Clip, nil
	case "cosine":
		return Cosine, nil
	}
	return 0, fmt.Errorf("robust: unknown aggregator %q (want mean|median|trimmed|clip|cosine)", name)
}

// Spec is a fully-parameterized aggregator choice for one tier. The zero
// Spec is plain mean aggregation.
type Spec struct {
	Kind   Kind
	Trim   float64 // Trimmed: per-tail fraction in [0, 0.5)
	Clip   float64 // Clip: max L2 deviation norm, > 0
	CosMin float64 // Cosine: minimum cosine against the cohort's median deviation, in [-1, 1]
}

// Robust reports whether the spec selects anything other than plain mean.
func (s Spec) Robust() bool { return s.Kind != Mean }

// String renders the spec canonically; it feeds checkpoint fingerprints,
// so equal specs must render equally.
func (s Spec) String() string {
	switch s.Kind {
	case Trimmed:
		return fmt.Sprintf("trimmed(%g)", s.Trim)
	case Clip:
		return fmt.Sprintf("clip(%g)", s.Clip)
	case Cosine:
		return fmt.Sprintf("cosine(%g)", s.CosMin)
	}
	return s.Kind.String()
}

// Validate checks the spec's parameters.
func (s Spec) Validate() error {
	switch s.Kind {
	case Mean, Median:
	case Trimmed:
		if s.Trim < 0 || s.Trim >= 0.5 {
			return fmt.Errorf("robust: trim fraction %g out of [0, 0.5)", s.Trim)
		}
	case Clip:
		if !(s.Clip > 0) {
			return fmt.Errorf("robust: clip norm must be > 0, got %g", s.Clip)
		}
	case Cosine:
		if s.CosMin < -1 || s.CosMin > 1 {
			return fmt.Errorf("robust: cosine threshold %g out of [-1, 1]", s.CosMin)
		}
	default:
		return fmt.Errorf("robust: unknown aggregator kind %d", int(s.Kind))
	}
	return nil
}

// Stats reports what one Aggregate call did. Rejected and Clipped are
// ascending reporter slot indices into the call's cohort; both alias
// aggregator-owned scratch valid until the next call.
type Stats struct {
	Participants int
	Rejected     []int
	Clipped      []int
	// MaxNorm is the largest pre-clip deviation norm seen (Clip only).
	MaxNorm float64
}

// Aggregator reduces a cohort of reports into new aggregate state. One
// call reduces ncomp parallel components (e.g. the edge's y and x
// streams): dsts[c] receives the aggregate of comps[c][0..n-1], with
// prev[c] the previous aggregate (the deviation reference for Clip and
// Cosine). dsts must not alias prev or any comps entry. weights[j] is
// reporter j's cohort weight; the weight-sensitive rules renormalize
// over survivors, the coordinate-wise rules (Median, Trimmed) ignore
// weights by construction.
//
// Every rule except Mean rejects reporters carrying non-finite values
// instead of propagating them; a cohort with no finite reporter is an
// error. Reductions run in fixed slot order, so results are independent
// of goroutine scheduling and pool size.
//
// Implementations reuse internal scratch and are not safe for
// concurrent use; the cluster gives each edge/cloud node its own.
type Aggregator interface {
	Name() string
	Aggregate(dsts, prev []tensor.Vector, weights []float64, comps [][]tensor.Vector) (Stats, error)
}

// New builds the aggregator for spec. All kinds are constructible,
// including Mean (used by benchmarks; the cluster keeps its own mean
// path for bit-identity with pre-robust builds).
func New(s Spec) (Aggregator, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	switch s.Kind {
	case Mean:
		return &meanAgg{}, nil
	case Median:
		return &medianAgg{}, nil
	case Trimmed:
		return &trimmedAgg{trim: s.Trim}, nil
	case Clip:
		return &clipAgg{clip: s.Clip}, nil
	case Cosine:
		return &cosineAgg{cosMin: s.CosMin}, nil
	}
	return nil, fmt.Errorf("robust: unknown aggregator kind %d", int(s.Kind))
}

// checkShape validates one Aggregate call; every rule shares it so
// malformed cohorts (mismatched lengths, empty cohorts) surface as
// wrapped errors, never panics — the fuzz targets pin this.
func checkShape(dsts, prev []tensor.Vector, weights []float64, comps [][]tensor.Vector) error {
	if len(dsts) == 0 {
		return fmt.Errorf("robust: no components to aggregate")
	}
	if len(prev) != len(dsts) || len(comps) != len(dsts) {
		return fmt.Errorf("robust: component count mismatch: dsts=%d prev=%d comps=%d",
			len(dsts), len(prev), len(comps))
	}
	n := len(weights)
	if n == 0 {
		return fmt.Errorf("robust: empty cohort")
	}
	for c := range dsts {
		dim := len(dsts[c])
		if len(prev[c]) != dim {
			return fmt.Errorf("robust: component %d: prev dim %d, want %d", c, len(prev[c]), dim)
		}
		if len(comps[c]) != n {
			return fmt.Errorf("robust: component %d: %d reports for %d weights", c, len(comps[c]), n)
		}
		for j, v := range comps[c] {
			if len(v) != dim {
				return fmt.Errorf("robust: component %d report %d: dim %d, want %d", c, j, len(v), dim)
			}
		}
	}
	return nil
}

// checkFiniteOutput guards the reduction result: even all-finite inputs
// can overflow a sum to ±Inf, and the robust rules' contract is to
// error, never to propagate non-finite values downstream. (The mean
// baseline is exempt — it reproduces the undefended WeightedSum
// arithmetic exactly.)
func checkFiniteOutput(name string, dsts []tensor.Vector) error {
	for c := range dsts {
		if !dsts[c].IsFinite() {
			return fmt.Errorf("robust: %s: aggregate overflowed to non-finite values in component %d", name, c)
		}
	}
	return nil
}

// scratch holds the per-call working state shared by the rules. Slices
// grow once to cohort/dim size and are reused across rounds
// (slab-friendly: steady-state Aggregate calls allocate nothing).
type scratch struct {
	ok       []bool
	rejected []int
	clipped  []int
	vals     []float64
	w        []float64
	vs       []tensor.Vector
	dev      tensor.Vector
	mu       tensor.Vector
}

func (s *scratch) reset(n int) {
	if cap(s.ok) < n {
		s.ok = make([]bool, n)
		s.rejected = make([]int, 0, n)
		s.clipped = make([]int, 0, n)
		s.w = make([]float64, 0, n)
		s.vs = make([]tensor.Vector, 0, n)
		s.vals = make([]float64, 0, n)
	}
	s.ok = s.ok[:n]
	for j := range s.ok {
		s.ok[j] = true
	}
	s.rejected = s.rejected[:0]
	s.clipped = s.clipped[:0]
}

func (s *scratch) vecs(dim int) {
	if len(s.dev) != dim {
		s.dev = tensor.NewVector(dim)
		s.mu = tensor.NewVector(dim)
	}
}

// rejectNonFinite marks every reporter with a NaN/Inf in any component
// as rejected. Slots are scanned in ascending order so Rejected comes
// out sorted.
func (s *scratch) rejectNonFinite(comps [][]tensor.Vector, n int) {
	for j := 0; j < n; j++ {
		for c := range comps {
			if !comps[c][j].IsFinite() {
				s.ok[j] = false
				s.rejected = append(s.rejected, j)
				break
			}
		}
	}
}

func (s *scratch) survivors() int {
	n := 0
	for _, ok := range s.ok {
		if ok {
			n++
		}
	}
	return n
}

// renorm fills s.w with weights renormalized over surviving slots
// (indexed densely in slot order). A zero surviving mass is an error:
// the rule would otherwise divide by zero.
func (s *scratch) renorm(weights []float64) error {
	s.w = s.w[:0]
	sum := 0.0
	for j, ok := range s.ok {
		if ok {
			sum += weights[j]
		}
	}
	if !(sum > 0) {
		return fmt.Errorf("robust: surviving cohort weight %g, cannot renormalize", sum)
	}
	for j, ok := range s.ok {
		if ok {
			s.w = append(s.w, weights[j]/sum)
		}
	}
	return nil
}

// meanAgg is the undefended baseline: tensor.WeightedSum per component.
// It neither rejects nor clips — exactly the arithmetic the cluster's
// built-in mean path performs.
type meanAgg struct{}

func (*meanAgg) Name() string { return "mean" }

func (*meanAgg) Aggregate(dsts, prev []tensor.Vector, weights []float64, comps [][]tensor.Vector) (Stats, error) {
	if err := checkShape(dsts, prev, weights, comps); err != nil {
		return Stats{}, err
	}
	for c := range dsts {
		if err := tensor.WeightedSum(dsts[c], weights, comps[c]); err != nil {
			return Stats{}, err
		}
	}
	return Stats{Participants: len(weights)}, nil
}

// insertionSort sorts the tiny per-coordinate gather buffer in place.
// Cohorts are small (fan-in per edge), so this beats sort.Float64s and
// allocates nothing.
func insertionSort(a []float64) {
	for i := 1; i < len(a); i++ {
		v := a[i]
		j := i - 1
		for j >= 0 && a[j] > v {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = v
	}
}

type medianAgg struct{ s scratch }

func (*medianAgg) Name() string { return "median" }

func (m *medianAgg) Aggregate(dsts, prev []tensor.Vector, weights []float64, comps [][]tensor.Vector) (Stats, error) {
	if err := checkShape(dsts, prev, weights, comps); err != nil {
		return Stats{}, err
	}
	n := len(weights)
	m.s.reset(n)
	m.s.rejectNonFinite(comps, n)
	ns := m.s.survivors()
	if ns == 0 {
		return Stats{}, fmt.Errorf("robust: median: no finite reports in cohort of %d", n)
	}
	for c := range dsts {
		for d := range dsts[c] {
			vals := m.s.vals[:0]
			for j := 0; j < n; j++ {
				if m.s.ok[j] {
					vals = append(vals, comps[c][j][d])
				}
			}
			insertionSort(vals)
			mid := ns / 2
			if ns%2 == 1 {
				dsts[c][d] = vals[mid]
			} else {
				dsts[c][d] = (vals[mid-1] + vals[mid]) / 2
			}
			m.s.vals = vals
		}
	}
	if err := checkFiniteOutput("median", dsts); err != nil {
		return Stats{}, err
	}
	return Stats{Participants: n, Rejected: m.s.rejected}, nil
}

type trimmedAgg struct {
	trim float64
	s    scratch
}

func (*trimmedAgg) Name() string { return "trimmed" }

func (m *trimmedAgg) Aggregate(dsts, prev []tensor.Vector, weights []float64, comps [][]tensor.Vector) (Stats, error) {
	if err := checkShape(dsts, prev, weights, comps); err != nil {
		return Stats{}, err
	}
	n := len(weights)
	m.s.reset(n)
	m.s.rejectNonFinite(comps, n)
	ns := m.s.survivors()
	if ns == 0 {
		return Stats{}, fmt.Errorf("robust: trimmed: no finite reports in cohort of %d", n)
	}
	// Trim g values per tail; never trim everything — a single-survivor
	// cohort degrades to that survivor's value.
	g := int(m.trim * float64(ns))
	if g > (ns-1)/2 {
		g = (ns - 1) / 2
	}
	for c := range dsts {
		for d := range dsts[c] {
			vals := m.s.vals[:0]
			for j := 0; j < n; j++ {
				if m.s.ok[j] {
					vals = append(vals, comps[c][j][d])
				}
			}
			insertionSort(vals)
			sum := 0.0
			for _, v := range vals[g : ns-g] {
				sum += v
			}
			dsts[c][d] = sum / float64(ns-2*g)
			m.s.vals = vals
		}
	}
	if err := checkFiniteOutput("trimmed", dsts); err != nil {
		return Stats{}, err
	}
	return Stats{Participants: n, Rejected: m.s.rejected}, nil
}

type clipAgg struct {
	clip float64
	s    scratch
}

func (*clipAgg) Name() string { return "clip" }

func (m *clipAgg) Aggregate(dsts, prev []tensor.Vector, weights []float64, comps [][]tensor.Vector) (Stats, error) {
	if err := checkShape(dsts, prev, weights, comps); err != nil {
		return Stats{}, err
	}
	n := len(weights)
	m.s.reset(n)
	m.s.vecs(len(dsts[0]))
	m.s.rejectNonFinite(comps, n)
	// A reporter's deviation norm can still overflow to +Inf even when
	// every value is finite; reject those slots too (ascending merge
	// keeps Rejected sorted because both scans go in slot order).
	for j := 0; j < n; j++ {
		if !m.s.ok[j] {
			continue
		}
		for c := range comps {
			if err := m.s.dev.CopyFrom(comps[c][j]); err != nil {
				return Stats{}, err
			}
			if err := m.s.dev.Sub(prev[c]); err != nil {
				return Stats{}, err
			}
			if !m.s.dev.IsFinite() {
				m.s.ok[j] = false
				m.s.rejected = insertSorted(m.s.rejected, j)
				break
			}
		}
	}
	if m.s.survivors() == 0 {
		return Stats{}, fmt.Errorf("robust: clip: no finite reports in cohort of %d", n)
	}
	if err := m.s.renorm(weights); err != nil {
		return Stats{}, err
	}
	maxNorm := 0.0
	for c := range dsts {
		if err := dsts[c].CopyFrom(prev[c]); err != nil {
			return Stats{}, err
		}
	}
	wi := 0
	for j := 0; j < n; j++ {
		if !m.s.ok[j] {
			continue
		}
		w := m.s.w[wi]
		wi++
		clippedJ := false
		for c := range dsts {
			if err := m.s.dev.CopyFrom(comps[c][j]); err != nil {
				return Stats{}, err
			}
			if err := m.s.dev.Sub(prev[c]); err != nil {
				return Stats{}, err
			}
			norm := m.s.dev.Norm()
			scale := 1.0
			if norm > m.clip {
				scale = m.clip / norm
				clippedJ = true
				if norm > maxNorm {
					maxNorm = norm
				}
			}
			if err := dsts[c].AXPY(w*scale, m.s.dev); err != nil {
				return Stats{}, err
			}
		}
		if clippedJ {
			m.s.clipped = append(m.s.clipped, j)
		}
	}
	if err := checkFiniteOutput("clip", dsts); err != nil {
		return Stats{}, err
	}
	return Stats{Participants: n, Rejected: m.s.rejected, Clipped: m.s.clipped, MaxNorm: maxNorm}, nil
}

// insertSorted inserts j into ascending slice a (no duplicates expected).
func insertSorted(a []int, j int) []int {
	i := sort.SearchInts(a, j)
	a = append(a, 0)
	copy(a[i+1:], a[i:])
	a[i] = j
	return a
}

type cosineAgg struct {
	cosMin float64
	s      scratch
}

func (*cosineAgg) Name() string { return "cosine" }

func (m *cosineAgg) Aggregate(dsts, prev []tensor.Vector, weights []float64, comps [][]tensor.Vector) (Stats, error) {
	if err := checkShape(dsts, prev, weights, comps); err != nil {
		return Stats{}, err
	}
	n := len(weights)
	m.s.reset(n)
	m.s.vecs(len(dsts[0]))
	m.s.rejectNonFinite(comps, n)
	ns := m.s.survivors()
	if ns == 0 {
		return Stats{}, fmt.Errorf("robust: cosine: no finite reports in cohort of %d", n)
	}
	finiteRejected := len(m.s.rejected)
	// Reference direction: the coordinate-wise median deviation of the
	// primary component (the y stream at both tiers) from the previous
	// aggregate — the same direction signal core.EdgeCosine compares
	// gradient sums against, here applied across reporters. The median
	// (never a weighted mean) is the reference because a single
	// large-norm attacker would dominate a mean, flip the reference
	// toward itself, and get the honest majority rejected instead.
	for d := range m.s.mu {
		vals := m.s.vals[:0]
		for j := 0; j < n; j++ {
			if m.s.ok[j] {
				vals = append(vals, comps[0][j][d]-prev[0][d])
			}
		}
		insertionSort(vals)
		mid := ns / 2
		if ns%2 == 1 {
			m.s.mu[d] = vals[mid]
		} else {
			m.s.mu[d] = (vals[mid-1] + vals[mid]) / 2
		}
		m.s.vals = vals
	}
	for j := 0; j < n; j++ {
		if !m.s.ok[j] {
			continue
		}
		if err := m.s.dev.CopyFrom(comps[0][j]); err != nil {
			return Stats{}, err
		}
		if err := m.s.dev.Sub(prev[0]); err != nil {
			return Stats{}, err
		}
		// tensor.Cosine maps degenerate (zero-norm or overflowing)
		// pairs to 0, so a no-progress round only filters reporters
		// when CosMin > 0.
		cos, err := tensor.Cosine(m.s.dev, m.s.mu)
		if err != nil {
			return Stats{}, err
		}
		if cos < m.cosMin {
			m.s.ok[j] = false
		}
	}
	if m.s.survivors() == 0 {
		// The filter found no directional consensus (e.g. attackers are
		// the majority, or the mean itself was hijacked). Deterministic
		// fallback: keep every finite reporter rather than fail the
		// round — the filter degrades to plain mean, which the caller
		// can see via Rejected shrinking back.
		ri, rejected := 0, m.s.rejected[:finiteRejected]
		for j := 0; j < n; j++ {
			m.s.ok[j] = true
			if ri < len(rejected) && rejected[ri] == j {
				m.s.ok[j] = false
				ri++
			}
		}
	}
	// Rebuild the rejected list from the final mask so it stays sorted
	// regardless of which pass rejected each slot.
	m.s.rejected = m.s.rejected[:0]
	for j := 0; j < n; j++ {
		if !m.s.ok[j] {
			m.s.rejected = append(m.s.rejected, j)
		}
	}
	if err := m.s.renorm(weights); err != nil {
		return Stats{}, err
	}
	for c := range dsts {
		vs := m.s.vs[:0]
		for j := 0; j < n; j++ {
			if m.s.ok[j] {
				vs = append(vs, comps[c][j])
			}
		}
		m.s.vs = vs
		if err := tensor.WeightedSum(dsts[c], m.s.w, vs); err != nil {
			return Stats{}, err
		}
	}
	if err := checkFiniteOutput("cosine", dsts); err != nil {
		return Stats{}, err
	}
	return Stats{Participants: n, Rejected: m.s.rejected}, nil
}
