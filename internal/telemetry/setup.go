package telemetry

// Setup wires the observability CLI knobs shared by the commands into one
// Sink: traceOut (when non-empty) streams JSONL events to that file, and
// metricsAddr (when non-empty) serves Prometheus /metrics plus /debug/pprof
// on that address. It returns the sink (nil when both knobs are empty — the
// zero-cost fast path), the actually bound metrics address ("" when
// disabled; useful with ":0"), and a cleanup that flushes the trace and
// stops the server.
func Setup(traceOut, metricsAddr string) (*Sink, string, func() error, error) {
	if traceOut == "" && metricsAddr == "" {
		return nil, "", func() error { return nil }, nil
	}
	var tr *Tracer
	if traceOut != "" {
		var err error
		if tr, err = NewFileTracer(traceOut); err != nil {
			return nil, "", nil, err
		}
	}
	sink := New(nil, tr)
	closeTrace := func() error {
		if tr == nil {
			return nil
		}
		return tr.Close()
	}
	if metricsAddr == "" {
		return sink, "", closeTrace, nil
	}
	addr, stop, err := Serve(metricsAddr, sink.Registry())
	if err != nil {
		closeTrace()
		return nil, "", nil, err
	}
	cleanup := func() error {
		serr := stop()
		if terr := closeTrace(); terr != nil {
			return terr
		}
		return serr
	}
	return sink, addr, cleanup, nil
}
