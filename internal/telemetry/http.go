package telemetry

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
)

// Handler serves the registry at /metrics (Prometheus text format) and
// the standard pprof endpoints under /debug/pprof/. It is what flnode
// and flcluster mount behind -metrics-addr.
func Handler(reg *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if reg != nil {
			_ = reg.WritePrometheus(w)
		}
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve starts an HTTP server for Handler(reg) on addr (e.g.
// "localhost:9090", or "localhost:0" to pick a free port). It returns
// the bound address and a shutdown func. The server goroutine exits when
// the shutdown func runs or the listener fails.
func Serve(addr string, reg *Registry) (string, func() error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: Handler(reg)}
	go func() { _ = srv.Serve(ln) }() //flvet:allow goexec -- HTTP serve loop lives until shutdown; not a bounded fan-out
	return ln.Addr().String(), srv.Close, nil
}
