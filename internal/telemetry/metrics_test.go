package telemetry

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterBasics(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	c.Add(0)
	c.Add(-3) // negative deltas are ignored: counters are monotonic
	if got := c.Value(); got != 5 {
		t.Errorf("Value() = %d, want 5", got)
	}
	var nilC *Counter
	nilC.Inc() // must not panic
	nilC.Add(7)
	if got := nilC.Value(); got != 0 {
		t.Errorf("nil Counter Value() = %d, want 0", got)
	}
}

func TestGaugeBasics(t *testing.T) {
	var g Gauge
	g.Set(-2.5)
	if got := g.Value(); got != -2.5 {
		t.Errorf("Value() = %v, want -2.5", got)
	}
	var nilG *Gauge
	nilG.Set(1)
	if got := nilG.Value(); got != 0 {
		t.Errorf("nil Gauge Value() = %v, want 0", got)
	}
}

func TestHistogramBucketsAreLeInclusive(t *testing.T) {
	reg := NewRegistry()
	h := reg.NewHistogram("h_seconds", "test", []float64{0.1, 1, 10})
	for _, v := range []float64{0.1, 0.5, 1.0, 5, 100} {
		h.Observe(v)
	}
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	// Prometheus buckets are cumulative and le-inclusive: 0.1 lands in
	// le="0.1", 1.0 in le="1".
	for _, want := range []string{
		`h_seconds_bucket{le="0.1"} 1`,
		`h_seconds_bucket{le="1"} 3`,
		`h_seconds_bucket{le="10"} 4`,
		`h_seconds_bucket{le="+Inf"} 5`,
		`h_seconds_count 5`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("export missing %q:\n%s", want, out)
		}
	}
	if h.Count() != 5 {
		t.Errorf("Count() = %d, want 5", h.Count())
	}
	if want := 0.1 + 0.5 + 1 + 5 + 100; math.Abs(h.Sum()-want) > 1e-9 {
		t.Errorf("Sum() = %v, want %v", h.Sum(), want)
	}
	var nilH *Histogram
	nilH.Observe(1) // must not panic
}

func TestRegistryIdempotentAndOrdered(t *testing.T) {
	reg := NewRegistry()
	a := reg.NewCounter("x_total", "first")
	b := reg.NewCounter("x_total", "second registration returns the first")
	if a != b {
		t.Error("re-registering a counter returned a different instrument")
	}
	reg.NewGauge("g", "gauge")
	a.Inc()

	var buf1, buf2 strings.Builder
	if err := reg.WritePrometheus(&buf1); err != nil {
		t.Fatal(err)
	}
	if err := reg.WritePrometheus(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf1.String() != buf2.String() {
		t.Error("two exports of an unchanged registry differ")
	}
	if x, g := strings.Index(buf1.String(), "x_total"), strings.Index(buf1.String(), "# HELP g "); x > g {
		t.Error("export does not preserve registration order")
	}
	if reg.Counter("x_total") != a {
		t.Error("Counter lookup returned a different instrument")
	}
	if reg.Counter("missing") != nil {
		t.Error("Counter lookup invented an instrument")
	}

	defer func() {
		if recover() == nil {
			t.Error("registering x_total as a gauge should panic")
		}
	}()
	reg.NewGauge("x_total", "kind mismatch")
}

func TestInstrumentsAreRaceFree(t *testing.T) {
	reg := NewRegistry()
	m := NewRunMetrics(reg)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				m.WorkerSteps.Inc()
				m.GammaEdge.Set(float64(w))
				m.IterationSeconds.Observe(float64(i) * 1e-4)
			}
		}(w)
	}
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil { // export concurrently with writers
		t.Fatal(err)
	}
	wg.Wait()
	if got := m.WorkerSteps.Value(); got != 8000 {
		t.Errorf("WorkerSteps = %d, want 8000", got)
	}
	if got := m.IterationSeconds.Count(); got != 8000 {
		t.Errorf("IterationSeconds count = %d, want 8000", got)
	}
}
