package telemetry

import (
	"bytes"
	"math"
	"reflect"
	"strings"
	"testing"
)

// fuzzSeedTrace emits a representative trace through the production
// Tracer: every field kind, JSON escapes, non-finite floats, and a
// multi-event stream with dense sequence numbers.
func fuzzSeedTrace(t testing.TB) []byte {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	tr.Emit("round_start", Int("t", 1), String("node", "edge-0"))
	tr.Emit("edge_aggregate", Float("gamma", 0.4375), Float("nan", math.NaN()), Bool("clamped", true))
	tr.Emit("odd \"names\"", String("path", "a\\b\nc"), Int64("big", 1<<40))
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzReadTrace throws arbitrary bytes at the JSONL trace reader. The
// contract under fuzzing is total: for every input, ReadTrace either
// returns parsed events — each with a non-empty name, seq/ev lifted out
// of the field map — or an error; it never panics, and parsing is
// deterministic (same bytes, same events).
func FuzzReadTrace(f *testing.F) {
	seed := fuzzSeedTrace(f)
	f.Add(seed)
	f.Add([]byte{})
	f.Add([]byte("\n\n\n"))
	f.Add(seed[:len(seed)/2])                                         // torn mid-line
	f.Add([]byte(`{"seq":1,"ev":"x"}`))                               // minimal event
	f.Add([]byte(`{"ev":"x"}`))                                       // missing seq
	f.Add([]byte(`{"seq":1}`))                                        // missing ev
	f.Add([]byte(`{"seq":"1","ev":"x"}`))                             // seq of wrong type
	f.Add([]byte(`{"seq":2,"ev":"x"}` + "\n" + `{"seq":1,"ev":"y"}`)) // gap
	f.Add([]byte(`{"seq":1,"ev":"x","nested":{"k":1}}`))              // nested field
	f.Add([]byte(`not json at all`))
	f.Add(bytes.Repeat([]byte("a"), 4096))

	f.Fuzz(func(t *testing.T, data []byte) {
		events, err := ReadTrace(bytes.NewReader(data))
		if err != nil {
			if !strings.Contains(err.Error(), "telemetry:") {
				t.Fatalf("error %q lost its package prefix", err)
			}
			return
		}
		for i, ev := range events {
			if ev.Ev == "" {
				t.Fatalf("event %d accepted with an empty name", i)
			}
			if _, dup := ev.Fields["seq"]; dup {
				t.Fatalf("event %d kept seq inside Fields", i)
			}
			if _, dup := ev.Fields["ev"]; dup {
				t.Fatalf("event %d kept ev inside Fields", i)
			}
		}
		// CheckTrace must never panic on whatever ReadTrace accepted.
		_ = CheckTrace(events)
		again, err := ReadTrace(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("second parse of accepted input failed: %v", err)
		}
		if !reflect.DeepEqual(events, again) {
			t.Fatal("ReadTrace is not deterministic over the same bytes")
		}
	})
}

// FuzzReadTraceRoundTrip pins the producer/consumer pair: anything the
// Tracer emits, ReadTrace accepts with dense sequence numbers.
func FuzzReadTraceRoundTrip(f *testing.F) {
	f.Add("round_start", "node", "edge-0", int64(7), 0.4375, true)
	f.Add("odd \"ev\"\n", "k\\e\ty", "v\x00alue", int64(-1), math.Inf(1), false)
	f.Add("", "", "", int64(0), math.NaN(), true)
	f.Fuzz(func(t *testing.T, ev, key, sval string, ival int64, fval float64, bval bool) {
		// "seq" and "ev" are the reserved keys the Tracer itself writes; a
		// colliding caller key would shadow them in the decoded map.
		if ev == "" || key == "seq" || key == "ev" {
			t.Skip("reserved by the trace format")
		}
		var buf bytes.Buffer
		tr := NewTracer(&buf)
		tr.Emit(ev, String(key, sval), Int64("i", ival), Float("f", fval), Bool("b", bval))
		tr.Emit(ev + "-2")
		if err := tr.Flush(); err != nil {
			t.Fatal(err)
		}
		events, err := ReadTrace(&buf)
		if err != nil {
			t.Fatalf("ReadTrace rejected Tracer output: %v", err)
		}
		if len(events) != 2 {
			t.Fatalf("got %d events, want 2", len(events))
		}
		if err := CheckTrace(events); err != nil {
			t.Fatalf("Tracer output is not densely sequenced: %v", err)
		}
	})
}
