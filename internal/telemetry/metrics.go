// Package telemetry is the repo's zero-dependency observability layer:
// atomic counters/gauges/histograms behind a registry with a
// Prometheus-text exporter, a deterministic JSONL event tracer with
// monotonic sequence numbers, and the Sink that ties both together for
// the simulation (internal/core, internal/baseline) and the distributed
// runtime (internal/cluster, internal/transport).
//
// Two invariants shape the design:
//
//   - Nil is free. Every instrument method is nil-safe and every Sink
//     accessor works on a nil receiver, so instrumented hot loops cost
//     zero allocations and zero branches beyond a nil check when
//     telemetry is off. Training results stay bit-identical either way.
//
//   - Traces are diffable. Events carry a per-trace monotonic sequence
//     number and never a wall-clock timestamp, so two runs of the same
//     configuration produce byte-identical JSONL streams. Wall-clock
//     only ever feeds metrics (histograms), never the trace.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing integer metric. The zero value is
// ready to use; all methods are nil-safe no-ops so call sites never need
// an "is telemetry on" branch.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n (negative n is ignored: counters only go up).
func (c *Counter) Add(n int64) {
	if c == nil || n <= 0 {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 metric that can go up and down (last-write-wins).
type Gauge struct {
	bits atomic.Uint64
}

// Set records the current value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the most recently set value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a cumulative-bucket histogram of float64 observations,
// matching the Prometheus exposition model (le upper bounds plus a +Inf
// overflow bucket, observation sum, observation count).
type Histogram struct {
	bounds []float64 // sorted upper bounds, exclusive of +Inf
	counts []atomic.Int64
	inf    atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-updated
	count  atomic.Int64
}

// DefSecondsBuckets are the default buckets for wall-clock histograms,
// spanning sub-millisecond kernel work to multi-second cluster syncs.
var DefSecondsBuckets = []float64{.0005, .001, .0025, .005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	if i < len(h.bounds) {
		h.counts[i].Add(1)
	} else {
		h.inf.Add(1)
	}
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			break
		}
	}
	h.count.Add(1)
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// metricKind discriminates the registry's instrument table.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

type metric struct {
	name string
	help string
	kind metricKind
	c    *Counter
	g    *Gauge
	h    *Histogram
}

// Registry owns a set of named instruments and renders them in the
// Prometheus text exposition format. Registration order is preserved so
// exports are deterministic. Registering a name twice returns the
// existing instrument (panicking on a kind mismatch), which lets several
// subsystems share one instrument safely.
type Registry struct {
	mu      sync.Mutex
	metrics []*metric
	byName  map[string]*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*metric)}
}

func (r *Registry) lookup(name string, kind metricKind) (*metric, bool) {
	m, ok := r.byName[name]
	if !ok {
		return nil, false
	}
	if m.kind != kind {
		panic(fmt.Sprintf("telemetry: metric %q re-registered with a different kind", name))
	}
	return m, true
}

// NewCounter registers (or returns the existing) counter under name.
func (r *Registry) NewCounter(name, help string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.lookup(name, kindCounter); ok {
		return m.c
	}
	m := &metric{name: name, help: help, kind: kindCounter, c: &Counter{}}
	r.metrics = append(r.metrics, m)
	r.byName[name] = m
	return m.c
}

// NewGauge registers (or returns the existing) gauge under name.
func (r *Registry) NewGauge(name, help string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.lookup(name, kindGauge); ok {
		return m.g
	}
	m := &metric{name: name, help: help, kind: kindGauge, g: &Gauge{}}
	r.metrics = append(r.metrics, m)
	r.byName[name] = m
	return m.g
}

// NewHistogram registers (or returns the existing) histogram under name.
// buckets are upper bounds; they are copied and sorted. Nil buckets use
// DefSecondsBuckets.
func (r *Registry) NewHistogram(name, help string, buckets []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.lookup(name, kindHistogram); ok {
		return m.h
	}
	if buckets == nil {
		buckets = DefSecondsBuckets
	}
	bounds := append([]float64(nil), buckets...)
	sort.Float64s(bounds)
	h := &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds))}
	m := &metric{name: name, help: help, kind: kindHistogram, h: h}
	r.metrics = append(r.metrics, m)
	r.byName[name] = m
	return m.h
}

// formatFloat renders a float the way Prometheus expects: shortest
// round-trip representation, with +Inf spelled out.
func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders every registered instrument in the Prometheus
// text exposition format, in registration order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	snapshot := append([]*metric(nil), r.metrics...)
	r.mu.Unlock()
	for _, m := range snapshot {
		if m.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", m.name, m.help); err != nil {
				return err
			}
		}
		var err error
		switch m.kind {
		case kindCounter:
			_, err = fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", m.name, m.name, m.c.Value())
		case kindGauge:
			_, err = fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", m.name, m.name, formatFloat(m.g.Value()))
		case kindHistogram:
			err = writeHistogram(w, m.name, m.h)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func writeHistogram(w io.Writer, name string, h *Histogram) error {
	if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
		return err
	}
	var cum int64
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, formatFloat(bound), cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, h.Count()); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n", name, formatFloat(h.Sum()), name, h.Count())
	return err
}

// Counter returns the registered counter by name (nil if absent or not a
// counter). Intended for tests and scrapers that cross-check totals.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byName[name]; ok && m.kind == kindCounter {
		return m.c
	}
	return nil
}

// Gauge returns the registered gauge by name (nil if absent or not a
// gauge).
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byName[name]; ok && m.kind == kindGauge {
		return m.g
	}
	return nil
}
