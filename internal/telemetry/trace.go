package telemetry

import (
	"bufio"
	"io"
	"math"
	"os"
	"strconv"
	"sync"
	"unicode/utf8"
)

// Field is one key/value pair of a trace event. Fields are serialized in
// call order, so a given event type always renders its keys in the same
// order and traces diff cleanly line-by-line.
type Field struct {
	key  string
	kind fieldKind
	s    string
	i    int64
	f    float64
	b    bool
}

type fieldKind int

const (
	fieldString fieldKind = iota
	fieldInt
	fieldFloat
	fieldBool
)

// String returns a string-valued field.
func String(key, v string) Field { return Field{key: key, kind: fieldString, s: v} }

// Int returns an integer-valued field.
func Int(key string, v int) Field { return Field{key: key, kind: fieldInt, i: int64(v)} }

// Int64 returns an int64-valued field.
func Int64(key string, v int64) Field { return Field{key: key, kind: fieldInt, i: v} }

// Float returns a float64-valued field. Non-finite values serialize as
// JSON null so the stream stays parseable.
func Float(key string, v float64) Field { return Field{key: key, kind: fieldFloat, f: v} }

// Bool returns a boolean-valued field.
func Bool(key string, v bool) Field { return Field{key: key, kind: fieldBool, b: v} }

// Tracer writes one JSON object per event to an underlying stream:
//
//	{"seq":12,"ev":"edge_aggregate","t":8,"edge":0,"gamma":0.41,...}
//
// seq starts at 1 and increases by exactly 1 per event under the
// tracer's lock, so a trace is totally ordered and two traces of the
// same deterministic run are byte-identical. Tracer methods are safe for
// concurrent use; the repo's deterministic call sites nevertheless emit
// only from sequential code so event ORDER is reproducible too. Event
// names must be non-empty and the field keys "seq" and "ev" are reserved
// for the tracer itself (readers lift them out of the field map).
type Tracer struct {
	mu     sync.Mutex
	w      *bufio.Writer
	closer io.Closer
	seq    uint64
	err    error
	buf    []byte
}

// NewTracer wraps w in a Tracer. The caller owns w's lifetime unless w
// is also an io.Closer handed to NewFileTracer.
func NewTracer(w io.Writer) *Tracer {
	return &Tracer{w: bufio.NewWriter(w)}
}

// NewFileTracer creates (truncating) the JSONL trace file at path.
func NewFileTracer(path string) (*Tracer, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	t := NewTracer(f)
	t.closer = f
	return t, nil
}

// Emit appends one event line. Write errors are sticky: the first one is
// retained (see Err) and later emits become no-ops.
func (t *Tracer) Emit(ev string, fields ...Field) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return
	}
	t.seq++
	b := t.buf[:0]
	b = append(b, `{"seq":`...)
	b = strconv.AppendUint(b, t.seq, 10)
	b = append(b, `,"ev":`...)
	b = appendJSONString(b, ev)
	for _, f := range fields {
		b = append(b, ',')
		b = appendJSONString(b, f.key)
		b = append(b, ':')
		switch f.kind {
		case fieldString:
			b = appendJSONString(b, f.s)
		case fieldInt:
			b = strconv.AppendInt(b, f.i, 10)
		case fieldFloat:
			if math.IsNaN(f.f) || math.IsInf(f.f, 0) {
				b = append(b, "null"...)
			} else {
				b = strconv.AppendFloat(b, f.f, 'g', -1, 64)
			}
		case fieldBool:
			b = strconv.AppendBool(b, f.b)
		}
	}
	b = append(b, '}', '\n')
	t.buf = b
	if _, err := t.w.Write(b); err != nil {
		t.err = err
	}
}

// Flush pushes buffered events to the underlying writer.
func (t *Tracer) Flush() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return t.err
	}
	t.err = t.w.Flush()
	return t.err
}

// Close flushes and, for file-backed tracers, closes the file.
func (t *Tracer) Close() error {
	if t == nil {
		return nil
	}
	err := t.Flush()
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closer != nil {
		if cerr := t.closer.Close(); err == nil {
			err = cerr
		}
		t.closer = nil
	}
	return err
}

// Err returns the first write error, if any.
func (t *Tracer) Err() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// appendJSONString appends s as a JSON string literal. Event names and
// field keys are plain ASCII identifiers in practice; the escape path
// exists so arbitrary node names and error strings stay well-formed.
func appendJSONString(b []byte, s string) []byte {
	b = append(b, '"')
	for i := 0; i < len(s); {
		c := s[i]
		if c >= 0x20 && c != '"' && c != '\\' && c < utf8.RuneSelf {
			b = append(b, c)
			i++
			continue
		}
		if c < utf8.RuneSelf {
			switch c {
			case '"':
				b = append(b, '\\', '"')
			case '\\':
				b = append(b, '\\', '\\')
			case '\n':
				b = append(b, '\\', 'n')
			case '\r':
				b = append(b, '\\', 'r')
			case '\t':
				b = append(b, '\\', 't')
			default:
				b = append(b, '\\', 'u', '0', '0', hexDigits[c>>4], hexDigits[c&0xf])
			}
			i++
			continue
		}
		r, size := utf8.DecodeRuneInString(s[i:])
		if r == utf8.RuneError && size == 1 {
			b = append(b, '\\', 'u', 'f', 'f', 'f', 'd')
			i++
			continue
		}
		b = append(b, s[i:i+size]...)
		i += size
	}
	return append(b, '"')
}

const hexDigits = "0123456789abcdef"
