package telemetry

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestEmitWritesOrderedJSONL(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	tr.Emit("round_start", Int("k", 1), Int("t", 1))
	tr.Emit("edge_aggregate",
		Int("t", 4), Int("edge", 0), Int("participants", 2),
		Float("gamma", 0.25), Float("cos", -0.5))
	tr.Emit("eval", Float("acc", 0.875), Bool("final", true), String("note", `quote " and \ back`))
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	want := `{"seq":1,"ev":"round_start","k":1,"t":1}
{"seq":2,"ev":"edge_aggregate","t":4,"edge":0,"participants":2,"gamma":0.25,"cos":-0.5}
{"seq":3,"ev":"eval","acc":0.875,"final":true,"note":"quote \" and \\ back"}
`
	if got := buf.String(); got != want {
		t.Errorf("trace bytes mismatch:\n got: %q\nwant: %q", got, want)
	}
}

func TestEmitNonFiniteFloatsBecomeNull(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	tr.Emit("x", Float("nan", math.NaN()), Float("inf", math.Inf(1)))
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	if got, want := buf.String(), `{"seq":1,"ev":"x","nan":null,"inf":null}`+"\n"; got != want {
		t.Errorf("got %q, want %q", got, want)
	}
	events, err := ReadTrace(&buf)
	if err != nil {
		t.Fatalf("null fields broke ReadTrace: %v", err)
	}
	if events[0].Fields["nan"] != nil {
		t.Errorf("nan field = %v, want nil", events[0].Fields["nan"])
	}
}

func TestReadTraceRoundTripAndCheck(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	tr.Emit("a", Int("t", 1))
	tr.Emit("b", String("node", "edge-0"))
	tr.Emit("c")
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	events, err := ReadTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 3 {
		t.Fatalf("ReadTrace returned %d events, want 3", len(events))
	}
	if events[1].Ev != "b" || events[1].Fields["node"] != "edge-0" {
		t.Errorf("event 1 = %+v", events[1])
	}
	if err := CheckTrace(events); err != nil {
		t.Errorf("CheckTrace on a well-formed trace: %v", err)
	}
	events[2].Seq = 7
	if err := CheckTrace(events); err == nil {
		t.Error("CheckTrace accepted a sequence gap")
	}
}

func TestTracerConcurrentEmitKeepsSeqDense(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				tr.Emit("tick", Int("i", i))
			}
		}()
	}
	wg.Wait()
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	events, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 800 {
		t.Fatalf("got %d events, want 800", len(events))
	}
	if err := CheckTrace(events); err != nil {
		t.Errorf("concurrent emits left a sequence gap: %v", err)
	}
}

func TestTracerErrorIsSticky(t *testing.T) {
	tr := NewTracer(failingWriter{})
	for i := 0; i < 100; i++ { // enough to overflow the bufio buffer
		tr.Emit("x", String("pad", strings.Repeat("y", 1024)))
	}
	if tr.Err() == nil {
		t.Error("writer failure not surfaced via Err()")
	}
	if err := tr.Close(); err == nil {
		t.Error("Close() swallowed the sticky error")
	}
}

type failingWriter struct{}

func (failingWriter) Write(p []byte) (int, error) {
	return 0, errWriteRefused
}

var errWriteRefused = &writeRefusedError{}

type writeRefusedError struct{}

func (*writeRefusedError) Error() string { return "write refused" }

func TestFileTracer(t *testing.T) {
	path := t.TempDir() + "/t.trace"
	tr, err := NewFileTracer(path)
	if err != nil {
		t.Fatal(err)
	}
	tr.Emit("a", Int("t", 1))
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	events, err := readTraceFile(t, path)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 || events[0].Ev != "a" {
		t.Errorf("file trace round-trip: %+v", events)
	}
}
