package telemetry

// RunMetrics is the fixed instrument set shared by every tier of the
// codebase: the in-process simulation (core + baselines), the
// distributed cluster runtime, and the transport layer. All fields of
// the zero value are nil, and every instrument method is nil-safe, so
// noMetrics below serves as the universal "telemetry off" fast path.
type RunMetrics struct {
	// Simulation/training progress.
	WorkerSteps      *Counter // fl_worker_steps_total
	GradClips        *Counter // fl_grad_clips_total
	EdgeAggregations *Counter // fl_edge_aggregations_total
	CloudSyncs       *Counter // fl_cloud_syncs_total
	Evals            *Counter // fl_evals_total
	GammaZeroed      *Counter // fl_gamma_zeroed_total

	Round        *Gauge // fl_round
	GammaEdge    *Gauge // fl_gamma_edge
	EdgeCosine   *Gauge // fl_edge_cosine
	TestAccuracy *Gauge // fl_test_accuracy
	TrainLoss    *Gauge // fl_train_loss

	IterationSeconds *Histogram // fl_iteration_seconds
	EdgeAggSeconds   *Histogram // fl_edge_aggregate_seconds
	CloudSyncSeconds *Histogram // fl_cloud_sync_seconds

	// Crash recovery.
	CheckpointSaves   *Counter // fl_checkpoint_saves_total
	CheckpointResumes *Counter // fl_checkpoint_resumes_total

	// Cluster runtime fault handling.
	QuorumMet            *Counter // fl_quorum_met_total
	QuorumMissingWorkers *Counter // fl_quorum_missing_workers_total
	QuorumMissingEdges   *Counter // fl_quorum_missing_edges_total
	Timeouts             *Counter // fl_timeouts_total
	StaleMessages        *Counter // fl_stale_messages_total
	DuplicateReports     *Counter // fl_duplicate_reports_total
	FastForwards         *Counter // fl_fastforward_resyncs_total

	// Transport.
	DroppedMessages *Counter // fl_dropped_messages_total
	DelayedMessages *Counter // fl_delayed_messages_total
	SendRetries     *Counter // fl_send_retries_total

	// Dynamic membership (churn and re-tiering).
	MembershipJoins     *Counter // fl_membership_joins_total
	MembershipLeaves    *Counter // fl_membership_leaves_total
	MembershipReassigns *Counter // fl_membership_reassigns_total
	MembershipRetiers   *Counter // fl_membership_retierings_total
	GammaMigrations     *Counter // fl_membership_gamma_migrations_total
	MembershipEpoch     *Gauge   // fl_membership_epoch
	LiveWorkers         *Gauge   // fl_membership_live_workers

	// Byzantine robustness (attack injection and robust aggregation).
	AttackInjected *Counter // fl_attack_injected_total
	RobustRejected *Counter // fl_robust_rejected_total
	RobustClipped  *Counter // fl_robust_clipped_total
	RobustClipNorm *Gauge   // fl_robust_clip_norm
}

// noMetrics backs the nil-sink fast path: every field is nil, and nil
// instruments no-op, so "sink.M().WorkerSteps.Inc()" costs two nil
// checks and zero allocations when telemetry is disabled.
var noMetrics = &RunMetrics{}

// NewRunMetrics registers the full instrument set in reg. Because
// registration is idempotent per name, several sinks sharing one
// registry share the underlying instruments.
func NewRunMetrics(reg *Registry) *RunMetrics {
	return &RunMetrics{
		WorkerSteps:      reg.NewCounter("fl_worker_steps_total", "Local SGD/NAG worker steps taken."),
		GradClips:        reg.NewCounter("fl_grad_clips_total", "Mini-batch gradients rescaled by the clip norm."),
		EdgeAggregations: reg.NewCounter("fl_edge_aggregations_total", "Edge-tier aggregation rounds completed."),
		CloudSyncs:       reg.NewCounter("fl_cloud_syncs_total", "Cloud-tier synchronisations completed."),
		Evals:            reg.NewCounter("fl_evals_total", "Accuracy-curve evaluations performed."),
		GammaZeroed:      reg.NewCounter("fl_gamma_zeroed_total", "Adaptive gamma_l clamps to zero (obtuse-angle rule)."),

		Round:        reg.NewGauge("fl_round", "Most recently completed local iteration t."),
		GammaEdge:    reg.NewGauge("fl_gamma_edge", "Most recent adaptive edge momentum gamma_l."),
		EdgeCosine:   reg.NewGauge("fl_edge_cosine", "Most recent cosine driving the gamma_l adaptation."),
		TestAccuracy: reg.NewGauge("fl_test_accuracy", "Most recent curve-point test accuracy."),
		TrainLoss:    reg.NewGauge("fl_train_loss", "Most recent weighted training loss."),

		IterationSeconds: reg.NewHistogram("fl_iteration_seconds", "Wall-clock per local iteration (all workers).", nil),
		EdgeAggSeconds:   reg.NewHistogram("fl_edge_aggregate_seconds", "Wall-clock per edge aggregation.", nil),
		CloudSyncSeconds: reg.NewHistogram("fl_cloud_sync_seconds", "Wall-clock per cloud synchronisation.", nil),

		CheckpointSaves:   reg.NewCounter("fl_checkpoint_saves_total", "Snapshots written."),
		CheckpointResumes: reg.NewCounter("fl_checkpoint_resumes_total", "Runs resumed from a snapshot."),

		QuorumMet:            reg.NewCounter("fl_quorum_met_total", "Aggregations that proceeded on a partial quorum."),
		QuorumMissingWorkers: reg.NewCounter("fl_quorum_missing_workers_total", "Worker reports missing at edge aggregations."),
		QuorumMissingEdges:   reg.NewCounter("fl_quorum_missing_edges_total", "Edge reports missing at cloud aggregations."),
		Timeouts:             reg.NewCounter("fl_timeouts_total", "Receive timeouts while collecting reports."),
		StaleMessages:        reg.NewCounter("fl_stale_messages_total", "Messages rejected as stale (older round)."),
		DuplicateReports:     reg.NewCounter("fl_duplicate_reports_total", "Duplicate reports rejected within a round."),
		FastForwards:         reg.NewCounter("fl_fastforward_resyncs_total", "Nodes fast-forwarded to a newer round by a sync."),

		DroppedMessages: reg.NewCounter("fl_dropped_messages_total", "Messages dropped by fault injection."),
		DelayedMessages: reg.NewCounter("fl_delayed_messages_total", "Messages delayed by fault injection."),
		SendRetries:     reg.NewCounter("fl_send_retries_total", "Transport-level send retries."),

		MembershipJoins:     reg.NewCounter("fl_membership_joins_total", "Workers admitted after round 1 (planned joins)."),
		MembershipLeaves:    reg.NewCounter("fl_membership_leaves_total", "Workers retired before the final round (planned leaves)."),
		MembershipReassigns: reg.NewCounter("fl_membership_reassigns_total", "Workers moved between edges by re-tiering."),
		MembershipRetiers:   reg.NewCounter("fl_membership_retierings_total", "Re-tiering steps that changed the assignment."),
		GammaMigrations:     reg.NewCounter("fl_membership_gamma_migrations_total", "Edge momentum migrations applied on cohort change."),
		MembershipEpoch:     reg.NewGauge("fl_membership_epoch", "Membership epoch of the most recent cloud sync."),
		LiveWorkers:         reg.NewGauge("fl_membership_live_workers", "Live workers at the most recent cloud sync."),

		AttackInjected: reg.NewCounter("fl_attack_injected_total", "Byzantine boundary reports injected by the attack plan."),
		RobustRejected: reg.NewCounter("fl_robust_rejected_total", "Reports excluded by robust aggregation (both tiers)."),
		RobustClipped:  reg.NewCounter("fl_robust_clipped_total", "Updates norm-clipped by robust aggregation."),
		RobustClipNorm: reg.NewGauge("fl_robust_clip_norm", "Largest pre-clip deviation norm in the most recent clipped aggregation."),
	}
}

// Sink is the single handle instrumented code holds: a metric set plus
// an optional event tracer. A nil *Sink is fully functional and free —
// M() returns the shared no-op metric set, Tracing() is false, Emit()
// returns immediately.
type Sink struct {
	reg *Registry
	m   *RunMetrics
	tr  *Tracer
}

// New builds a Sink over reg (a fresh registry when nil) and an optional
// tracer (nil disables event tracing but keeps metrics).
func New(reg *Registry, tr *Tracer) *Sink {
	if reg == nil {
		reg = NewRegistry()
	}
	return &Sink{reg: reg, m: NewRunMetrics(reg), tr: tr}
}

// M returns the instrument set; on a nil sink it returns the shared
// no-op set, so callers chain without nil checks:
//
//	sink.M().WorkerSteps.Inc()
func (s *Sink) M() *RunMetrics {
	if s == nil {
		return noMetrics
	}
	return s.m
}

// Registry returns the sink's registry (nil on a nil sink); it feeds the
// /metrics HTTP handler.
func (s *Sink) Registry() *Registry {
	if s == nil {
		return nil
	}
	return s.reg
}

// Tracer returns the sink's tracer (nil when tracing is off).
func (s *Sink) Tracer() *Tracer {
	if s == nil {
		return nil
	}
	return s.tr
}

// Tracing reports whether events are being recorded. Hot paths use it to
// skip building field slices entirely when no tracer is attached:
//
//	if sink.Tracing() {
//		sink.Emit("round_start", telemetry.Int("t", t))
//	}
func (s *Sink) Tracing() bool {
	return s != nil && s.tr != nil
}

// Emit records one trace event; a no-op without a tracer. Callers on hot
// paths should guard with Tracing() so the variadic field slice is never
// materialized when tracing is off.
func (s *Sink) Emit(ev string, fields ...Field) {
	if s == nil || s.tr == nil {
		return
	}
	s.tr.Emit(ev, fields...)
}
