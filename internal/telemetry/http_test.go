package telemetry

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestHandlerServesMetricsAndPprof(t *testing.T) {
	reg := NewRegistry()
	m := NewRunMetrics(reg)
	m.WorkerSteps.Add(42)
	m.GammaEdge.Set(0.75)
	srv := httptest.NewServer(Handler(reg))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("/metrics Content-Type = %q", ct)
	}
	for _, want := range []string{
		"# TYPE fl_worker_steps_total counter",
		"fl_worker_steps_total 42",
		"fl_gamma_edge 0.75",
		"# TYPE fl_iteration_seconds histogram",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	resp, err = http.Get(srv.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/debug/pprof/ status %d", resp.StatusCode)
	}
}

func TestServeBindsEphemeralPort(t *testing.T) {
	reg := NewRegistry()
	addr, stop, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/metrics via Serve status %d", resp.StatusCode)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get("http://" + addr + "/metrics"); err == nil {
		t.Error("server still reachable after stop()")
	}
}
