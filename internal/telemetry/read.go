package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// TraceEvent is one parsed JSONL trace line. Fields holds every key
// except seq/ev, with numbers as float64 (encoding/json's default).
type TraceEvent struct {
	Seq    uint64
	Ev     string
	Fields map[string]any
}

// ReadTrace parses a JSONL trace stream into events, failing on the
// first malformed line.
func ReadTrace(r io.Reader) ([]TraceEvent, error) {
	var events []TraceEvent
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var raw map[string]any
		if err := json.Unmarshal(sc.Bytes(), &raw); err != nil {
			return nil, fmt.Errorf("telemetry: trace line %d: %w", line, err)
		}
		ev := TraceEvent{Fields: raw}
		if seq, ok := raw["seq"].(float64); ok {
			ev.Seq = uint64(seq)
		} else {
			return nil, fmt.Errorf("telemetry: trace line %d: missing seq", line)
		}
		if name, ok := raw["ev"].(string); ok && name != "" {
			ev.Ev = name
		} else {
			return nil, fmt.Errorf("telemetry: trace line %d: missing ev", line)
		}
		delete(raw, "seq")
		delete(raw, "ev")
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("telemetry: trace read: %w", err)
	}
	return events, nil
}

// ReadTraceFile reads a complete JSONL trace from disk.
func ReadTraceFile(path string) ([]TraceEvent, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadTrace(f)
}

// CheckTrace verifies the diffability contract: sequence numbers start
// at 1 and increase by exactly 1 per event.
func CheckTrace(events []TraceEvent) error {
	for i, ev := range events {
		if ev.Seq != uint64(i)+1 {
			return fmt.Errorf("telemetry: event %d has seq %d, want %d", i, ev.Seq, i+1)
		}
	}
	return nil
}
