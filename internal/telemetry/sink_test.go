package telemetry

import (
	"bytes"
	"os"
	"testing"
)

// readTraceFile is a test helper shared across files in this package.
func readTraceFile(t *testing.T, path string) ([]TraceEvent, error) {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadTrace(f)
}

func TestNilSinkIsFullyFunctional(t *testing.T) {
	var sink *Sink
	if sink.Tracing() {
		t.Error("nil sink claims to be tracing")
	}
	if sink.Registry() != nil || sink.Tracer() != nil {
		t.Error("nil sink leaked a registry or tracer")
	}
	m := sink.M()
	if m == nil {
		t.Fatal("nil sink M() returned nil")
	}
	m.WorkerSteps.Inc() // every instrument of the no-op set must be callable
	m.GammaEdge.Set(1)
	m.IterationSeconds.Observe(0.1)
	sink.Emit("ignored", Int("t", 1))
	if sink.M() != m {
		t.Error("nil sink M() is not the shared no-op set")
	}
}

// TestNilSinkIsAllocationFree pins the tentpole's hot-loop contract: with
// telemetry off, the instrument calls inlined into training loops allocate
// nothing.
func TestNilSinkIsAllocationFree(t *testing.T) {
	var sink *Sink
	if allocs := testing.AllocsPerRun(1000, func() {
		m := sink.M()
		m.WorkerSteps.Inc()
		m.GradClips.Add(2)
		m.GammaEdge.Set(0.5)
		m.IterationSeconds.Observe(0.01)
		if sink.Tracing() {
			t.Fatal("unreachable")
		}
	}); allocs != 0 {
		t.Errorf("nil-sink instrument path allocates %v per call, want 0", allocs)
	}
}

// TestLiveMetricsAreAllocationFree: even with telemetry ON, counters, gauges
// and histogram observes stay allocation-free — only trace events (off the
// per-iteration path) may allocate.
func TestLiveMetricsAreAllocationFree(t *testing.T) {
	sink := New(nil, nil)
	if allocs := testing.AllocsPerRun(1000, func() {
		m := sink.M()
		m.WorkerSteps.Inc()
		m.GammaEdge.Set(0.5)
		m.IterationSeconds.Observe(0.01)
	}); allocs != 0 {
		t.Errorf("live metric path allocates %v per call, want 0", allocs)
	}
}

func TestSinkEmitAndSharedRegistry(t *testing.T) {
	var buf bytes.Buffer
	sink := New(nil, NewTracer(&buf))
	if !sink.Tracing() {
		t.Fatal("sink with a tracer is not Tracing")
	}
	sink.Emit("hello", Int("t", 3))
	if err := sink.Tracer().Flush(); err != nil {
		t.Fatal(err)
	}
	if got, want := buf.String(), `{"seq":1,"ev":"hello","t":3}`+"\n"; got != want {
		t.Errorf("Emit through sink wrote %q, want %q", got, want)
	}

	// Two sinks over one registry share instruments (idempotent names).
	reg := NewRegistry()
	a, b := New(reg, nil), New(reg, nil)
	a.M().WorkerSteps.Inc()
	b.M().WorkerSteps.Inc()
	if got := reg.Counter("fl_worker_steps_total").Value(); got != 2 {
		t.Errorf("shared counter = %d, want 2", got)
	}
}

func TestSetup(t *testing.T) {
	sink, addr, cleanup, err := Setup("", "")
	if err != nil || sink != nil || addr != "" {
		t.Fatalf("empty Setup = (%v, %q, _, %v), want nil sink", sink, addr, err)
	}
	if err := cleanup(); err != nil {
		t.Fatal(err)
	}

	path := t.TempDir() + "/out.trace"
	sink, addr, cleanup, err = Setup(path, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if addr == "" || addr == "127.0.0.1:0" {
		t.Errorf("Setup did not report the bound address: %q", addr)
	}
	sink.Emit("x", Int("t", 1))
	if err := cleanup(); err != nil {
		t.Fatal(err)
	}
	events, err := readTraceFile(t, path)
	if err != nil || len(events) != 1 {
		t.Errorf("trace file after cleanup: events=%v err=%v", events, err)
	}
}

// Benchmarks backing the "allocation-neutral" acceptance criterion: compare
// the nil-sink instrumented path against raw arithmetic.
func BenchmarkNilSinkHotLoop(b *testing.B) {
	var sink *Sink
	for i := 0; i < b.N; i++ {
		m := sink.M()
		m.WorkerSteps.Inc()
		m.IterationSeconds.Observe(0.01)
		if sink.Tracing() {
			b.Fatal("unreachable")
		}
	}
}

func BenchmarkLiveSinkHotLoop(b *testing.B) {
	sink := New(nil, nil)
	for i := 0; i < b.N; i++ {
		m := sink.M()
		m.WorkerSteps.Inc()
		m.IterationSeconds.Observe(0.01)
	}
}
