package netsim

import (
	"testing"
	"testing/quick"
	"time"
)

// Monotonicity properties of the timing simulation: more bytes, slower
// devices, or more frequent WAN syncs can never make a run faster.

func TestMoreBytesNeverFaster(t *testing.T) {
	f := func(dimRaw uint16) bool {
		dim := 1000 + int(dimRaw)
		env := PaperTestbed([]int{2, 2}, 5)
		small, err := SimulateTwoTier(env, ModelPayload(dim, false), 40, 20)
		if err != nil {
			return false
		}
		big, err := SimulateTwoTier(env, ModelPayload(dim*4, false), 40, 20)
		if err != nil {
			return false
		}
		return big.Total() >= small.Total()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestMomentumPayloadNeverFaster(t *testing.T) {
	env := PaperTestbed([]int{2, 2}, 7)
	plain, err := SimulateThreeTier(env, ModelPayload(100_000, false), 40, 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	mom, err := SimulateThreeTier(env, ModelPayload(100_000, true), 40, 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	if mom.Total() < plain.Total() {
		t.Errorf("momentum payload %v faster than plain %v", mom.Total(), plain.Total())
	}
}

func TestSlowerDevicesNeverFaster(t *testing.T) {
	fast := PaperTestbed([]int{2, 2}, 9)
	slow := PaperTestbed([]int{2, 2}, 9)
	for i := range slow.Workers {
		slow.Workers[i].Median *= 4
	}
	p := ModelPayload(50_000, false)
	tf, err := SimulateThreeTier(fast, p, 40, 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	ts, err := SimulateThreeTier(slow, p, 40, 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	if ts.Total() <= tf.Total() {
		t.Errorf("4x slower devices finished in %v <= %v", ts.Total(), tf.Total())
	}
}

func TestStragglerDominatesRound(t *testing.T) {
	// A single extremely slow worker must slow the whole synchronous round
	// (the straggler effect the paper's testbed exhibits).
	env := PaperTestbed([]int{2, 2}, 11)
	base, err := SimulateTwoTier(env, ModelPayload(1000, false), 20, 20)
	if err != nil {
		t.Fatal(err)
	}
	straggler := PaperTestbed([]int{2, 2}, 11)
	straggler.Workers[3].Median = 2 * time.Second
	slow, err := SimulateTwoTier(straggler, ModelPayload(1000, false), 20, 20)
	if err != nil {
		t.Fatal(err)
	}
	if slow.Total() < 10*base.Total() {
		t.Errorf("straggler run %v not dominated by the slow device (base %v)",
			slow.Total(), base.Total())
	}
}

func TestTimelineMonotoneProperty(t *testing.T) {
	f := func(seed uint64) bool {
		env := PaperTestbed([]int{2, 2}, seed)
		tl, err := SimulateThreeTier(env, ModelPayload(10_000, true), 40, 5, 4)
		if err != nil {
			return false
		}
		for i := 1; i < len(tl); i++ {
			if tl[i] < tl[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
