package netsim

import (
	"errors"
	"testing"
	"time"

	"hieradmo/internal/rng"
)

func testEnv() *Env {
	return PaperTestbed([]int{2, 2}, 42)
}

func TestDeviceSamplePositive(t *testing.T) {
	r := rng.New(1)
	for _, d := range []DeviceProfile{LaptopI3, NubiaZ17s, RealmeGTNeo, RedmiK30Ultra} {
		for i := 0; i < 1000; i++ {
			if s := d.Sample(r); s <= 0 {
				t.Fatalf("%s sampled %v", d.Name, s)
			}
		}
	}
}

func TestDeviceSampleDeterministicWithZeroSigma(t *testing.T) {
	d := DeviceProfile{Name: "fixed", Median: 10 * time.Millisecond}
	r := rng.New(1)
	for i := 0; i < 10; i++ {
		if got := d.Sample(r); got != 10*time.Millisecond {
			t.Fatalf("sigma=0 sample = %v", got)
		}
	}
}

func TestDeviceMedianRoughlyPreserved(t *testing.T) {
	r := rng.New(7)
	d := LaptopI3
	below := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if d.Sample(r) < d.Median {
			below++
		}
	}
	frac := float64(below) / n
	if frac < 0.45 || frac > 0.55 {
		t.Errorf("fraction below median = %v, want ~0.5", frac)
	}
}

func TestLinkTransfer(t *testing.T) {
	r := rng.New(3)
	l := LinkProfile{Name: "t", RTT: 10 * time.Millisecond, Mbps: 8} // 1 MB/s
	got := l.Transfer(1_000_000, r)
	// 1 MB at 1 MB/s = 1s plus RTT; no jitter configured.
	want := time.Second + 10*time.Millisecond
	if got != want {
		t.Errorf("transfer = %v, want %v", got, want)
	}
	// Zero-bandwidth link degrades to latency only.
	l0 := LinkProfile{RTT: 5 * time.Millisecond}
	if got := l0.Transfer(1000, r); got != 5*time.Millisecond {
		t.Errorf("zero-bandwidth transfer = %v", got)
	}
}

func TestEnvValidate(t *testing.T) {
	env := testEnv()
	if err := env.Validate(true); err != nil {
		t.Errorf("valid env rejected: %v", err)
	}
	bad := *env
	bad.WorkersPerEdge = []int{3, 2} // 5 slots for 4 workers
	if err := bad.Validate(true); !errors.Is(err, ErrEnv) {
		t.Errorf("err = %v, want ErrEnv", err)
	}
	bad2 := *env
	bad2.Workers = nil
	if err := bad2.Validate(false); !errors.Is(err, ErrEnv) {
		t.Errorf("err = %v, want ErrEnv", err)
	}
	bad3 := *env
	bad3.WorkersPerEdge = []int{4, 0}
	if err := bad3.Validate(true); !errors.Is(err, ErrEnv) {
		t.Errorf("err = %v, want ErrEnv", err)
	}
}

func TestSimulateThreeTierShape(t *testing.T) {
	env := testEnv()
	payload := ModelPayload(10_000, true)
	tl, err := SimulateThreeTier(env, payload, 40, 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(tl) != 41 {
		t.Fatalf("timeline len = %d, want 41", len(tl))
	}
	if tl[0] != 0 {
		t.Errorf("tl[0] = %v, want 0", tl[0])
	}
	for i := 1; i < len(tl); i++ {
		if tl[i] <= tl[i-1] {
			t.Fatalf("timeline not strictly increasing at %d: %v <= %v", i, tl[i], tl[i-1])
		}
	}
}

func TestSimulateTwoTierShape(t *testing.T) {
	env := testEnv()
	payload := ModelPayload(10_000, false)
	tl, err := SimulateTwoTier(env, payload, 40, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(tl) != 41 || tl.Total() <= 0 {
		t.Fatalf("bad timeline: len=%d total=%v", len(tl), tl.Total())
	}
}

func TestSimulateErrors(t *testing.T) {
	env := testEnv()
	p := ModelPayload(1000, false)
	if _, err := SimulateThreeTier(env, p, 41, 10, 2); !errors.Is(err, ErrEnv) {
		t.Errorf("non-multiple T err = %v", err)
	}
	if _, err := SimulateThreeTier(env, p, 40, 0, 2); !errors.Is(err, ErrEnv) {
		t.Errorf("zero tau err = %v", err)
	}
	if _, err := SimulateTwoTier(env, p, 40, 0); !errors.Is(err, ErrEnv) {
		t.Errorf("zero period err = %v", err)
	}
	if _, err := SimulateTwoTier(env, p, 41, 20); !errors.Is(err, ErrEnv) {
		t.Errorf("non-multiple T err = %v", err)
	}
}

func TestSimulateDeterministic(t *testing.T) {
	env := testEnv()
	p := ModelPayload(5000, true)
	a, err := SimulateThreeTier(env, p, 40, 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SimulateThreeTier(env, p, 40, 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	if a.Total() != b.Total() {
		t.Errorf("non-deterministic simulation: %v vs %v", a.Total(), b.Total())
	}
}

// TestThreeTierCheaperPerSyncThanTwoTier verifies the architectural claim of
// Fig. 1: with equal aggregation periods (τπ == period), the three-tier
// deployment completes the same number of iterations faster because only
// edges touch the WAN, and only once per cloud interval.
func TestThreeTierCheaperPerSyncThanTwoTier(t *testing.T) {
	env := testEnv()
	const dim = 300_000 // paper-scale CNN parameter count
	p3 := ModelPayload(dim, false)
	p2 := ModelPayload(dim, false)
	three, err := SimulateThreeTier(env, p3, 200, 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	two, err := SimulateTwoTier(env, p2, 200, 20)
	if err != nil {
		t.Fatal(err)
	}
	if three.Total() >= two.Total() {
		t.Errorf("three-tier %v not faster than two-tier %v", three.Total(), two.Total())
	}
}

func TestTimelineAtClamps(t *testing.T) {
	tl := Timeline{0, time.Second, 2 * time.Second}
	if tl.At(-5) != 0 {
		t.Error("negative index not clamped")
	}
	if tl.At(99) != 2*time.Second {
		t.Error("overflow index not clamped")
	}
	var empty Timeline
	if empty.At(3) != 0 {
		t.Error("empty timeline not zero")
	}
}

func TestTimeToAccuracy(t *testing.T) {
	tl := Timeline{0, time.Second, 2 * time.Second, 3 * time.Second, 4 * time.Second}
	curve := []CurvePoint{{Iter: 1, Acc: 0.4}, {Iter: 2, Acc: 0.7}, {Iter: 4, Acc: 0.9}}
	d, ok := TimeToAccuracy(tl, curve, 0.65)
	if !ok || d != 2*time.Second {
		t.Errorf("TimeToAccuracy = %v,%v", d, ok)
	}
	if _, ok := TimeToAccuracy(tl, curve, 0.95); ok {
		t.Error("unreachable target reported reached")
	}
}

func TestPaperTestbedCyclesDevices(t *testing.T) {
	env := PaperTestbed([]int{5, 5}, 1)
	if len(env.Workers) != 10 {
		t.Fatalf("workers = %d", len(env.Workers))
	}
	if env.Workers[0].Name != env.Workers[4].Name {
		t.Error("device cycling broken")
	}
	if err := env.Validate(true); err != nil {
		t.Error(err)
	}
}

func TestModelPayload(t *testing.T) {
	p := ModelPayload(1000, true)
	if p.WorkerUp != 32000 || p.WorkerDown != 16000 {
		t.Errorf("momentum payload = %+v", p)
	}
	p = ModelPayload(1000, false)
	if p.WorkerUp != 8000 || p.WorkerDown != 8000 {
		t.Errorf("plain payload = %+v", p)
	}
}

func TestTimeToAccuracyAtFinalPoint(t *testing.T) {
	tl := Timeline{0, time.Second, 2 * time.Second}
	curve := []CurvePoint{{Iter: 2, Acc: 0.9}}
	d, ok := TimeToAccuracy(tl, curve, 0.9)
	if !ok || d != 2*time.Second {
		t.Errorf("boundary target = %v,%v", d, ok)
	}
	if _, ok := TimeToAccuracy(tl, nil, 0.1); ok {
		t.Error("empty curve reported reached")
	}
}
