package netsim

import (
	"testing"

	"hieradmo/internal/topology"
)

func simTopo(t *testing.T, spec string) *topology.Topology {
	t.Helper()
	topo, err := topology.Parse(spec)
	if err != nil {
		t.Fatalf("Parse(%q): %v", spec, err)
	}
	return topo
}

// TestSimulateTreeMatchesThreeTier pins the tree simulator's degenerate
// case: a three-level topology with matched periods, devices, and links must
// reproduce SimulateThreeTier's timeline bit for bit — same draw sequence,
// same barriers, same spreading.
func TestSimulateTreeMatchesThreeTier(t *testing.T) {
	const tau, pi, T = 2, 3, 24
	legacy := PaperTestbed([]int{2, 2}, 11)
	payload := ModelPayload(104, true)
	ref, err := SimulateThreeTier(legacy, payload, T, tau, pi)
	if err != nil {
		t.Fatal(err)
	}
	env := PaperTreeTestbed(simTopo(t, "cloud:tau=6/edge*2:tau=2/worker*2"), 11)
	tl, err := SimulateTree(env, payload, T)
	if err != nil {
		t.Fatal(err)
	}
	if len(tl) != len(ref) {
		t.Fatalf("tree timeline has %d points, three-tier %d", len(tl), len(ref))
	}
	for i := range tl {
		if tl[i] != ref[i] {
			t.Fatalf("timeline[%d]: tree %v != three-tier %v (must be bit-identical)", i, tl[i], ref[i])
		}
	}
}

// TestSimulateTreeDeterministic checks that reruns of a four-level
// environment draw identical timelines.
func TestSimulateTreeDeterministic(t *testing.T) {
	topo := simTopo(t, "cloud:tau=8/region*2:tau=4/edge*2:tau=2/worker*2")
	payload := ModelPayload(104, true)
	a, err := SimulateTree(PaperTreeTestbed(topo, 7), payload, 48)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SimulateTree(PaperTreeTestbed(topo, 7), payload, 48)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("timeline[%d]: %v != %v across reruns", i, a[i], b[i])
		}
	}
	if a.Total() <= 0 {
		t.Fatal("four-level run took no simulated time")
	}
}

// TestSimulateTreeDepthAmortizesWAN is the asymmetry the depth experiment
// measures: with the same 8 leaves and horizon, a deeper tree pays the
// expensive root uplink less often per iteration, so inserting a regional
// tier between LAN and WAN must not slow the run down at equal local work.
func TestSimulateTreeDepthAmortizesWAN(t *testing.T) {
	payload := ModelPayload(104, true)
	const T = 48
	flat, err := SimulateTree(PaperTreeTestbed(simTopo(t, "cloud:tau=2/worker*8"), 3), payload, T)
	if err != nil {
		t.Fatal(err)
	}
	three, err := SimulateTree(PaperTreeTestbed(simTopo(t, "cloud:tau=8/edge*4:tau=2/worker*2"), 3), payload, T)
	if err != nil {
		t.Fatal(err)
	}
	if three.Total() >= flat.Total() {
		t.Errorf("three-level run (%v) not faster than two-level (%v) despite WAN amortization",
			three.Total(), flat.Total())
	}
}

// TestSimulateTreeValidation pins the environment error paths.
func TestSimulateTreeValidation(t *testing.T) {
	topo := simTopo(t, "cloud:tau=4/edge*2:tau=2/worker*2")
	payload := ModelPayload(104, true)
	good := PaperTreeTestbed(topo, 1)
	if _, err := SimulateTree(good, payload, 23); err == nil {
		t.Error("misaligned horizon accepted")
	}
	short := *good
	short.Leaves = short.Leaves[:2]
	if _, err := SimulateTree(&short, payload, 24); err == nil {
		t.Error("missing leaf profiles accepted")
	}
	unlinked := *good
	unlinked.Links = unlinked.Links[:1]
	if _, err := SimulateTree(&unlinked, payload, 24); err == nil {
		t.Error("missing link profiles accepted")
	}
}
