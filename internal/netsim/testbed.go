package netsim

import "time"

// The paper's testbed devices (§V-D). Median per-iteration compute delays
// are calibrated estimates for CNN-on-MNIST mini-batch training; the
// heterogeneity ratios between devices are what the experiments exercise.
var (
	// LaptopI3 is the Intel Core i3 M380 laptop worker.
	LaptopI3 = DeviceProfile{Name: "laptop-i3-m380", Median: 85 * time.Millisecond, Sigma: 0.18}
	// NubiaZ17s is the Snapdragon 835 phone worker.
	NubiaZ17s = DeviceProfile{Name: "nubia-z17s-sd835", Median: 95 * time.Millisecond, Sigma: 0.22}
	// RealmeGTNeo is the Dimensity 1200 phone worker (fastest).
	RealmeGTNeo = DeviceProfile{Name: "realme-gt-neo-d1200", Median: 55 * time.Millisecond, Sigma: 0.2}
	// RedmiK30Ultra is the Dimensity 1000+ phone worker.
	RedmiK30Ultra = DeviceProfile{Name: "redmi-k30u-d1000p", Median: 62 * time.Millisecond, Sigma: 0.2}
	// MacBookEdge is the MacBook Pro 2018 (i7-8750H) edge aggregator.
	MacBookEdge = DeviceProfile{Name: "macbook-pro-2018", Median: 6 * time.Millisecond, Sigma: 0.1}
	// GPUServerCloud is the 4×RTX-2080Ti tower server cloud aggregator.
	GPUServerCloud = DeviceProfile{Name: "gpu-tower-server", Median: 2 * time.Millisecond, Sigma: 0.1}
)

// The paper's testbed links: workers on 5 GHz Wi-Fi behind a HUAWEI Honor
// X2+ router, the edge node wired to the same router, and the cloud reached
// over the public Internet via a different ISP.
var (
	// WiFi5GHz is the worker↔edge LAN hop.
	WiFi5GHz = LinkProfile{Name: "wifi-5ghz", RTT: 4 * time.Millisecond, Mbps: 300, Jitter: 0.25}
	// WANEdgeCloud is the edge↔cloud public-Internet path (wired uplink).
	WANEdgeCloud = LinkProfile{Name: "wan-edge-cloud", RTT: 40 * time.Millisecond, Mbps: 40, Jitter: 0.35}
	// WANWorkerCloud is the worker↔cloud public-Internet path used by
	// two-tier algorithms (Wi-Fi + residential uplink, slower and noisier).
	WANWorkerCloud = LinkProfile{Name: "wan-worker-cloud", RTT: 50 * time.Millisecond, Mbps: 20, Jitter: 0.4}
)

// PaperTestbed assembles the §V-D environment for n workers, cycling the
// four physical devices when n > 4, grouped into edges of workersPerEdge.
func PaperTestbed(workersPerEdge []int, seed uint64) *Env {
	devices := []DeviceProfile{LaptopI3, NubiaZ17s, RealmeGTNeo, RedmiK30Ultra}
	n := 0
	for _, c := range workersPerEdge {
		n += c
	}
	workers := make([]DeviceProfile, n)
	for i := range workers {
		workers[i] = devices[i%len(devices)]
	}
	return &Env{
		Workers:        workers,
		WorkersPerEdge: workersPerEdge,
		EdgeCompute:    MacBookEdge,
		CloudCompute:   GPUServerCloud,
		WorkerEdge:     WiFi5GHz,
		EdgeCloud:      WANEdgeCloud,
		WorkerCloud:    WANWorkerCloud,
		Seed:           seed,
	}
}

// ModelPayload returns the per-sync Payload for a model of dim float64
// parameters. HierAdMo-style algorithms upload four model-sized vectors
// (model, momentum, and the two interval accumulators of Alg. 1 line 9) and
// download two; momentum-free algorithms move one each way.
func ModelPayload(dim int, momentum bool) Payload {
	bytesPerVec := dim * 8
	if momentum {
		return Payload{
			WorkerUp:   4 * bytesPerVec,
			WorkerDown: 2 * bytesPerVec,
			EdgeUp:     2 * bytesPerVec,
			EdgeDown:   2 * bytesPerVec,
		}
	}
	return Payload{
		WorkerUp:   bytesPerVec,
		WorkerDown: bytesPerVec,
		EdgeUp:     bytesPerVec,
		EdgeDown:   bytesPerVec,
	}
}
