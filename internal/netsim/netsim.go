// Package netsim reproduces the paper's trace-driven simulation (§V-D): it
// models per-iteration compute delays of heterogeneous worker devices,
// latency/bandwidth link delays, and the synchronization structure of
// two-tier and three-tier federated learning, then replays a training
// accuracy curve onto the simulated timeline to obtain wall-clock
// time-to-accuracy.
//
// The device and link profiles mirror the structure of the paper's physical
// testbed (an i3 laptop and three Android phones as workers, a MacBook Pro
// edge node, a GPU server cloud, 5 GHz Wi-Fi worker links, wired edge link,
// and a public-Internet WAN). Absolute values are calibrated estimates; what
// the experiment compares — and what this simulator preserves — is the
// architectural asymmetry: LAN syncs are cheap and frequent, WAN syncs are
// expensive, and the three-tier layout pays WAN only every τ·π iterations
// while two-tier pays it every sync.
package netsim

import (
	"errors"
	"fmt"
	"time"

	"hieradmo/internal/rng"
)

// ErrEnv wraps environment validation failures.
var ErrEnv = errors.New("netsim: invalid environment")

// DeviceProfile models a device's per-iteration compute delay as a
// log-normal distribution (heavy-tailed, always positive), parameterized by
// the median delay and a shape factor.
type DeviceProfile struct {
	// Name identifies the device in reports.
	Name string
	// Median is the median per-iteration compute delay.
	Median time.Duration
	// Sigma is the log-normal shape parameter; 0 makes the delay
	// deterministic.
	Sigma float64
}

// Sample draws one per-iteration compute delay.
func (p DeviceProfile) Sample(r *rng.RNG) time.Duration {
	if p.Sigma == 0 {
		return p.Median
	}
	f := r.LogNormal(0, p.Sigma)
	return time.Duration(float64(p.Median) * f)
}

// LinkProfile models a network link with fixed round-trip latency and a
// log-normally jittered throughput.
type LinkProfile struct {
	// Name identifies the link in reports.
	Name string
	// RTT is the round-trip latency paid once per transfer.
	RTT time.Duration
	// Mbps is the median throughput in megabits per second.
	Mbps float64
	// Jitter is the log-normal shape on the transfer duration; 0 disables.
	Jitter float64
}

// Transfer returns the time to move size bytes across the link.
func (l LinkProfile) Transfer(size int, r *rng.RNG) time.Duration {
	if l.Mbps <= 0 {
		return l.RTT
	}
	seconds := float64(size*8) / (l.Mbps * 1e6)
	if l.Jitter > 0 {
		seconds *= r.LogNormal(0, l.Jitter)
	}
	return l.RTT + time.Duration(seconds*float64(time.Second))
}

// Payload describes how many bytes each synchronization leg moves. HierAdMo
// workers upload the model, momentum, and the two interval accumulators
// (Alg. 1 line 9) and download the model and momentum; plain FedAvg-style
// algorithms move one model each way.
type Payload struct {
	// WorkerUp/WorkerDown are the bytes a worker exchanges with its
	// aggregator (edge in three-tier, cloud in two-tier) per sync.
	WorkerUp, WorkerDown int
	// EdgeUp/EdgeDown are the bytes an edge exchanges with the cloud per
	// cloud sync (three-tier only).
	EdgeUp, EdgeDown int
}

// Env is a complete timing environment for one deployment.
type Env struct {
	// Workers lists the compute profile of every worker, flattened in the
	// same order the FL topology flattens them (edge 0 workers first).
	Workers []DeviceProfile
	// WorkersPerEdge groups the flattened workers into edges (three-tier).
	WorkersPerEdge []int
	// EdgeCompute and CloudCompute are per-aggregation compute costs.
	EdgeCompute, CloudCompute DeviceProfile
	// WorkerEdge is the worker↔edge LAN link (three-tier).
	WorkerEdge LinkProfile
	// EdgeCloud is the edge↔cloud WAN link (three-tier).
	EdgeCloud LinkProfile
	// WorkerCloud is the worker↔cloud WAN link (two-tier).
	WorkerCloud LinkProfile
	// Seed drives all delay sampling.
	Seed uint64
}

// Validate checks structural consistency.
func (e *Env) Validate(threeTier bool) error {
	if len(e.Workers) == 0 {
		return fmt.Errorf("%w: no workers", ErrEnv)
	}
	if !threeTier {
		return nil
	}
	total := 0
	for _, c := range e.WorkersPerEdge {
		if c <= 0 {
			return fmt.Errorf("%w: edge with %d workers", ErrEnv, c)
		}
		total += c
	}
	if total != len(e.Workers) {
		return fmt.Errorf("%w: %d workers grouped into %d edge slots", ErrEnv, len(e.Workers), total)
	}
	return nil
}

// Timeline maps iteration index t ∈ [0, T] to cumulative simulated
// wall-clock time; Timeline[0] is always 0.
type Timeline []time.Duration

// At returns the wall-clock time after t iterations, clamping to the range.
func (tl Timeline) At(t int) time.Duration {
	if len(tl) == 0 {
		return 0
	}
	if t < 0 {
		t = 0
	}
	if t >= len(tl) {
		t = len(tl) - 1
	}
	return tl[t]
}

// Total returns the full-run duration.
func (tl Timeline) Total() time.Duration { return tl.At(len(tl) - 1) }
