package netsim

import (
	"fmt"
	"time"

	"hieradmo/internal/rng"
	"hieradmo/internal/topology"
)

// TreeEnv is a timing environment for an N-tier deployment described by a
// cluster topology: per-leaf compute profiles, one aggregation compute
// profile per aggregating level, and one link profile per parent/child tier
// boundary.
type TreeEnv struct {
	// Topo is the tree shape, including every level's sync period τℓ.
	Topo *topology.Topology
	// Leaves lists the compute profile of every training leaf in topology
	// order (leaf j of the spec is Leaves[j]).
	Leaves []DeviceProfile
	// AggCompute[i] is the per-aggregation compute cost at level i, for the
	// aggregating levels 0 (root) through Depth-2 (leaf parent).
	AggCompute []DeviceProfile
	// Links[i] is the link between a level-i aggregator and its level-i+1
	// children; Links[Depth-2] is the leaf LAN, Links[0] the root uplink.
	Links []LinkProfile
	// Seed drives all delay sampling.
	Seed uint64
}

// Validate checks the environment against its topology.
func (e *TreeEnv) Validate() error {
	if e.Topo == nil {
		return fmt.Errorf("%w: no topology", ErrEnv)
	}
	if err := e.Topo.Validate(); err != nil {
		return err
	}
	if got, want := len(e.Leaves), e.Topo.NumLeaves(); got != want {
		return fmt.Errorf("%w: %d leaf profiles for %d leaves", ErrEnv, got, want)
	}
	aggLevels := e.Topo.Depth() - 1
	if got := len(e.AggCompute); got != aggLevels {
		return fmt.Errorf("%w: %d aggregation profiles for %d aggregating levels", ErrEnv, got, aggLevels)
	}
	if got := len(e.Links); got != aggLevels {
		return fmt.Errorf("%w: %d link profiles for %d tier boundaries", ErrEnv, got, aggLevels)
	}
	return nil
}

// SimulateTree builds the timeline of a synchronous N-tier run over the
// environment's topology: leaves compute τ_{ℓ-1} local iterations in
// parallel, every aggregator waits for its slowest child subtree plus the
// link exchange and its own aggregation compute, and each tier boundary is
// paid once per parent round — so deeper trees pay the expensive root uplink
// ever more rarely, the asymmetry the depth experiment measures. The leaf
// boundary moves payload.WorkerUp/WorkerDown, every interior boundary
// payload.EdgeUp/EdgeDown. Iteration times within a root round are spread
// uniformly, exact at root boundaries and a linear interpolation in between.
//
// For a three-level topology whose periods match (tau, pi) the draw sequence
// is identical to SimulateThreeTier's: matched environments reproduce its
// timeline bit for bit.
func SimulateTree(env *TreeEnv, payload Payload, tTotal int) (Timeline, error) {
	if err := env.Validate(); err != nil {
		return nil, err
	}
	topo := env.Topo
	if tTotal <= 0 {
		return nil, fmt.Errorf("%w: T=%d", ErrEnv, tTotal)
	}
	if err := topo.AlignsWith(tTotal); err != nil {
		return nil, err
	}
	r := rng.New(env.Seed).Split(0x3a3a)
	leavesPer := topo.NumLeaves() / topo.Width(topo.LeafParent())

	var nodeRound func(i, j int) time.Duration
	nodeRound = func(i, j int) time.Duration {
		link := env.Links[i]
		if i == topo.LeafParent() {
			// Children are training leaves: slowest leaf over the level's
			// period plus its LAN exchange.
			tau := topo.Levels[i].Tau
			var slowest time.Duration
			for c := 0; c < leavesPer; c++ {
				var t time.Duration
				for it := 0; it < tau; it++ {
					t += env.Leaves[j*leavesPer+c].Sample(r)
				}
				t += link.Transfer(payload.WorkerUp, r)
				t += link.Transfer(payload.WorkerDown, r)
				if t > slowest {
					slowest = t
				}
			}
			return slowest + env.AggCompute[i].Sample(r)
		}
		// Interior: each child subtree runs its own rounds back to back and
		// pays this boundary's link once per parent round; siblings only
		// barrier here.
		childRounds := topo.SyncsPerParent(i + 1)
		fan := topo.Levels[i+1].Fanout
		var slowest time.Duration
		for c := 0; c < fan; c++ {
			var t time.Duration
			for k := 0; k < childRounds; k++ {
				t += nodeRound(i+1, j*fan+c)
			}
			t += link.Transfer(payload.EdgeUp, r)
			t += link.Transfer(payload.EdgeDown, r)
			if t > slowest {
				slowest = t
			}
		}
		return slowest + env.AggCompute[i].Sample(r)
	}

	period := topo.Levels[0].Tau
	tl := make(Timeline, tTotal+1)
	var now time.Duration
	for p := 0; p < tTotal/period; p++ {
		intervalTime := nodeRound(0, 0)
		for i := 1; i <= period; i++ {
			tl[p*period+i] = now + intervalTime*time.Duration(i)/time.Duration(period)
		}
		now += intervalTime
	}
	return tl, nil
}

// MetroRegional is the metro-area aggregation link used between the LAN and
// the public-Internet uplink when a deployment has intermediate tiers:
// faster and steadier than the WAN, slower than the Wi-Fi LAN.
var MetroRegional = LinkProfile{Name: "metro-regional", RTT: 12 * time.Millisecond, Mbps: 120, Jitter: 0.3}

// PaperTreeTestbed assembles a TreeEnv over the §V-D testbed hardware for an
// arbitrary topology: training leaves cycle the four physical worker
// devices, the leaf parent aggregates on the MacBook edge node, the root on
// the GPU server, and any intermediate tiers on MacBook-class regional
// aggregators. The leaf boundary is the 5 GHz Wi-Fi LAN, the root boundary
// the public-Internet WAN (the direct worker↔cloud path when the tree is
// two-level), and intermediate boundaries the metro link.
func PaperTreeTestbed(topo *topology.Topology, seed uint64) *TreeEnv {
	devices := []DeviceProfile{LaptopI3, NubiaZ17s, RealmeGTNeo, RedmiK30Ultra}
	leaves := make([]DeviceProfile, topo.NumLeaves())
	for i := range leaves {
		leaves[i] = devices[i%len(devices)]
	}
	aggLevels := topo.Depth() - 1
	agg := make([]DeviceProfile, aggLevels)
	links := make([]LinkProfile, aggLevels)
	for i := 0; i < aggLevels; i++ {
		switch {
		case i == 0:
			agg[i] = GPUServerCloud
			if aggLevels == 1 {
				links[i] = WANWorkerCloud
			} else {
				links[i] = WANEdgeCloud
			}
		case i == aggLevels-1:
			agg[i] = MacBookEdge
			links[i] = WiFi5GHz
		default:
			agg[i] = MacBookEdge
			links[i] = MetroRegional
		}
	}
	return &TreeEnv{Topo: topo, Leaves: leaves, AggCompute: agg, Links: links, Seed: seed}
}
