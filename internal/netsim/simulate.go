package netsim

import (
	"fmt"
	"time"

	"hieradmo/internal/rng"
)

// SimulateThreeTier builds the timeline of a synchronous three-tier run:
// workers compute τ local iterations in parallel, each edge waits for its
// slowest worker plus the LAN exchange, and every π edge intervals the cloud
// waits for the slowest edge plus the WAN exchange. Iteration times within a
// cloud interval are spread uniformly, which is exact at every cloud
// boundary and a linear interpolation in between.
func SimulateThreeTier(env *Env, payload Payload, tTotal, tau, pi int) (Timeline, error) {
	if err := env.Validate(true); err != nil {
		return nil, err
	}
	if tau <= 0 || pi <= 0 || tTotal <= 0 || tTotal%(tau*pi) != 0 {
		return nil, fmt.Errorf("%w: T=%d tau=%d pi=%d", ErrEnv, tTotal, tau, pi)
	}
	r := rng.New(env.Seed).Split(0x3a3a)
	tl := make(Timeline, tTotal+1)
	period := tau * pi
	var now time.Duration
	for p := 0; p < tTotal/period; p++ {
		var slowestEdge time.Duration
		offset := 0
		for _, count := range env.WorkersPerEdge {
			edgeWorkers := env.Workers[offset : offset+count]
			offset += count
			var edgeTime time.Duration
			for k := 0; k < pi; k++ {
				// Slowest worker in the edge over τ iterations, plus the
				// LAN exchange and edge aggregation compute.
				var slowestWorker time.Duration
				for _, w := range edgeWorkers {
					var compute time.Duration
					for it := 0; it < tau; it++ {
						compute += w.Sample(r)
					}
					compute += env.WorkerEdge.Transfer(payload.WorkerUp, r)
					compute += env.WorkerEdge.Transfer(payload.WorkerDown, r)
					if compute > slowestWorker {
						slowestWorker = compute
					}
				}
				edgeTime += slowestWorker + env.EdgeCompute.Sample(r)
			}
			// WAN legs once per cloud interval.
			edgeTime += env.EdgeCloud.Transfer(payload.EdgeUp, r)
			edgeTime += env.EdgeCloud.Transfer(payload.EdgeDown, r)
			if edgeTime > slowestEdge {
				slowestEdge = edgeTime
			}
		}
		intervalTime := slowestEdge + env.CloudCompute.Sample(r)
		for i := 1; i <= period; i++ {
			tl[p*period+i] = now + intervalTime*time.Duration(i)/time.Duration(period)
		}
		now += intervalTime
	}
	return tl, nil
}

// SimulateTwoTier builds the timeline of a synchronous two-tier run: every
// worker computes `period` iterations and exchanges the payload with the
// cloud over the WAN; the round ends when the slowest worker finishes.
func SimulateTwoTier(env *Env, payload Payload, tTotal, period int) (Timeline, error) {
	if err := env.Validate(false); err != nil {
		return nil, err
	}
	if period <= 0 || tTotal <= 0 || tTotal%period != 0 {
		return nil, fmt.Errorf("%w: T=%d period=%d", ErrEnv, tTotal, period)
	}
	r := rng.New(env.Seed).Split(0x2a2a)
	tl := make(Timeline, tTotal+1)
	var now time.Duration
	for p := 0; p < tTotal/period; p++ {
		var slowest time.Duration
		for _, w := range env.Workers {
			var compute time.Duration
			for it := 0; it < period; it++ {
				compute += w.Sample(r)
			}
			compute += env.WorkerCloud.Transfer(payload.WorkerUp, r)
			compute += env.WorkerCloud.Transfer(payload.WorkerDown, r)
			if compute > slowest {
				slowest = compute
			}
		}
		intervalTime := slowest + env.CloudCompute.Sample(r)
		for i := 1; i <= period; i++ {
			tl[p*period+i] = now + intervalTime*time.Duration(i)/time.Duration(period)
		}
		now += intervalTime
	}
	return tl, nil
}

// CurvePoint is one (iteration, accuracy) sample of a training run.
type CurvePoint struct {
	Iter int
	Acc  float64
}

// TimeToAccuracy replays curve onto tl and returns the simulated wall-clock
// time of the first recorded point whose accuracy reaches target.
func TimeToAccuracy(tl Timeline, curve []CurvePoint, target float64) (time.Duration, bool) {
	for _, p := range curve {
		if p.Acc >= target {
			return tl.At(p.Iter), true
		}
	}
	return 0, false
}
