package tensor

// Cache-blocked matrix kernels shared by the neural-network layers
// (internal/nn routes Dense and the im2col Conv2D path through them).
//
// Both kernels are deterministic: for every destination element the
// floating-point additions happen in one fixed sequence, independent of
// blocking. The 4-wide column blocking keeps four independent accumulators
// in registers — it widens the dst stride per pass, never the reduction
// order — so results are bitwise identical to the scalar column loop.
//
// Bit-identity contract (relied on by the golden-trace tests): callers that
// replace a skip-on-zero scalar loop with these kernels stay bitwise
// identical for finite inputs, because an accumulator that starts at +0 can
// never become -0 through addition (IEEE-754 round-to-nearest: exact
// cancellation yields +0, and +0 + -0 = +0), so adding a ±0 product — a
// padding cell or a zero gradient — never changes the accumulator's bits.
// Inf/NaN inputs void the contract (0·Inf = NaN); the training stack only
// produces finite values.

// GEMMBias computes dst = A·B + bias·1ᵀ for row-major A (m×k), B (k×n) and
// dst (m×n), with bias[i] added as the initial value of row i's accumulator.
//
// kChunk controls the reduction tree. With kChunk = 0 each element is one
// flat sum: dst[i,j] = bias[i] + Σ_kk A[i,kk]·B[kk,j], kk ascending. With
// kChunk > 0 the K dimension is cut into consecutive chunks of that length;
// each chunk is summed into its own sub-accumulator (starting at 0) before
// being added to the running total. The chunked mode reproduces the
// summation order of a per-input-channel convolution loop (chunk length
// k·k), which is what keeps the im2col path bitwise identical to the naive
// nested loops.
func GEMMBias(dst, a, b, bias []float64, m, n, k, kChunk int) {
	for i := 0; i < m; i++ {
		ar := a[i*k : (i+1)*k]
		d := dst[i*n : (i+1)*n]
		bi := bias[i]
		j := 0
		for ; j+4 <= n; j += 4 {
			acc0, acc1, acc2, acc3 := bi, bi, bi, bi
			if kChunk > 0 {
				off := j // running row offset, replaces a kk·n multiply per tap
				for kc := 0; kc < k; kc += kChunk {
					ke := kc + kChunk
					if ke > k {
						ke = k
					}
					var s0, s1, s2, s3 float64
					for kk := kc; kk < ke; kk++ {
						w := ar[kk]
						br := b[off : off+4 : off+4]
						off += n
						s0 += w * br[0]
						s1 += w * br[1]
						s2 += w * br[2]
						s3 += w * br[3]
					}
					acc0 += s0
					acc1 += s1
					acc2 += s2
					acc3 += s3
				}
			} else {
				off := j
				for kk := 0; kk < k; kk++ {
					w := ar[kk]
					br := b[off : off+4 : off+4]
					off += n
					acc0 += w * br[0]
					acc1 += w * br[1]
					acc2 += w * br[2]
					acc3 += w * br[3]
				}
			}
			d[j] = acc0
			d[j+1] = acc1
			d[j+2] = acc2
			d[j+3] = acc3
		}
		for ; j < n; j++ {
			acc := bi
			if kChunk > 0 {
				off := j
				for kc := 0; kc < k; kc += kChunk {
					ke := kc + kChunk
					if ke > k {
						ke = k
					}
					var s float64
					for kk := kc; kk < ke; kk++ {
						s += ar[kk] * b[off]
						off += n
					}
					acc += s
				}
			} else {
				off := j
				for kk := 0; kk < k; kk++ {
					acc += ar[kk] * b[off]
					off += n
				}
			}
			d[j] = acc
		}
	}
}

// GEMMAddTransB accumulates dst += A·Bᵀ for row-major A (m×k), B (n×k) and
// dst (m×n). Each element's accumulator starts from the existing dst value
// and adds the K products in ascending kk order, so repeated calls extend
// the same per-element addition sequence — exactly how a convolution's
// weight gradient accumulates across the samples of a mini-batch.
func GEMMAddTransB(dst, a, b []float64, m, n, k int) {
	for i := 0; i < m; i++ {
		ar := a[i*k : (i+1)*k]
		d := dst[i*n : (i+1)*n]
		j := 0
		for ; j+4 <= n; j += 4 {
			acc0, acc1, acc2, acc3 := d[j], d[j+1], d[j+2], d[j+3]
			b0 := b[j*k : (j+1)*k]
			b1 := b[(j+1)*k : (j+2)*k]
			b2 := b[(j+2)*k : (j+3)*k]
			b3 := b[(j+3)*k : (j+4)*k]
			for kk, w := range ar {
				acc0 += w * b0[kk]
				acc1 += w * b1[kk]
				acc2 += w * b2[kk]
				acc3 += w * b3[kk]
			}
			d[j] = acc0
			d[j+1] = acc1
			d[j+2] = acc2
			d[j+3] = acc3
		}
		for ; j < n; j++ {
			acc := d[j]
			br := b[j*k : (j+1)*k]
			for kk, w := range ar {
				acc += w * br[kk]
			}
			d[j] = acc
		}
	}
}
