package tensor

import "sync"

// Slab is a bump allocator over one contiguous pooled float64 block. A
// simulation run carves all of its model-sized state vectors out of a
// single slab instead of issuing dozens of individual allocations, and
// returns the whole block to a sync.Pool when the run ends — the round
// loop's steady-state heap traffic drops to (nearly) zero across repeated
// runs.
//
// Slabs are single-goroutine objects: Alloc must not race. The vectors
// carved from a slab may be used concurrently (each by one goroutine), and
// every allocation is padded to a 64-byte cache-line boundary so vectors
// owned by different workers never share a line.
type Slab struct {
	buf  []float64
	used int
}

// slabAlign is the allocation granularity in float64s (one 64-byte cache
// line), so adjacent Alloc results never false-share.
const slabAlign = 8

var slabPool sync.Pool

// Padded returns n rounded up to the slab allocation granularity. Callers
// size a slab as the sum of Padded(len) over the vectors they will Alloc.
func Padded(n int) int {
	return (n + slabAlign - 1) &^ (slabAlign - 1)
}

// GetSlab returns a zeroed slab with capacity for n float64s, reusing a
// pooled block when one is large enough. Pair with PutSlab when every
// vector carved from it is dead.
func GetSlab(n int) *Slab {
	if s, ok := slabPool.Get().(*Slab); ok && cap(s.buf) >= n {
		s.buf = s.buf[:n]
		for i := range s.buf {
			s.buf[i] = 0
		}
		s.used = 0
		return s
	}
	return &Slab{buf: make([]float64, n)}
}

// PutSlab recycles a slab. The caller must not touch the slab or any
// vector carved from it afterwards.
func PutSlab(s *Slab) {
	if s != nil {
		slabPool.Put(s)
	}
}

// Alloc carves the next n-element zero vector out of the slab. The result
// is capacity-clamped so appends can never bleed into a neighbour. Alloc
// panics (slice out of range) if the slab was sized too small — a
// programming error in the caller's budget, never data-dependent.
func (s *Slab) Alloc(n int) Vector {
	v := Vector(s.buf[s.used : s.used+n : s.used+n])
	s.used += Padded(n)
	if s.used > len(s.buf) {
		s.used = len(s.buf)
	}
	return v
}
