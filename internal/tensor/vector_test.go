package tensor

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestNewVectorZeroed(t *testing.T) {
	v := NewVector(5)
	if len(v) != 5 {
		t.Fatalf("len = %d, want 5", len(v))
	}
	for i, x := range v {
		if x != 0 {
			t.Errorf("v[%d] = %v, want 0", i, x)
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	v := Vector{1, 2, 3}
	c := v.Clone()
	c[0] = 99
	if v[0] != 1 {
		t.Errorf("clone aliases original: v[0] = %v", v[0])
	}
}

func TestCloneNil(t *testing.T) {
	var v Vector
	if c := v.Clone(); c != nil {
		t.Errorf("Clone(nil) = %v, want nil", c)
	}
}

func TestCopyFrom(t *testing.T) {
	v := NewVector(3)
	if err := v.CopyFrom(Vector{1, 2, 3}); err != nil {
		t.Fatalf("CopyFrom: %v", err)
	}
	if v[2] != 3 {
		t.Errorf("v[2] = %v, want 3", v[2])
	}
	if err := v.CopyFrom(Vector{1}); !errors.Is(err, ErrDimMismatch) {
		t.Errorf("mismatched CopyFrom error = %v, want ErrDimMismatch", err)
	}
}

func TestAddSubScale(t *testing.T) {
	v := Vector{1, 2, 3}
	if err := v.Add(Vector{1, 1, 1}); err != nil {
		t.Fatal(err)
	}
	if v[0] != 2 || v[1] != 3 || v[2] != 4 {
		t.Errorf("after Add, v = %v", v)
	}
	if err := v.Sub(Vector{2, 2, 2}); err != nil {
		t.Fatal(err)
	}
	if v[0] != 0 || v[1] != 1 || v[2] != 2 {
		t.Errorf("after Sub, v = %v", v)
	}
	v.Scale(3)
	if v[2] != 6 {
		t.Errorf("after Scale, v = %v", v)
	}
}

func TestAddDimMismatch(t *testing.T) {
	v := Vector{1}
	if err := v.Add(Vector{1, 2}); !errors.Is(err, ErrDimMismatch) {
		t.Errorf("err = %v, want ErrDimMismatch", err)
	}
	if err := v.Sub(Vector{1, 2}); !errors.Is(err, ErrDimMismatch) {
		t.Errorf("err = %v, want ErrDimMismatch", err)
	}
	if err := v.AXPY(2, Vector{1, 2}); !errors.Is(err, ErrDimMismatch) {
		t.Errorf("err = %v, want ErrDimMismatch", err)
	}
}

func TestAXPY(t *testing.T) {
	v := Vector{1, 1}
	if err := v.AXPY(2, Vector{3, 4}); err != nil {
		t.Fatal(err)
	}
	if v[0] != 7 || v[1] != 9 {
		t.Errorf("v = %v, want [7 9]", v)
	}
}

func TestDot(t *testing.T) {
	got, err := Dot(Vector{1, 2, 3}, Vector{4, 5, 6})
	if err != nil {
		t.Fatal(err)
	}
	if got != 32 {
		t.Errorf("dot = %v, want 32", got)
	}
	if _, err := Dot(Vector{1}, Vector{1, 2}); !errors.Is(err, ErrDimMismatch) {
		t.Errorf("err = %v, want ErrDimMismatch", err)
	}
}

func TestNorm(t *testing.T) {
	v := Vector{3, 4}
	if got := v.Norm(); !almostEqual(got, 5, 1e-12) {
		t.Errorf("norm = %v, want 5", got)
	}
	if got := v.NormSq(); !almostEqual(got, 25, 1e-12) {
		t.Errorf("normsq = %v, want 25", got)
	}
}

func TestCosine(t *testing.T) {
	tests := []struct {
		name string
		a, b Vector
		want float64
	}{
		{name: "parallel", a: Vector{1, 0}, b: Vector{2, 0}, want: 1},
		{name: "antiparallel", a: Vector{1, 0}, b: Vector{-3, 0}, want: -1},
		{name: "orthogonal", a: Vector{1, 0}, b: Vector{0, 5}, want: 0},
		{name: "zero vector", a: Vector{0, 0}, b: Vector{1, 1}, want: 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := Cosine(tt.a, tt.b)
			if err != nil {
				t.Fatal(err)
			}
			if !almostEqual(got, tt.want, 1e-12) {
				t.Errorf("cos = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestCosineBounded(t *testing.T) {
	// Property: cosine is always within [-1, 1] (Cauchy-Schwarz).
	f := func(a, b []float64) bool {
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		c, err := Cosine(Vector(a[:n]), Vector(b[:n]))
		if err != nil {
			return false
		}
		return c >= -1 && c <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDist(t *testing.T) {
	got, err := Dist(Vector{0, 0}, Vector{3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(got, 5, 1e-12) {
		t.Errorf("dist = %v, want 5", got)
	}
}

func TestWeightedSum(t *testing.T) {
	dst := NewVector(2)
	err := WeightedSum(dst, []float64{0.25, 0.75}, []Vector{{4, 0}, {0, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if dst[0] != 1 || dst[1] != 3 {
		t.Errorf("dst = %v, want [1 3]", dst)
	}
}

func TestWeightedSumErrors(t *testing.T) {
	dst := NewVector(2)
	if err := WeightedSum(dst, []float64{1}, []Vector{{1, 1}, {2, 2}}); !errors.Is(err, ErrDimMismatch) {
		t.Errorf("weights/vectors count mismatch err = %v", err)
	}
	if err := WeightedSum(dst, []float64{1}, []Vector{{1, 2, 3}}); !errors.Is(err, ErrDimMismatch) {
		t.Errorf("vector length mismatch err = %v", err)
	}
}

func TestWeightedSumPreservesConvexCombination(t *testing.T) {
	// Property: a convex combination of identical vectors is that vector.
	f := func(raw []float64, w1 uint8) bool {
		if len(raw) == 0 {
			return true
		}
		v := Vector(raw)
		a := float64(w1%100) / 100.0
		dst := NewVector(len(v))
		if err := WeightedSum(dst, []float64{a, 1 - a}, []Vector{v, v}); err != nil {
			return false
		}
		for i := range dst {
			if math.IsNaN(v[i]) || math.IsInf(v[i], 0) {
				continue
			}
			if math.Abs(dst[i]-v[i]) > 1e-9*(1+math.Abs(v[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLerp(t *testing.T) {
	dst := NewVector(2)
	if err := Lerp(dst, Vector{0, 0}, Vector{10, 20}, 0.5); err != nil {
		t.Fatal(err)
	}
	if dst[0] != 5 || dst[1] != 10 {
		t.Errorf("dst = %v, want [5 10]", dst)
	}
	if err := Lerp(dst, Vector{0}, Vector{1, 2}, 0.5); !errors.Is(err, ErrDimMismatch) {
		t.Errorf("err = %v, want ErrDimMismatch", err)
	}
}

func TestMaxAbs(t *testing.T) {
	if got := (Vector{-7, 3, 5}).MaxAbs(); got != 7 {
		t.Errorf("MaxAbs = %v, want 7", got)
	}
	if got := (Vector{}).MaxAbs(); got != 0 {
		t.Errorf("MaxAbs(empty) = %v, want 0", got)
	}
}

func TestIsFinite(t *testing.T) {
	if !(Vector{1, 2}).IsFinite() {
		t.Error("finite vector reported non-finite")
	}
	if (Vector{1, math.NaN()}).IsFinite() {
		t.Error("NaN vector reported finite")
	}
	if (Vector{math.Inf(1)}).IsFinite() {
		t.Error("Inf vector reported finite")
	}
}

func TestArgMax(t *testing.T) {
	tests := []struct {
		name string
		v    Vector
		want int
	}{
		{name: "simple", v: Vector{1, 5, 3}, want: 1},
		{name: "tie goes low", v: Vector{5, 5}, want: 0},
		{name: "empty", v: Vector{}, want: -1},
		{name: "negative", v: Vector{-3, -1, -2}, want: 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.v.ArgMax(); got != tt.want {
				t.Errorf("ArgMax = %d, want %d", got, tt.want)
			}
		})
	}
}

func TestZeroFill(t *testing.T) {
	v := Vector{1, 2}
	v.Fill(7)
	if v[0] != 7 || v[1] != 7 {
		t.Errorf("after Fill, v = %v", v)
	}
	v.Zero()
	if v[0] != 0 || v[1] != 0 {
		t.Errorf("after Zero, v = %v", v)
	}
}

func TestDotSymmetry(t *testing.T) {
	// Property: dot product is commutative.
	f := func(a, b []float64) bool {
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		x, err1 := Dot(Vector(a[:n]), Vector(b[:n]))
		y, err2 := Dot(Vector(b[:n]), Vector(a[:n]))
		if err1 != nil || err2 != nil {
			return false
		}
		return x == y || (math.IsNaN(x) && math.IsNaN(y))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAXPYSelfAlias(t *testing.T) {
	// v.AXPY(a, v) must behave as v *= (1+a): the loop reads each element
	// before writing it.
	v := Vector{1, 2, 3}
	if err := v.AXPY(1, v); err != nil {
		t.Fatal(err)
	}
	if v[0] != 2 || v[1] != 4 || v[2] != 6 {
		t.Errorf("self-aliased AXPY = %v, want [2 4 6]", v)
	}
}

func TestWeightedSumEmpty(t *testing.T) {
	dst := Vector{7, 7}
	if err := WeightedSum(dst, nil, nil); err != nil {
		t.Fatal(err)
	}
	if dst[0] != 0 || dst[1] != 0 {
		t.Errorf("empty weighted sum should zero dst: %v", dst)
	}
}
