package tensor

import (
	"errors"
	"math"
	"testing"
)

func TestMatrixViewLengthCheck(t *testing.T) {
	if _, err := MatrixView(NewVector(5), 2, 3); !errors.Is(err, ErrDimMismatch) {
		t.Errorf("err = %v, want ErrDimMismatch", err)
	}
	m, err := MatrixView(NewVector(6), 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows != 2 || m.Cols != 3 {
		t.Errorf("shape = %dx%d", m.Rows, m.Cols)
	}
}

func TestMatrixAtSetRow(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(1, 2, 7)
	if m.At(1, 2) != 7 {
		t.Errorf("At(1,2) = %v, want 7", m.At(1, 2))
	}
	row := m.Row(1)
	if row[2] != 7 {
		t.Errorf("Row(1)[2] = %v, want 7", row[2])
	}
	row[0] = 3 // Row is a view.
	if m.At(1, 0) != 3 {
		t.Errorf("row view does not alias storage")
	}
}

func TestMulVec(t *testing.T) {
	m := NewMatrix(2, 3)
	// [1 2 3; 4 5 6]
	for i, v := range []float64{1, 2, 3, 4, 5, 6} {
		m.Data[i] = v
	}
	dst := NewVector(2)
	if err := m.MulVec(dst, Vector{1, 1, 1}); err != nil {
		t.Fatal(err)
	}
	if dst[0] != 6 || dst[1] != 15 {
		t.Errorf("dst = %v, want [6 15]", dst)
	}
}

func TestMulVecT(t *testing.T) {
	m := NewMatrix(2, 3)
	for i, v := range []float64{1, 2, 3, 4, 5, 6} {
		m.Data[i] = v
	}
	dst := NewVector(3)
	if err := m.MulVecT(dst, Vector{1, 1}); err != nil {
		t.Fatal(err)
	}
	if dst[0] != 5 || dst[1] != 7 || dst[2] != 9 {
		t.Errorf("dst = %v, want [5 7 9]", dst)
	}
}

func TestMulVecDimChecks(t *testing.T) {
	m := NewMatrix(2, 3)
	if err := m.MulVec(NewVector(2), NewVector(2)); !errors.Is(err, ErrDimMismatch) {
		t.Errorf("MulVec err = %v", err)
	}
	if err := m.MulVecT(NewVector(2), NewVector(2)); !errors.Is(err, ErrDimMismatch) {
		t.Errorf("MulVecT err = %v", err)
	}
	if err := m.AddOuter(1, NewVector(3), NewVector(3)); !errors.Is(err, ErrDimMismatch) {
		t.Errorf("AddOuter err = %v", err)
	}
}

func TestAddOuter(t *testing.T) {
	m := NewMatrix(2, 2)
	if err := m.AddOuter(2, Vector{1, 3}, Vector{4, 5}); err != nil {
		t.Fatal(err)
	}
	want := []float64{8, 10, 24, 30}
	for i, w := range want {
		if m.Data[i] != w {
			t.Errorf("Data[%d] = %v, want %v", i, m.Data[i], w)
		}
	}
}

// TestMulVecTransposeAdjoint verifies the adjoint identity
// <Mx, y> == <x, Mᵀy>, which the backprop code relies on.
func TestMulVecTransposeAdjoint(t *testing.T) {
	m := NewMatrix(3, 4)
	for i := range m.Data {
		m.Data[i] = float64((i*7)%5) - 2
	}
	x := Vector{1, -2, 3, 0.5}
	y := Vector{2, 0, -1}
	mx := NewVector(3)
	if err := m.MulVec(mx, x); err != nil {
		t.Fatal(err)
	}
	mty := NewVector(4)
	if err := m.MulVecT(mty, y); err != nil {
		t.Fatal(err)
	}
	lhs, _ := Dot(mx, y)
	rhs, _ := Dot(x, mty)
	if math.Abs(lhs-rhs) > 1e-12 {
		t.Errorf("adjoint identity violated: %v vs %v", lhs, rhs)
	}
}
