package tensor

import "fmt"

// Matrix is a dense row-major matrix backed by a flat slice, so a layer's
// weight block inside a model's flat parameter vector can be viewed as a
// Matrix without copying.
type Matrix struct {
	Rows, Cols int
	Data       Vector // len == Rows*Cols, row-major
}

// NewMatrix returns a zero-initialized rows×cols matrix with freshly
// allocated storage.
func NewMatrix(rows, cols int) Matrix {
	return Matrix{Rows: rows, Cols: cols, Data: NewVector(rows * cols)}
}

// MatrixView wraps an existing slice as a rows×cols matrix. The slice length
// must be exactly rows*cols.
func MatrixView(data Vector, rows, cols int) (Matrix, error) {
	if len(data) != rows*cols {
		return Matrix{}, fmt.Errorf("matrix view %dx%d over %d values: %w",
			rows, cols, len(data), ErrDimMismatch)
	}
	return Matrix{Rows: rows, Cols: cols, Data: data}, nil
}

// At returns the element at row r, column c.
func (m Matrix) At(r, c int) float64 {
	return m.Data[r*m.Cols+c]
}

// Set assigns the element at row r, column c.
func (m Matrix) Set(r, c int, v float64) {
	m.Data[r*m.Cols+c] = v
}

// Row returns the r-th row as a view (no copy).
func (m Matrix) Row(r int) Vector {
	return m.Data[r*m.Cols : (r+1)*m.Cols]
}

// MulVec computes dst = M·x. dst must have length Rows, x length Cols.
func (m Matrix) MulVec(dst, x Vector) error {
	if len(x) != m.Cols || len(dst) != m.Rows {
		return fmt.Errorf("mulvec %dx%d by %d into %d: %w",
			m.Rows, m.Cols, len(x), len(dst), ErrDimMismatch)
	}
	for r := 0; r < m.Rows; r++ {
		row := m.Row(r)
		var s float64
		for c, w := range row {
			s += w * x[c]
		}
		dst[r] = s
	}
	return nil
}

// MulVecT computes dst = Mᵀ·x. dst must have length Cols, x length Rows.
func (m Matrix) MulVecT(dst, x Vector) error {
	if len(x) != m.Rows || len(dst) != m.Cols {
		return fmt.Errorf("mulvecT %dx%d by %d into %d: %w",
			m.Rows, m.Cols, len(x), len(dst), ErrDimMismatch)
	}
	dst.Zero()
	for r := 0; r < m.Rows; r++ {
		row := m.Row(r)
		xr := x[r]
		if xr == 0 {
			continue
		}
		for c, w := range row {
			dst[c] += w * xr
		}
	}
	return nil
}

// AddOuter accumulates the outer product a·xyᵀ into the matrix
// (M += a * x yᵀ). x must have length Rows, y length Cols.
func (m Matrix) AddOuter(a float64, x, y Vector) error {
	if len(x) != m.Rows || len(y) != m.Cols {
		return fmt.Errorf("outer %d x %d into %dx%d: %w",
			len(x), len(y), m.Rows, m.Cols, ErrDimMismatch)
	}
	for r := 0; r < m.Rows; r++ {
		ax := a * x[r]
		if ax == 0 {
			continue
		}
		row := m.Row(r)
		for c, yv := range y {
			row[c] += ax * yv
		}
	}
	return nil
}
