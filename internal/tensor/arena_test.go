package tensor

import (
	"testing"

	"hieradmo/internal/parallel"
)

func TestSlabAllocZeroedAndDisjoint(t *testing.T) {
	s := GetSlab(Padded(5) + Padded(3) + Padded(8))
	a := s.Alloc(5)
	b := s.Alloc(3)
	c := s.Alloc(8)
	if len(a) != 5 || len(b) != 3 || len(c) != 8 {
		t.Fatalf("lengths = %d/%d/%d", len(a), len(b), len(c))
	}
	for _, v := range [][]float64{a, b, c} {
		for i, x := range v {
			if x != 0 {
				t.Fatalf("fresh slab vector not zeroed at %d: %v", i, x)
			}
		}
	}
	a.Fill(1)
	b.Fill(2)
	c.Fill(3)
	if b[0] != 2 || c[0] != 3 {
		t.Fatal("neighbouring allocations overlap")
	}
	// Capacity clamping: appending to a view must not bleed into c.
	b = append(b, 99)
	if c[0] != 3 {
		t.Fatal("append to one view corrupted the next")
	}
	PutSlab(s)
}

func TestSlabReuseIsZeroed(t *testing.T) {
	s := GetSlab(Padded(16))
	s.Alloc(16).Fill(42)
	PutSlab(s)
	// The pool may or may not hand the same block back; either way the
	// vectors must come out zeroed.
	s2 := GetSlab(Padded(16))
	v := s2.Alloc(16)
	for i, x := range v {
		if x != 0 {
			t.Fatalf("recycled slab not zeroed at %d: %v", i, x)
		}
	}
	PutSlab(s2)
}

func TestPaddedAlignsToCacheLine(t *testing.T) {
	for n, want := range map[int]int{0: 0, 1: 8, 8: 8, 9: 16, 1500: 1504} {
		if got := Padded(n); got != want {
			t.Errorf("Padded(%d) = %d, want %d", n, got, want)
		}
	}
}

// TestSlabConcurrentVectors exercises the documented concurrency contract
// under the race detector: distinct goroutines each own one slab-carved
// vector and hammer it while others do the same.
func TestSlabConcurrentVectors(t *testing.T) {
	const workers, dim = 8, 1024
	s := GetSlab(workers * Padded(dim))
	vecs := make([]Vector, workers)
	for i := range vecs {
		vecs[i] = s.Alloc(dim)
	}
	if err := parallel.ForEach(len(vecs), func(i int) error {
		v, seed := vecs[i], float64(i)
		for iter := 0; iter < 50; iter++ {
			for j := range v {
				v[j] = seed + float64(j)
			}
			v.Scale(0.5)
		}
		return nil
	}, parallel.WithWorkers(workers)); err != nil {
		t.Fatal(err)
	}
	for i, v := range vecs {
		want := float64(i) * 0.5
		if v[0] != want {
			t.Fatalf("worker %d vector clobbered: %v want %v", i, v[0], want)
		}
	}
	PutSlab(s)
}
