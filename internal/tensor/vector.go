// Package tensor provides the dense linear-algebra primitives shared by the
// whole repository: flat float64 vectors for model parameters and momenta,
// and small dense matrices for neural-network layers.
//
// Everything operates on plain slices so callers can alias sub-ranges of a
// flat parameter vector without copies; functions that write results take the
// destination explicitly, following the BLAS convention.
package tensor

import (
	"errors"
	"fmt"
	"math"
)

// ErrDimMismatch is returned (or wrapped) by operations whose operands have
// incompatible lengths.
var ErrDimMismatch = errors.New("tensor: dimension mismatch")

// Vector is a dense vector of float64 values. A nil Vector is a valid
// zero-length vector.
type Vector []float64

// NewVector returns a zero-initialized vector of length n.
func NewVector(n int) Vector {
	return make(Vector, n)
}

// Clone returns an independent copy of v.
func (v Vector) Clone() Vector {
	if v == nil {
		return nil
	}
	out := make(Vector, len(v))
	copy(out, v)
	return out
}

// CopyFrom copies src into v. The lengths must match.
func (v Vector) CopyFrom(src Vector) error {
	if len(v) != len(src) {
		return fmt.Errorf("copy %d <- %d: %w", len(v), len(src), ErrDimMismatch)
	}
	copy(v, src)
	return nil
}

// Zero sets every element of v to 0.
func (v Vector) Zero() {
	for i := range v {
		v[i] = 0
	}
}

// Fill sets every element of v to c.
func (v Vector) Fill(c float64) {
	for i := range v {
		v[i] = c
	}
}

// Add accumulates u into v element-wise (v += u). Panics are avoided by
// truncating to the shorter operand being a programming error: lengths must
// match.
func (v Vector) Add(u Vector) error {
	if len(v) != len(u) {
		return fmt.Errorf("add %d + %d: %w", len(v), len(u), ErrDimMismatch)
	}
	for i, x := range u {
		v[i] += x
	}
	return nil
}

// Sub subtracts u from v element-wise (v -= u).
func (v Vector) Sub(u Vector) error {
	if len(v) != len(u) {
		return fmt.Errorf("sub %d - %d: %w", len(v), len(u), ErrDimMismatch)
	}
	for i, x := range u {
		v[i] -= x
	}
	return nil
}

// Scale multiplies every element of v by c.
func (v Vector) Scale(c float64) {
	for i := range v {
		v[i] *= c
	}
}

// AXPY computes v += a*u, the BLAS axpy kernel.
func (v Vector) AXPY(a float64, u Vector) error {
	if len(v) != len(u) {
		return fmt.Errorf("axpy %d += a*%d: %w", len(v), len(u), ErrDimMismatch)
	}
	for i, x := range u {
		v[i] += a * x
	}
	return nil
}

// Dot returns the inner product of v and u.
func Dot(v, u Vector) (float64, error) {
	if len(v) != len(u) {
		return 0, fmt.Errorf("dot %d . %d: %w", len(v), len(u), ErrDimMismatch)
	}
	var s float64
	for i, x := range v {
		s += x * u[i]
	}
	return s, nil
}

// Norm returns the Euclidean (L2) norm of v.
func (v Vector) Norm() float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// NormSq returns the squared Euclidean norm of v.
func (v Vector) NormSq() float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return s
}

// Cosine returns the cosine of the angle between v and u. If either vector
// has (near-)zero norm the cosine is defined as 0, which callers in the
// adaptive-momentum code treat as "no usable signal".
func Cosine(v, u Vector) (float64, error) {
	dot, err := Dot(v, u)
	if err != nil {
		return 0, err
	}
	return cosineFromDot(dot, v.Norm(), u.Norm()), nil
}

// NegCosine returns the cosine of the angle between −v and u, with the same
// zero-norm and non-finite guards as Cosine. IEEE negation is exact and
// distributes over products and sums, so the result is bit-identical to
// Cosine applied to a materialized negated copy — without the allocation.
func NegCosine(v, u Vector) (float64, error) {
	dot, err := Dot(v, u)
	if err != nil {
		return 0, err
	}
	return cosineFromDot(-dot, v.Norm(), u.Norm()), nil
}

// cosineFromDot finishes a cosine from its reduced pieces, mapping
// degenerate inputs to 0 and clamping drift into [-1, 1].
func cosineFromDot(dot, nv, nu float64) float64 {
	const eps = 1e-30
	if nv < eps || nu < eps {
		return 0
	}
	c := dot / nv / nu
	// Overflowing norms or dot products yield non-finite intermediates;
	// treat them, like zero vectors, as "no usable signal".
	if math.IsNaN(c) || math.IsInf(c, 0) {
		return 0
	}
	// Guard against floating-point drift outside [-1, 1].
	if c > 1 {
		c = 1
	} else if c < -1 {
		c = -1
	}
	return c
}

// Dist returns the Euclidean distance between v and u.
func Dist(v, u Vector) (float64, error) {
	if len(v) != len(u) {
		return 0, fmt.Errorf("dist %d vs %d: %w", len(v), len(u), ErrDimMismatch)
	}
	var s float64
	for i, x := range v {
		d := x - u[i]
		s += d * d
	}
	return math.Sqrt(s), nil
}

// WeightedSum overwrites dst with the weighted sum Σ weights[i]*vs[i].
// Every vector must have the same length as dst, and len(weights) must equal
// len(vs).
func WeightedSum(dst Vector, weights []float64, vs []Vector) error {
	if len(weights) != len(vs) {
		return fmt.Errorf("weighted sum: %d weights for %d vectors: %w",
			len(weights), len(vs), ErrDimMismatch)
	}
	dst.Zero()
	for i, v := range vs {
		if err := dst.AXPY(weights[i], v); err != nil {
			return fmt.Errorf("weighted sum term %d: %w", i, err)
		}
	}
	return nil
}

// Lerp overwrites dst with (1-t)*a + t*b.
func Lerp(dst Vector, a, b Vector, t float64) error {
	if len(dst) != len(a) || len(dst) != len(b) {
		return fmt.Errorf("lerp %d/%d/%d: %w", len(dst), len(a), len(b), ErrDimMismatch)
	}
	for i := range dst {
		dst[i] = (1-t)*a[i] + t*b[i]
	}
	return nil
}

// MaxAbs returns the largest absolute element value, or 0 for an empty vector.
func (v Vector) MaxAbs() float64 {
	var m float64
	for _, x := range v {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}

// IsFinite reports whether every element of v is neither NaN nor Inf.
func (v Vector) IsFinite() bool {
	for _, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return false
		}
	}
	return true
}

// ArgMax returns the index of the largest element, or -1 for an empty vector.
// Ties resolve to the lowest index.
func (v Vector) ArgMax() int {
	if len(v) == 0 {
		return -1
	}
	best := 0
	for i := 1; i < len(v); i++ {
		if v[i] > v[best] {
			best = i
		}
	}
	return best
}
