package tensor

import (
	"testing"

	"hieradmo/internal/rng"
)

// naiveGEMMBias mirrors GEMMBias's documented reduction order with plain
// scalar loops, so the test checks the blocked kernel bitwise, not within a
// tolerance.
func naiveGEMMBias(dst, a, b, bias []float64, m, n, k, kChunk int) {
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			acc := bias[i]
			if kChunk > 0 {
				for kc := 0; kc < k; kc += kChunk {
					ke := kc + kChunk
					if ke > k {
						ke = k
					}
					var s float64
					for kk := kc; kk < ke; kk++ {
						s += a[i*k+kk] * b[kk*n+j]
					}
					acc += s
				}
			} else {
				for kk := 0; kk < k; kk++ {
					acc += a[i*k+kk] * b[kk*n+j]
				}
			}
			dst[i*n+j] = acc
		}
	}
}

func fillRand(r *rng.RNG, v []float64) {
	for i := range v {
		v[i] = r.Norm()
	}
}

func TestGEMMBiasMatchesScalarOrder(t *testing.T) {
	r := rng.New(11)
	for _, tc := range []struct{ m, n, k, kChunk int }{
		{1, 1, 1, 0},
		{1, 1, 1, 1},
		{3, 4, 5, 0},
		{3, 5, 6, 2},  // n not a multiple of the 4-wide block
		{8, 64, 9, 9}, // conv-like: one chunk per input channel
		{16, 16, 72, 9},
		{2, 7, 10, 3}, // ragged final chunk
		{4, 1, 12, 4}, // single column (the Dense n=1 path)
	} {
		a := make([]float64, tc.m*tc.k)
		b := make([]float64, tc.k*tc.n)
		bias := make([]float64, tc.m)
		fillRand(r, a)
		fillRand(r, b)
		fillRand(r, bias)
		got := make([]float64, tc.m*tc.n)
		want := make([]float64, tc.m*tc.n)
		GEMMBias(got, a, b, bias, tc.m, tc.n, tc.k, tc.kChunk)
		naiveGEMMBias(want, a, b, bias, tc.m, tc.n, tc.k, tc.kChunk)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%+v: dst[%d] = %x, want %x", tc, i, got[i], want[i])
			}
		}
	}
}

func TestGEMMAddTransBAccumulates(t *testing.T) {
	r := rng.New(23)
	for _, tc := range []struct{ m, n, k int }{
		{1, 1, 1},
		{2, 3, 4},
		{8, 72, 16}, // conv weight-gradient shape: outC × (inC·k·k) over P pixels
		{3, 9, 5},   // n not a multiple of 4
	} {
		a := make([]float64, tc.m*tc.k)
		b := make([]float64, tc.n*tc.k)
		fillRand(r, a)
		fillRand(r, b)
		got := make([]float64, tc.m*tc.n)
		want := make([]float64, tc.m*tc.n)
		fillRand(r, got)
		copy(want, got)
		GEMMAddTransB(got, a, b, tc.m, tc.n, tc.k)
		for i := 0; i < tc.m; i++ {
			for j := 0; j < tc.n; j++ {
				acc := want[i*tc.n+j]
				for kk := 0; kk < tc.k; kk++ {
					acc += a[i*tc.k+kk] * b[j*tc.k+kk]
				}
				want[i*tc.n+j] = acc
			}
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%+v: dst[%d] = %x, want %x", tc, i, got[i], want[i])
			}
		}
	}
}

// TestGEMMZeroProductsAreIdentity pins the bit-identity contract the conv
// path relies on: interleaving ±0 products (padding cells, zero gradients)
// into a reduction never changes the accumulated bits, because chunk
// accumulators start at +0.
func TestGEMMZeroProductsAreIdentity(t *testing.T) {
	// One row, chunked: chunk 0 = {-3·0, 0·5}, chunk 1 = {2·4, -2·4}
	// (exact cancellation must give +0, keeping later adds bitwise stable).
	a := []float64{-3, 0, 2, -2}
	b := []float64{0, 5, 4, 4}
	bias := []float64{1.5}
	dst := make([]float64, 1)
	GEMMBias(dst, a, []float64{b[0], b[1], b[2], b[3]}, bias, 1, 1, 4, 2)
	// b laid out k×n with n=1: column vector — same slice.
	if dst[0] != 1.5 {
		t.Fatalf("dst = %v, want 1.5", dst[0])
	}
	// Dropping the zero-product terms entirely gives the same bits.
	dst2 := make([]float64, 1)
	GEMMBias(dst2, []float64{2, -2}, []float64{4, 4}, bias, 1, 1, 2, 2)
	if dst[0] != dst2[0] {
		t.Fatalf("zero products changed bits: %x vs %x", dst[0], dst2[0])
	}
}
