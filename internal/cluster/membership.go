package cluster

import (
	"fmt"

	"hieradmo/internal/fl"
	"hieradmo/internal/membership"
)

// membState bundles everything the nodes need for dynamic membership: the
// precomputed schedule (the single source of truth for who is live and
// where at every edge round) and the γℓ migration policy. A nil *membState
// means static membership, and every membership-aware code path is gated on
// that nil check so static runs stay byte-identical to the pre-churn
// runtime.
type membState struct {
	sched  *membership.Schedule
	policy membership.MigrationPolicy
}

// newMembership builds the shared membership state for a run, or nil when
// the options describe a static run (empty plan, no re-tiering). Every node
// — in-process or remote — calls this with the same (cfg, opts) and gets a
// bit-identical schedule, which is the determinism anchor for the whole
// subsystem.
func newMembership(cfg fl.Config, opts Options) (*membState, error) {
	if !opts.churnEnabled() {
		return nil, nil
	}
	if cfg.Tau <= 0 || cfg.T%cfg.Tau != 0 {
		return nil, fmt.Errorf("cluster: churn requires T divisible by tau")
	}
	plan := membership.Plan{}
	if opts.ChurnPlan != nil {
		plan = opts.ChurnPlan.Clone()
	}
	sched, err := membership.BuildSchedule(plan, workerStats(cfg), len(cfg.Edges),
		cfg.T/cfg.Tau, cfg.Pi, opts.RetierEvery)
	if err != nil {
		return nil, err
	}
	return &membState{sched: sched, policy: opts.Migration}, nil
}

// workerStats derives the per-worker clustering statistics from the
// configured shards: the data weight (shard size) and the label histogram
// that drives re-tiering's distribution-distance clustering. Both are pure
// functions of the dataset, so every node computes identical stats.
func workerStats(cfg fl.Config) []membership.WorkerStat {
	numClasses := 0
	for _, edge := range cfg.Edges {
		for _, shard := range edge {
			if c := len(shard.ClassCounts()); c > numClasses {
				numClasses = c
			}
		}
	}
	var stats []membership.WorkerStat
	for l, edge := range cfg.Edges {
		for i, shard := range edge {
			hist := make([]float64, numClasses)
			for c, n := range shard.ClassCounts() {
				hist[c] = float64(n)
			}
			stats = append(stats, membership.WorkerStat{
				Ref:    membership.Ref{Edge: l, Index: i},
				Weight: float64(shard.Len()),
				Hist:   hist,
			})
		}
	}
	return stats
}

// flReport converts the schedule's summary into the user-facing report
// attached to fl.Result.
func (m *membState) flReport() *fl.MembershipReport {
	if m == nil {
		return nil
	}
	s := m.sched.Summarize()
	return &fl.MembershipReport{
		Joins:           s.Joins,
		Leaves:          s.Leaves,
		Reassignments:   s.Reassignments,
		Retierings:      s.Retierings,
		Epochs:          s.Epochs,
		InitialWorkers:  s.InitialWorkers,
		FinalWorkers:    s.FinalWorkers,
		MigrationPolicy: m.policy.String(),
	}
}

// refStride packs a worker Ref into a single int for the checkpoint
// pending-stash codec: natal edge in the high bits, index in the low. The
// static codec uses the bare worker index, which is ambiguous once workers
// from different natal edges can report to the same edge.
const refStride = 1 << 16

// encodeWorkerRef maps a worker node ID to its packed ref.
func encodeWorkerRef(id string) (int, error) {
	ref, err := membership.ParseNodeID(id)
	if err != nil {
		return 0, fmt.Errorf("cluster: %v", err)
	}
	if ref.Index >= refStride {
		return 0, fmt.Errorf("cluster: worker index %d overflows ref encoding", ref.Index)
	}
	return ref.Edge*refStride + ref.Index, nil
}

// decodeWorkerRef is the inverse of encodeWorkerRef.
func decodeWorkerRef(packed int) string {
	return membership.Ref{Edge: packed / refStride, Index: packed % refStride}.NodeID()
}

// refIn reports whether ref appears in refs (cohorts are tiny, linear scan).
func refIn(refs []membership.Ref, ref membership.Ref) bool {
	for _, r := range refs {
		if r == ref {
			return true
		}
	}
	return false
}
