package cluster

import (
	"errors"
	"fmt"
	"time"

	"hieradmo/internal/checkpoint"
	"hieradmo/internal/core"
	"hieradmo/internal/dataset"
	"hieradmo/internal/fl"
	"hieradmo/internal/model"
	"hieradmo/internal/rng"
	"hieradmo/internal/robust"
	"hieradmo/internal/telemetry"
	"hieradmo/internal/tensor"
	"hieradmo/internal/topology"
	"hieradmo/internal/transport"
)

// treeSpec is the precomputed static shape of an N-tier run, shared by every
// node: the validated topology, the flattened leaf shards, the data-size
// child weights of every aggregating node, and each level's resolved
// momentum configuration. It is pure derived data — building one performs no
// I/O and every process of a multi-process deployment derives the identical
// spec from the shared config and topology.
type treeSpec struct {
	topo *topology.Topology
	cfg  *fl.Config
	// shards holds the training leaves' datasets, cfg.Edges flattened in
	// order: the tree regroups the same shards under its own fanout.
	shards []*dataset.Dataset
	// weights[i][j][c] is the data weight of child c under node j of
	// aggregating level i: the child subtree's sample count over the
	// node's. At the leaf-parent these are exactly the harness
	// WorkerWeights (D(i,ℓ)/Dℓ), and at the root over a 3-tier shape
	// exactly the EdgeWeights (Dℓ/D), so matched shapes aggregate with
	// bit-identical coefficients.
	weights [][][]float64
	// gamma[i]/adapt[i] are level i's resolved momentum factor and
	// adaptive-γℓ toggle; momentum[i] marks levels that execute the
	// Algorithm 1 line-13 momentum update at all. Non-momentum levels
	// (γℓ = 0, not adaptive) keep the plain-average arithmetic of the
	// original cloud, bit for bit.
	gamma    []float64
	adapt    []bool
	momentum []bool
}

// newTreeSpec validates a topology against the run config and resolves the
// per-level configuration.
func newTreeSpec(cfg *fl.Config, opts Options) (*treeSpec, error) {
	topo := opts.Topology
	if err := topo.Validate(); err != nil {
		return nil, err
	}
	if err := topo.AlignsWith(cfg.T); err != nil {
		return nil, err
	}
	if topo.NumLeaves() != cfg.NumWorkers() {
		return nil, fmt.Errorf("cluster: topology %q has %d leaves for %d configured workers",
			topo, topo.NumLeaves(), cfg.NumWorkers())
	}
	ts := &treeSpec{topo: topo, cfg: cfg}
	for _, edge := range cfg.Edges {
		ts.shards = append(ts.shards, edge...)
	}
	depth := topo.Depth()
	// Subtree sample counts, integer-exact, leaves up.
	sizes := make([][]int, depth)
	sizes[depth-1] = make([]int, len(ts.shards))
	for j, shard := range ts.shards {
		sizes[depth-1][j] = shard.Len()
	}
	for i := depth - 2; i >= 0; i-- {
		fan := topo.Levels[i+1].Fanout
		sizes[i] = make([]int, topo.Width(i))
		for j := range sizes[i] {
			for c := 0; c < fan; c++ {
				sizes[i][j] += sizes[i+1][j*fan+c]
			}
		}
	}
	ts.weights = make([][][]float64, depth-1)
	for i := 0; i < depth-1; i++ {
		fan := topo.Levels[i+1].Fanout
		ts.weights[i] = make([][]float64, topo.Width(i))
		for j := range ts.weights[i] {
			if sizes[i][j] == 0 {
				return nil, fmt.Errorf("cluster: topology node %s covers no samples", topo.NodeID(i, j))
			}
			w := make([]float64, fan)
			for c := range w {
				w[c] = float64(sizes[i+1][j*fan+c]) / float64(sizes[i][j])
			}
			ts.weights[i][j] = w
		}
	}
	lp := topo.LeafParent()
	ts.gamma = make([]float64, depth-1)
	ts.adapt = make([]bool, depth-1)
	ts.momentum = make([]bool, depth-1)
	for i := 0; i < depth-1; i++ {
		lv := topo.Levels[i]
		if lv.HasGamma {
			ts.gamma[i] = lv.Gamma
		} else if i == lp {
			ts.gamma[i] = cfg.GammaEdge
		}
		if i == lp {
			if lv.HasAdapt {
				ts.adapt[i] = lv.Adapt
			} else {
				ts.adapt[i] = opts.Adaptive
			}
		}
		ts.momentum[i] = ts.adapt[i] || ts.gamma[i] != 0
	}
	return ts, nil
}

func (ts *treeSpec) depth() int      { return ts.topo.Depth() }
func (ts *treeSpec) leafParent() int { return ts.topo.LeafParent() }
func (ts *treeSpec) tau(i int) int   { return ts.topo.Levels[i].Tau }

// fanout returns the number of children per node at aggregating level i.
func (ts *treeSpec) fanout(i int) int { return ts.topo.Levels[i+1].Fanout }

// childID returns the transport ID of child c of node j at level i.
func (ts *treeSpec) childID(i, j, c int) string {
	return ts.topo.NodeID(i+1, j*ts.fanout(i)+c)
}

// parentID returns the transport ID of the parent of node j at level i.
func (ts *treeSpec) parentID(i, j int) string {
	return ts.topo.NodeID(i-1, j/ts.topo.Levels[i].Fanout)
}

// leafSampler keys the training leaf's mini-batch stream by its (parent,
// position) coordinates, the tree generalization of the harness's (edge,
// worker) keying: a 3-tier topology matching the config shape reproduces the
// simulation's exact batch sequences.
func (ts *treeSpec) leafSampler(j int) *rng.RNG {
	fan := ts.fanout(ts.leafParent())
	return fl.WorkerSampler(ts.cfg.Seed, j/fan, j%fan)
}

// tierNode is one aggregating node of an N-tier run, parameterized by its
// level: it collects child reports every τℓ iterations, applies the level's
// aggregation rule and momentum update, redistributes the result, and — on
// every level but the root — synchronizes with its own parent every
// τ_{ℓ−1}/τℓ rounds. The root additionally owns the accuracy curve and the
// run Result.
//
// Two collection semantics exist, chosen by what the children are. The
// leaf-parent level collects training-leaf reports and renormalizes data
// weights over the survivors of a partial round — the original edge
// behavior. Every other level's children are aggregators with durable state,
// so a missing child's last report is substituted for at most one
// consecutive round — the original cloud behavior. Matched 3-tier shapes
// therefore execute the exact arithmetic of the role-specific cloud/edge
// implementations, bit for bit.
type tierNode struct {
	cfg  *fl.Config
	hn   *fl.Harness
	ts   *treeSpec
	lvl  int
	idx  int
	ep   transport.Endpoint
	opts Options
	rec  *faultRecorder
	reg  *checkpoint.Registry

	//flvet:allow ckptstate -- yPlusNext is per-sync scratch, overwritten by WeightedSum before use
	yMinus, yPlus, yPlusNext, xPlus tensor.Vector
	// lastY is the state most recently redistributed to the children, the
	// velocity-signal reference and the robust deviation reference at
	// momentum levels.
	lastY tensor.Vector
	// x0 is the shared initialization, the gauge reference for the Σy
	// adaptation signal.
	x0 tensor.Vector
	// lastLosses holds each child's most recently reported loss.
	lastLosses []float64
	// pending stashes reports from children running ahead of this node.
	pending []transport.Message
	// agg is the level's robust aggregation rule, nil for plain mean (the
	// bit-exact WeightedSum path). prevY/prevX are the deviation references
	// at non-momentum levels, where the previous state would otherwise be
	// overwritten mid-reduction.
	agg robust.Aggregator
	//flvet:allow ckptstate -- per-sync scratch, refilled from yMinus/xPlus before every use
	prevY, prevX tensor.Vector

	// lastYRep/lastXRep/missStreak implement the substitution semantics at
	// levels whose children are aggregators; nil at the leaf-parent.
	lastYRep, lastXRep []tensor.Vector
	missStreak         []int

	// res and weightedLoss live on the root (res == nil elsewhere).
	res          *fl.Result
	weightedLoss float64
}

func newTierNode(cfg *fl.Config, hn *fl.Harness, ts *treeSpec, lvl, idx int, x0 tensor.Vector, ep transport.Endpoint, opts Options) *tierNode {
	n := &tierNode{
		cfg:        cfg,
		hn:         hn,
		ts:         ts,
		lvl:        lvl,
		idx:        idx,
		ep:         ep,
		opts:       opts,
		yMinus:     x0.Clone(),
		yPlus:      x0.Clone(),
		yPlusNext:  tensor.NewVector(len(x0)),
		xPlus:      x0.Clone(),
		lastY:      x0.Clone(),
		x0:         x0.Clone(),
		lastLosses: make([]float64, ts.fanout(lvl)),
	}
	if lvl != ts.leafParent() {
		fan := ts.fanout(lvl)
		n.lastYRep = make([]tensor.Vector, fan)
		n.lastXRep = make([]tensor.Vector, fan)
		n.missStreak = make([]int, fan)
		for c := 0; c < fan; c++ {
			n.lastYRep[c] = x0.Clone()
			n.lastXRep[c] = x0.Clone()
		}
	}
	if n.agg = newAggregator(ts.topo.Levels[lvl].Agg); n.agg != nil && !ts.momentum[lvl] {
		n.prevY = tensor.NewVector(len(x0))
		n.prevX = tensor.NewVector(len(x0))
	}
	return n
}

func (n *tierNode) id() string { return n.ts.topo.NodeID(n.lvl, n.idx) }

// childSlot resolves a sender ID to its position under this node.
func (n *tierNode) childSlot(from string) (int, error) {
	lvl, idx, err := n.ts.topo.ParseNodeID(from)
	if err != nil {
		return 0, fmt.Errorf("cluster: %v", err)
	}
	if lvl != n.lvl+1 {
		return 0, fmt.Errorf("cluster: %s got a report from %q of level %d, want level %d",
			n.id(), from, lvl, n.lvl+1)
	}
	pos := idx - n.idx*n.ts.fanout(n.lvl)
	if pos < 0 || pos >= n.ts.fanout(n.lvl) {
		return 0, fmt.Errorf("cluster: %s got a report from %q, another node's child", n.id(), from)
	}
	return pos, nil
}

// nvPerReport is the vector count a child report carries: training leaves
// send their two accumulators alongside [y, x].
func (n *tierNode) nvPerReport() int {
	if n.lvl == n.ts.leafParent() {
		return 4
	}
	return 2
}

// initCheckpoint binds the node's aggregation state to its snapshot registry
// (the topology string is part of the fingerprint, so snapshots never cross
// tree shapes) and applies the Resume option.
func (n *tierNode) initCheckpoint() (int, error) {
	reg, err := nodeRegistry(n.cfg, n.opts, n.id())
	if err != nil || reg == nil {
		return 0, err
	}
	reg.Vector("yMinus", n.yMinus)
	reg.Vector("yPlus", n.yPlus)
	reg.Vector("xPlus", n.xPlus)
	reg.Vector("lastY", n.lastY)
	reg.Vector("lastLosses", n.lastLosses)
	for c := range n.lastYRep {
		reg.Vector(fmt.Sprintf("lastY/%d", c), n.lastYRep[c])
		reg.Vector(fmt.Sprintf("lastX/%d", c), n.lastXRep[c])
		reg.Int(fmt.Sprintf("missStreak/%d", c), &n.missStreak[c])
	}
	if n.res != nil {
		res := n.res
		reg.Float("weightedLoss", &n.weightedLoss)
		reg.Dynamic("curve",
			func() []float64 {
				flat := make([]float64, 0, 3*len(res.Curve))
				for _, pt := range res.Curve {
					flat = append(flat, float64(pt.Iter), pt.TestAcc, pt.TrainLoss)
				}
				return flat
			},
			func(flat []float64) error {
				if len(flat)%3 != 0 {
					return fmt.Errorf("curve holds %d values, not triples", len(flat))
				}
				curve := make([]fl.Point, 0, len(flat)/3)
				for i := 0; i+2 < len(flat); i += 3 {
					iter := int(flat[i])
					if float64(iter) != flat[i] {
						return fmt.Errorf("curve iteration %v is not an integer", flat[i])
					}
					curve = append(curve, fl.Point{Iter: iter, TestAcc: flat[i+1], TrainLoss: flat[i+2]})
				}
				res.Curve = curve
				return nil
			})
	}
	nv, dim := n.nvPerReport(), len(n.x0)
	reg.Dynamic("pending",
		func() []float64 {
			return encodePending(n.pending, nv, dim, func(id string) (int, error) { return n.childSlot(id) })
		},
		func(flat []float64) error {
			msgs, err := decodePending(flat, nv, dim, KindTierReport,
				func(c int) string { return n.ts.childID(n.lvl, n.idx, c) })
			if err != nil {
				return err
			}
			n.pending = msgs
			return nil
		})
	n.reg = reg
	return restoreOrClear(reg, n.opts.Resume, n.opts.Telemetry, n.id())
}

// redistribute sends the round-k update to every child.
func (n *tierNode) redistribute(k int) error {
	update := transport.Message{
		Kind:    KindTierUpdate,
		Round:   k * n.ts.tau(n.lvl),
		Vectors: [][]float64{n.yMinus, n.xPlus},
	}
	for c := 0; c < n.ts.fanout(n.lvl); c++ {
		if err := n.ep.Send(n.ts.childID(n.lvl, n.idx, c), update); err != nil {
			return fmt.Errorf("cluster: %s redistribute to child %d: %w", n.id(), c, err)
		}
	}
	return nil
}

// run executes the node until T. The root returns the run Result; every
// other level returns (nil, nil) on success.
func (n *tierNode) run() (*fl.Result, error) {
	tau := n.ts.tau(n.lvl)
	numRounds := n.cfg.T / tau
	if n.lvl == 0 {
		name := "HierAdMo/tree"
		if !n.ts.adapt[n.ts.leafParent()] {
			name = "HierAdMo-R/tree"
		}
		n.res = n.hn.NewResult(name)
	}
	start, err := n.initCheckpoint()
	if err != nil {
		return nil, fmt.Errorf("cluster: %s: %w", n.id(), err)
	}
	if start > 0 {
		// The snapshot precedes its round's redistribution, so re-send that
		// round's update on resume: children already past it discard the
		// duplicate as stale, children still waiting adopt it and catch up.
		if err := n.redistribute(start); err != nil {
			return nil, fmt.Errorf("cluster: %s resume: %w", n.id(), err)
		}
	}
	for k := start + 1; k <= numRounds; k++ {
		if interrupted(n.opts.Interrupt) {
			return nil, fmt.Errorf("cluster: %s: %w", n.id(), ErrInterrupted)
		}
		adopted, reports, idx, err := n.collect(k)
		if err != nil {
			return nil, fmt.Errorf("cluster: %s round %d: %w", n.id(), k, err)
		}
		if adopted > 0 {
			// The parent completed round `adopted` while this node was still
			// collecting: the adopted state supersedes this round's local
			// aggregation, so rejoin at the adopted round.
			n.rec.fastforward(n.id(), k*tau, adopted)
			k = adopted / tau
		} else {
			if err := n.update(reports, idx, k); err != nil {
				return nil, fmt.Errorf("cluster: %s round %d: %w", n.id(), k, err)
			}
			if n.lvl > 0 && k%n.ts.topo.SyncsPerParent(n.lvl) == 0 {
				adopted, err := n.parentSync(k)
				if err != nil {
					return nil, fmt.Errorf("cluster: %s round %d: %w", n.id(), k, err)
				}
				if r := adopted / tau; r > k {
					n.rec.fastforward(n.id(), k*tau, adopted)
					k = r
				}
			}
			if n.res != nil && k < numRounds && n.cfg.EvalEvery > 0 {
				acc, err := model.Accuracy(n.cfg.Model, n.xPlus, n.hn.EvalSet())
				if err != nil {
					return nil, fmt.Errorf("cluster: %s eval round %d: %w", n.id(), k, err)
				}
				n.res.Curve = append(n.res.Curve, fl.Point{
					Iter:      k * tau,
					TestAcc:   acc,
					TrainLoss: n.weightedLoss,
				})
				n.recordEval(k*tau, acc, n.weightedLoss, false)
			}
		}
		// Settle lastY and snapshot BEFORE the redistribution, mirroring the
		// 3-tier runtime: a resumed node re-sends the snapshotted round's
		// update, so children can never be stranded waiting on one that died
		// with this process.
		if err := n.lastY.CopyFrom(n.yMinus); err != nil {
			return nil, err
		}
		if err := saveSnapshot(n.reg, k, n.opts.Telemetry, n.id()); err != nil {
			return nil, fmt.Errorf("cluster: %s round %d: %w", n.id(), k, err)
		}
		if err := n.redistribute(k); err != nil {
			return nil, err
		}
	}
	if n.res == nil {
		return nil, nil
	}
	acc, err := model.Accuracy(n.cfg.Model, n.xPlus, n.cfg.Test)
	if err != nil {
		return nil, fmt.Errorf("cluster: %s final eval: %w", n.id(), err)
	}
	n.res.FinalAcc = acc
	n.res.FinalLoss = n.weightedLoss
	n.res.Curve = append(n.res.Curve, fl.Point{Iter: n.cfg.T, TestAcc: acc, TrainLoss: n.weightedLoss})
	n.recordEval(n.cfg.T, acc, n.weightedLoss, true)
	return n.res, nil
}

// recordEval mirrors one root accuracy measurement onto the telemetry sink.
func (n *tierNode) recordEval(t int, acc, loss float64, final bool) {
	sink := n.opts.Telemetry
	m := sink.M()
	m.Evals.Inc()
	m.TestAccuracy.Set(acc)
	m.TrainLoss.Set(loss)
	if sink.Tracing() {
		sink.Emit("eval",
			telemetry.Int("t", t),
			telemetry.Float("acc", acc),
			telemetry.Float("loss", loss),
			telemetry.Bool("final", final))
	}
}

// collect gathers the round-k child reports under the level's semantics. The
// third/fourth results (report slots and sorted present indices) are only
// used at the leaf-parent level; substitution levels adopt reports into
// their standing lastYRep/lastXRep buffers instead. A positive first result
// is the round of a parent update adopted mid-collect (the parent moved on
// without this node); the caller fast-forwards to it.
func (n *tierNode) collect(k int) (int, []transport.Message, []int, error) {
	if n.lvl == n.ts.leafParent() {
		return n.collectLeafReports(k)
	}
	adopted, err := n.collectSubstituted(k)
	return adopted, nil, nil, err
}

// adoptParentUpdate handles a KindTierUpdate arriving while this node
// collects child reports. An update for the current round or later means the
// parent already completed a sync without this node: adopt it (tolerant mode
// only) and return its round. Stale updates are counted and skipped.
func (n *tierNode) adoptParentUpdate(msg transport.Message, want int) (int, error) {
	if n.lvl > 0 && n.opts.tolerant() && msg.Round >= want && len(msg.Vectors) == 2 {
		if err := n.yMinus.CopyFrom(msg.Vectors[0]); err != nil {
			return 0, err
		}
		if err := n.xPlus.CopyFrom(msg.Vectors[1]); err != nil {
			return 0, err
		}
		return msg.Round, nil
	}
	n.rec.stale(n.id())
	return 0, nil
}

// collectLeafReports is the leaf-parent collection: the original edge
// behavior. Strict mode requires the full cohort within RecvTimeout; quorum
// mode grants stragglers StragglerDeadline of grace from quorum attainment,
// then proceeds with the survivors. Duplicates and stale rounds are rejected
// and counted; future-round reports (leaves that rode out a lost update) are
// stashed in quorum mode.
func (n *tierNode) collectLeafReports(k int) (int, []transport.Message, []int, error) {
	numChildren := n.ts.fanout(n.lvl)
	want := k * n.ts.tau(n.lvl)
	quorum := numChildren
	if n.opts.tolerant() {
		quorum = quorumCount(n.opts.MinQuorum, numChildren)
	}
	reports := make([]transport.Message, numChildren)
	seen := make([]bool, numChildren)
	got := 0
	if len(n.pending) > 0 {
		keep := n.pending[:0]
		for _, msg := range n.pending {
			switch {
			case msg.Round > want:
				keep = append(keep, msg)
			case msg.Round < want:
				n.rec.stale(n.id())
			default:
				ok, err := n.admitLeafReport(msg, reports, seen)
				if err != nil {
					return 0, nil, nil, err
				}
				if ok {
					got++
				}
			}
		}
		n.pending = keep
	}
	deadline := n.opts.now().Add(n.opts.RecvTimeout)
	if n.opts.tolerant() {
		deadline = deadline.Add(n.opts.StragglerDeadline)
	}
	var stragglerBy time.Time
	for got < numChildren {
		var wait time.Duration
		if got >= quorum {
			if stragglerBy.IsZero() {
				stragglerBy = n.opts.now().Add(n.opts.StragglerDeadline)
			}
			wait = stragglerBy.Sub(n.opts.now())
			if wait <= 0 {
				break // quorum reached, stragglers forfeited this round
			}
		} else {
			wait = deadline.Sub(n.opts.now())
			if wait <= 0 {
				return 0, nil, nil, fmt.Errorf("%d/%d reports (quorum %d): %w",
					got, numChildren, quorum, transport.ErrTimeout)
			}
		}
		msg, err := recvInterruptible(n.ep, wait, n.opts)
		if err != nil {
			if errors.Is(err, transport.ErrTimeout) {
				continue
			}
			return 0, nil, nil, err
		}
		if msg.Kind == KindTierUpdate {
			adopted, err := n.adoptParentUpdate(msg, want)
			if err != nil || adopted > 0 {
				return adopted, nil, nil, err
			}
			continue
		}
		if err := expectKind(msg, KindTierReport); err != nil {
			return 0, nil, nil, err
		}
		if msg.Round < want {
			n.rec.stale(n.id())
			continue
		}
		if msg.Round > want {
			if n.opts.tolerant() {
				n.pending = append(n.pending, msg)
				continue
			}
			return 0, nil, nil, fmt.Errorf("cluster: report from %q for future round %d (want %d)",
				msg.From, msg.Round, want)
		}
		ok, err := n.admitLeafReport(msg, reports, seen)
		if err != nil {
			return 0, nil, nil, err
		}
		if ok {
			got++
		}
	}
	idx := make([]int, 0, got)
	for i, ok := range seen {
		if ok {
			idx = append(idx, i)
		}
	}
	n.rec.missingTier(n.ts.topo.Levels[n.lvl].Name, n.lvl, want, numChildren-got, true)
	return 0, reports, idx, nil
}

// admitLeafReport validates one current-round leaf report and slots it.
func (n *tierNode) admitLeafReport(msg transport.Message, reports []transport.Message, seen []bool) (bool, error) {
	i, err := n.childSlot(msg.From)
	if err != nil {
		return false, err
	}
	if len(msg.Vectors) != 4 {
		return false, fmt.Errorf("cluster: report from %q carries %d vectors, want 4",
			msg.From, len(msg.Vectors))
	}
	if seen[i] {
		n.rec.duplicate(n.id())
		return false, nil
	}
	seen[i] = true
	reports[i] = msg
	n.lastLosses[i] = msg.Scalars[ScalarLoss]
	return true, nil
}

// collectSubstituted is the collection at levels whose children are
// aggregators: the original cloud behavior. Fresh reports land in the
// standing lastYRep/lastXRep buffers; a missing child's previous state is
// substituted for at most one consecutive round before the run fails fast.
// The straggler window budgets one grace period per intervening child round
// plus this node's own.
func (n *tierNode) collectSubstituted(k int) (int, error) {
	numChildren := n.ts.fanout(n.lvl)
	want := k * n.ts.tau(n.lvl)
	quorum := numChildren
	if n.opts.tolerant() {
		quorum = quorumCount(n.opts.MinQuorum, numChildren)
	}
	fresh := make([]bool, numChildren)
	got := 0
	if len(n.pending) > 0 {
		keep := n.pending[:0]
		for _, msg := range n.pending {
			switch {
			case msg.Round > want:
				keep = append(keep, msg)
			case msg.Round < want:
				n.rec.stale(n.id())
			default:
				ok, err := n.admitSubReport(msg, fresh)
				if err != nil {
					return 0, err
				}
				if ok {
					got++
				}
			}
		}
		n.pending = keep
	}
	deadline := n.opts.now().Add(n.opts.RecvTimeout)
	if n.opts.tolerant() {
		deadline = deadline.Add(n.opts.StragglerDeadline)
	}
	childRounds := n.ts.tau(n.lvl) / n.ts.tau(n.lvl+1)
	var stragglerBy time.Time
	for got < numChildren {
		var wait time.Duration
		if got >= quorum {
			if stragglerBy.IsZero() {
				stragglerBy = n.opts.now().Add(time.Duration(childRounds+1) * n.opts.StragglerDeadline)
			}
			wait = stragglerBy.Sub(n.opts.now())
			if wait <= 0 {
				break
			}
		} else {
			wait = deadline.Sub(n.opts.now())
			if wait <= 0 {
				return 0, fmt.Errorf("%d/%d child reports (quorum %d): %w",
					got, numChildren, quorum, transport.ErrTimeout)
			}
		}
		msg, err := recvInterruptible(n.ep, wait, n.opts)
		if err != nil {
			if errors.Is(err, transport.ErrTimeout) {
				continue
			}
			return 0, err
		}
		if msg.Kind == KindTierUpdate {
			adopted, err := n.adoptParentUpdate(msg, want)
			if err != nil || adopted > 0 {
				return adopted, err
			}
			continue
		}
		if err := expectKind(msg, KindTierReport); err != nil {
			return 0, err
		}
		if msg.Round < want {
			n.rec.stale(n.id())
			continue
		}
		if msg.Round > want {
			if n.opts.tolerant() {
				n.pending = append(n.pending, msg)
				continue
			}
			return 0, fmt.Errorf("cluster: report from %q for future round %d (want %d)",
				msg.From, msg.Round, want)
		}
		ok, err := n.admitSubReport(msg, fresh)
		if err != nil {
			return 0, err
		}
		if ok {
			got++
		}
	}
	missing := 0
	for c, ok := range fresh {
		if ok {
			n.missStreak[c] = 0
			continue
		}
		missing++
		n.missStreak[c]++
		if n.missStreak[c] > 1 {
			return 0, fmt.Errorf("cluster: child %s missed %d consecutive rounds of %s: quorum unreachable: %w",
				n.ts.childID(n.lvl, n.idx, c), n.missStreak[c], n.id(), transport.ErrTimeout)
		}
	}
	n.rec.missingTier(n.ts.topo.Levels[n.lvl].Name, n.lvl, want, missing, false)
	return 0, nil
}

// admitSubReport validates one current-round aggregator report and adopts
// its state into the standing buffers (they are checkpoint-registered by
// reference, so the backing arrays must keep holding the live state).
func (n *tierNode) admitSubReport(msg transport.Message, fresh []bool) (bool, error) {
	c, err := n.childSlot(msg.From)
	if err != nil {
		return false, err
	}
	if len(msg.Vectors) != 2 {
		return false, fmt.Errorf("cluster: report from %q carries %d vectors, want 2",
			msg.From, len(msg.Vectors))
	}
	if fresh[c] {
		n.rec.duplicate(n.id())
		return false, nil
	}
	fresh[c] = true
	if err := n.lastYRep[c].CopyFrom(msg.Vectors[0]); err != nil {
		return false, err
	}
	if err := n.lastXRep[c].CopyFrom(msg.Vectors[1]); err != nil {
		return false, err
	}
	n.lastLosses[c] = msg.Scalars[ScalarLoss]
	return true, nil
}

// update executes the level's aggregation for round k: the Algorithm 1
// line 10–13 update at momentum levels (with optional γℓ adaptation at the
// leaf-parent), or the plain line 18–19 average at non-momentum levels —
// each the exact arithmetic of the original role it generalizes.
func (n *tierNode) update(reports []transport.Message, idx []int, k int) error {
	sink := n.opts.Telemetry
	var aggStart time.Time
	if sink != nil {
		aggStart = time.Now()
	}
	full := n.ts.weights[n.lvl][n.idx]
	leafP := n.lvl == n.ts.leafParent()
	var (
		weights         []float64
		ys, xs          []tensor.Vector
		gradSums, ySums []tensor.Vector
		participants    int
	)
	if leafP {
		weights = make([]float64, len(idx))
		for j, i := range idx {
			weights[j] = full[i]
		}
		// Renormalize only under a partial cohort: at full strength the
		// data weights are used verbatim, bit-identical to the simulation.
		if len(idx) < len(full) {
			var wsum float64
			for _, w := range weights {
				wsum += w
			}
			for j := range weights {
				weights[j] /= wsum
			}
		}
		ys = make([]tensor.Vector, len(idx))
		xs = make([]tensor.Vector, len(idx))
		gradSums = make([]tensor.Vector, len(idx))
		ySums = make([]tensor.Vector, len(idx))
		for j, i := range idx {
			msg := reports[i]
			ys[j] = msg.Vectors[0]
			xs[j] = msg.Vectors[1]
			gradSums[j] = msg.Vectors[2]
			ySums[j] = msg.Vectors[3]
		}
		participants = len(idx)
	} else {
		weights = full
		ys, xs = n.lastYRep, n.lastXRep
		participants = len(full)
	}

	gamma := n.ts.gamma[n.lvl]
	var cosVal float64
	adaptive := n.ts.adapt[n.lvl]
	if adaptive {
		signals := make([]tensor.Vector, len(ys))
		if n.opts.Signal == core.SignalVelocity {
			for j := range ys {
				v := ys[j].Clone()
				if err := v.Sub(n.lastY); err != nil {
					return err
				}
				signals[j] = v
			}
		} else {
			// Σy centred at the shared initialization, matching the
			// simulation's gauge (see internal/core).
			for j := range ySums {
				centered := ySums[j].Clone()
				if err := centered.AXPY(-float64(n.ts.tau(n.lvl)), n.x0); err != nil {
					return err
				}
				signals[j] = centered
			}
		}
		cos, err := core.EdgeCosine(weights, gradSums, signals)
		if err != nil {
			return err
		}
		cosVal = cos
		gamma = core.ClampGamma(cos, n.opts.Ceiling)
		if gamma == 0 {
			sink.M().GammaZeroed.Inc()
		}
		sink.M().EdgeCosine.Set(cos)
	}
	if n.lvl == 0 {
		sink.M().CloudSyncs.Inc()
		sink.M().Round.Set(float64(k * n.ts.tau(0)))
	} else {
		sink.M().EdgeAggregations.Inc()
	}
	if leafP {
		sink.M().GammaEdge.Set(gamma)
	}
	if sink.Tracing() {
		fields := []telemetry.Field{
			telemetry.Int("t", k*n.ts.tau(n.lvl)),
			telemetry.Int("tier", n.lvl),
			telemetry.String("level", n.ts.topo.Levels[n.lvl].Name),
			telemetry.String("node", n.id()),
			telemetry.Int("participants", participants),
			telemetry.Float("gamma", gamma),
		}
		if adaptive {
			fields = append(fields, telemetry.Float("cos", cosVal))
		}
		sink.Emit("tier_aggregate", fields...)
	}

	if n.agg == nil {
		if err := tensor.WeightedSum(n.yMinus, weights, ys); err != nil {
			return err
		}
		if err := tensor.WeightedSum(n.yPlusNext, weights, xs); err != nil {
			return err
		}
	} else {
		// The rule reduces the y and x streams together so a reporter
		// rejected in one is rejected in both. Deviation references: at
		// momentum levels, the state last redistributed (lastY) and the
		// standing model (xPlus, overwritten only below); at non-momentum
		// levels the previous aggregate is copied out first, since yMinus
		// is both reference and destination.
		refY, refX := n.lastY, n.xPlus
		if !n.ts.momentum[n.lvl] {
			if err := n.prevY.CopyFrom(n.yMinus); err != nil {
				return err
			}
			if err := n.prevX.CopyFrom(n.xPlus); err != nil {
				return err
			}
			refY, refX = n.prevY, n.prevX
		}
		st, err := n.agg.Aggregate(
			[]tensor.Vector{n.yMinus, n.yPlusNext},
			[]tensor.Vector{refY, refX},
			weights,
			[][]tensor.Vector{ys, xs})
		if err != nil {
			return fmt.Errorf("cluster: %s robust %s aggregation at round %d: %w",
				n.id(), n.agg.Name(), k, err)
		}
		if len(st.Rejected) > 0 || len(st.Clipped) > 0 {
			ids := make([]string, len(ys))
			if leafP {
				for j, i := range idx {
					ids[j] = n.ts.childID(n.lvl, n.idx, i)
				}
			} else {
				for c := range ids {
					ids[c] = n.ts.childID(n.lvl, n.idx, c)
				}
			}
			n.rec.robustTier(n.id(), n.ts.topo.Levels[n.lvl].Name, n.lvl,
				k*n.ts.tau(n.lvl), st, ids)
		}
	}
	if err := n.xPlus.CopyFrom(n.yPlusNext); err != nil {
		return err
	}
	if n.ts.momentum[n.lvl] {
		if err := n.xPlus.AXPY(gamma, n.yPlusNext); err != nil {
			return err
		}
		if err := n.xPlus.AXPY(-gamma, n.yPlus); err != nil {
			return err
		}
	}
	if err := n.yPlus.CopyFrom(n.yPlusNext); err != nil {
		return err
	}
	// The weighted loss over the full child weights: stragglers contribute
	// their most recently reported value, exactly like the original tiers.
	n.weightedLoss = 0
	for c, loss := range n.lastLosses {
		n.weightedLoss += full[c] * loss
	}
	if sink != nil {
		if n.lvl == 0 {
			sink.M().CloudSyncSeconds.Observe(time.Since(aggStart).Seconds())
		} else {
			sink.M().EdgeAggSeconds.Observe(time.Since(aggStart).Seconds())
		}
	}
	return nil
}

// parentSync reports [y_ℓ−, x_ℓ+] and the level's weighted loss to the
// parent at a boundary round, then adopts the parent's update. In quorum
// mode a lost update is ridden out, or — if a later round's update arrives —
// adopted from there; the returned round lets the caller fast-forward.
func (n *tierNode) parentSync(k int) (int, error) {
	want := k * n.ts.tau(n.lvl)
	report := transport.Message{
		Kind:    KindTierReport,
		Round:   want,
		Vectors: [][]float64{n.yMinus, n.xPlus},
		Scalars: map[string]float64{ScalarLoss: n.weightedLoss},
	}
	parent := n.ts.parentID(n.lvl, n.idx)
	if err := n.ep.Send(parent, report); err != nil {
		return 0, err
	}
	deadline := n.opts.now().Add(n.opts.RecvTimeout)
	for {
		wait := deadline.Sub(n.opts.now())
		if wait <= 0 {
			if n.opts.tolerant() {
				// Ride it out: keep local state for this sync; the parent
				// substitutes this node's last report and the next sync
				// reconverges both sides.
				n.rec.timeout(n.id())
				return 0, nil
			}
			return 0, fmt.Errorf("parent update: %w", transport.ErrTimeout)
		}
		msg, err := recvInterruptible(n.ep, wait, n.opts)
		if err != nil {
			if errors.Is(err, transport.ErrTimeout) {
				continue
			}
			return 0, err
		}
		// Straggler reports from the round this node already closed can
		// still trickle in while it waits on its parent.
		if msg.Kind == KindTierReport {
			n.rec.stale(n.id())
			continue
		}
		if err := expectKind(msg, KindTierUpdate); err != nil {
			return 0, err
		}
		if msg.Round < want {
			n.rec.stale(n.id())
			continue
		}
		if len(msg.Vectors) != 2 {
			return 0, fmt.Errorf("cluster: parent update carries %d vectors, want 2", len(msg.Vectors))
		}
		if err := n.yMinus.CopyFrom(msg.Vectors[0]); err != nil {
			return 0, err
		}
		return msg.Round, n.xPlus.CopyFrom(msg.Vectors[1])
	}
}

// treeLeaf is one training leaf of an N-tier run: the exact worker NAG of
// the 3-tier runtime (Algorithm 1 lines 5–6), reporting its interval state
// to its parent every leaf-parent period.
type treeLeaf struct {
	cfg     *fl.Config
	ts      *treeSpec
	j       int // global leaf index
	shard   *dataset.Dataset
	ep      transport.Endpoint
	opts    Options
	rec     *faultRecorder
	reg     *checkpoint.Registry
	sampler *rng.RNG
	att     *robust.Attacker

	x, y          tensor.Vector
	gradSum, ySum tensor.Vector
	grad          tensor.Vector //flvet:allow ckptstate -- per-step scratch, overwritten by LossGrad before use
	// yPrev is per-iteration scratch for the NAG extrapolation,
	// preallocated so step never clones a model-sized vector.
	yPrev         tensor.Vector //flvet:allow ckptstate -- per-step scratch, refilled from y before use
	lastLoss      float64
	syncedThrough int
}

func newTreeLeaf(cfg *fl.Config, ts *treeSpec, j int, x0 tensor.Vector, ep transport.Endpoint, opts Options) *treeLeaf {
	return &treeLeaf{
		cfg:     cfg,
		ts:      ts,
		j:       j,
		shard:   ts.shards[j],
		ep:      ep,
		opts:    opts,
		sampler: ts.leafSampler(j),
		att:     opts.attackerFor(ts.topo.NodeID(ts.depth()-1, j), 4, len(x0)),
		x:       x0.Clone(),
		y:       x0.Clone(),
		gradSum: tensor.NewVector(len(x0)),
		ySum:    tensor.NewVector(len(x0)),
		grad:    tensor.NewVector(len(x0)),
		yPrev:   tensor.NewVector(len(x0)),
	}
}

func (w *treeLeaf) id() string { return w.ts.topo.NodeID(w.ts.depth()-1, w.j) }

func (w *treeLeaf) initCheckpoint() (int, error) {
	reg, err := nodeRegistry(w.cfg, w.opts, w.id())
	if err != nil || reg == nil {
		return 0, err
	}
	reg.Vector("x", w.x)
	reg.Vector("y", w.y)
	reg.Vector("gradSum", w.gradSum)
	reg.Vector("ySum", w.ySum)
	reg.RNG("sampler", w.sampler)
	reg.Float("lastLoss", &w.lastLoss)
	reg.Int("syncedThrough", &w.syncedThrough)
	if w.att != nil {
		for ci, v := range w.att.PrevVectors() {
			reg.Vector(fmt.Sprintf("attackPrev%d", ci), v)
		}
		reg.Int("attackPrevRound", w.att.PrevRoundPtr())
	}
	w.reg = reg
	return restoreOrClear(reg, w.opts.Resume, w.opts.Telemetry, w.id())
}

func (w *treeLeaf) run() error {
	start, err := w.initCheckpoint()
	if err != nil {
		return fmt.Errorf("cluster: %s: %w", w.id(), err)
	}
	bTau := w.ts.tau(w.ts.leafParent())
	parent := w.ts.parentID(w.ts.depth()-1, w.j)
	for t := start + 1; t <= w.cfg.T; t++ {
		if interrupted(w.opts.Interrupt) {
			if err := saveSnapshot(w.reg, t-1, w.opts.Telemetry, w.id()); err != nil {
				return fmt.Errorf("cluster: %s: %w", w.id(), err)
			}
			return fmt.Errorf("cluster: %s: %w", w.id(), ErrInterrupted)
		}
		if err := w.step(); err != nil {
			return fmt.Errorf("cluster: %s t=%d: %w", w.id(), t, err)
		}
		if t%bTau != 0 {
			continue
		}
		if t <= w.syncedThrough {
			// The last adopted update already covers this round; the parent
			// would reject a report for it as stale.
			if err := saveSnapshot(w.reg, t, w.opts.Telemetry, w.id()); err != nil {
				return fmt.Errorf("cluster: %s: %w", w.id(), err)
			}
			continue
		}
		vecs := [][]float64{w.y, w.x, w.gradSum, w.ySum}
		if w.att != nil {
			// Byzantine boundary: the attack mutates only what goes on the
			// wire — local training state stays honest (DESIGN.md §14).
			mut, kind, hit, err := w.att.Apply(t/bTau, []tensor.Vector{w.y, w.x, w.gradSum, w.ySum})
			if err != nil {
				return fmt.Errorf("cluster: %s attack: %w", w.id(), err)
			}
			if hit {
				w.rec.injected(w.id(), t, kind)
				vecs = [][]float64{mut[0], mut[1], mut[2], mut[3]}
			}
		}
		report := transport.Message{
			Kind:    KindTierReport,
			Round:   t,
			Vectors: vecs,
			Scalars: map[string]float64{ScalarLoss: w.lastLoss},
		}
		if err := w.ep.Send(parent, report); err != nil {
			return fmt.Errorf("cluster: %s report: %w", w.id(), err)
		}
		if err := w.awaitUpdate(t); err != nil {
			return err
		}
		// Snapshot after the boundary settles; an interrupt inside
		// awaitUpdate deliberately skips this save so the resumed leaf
		// replays the interval and re-sends the report, bit-identical to an
		// uninterrupted run.
		if err := saveSnapshot(w.reg, t, w.opts.Telemetry, w.id()); err != nil {
			return fmt.Errorf("cluster: %s: %w", w.id(), err)
		}
	}
	return nil
}

// awaitUpdate blocks for the parent's redistributed [y, x] after the report
// at iteration t; the semantics mirror the 3-tier worker exactly (stale
// skipped, later rounds fast-forwarded to, timeouts ridden out in quorum
// mode).
func (w *treeLeaf) awaitUpdate(t int) error {
	deadline := w.opts.now().Add(w.opts.RecvTimeout)
	for {
		wait := deadline.Sub(w.opts.now())
		if wait <= 0 {
			if w.opts.tolerant() {
				w.rec.timeout(w.id())
				return nil
			}
			return fmt.Errorf("cluster: %s await update: %w", w.id(), transport.ErrTimeout)
		}
		msg, err := recvInterruptible(w.ep, wait, w.opts)
		if err != nil {
			if errors.Is(err, transport.ErrTimeout) {
				continue
			}
			return fmt.Errorf("cluster: %s await update: %w", w.id(), err)
		}
		if err := expectKind(msg, KindTierUpdate); err != nil {
			return err
		}
		if msg.Round < t {
			w.rec.stale(w.id())
			continue
		}
		if len(msg.Vectors) != 2 {
			return fmt.Errorf("cluster: %s update carries %d vectors, want 2",
				w.id(), len(msg.Vectors))
		}
		if err := w.y.CopyFrom(msg.Vectors[0]); err != nil {
			return err
		}
		if err := w.x.CopyFrom(msg.Vectors[1]); err != nil {
			return err
		}
		w.gradSum.Zero()
		w.ySum.Zero()
		if msg.Round > t {
			w.rec.fastforward(w.id(), t, msg.Round)
		}
		w.syncedThrough = msg.Round
		return nil
	}
}

// step performs one NAG iteration — operation for operation the 3-tier
// worker's (and hence the simulation's) arithmetic.
func (w *treeLeaf) step() error {
	batch, err := w.shard.Batch(w.sampler, w.cfg.BatchSize)
	if err != nil {
		return err
	}
	//flvet:allow allocfree -- workspace pool miss only; steady-state gradient calls reuse pooled buffers
	loss, err := w.cfg.Model.LossGrad(w.x, batch, w.grad)
	if err != nil {
		return err
	}
	w.lastLoss = loss
	if err := w.gradSum.Add(w.grad); err != nil {
		return err
	}
	if err := w.yPrev.CopyFrom(w.y); err != nil {
		return err
	}
	if err := w.y.CopyFrom(w.x); err != nil {
		return err
	}
	if err := w.y.AXPY(-w.cfg.Eta, w.grad); err != nil {
		return err
	}
	if err := w.ySum.Add(w.y); err != nil {
		return err
	}
	if err := w.x.CopyFrom(w.y); err != nil {
		return err
	}
	if err := w.x.AXPY(w.cfg.Gamma, w.y); err != nil {
		return err
	}
	if err := w.x.AXPY(-w.cfg.Gamma, w.yPrev); err != nil {
		return err
	}
	w.opts.Telemetry.M().WorkerSteps.Inc()
	return nil
}
