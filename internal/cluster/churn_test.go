package cluster

import (
	"errors"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"hieradmo/internal/checkpoint"
	"hieradmo/internal/fl"
	"hieradmo/internal/membership"
	"hieradmo/internal/telemetry"
	"hieradmo/internal/transport"
)

// churnPlan is the canonical test trace: one late join, one permanent
// leave, combined with RetierEvery=2 re-tiering in churnOptions.
func churnPlan(t *testing.T) *membership.Plan {
	t.Helper()
	plan, err := membership.ParseSpec("join:worker-0-1@3,leave:worker-1-0@9")
	if err != nil {
		t.Fatal(err)
	}
	return &plan
}

func churnOptions(t *testing.T) Options {
	return Options{Adaptive: true, ChurnPlan: churnPlan(t), RetierEvery: 2}
}

// TestClusterChurnDeterministic is the churn acceptance test: a seeded
// churn trace (join + leave + re-tiering) must produce bit-identical
// results across reruns, across worker pool sizes, and across the memory
// and TCP transports.
func TestClusterChurnDeterministic(t *testing.T) {
	cfg := buildConfig(t, 51, 2)
	ref, err := Run(cfg, transport.NewMemoryNetwork(), churnOptions(t))
	if err != nil {
		t.Fatal(err)
	}
	m := ref.Membership
	if m == nil {
		t.Fatal("churn run returned no membership report")
	}
	if m.Joins != 1 || m.Leaves != 1 {
		t.Fatalf("membership report %+v, want 1 join and 1 leave", m)
	}
	if m.Retierings < 1 || m.Reassignments < 1 {
		t.Fatalf("membership report %+v: the acceptance trace must include an effective re-tiering", m)
	}
	if m.MigrationPolicy != "zero" {
		t.Fatalf("default migration policy = %q, want zero", m.MigrationPolicy)
	}

	same := func(name string, res *fl.Result) {
		t.Helper()
		if res.FinalAcc != ref.FinalAcc || res.FinalLoss != ref.FinalLoss {
			t.Errorf("%s: %v/%v != reference %v/%v (must be bit-identical)",
				name, res.FinalAcc, res.FinalLoss, ref.FinalAcc, ref.FinalLoss)
		}
		if len(res.Curve) != len(ref.Curve) {
			t.Fatalf("%s: curve has %d points, reference %d", name, len(res.Curve), len(ref.Curve))
		}
		for i := range res.Curve {
			if res.Curve[i] != ref.Curve[i] {
				t.Errorf("%s: curve point %d %+v != %+v", name, i, res.Curve[i], ref.Curve[i])
			}
		}
	}

	rerun, err := Run(cfg, transport.NewMemoryNetwork(), churnOptions(t))
	if err != nil {
		t.Fatal(err)
	}
	same("rerun", rerun)

	for _, workers := range []int{1, 2, 8} {
		cfg.Workers = workers
		res, err := Run(cfg, transport.NewMemoryNetwork(), churnOptions(t))
		if err != nil {
			t.Fatal(err)
		}
		same("workers=1/2/8", res)
	}
	cfg.Workers = 0

	tcp, err := Run(cfg, transport.NewTCPNetwork(), churnOptions(t))
	if err != nil {
		t.Fatal(err)
	}
	same("tcp", tcp)
}

// TestClusterChurnNatalPlanMatchesStatic pins the equivalence that anchors
// the whole subsystem: a non-empty plan whose trajectory never deviates
// from the natal topology (a join at round 1 is a no-op) exercises every
// membership-gated code path yet must reproduce the static run bit for
// bit, because the per-epoch weights are the harness weights.
func TestClusterChurnNatalPlanMatchesStatic(t *testing.T) {
	cfg := buildConfig(t, 53, 2)
	static, err := Run(cfg, transport.NewMemoryNetwork(), Options{Adaptive: true})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := membership.ParseSpec("join:worker-0-0@1")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(cfg, transport.NewMemoryNetwork(), Options{Adaptive: true, ChurnPlan: &plan})
	if err != nil {
		t.Fatal(err)
	}
	if res.Membership == nil || res.Membership.Joins != 0 || res.Membership.Epochs != 1 {
		t.Fatalf("natal plan membership report %+v, want 0 joins in a single epoch", res.Membership)
	}
	if res.FinalAcc != static.FinalAcc || res.FinalLoss != static.FinalLoss {
		t.Errorf("natal churn run %v/%v != static %v/%v (must be bit-identical)",
			res.FinalAcc, res.FinalLoss, static.FinalAcc, static.FinalLoss)
	}
	for i := range res.Curve {
		if res.Curve[i] != static.Curve[i] {
			t.Errorf("curve point %d: %+v != static %+v", i, res.Curve[i], static.Curve[i])
		}
	}
}

// TestClusterEmptyChurnPlanIsStatic: an empty plan with no re-tiering is
// not a churn run at all — the membership machinery must stay fully
// disabled (nil report, nil state), leaving the static path byte-identical
// to pre-churn behaviour (golden traces pin the rest).
func TestClusterEmptyChurnPlanIsStatic(t *testing.T) {
	empty := &membership.Plan{}
	opts := Options{Adaptive: true, ChurnPlan: empty}
	if opts.churnEnabled() {
		t.Fatal("empty plan with retier-every=0 counts as churn-enabled")
	}
	cfg := buildConfig(t, 51, 2)
	memb, err := newMembership(*cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	if memb != nil {
		t.Fatal("empty plan built membership state")
	}
	res, err := Run(cfg, transport.NewMemoryNetwork(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Membership != nil {
		t.Fatalf("static run reports membership %+v", res.Membership)
	}
	static, err := Run(cfg, transport.NewMemoryNetwork(), Options{Adaptive: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalAcc != static.FinalAcc || res.FinalLoss != static.FinalLoss {
		t.Errorf("empty-plan run %v/%v != static %v/%v",
			res.FinalAcc, res.FinalLoss, static.FinalAcc, static.FinalLoss)
	}
}

// TestClusterChurnCohortCollapse: a plan that empties an edge's cohort must
// fail fast at schedule construction with a typed error naming the round
// and edge, never hang a run until RecvTimeout.
func TestClusterChurnCohortCollapse(t *testing.T) {
	cfg := buildConfig(t, 57, 0)
	plan, err := membership.ParseSpec("leave:worker-1-0@4,leave:worker-1-1@4")
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err = Run(cfg, transport.NewMemoryNetwork(), Options{Adaptive: true, ChurnPlan: &plan})
	if err == nil {
		t.Fatal("collapsing plan accepted")
	}
	if !errors.Is(err, membership.ErrCohortCollapsed) {
		t.Fatalf("error %v does not wrap ErrCohortCollapsed", err)
	}
	var ce *membership.CohortError
	if !errors.As(err, &ce) {
		t.Fatalf("error %v carries no *CohortError", err)
	}
	if ce.Round != 5 || ce.Edge != 1 {
		t.Fatalf("CohortError = %+v, want round 5 edge 1", ce)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("cohort collapse took RecvTimeout-scale time to surface; must fail fast")
	}
}

// TestClusterChurnInterruptResume: a checkpoint taken mid-churn must resume
// with the adapted topology and finish bit-identically; resuming under a
// different churn plan must be refused.
func TestClusterChurnInterruptResume(t *testing.T) {
	cfg := buildConfig(t, 101, 2)
	dir := t.TempDir()
	opts := churnOptions(t)
	opts.CheckpointDir = dir

	ref, err := Run(cfg, transport.NewMemoryNetwork(), churnOptions(t))
	if err != nil {
		t.Fatal(err)
	}
	if ref.Membership.Retierings < 1 {
		t.Fatalf("membership report %+v: resume test needs an effective re-tiering", ref.Membership)
	}

	interrupt := make(chan struct{})
	stop := make(chan struct{})
	var watch sync.WaitGroup
	watch.Add(1)
	go func() {
		defer watch.Done()
		for {
			select {
			case <-stop:
				return
			case <-time.After(2 * time.Millisecond):
			}
			if files, _ := filepath.Glob(filepath.Join(dir, "*.ckpt")); len(files) > 0 {
				close(interrupt)
				return
			}
		}
	}()
	iopts := opts
	iopts.Interrupt = interrupt
	net := transport.NewFaultyNetwork(transport.NewMemoryNetwork(),
		transport.FaultPlan{Seed: 4, MaxDelay: 2 * time.Millisecond})
	_, err = Run(cfg, net, iopts)
	close(stop)
	watch.Wait()
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("interrupted run failed with %v, want wrapped ErrInterrupted", err)
	}

	ropts := opts
	ropts.Resume = true
	res, err := Run(cfg, transport.NewMemoryNetwork(), ropts)
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalAcc != ref.FinalAcc || res.FinalLoss != ref.FinalLoss {
		t.Errorf("resumed churn run %v/%v != uninterrupted %v/%v (must be bit-identical)",
			res.FinalAcc, res.FinalLoss, ref.FinalAcc, ref.FinalLoss)
	}
	if len(res.Curve) != len(ref.Curve) {
		t.Fatalf("resumed curve has %d points, reference %d", len(res.Curve), len(ref.Curve))
	}
	for i := range res.Curve {
		if res.Curve[i] != ref.Curve[i] {
			t.Errorf("curve point %d: resumed %+v != reference %+v", i, res.Curve[i], ref.Curve[i])
		}
	}

	// A different churn plan describes a different trajectory: resuming the
	// finished run's snapshots under it must be refused by every node. This
	// check runs last, once all nodes hold snapshots — a node without one
	// would start fresh and write wrong-plan generations into the shared
	// directory.
	wrongPlan, err := membership.ParseSpec("join:worker-0-1@5,leave:worker-1-0@9")
	if err != nil {
		t.Fatal(err)
	}
	wrong := opts
	wrong.Resume = true
	wrong.ChurnPlan = &wrongPlan
	wrong.RecvTimeout = deadlineScale * 500 * time.Millisecond
	if _, err := Run(cfg, transport.NewMemoryNetwork(), wrong); !errors.Is(err, checkpoint.ErrMismatch) {
		t.Fatalf("resume under changed churn plan = %v, want wrapped checkpoint.ErrMismatch", err)
	}
}

// TestClusterChurnMetricsMatchTrace scrapes the fl_membership_* instruments
// after a churn run and checks them against the schedule-derived report —
// the counters must reflect the trace exactly, not approximately.
func TestClusterChurnMetricsMatchTrace(t *testing.T) {
	cfg := buildConfig(t, 51, 2)
	reg := telemetry.NewRegistry()
	opts := churnOptions(t)
	opts.Telemetry = telemetry.New(reg, nil)
	res, err := Run(cfg, transport.NewMemoryNetwork(), opts)
	if err != nil {
		t.Fatal(err)
	}
	m := res.Membership

	counter := func(name string) int64 {
		t.Helper()
		c := reg.Counter(name)
		if c == nil {
			t.Fatalf("counter %s not registered", name)
		}
		return c.Value()
	}
	if got := counter("fl_membership_joins_total"); got != int64(m.Joins) {
		t.Errorf("fl_membership_joins_total = %d, trace says %d", got, m.Joins)
	}
	if got := counter("fl_membership_leaves_total"); got != int64(m.Leaves) {
		t.Errorf("fl_membership_leaves_total = %d, trace says %d", got, m.Leaves)
	}
	if got := counter("fl_membership_reassigns_total"); got != int64(m.Reassignments) {
		t.Errorf("fl_membership_reassigns_total = %d, trace says %d", got, m.Reassignments)
	}
	if got := counter("fl_membership_retierings_total"); got != int64(m.Retierings) {
		t.Errorf("fl_membership_retierings_total = %d, trace says %d", got, m.Retierings)
	}

	// Migrations: one per (edge, epoch boundary) with a changed cohort,
	// computed from the same schedule the nodes used.
	memb, err := newMembership(*cfg, churnOptions(t))
	if err != nil {
		t.Fatal(err)
	}
	wantMigrations := 0
	for k := 2; k <= memb.sched.K; k++ {
		for l := 0; l < memb.sched.NumEdges; l++ {
			if _, changed := memb.sched.Overlap(k, l); changed {
				wantMigrations++
			}
		}
	}
	if got := counter("fl_membership_gamma_migrations_total"); got != int64(wantMigrations) {
		t.Errorf("fl_membership_gamma_migrations_total = %d, schedule says %d", got, wantMigrations)
	}

	gauge := func(name string) float64 {
		t.Helper()
		g := reg.Gauge(name)
		if g == nil {
			t.Fatalf("gauge %s not registered", name)
		}
		return g.Value()
	}
	if got := gauge("fl_membership_live_workers"); got != float64(m.FinalWorkers) {
		t.Errorf("fl_membership_live_workers = %v, trace says %d", got, m.FinalWorkers)
	}
	if got := gauge("fl_membership_epoch"); got != float64(m.Epochs-1) {
		t.Errorf("fl_membership_epoch = %v, want final epoch %d", got, m.Epochs-1)
	}
}

// TestClusterChurnMigrationPoliciesDiverge: carry, zero, and rescale are
// distinct γℓ migration rules, so on a trace with an effective re-tiering
// an adaptive run's trajectory must depend on the choice — and each choice
// must itself be deterministic.
func TestClusterChurnMigrationPoliciesDiverge(t *testing.T) {
	cfg := buildConfig(t, 51, 2)
	results := make(map[membership.MigrationPolicy]*fl.Result)
	for _, pol := range []membership.MigrationPolicy{
		membership.MigrateZero, membership.MigrateCarry, membership.MigrateRescale,
	} {
		opts := churnOptions(t)
		opts.Migration = pol
		res, err := Run(cfg, transport.NewMemoryNetwork(), opts)
		if err != nil {
			t.Fatalf("%s: %v", pol, err)
		}
		if res.Membership.MigrationPolicy != pol.String() {
			t.Errorf("report says policy %q, want %q", res.Membership.MigrationPolicy, pol)
		}
		results[pol] = res
	}
	zero, carry := results[membership.MigrateZero], results[membership.MigrateCarry]
	if zero.FinalAcc == carry.FinalAcc && zero.FinalLoss == carry.FinalLoss {
		t.Error("zero and carry migration produced identical results; the policy is not being applied")
	}
}
