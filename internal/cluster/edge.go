package cluster

import (
	"fmt"

	"hieradmo/internal/core"
	"hieradmo/internal/fl"
	"hieradmo/internal/tensor"
	"hieradmo/internal/transport"
)

// edgeNode is one edge node ℓ: it collects its workers' interval reports
// every τ iterations, adapts γℓ (eq. (6)–(7)), performs the edge momentum
// and model updates (Algorithm 1 lines 10–15), and synchronizes with the
// cloud every π edge rounds (lines 17–23, edge side).
type edgeNode struct {
	cfg  *fl.Config
	hn   *fl.Harness
	l    int
	ep   transport.Endpoint
	opts Options

	yMinus, yPlus, yPlusNext, xPlus tensor.Vector
	// lastY is the worker momentum most recently redistributed to the
	// workers, used by the velocity adaptation signal.
	lastY tensor.Vector
	// x0 is the shared initialization, the gauge reference for the Σy
	// adaptation signal (see internal/core).
	x0 tensor.Vector
}

func newEdgeNode(cfg *fl.Config, hn *fl.Harness, l int, x0 tensor.Vector, ep transport.Endpoint, opts Options) *edgeNode {
	return &edgeNode{
		cfg:       cfg,
		hn:        hn,
		l:         l,
		ep:        ep,
		opts:      opts,
		yMinus:    x0.Clone(),
		yPlus:     x0.Clone(),
		yPlusNext: tensor.NewVector(len(x0)),
		xPlus:     x0.Clone(),
		lastY:     x0.Clone(),
		x0:        x0.Clone(),
	}
}

func (e *edgeNode) run() error {
	numWorkers := len(e.cfg.Edges[e.l])
	numRounds := e.cfg.T / e.cfg.Tau
	for k := 1; k <= numRounds; k++ {
		reports, losses, err := e.collectReports(numWorkers)
		if err != nil {
			return fmt.Errorf("cluster: edge %d round %d: %w", e.l, k, err)
		}
		if err := e.update(reports); err != nil {
			return fmt.Errorf("cluster: edge %d round %d: %w", e.l, k, err)
		}
		if k%e.cfg.Pi == 0 {
			if err := e.cloudSync(k, losses); err != nil {
				return fmt.Errorf("cluster: edge %d round %d: %w", e.l, k, err)
			}
		}
		// Lines 14–15 (and 22–23 after a cloud round): redistribute.
		update := transport.Message{
			Kind:    KindEdgeUpdate,
			Round:   k * e.cfg.Tau,
			Vectors: [][]float64{e.yMinus, e.xPlus},
		}
		for i := 0; i < numWorkers; i++ {
			if err := e.ep.Send(WorkerID(e.l, i), update); err != nil {
				return fmt.Errorf("cluster: edge %d redistribute to %d: %w", e.l, i, err)
			}
		}
		if err := e.lastY.CopyFrom(e.yMinus); err != nil {
			return err
		}
	}
	return nil
}

// collectReports gathers one report per worker, indexed by worker position
// so aggregation order (and hence floating-point results) is deterministic
// regardless of arrival order.
func (e *edgeNode) collectReports(numWorkers int) ([]transport.Message, []float64, error) {
	reports := make([]transport.Message, numWorkers)
	losses := make([]float64, numWorkers)
	for got := 0; got < numWorkers; got++ {
		msg, err := e.ep.RecvTimeout(e.opts.RecvTimeout)
		if err != nil {
			return nil, nil, err
		}
		if err := expectKind(msg, KindEdgeReport); err != nil {
			return nil, nil, err
		}
		i, err := parseWorkerIndex(msg.From)
		if err != nil {
			return nil, nil, err
		}
		if i < 0 || i >= numWorkers {
			return nil, nil, fmt.Errorf("cluster: report from out-of-range worker %d", i)
		}
		if len(msg.Vectors) != 4 {
			return nil, nil, fmt.Errorf("cluster: report from %q carries %d vectors, want 4",
				msg.From, len(msg.Vectors))
		}
		reports[i] = msg
		losses[i] = msg.Scalars[ScalarLoss]
	}
	return reports, losses, nil
}

// update executes Algorithm 1 lines 10–13 from the collected reports.
func (e *edgeNode) update(reports []transport.Message) error {
	n := len(reports)
	ys := make([]tensor.Vector, n)
	xs := make([]tensor.Vector, n)
	gradSums := make([]tensor.Vector, n)
	ySums := make([]tensor.Vector, n)
	for i, msg := range reports {
		ys[i] = msg.Vectors[0]
		xs[i] = msg.Vectors[1]
		gradSums[i] = msg.Vectors[2]
		ySums[i] = msg.Vectors[3]
	}

	gammaEdge := e.cfg.GammaEdge
	if e.opts.Adaptive {
		signals := make([]tensor.Vector, n)
		if e.opts.Signal == core.SignalVelocity {
			for i := range ys {
				v := ys[i].Clone()
				if err := v.Sub(e.lastY); err != nil {
					return err
				}
				signals[i] = v
			}
		} else {
			// Σy centred at the shared initialization, matching the
			// simulation's gauge (see internal/core).
			for i := range ySums {
				centered := ySums[i].Clone()
				if err := centered.AXPY(-float64(e.cfg.Tau), e.x0); err != nil {
					return err
				}
				signals[i] = centered
			}
		}
		cos, err := core.EdgeCosine(e.hn.WorkerWeights[e.l], gradSums, signals)
		if err != nil {
			return err
		}
		gammaEdge = core.ClampGamma(cos, e.opts.Ceiling)
	}

	if err := e.hn.EdgeAverage(e.yMinus, e.l, ys); err != nil { // line 11
		return err
	}
	if err := e.hn.EdgeAverage(e.yPlusNext, e.l, xs); err != nil { // line 12
		return err
	}
	if err := e.xPlus.CopyFrom(e.yPlusNext); err != nil { // line 13
		return err
	}
	if err := e.xPlus.AXPY(gammaEdge, e.yPlusNext); err != nil {
		return err
	}
	if err := e.xPlus.AXPY(-gammaEdge, e.yPlus); err != nil {
		return err
	}
	return e.yPlus.CopyFrom(e.yPlusNext)
}

// cloudSync executes the edge side of lines 17–23: report to the cloud and
// adopt the cloud-aggregated momentum and model.
func (e *edgeNode) cloudSync(k int, losses []float64) error {
	var weightedLoss float64
	for i, loss := range losses {
		weightedLoss += e.hn.WorkerWeights[e.l][i] * loss
	}
	report := transport.Message{
		Kind:    KindCloudReport,
		Round:   k * e.cfg.Tau,
		Vectors: [][]float64{e.yMinus, e.xPlus},
		Scalars: map[string]float64{ScalarLoss: weightedLoss},
	}
	if err := e.ep.Send(CloudID, report); err != nil {
		return err
	}
	msg, err := e.ep.RecvTimeout(e.opts.RecvTimeout)
	if err != nil {
		return err
	}
	if err := expectKind(msg, KindCloudUpdate); err != nil {
		return err
	}
	if len(msg.Vectors) != 2 {
		return fmt.Errorf("cluster: cloud update carries %d vectors, want 2", len(msg.Vectors))
	}
	if err := e.yMinus.CopyFrom(msg.Vectors[0]); err != nil {
		return err
	}
	return e.xPlus.CopyFrom(msg.Vectors[1])
}
