package cluster

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"hieradmo/internal/checkpoint"
	"hieradmo/internal/core"
	"hieradmo/internal/fl"
	"hieradmo/internal/membership"
	"hieradmo/internal/robust"
	"hieradmo/internal/telemetry"
	"hieradmo/internal/tensor"
	"hieradmo/internal/transport"
)

// edgeNode is one edge node ℓ: it collects its workers' interval reports
// every τ iterations, adapts γℓ (eq. (6)–(7)), performs the edge momentum
// and model updates (Algorithm 1 lines 10–15), and synchronizes with the
// cloud every π edge rounds (lines 17–23, edge side).
//
// Under quorum options (MinQuorum < 1) an aggregation proceeds with the
// workers that reported by the straggler deadline, renormalizing the data
// weights over the survivors exactly like the simulation's
// partial-participation path, so a matched cohort is bit-identical to
// core.WithParticipation.
type edgeNode struct {
	cfg  *fl.Config
	hn   *fl.Harness
	l    int
	ep   transport.Endpoint
	opts Options
	rec  *faultRecorder
	reg  *checkpoint.Registry
	memb *membState

	//flvet:allow ckptstate -- yPlusNext is per-sync scratch, overwritten by WeightedSum before use
	yMinus, yPlus, yPlusNext, xPlus tensor.Vector
	// lastY is the worker momentum most recently redistributed to the
	// workers, used by the velocity adaptation signal.
	lastY tensor.Vector
	// x0 is the shared initialization, the gauge reference for the Σy
	// adaptation signal (see internal/core).
	x0 tensor.Vector
	// lastLosses holds each worker's most recently reported mini-batch
	// loss, so the cloud report stays well-defined when stragglers miss a
	// round.
	lastLosses []float64
	// pending stashes reports from workers running ahead of this edge (a
	// worker that rode out a lost update keeps training) until the edge's
	// own round catches up with them.
	pending []transport.Message
	// lossRef replaces lastLosses under dynamic membership: cohorts change
	// between rounds, so losses are cached by worker ref, not position.
	lossRef map[membership.Ref]float64
	// epoch is the membership epoch of the last snapshotted round; persisted
	// so a resume can verify it restores the adapted topology.
	epoch int
	// agg is the robust aggregation rule applied to worker reports, nil
	// for plain mean (the original bit-exact WeightedSum path).
	agg robust.Aggregator
}

func newEdgeNode(cfg *fl.Config, hn *fl.Harness, l int, x0 tensor.Vector, ep transport.Endpoint, opts Options) *edgeNode {
	return &edgeNode{
		cfg:        cfg,
		hn:         hn,
		l:          l,
		ep:         ep,
		opts:       opts,
		yMinus:     x0.Clone(),
		yPlus:      x0.Clone(),
		yPlusNext:  tensor.NewVector(len(x0)),
		xPlus:      x0.Clone(),
		lastY:      x0.Clone(),
		x0:         x0.Clone(),
		lastLosses: make([]float64, len(cfg.Edges[l])),
		lossRef:    make(map[membership.Ref]float64),
		agg:        newAggregator(opts.EdgeAggregator),
	}
}

// initCheckpoint binds the edge's aggregation state — both momenta, the edge
// model, the velocity-signal reference, the per-worker loss cache, and the
// ride-ahead report stash — to its snapshot registry and applies the Resume
// option. It returns the aggregation round to continue after.
func (e *edgeNode) initCheckpoint() (int, error) {
	reg, err := nodeRegistry(e.cfg, e.opts, EdgeID(e.l))
	if err != nil || reg == nil {
		return 0, err
	}
	reg.Vector("yMinus", e.yMinus)
	reg.Vector("yPlus", e.yPlus)
	reg.Vector("xPlus", e.xPlus)
	reg.Vector("lastY", e.lastY)
	reg.Vector("lastLosses", e.lastLosses)
	dim := len(e.x0)
	if e.memb == nil {
		reg.Dynamic("pending",
			func() []float64 { return encodePending(e.pending, 4, dim, parseWorkerIndex) },
			func(flat []float64) error {
				msgs, err := decodePending(flat, 4, dim, KindEdgeReport, func(i int) string { return WorkerID(e.l, i) })
				if err != nil {
					return err
				}
				e.pending = msgs
				return nil
			})
	} else {
		// Under dynamic membership workers from any natal edge can report
		// here, so the stash codec keys senders by their full ref, and the
		// epoch plus ref-keyed loss cache join the snapshot so a resume
		// restores the adapted topology.
		reg.Int("membEpoch", &e.epoch)
		reg.Dynamic("lossRef", e.encodeLosses, e.decodeLosses)
		reg.Dynamic("pending",
			func() []float64 { return encodePending(e.pending, 4, dim, encodeWorkerRef) },
			func(flat []float64) error {
				msgs, err := decodePending(flat, 4, dim, KindEdgeReport, decodeWorkerRef)
				if err != nil {
					return err
				}
				e.pending = msgs
				return nil
			})
	}
	e.reg = reg
	return restoreOrClear(reg, e.opts.Resume, e.opts.Telemetry, EdgeID(e.l))
}

// encodeLosses flattens the ref-keyed loss cache as sorted
// [edge, index, loss] triples for snapshotting.
func (e *edgeNode) encodeLosses() []float64 {
	refs := make([]membership.Ref, 0, len(e.lossRef))
	for ref := range e.lossRef {
		refs = append(refs, ref)
	}
	sort.Slice(refs, func(i, j int) bool { return refs[i].Less(refs[j]) })
	out := make([]float64, 0, 3*len(refs))
	for _, ref := range refs {
		out = append(out, float64(ref.Edge), float64(ref.Index), e.lossRef[ref])
	}
	return out
}

func (e *edgeNode) decodeLosses(flat []float64) error {
	if len(flat)%3 != 0 {
		return fmt.Errorf("loss cache holds %d values, not a multiple of 3", len(flat))
	}
	e.lossRef = make(map[membership.Ref]float64, len(flat)/3)
	for off := 0; off < len(flat); off += 3 {
		ref := membership.Ref{Edge: int(flat[off]), Index: int(flat[off+1])}
		e.lossRef[ref] = flat[off+2]
	}
	return nil
}

// redistribute sends the round-k edge update (lines 14–15, and 22–23 after a
// cloud round) to every worker. Stragglers that missed the aggregation
// resynchronize from it, mirroring how non-participants rejoin in the
// simulation.
func (e *edgeNode) redistribute(k int) error { return e.redistributeRound(k, false) }

// redistributeRound does the sending; resend marks a resume's repeat of the
// snapshotted round (membership transitions are then re-announced but not
// re-counted in telemetry). Under dynamic membership the round-k update goes
// to the round-k+1 cohort — newcomers (planned joiners and reassigned-in
// workers) get it as an ADMIT carrying their starting state, and planned
// leavers whose final report was just aggregated get a RETIRE.
func (e *edgeNode) redistributeRound(k int, resend bool) error {
	update := transport.Message{
		Kind:    KindEdgeUpdate,
		Round:   k * e.cfg.Tau,
		Vectors: [][]float64{e.yMinus, e.xPlus},
	}
	if e.memb == nil {
		for i := range e.cfg.Edges[e.l] {
			if err := e.ep.Send(WorkerID(e.l, i), update); err != nil {
				return fmt.Errorf("cluster: edge %d redistribute to %d: %w", e.l, i, err)
			}
		}
		return nil
	}
	sched := e.memb.sched
	next := k + 1
	if next > sched.K {
		next = sched.K
	}
	prev := sched.Cohort(k, e.l)
	for _, ref := range sched.Cohort(next, e.l) {
		msg := update
		if next > k && !refIn(prev, ref) {
			msg.Kind = KindAdmit
			if !resend {
				e.rec.joined(ref.NodeID(), k*e.cfg.Tau, !refIn(sched.JoinsAt(next), ref))
			}
		}
		if err := e.ep.Send(ref.NodeID(), msg); err != nil {
			return fmt.Errorf("cluster: edge %d redistribute to %s: %w", e.l, ref.NodeID(), err)
		}
	}
	if next > k {
		retire := transport.Message{Kind: KindRetire, Round: k * e.cfg.Tau}
		for _, ref := range sched.LeavesAfter(k) {
			if l, ok := sched.EdgeOf(k, ref); !ok || l != e.l {
				continue
			}
			if !resend {
				e.rec.left(ref.NodeID(), k*e.cfg.Tau)
			}
			if err := e.ep.Send(ref.NodeID(), retire); err != nil {
				return fmt.Errorf("cluster: edge %d retire %s: %w", e.l, ref.NodeID(), err)
			}
		}
	}
	return nil
}

func (e *edgeNode) run() error {
	numRounds := e.cfg.T / e.cfg.Tau
	start, err := e.initCheckpoint()
	if err != nil {
		return fmt.Errorf("cluster: edge %d: %w", e.l, err)
	}
	if start > 0 {
		if e.memb != nil && e.epoch != e.memb.sched.EpochIndex(start) {
			return fmt.Errorf("cluster: edge %d resume at round %d: snapshot epoch %d, schedule says %d: membership schedule divergence",
				e.l, start, e.epoch, e.memb.sched.EpochIndex(start))
		}
		// The snapshot was taken before the round's redistribution, so a
		// crash can land between the two. Re-send the snapshotted round's
		// update: workers already past it discard the duplicate as stale,
		// workers still waiting on it adopt it and catch up.
		if err := e.redistributeRound(start, true); err != nil {
			return fmt.Errorf("cluster: edge %d resume: %w", e.l, err)
		}
	}
	for k := start + 1; k <= numRounds; k++ {
		if interrupted(e.opts.Interrupt) {
			return fmt.Errorf("cluster: edge %d: %w", e.l, ErrInterrupted)
		}
		reports, idx, adopted, err := e.collectReports(k)
		if err != nil {
			return fmt.Errorf("cluster: edge %d round %d: %w", e.l, k, err)
		}
		if adopted > 0 {
			// The cloud completed sync `adopted` while this edge was still
			// collecting: the adopted state supersedes this round's local
			// aggregation, so skip it (and the sync the cloud already
			// closed) and rejoin at the adopted round.
			e.rec.fastforward(EdgeID(e.l), k*e.cfg.Tau, adopted)
			k = adopted / e.cfg.Tau
		} else {
			if err := e.update(reports, idx, k); err != nil {
				return fmt.Errorf("cluster: edge %d round %d: %w", e.l, k, err)
			}
			if k%e.cfg.Pi == 0 {
				adopted, err := e.cloudSync(k)
				if err != nil {
					return fmt.Errorf("cluster: edge %d round %d: %w", e.l, k, err)
				}
				if r := adopted / e.cfg.Tau; r > k {
					// The cloud moved on without this edge (a lost update or
					// report left it a sync behind); jump to the adopted
					// round so the edge rejoins the cloud's cadence instead
					// of trailing — and having every report rejected as
					// stale — forever.
					e.rec.fastforward(EdgeID(e.l), k*e.cfg.Tau, adopted)
					k = r
				}
			}
		}
		// Settle the round's remaining state and snapshot it BEFORE the
		// redistribution: a resumed edge then re-sends the snapshotted
		// round's update, so workers can never be stranded waiting for an
		// update that died with the edge process. (lastY only feeds the next
		// round's velocity signal, so moving its refresh ahead of the sends
		// does not change any message.)
		if err := e.lastY.CopyFrom(e.yMinus); err != nil {
			return err
		}
		if e.memb != nil {
			e.epoch = e.memb.sched.EpochIndex(k)
		}
		if err := saveSnapshot(e.reg, k, e.opts.Telemetry, EdgeID(e.l)); err != nil {
			return fmt.Errorf("cluster: edge %d round %d: %w", e.l, k, err)
		}
		if err := e.redistribute(k); err != nil {
			return err
		}
	}
	return nil
}

// collectReports gathers the round-k reports, indexed by worker position so
// aggregation order (and hence floating-point results) is deterministic
// regardless of arrival order. It returns the report slots and the sorted
// indices of the workers that reported.
//
// Strict mode (MinQuorum == 1) requires the full cohort within RecvTimeout.
// Quorum mode grants stragglers a grace period of StragglerDeadline measured
// from the moment the quorum-th report arrives, then proceeds with the
// survivors; below quorum it keeps waiting until RecvTimeout before failing.
// (Anchoring the grace at quorum attainment rather than collection start
// keeps the window from being consumed by upstream tiers' own waits.)
// Duplicate reports and stale rounds are rejected (and counted) in both
// modes. A report for a future round — a worker that rode out a lost update
// and ran ahead — is stashed for the round it belongs to in quorum mode and
// is a protocol error in strict mode (strict workers never ride out).
//
// In quorum mode a cloud update for this round or later arriving mid-collect
// means the cloud already completed a sync without this edge; the update is
// adopted on the spot and its round returned (third result) so the caller
// fast-forwards instead of timing out on a round the protocol moved past.
func (e *edgeNode) collectReports(k int) ([]transport.Message, []int, int, error) {
	// Under dynamic membership the denominator is the round's live cohort,
	// not the static worker set: quorum fractions and straggler accounting
	// track who is actually scheduled to report.
	var cohort []membership.Ref
	numWorkers := len(e.cfg.Edges[e.l])
	if e.memb != nil {
		cohort = e.memb.sched.Cohort(k, e.l)
		numWorkers = len(cohort)
	}
	want := k * e.cfg.Tau
	quorum := numWorkers
	if e.opts.tolerant() {
		quorum = quorumCount(e.opts.MinQuorum, numWorkers)
	}
	reports := make([]transport.Message, numWorkers)
	seen := make([]bool, numWorkers)
	got := 0
	// Drain reports stashed by earlier rounds: a worker that rode out a
	// lost update runs ahead of this edge, and its reports were kept for
	// the rounds they belong to.
	if len(e.pending) > 0 {
		keep := e.pending[:0]
		for _, msg := range e.pending {
			switch {
			case msg.Round > want:
				keep = append(keep, msg)
			case msg.Round < want:
				e.rec.stale(EdgeID(e.l))
			default:
				ok, err := e.admitReport(msg, want, reports, seen, cohort)
				if err != nil {
					return nil, nil, 0, err
				}
				if ok {
					got++
				}
			}
		}
		e.pending = keep
	}
	deadline := e.opts.now().Add(e.opts.RecvTimeout)
	if e.opts.tolerant() {
		// A silent cohort may be riding out a lost update for up to a full
		// RecvTimeout of its own; wait one straggler grace beyond that
		// horizon so their recovery reports are not missed by a hair.
		deadline = deadline.Add(e.opts.StragglerDeadline)
	}
	var stragglerBy time.Time
	for got < numWorkers {
		var wait time.Duration
		if got >= quorum {
			if stragglerBy.IsZero() {
				stragglerBy = e.opts.now().Add(e.opts.StragglerDeadline)
			}
			wait = stragglerBy.Sub(e.opts.now())
			if wait <= 0 {
				break // quorum reached, stragglers forfeited this round
			}
		} else {
			wait = deadline.Sub(e.opts.now())
			if wait <= 0 {
				return nil, nil, 0, fmt.Errorf("%d/%d reports (quorum %d): %w",
					got, numWorkers, quorum, transport.ErrTimeout)
			}
		}
		msg, err := recvInterruptible(e.ep, wait, e.opts)
		if err != nil {
			if errors.Is(err, transport.ErrTimeout) {
				continue // the loop re-evaluates quorum and deadlines
			}
			return nil, nil, 0, err
		}
		if msg.Kind == KindReassign {
			if err := e.checkReassign(msg); err != nil {
				return nil, nil, 0, err
			}
			continue
		}
		if msg.Kind == KindCloudUpdate {
			if e.opts.tolerant() && msg.Round >= want && len(msg.Vectors) == 2 {
				// The cloud completed this round's sync (or a later one)
				// without this edge — its update supersedes anything the
				// current collect could aggregate. Adopt it and tell the
				// caller to fast-forward.
				if err := e.yMinus.CopyFrom(msg.Vectors[0]); err != nil {
					return nil, nil, 0, err
				}
				if err := e.xPlus.CopyFrom(msg.Vectors[1]); err != nil {
					return nil, nil, 0, err
				}
				return nil, nil, msg.Round, nil
			}
			// A cloud update from a sync this edge already gave up on.
			e.rec.stale(EdgeID(e.l))
			continue
		}
		if err := expectKind(msg, KindEdgeReport); err != nil {
			return nil, nil, 0, err
		}
		if msg.Round < want {
			e.rec.stale(EdgeID(e.l))
			continue
		}
		if msg.Round > want {
			if e.opts.tolerant() {
				// A worker that rode out a lost update is running ahead of
				// this edge; keep its report for the round it belongs to.
				e.pending = append(e.pending, msg)
				continue
			}
			return nil, nil, 0, fmt.Errorf("cluster: report from %q for future round %d (want %d)",
				msg.From, msg.Round, want)
		}
		ok, err := e.admitReport(msg, want, reports, seen, cohort)
		if err != nil {
			return nil, nil, 0, err
		}
		if ok {
			got++
		}
	}
	idx := make([]int, 0, got)
	for i, ok := range seen {
		if ok {
			idx = append(idx, i)
		}
	}
	e.rec.missingWorkers(want, numWorkers-got)
	return reports, idx, 0, nil
}

// admitReport validates one round-want report and slots it into reports;
// shared by live receives and the ride-ahead stash. It returns whether the
// report counted as a new distinct reporter. With a non-nil cohort (dynamic
// membership) senders are slotted by their position in the round's cohort;
// reports from workers outside it are rejected as stale.
func (e *edgeNode) admitReport(msg transport.Message, want int, reports []transport.Message, seen []bool, cohort []membership.Ref) (bool, error) {
	var i int
	if cohort != nil {
		ref, err := membership.ParseNodeID(msg.From)
		if err != nil {
			return false, fmt.Errorf("cluster: %v", err)
		}
		i = -1
		for j, r := range cohort {
			if r == ref {
				i = j
				break
			}
		}
		if i < 0 {
			// A worker not in this round's cohort (e.g. a just-reassigned
			// worker's report that crossed the boundary) has nothing to
			// contribute here.
			e.rec.stale(EdgeID(e.l))
			return false, nil
		}
	} else {
		numWorkers := len(e.cfg.Edges[e.l])
		var err error
		if i, err = parseWorkerIndex(msg.From); err != nil {
			return false, err
		}
		if i < 0 || i >= numWorkers {
			return false, fmt.Errorf("cluster: report from out-of-range worker %d", i)
		}
	}
	if len(msg.Vectors) != 4 {
		return false, fmt.Errorf("cluster: report from %q carries %d vectors, want 4",
			msg.From, len(msg.Vectors))
	}
	if seen[i] {
		// A duplicate must not overwrite the slot twice while inflating the
		// reporter count: reject it and keep counting distinct reporters
		// only.
		e.rec.duplicate(EdgeID(e.l))
		return false, nil
	}
	seen[i] = true
	reports[i] = msg
	if cohort != nil {
		e.lossRef[cohort[i]] = msg.Scalars[ScalarLoss]
	} else {
		e.lastLosses[i] = msg.Scalars[ScalarLoss]
	}
	return true, nil
}

// checkReassign cross-checks a cloud REASSIGN announcement against the
// locally computed schedule. Reassignment is never *decided* by messages —
// every node derives the same schedule — so any disagreement means the
// nodes were started with different churn configurations.
func (e *edgeNode) checkReassign(msg transport.Message) error {
	if e.memb == nil {
		return fmt.Errorf("cluster: edge %d got reassign without dynamic membership", e.l)
	}
	if len(msg.Vectors) != 1 || len(msg.Vectors[0])%3 != 0 {
		return fmt.Errorf("cluster: edge %d: malformed reassign payload", e.l)
	}
	k := msg.Round / e.cfg.Tau
	flat := msg.Vectors[0]
	for off := 0; off < len(flat); off += 3 {
		ref := membership.Ref{Edge: int(flat[off]), Index: int(flat[off+1])}
		to := int(flat[off+2])
		if l, ok := e.memb.sched.EdgeOf(k+1, ref); !ok || l != to {
			return fmt.Errorf("cluster: edge %d: reassign of %s to edge %d at round %d disagrees with the local schedule: membership schedule divergence",
				e.l, ref.NodeID(), to, k+1)
		}
	}
	return nil
}

// update executes Algorithm 1 lines 10–13 from the collected reports of the
// workers in idx (the full cohort in fault-free rounds). With survivors
// missing, the data weights are renormalized over idx in exactly the order
// and arithmetic of the simulation's partial-participation path
// (core.HierAdMo with WithParticipation), keeping matched cohorts
// bit-identical.
func (e *edgeNode) update(reports []transport.Message, idx []int, k int) error {
	sink := e.opts.Telemetry
	var aggStart time.Time
	if sink != nil {
		aggStart = time.Now()
	}
	numWorkers := len(e.cfg.Edges[e.l])
	weights := make([]float64, len(idx))
	if e.memb != nil {
		// Per-epoch weights: the same D(i,ℓ)/Dℓ formula as the static
		// harness, restricted to the round's live cohort.
		cw := e.memb.sched.CohortWeights(k, e.l)
		numWorkers = len(cw)
		for j, i := range idx {
			weights[j] = cw[i]
		}
	} else {
		for j, i := range idx {
			weights[j] = e.hn.WorkerWeights[e.l][i]
		}
	}
	// Renormalize only under a partial cohort: at full strength the data
	// weights are used verbatim so results stay bit-identical to the
	// in-process simulation.
	if len(idx) < numWorkers {
		var wsum float64
		for _, w := range weights {
			wsum += w
		}
		for j := range weights {
			weights[j] /= wsum
		}
	}

	ys := make([]tensor.Vector, len(idx))
	xs := make([]tensor.Vector, len(idx))
	gradSums := make([]tensor.Vector, len(idx))
	ySums := make([]tensor.Vector, len(idx))
	for j, i := range idx {
		msg := reports[i]
		ys[j] = msg.Vectors[0]
		xs[j] = msg.Vectors[1]
		gradSums[j] = msg.Vectors[2]
		ySums[j] = msg.Vectors[3]
	}

	gammaEdge := e.cfg.GammaEdge
	var cosVal float64
	if e.opts.Adaptive {
		signals := make([]tensor.Vector, len(idx))
		if e.opts.Signal == core.SignalVelocity {
			for j := range ys {
				v := ys[j].Clone()
				if err := v.Sub(e.lastY); err != nil {
					return err
				}
				signals[j] = v
			}
		} else {
			// Σy centred at the shared initialization, matching the
			// simulation's gauge (see internal/core).
			for j := range ySums {
				centered := ySums[j].Clone()
				if err := centered.AXPY(-float64(e.cfg.Tau), e.x0); err != nil {
					return err
				}
				signals[j] = centered
			}
		}
		cos, err := core.EdgeCosine(weights, gradSums, signals)
		if err != nil {
			return err
		}
		cosVal = cos
		gammaEdge = core.ClampGamma(cos, e.opts.Ceiling)
		if gammaEdge == 0 {
			sink.M().GammaZeroed.Inc()
		}
		sink.M().EdgeCosine.Set(cos)
	}
	// γℓ migration: on the first aggregation after this edge's cohort
	// changed (join, leave, or re-tiering), the momentum factor carried
	// from the old cohort is migrated per the configured policy. Zeroing —
	// the default — mirrors the paper's obtuse-angle reset: with γℓ = 0
	// line 13 collapses to the plain average, refreshing the momentum base.
	if e.memb != nil {
		if frac, changed := e.memb.sched.Overlap(k, e.l); changed {
			switch e.memb.policy {
			case membership.MigrateZero:
				gammaEdge = 0
			case membership.MigrateRescale:
				gammaEdge *= frac
			}
			e.rec.migrated(EdgeID(e.l), k*e.cfg.Tau, e.memb.policy.String(), gammaEdge)
		}
	}
	sink.M().EdgeAggregations.Inc()
	sink.M().GammaEdge.Set(gammaEdge)
	if sink.Tracing() {
		fields := []telemetry.Field{
			telemetry.Int("t", k*e.cfg.Tau),
			telemetry.Int("edge", e.l),
			telemetry.Int("participants", len(idx)),
			telemetry.Float("gamma", gammaEdge),
			telemetry.String("node", EdgeID(e.l)),
		}
		if e.opts.Adaptive {
			fields = append(fields, telemetry.Float("cos", cosVal))
		}
		sink.Emit("edge_aggregate", fields...)
	}

	if e.agg == nil {
		if err := tensor.WeightedSum(e.yMinus, weights, ys); err != nil { // line 11
			return err
		}
		if err := tensor.WeightedSum(e.yPlusNext, weights, xs); err != nil { // line 12
			return err
		}
	} else {
		// Robust lines 11–12: the rule reduces the y and x streams
		// together so a reporter rejected in one is rejected in both.
		// Deviation references: lastY is the momentum redistributed at
		// the previous boundary and xPlus still holds the previous model
		// (line 13 below overwrites it only after the reduction).
		st, err := e.agg.Aggregate(
			[]tensor.Vector{e.yMinus, e.yPlusNext},
			[]tensor.Vector{e.lastY, e.xPlus},
			weights,
			[][]tensor.Vector{ys, xs})
		if err != nil {
			return fmt.Errorf("cluster: edge %d robust %s aggregation at round %d: %w",
				e.l, e.agg.Name(), k, err)
		}
		if len(st.Rejected) > 0 || len(st.Clipped) > 0 {
			e.rec.robust(EdgeID(e.l), "edge", k*e.cfg.Tau, st, e.reporterIDs(idx, k))
		}
	}
	if err := e.xPlus.CopyFrom(e.yPlusNext); err != nil { // line 13
		return err
	}
	if err := e.xPlus.AXPY(gammaEdge, e.yPlusNext); err != nil {
		return err
	}
	if err := e.xPlus.AXPY(-gammaEdge, e.yPlus); err != nil {
		return err
	}
	if err := e.yPlus.CopyFrom(e.yPlusNext); err != nil {
		return err
	}
	if sink != nil {
		sink.M().EdgeAggSeconds.Observe(time.Since(aggStart).Seconds())
	}
	return nil
}

// reporterIDs maps the aggregation slots of idx (cohort positions) to
// worker node IDs for robust-aggregation telemetry.
func (e *edgeNode) reporterIDs(idx []int, k int) []string {
	ids := make([]string, len(idx))
	if e.memb != nil {
		cohort := e.memb.sched.Cohort(k, e.l)
		for j, i := range idx {
			if i < len(cohort) {
				ids[j] = WorkerID(cohort[i].Edge, cohort[i].Index)
			}
		}
		return ids
	}
	for j, i := range idx {
		ids[j] = WorkerID(e.l, i)
	}
	return ids
}

// cloudSync executes the edge side of lines 17–23: report to the cloud and
// adopt the cloud-aggregated momentum and model. In quorum mode a lost
// cloud update is ridden out — the edge keeps its own state for this sync —
// or, if a later sync's update arrives meanwhile, adopted from there. It
// returns the round of the update actually adopted (0 on a ride-out) so the
// caller can fast-forward past syncs the cloud already completed.
func (e *edgeNode) cloudSync(k int) (int, error) {
	var weightedLoss float64
	if e.memb != nil {
		cohort := e.memb.sched.Cohort(k, e.l)
		cw := e.memb.sched.CohortWeights(k, e.l)
		for j, ref := range cohort {
			weightedLoss += cw[j] * e.lossRef[ref]
		}
	} else {
		for i, loss := range e.lastLosses {
			weightedLoss += e.hn.WorkerWeights[e.l][i] * loss
		}
	}
	want := k * e.cfg.Tau
	report := transport.Message{
		Kind:    KindCloudReport,
		Round:   want,
		Vectors: [][]float64{e.yMinus, e.xPlus},
		Scalars: map[string]float64{ScalarLoss: weightedLoss},
	}
	if err := e.ep.Send(CloudID, report); err != nil {
		return 0, err
	}
	deadline := e.opts.now().Add(e.opts.RecvTimeout)
	for {
		wait := deadline.Sub(e.opts.now())
		if wait <= 0 {
			if e.opts.tolerant() {
				// Ride it out: keep local edge state for this sync. The
				// cloud reuses this edge's last report, and the next sync
				// reconverges both sides.
				e.rec.timeout(EdgeID(e.l))
				return 0, nil
			}
			return 0, fmt.Errorf("cloud update: %w", transport.ErrTimeout)
		}
		msg, err := recvInterruptible(e.ep, wait, e.opts)
		if err != nil {
			if errors.Is(err, transport.ErrTimeout) {
				continue
			}
			return 0, err
		}
		// Straggler reports from the aggregation this edge already closed
		// can still trickle in while it waits on the cloud.
		if msg.Kind == KindEdgeReport {
			e.rec.stale(EdgeID(e.l))
			continue
		}
		// A REASSIGN from an earlier sync can arrive out of order on a
		// delaying transport; it is validation-only, so handle it here too.
		if msg.Kind == KindReassign {
			if err := e.checkReassign(msg); err != nil {
				return 0, err
			}
			continue
		}
		if err := expectKind(msg, KindCloudUpdate); err != nil {
			return 0, err
		}
		if msg.Round < want {
			e.rec.stale(EdgeID(e.l))
			continue
		}
		if len(msg.Vectors) != 2 {
			return 0, fmt.Errorf("cluster: cloud update carries %d vectors, want 2", len(msg.Vectors))
		}
		if err := e.yMinus.CopyFrom(msg.Vectors[0]); err != nil {
			return 0, err
		}
		return msg.Round, e.xPlus.CopyFrom(msg.Vectors[1])
	}
}
