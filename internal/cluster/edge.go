package cluster

import (
	"errors"
	"fmt"
	"time"

	"hieradmo/internal/checkpoint"
	"hieradmo/internal/core"
	"hieradmo/internal/fl"
	"hieradmo/internal/telemetry"
	"hieradmo/internal/tensor"
	"hieradmo/internal/transport"
)

// edgeNode is one edge node ℓ: it collects its workers' interval reports
// every τ iterations, adapts γℓ (eq. (6)–(7)), performs the edge momentum
// and model updates (Algorithm 1 lines 10–15), and synchronizes with the
// cloud every π edge rounds (lines 17–23, edge side).
//
// Under quorum options (MinQuorum < 1) an aggregation proceeds with the
// workers that reported by the straggler deadline, renormalizing the data
// weights over the survivors exactly like the simulation's
// partial-participation path, so a matched cohort is bit-identical to
// core.WithParticipation.
type edgeNode struct {
	cfg  *fl.Config
	hn   *fl.Harness
	l    int
	ep   transport.Endpoint
	opts Options
	rec  *faultRecorder
	reg  *checkpoint.Registry

	yMinus, yPlus, yPlusNext, xPlus tensor.Vector
	// lastY is the worker momentum most recently redistributed to the
	// workers, used by the velocity adaptation signal.
	lastY tensor.Vector
	// x0 is the shared initialization, the gauge reference for the Σy
	// adaptation signal (see internal/core).
	x0 tensor.Vector
	// lastLosses holds each worker's most recently reported mini-batch
	// loss, so the cloud report stays well-defined when stragglers miss a
	// round.
	lastLosses []float64
	// pending stashes reports from workers running ahead of this edge (a
	// worker that rode out a lost update keeps training) until the edge's
	// own round catches up with them.
	pending []transport.Message
}

func newEdgeNode(cfg *fl.Config, hn *fl.Harness, l int, x0 tensor.Vector, ep transport.Endpoint, opts Options) *edgeNode {
	return &edgeNode{
		cfg:        cfg,
		hn:         hn,
		l:          l,
		ep:         ep,
		opts:       opts,
		yMinus:     x0.Clone(),
		yPlus:      x0.Clone(),
		yPlusNext:  tensor.NewVector(len(x0)),
		xPlus:      x0.Clone(),
		lastY:      x0.Clone(),
		x0:         x0.Clone(),
		lastLosses: make([]float64, len(cfg.Edges[l])),
	}
}

// initCheckpoint binds the edge's aggregation state — both momenta, the edge
// model, the velocity-signal reference, the per-worker loss cache, and the
// ride-ahead report stash — to its snapshot registry and applies the Resume
// option. It returns the aggregation round to continue after.
func (e *edgeNode) initCheckpoint() (int, error) {
	reg, err := nodeRegistry(e.cfg, e.opts, EdgeID(e.l))
	if err != nil || reg == nil {
		return 0, err
	}
	reg.Vector("yMinus", e.yMinus)
	reg.Vector("yPlus", e.yPlus)
	reg.Vector("xPlus", e.xPlus)
	reg.Vector("lastY", e.lastY)
	reg.Vector("lastLosses", e.lastLosses)
	dim := len(e.x0)
	reg.Dynamic("pending",
		func() []float64 { return encodePending(e.pending, 4, dim, parseWorkerIndex) },
		func(flat []float64) error {
			msgs, err := decodePending(flat, 4, dim, KindEdgeReport, func(i int) string { return WorkerID(e.l, i) })
			if err != nil {
				return err
			}
			e.pending = msgs
			return nil
		})
	e.reg = reg
	return restoreOrClear(reg, e.opts.Resume, e.opts.Telemetry, EdgeID(e.l))
}

// redistribute sends the round-k edge update (lines 14–15, and 22–23 after a
// cloud round) to every worker. Stragglers that missed the aggregation
// resynchronize from it, mirroring how non-participants rejoin in the
// simulation.
func (e *edgeNode) redistribute(k int) error {
	update := transport.Message{
		Kind:    KindEdgeUpdate,
		Round:   k * e.cfg.Tau,
		Vectors: [][]float64{e.yMinus, e.xPlus},
	}
	for i := range e.cfg.Edges[e.l] {
		if err := e.ep.Send(WorkerID(e.l, i), update); err != nil {
			return fmt.Errorf("cluster: edge %d redistribute to %d: %w", e.l, i, err)
		}
	}
	return nil
}

func (e *edgeNode) run() error {
	numRounds := e.cfg.T / e.cfg.Tau
	start, err := e.initCheckpoint()
	if err != nil {
		return fmt.Errorf("cluster: edge %d: %w", e.l, err)
	}
	if start > 0 {
		// The snapshot was taken before the round's redistribution, so a
		// crash can land between the two. Re-send the snapshotted round's
		// update: workers already past it discard the duplicate as stale,
		// workers still waiting on it adopt it and catch up.
		if err := e.redistribute(start); err != nil {
			return fmt.Errorf("cluster: edge %d resume: %w", e.l, err)
		}
	}
	for k := start + 1; k <= numRounds; k++ {
		if interrupted(e.opts.Interrupt) {
			return fmt.Errorf("cluster: edge %d: %w", e.l, ErrInterrupted)
		}
		reports, idx, adopted, err := e.collectReports(k)
		if err != nil {
			return fmt.Errorf("cluster: edge %d round %d: %w", e.l, k, err)
		}
		if adopted > 0 {
			// The cloud completed sync `adopted` while this edge was still
			// collecting: the adopted state supersedes this round's local
			// aggregation, so skip it (and the sync the cloud already
			// closed) and rejoin at the adopted round.
			e.rec.fastforward(EdgeID(e.l), k*e.cfg.Tau, adopted)
			k = adopted / e.cfg.Tau
		} else {
			if err := e.update(reports, idx, k); err != nil {
				return fmt.Errorf("cluster: edge %d round %d: %w", e.l, k, err)
			}
			if k%e.cfg.Pi == 0 {
				adopted, err := e.cloudSync(k)
				if err != nil {
					return fmt.Errorf("cluster: edge %d round %d: %w", e.l, k, err)
				}
				if r := adopted / e.cfg.Tau; r > k {
					// The cloud moved on without this edge (a lost update or
					// report left it a sync behind); jump to the adopted
					// round so the edge rejoins the cloud's cadence instead
					// of trailing — and having every report rejected as
					// stale — forever.
					e.rec.fastforward(EdgeID(e.l), k*e.cfg.Tau, adopted)
					k = r
				}
			}
		}
		// Settle the round's remaining state and snapshot it BEFORE the
		// redistribution: a resumed edge then re-sends the snapshotted
		// round's update, so workers can never be stranded waiting for an
		// update that died with the edge process. (lastY only feeds the next
		// round's velocity signal, so moving its refresh ahead of the sends
		// does not change any message.)
		if err := e.lastY.CopyFrom(e.yMinus); err != nil {
			return err
		}
		if err := saveSnapshot(e.reg, k, e.opts.Telemetry, EdgeID(e.l)); err != nil {
			return fmt.Errorf("cluster: edge %d round %d: %w", e.l, k, err)
		}
		if err := e.redistribute(k); err != nil {
			return err
		}
	}
	return nil
}

// collectReports gathers the round-k reports, indexed by worker position so
// aggregation order (and hence floating-point results) is deterministic
// regardless of arrival order. It returns the report slots and the sorted
// indices of the workers that reported.
//
// Strict mode (MinQuorum == 1) requires the full cohort within RecvTimeout.
// Quorum mode grants stragglers a grace period of StragglerDeadline measured
// from the moment the quorum-th report arrives, then proceeds with the
// survivors; below quorum it keeps waiting until RecvTimeout before failing.
// (Anchoring the grace at quorum attainment rather than collection start
// keeps the window from being consumed by upstream tiers' own waits.)
// Duplicate reports and stale rounds are rejected (and counted) in both
// modes. A report for a future round — a worker that rode out a lost update
// and ran ahead — is stashed for the round it belongs to in quorum mode and
// is a protocol error in strict mode (strict workers never ride out).
//
// In quorum mode a cloud update for this round or later arriving mid-collect
// means the cloud already completed a sync without this edge; the update is
// adopted on the spot and its round returned (third result) so the caller
// fast-forwards instead of timing out on a round the protocol moved past.
func (e *edgeNode) collectReports(k int) ([]transport.Message, []int, int, error) {
	numWorkers := len(e.cfg.Edges[e.l])
	want := k * e.cfg.Tau
	quorum := numWorkers
	if e.opts.tolerant() {
		quorum = quorumCount(e.opts.MinQuorum, numWorkers)
	}
	reports := make([]transport.Message, numWorkers)
	seen := make([]bool, numWorkers)
	got := 0
	// Drain reports stashed by earlier rounds: a worker that rode out a
	// lost update runs ahead of this edge, and its reports were kept for
	// the rounds they belong to.
	if len(e.pending) > 0 {
		keep := e.pending[:0]
		for _, msg := range e.pending {
			switch {
			case msg.Round > want:
				keep = append(keep, msg)
			case msg.Round < want:
				e.rec.stale(EdgeID(e.l))
			default:
				ok, err := e.admitReport(msg, want, reports, seen)
				if err != nil {
					return nil, nil, 0, err
				}
				if ok {
					got++
				}
			}
		}
		e.pending = keep
	}
	deadline := time.Now().Add(e.opts.RecvTimeout)
	if e.opts.tolerant() {
		// A silent cohort may be riding out a lost update for up to a full
		// RecvTimeout of its own; wait one straggler grace beyond that
		// horizon so their recovery reports are not missed by a hair.
		deadline = deadline.Add(e.opts.StragglerDeadline)
	}
	var stragglerBy time.Time
	for got < numWorkers {
		var wait time.Duration
		if got >= quorum {
			if stragglerBy.IsZero() {
				stragglerBy = time.Now().Add(e.opts.StragglerDeadline)
			}
			wait = time.Until(stragglerBy)
			if wait <= 0 {
				break // quorum reached, stragglers forfeited this round
			}
		} else {
			wait = time.Until(deadline)
			if wait <= 0 {
				return nil, nil, 0, fmt.Errorf("%d/%d reports (quorum %d): %w",
					got, numWorkers, quorum, transport.ErrTimeout)
			}
		}
		msg, err := recvInterruptible(e.ep, wait, e.opts.Interrupt)
		if err != nil {
			if errors.Is(err, transport.ErrTimeout) {
				continue // the loop re-evaluates quorum and deadlines
			}
			return nil, nil, 0, err
		}
		if msg.Kind == KindCloudUpdate {
			if e.opts.tolerant() && msg.Round >= want && len(msg.Vectors) == 2 {
				// The cloud completed this round's sync (or a later one)
				// without this edge — its update supersedes anything the
				// current collect could aggregate. Adopt it and tell the
				// caller to fast-forward.
				if err := e.yMinus.CopyFrom(msg.Vectors[0]); err != nil {
					return nil, nil, 0, err
				}
				if err := e.xPlus.CopyFrom(msg.Vectors[1]); err != nil {
					return nil, nil, 0, err
				}
				return nil, nil, msg.Round, nil
			}
			// A cloud update from a sync this edge already gave up on.
			e.rec.stale(EdgeID(e.l))
			continue
		}
		if err := expectKind(msg, KindEdgeReport); err != nil {
			return nil, nil, 0, err
		}
		if msg.Round < want {
			e.rec.stale(EdgeID(e.l))
			continue
		}
		if msg.Round > want {
			if e.opts.tolerant() {
				// A worker that rode out a lost update is running ahead of
				// this edge; keep its report for the round it belongs to.
				e.pending = append(e.pending, msg)
				continue
			}
			return nil, nil, 0, fmt.Errorf("cluster: report from %q for future round %d (want %d)",
				msg.From, msg.Round, want)
		}
		ok, err := e.admitReport(msg, want, reports, seen)
		if err != nil {
			return nil, nil, 0, err
		}
		if ok {
			got++
		}
	}
	idx := make([]int, 0, got)
	for i, ok := range seen {
		if ok {
			idx = append(idx, i)
		}
	}
	e.rec.missingWorkers(want, numWorkers-got)
	return reports, idx, 0, nil
}

// admitReport validates one round-want report and slots it into reports;
// shared by live receives and the ride-ahead stash. It returns whether the
// report counted as a new distinct reporter.
func (e *edgeNode) admitReport(msg transport.Message, want int, reports []transport.Message, seen []bool) (bool, error) {
	numWorkers := len(e.cfg.Edges[e.l])
	i, err := parseWorkerIndex(msg.From)
	if err != nil {
		return false, err
	}
	if i < 0 || i >= numWorkers {
		return false, fmt.Errorf("cluster: report from out-of-range worker %d", i)
	}
	if len(msg.Vectors) != 4 {
		return false, fmt.Errorf("cluster: report from %q carries %d vectors, want 4",
			msg.From, len(msg.Vectors))
	}
	if seen[i] {
		// A duplicate must not overwrite the slot twice while inflating the
		// reporter count: reject it and keep counting distinct reporters
		// only.
		e.rec.duplicate(EdgeID(e.l))
		return false, nil
	}
	seen[i] = true
	reports[i] = msg
	e.lastLosses[i] = msg.Scalars[ScalarLoss]
	return true, nil
}

// update executes Algorithm 1 lines 10–13 from the collected reports of the
// workers in idx (the full cohort in fault-free rounds). With survivors
// missing, the data weights are renormalized over idx in exactly the order
// and arithmetic of the simulation's partial-participation path
// (core.HierAdMo with WithParticipation), keeping matched cohorts
// bit-identical.
func (e *edgeNode) update(reports []transport.Message, idx []int, k int) error {
	sink := e.opts.Telemetry
	var aggStart time.Time
	if sink != nil {
		aggStart = time.Now()
	}
	numWorkers := len(e.cfg.Edges[e.l])
	weights := make([]float64, len(idx))
	for j, i := range idx {
		weights[j] = e.hn.WorkerWeights[e.l][i]
	}
	// Renormalize only under a partial cohort: at full strength the data
	// weights are used verbatim so results stay bit-identical to the
	// in-process simulation.
	if len(idx) < numWorkers {
		var wsum float64
		for _, w := range weights {
			wsum += w
		}
		for j := range weights {
			weights[j] /= wsum
		}
	}

	ys := make([]tensor.Vector, len(idx))
	xs := make([]tensor.Vector, len(idx))
	gradSums := make([]tensor.Vector, len(idx))
	ySums := make([]tensor.Vector, len(idx))
	for j, i := range idx {
		msg := reports[i]
		ys[j] = msg.Vectors[0]
		xs[j] = msg.Vectors[1]
		gradSums[j] = msg.Vectors[2]
		ySums[j] = msg.Vectors[3]
	}

	gammaEdge := e.cfg.GammaEdge
	var cosVal float64
	if e.opts.Adaptive {
		signals := make([]tensor.Vector, len(idx))
		if e.opts.Signal == core.SignalVelocity {
			for j := range ys {
				v := ys[j].Clone()
				if err := v.Sub(e.lastY); err != nil {
					return err
				}
				signals[j] = v
			}
		} else {
			// Σy centred at the shared initialization, matching the
			// simulation's gauge (see internal/core).
			for j := range ySums {
				centered := ySums[j].Clone()
				if err := centered.AXPY(-float64(e.cfg.Tau), e.x0); err != nil {
					return err
				}
				signals[j] = centered
			}
		}
		cos, err := core.EdgeCosine(weights, gradSums, signals)
		if err != nil {
			return err
		}
		cosVal = cos
		gammaEdge = core.ClampGamma(cos, e.opts.Ceiling)
		if gammaEdge == 0 {
			sink.M().GammaZeroed.Inc()
		}
		sink.M().EdgeCosine.Set(cos)
	}
	sink.M().EdgeAggregations.Inc()
	sink.M().GammaEdge.Set(gammaEdge)
	if sink.Tracing() {
		fields := []telemetry.Field{
			telemetry.Int("t", k*e.cfg.Tau),
			telemetry.Int("edge", e.l),
			telemetry.Int("participants", len(idx)),
			telemetry.Float("gamma", gammaEdge),
			telemetry.String("node", EdgeID(e.l)),
		}
		if e.opts.Adaptive {
			fields = append(fields, telemetry.Float("cos", cosVal))
		}
		sink.Emit("edge_aggregate", fields...)
	}

	if err := tensor.WeightedSum(e.yMinus, weights, ys); err != nil { // line 11
		return err
	}
	if err := tensor.WeightedSum(e.yPlusNext, weights, xs); err != nil { // line 12
		return err
	}
	if err := e.xPlus.CopyFrom(e.yPlusNext); err != nil { // line 13
		return err
	}
	if err := e.xPlus.AXPY(gammaEdge, e.yPlusNext); err != nil {
		return err
	}
	if err := e.xPlus.AXPY(-gammaEdge, e.yPlus); err != nil {
		return err
	}
	if err := e.yPlus.CopyFrom(e.yPlusNext); err != nil {
		return err
	}
	if sink != nil {
		sink.M().EdgeAggSeconds.Observe(time.Since(aggStart).Seconds())
	}
	return nil
}

// cloudSync executes the edge side of lines 17–23: report to the cloud and
// adopt the cloud-aggregated momentum and model. In quorum mode a lost
// cloud update is ridden out — the edge keeps its own state for this sync —
// or, if a later sync's update arrives meanwhile, adopted from there. It
// returns the round of the update actually adopted (0 on a ride-out) so the
// caller can fast-forward past syncs the cloud already completed.
func (e *edgeNode) cloudSync(k int) (int, error) {
	var weightedLoss float64
	for i, loss := range e.lastLosses {
		weightedLoss += e.hn.WorkerWeights[e.l][i] * loss
	}
	want := k * e.cfg.Tau
	report := transport.Message{
		Kind:    KindCloudReport,
		Round:   want,
		Vectors: [][]float64{e.yMinus, e.xPlus},
		Scalars: map[string]float64{ScalarLoss: weightedLoss},
	}
	if err := e.ep.Send(CloudID, report); err != nil {
		return 0, err
	}
	deadline := time.Now().Add(e.opts.RecvTimeout)
	for {
		wait := time.Until(deadline)
		if wait <= 0 {
			if e.opts.tolerant() {
				// Ride it out: keep local edge state for this sync. The
				// cloud reuses this edge's last report, and the next sync
				// reconverges both sides.
				e.rec.timeout(EdgeID(e.l))
				return 0, nil
			}
			return 0, fmt.Errorf("cloud update: %w", transport.ErrTimeout)
		}
		msg, err := recvInterruptible(e.ep, wait, e.opts.Interrupt)
		if err != nil {
			if errors.Is(err, transport.ErrTimeout) {
				continue
			}
			return 0, err
		}
		// Straggler reports from the aggregation this edge already closed
		// can still trickle in while it waits on the cloud.
		if msg.Kind == KindEdgeReport {
			e.rec.stale(EdgeID(e.l))
			continue
		}
		if err := expectKind(msg, KindCloudUpdate); err != nil {
			return 0, err
		}
		if msg.Round < want {
			e.rec.stale(EdgeID(e.l))
			continue
		}
		if len(msg.Vectors) != 2 {
			return 0, fmt.Errorf("cluster: cloud update carries %d vectors, want 2", len(msg.Vectors))
		}
		if err := e.yMinus.CopyFrom(msg.Vectors[0]); err != nil {
			return 0, err
		}
		return msg.Round, e.xPlus.CopyFrom(msg.Vectors[1])
	}
}
