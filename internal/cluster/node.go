package cluster

import (
	"fmt"

	"hieradmo/internal/fl"
	"hieradmo/internal/transport"
)

// The functions below are the per-role entry points for multi-process
// deployments (cmd/flnode): every process builds the identical fl.Config
// deterministically from the shared seed (synthetic data regenerates
// locally, so no training data crosses the wire), opens its own transport
// endpoint, and runs exactly one role. They execute the same node
// implementations Run wires up in-process, so a multi-process run is
// bit-identical to the simulation too.

// RunWorkerNode executes worker {i,ℓ} against ep until the configured T.
func RunWorkerNode(cfg *fl.Config, l, i int, ep transport.Endpoint, opts Options) error {
	opts = opts.withDefaults()
	if opts.Telemetry == nil {
		opts.Telemetry = cfg.Telemetry
	}
	if err := opts.validate(); err != nil {
		return err
	}
	hn, err := fl.NewHarness(cfg)
	if err != nil {
		return err
	}
	if l < 0 || l >= cfg.NumEdges() || i < 0 || i >= len(cfg.Edges[l]) {
		return fmt.Errorf("cluster: no worker {%d,%d} in topology", i, l)
	}
	memb, err := newMembership(*cfg, opts)
	if err != nil {
		return err
	}
	w := newWorkerNode(cfg, hn, l, i, hn.InitParams(), ep, opts)
	w.rec = newFaultRecorder(opts.Telemetry)
	w.memb = memb
	return w.run()
}

// RunEdgeNode executes edge ℓ against ep.
func RunEdgeNode(cfg *fl.Config, l int, ep transport.Endpoint, opts Options) error {
	opts = opts.withDefaults()
	if opts.Telemetry == nil {
		opts.Telemetry = cfg.Telemetry
	}
	if err := opts.validate(); err != nil {
		return err
	}
	hn, err := fl.NewHarness(cfg)
	if err != nil {
		return err
	}
	if l < 0 || l >= cfg.NumEdges() {
		return fmt.Errorf("cluster: no edge %d in topology", l)
	}
	memb, err := newMembership(*cfg, opts)
	if err != nil {
		return err
	}
	e := newEdgeNode(cfg, hn, l, hn.InitParams(), ep, opts)
	e.rec = newFaultRecorder(opts.Telemetry)
	e.memb = memb
	return e.run()
}

// RunCloudNode executes the cloud against ep and returns the run result.
// The result's FaultReport reflects the cloud's own observations (missing
// or substituted edge reports); worker-tier faults live on the edges in a
// multi-process deployment.
func RunCloudNode(cfg *fl.Config, ep transport.Endpoint, opts Options) (*fl.Result, error) {
	opts = opts.withDefaults()
	if opts.Telemetry == nil {
		opts.Telemetry = cfg.Telemetry
	}
	if err := opts.validate(); err != nil {
		return nil, err
	}
	hn, err := fl.NewHarness(cfg)
	if err != nil {
		return nil, err
	}
	memb, err := newMembership(*cfg, opts)
	if err != nil {
		return nil, err
	}
	c := newCloudNode(cfg, hn, hn.InitParams(), ep, opts)
	c.rec = newFaultRecorder(opts.Telemetry)
	c.memb = memb
	res, err := c.run()
	if err != nil {
		return nil, err
	}
	res.FaultReport = c.rec.report()
	res.Membership = memb.flReport()
	// In a multi-process deployment the cloud only sees its own tier:
	// edge-tier rejections and worker-side injections live on those
	// processes' sinks.
	res.AttackReport = c.rec.attackReport(opts)
	return res, nil
}
