//go:build !race

package cluster

// deadlineScale is 1 in normal builds; see race_on_test.go for why race
// builds widen the timing windows.
const deadlineScale = 1
