package cluster

import (
	"errors"
	"math"
	"testing"
	"time"

	"hieradmo/internal/core"
	"hieradmo/internal/dataset"
	"hieradmo/internal/fl"
	"hieradmo/internal/model"
	"hieradmo/internal/transport"
)

func buildConfig(t *testing.T, seed uint64, classesPerWorker int) *fl.Config {
	t.Helper()
	genCfg := dataset.GenConfig{
		Name:          "toy",
		Shape:         dataset.Shape{C: 1, H: 5, W: 5},
		NumClasses:    4,
		TemplateScale: 1.0,
		NoiseStd:      0.6,
		SmoothPasses:  1,
	}
	g, err := dataset.NewGenerator(genCfg, seed)
	if err != nil {
		t.Fatal(err)
	}
	train, test := g.TrainTest(320, 80, seed+1)
	var shards []*dataset.Dataset
	if classesPerWorker > 0 {
		shards, err = dataset.PartitionClasses(train, 4, classesPerWorker, seed+2)
	} else {
		shards, err = dataset.PartitionIID(train, 4, seed+2)
	}
	if err != nil {
		t.Fatal(err)
	}
	hier, err := dataset.Hierarchy(shards, []int{2, 2})
	if err != nil {
		t.Fatal(err)
	}
	m, err := model.NewLogisticRegression(genCfg.Shape, genCfg.NumClasses)
	if err != nil {
		t.Fatal(err)
	}
	return &fl.Config{
		Model: m, Edges: hier, Test: test,
		Eta: 0.05, Gamma: 0.5, GammaEdge: 0.5,
		Tau: 2, Pi: 2, T: 24, BatchSize: 8, Seed: seed,
		EvalEvery: 8,
	}
}

func TestProtocolIDs(t *testing.T) {
	if EdgeID(3) != "edge-3" || WorkerID(2, 5) != "worker-2-5" {
		t.Error("ID formats wrong")
	}
	i, err := parseWorkerIndex("worker-1-7")
	if err != nil || i != 7 {
		t.Errorf("parseWorkerIndex = %d, %v", i, err)
	}
	if _, err := parseWorkerIndex("bogus"); err == nil {
		t.Error("accepted malformed worker id")
	}
	if _, err := parseWorkerIndex("worker-a-b"); err == nil {
		t.Error("accepted non-numeric worker id")
	}
	l, err := parseEdgeIndex("edge-4")
	if err != nil || l != 4 {
		t.Errorf("parseEdgeIndex = %d, %v", l, err)
	}
	if _, err := parseEdgeIndex("edge-x"); err == nil {
		t.Error("accepted non-numeric edge id")
	}
	if _, err := parseEdgeIndex("worker-1-1"); err == nil {
		t.Error("accepted worker id as edge id")
	}
}

func TestExpectKind(t *testing.T) {
	msg := transport.Message{Kind: "a", From: "x"}
	if err := expectKind(msg, "a"); err != nil {
		t.Error(err)
	}
	if err := expectKind(msg, "b"); err == nil {
		t.Error("kind mismatch accepted")
	}
}

// TestClusterMatchesSimulation is the load-bearing distributed-correctness
// test: a cluster run over the in-memory transport must produce exactly the
// same final model quality as the in-process reference simulation, because
// both perform identical floating-point operations in identical order.
func TestClusterMatchesSimulation(t *testing.T) {
	for _, adaptive := range []bool{true, false} {
		name := "adaptive"
		if !adaptive {
			name = "reduced"
		}
		t.Run(name, func(t *testing.T) {
			cfg := buildConfig(t, 31, 2)

			var ref *fl.Result
			var err error
			if adaptive {
				ref, err = core.New().Run(cfg)
			} else {
				ref, err = core.NewReduced().Run(cfg)
			}
			if err != nil {
				t.Fatal(err)
			}

			res, err := Run(cfg, transport.NewMemoryNetwork(), Options{Adaptive: adaptive})
			if err != nil {
				t.Fatal(err)
			}
			if res.FinalAcc != ref.FinalAcc {
				t.Errorf("cluster FinalAcc %v != simulation %v (models must be bit-identical)",
					res.FinalAcc, ref.FinalAcc)
			}
			// The loss reduction tree differs (the cloud sums edge-weighted
			// partial sums, the simulation sums a flat weighted series), so
			// the losses agree only to rounding.
			if math.Abs(res.FinalLoss-ref.FinalLoss) > 1e-12*(1+math.Abs(ref.FinalLoss)) {
				t.Errorf("cluster FinalLoss %v != simulation %v", res.FinalLoss, ref.FinalLoss)
			}
		})
	}
}

func TestClusterOverTCPMatchesMemory(t *testing.T) {
	cfg := buildConfig(t, 37, 0)
	mem, err := Run(cfg, transport.NewMemoryNetwork(), Options{Adaptive: true})
	if err != nil {
		t.Fatal(err)
	}
	tcp, err := Run(cfg, transport.NewTCPNetwork(), Options{Adaptive: true})
	if err != nil {
		t.Fatal(err)
	}
	if mem.FinalAcc != tcp.FinalAcc || mem.FinalLoss != tcp.FinalLoss {
		t.Errorf("TCP run (%v/%v) differs from memory run (%v/%v)",
			tcp.FinalAcc, tcp.FinalLoss, mem.FinalAcc, mem.FinalLoss)
	}
}

func TestClusterRobustToDeliveryDelays(t *testing.T) {
	// Random per-message delays reorder arrivals across senders; the
	// index-addressed aggregation must keep results identical.
	cfg := buildConfig(t, 41, 2)
	ref, err := Run(cfg, transport.NewMemoryNetwork(), Options{Adaptive: true})
	if err != nil {
		t.Fatal(err)
	}
	delayed, err := Run(cfg,
		transport.NewMemoryNetwork(transport.WithDelay(3*time.Millisecond, 7)),
		Options{Adaptive: true})
	if err != nil {
		t.Fatal(err)
	}
	if ref.FinalAcc != delayed.FinalAcc {
		t.Errorf("delayed run %v differs from reference %v", delayed.FinalAcc, ref.FinalAcc)
	}
}

func TestClusterMessageLossSurfacesAsTimeout(t *testing.T) {
	// With messages being dropped, the synchronous protocol must fail fast
	// with a timeout instead of hanging.
	cfg := buildConfig(t, 43, 0)
	cfg.T = 8
	_, err := Run(cfg,
		transport.NewMemoryNetwork(transport.WithDropRate(1.0, 11)),
		Options{Adaptive: true, RecvTimeout: 100 * time.Millisecond})
	if err == nil {
		t.Fatal("run with total message loss succeeded")
	}
	if !errors.Is(err, transport.ErrTimeout) {
		t.Errorf("err = %v, want wrapped ErrTimeout", err)
	}
}

func TestClusterRejectsInvalidConfig(t *testing.T) {
	cfg := buildConfig(t, 47, 0)
	cfg.T = 7 // not a multiple of tau*pi
	if _, err := Run(cfg, transport.NewMemoryNetwork(), Options{Adaptive: true}); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestClusterCurveRecorded(t *testing.T) {
	cfg := buildConfig(t, 53, 0)
	res, err := Run(cfg, transport.NewMemoryNetwork(), Options{Adaptive: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Curve) == 0 {
		t.Fatal("no curve points")
	}
	last := res.Curve[len(res.Curve)-1]
	if last.Iter != cfg.T {
		t.Errorf("last point at %d, want %d", last.Iter, cfg.T)
	}
	if res.Algorithm != "HierAdMo/cluster" {
		t.Errorf("algorithm = %q", res.Algorithm)
	}
	red, err := Run(cfg, transport.NewMemoryNetwork(), Options{Adaptive: false})
	if err != nil {
		t.Fatal(err)
	}
	if red.Algorithm != "HierAdMo-R/cluster" {
		t.Errorf("reduced algorithm = %q", red.Algorithm)
	}
}

func TestClusterVelocitySignal(t *testing.T) {
	cfg := buildConfig(t, 59, 2)
	refCore := core.New(core.WithAdaptSignal(core.SignalVelocity))
	ref, err := refCore.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(cfg, transport.NewMemoryNetwork(),
		Options{Adaptive: true, Signal: core.SignalVelocity})
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalAcc != ref.FinalAcc {
		t.Errorf("velocity cluster %v != simulation %v", res.FinalAcc, ref.FinalAcc)
	}
}

func TestClusterPartialLossAlsoTimesOut(t *testing.T) {
	// Even 50% message loss must eventually surface as a timeout error
	// rather than a hang or a silent wrong result.
	cfg := buildConfig(t, 113, 0)
	cfg.T = 8
	_, err := Run(cfg,
		transport.NewMemoryNetwork(transport.WithDropRate(0.5, 17)),
		Options{Adaptive: true, RecvTimeout: 150 * time.Millisecond})
	if err == nil {
		t.Fatal("run with 50% loss succeeded")
	}
	if !errors.Is(err, transport.ErrTimeout) {
		t.Errorf("err = %v, want wrapped ErrTimeout", err)
	}
}

// TestClusterMatchesSimulationCNN repeats the bit-equivalence check with a
// He-initialized CNN, which exercises the x⁰-centred adaptation signal (the
// zero-initialized logistic model cannot distinguish it from raw Σy).
func TestClusterMatchesSimulationCNN(t *testing.T) {
	cfg := buildConfig(t, 131, 2)
	m, err := model.NewCNN(dataset.Shape{C: 1, H: 5, W: 5}, 4)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Model = m
	ref, err := core.New().Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(cfg, transport.NewMemoryNetwork(), Options{Adaptive: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalAcc != ref.FinalAcc {
		t.Errorf("CNN cluster %v != simulation %v", res.FinalAcc, ref.FinalAcc)
	}
}
