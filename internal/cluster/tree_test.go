package cluster

import (
	"bytes"
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"hieradmo/internal/baseline"
	"hieradmo/internal/checkpoint"
	"hieradmo/internal/dataset"
	"hieradmo/internal/fl"
	"hieradmo/internal/membership"
	"hieradmo/internal/model"
	"hieradmo/internal/robust"
	"hieradmo/internal/telemetry"
	"hieradmo/internal/topology"
	"hieradmo/internal/transport"
)

// treeTopo parses a topology spec or fails the test.
func treeTopo(t *testing.T, spec string) *topology.Topology {
	t.Helper()
	topo, err := topology.Parse(spec)
	if err != nil {
		t.Fatalf("Parse(%q): %v", spec, err)
	}
	return topo
}

// buildFlatConfig is a leaf-count-parametric config over edge shape `edges`,
// otherwise identical to buildConfig: same generator, partitions, model, and
// hyperparameters, so tree and legacy runs share every input bit.
func buildFlatConfig(t *testing.T, seed uint64, edges []int) *fl.Config {
	t.Helper()
	genCfg := dataset.GenConfig{
		Name:          "toy",
		Shape:         dataset.Shape{C: 1, H: 5, W: 5},
		NumClasses:    4,
		TemplateScale: 1.0,
		NoiseStd:      0.6,
		SmoothPasses:  1,
	}
	g, err := dataset.NewGenerator(genCfg, seed)
	if err != nil {
		t.Fatal(err)
	}
	train, test := g.TrainTest(320, 80, seed+1)
	n := 0
	for _, c := range edges {
		n += c
	}
	shards, err := dataset.PartitionIID(train, n, seed+2)
	if err != nil {
		t.Fatal(err)
	}
	hier, err := dataset.Hierarchy(shards, edges)
	if err != nil {
		t.Fatal(err)
	}
	m, err := model.NewLogisticRegression(genCfg.Shape, genCfg.NumClasses)
	if err != nil {
		t.Fatal(err)
	}
	return &fl.Config{
		Model: m, Edges: hier, Test: test,
		Eta: 0.05, Gamma: 0.5, GammaEdge: 0.5,
		Tau: 2, Pi: 2, T: 24, BatchSize: 8, Seed: seed,
		EvalEvery: 8,
	}
}

// TestTreeMatchesLegacy3Tier is the refactor's central regression: a tree
// whose shape matches the config's cloud/edge/worker triple must reproduce
// the role-specific runtime bit for bit — same final model, same loss, same
// curve — in both the adaptive and reduced modes. The tree engine performs
// the exact arithmetic the specialized cloud/edge/worker nodes do, so any
// divergence is an op-order bug.
func TestTreeMatchesLegacy3Tier(t *testing.T) {
	for _, adaptive := range []bool{true, false} {
		name := "adaptive"
		if !adaptive {
			name = "reduced"
		}
		t.Run(name, func(t *testing.T) {
			cfg := buildConfig(t, 31, 2)
			ref, err := Run(cfg, transport.NewMemoryNetwork(), Options{Adaptive: adaptive})
			if err != nil {
				t.Fatal(err)
			}
			res, err := Run(cfg, transport.NewMemoryNetwork(), Options{
				Adaptive: adaptive,
				Topology: treeTopo(t, "cloud:tau=4/edge*2:tau=2/worker*2"),
			})
			if err != nil {
				t.Fatal(err)
			}
			sameResult(t, "tree-3tier", res, ref)
			if res.Algorithm != "HierAdMo/tree" && adaptive {
				t.Errorf("algorithm = %q", res.Algorithm)
			}
		})
	}
}

// TestTreeMatchesLegacyWorkerCounts sweeps the cohort sizes of the golden
// suite (1, 2, and 8 workers) and, at the widest shape, the TCP transport:
// matched tree and legacy runs must agree bitwise at every scale.
func TestTreeMatchesLegacyWorkerCounts(t *testing.T) {
	cases := []struct {
		name  string
		edges []int
		spec  string
	}{
		{"workers=1", []int{1}, "cloud:tau=4/edge:tau=2/worker"},
		{"workers=2", []int{2}, "cloud:tau=4/edge:tau=2/worker*2"},
		{"workers=8", []int{4, 4}, "cloud:tau=4/edge*2:tau=2/worker*4"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := buildFlatConfig(t, 67, tc.edges)
			ref, err := Run(cfg, transport.NewMemoryNetwork(), Options{Adaptive: true})
			if err != nil {
				t.Fatal(err)
			}
			res, err := Run(cfg, transport.NewMemoryNetwork(), Options{
				Adaptive: true,
				Topology: treeTopo(t, tc.spec),
			})
			if err != nil {
				t.Fatal(err)
			}
			sameResult(t, tc.name, res, ref)
			if len(tc.edges) > 1 {
				tcp, err := Run(cfg, transport.NewTCPNetwork(), Options{
					Adaptive: true,
					Topology: treeTopo(t, tc.spec),
				})
				if err != nil {
					t.Fatal(err)
				}
				sameResult(t, tc.name+"/tcp", tcp, ref)
			}
		})
	}
}

// TestTreeDepth2MatchesFedNAG pins the two-level degenerate case to the flat
// momentum baseline: a cloud/worker tree with γ=0 at the root and no
// adaptation is exactly FedNAG — every worker runs NAG, the root plainly
// averages [y, x] every τ·π — so the distributed tree must land on the flat
// in-process baseline bit for bit. (A single-edge config keeps the global
// weights bitwise identical: EdgeWeights[0] is exactly 1.0.)
func TestTreeDepth2MatchesFedNAG(t *testing.T) {
	cfg := buildFlatConfig(t, 71, []int{4})
	cfg.EvalEvery = 0 // FedNAG's curve samples between syncs; compare finals
	ref, err := baseline.NewFedNAG().Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(cfg, transport.NewMemoryNetwork(), Options{
		Topology: treeTopo(t, "cloud:tau=4,gamma=0/worker*4"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalAcc != ref.FinalAcc {
		t.Errorf("depth-2 tree FinalAcc %v != FedNAG %v (must be bit-identical)",
			res.FinalAcc, ref.FinalAcc)
	}
	if res.FinalLoss != ref.FinalLoss {
		t.Errorf("depth-2 tree FinalLoss %v != FedNAG %v", res.FinalLoss, ref.FinalLoss)
	}
}

// depth4Spec is the 4-level shape of the determinism and resume tests:
// per-tier periods 8/4/2 with a robust rule at the region level and the
// adaptive leaf-parent below it.
const depth4Spec = "cloud:tau=8/region*2:tau=4,agg=median/edge*2:tau=2/worker*2"

// TestTreeDepth4Deterministic is the acceptance determinism check: a 4-level
// tree with per-tier τ and mixed aggregators must produce bit-identical
// results across reruns, worker pool sizes 1/2/8, and the memory and TCP
// transports.
func TestTreeDepth4Deterministic(t *testing.T) {
	cfg := buildFlatConfig(t, 73, []int{4, 4})
	run := func(net Network) (*fl.Result, error) {
		return Run(cfg, net, Options{
			Adaptive: true,
			Topology: treeTopo(t, depth4Spec),
		})
	}
	ref, err := run(transport.NewMemoryNetwork())
	if err != nil {
		t.Fatal(err)
	}
	if ref.AttackReport == nil || len(ref.AttackReport.TierAggregators) != 3 {
		t.Fatalf("robust-level run carries attack report %+v", ref.AttackReport)
	}
	rerun, err := run(transport.NewMemoryNetwork())
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "rerun", rerun, ref)
	for _, workers := range []int{1, 2, 8} {
		cfg.Workers = workers
		res, err := run(transport.NewMemoryNetwork())
		if err != nil {
			t.Fatal(err)
		}
		sameResult(t, fmt.Sprintf("workers=%d", workers), res, ref)
	}
	cfg.Workers = 0
	tcp, err := run(transport.NewTCPNetwork())
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "tcp", tcp, ref)
}

// TestTreeDepth4InterruptResume checks crash recovery through the tree
// engine: an interrupted 4-level run leaves resumable snapshots, a resume
// under a different topology is refused (the spec is part of the
// fingerprint), and a resumed run finishes bit-identical to a
// never-interrupted one.
func TestTreeDepth4InterruptResume(t *testing.T) {
	cfg := buildFlatConfig(t, 79, []int{4, 4})
	cfg.T = 48
	dir := t.TempDir()
	opts := Options{
		Adaptive:      true,
		Topology:      treeTopo(t, depth4Spec),
		CheckpointDir: dir,
	}

	ref, err := Run(cfg, transport.NewMemoryNetwork(), Options{
		Adaptive: true,
		Topology: treeTopo(t, depth4Spec),
	})
	if err != nil {
		t.Fatal(err)
	}

	// Interrupt as soon as any node has written a snapshot; sender-side
	// delays stretch the run so the shutdown lands mid-protocol.
	interrupt := make(chan struct{})
	stop := make(chan struct{})
	var watch sync.WaitGroup
	watch.Add(1)
	go func() {
		defer watch.Done()
		for {
			select {
			case <-stop:
				return
			case <-time.After(2 * time.Millisecond):
			}
			if files, _ := filepath.Glob(filepath.Join(dir, "*.ckpt")); len(files) > 0 {
				close(interrupt)
				return
			}
		}
	}()
	iopts := opts
	iopts.Interrupt = interrupt
	net := transport.NewFaultyNetwork(transport.NewMemoryNetwork(),
		transport.FaultPlan{Seed: 4, MaxDelay: 2 * time.Millisecond})
	_, err = Run(cfg, net, iopts)
	close(stop)
	watch.Wait()
	if err == nil {
		t.Fatal("interrupted run succeeded; the shutdown request was ignored")
	}
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("interrupted run failed with %v, want wrapped ErrInterrupted", err)
	}
	if files, _ := filepath.Glob(filepath.Join(dir, "*.ckpt")); len(files) == 0 {
		t.Fatal("interrupted run left no snapshots behind")
	}

	ropts := opts
	ropts.Resume = true
	res, err := Run(cfg, transport.NewMemoryNetwork(), ropts)
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "resumed", res, ref)

	// A different tree shape is a different trajectory: resuming under it
	// must be refused via the fingerprint, not silently blended. Checked
	// against the finished run's snapshots so every node holds one — after
	// the interrupt alone, a subtree whose nodes had not yet saved could
	// legally train a round before noticing its peers are gone.
	wrong := opts
	wrong.Resume = true
	wrong.Topology = treeTopo(t, "cloud:tau=8/region*2:tau=4/edge*2:tau=2/worker*2")
	wrong.RecvTimeout = 500 * time.Millisecond
	if _, err := Run(cfg, transport.NewMemoryNetwork(), wrong); !errors.Is(err, checkpoint.ErrMismatch) {
		t.Fatalf("resume under changed topology = %v, want wrapped checkpoint.ErrMismatch", err)
	}
}

// robustTierEvents canonicalizes a trace's robust_reject/robust_clip lines
// into per-tier-index counts, for cross-checking against the AttackReport.
func robustTierEvents(t *testing.T, buf *bytes.Buffer, ev string) map[int]int {
	t.Helper()
	events, err := telemetry.ReadTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[int]int)
	for _, e := range events {
		if e.Ev != ev {
			continue
		}
		ti, ok := e.Fields["tier_index"].(float64)
		if !ok {
			t.Fatalf("%s event without tier_index: %+v", ev, e.Fields)
		}
		out[int(ti)]++
	}
	return out
}

// TestTreeSignFlipPerTierAttack is the per-level composition property test:
// a depth-4 tree defends with cosine filtering where the attack enters (the
// leaf-parent) and the median one level up, under a persistent sign-flip
// plan. The run must reject adversarial reports, attribute every rejection
// to the right tier index in both the AttackReport and the trace events,
// and stay deterministic across reruns.
func TestTreeSignFlipPerTierAttack(t *testing.T) {
	cfg := buildFlatConfig(t, 83, []int{4, 4})
	spec := "cloud:tau=8/region*2:tau=4,agg=median/edge*2:tau=2,agg=cosine(0)/worker*2"
	attacked := func() (*fl.Result, map[int]int, map[int]int, error) {
		var buf bytes.Buffer
		tr := telemetry.NewTracer(&buf)
		res, err := Run(cfg, transport.NewMemoryNetwork(), Options{
			Adaptive:   true,
			Telemetry:  telemetry.New(nil, tr),
			Topology:   treeTopo(t, spec),
			AttackPlan: byzPlan(t, "signflip:worker-1@1,signflip:worker-5@1"),
		})
		if err != nil {
			return nil, nil, nil, err
		}
		if err := tr.Flush(); err != nil {
			return nil, nil, nil, err
		}
		return res, robustTierEvents(t, &buf, "robust_reject"), robustTierEvents(t, &buf, "robust_clip"), nil
	}

	ref, rejects, clips, err := attacked()
	if err != nil {
		t.Fatal(err)
	}
	rep := ref.AttackReport
	if rep == nil {
		t.Fatal("attacked run returned no attack report")
	}
	if got := rep.Injected["signflip"]; got == 0 {
		t.Fatal("no sign-flips injected")
	}
	if rep.TotalRejected() == 0 {
		t.Fatal("sign-flip attack survived both robust tiers unrejected")
	}
	if rep.RejectedEdge != 0 || rep.RejectedCloud != 0 {
		t.Errorf("tree run used 3-tier attribution: edge=%d cloud=%d",
			rep.RejectedEdge, rep.RejectedCloud)
	}
	// The attack enters at the leaf-parent (tier 2); any rejection there or
	// at the region (tier 1) must carry its tier index. The root (tier 0)
	// averages plainly and must never reject.
	for tier := range rep.RejectedByTier {
		if tier != 1 && tier != 2 {
			t.Errorf("rejection attributed to tier %d, want 1 or 2", tier)
		}
	}
	if rep.RejectedByTier[2] == 0 {
		t.Error("cosine filter at the leaf-parent rejected nothing")
	}
	wantAggs := []string{"mean", "median", "cosine(0)"}
	if len(rep.TierAggregators) != len(wantAggs) {
		t.Fatalf("TierAggregators = %v, want %v", rep.TierAggregators, wantAggs)
	}
	for i, want := range wantAggs {
		if rep.TierAggregators[i] != want {
			t.Errorf("TierAggregators[%d] = %q, want %q", i, rep.TierAggregators[i], want)
		}
	}
	// Trace events are the live view of the same facts: the per-tier totals
	// must match the report exactly in both directions.
	for tier, n := range rep.RejectedByTier {
		if rejects[tier] != n {
			t.Errorf("tier %d: %d robust_reject events, report says %d", tier, rejects[tier], n)
		}
	}
	for tier, n := range rejects {
		if rep.RejectedByTier[tier] != n {
			t.Errorf("tier %d: report misses %d traced rejections", tier, n)
		}
	}
	for tier, n := range rep.ClippedByTier {
		if clips[tier] != n {
			t.Errorf("tier %d: %d robust_clip events, report says %d", tier, clips[tier], n)
		}
	}

	rerun, rej2, _, err := attacked()
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "rerun", rerun, ref)
	for tier, n := range rejects {
		if rej2[tier] != n {
			t.Errorf("rerun tier %d: %d rejections, reference %d", tier, rej2[tier], n)
		}
	}
}

// TestTreeAcrossProcessEntryPoints replays a tree run through RunTreeNode —
// every node its own entry-point call, config, and harness over a shared
// memory network — and checks bit-equality with the single-process Run.
func TestTreeAcrossProcessEntryPoints(t *testing.T) {
	cfg := buildConfig(t, 89, 2)
	topo := treeTopo(t, "cloud:tau=4/edge*2:tau=2/worker*2")
	opts := Options{Adaptive: true, Topology: topo}
	ref, err := Run(cfg, transport.NewMemoryNetwork(), opts)
	if err != nil {
		t.Fatal(err)
	}

	net := transport.NewMemoryNetwork()
	defer net.Close()
	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		errs    []error
		result  *fl.Result
		rootErr error
	)
	for i := 0; i < topo.Depth(); i++ {
		for j := 0; j < topo.Width(i); j++ {
			ep, err := net.Endpoint(topo.NodeID(i, j))
			if err != nil {
				t.Fatal(err)
			}
			wg.Add(1)
			go func(i, j int, ep transport.Endpoint) {
				defer wg.Done()
				res, err := RunTreeNode(cfg, i, j, ep, opts)
				mu.Lock()
				defer mu.Unlock()
				if i == 0 {
					result, rootErr = res, err
				} else if err != nil {
					errs = append(errs, err)
				}
			}(i, j, ep)
		}
	}
	wg.Wait()
	if rootErr != nil || len(errs) > 0 {
		t.Fatalf("per-node run failed: root=%v others=%v", rootErr, errs)
	}
	if result == nil {
		t.Fatal("root produced no result")
	}
	sameResult(t, "per-node", result, ref)
}

// TestTreeOptionValidation pins the composition rules: tree runs reject the
// 3-tier robust options and dynamic membership, and a topology must match
// the config's leaf count and horizon.
func TestTreeOptionValidation(t *testing.T) {
	cfg := buildConfig(t, 97, 0)
	topo := treeTopo(t, "cloud:tau=4/edge*2:tau=2/worker*2")
	cases := []struct {
		name string
		opts Options
	}{
		{"churn", Options{Topology: topo, ChurnPlan: &membership.Plan{
			Events: []membership.Event{{Round: 2, Action: membership.ActionLeave, Worker: membership.Ref{Edge: 0, Index: 0}}},
		}}},
		{"retier", Options{Topology: topo, RetierEvery: 1}},
		{"edge-agg", Options{Topology: topo, EdgeAggregator: robust.Spec{Kind: robust.Median}}},
		{"cloud-agg", Options{Topology: topo, CloudAggregator: robust.Spec{Kind: robust.Median}}},
	}
	for _, tc := range cases {
		if _, err := Run(cfg, transport.NewMemoryNetwork(), tc.opts); err == nil {
			t.Errorf("%s: invalid combination accepted", tc.name)
		}
	}
	// Leaf-count mismatch: 8 leaves for a 4-worker config.
	if _, err := Run(cfg, transport.NewMemoryNetwork(), Options{
		Topology: treeTopo(t, "cloud:tau=4/edge*2:tau=2/worker*4"),
	}); err == nil {
		t.Error("leaf-count mismatch accepted")
	}
	// Horizon misalignment: T=24 is not a multiple of the root period 16.
	if _, err := Run(cfg, transport.NewMemoryNetwork(), Options{
		Topology: treeTopo(t, "cloud:tau=16/edge*2:tau=2/worker*2"),
	}); !errors.Is(err, topology.ErrMisaligned) {
		t.Errorf("misaligned horizon = %v, want ErrMisaligned", err)
	}
}
