package cluster

import (
	"errors"
	"fmt"
	"time"

	"hieradmo/internal/fl"
	"hieradmo/internal/model"
	"hieradmo/internal/tensor"
	"hieradmo/internal/transport"
)

// cloudNode is the cloud server: every τπ iterations it collects the edges'
// aggregated worker momenta and edge models, averages them (Algorithm 1
// lines 18–19), redistributes the result (lines 20–21), records the
// accuracy curve, and produces the final Result.
//
// In quorum mode a missing edge report is tolerated for one sync by reusing
// that edge's last reported state (its initialization before the first
// report); an edge missing two consecutive syncs, or fresh reports falling
// below ⌈MinQuorum·L⌉, fails the run fast.
type cloudNode struct {
	cfg  *fl.Config
	hn   *fl.Harness
	ep   transport.Endpoint
	opts Options
	rec  *faultRecorder

	cloudX, cloudY tensor.Vector
	// lastY/lastX hold each edge's most recent [y_ℓ−, x_ℓ+] report,
	// seeded with x⁰ so a first-sync straggler is still well-defined.
	lastY, lastX []tensor.Vector
	// lastLoss is each edge's most recently reported weighted loss.
	lastLoss []float64
	// missStreak counts consecutive syncs each edge has missed.
	missStreak []int
	// pending stashes reports from edges running ahead of the cloud (an
	// edge that rode out a lost cloud update keeps going) until the cloud's
	// own sync catches up with them.
	pending []transport.Message
}

func newCloudNode(cfg *fl.Config, hn *fl.Harness, x0 tensor.Vector, ep transport.Endpoint, opts Options) *cloudNode {
	numEdges := cfg.NumEdges()
	c := &cloudNode{
		cfg:        cfg,
		hn:         hn,
		ep:         ep,
		opts:       opts,
		cloudX:     x0.Clone(),
		cloudY:     x0.Clone(),
		lastY:      make([]tensor.Vector, numEdges),
		lastX:      make([]tensor.Vector, numEdges),
		lastLoss:   make([]float64, numEdges),
		missStreak: make([]int, numEdges),
	}
	for l := 0; l < numEdges; l++ {
		c.lastY[l] = x0.Clone()
		c.lastX[l] = x0.Clone()
	}
	return c
}

func (c *cloudNode) run() (*fl.Result, error) {
	name := "HierAdMo/cluster"
	if !c.opts.Adaptive {
		name = "HierAdMo-R/cluster"
	}
	res := c.hn.NewResult(name)
	numEdges := c.cfg.NumEdges()
	numRounds := c.cfg.T / (c.cfg.Tau * c.cfg.Pi)
	var weightedLoss float64

	for p := 1; p <= numRounds; p++ {
		if err := c.collectReports(p); err != nil {
			return nil, fmt.Errorf("cluster: cloud round %d: %w", p, err)
		}
		if err := c.hn.CloudAverage(c.cloudY, c.lastY); err != nil { // line 18
			return nil, err
		}
		if err := c.hn.CloudAverage(c.cloudX, c.lastX); err != nil { // line 19
			return nil, err
		}
		weightedLoss = 0
		for l, loss := range c.lastLoss {
			weightedLoss += c.hn.EdgeWeights[l] * loss
		}
		update := transport.Message{
			Kind:    KindCloudUpdate,
			Round:   p * c.cfg.Tau * c.cfg.Pi,
			Vectors: [][]float64{c.cloudY, c.cloudX},
		}
		for l := 0; l < numEdges; l++ { // lines 20–21
			if err := c.ep.Send(EdgeID(l), update); err != nil {
				return nil, fmt.Errorf("cluster: cloud redistribute to edge %d: %w", l, err)
			}
		}
		if p < numRounds && c.cfg.EvalEvery > 0 {
			acc, err := model.Accuracy(c.cfg.Model, c.cloudX, c.hn.EvalSet())
			if err != nil {
				return nil, fmt.Errorf("cluster: cloud eval round %d: %w", p, err)
			}
			res.Curve = append(res.Curve, fl.Point{
				Iter:      p * c.cfg.Tau * c.cfg.Pi,
				TestAcc:   acc,
				TrainLoss: weightedLoss,
			})
		}
	}

	acc, err := model.Accuracy(c.cfg.Model, c.cloudX, c.cfg.Test)
	if err != nil {
		return nil, fmt.Errorf("cluster: final eval: %w", err)
	}
	res.FinalAcc = acc
	res.FinalLoss = weightedLoss
	res.Curve = append(res.Curve, fl.Point{Iter: c.cfg.T, TestAcc: acc, TrainLoss: weightedLoss})
	return res, nil
}

// collectReports gathers the sync-p edge reports into lastY/lastX. Strict
// mode requires every edge within RecvTimeout. Quorum mode grants stragglers
// (π+1)·StragglerDeadline of grace from the moment ⌈MinQuorum·L⌉ edges
// reported fresh — budgeting one grace period per intervening edge round
// plus the cloud's own — then proceeds, reusing a missing edge's previous
// state for at most one consecutive sync before failing fast. Duplicate and
// stale-round reports are rejected and counted; a future-sync report (an
// edge that rode out a lost cloud update and ran ahead) is stashed for the
// sync it belongs to in quorum mode.
func (c *cloudNode) collectReports(p int) error {
	numEdges := c.cfg.NumEdges()
	want := p * c.cfg.Tau * c.cfg.Pi
	quorum := numEdges
	if c.opts.tolerant() {
		quorum = quorumCount(c.opts.MinQuorum, numEdges)
	}
	fresh := make([]bool, numEdges)
	got := 0
	// Drain reports stashed by earlier syncs: an edge that rode out a lost
	// cloud update runs ahead of the cloud, and its reports were kept for
	// the syncs they belong to.
	if len(c.pending) > 0 {
		keep := c.pending[:0]
		for _, msg := range c.pending {
			switch {
			case msg.Round > want:
				keep = append(keep, msg)
			case msg.Round < want:
				c.rec.stale()
			default:
				ok, err := c.admitReport(msg, fresh)
				if err != nil {
					return err
				}
				if ok {
					got++
				}
			}
		}
		c.pending = keep
	}
	deadline := time.Now().Add(c.opts.RecvTimeout)
	if c.opts.tolerant() {
		// Same margin as the edge tier: a silent edge may itself be riding
		// out a lost update for up to a full RecvTimeout before it recovers.
		deadline = deadline.Add(c.opts.StragglerDeadline)
	}
	var stragglerBy time.Time
	for got < numEdges {
		var wait time.Duration
		if got >= quorum {
			if stragglerBy.IsZero() {
				// Each of the π edge rounds between cloud syncs can burn a
				// full straggler grace at the edge tier before the edge
				// reports, so the cloud's window budgets π grace periods for
				// the edge tier's waits on top of its own.
				stragglerBy = time.Now().Add(time.Duration(c.cfg.Pi+1) * c.opts.StragglerDeadline)
			}
			wait = time.Until(stragglerBy)
			if wait <= 0 {
				break
			}
		} else {
			wait = time.Until(deadline)
			if wait <= 0 {
				return fmt.Errorf("%d/%d edge reports (quorum %d): %w",
					got, numEdges, quorum, transport.ErrTimeout)
			}
		}
		msg, err := c.ep.RecvTimeout(wait)
		if err != nil {
			if errors.Is(err, transport.ErrTimeout) {
				continue
			}
			return err
		}
		if err := expectKind(msg, KindCloudReport); err != nil {
			return err
		}
		if msg.Round < want {
			c.rec.stale()
			continue
		}
		if msg.Round > want {
			if c.opts.tolerant() {
				// An edge that rode out a lost cloud update is running ahead;
				// keep its report for the sync it belongs to.
				c.pending = append(c.pending, msg)
				continue
			}
			return fmt.Errorf("cluster: report from %q for future round %d (want %d)",
				msg.From, msg.Round, want)
		}
		ok, err := c.admitReport(msg, fresh)
		if err != nil {
			return err
		}
		if ok {
			got++
		}
	}
	missing := 0
	for l, ok := range fresh {
		if ok {
			c.missStreak[l] = 0
			continue
		}
		missing++
		c.missStreak[l]++
		if c.missStreak[l] > 1 {
			return fmt.Errorf("cluster: edge %d missed %d consecutive cloud syncs: quorum unreachable: %w",
				l, c.missStreak[l], transport.ErrTimeout)
		}
	}
	c.rec.missingEdges(want, missing)
	return nil
}

// admitReport validates one current-sync edge report and adopts its state;
// shared by live receives and the ride-ahead stash. It returns whether the
// report counted as a new distinct reporter.
func (c *cloudNode) admitReport(msg transport.Message, fresh []bool) (bool, error) {
	l, err := parseEdgeIndex(msg.From)
	if err != nil {
		return false, err
	}
	if l < 0 || l >= len(fresh) {
		return false, fmt.Errorf("cluster: report from out-of-range edge %d", l)
	}
	if len(msg.Vectors) != 2 {
		return false, fmt.Errorf("cluster: report from %q carries %d vectors, want 2",
			msg.From, len(msg.Vectors))
	}
	if fresh[l] {
		c.rec.duplicate()
		return false, nil
	}
	fresh[l] = true
	c.lastY[l] = msg.Vectors[0]
	c.lastX[l] = msg.Vectors[1]
	c.lastLoss[l] = msg.Scalars[ScalarLoss]
	return true, nil
}
