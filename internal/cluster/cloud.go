package cluster

import (
	"fmt"

	"hieradmo/internal/fl"
	"hieradmo/internal/model"
	"hieradmo/internal/tensor"
	"hieradmo/internal/transport"
)

// cloudNode is the cloud server: every τπ iterations it collects the edges'
// aggregated worker momenta and edge models, averages them (Algorithm 1
// lines 18–19), redistributes the result (lines 20–21), records the
// accuracy curve, and produces the final Result.
type cloudNode struct {
	cfg  *fl.Config
	hn   *fl.Harness
	ep   transport.Endpoint
	opts Options

	cloudX, cloudY tensor.Vector
}

func newCloudNode(cfg *fl.Config, hn *fl.Harness, x0 tensor.Vector, ep transport.Endpoint, opts Options) *cloudNode {
	return &cloudNode{
		cfg:    cfg,
		hn:     hn,
		ep:     ep,
		opts:   opts,
		cloudX: x0.Clone(),
		cloudY: x0.Clone(),
	}
}

func (c *cloudNode) run() (*fl.Result, error) {
	name := "HierAdMo/cluster"
	if !c.opts.Adaptive {
		name = "HierAdMo-R/cluster"
	}
	res := c.hn.NewResult(name)
	numEdges := c.cfg.NumEdges()
	numRounds := c.cfg.T / (c.cfg.Tau * c.cfg.Pi)
	var weightedLoss float64

	for p := 1; p <= numRounds; p++ {
		yMinuses := make([]tensor.Vector, numEdges)
		xPluses := make([]tensor.Vector, numEdges)
		losses := make([]float64, numEdges)
		for got := 0; got < numEdges; got++ {
			msg, err := c.ep.RecvTimeout(c.opts.RecvTimeout)
			if err != nil {
				return nil, fmt.Errorf("cluster: cloud round %d: %w", p, err)
			}
			if err := expectKind(msg, KindCloudReport); err != nil {
				return nil, err
			}
			l, err := parseEdgeIndex(msg.From)
			if err != nil {
				return nil, err
			}
			if l < 0 || l >= numEdges {
				return nil, fmt.Errorf("cluster: report from out-of-range edge %d", l)
			}
			yMinuses[l] = msg.Vectors[0]
			xPluses[l] = msg.Vectors[1]
			losses[l] = msg.Scalars[ScalarLoss]
		}
		if err := c.hn.CloudAverage(c.cloudY, yMinuses); err != nil { // line 18
			return nil, err
		}
		if err := c.hn.CloudAverage(c.cloudX, xPluses); err != nil { // line 19
			return nil, err
		}
		weightedLoss = 0
		for l, loss := range losses {
			weightedLoss += c.hn.EdgeWeights[l] * loss
		}
		update := transport.Message{
			Kind:    KindCloudUpdate,
			Round:   p * c.cfg.Tau * c.cfg.Pi,
			Vectors: [][]float64{c.cloudY, c.cloudX},
		}
		for l := 0; l < numEdges; l++ { // lines 20–21
			if err := c.ep.Send(EdgeID(l), update); err != nil {
				return nil, fmt.Errorf("cluster: cloud redistribute to edge %d: %w", l, err)
			}
		}
		if p < numRounds && c.cfg.EvalEvery > 0 {
			acc, err := model.Accuracy(c.cfg.Model, c.cloudX, c.hn.EvalSet())
			if err != nil {
				return nil, fmt.Errorf("cluster: cloud eval round %d: %w", p, err)
			}
			res.Curve = append(res.Curve, fl.Point{
				Iter:      p * c.cfg.Tau * c.cfg.Pi,
				TestAcc:   acc,
				TrainLoss: weightedLoss,
			})
		}
	}

	acc, err := model.Accuracy(c.cfg.Model, c.cloudX, c.cfg.Test)
	if err != nil {
		return nil, fmt.Errorf("cluster: final eval: %w", err)
	}
	res.FinalAcc = acc
	res.FinalLoss = weightedLoss
	res.Curve = append(res.Curve, fl.Point{Iter: c.cfg.T, TestAcc: acc, TrainLoss: weightedLoss})
	return res, nil
}
