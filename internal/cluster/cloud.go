package cluster

import (
	"errors"
	"fmt"
	"time"

	"hieradmo/internal/checkpoint"
	"hieradmo/internal/fl"
	"hieradmo/internal/model"
	"hieradmo/internal/robust"
	"hieradmo/internal/telemetry"
	"hieradmo/internal/tensor"
	"hieradmo/internal/transport"
)

// cloudNode is the cloud server: every τπ iterations it collects the edges'
// aggregated worker momenta and edge models, averages them (Algorithm 1
// lines 18–19), redistributes the result (lines 20–21), records the
// accuracy curve, and produces the final Result.
//
// In quorum mode a missing edge report is tolerated for one sync by reusing
// that edge's last reported state (its initialization before the first
// report); an edge missing two consecutive syncs, or fresh reports falling
// below ⌈MinQuorum·L⌉, fails the run fast.
type cloudNode struct {
	cfg  *fl.Config
	hn   *fl.Harness
	ep   transport.Endpoint
	opts Options
	rec  *faultRecorder
	reg  *checkpoint.Registry
	memb *membState

	cloudX, cloudY tensor.Vector
	// lastY/lastX hold each edge's most recent [y_ℓ−, x_ℓ+] report,
	// seeded with x⁰ so a first-sync straggler is still well-defined.
	lastY, lastX []tensor.Vector
	// lastLoss is each edge's most recently reported weighted loss.
	lastLoss []float64
	// missStreak counts consecutive syncs each edge has missed.
	missStreak []int
	// pending stashes reports from edges running ahead of the cloud (an
	// edge that rode out a lost cloud update keeps going) until the cloud's
	// own sync catches up with them.
	pending []transport.Message
	// epoch is the membership epoch of the last snapshotted sync; persisted
	// so a resume can verify it restores the adapted topology.
	epoch int
	// agg is the robust aggregation rule applied to edge reports, nil
	// for plain mean (the original bit-exact CloudAverage path).
	// prevY/prevX are its deviation references: cloudY/cloudX are both
	// source and destination at a sync, so the previous values are
	// copied out before the reduction.
	agg robust.Aggregator
	//flvet:allow ckptstate -- per-sync scratch, refilled from cloudY/cloudX before every use
	prevY, prevX tensor.Vector
}

func newCloudNode(cfg *fl.Config, hn *fl.Harness, x0 tensor.Vector, ep transport.Endpoint, opts Options) *cloudNode {
	numEdges := cfg.NumEdges()
	c := &cloudNode{
		cfg:        cfg,
		hn:         hn,
		ep:         ep,
		opts:       opts,
		cloudX:     x0.Clone(),
		cloudY:     x0.Clone(),
		lastY:      make([]tensor.Vector, numEdges),
		lastX:      make([]tensor.Vector, numEdges),
		lastLoss:   make([]float64, numEdges),
		missStreak: make([]int, numEdges),
	}
	for l := 0; l < numEdges; l++ {
		c.lastY[l] = x0.Clone()
		c.lastX[l] = x0.Clone()
	}
	if c.agg = newAggregator(opts.CloudAggregator); c.agg != nil {
		c.prevY = tensor.NewVector(len(x0))
		c.prevX = tensor.NewVector(len(x0))
	}
	return c
}

// initCheckpoint binds the cloud's aggregation state — the global model and
// momentum, every edge's last report, the loss and miss-streak ledgers, the
// accuracy curve, and the ride-ahead stash — to its snapshot registry and
// applies the Resume option. It returns the sync to continue after.
func (c *cloudNode) initCheckpoint(res *fl.Result, weightedLoss *float64) (int, error) {
	reg, err := nodeRegistry(c.cfg, c.opts, CloudID)
	if err != nil || reg == nil {
		return 0, err
	}
	reg.Vector("cloudX", c.cloudX)
	reg.Vector("cloudY", c.cloudY)
	for l := range c.lastY {
		reg.Vector(fmt.Sprintf("lastY/%d", l), c.lastY[l])
		reg.Vector(fmt.Sprintf("lastX/%d", l), c.lastX[l])
		reg.Int(fmt.Sprintf("missStreak/%d", l), &c.missStreak[l])
	}
	reg.Vector("lastLoss", c.lastLoss)
	reg.Float("weightedLoss", weightedLoss)
	reg.Dynamic("curve",
		func() []float64 {
			flat := make([]float64, 0, 3*len(res.Curve))
			for _, pt := range res.Curve {
				flat = append(flat, float64(pt.Iter), pt.TestAcc, pt.TrainLoss)
			}
			return flat
		},
		func(flat []float64) error {
			if len(flat)%3 != 0 {
				return fmt.Errorf("curve holds %d values, not triples", len(flat))
			}
			curve := make([]fl.Point, 0, len(flat)/3)
			for i := 0; i+2 < len(flat); i += 3 {
				iter := int(flat[i])
				if float64(iter) != flat[i] {
					return fmt.Errorf("curve iteration %v is not an integer", flat[i])
				}
				curve = append(curve, fl.Point{Iter: iter, TestAcc: flat[i+1], TrainLoss: flat[i+2]})
			}
			res.Curve = curve
			return nil
		})
	if c.memb != nil {
		reg.Int("membEpoch", &c.epoch)
	}
	dim := len(c.cloudX)
	reg.Dynamic("pending",
		func() []float64 { return encodePending(c.pending, 2, dim, parseEdgeIndex) },
		func(flat []float64) error {
			msgs, err := decodePending(flat, 2, dim, KindCloudReport, EdgeID)
			if err != nil {
				return err
			}
			c.pending = msgs
			return nil
		})
	c.reg = reg
	return restoreOrClear(reg, c.opts.Resume, c.opts.Telemetry, CloudID)
}

// redistribute sends the sync-p cloud update (lines 20–21) to every edge.
func (c *cloudNode) redistribute(p int) error {
	update := transport.Message{
		Kind:    KindCloudUpdate,
		Round:   p * c.cfg.Tau * c.cfg.Pi,
		Vectors: [][]float64{c.cloudY, c.cloudX},
	}
	for l := 0; l < c.cfg.NumEdges(); l++ {
		if err := c.ep.Send(EdgeID(l), update); err != nil {
			return fmt.Errorf("cluster: cloud redistribute to edge %d: %w", l, err)
		}
	}
	return nil
}

func (c *cloudNode) run() (*fl.Result, error) {
	name := "HierAdMo/cluster"
	if !c.opts.Adaptive {
		name = "HierAdMo-R/cluster"
	}
	res := c.hn.NewResult(name)
	numRounds := c.cfg.T / (c.cfg.Tau * c.cfg.Pi)
	var weightedLoss float64

	start, err := c.initCheckpoint(res, &weightedLoss)
	if err != nil {
		return nil, fmt.Errorf("cluster: cloud: %w", err)
	}
	if start > 0 {
		if c.memb != nil && c.epoch != c.memb.sched.EpochIndex(start*c.cfg.Pi) {
			return nil, fmt.Errorf("cluster: cloud resume at sync %d: snapshot epoch %d, schedule says %d: membership schedule divergence",
				start, c.epoch, c.memb.sched.EpochIndex(start*c.cfg.Pi))
		}
		// The snapshot precedes its sync's redistribution, so re-send that
		// update on resume: edges already past the sync discard it as stale,
		// edges still waiting on it adopt it (directly or via the
		// mid-collect fast-forward) and catch up.
		if err := c.redistribute(start); err != nil {
			return nil, fmt.Errorf("cluster: cloud resume: %w", err)
		}
		if err := c.announceRetier(start, true); err != nil {
			return nil, fmt.Errorf("cluster: cloud resume: %w", err)
		}
	}

	sink := c.opts.Telemetry
	for p := start + 1; p <= numRounds; p++ {
		if interrupted(c.opts.Interrupt) {
			return nil, fmt.Errorf("cluster: cloud: %w", ErrInterrupted)
		}
		if err := c.collectReports(p); err != nil {
			return nil, fmt.Errorf("cluster: cloud round %d: %w", p, err)
		}
		var syncStart time.Time
		if sink != nil {
			syncStart = time.Now()
		}
		if c.agg != nil {
			// Robust lines 18–19: reduce the edge reports under the
			// configured rule. cloudY/cloudX are both previous state and
			// destination, so the deviation references are copied out
			// first.
			ew := c.hn.EdgeWeights
			if c.memb != nil {
				ew = c.memb.sched.EdgeWeights(p * c.cfg.Pi)
			}
			if err := c.prevY.CopyFrom(c.cloudY); err != nil {
				return nil, err
			}
			if err := c.prevX.CopyFrom(c.cloudX); err != nil {
				return nil, err
			}
			st, err := c.agg.Aggregate(
				[]tensor.Vector{c.cloudY, c.cloudX},
				[]tensor.Vector{c.prevY, c.prevX},
				ew,
				[][]tensor.Vector{c.lastY, c.lastX})
			if err != nil {
				return nil, fmt.Errorf("cluster: cloud robust %s aggregation at sync %d: %w",
					c.agg.Name(), p, err)
			}
			if len(st.Rejected) > 0 || len(st.Clipped) > 0 {
				ids := make([]string, len(ew))
				for l := range ids {
					ids[l] = EdgeID(l)
				}
				c.rec.robust(CloudID, "cloud", p*c.cfg.Tau*c.cfg.Pi, st, ids)
			}
			weightedLoss = 0
			for l, loss := range c.lastLoss {
				weightedLoss += ew[l] * loss
			}
		} else if c.memb != nil {
			// Lines 18–19 over the live membership: the same Dℓ/D weights as
			// the harness, recomputed per epoch over live workers only.
			ew := c.memb.sched.EdgeWeights(p * c.cfg.Pi)
			if err := tensor.WeightedSum(c.cloudY, ew, c.lastY); err != nil {
				return nil, err
			}
			if err := tensor.WeightedSum(c.cloudX, ew, c.lastX); err != nil {
				return nil, err
			}
			weightedLoss = 0
			for l, loss := range c.lastLoss {
				weightedLoss += ew[l] * loss
			}
		} else {
			if err := c.hn.CloudAverage(c.cloudY, c.lastY); err != nil { // line 18
				return nil, err
			}
			if err := c.hn.CloudAverage(c.cloudX, c.lastX); err != nil { // line 19
				return nil, err
			}
			weightedLoss = 0
			for l, loss := range c.lastLoss {
				weightedLoss += c.hn.EdgeWeights[l] * loss
			}
		}
		if sink != nil {
			sink.M().CloudSyncSeconds.Observe(time.Since(syncStart).Seconds())
		}
		sink.M().CloudSyncs.Inc()
		sink.M().Round.Set(float64(p * c.cfg.Tau * c.cfg.Pi))
		if c.memb != nil {
			sink.M().MembershipEpoch.Set(float64(c.memb.sched.EpochIndex(p * c.cfg.Pi)))
			sink.M().LiveWorkers.Set(float64(c.memb.sched.LiveCount(p * c.cfg.Pi)))
		}
		if sink.Tracing() {
			sink.Emit("cloud_aggregate",
				telemetry.Int("t", p*c.cfg.Tau*c.cfg.Pi),
				telemetry.Int("edges", c.cfg.NumEdges()))
		}
		// Record the curve point and snapshot BEFORE redistributing, so a
		// resume never loses this sync's measurement and can re-send the
		// update. (The eval is pure read-only compute; doing it ahead of the
		// sends only delays the edges by the eval itself.)
		if p < numRounds && c.cfg.EvalEvery > 0 {
			acc, err := model.Accuracy(c.cfg.Model, c.cloudX, c.hn.EvalSet())
			if err != nil {
				return nil, fmt.Errorf("cluster: cloud eval round %d: %w", p, err)
			}
			res.Curve = append(res.Curve, fl.Point{
				Iter:      p * c.cfg.Tau * c.cfg.Pi,
				TestAcc:   acc,
				TrainLoss: weightedLoss,
			})
			c.recordEval(p*c.cfg.Tau*c.cfg.Pi, acc, weightedLoss, false)
		}
		if c.memb != nil {
			c.epoch = c.memb.sched.EpochIndex(p * c.cfg.Pi)
		}
		if err := saveSnapshot(c.reg, p, c.opts.Telemetry, CloudID); err != nil {
			return nil, fmt.Errorf("cluster: cloud round %d: %w", p, err)
		}
		if err := c.redistribute(p); err != nil {
			return nil, err
		}
		if err := c.announceRetier(p, false); err != nil {
			return nil, err
		}
	}

	acc, err := model.Accuracy(c.cfg.Model, c.cloudX, c.cfg.Test)
	if err != nil {
		return nil, fmt.Errorf("cluster: final eval: %w", err)
	}
	res.FinalAcc = acc
	res.FinalLoss = weightedLoss
	res.Curve = append(res.Curve, fl.Point{Iter: c.cfg.T, TestAcc: acc, TrainLoss: weightedLoss})
	c.recordEval(c.cfg.T, acc, weightedLoss, true)
	return res, nil
}

// announceRetier broadcasts the REASSIGN control message after the sync-p
// redistribution when a re-tiering takes effect at the next edge round. The
// message carries the moved workers' (edge, index, newEdge) triples; edges
// cross-check it against their own schedule, so it can never *cause* a
// reassignment — only surface a configuration divergence. resend marks a
// resume's repeat (re-announced, not re-counted).
func (c *cloudNode) announceRetier(p int, resend bool) error {
	if c.memb == nil {
		return nil
	}
	sched := c.memb.sched
	k := p * c.cfg.Pi
	if k >= sched.K {
		return nil
	}
	next := sched.EpochAt(k + 1)
	if !next.Retier || next.Start != k+1 {
		return nil
	}
	moved := sched.ReassignedAt(k + 1)
	flat := make([]float64, 0, 3*len(moved))
	for _, ref := range moved {
		to, ok := sched.EdgeOf(k+1, ref)
		if !ok {
			return fmt.Errorf("cluster: cloud: reassigned worker %s has no edge at round %d", ref.NodeID(), k+1)
		}
		flat = append(flat, float64(ref.Edge), float64(ref.Index), float64(to))
	}
	msg := transport.Message{
		Kind:    KindReassign,
		Round:   k * c.cfg.Tau,
		Vectors: [][]float64{flat},
	}
	for l := 0; l < c.cfg.NumEdges(); l++ {
		if err := c.ep.Send(EdgeID(l), msg); err != nil {
			return fmt.Errorf("cluster: cloud reassign to edge %d: %w", l, err)
		}
	}
	if !resend {
		c.rec.retier(k*c.cfg.Tau, len(moved))
	}
	return nil
}

// recordEval mirrors one accuracy measurement onto the telemetry sink.
func (c *cloudNode) recordEval(t int, acc, loss float64, final bool) {
	sink := c.opts.Telemetry
	m := sink.M()
	m.Evals.Inc()
	m.TestAccuracy.Set(acc)
	m.TrainLoss.Set(loss)
	if sink.Tracing() {
		sink.Emit("eval",
			telemetry.Int("t", t),
			telemetry.Float("acc", acc),
			telemetry.Float("loss", loss),
			telemetry.Bool("final", final))
	}
}

// collectReports gathers the sync-p edge reports into lastY/lastX. Strict
// mode requires every edge within RecvTimeout. Quorum mode grants stragglers
// (π+1)·StragglerDeadline of grace from the moment ⌈MinQuorum·L⌉ edges
// reported fresh — budgeting one grace period per intervening edge round
// plus the cloud's own — then proceeds, reusing a missing edge's previous
// state for at most one consecutive sync before failing fast. Duplicate and
// stale-round reports are rejected and counted; a future-sync report (an
// edge that rode out a lost cloud update and ran ahead) is stashed for the
// sync it belongs to in quorum mode.
func (c *cloudNode) collectReports(p int) error {
	numEdges := c.cfg.NumEdges()
	want := p * c.cfg.Tau * c.cfg.Pi
	quorum := numEdges
	if c.opts.tolerant() {
		quorum = quorumCount(c.opts.MinQuorum, numEdges)
	}
	fresh := make([]bool, numEdges)
	got := 0
	// Drain reports stashed by earlier syncs: an edge that rode out a lost
	// cloud update runs ahead of the cloud, and its reports were kept for
	// the syncs they belong to.
	if len(c.pending) > 0 {
		keep := c.pending[:0]
		for _, msg := range c.pending {
			switch {
			case msg.Round > want:
				keep = append(keep, msg)
			case msg.Round < want:
				c.rec.stale(CloudID)
			default:
				ok, err := c.admitReport(msg, fresh)
				if err != nil {
					return err
				}
				if ok {
					got++
				}
			}
		}
		c.pending = keep
	}
	deadline := c.opts.now().Add(c.opts.RecvTimeout)
	if c.opts.tolerant() {
		// Same margin as the edge tier: a silent edge may itself be riding
		// out a lost update for up to a full RecvTimeout before it recovers.
		deadline = deadline.Add(c.opts.StragglerDeadline)
	}
	var stragglerBy time.Time
	for got < numEdges {
		var wait time.Duration
		if got >= quorum {
			if stragglerBy.IsZero() {
				// Each of the π edge rounds between cloud syncs can burn a
				// full straggler grace at the edge tier before the edge
				// reports, so the cloud's window budgets π grace periods for
				// the edge tier's waits on top of its own.
				stragglerBy = c.opts.now().Add(time.Duration(c.cfg.Pi+1) * c.opts.StragglerDeadline)
			}
			wait = stragglerBy.Sub(c.opts.now())
			if wait <= 0 {
				break
			}
		} else {
			wait = deadline.Sub(c.opts.now())
			if wait <= 0 {
				return fmt.Errorf("%d/%d edge reports (quorum %d): %w",
					got, numEdges, quorum, transport.ErrTimeout)
			}
		}
		msg, err := recvInterruptible(c.ep, wait, c.opts)
		if err != nil {
			if errors.Is(err, transport.ErrTimeout) {
				continue
			}
			return err
		}
		if err := expectKind(msg, KindCloudReport); err != nil {
			return err
		}
		if msg.Round < want {
			c.rec.stale(CloudID)
			continue
		}
		if msg.Round > want {
			if c.opts.tolerant() {
				// An edge that rode out a lost cloud update is running ahead;
				// keep its report for the sync it belongs to.
				c.pending = append(c.pending, msg)
				continue
			}
			return fmt.Errorf("cluster: report from %q for future round %d (want %d)",
				msg.From, msg.Round, want)
		}
		ok, err := c.admitReport(msg, fresh)
		if err != nil {
			return err
		}
		if ok {
			got++
		}
	}
	missing := 0
	for l, ok := range fresh {
		if ok {
			c.missStreak[l] = 0
			continue
		}
		missing++
		c.missStreak[l]++
		if c.missStreak[l] > 1 {
			return fmt.Errorf("cluster: edge %d missed %d consecutive cloud syncs: quorum unreachable: %w",
				l, c.missStreak[l], transport.ErrTimeout)
		}
	}
	c.rec.missingEdges(want, missing)
	return nil
}

// admitReport validates one current-sync edge report and adopts its state;
// shared by live receives and the ride-ahead stash. It returns whether the
// report counted as a new distinct reporter.
func (c *cloudNode) admitReport(msg transport.Message, fresh []bool) (bool, error) {
	l, err := parseEdgeIndex(msg.From)
	if err != nil {
		return false, err
	}
	if l < 0 || l >= len(fresh) {
		return false, fmt.Errorf("cluster: report from out-of-range edge %d", l)
	}
	if len(msg.Vectors) != 2 {
		return false, fmt.Errorf("cluster: report from %q carries %d vectors, want 2",
			msg.From, len(msg.Vectors))
	}
	if fresh[l] {
		c.rec.duplicate(CloudID)
		return false, nil
	}
	fresh[l] = true
	// Copy into the standing buffers instead of rebinding the slots: the
	// checkpoint registry captures lastY/lastX by reference, so the backing
	// arrays registered at startup must keep holding the live state.
	if err := c.lastY[l].CopyFrom(msg.Vectors[0]); err != nil {
		return false, err
	}
	if err := c.lastX[l].CopyFrom(msg.Vectors[1]); err != nil {
		return false, err
	}
	c.lastLoss[l] = msg.Scalars[ScalarLoss]
	return true, nil
}
