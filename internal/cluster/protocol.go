// Package cluster executes HierAdMo (Algorithm 1) as an actual distributed
// protocol: one goroutine-hosted node per worker, edge, and cloud,
// exchanging models, momenta, and interval accumulators as messages over a
// transport (in-memory for tests and single-machine runs, TCP for real
// sockets).
//
// The in-process simulation in internal/core is the reference semantics:
// the cluster performs the same floating-point operations in the same
// order, so a cluster run and a simulation run with the same fl.Config
// produce bit-identical models (verified by TestClusterMatchesSimulation).
package cluster

import (
	"fmt"
	"strconv"
	"strings"

	"hieradmo/internal/transport"
)

// Protocol message kinds.
const (
	// KindEdgeReport is worker → edge at t = kτ, carrying
	// [y, x, Σ∇F, Σy] and the worker's latest mini-batch loss.
	KindEdgeReport = "edge-report"
	// KindEdgeUpdate is edge → worker after an edge (or cloud) update,
	// carrying [y_ℓ−, x_ℓ+].
	KindEdgeUpdate = "edge-update"
	// KindCloudReport is edge → cloud at t = pτπ, carrying [y_ℓ−, x_ℓ+]
	// and the edge's weighted loss.
	KindCloudReport = "cloud-report"
	// KindCloudUpdate is cloud → edge, carrying the cloud-aggregated [y, x].
	KindCloudUpdate = "cloud-update"

	// Dynamic-membership control messages. ADMIT and RETIRE are edge →
	// worker; REASSIGN is cloud → edge. None of them carries a membership
	// *decision* — every node derives the same schedule from the churn plan,
	// so the messages only synchronize when a transition takes effect.

	// KindAdmit is edge → worker, admitting a joining or reassigned-in
	// worker into the edge's cohort. It carries the same [y_ℓ−, x_ℓ+]
	// payload as KindEdgeUpdate, giving the newcomer its starting state.
	KindAdmit = "admit"
	// KindRetire is edge → worker, acknowledging a planned permanent leave
	// after the worker's final report was aggregated. No payload.
	KindRetire = "retire"
	// KindReassign is cloud → edge after a re-tiering step, carrying the
	// flattened (edge, index, newEdge) triples of moved workers so edges
	// can cross-check their locally computed schedule.
	KindReassign = "reassign"

	// N-tier tree protocol (Options.Topology). The default 3-tier runtime
	// keeps the kinds above untouched, so unchanged configs speak the exact
	// pre-tree wire protocol.

	// KindTierReport is child → parent at the child's parent-sync boundary:
	// training leaves send [y, x, Σ∇F, Σy] and their latest mini-batch loss;
	// aggregating levels send [y_ℓ−, x_ℓ+] and their weighted loss.
	KindTierReport = "tier-report"
	// KindTierUpdate is parent → child after an aggregation, carrying the
	// level's [y_ℓ−, x_ℓ+].
	KindTierUpdate = "tier-update"
)

// Scalar keys used in messages.
const (
	// ScalarLoss carries a (weighted) training loss.
	ScalarLoss = "loss"
)

// CloudID is the cloud node's transport ID.
const CloudID = "cloud"

// EdgeID returns the transport ID of edge ℓ.
func EdgeID(l int) string { return "edge-" + strconv.Itoa(l) }

// WorkerID returns the transport ID of worker {i,ℓ}.
func WorkerID(l, i int) string {
	return "worker-" + strconv.Itoa(l) + "-" + strconv.Itoa(i)
}

// parseWorkerIndex extracts the worker index i from a WorkerID.
func parseWorkerIndex(id string) (int, error) {
	parts := strings.Split(id, "-")
	if len(parts) != 3 || parts[0] != "worker" {
		return 0, fmt.Errorf("cluster: malformed worker id %q", id)
	}
	i, err := strconv.Atoi(parts[2])
	if err != nil {
		return 0, fmt.Errorf("cluster: malformed worker id %q: %w", id, err)
	}
	return i, nil
}

// parseEdgeIndex extracts the edge index ℓ from an EdgeID.
func parseEdgeIndex(id string) (int, error) {
	parts := strings.Split(id, "-")
	if len(parts) != 2 || parts[0] != "edge" {
		return 0, fmt.Errorf("cluster: malformed edge id %q", id)
	}
	l, err := strconv.Atoi(parts[1])
	if err != nil {
		return 0, fmt.Errorf("cluster: malformed edge id %q: %w", id, err)
	}
	return l, nil
}

// expectKind validates an incoming message's type.
func expectKind(msg transport.Message, kind string) error {
	if msg.Kind != kind {
		return fmt.Errorf("cluster: got %q from %q, want %q", msg.Kind, msg.From, kind)
	}
	return nil
}
