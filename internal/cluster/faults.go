package cluster

import (
	"sync"

	"hieradmo/internal/fl"
	"hieradmo/internal/robust"
	"hieradmo/internal/telemetry"
	"hieradmo/internal/transport"
)

// faultRecorder accumulates the fault observations of every node in a run
// into one fl.FaultReport, and mirrors each observation onto the run's
// telemetry sink as it happens — counters live, one trace event per
// tolerated fault. All methods are nil-safe so the per-role entry points
// can run without one.
//
// Transport-level faults (drops, delays, retries) are counted live by the
// transport layer itself (see transport.FaultyNetwork.SetTelemetry);
// mergeTransport only folds their end-of-run totals into the FaultReport,
// never into the sink, so nothing is double-counted.
type faultRecorder struct {
	mu   sync.Mutex
	rep  fl.FaultReport
	att  fl.AttackReport
	sink *telemetry.Sink // nil-safe, accessed without mu
}

func newFaultRecorder(sink *telemetry.Sink) *faultRecorder {
	return &faultRecorder{
		rep: fl.FaultReport{
			MissingWorkers: make(map[int]int),
			MissingEdges:   make(map[int]int),
		},
		sink: sink,
	}
}

// missingWorkers records that an edge quorum at iteration t proceeded
// without n of its workers.
func (r *faultRecorder) missingWorkers(t, n int) {
	if r == nil || n == 0 {
		return
	}
	r.mu.Lock()
	r.rep.MissingWorkers[t] += n
	r.mu.Unlock()
	m := r.sink.M()
	m.QuorumMet.Inc()
	m.QuorumMissingWorkers.Add(int64(n))
	if r.sink.Tracing() {
		r.sink.Emit("quorum",
			telemetry.String("tier", "edge"),
			telemetry.Int("t", t),
			telemetry.Int("missing", n))
	}
}

// missingEdges records that the cloud sync at iteration t substituted n
// edges' reports with their last known state.
func (r *faultRecorder) missingEdges(t, n int) {
	if r == nil || n == 0 {
		return
	}
	r.mu.Lock()
	r.rep.MissingEdges[t] += n
	r.mu.Unlock()
	m := r.sink.M()
	m.QuorumMet.Inc()
	m.QuorumMissingEdges.Add(int64(n))
	if r.sink.Tracing() {
		r.sink.Emit("quorum",
			telemetry.String("tier", "cloud"),
			telemetry.Int("t", t),
			telemetry.Int("missing", n))
	}
}

// missingTier records an N-tier aggregation at iteration t proceeding
// without n of its children: leaf-parent quorums forfeit stragglers (the
// edge semantics, counted under MissingWorkers), every other level
// substitutes last reports (the cloud semantics, counted under
// MissingEdges). The quorum trace event carries the level name and tier
// index so depth-parametric runs stay attributable.
func (r *faultRecorder) missingTier(level string, tier, t, n int, leaf bool) {
	if r == nil || n == 0 {
		return
	}
	r.mu.Lock()
	if leaf {
		r.rep.MissingWorkers[t] += n
	} else {
		r.rep.MissingEdges[t] += n
	}
	r.mu.Unlock()
	m := r.sink.M()
	m.QuorumMet.Inc()
	if leaf {
		m.QuorumMissingWorkers.Add(int64(n))
	} else {
		m.QuorumMissingEdges.Add(int64(n))
	}
	if r.sink.Tracing() {
		r.sink.Emit("quorum",
			telemetry.String("tier", level),
			telemetry.Int("tier_index", tier),
			telemetry.Int("t", t),
			telemetry.Int("missing", n))
	}
}

// duplicate records a rejected duplicate report observed by node.
func (r *faultRecorder) duplicate(node string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.rep.DuplicateReports++
	r.mu.Unlock()
	r.sink.M().DuplicateReports.Inc()
	if r.sink.Tracing() {
		r.sink.Emit("duplicate_report", telemetry.String("node", node))
	}
}

// stale records a rejected stale-round message observed by node.
func (r *faultRecorder) stale(node string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.rep.StaleMessages++
	r.mu.Unlock()
	r.sink.M().StaleMessages.Inc()
	if r.sink.Tracing() {
		r.sink.Emit("stale_message", telemetry.String("node", node))
	}
}

// timeout records a tolerated receive timeout at node.
func (r *faultRecorder) timeout(node string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.rep.Timeouts++
	r.mu.Unlock()
	r.sink.M().Timeouts.Inc()
	if r.sink.Tracing() {
		r.sink.Emit("timeout", telemetry.String("node", node))
	}
}

// fastforward records a node resynchronizing past rounds the protocol
// completed without it (from its own round to the adopted one). Pure
// telemetry: fast-forwards are recovery, not faults, so they stay out of
// the FaultReport.
func (r *faultRecorder) fastforward(node string, from, to int) {
	if r == nil {
		return
	}
	r.sink.M().FastForwards.Inc()
	if r.sink.Tracing() {
		r.sink.Emit("fastforward_resync",
			telemetry.String("node", node),
			telemetry.Int("from", from),
			telemetry.Int("to", to))
	}
}

// Membership observations below are pure telemetry: planned churn is part
// of the protocol, not a fault, so none of them touches the FaultReport.
// The schedule-derived fl.MembershipReport is the durable record.

// joined records a worker admitted into an edge cohort at iteration t,
// either as a planned join or as a re-tiering reassignment.
func (r *faultRecorder) joined(node string, t int, reassigned bool) {
	if r == nil {
		return
	}
	m := r.sink.M()
	ev := "membership_join"
	if reassigned {
		m.MembershipReassigns.Inc()
		ev = "membership_reassign"
	} else {
		m.MembershipJoins.Inc()
	}
	if r.sink.Tracing() {
		r.sink.Emit(ev,
			telemetry.String("node", node),
			telemetry.Int("t", t))
	}
}

// left records a worker retired after its final report at iteration t.
func (r *faultRecorder) left(node string, t int) {
	if r == nil {
		return
	}
	r.sink.M().MembershipLeaves.Inc()
	if r.sink.Tracing() {
		r.sink.Emit("membership_leave",
			telemetry.String("node", node),
			telemetry.Int("t", t))
	}
}

// retier records a re-tiering step that changed the assignment, moving
// `moved` workers effective at iteration t.
func (r *faultRecorder) retier(t, moved int) {
	if r == nil {
		return
	}
	r.sink.M().MembershipRetiers.Inc()
	if r.sink.Tracing() {
		r.sink.Emit("membership_retier",
			telemetry.Int("t", t),
			telemetry.Int("moved", moved))
	}
}

// migrated records a γℓ migration applied by an edge whose cohort changed.
func (r *faultRecorder) migrated(node string, t int, policy string, gamma float64) {
	if r == nil {
		return
	}
	r.sink.M().GammaMigrations.Inc()
	if r.sink.Tracing() {
		r.sink.Emit("gamma_migration",
			telemetry.String("node", node),
			telemetry.Int("t", t),
			telemetry.String("policy", policy),
			telemetry.Float("gamma", gamma))
	}
}

// injected records a Byzantine worker mutating its boundary report at
// iteration t according to the run's attack plan. The injection is part
// of the scenario, not a fault, so it accumulates into the AttackReport
// rather than the FaultReport.
func (r *faultRecorder) injected(node string, t int, kind string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if r.att.Injected == nil {
		r.att.Injected = make(map[string]int)
	}
	r.att.Injected[kind]++
	r.mu.Unlock()
	r.sink.M().AttackInjected.Inc()
	if r.sink.Tracing() {
		r.sink.Emit("attack_inject",
			telemetry.String("node", node),
			telemetry.Int("t", t),
			telemetry.String("kind", kind))
	}
}

// robust records what one robust aggregation did at node (an edge or the
// cloud) for iteration t: every rejected reporter and every clipped
// update becomes a counter bump and a trace event, so the telemetry
// totals match the AttackReport exactly. ids maps the aggregation's
// reporter slots to node IDs.
func (r *faultRecorder) robust(node, tier string, t int, st robust.Stats, ids []string) {
	if r == nil || (len(st.Rejected) == 0 && len(st.Clipped) == 0) {
		return
	}
	r.mu.Lock()
	if tier == "cloud" {
		r.att.RejectedCloud += len(st.Rejected)
	} else {
		r.att.RejectedEdge += len(st.Rejected)
	}
	r.att.Clipped += len(st.Clipped)
	r.mu.Unlock()
	m := r.sink.M()
	m.RobustRejected.Add(int64(len(st.Rejected)))
	m.RobustClipped.Add(int64(len(st.Clipped)))
	if len(st.Clipped) > 0 {
		m.RobustClipNorm.Set(st.MaxNorm)
	}
	if !r.sink.Tracing() {
		return
	}
	slot := func(j int) string {
		if j < len(ids) {
			return ids[j]
		}
		return ""
	}
	for _, j := range st.Rejected {
		r.sink.Emit("robust_reject",
			telemetry.String("node", node),
			telemetry.String("tier", tier),
			telemetry.Int("t", t),
			telemetry.String("from", slot(j)))
	}
	for _, j := range st.Clipped {
		r.sink.Emit("robust_clip",
			telemetry.String("node", node),
			telemetry.String("tier", tier),
			telemetry.Int("t", t),
			telemetry.String("from", slot(j)),
			telemetry.Float("max_norm", st.MaxNorm))
	}
}

// robustTier records what one robust aggregation did at a tree node: like
// robust, but attributed to the node's tier index (and level name) instead
// of the edge/cloud pair.
func (r *faultRecorder) robustTier(node, level string, tier, t int, st robust.Stats, ids []string) {
	if r == nil || (len(st.Rejected) == 0 && len(st.Clipped) == 0) {
		return
	}
	r.mu.Lock()
	if len(st.Rejected) > 0 {
		if r.att.RejectedByTier == nil {
			r.att.RejectedByTier = make(map[int]int)
		}
		r.att.RejectedByTier[tier] += len(st.Rejected)
	}
	if len(st.Clipped) > 0 {
		if r.att.ClippedByTier == nil {
			r.att.ClippedByTier = make(map[int]int)
		}
		r.att.ClippedByTier[tier] += len(st.Clipped)
	}
	r.mu.Unlock()
	m := r.sink.M()
	m.RobustRejected.Add(int64(len(st.Rejected)))
	m.RobustClipped.Add(int64(len(st.Clipped)))
	if len(st.Clipped) > 0 {
		m.RobustClipNorm.Set(st.MaxNorm)
	}
	if !r.sink.Tracing() {
		return
	}
	slot := func(j int) string {
		if j < len(ids) {
			return ids[j]
		}
		return ""
	}
	for _, j := range st.Rejected {
		r.sink.Emit("robust_reject",
			telemetry.String("node", node),
			telemetry.String("tier", level),
			telemetry.Int("tier_index", tier),
			telemetry.Int("t", t),
			telemetry.String("from", slot(j)))
	}
	for _, j := range st.Clipped {
		r.sink.Emit("robust_clip",
			telemetry.String("node", node),
			telemetry.String("tier", level),
			telemetry.Int("tier_index", tier),
			telemetry.Int("t", t),
			telemetry.String("from", slot(j)),
			telemetry.Float("max_norm", st.MaxNorm))
	}
}

// nodeError records the error of a node that dropped out of a run that kept
// going.
func (r *faultRecorder) nodeError(err error) {
	if r == nil || err == nil {
		return
	}
	r.mu.Lock()
	r.rep.NodeErrors = append(r.rep.NodeErrors, err.Error())
	r.mu.Unlock()
}

// mergeTransport folds transport-level counters into the report.
func (r *faultRecorder) mergeTransport(s transport.FaultStats) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.rep.Dropped += s.Dropped
	r.rep.Retries += s.Retries
	r.rep.Crashed = append(r.rep.Crashed, s.Crashed...)
	r.rep.Restarted = append(r.rep.Restarted, s.Restarted...)
	r.mu.Unlock()
}

// report returns the accumulated report, or nil when nothing was recorded.
func (r *faultRecorder) report() *fl.FaultReport {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.rep.Any() {
		return nil
	}
	rep := r.rep
	return &rep
}

// attackReport returns the accumulated Byzantine-scenario report, or nil
// for runs where the robust layer never engaged (no attacks injected,
// nothing rejected or clipped, mean aggregation everywhere).
func (r *faultRecorder) attackReport(opts Options) *fl.AttackReport {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.att.Any() && !opts.robustEnabled() {
		return nil
	}
	rep := r.att
	rep.EdgeAggregator = opts.EdgeAggregator.String()
	rep.CloudAggregator = opts.CloudAggregator.String()
	return &rep
}

// attackReportTree is the N-tier counterpart of attackReport: activity is
// attributed by tier index and the per-level rules come from the topology
// spec. Returns nil when no attack was injected and every level aggregates
// with plain mean.
func (r *faultRecorder) attackReportTree(opts Options) *fl.AttackReport {
	if r == nil {
		return nil
	}
	robustLevel := false
	aggs := make([]string, 0, opts.Topology.Depth()-1)
	for _, lv := range opts.Topology.Levels[:opts.Topology.Depth()-1] {
		aggs = append(aggs, lv.Agg.String())
		if lv.Agg.Robust() {
			robustLevel = true
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.att.Any() && !robustLevel && opts.AttackPlan.Empty() {
		return nil
	}
	rep := r.att
	rep.TierAggregators = aggs
	return &rep
}
