package cluster

import (
	"sync"

	"hieradmo/internal/fl"
	"hieradmo/internal/transport"
)

// faultRecorder accumulates the fault observations of every node in a run
// into one fl.FaultReport. All methods are nil-safe so the per-role entry
// points can run without one.
type faultRecorder struct {
	mu  sync.Mutex
	rep fl.FaultReport
}

func newFaultRecorder() *faultRecorder {
	return &faultRecorder{rep: fl.FaultReport{
		MissingWorkers: make(map[int]int),
		MissingEdges:   make(map[int]int),
	}}
}

// missingWorkers records that an edge quorum at iteration t proceeded
// without n of its workers.
func (r *faultRecorder) missingWorkers(t, n int) {
	if r == nil || n == 0 {
		return
	}
	r.mu.Lock()
	r.rep.MissingWorkers[t] += n
	r.mu.Unlock()
}

// missingEdges records that the cloud sync at iteration t substituted n
// edges' reports with their last known state.
func (r *faultRecorder) missingEdges(t, n int) {
	if r == nil || n == 0 {
		return
	}
	r.mu.Lock()
	r.rep.MissingEdges[t] += n
	r.mu.Unlock()
}

// duplicate records a rejected duplicate report.
func (r *faultRecorder) duplicate() {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.rep.DuplicateReports++
	r.mu.Unlock()
}

// stale records a rejected stale-round message.
func (r *faultRecorder) stale() {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.rep.StaleMessages++
	r.mu.Unlock()
}

// timeout records a tolerated receive timeout.
func (r *faultRecorder) timeout() {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.rep.Timeouts++
	r.mu.Unlock()
}

// nodeError records the error of a node that dropped out of a run that kept
// going.
func (r *faultRecorder) nodeError(err error) {
	if r == nil || err == nil {
		return
	}
	r.mu.Lock()
	r.rep.NodeErrors = append(r.rep.NodeErrors, err.Error())
	r.mu.Unlock()
}

// mergeTransport folds transport-level counters into the report.
func (r *faultRecorder) mergeTransport(s transport.FaultStats) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.rep.Dropped += s.Dropped
	r.rep.Retries += s.Retries
	r.rep.Crashed = append(r.rep.Crashed, s.Crashed...)
	r.rep.Restarted = append(r.rep.Restarted, s.Restarted...)
	r.mu.Unlock()
}

// report returns the accumulated report, or nil when nothing was recorded.
func (r *faultRecorder) report() *fl.FaultReport {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.rep.Any() {
		return nil
	}
	rep := r.rep
	return &rep
}
