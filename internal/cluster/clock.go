package cluster

import "time"

// Clock supplies the wall-clock readings behind receive deadlines,
// straggler grace windows, and interrupt polling. Production runs use the
// real system clock; tests inject a fake so quorum-timing behavior can be
// exercised without real sleeps or flaky scaling margins.
//
// Only deadline *arithmetic* flows through the clock. Metric stopwatches
// (aggregation and sync latency histograms) intentionally stay on
// time.Now/time.Since: they measure real elapsed work, and skewing them
// with a fake clock would corrupt the latency telemetry.
type Clock interface {
	Now() time.Time
}

// systemClock is the default Clock: the real wall clock.
type systemClock struct{}

func (systemClock) Now() time.Time { return time.Now() }

// now reads the configured clock, falling back to the system clock so
// zero-value Options (as built by tests that bypass withDefaults) keep
// working.
func (o Options) now() time.Time {
	if o.Clock != nil {
		return o.Clock.Now()
	}
	return time.Now()
}
