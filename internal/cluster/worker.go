package cluster

import (
	"fmt"

	"hieradmo/internal/dataset"
	"hieradmo/internal/fl"
	"hieradmo/internal/rng"
	"hieradmo/internal/tensor"
	"hieradmo/internal/transport"
)

// workerNode is one worker {i,ℓ}: it runs the NAG iterations of Algorithm 1
// lines 5–6 on its own shard and synchronizes with its edge every τ
// iterations. It performs exactly the same floating-point operations, in the
// same order, as the in-process simulation.
type workerNode struct {
	cfg     *fl.Config
	l, i    int
	shard   *dataset.Dataset
	ep      transport.Endpoint
	opts    Options
	sampler *rng.RNG

	x, y          tensor.Vector
	gradSum, ySum tensor.Vector
	grad          tensor.Vector
	lastLoss      float64
}

func newWorkerNode(cfg *fl.Config, hn *fl.Harness, l, i int, x0 tensor.Vector, ep transport.Endpoint, opts Options) *workerNode {
	return &workerNode{
		cfg:     cfg,
		l:       l,
		i:       i,
		shard:   cfg.Edges[l][i],
		ep:      ep,
		opts:    opts,
		sampler: fl.WorkerSampler(cfg.Seed, l, i),
		x:       x0.Clone(),
		y:       x0.Clone(),
		gradSum: tensor.NewVector(len(x0)),
		ySum:    tensor.NewVector(len(x0)),
		grad:    tensor.NewVector(len(x0)),
	}
}

func (w *workerNode) run() error {
	edge := EdgeID(w.l)
	for t := 1; t <= w.cfg.T; t++ {
		if err := w.step(); err != nil {
			return fmt.Errorf("cluster: worker {%d,%d} t=%d: %w", w.i, w.l, t, err)
		}
		if t%w.cfg.Tau != 0 {
			continue
		}
		// Lines 9/14–15: report interval state, receive the redistributed
		// momentum and model.
		report := transport.Message{
			Kind:    KindEdgeReport,
			Round:   t,
			Vectors: [][]float64{w.y, w.x, w.gradSum, w.ySum},
			Scalars: map[string]float64{ScalarLoss: w.lastLoss},
		}
		if err := w.ep.Send(edge, report); err != nil {
			return fmt.Errorf("cluster: worker {%d,%d} report: %w", w.i, w.l, err)
		}
		msg, err := w.ep.RecvTimeout(w.opts.RecvTimeout)
		if err != nil {
			return fmt.Errorf("cluster: worker {%d,%d} await update: %w", w.i, w.l, err)
		}
		if err := expectKind(msg, KindEdgeUpdate); err != nil {
			return err
		}
		if len(msg.Vectors) != 2 {
			return fmt.Errorf("cluster: worker {%d,%d} update carries %d vectors, want 2",
				w.i, w.l, len(msg.Vectors))
		}
		if err := w.y.CopyFrom(msg.Vectors[0]); err != nil {
			return err
		}
		if err := w.x.CopyFrom(msg.Vectors[1]); err != nil {
			return err
		}
		w.gradSum.Zero()
		w.ySum.Zero()
	}
	return nil
}

// step performs one NAG iteration (Algorithm 1 lines 5–6).
func (w *workerNode) step() error {
	batch, err := w.shard.Batch(w.sampler, w.cfg.BatchSize)
	if err != nil {
		return err
	}
	loss, err := w.cfg.Model.LossGrad(w.x, batch, w.grad)
	if err != nil {
		return err
	}
	w.lastLoss = loss
	if err := w.gradSum.Add(w.grad); err != nil {
		return err
	}
	yPrev := w.y.Clone()
	if err := w.y.CopyFrom(w.x); err != nil {
		return err
	}
	if err := w.y.AXPY(-w.cfg.Eta, w.grad); err != nil {
		return err
	}
	if err := w.ySum.Add(w.y); err != nil {
		return err
	}
	if err := w.x.CopyFrom(w.y); err != nil {
		return err
	}
	if err := w.x.AXPY(w.cfg.Gamma, w.y); err != nil {
		return err
	}
	return w.x.AXPY(-w.cfg.Gamma, yPrev)
}
