package cluster

import (
	"errors"
	"fmt"

	"hieradmo/internal/checkpoint"
	"hieradmo/internal/dataset"
	"hieradmo/internal/fl"
	"hieradmo/internal/membership"
	"hieradmo/internal/rng"
	"hieradmo/internal/robust"
	"hieradmo/internal/tensor"
	"hieradmo/internal/transport"
)

// workerNode is one worker {i,ℓ}: it runs the NAG iterations of Algorithm 1
// lines 5–6 on its own shard and synchronizes with its edge every τ
// iterations. It performs exactly the same floating-point operations, in the
// same order, as the in-process simulation.
//
// In quorum mode a worker whose redistributed update never arrives keeps
// training on its local state and rejoins at a later aggregation — the
// distributed counterpart of a non-participant in the simulation's
// partial-participation path.
type workerNode struct {
	cfg     *fl.Config
	l, i    int
	shard   *dataset.Dataset
	ep      transport.Endpoint
	opts    Options
	rec     *faultRecorder
	reg     *checkpoint.Registry
	memb    *membState
	sampler *rng.RNG
	// att mutates this worker's boundary reports when the run's attack
	// plan marks it Byzantine; nil for honest workers.
	att *robust.Attacker

	x, y          tensor.Vector
	gradSum, ySum tensor.Vector
	grad          tensor.Vector //flvet:allow ckptstate -- per-step scratch, overwritten by LossGrad before use
	// yPrev is per-iteration scratch for the NAG extrapolation,
	// preallocated so step never clones a model-sized vector.
	yPrev    tensor.Vector //flvet:allow ckptstate -- per-step scratch, refilled from y before use
	lastLoss float64
	// syncedThrough is the round of the last adopted edge update. When an
	// update arrives for a round ahead of this worker's own iteration count
	// (the edge fast-forwarded past syncs a quorum completed without it),
	// the worker trains straight through to that round before reporting
	// again — the edge no longer wants the intervening rounds.
	syncedThrough int
}

func newWorkerNode(cfg *fl.Config, hn *fl.Harness, l, i int, x0 tensor.Vector, ep transport.Endpoint, opts Options) *workerNode {
	return &workerNode{
		cfg:     cfg,
		l:       l,
		i:       i,
		shard:   cfg.Edges[l][i],
		ep:      ep,
		opts:    opts,
		sampler: fl.WorkerSampler(cfg.Seed, l, i),
		att:     opts.attackerFor(WorkerID(l, i), 4, len(x0)),
		x:       x0.Clone(),
		y:       x0.Clone(),
		gradSum: tensor.NewVector(len(x0)),
		ySum:    tensor.NewVector(len(x0)),
		grad:    tensor.NewVector(len(x0)),
		yPrev:   tensor.NewVector(len(x0)),
	}
}

// initCheckpoint binds the worker's complete mid-run state — model, momentum,
// interval accumulators, batch-sampler stream, and resync cursor — to its
// snapshot registry and applies the Resume option. It returns the iteration
// the run should continue after (0 for a fresh start).
func (w *workerNode) initCheckpoint() (int, error) {
	reg, err := nodeRegistry(w.cfg, w.opts, WorkerID(w.l, w.i))
	if err != nil || reg == nil {
		return 0, err
	}
	reg.Vector("x", w.x)
	reg.Vector("y", w.y)
	reg.Vector("gradSum", w.gradSum)
	reg.Vector("ySum", w.ySum)
	reg.RNG("sampler", w.sampler)
	reg.Float("lastLoss", &w.lastLoss)
	reg.Int("syncedThrough", &w.syncedThrough)
	if w.att != nil {
		// The replay stash is the attacker's only mutable state; with it
		// in the snapshot a resumed Byzantine worker re-sends exactly the
		// bytes the uninterrupted run would have (the noise/flip/scale
		// draws are already pure functions of seed, node, and round).
		for ci, v := range w.att.PrevVectors() {
			reg.Vector(fmt.Sprintf("attackPrev%d", ci), v)
		}
		reg.Int("attackPrevRound", w.att.PrevRoundPtr())
	}
	w.reg = reg
	return restoreOrClear(reg, w.opts.Resume, w.opts.Telemetry, WorkerID(w.l, w.i))
}

// ref is this worker's membership identity (its natal edge and index).
func (w *workerNode) ref() membership.Ref {
	return membership.Ref{Edge: w.l, Index: w.i}
}

func (w *workerNode) run() error {
	start, err := w.initCheckpoint()
	if err != nil {
		return fmt.Errorf("cluster: worker {%d,%d}: %w", w.i, w.l, err)
	}
	// With dynamic membership the worker's lifetime is its scheduled span:
	// a late joiner idles until its natal edge ADMITs it with fresh state,
	// and a planned leaver trains only through its final round.
	T := w.cfg.T
	if w.memb != nil {
		join, last, ok := w.memb.sched.Span(w.ref())
		if !ok {
			return nil
		}
		T = last * w.cfg.Tau
		if start == 0 && join > 1 {
			if start, err = w.awaitAdmit(join); err != nil {
				return err
			}
			// Persist the adopted state so a crash between admission and
			// the first boundary resumes from the join, not from scratch.
			if err := saveSnapshot(w.reg, start, w.opts.Telemetry, WorkerID(w.l, w.i)); err != nil {
				return fmt.Errorf("cluster: worker {%d,%d}: %w", w.i, w.l, err)
			}
		}
	}
	for t := start + 1; t <= T; t++ {
		if interrupted(w.opts.Interrupt) {
			// Graceful shutdown: persist the state as of the last completed
			// iteration. A resumed run replays the rest of the interval from
			// here — deterministically, since the sampler position is part of
			// the snapshot — and re-sends the interval report.
			if err := saveSnapshot(w.reg, t-1, w.opts.Telemetry, WorkerID(w.l, w.i)); err != nil {
				return fmt.Errorf("cluster: worker {%d,%d}: %w", w.i, w.l, err)
			}
			return fmt.Errorf("cluster: worker {%d,%d}: %w", w.i, w.l, ErrInterrupted)
		}
		if err := w.step(); err != nil {
			return fmt.Errorf("cluster: worker {%d,%d} t=%d: %w", w.i, w.l, t, err)
		}
		if t%w.cfg.Tau != 0 {
			continue
		}
		if t <= w.syncedThrough {
			// The last adopted update already covers this round: the edge
			// would reject a report for it as stale. Keep training until the
			// local iteration count catches up with the adopted state.
			if err := saveSnapshot(w.reg, t, w.opts.Telemetry, WorkerID(w.l, w.i)); err != nil {
				return fmt.Errorf("cluster: worker {%d,%d}: %w", w.i, w.l, err)
			}
			continue
		}
		// Lines 9/14–15: report interval state, receive the redistributed
		// momentum and model. Under dynamic membership the target edge is
		// whatever the schedule assigns for this round.
		edge := EdgeID(w.l)
		if w.memb != nil {
			l, ok := w.memb.sched.EdgeOf(t/w.cfg.Tau, w.ref())
			if !ok {
				return fmt.Errorf("cluster: worker {%d,%d} has no edge at round %d: membership schedule divergence",
					w.i, w.l, t/w.cfg.Tau)
			}
			edge = EdgeID(l)
		}
		vecs := [][]float64{w.y, w.x, w.gradSum, w.ySum}
		if w.att != nil {
			// Byzantine boundary: the attack mutates only what goes on
			// the wire — local training state stays honest, matching the
			// compromised-client threat model (DESIGN.md §14).
			mut, kind, hit, err := w.att.Apply(t/w.cfg.Tau, []tensor.Vector{w.y, w.x, w.gradSum, w.ySum})
			if err != nil {
				return fmt.Errorf("cluster: worker {%d,%d} attack: %w", w.i, w.l, err)
			}
			if hit {
				w.rec.injected(WorkerID(w.l, w.i), t, kind)
				vecs = [][]float64{mut[0], mut[1], mut[2], mut[3]}
			}
		}
		report := transport.Message{
			Kind:    KindEdgeReport,
			Round:   t,
			Vectors: vecs,
			Scalars: map[string]float64{ScalarLoss: w.lastLoss},
		}
		if err := w.ep.Send(edge, report); err != nil {
			return fmt.Errorf("cluster: worker {%d,%d} report: %w", w.i, w.l, err)
		}
		if w.memb != nil && t == T && T < w.cfg.T {
			// Planned permanent leave: the final report is aggregated, then
			// the edge acknowledges with RETIRE and this worker exits.
			if err := w.awaitRetire(t); err != nil {
				return err
			}
		} else if err := w.awaitUpdate(t); err != nil {
			return err
		}
		// Snapshot after the boundary settles (update adopted or ridden out).
		// An interrupt inside awaitUpdate deliberately skips this save: the
		// resumed worker then replays the interval from the previous snapshot
		// and re-sends the report, which keeps it bit-identical to a run that
		// was never interrupted (the edge discards the duplicate as stale if
		// it already processed the original).
		if err := saveSnapshot(w.reg, t, w.opts.Telemetry, WorkerID(w.l, w.i)); err != nil {
			return fmt.Errorf("cluster: worker {%d,%d}: %w", w.i, w.l, err)
		}
	}
	return nil
}

// awaitUpdate blocks for the edge's redistributed [y, x] after the report at
// iteration t. Updates for an earlier round are stale leftovers and are
// skipped; an update for a later round means this worker was left behind by
// a quorum and resynchronizes to the newer state. In quorum mode a timeout
// is ridden out: the worker keeps its local state (and interval
// accumulators) and continues training, like a simulation non-participant.
func (w *workerNode) awaitUpdate(t int) error {
	deadline := w.opts.now().Add(w.opts.RecvTimeout)
	for {
		wait := deadline.Sub(w.opts.now())
		if wait <= 0 {
			if w.opts.tolerant() {
				w.rec.timeout(WorkerID(w.l, w.i))
				return nil
			}
			return fmt.Errorf("cluster: worker {%d,%d} await update: %w", w.i, w.l, transport.ErrTimeout)
		}
		msg, err := recvInterruptible(w.ep, wait, w.opts)
		if err != nil {
			if errors.Is(err, transport.ErrTimeout) {
				continue
			}
			return fmt.Errorf("cluster: worker {%d,%d} await update: %w", w.i, w.l, err)
		}
		// A worker reassigned to a new edge by re-tiering receives its
		// boundary update from that edge as an ADMIT; the payload is the
		// same as a regular update.
		if !(w.memb != nil && msg.Kind == KindAdmit) {
			if err := expectKind(msg, KindEdgeUpdate); err != nil {
				return err
			}
		}
		if msg.Round < t {
			w.rec.stale(WorkerID(w.l, w.i))
			continue
		}
		if len(msg.Vectors) != 2 {
			return fmt.Errorf("cluster: worker {%d,%d} update carries %d vectors, want 2",
				w.i, w.l, len(msg.Vectors))
		}
		if err := w.y.CopyFrom(msg.Vectors[0]); err != nil {
			return err
		}
		if err := w.x.CopyFrom(msg.Vectors[1]); err != nil {
			return err
		}
		w.gradSum.Zero()
		w.ySum.Zero()
		if msg.Round > t {
			// A quorum moved on without this worker; it resynchronizes to the
			// newer state and trains straight through to the adopted round.
			w.rec.fastforward(WorkerID(w.l, w.i), t, msg.Round)
		}
		w.syncedThrough = msg.Round
		return nil
	}
}

// awaitAdmit blocks a late joiner until its natal edge admits it into the
// cohort of its join round, carrying the edge's current [y, x] as starting
// state. It returns the adopted round (the worker trains from there). An
// edge that fast-forwarded past the join round admits with a later round;
// a plain KindEdgeUpdate covering the join also counts (the edge considered
// this worker a member already after a resync).
func (w *workerNode) awaitAdmit(join int) (int, error) {
	want := (join - 1) * w.cfg.Tau
	deadline := w.opts.now().Add(w.opts.RecvTimeout)
	for {
		wait := deadline.Sub(w.opts.now())
		if wait <= 0 {
			return 0, fmt.Errorf("cluster: worker {%d,%d} await admit for round %d: %w",
				w.i, w.l, join, transport.ErrTimeout)
		}
		msg, err := recvInterruptible(w.ep, wait, w.opts)
		if err != nil {
			if errors.Is(err, transport.ErrTimeout) {
				continue
			}
			return 0, fmt.Errorf("cluster: worker {%d,%d} await admit: %w", w.i, w.l, err)
		}
		if msg.Kind != KindAdmit && msg.Kind != KindEdgeUpdate {
			return 0, fmt.Errorf("cluster: worker {%d,%d} got %q from %q while awaiting admit",
				w.i, w.l, msg.Kind, msg.From)
		}
		if msg.Round < want {
			w.rec.stale(WorkerID(w.l, w.i))
			continue
		}
		if len(msg.Vectors) != 2 {
			return 0, fmt.Errorf("cluster: worker {%d,%d} admit carries %d vectors, want 2",
				w.i, w.l, len(msg.Vectors))
		}
		if err := w.y.CopyFrom(msg.Vectors[0]); err != nil {
			return 0, err
		}
		if err := w.x.CopyFrom(msg.Vectors[1]); err != nil {
			return 0, err
		}
		w.gradSum.Zero()
		w.ySum.Zero()
		w.syncedThrough = msg.Round
		return msg.Round, nil
	}
}

// awaitRetire blocks a planned leaver until its edge acknowledges that the
// final report at iteration t was aggregated. Leftover redistribution
// traffic is skipped; in quorum mode a missing RETIRE is ridden out (the
// worker has nothing left to do either way).
func (w *workerNode) awaitRetire(t int) error {
	deadline := w.opts.now().Add(w.opts.RecvTimeout)
	for {
		wait := deadline.Sub(w.opts.now())
		if wait <= 0 {
			if w.opts.tolerant() {
				w.rec.timeout(WorkerID(w.l, w.i))
				return nil
			}
			return fmt.Errorf("cluster: worker {%d,%d} await retire: %w", w.i, w.l, transport.ErrTimeout)
		}
		msg, err := recvInterruptible(w.ep, wait, w.opts)
		if err != nil {
			if errors.Is(err, transport.ErrTimeout) {
				continue
			}
			return fmt.Errorf("cluster: worker {%d,%d} await retire: %w", w.i, w.l, err)
		}
		switch msg.Kind {
		case KindRetire:
			return nil
		case KindEdgeUpdate, KindAdmit:
			w.rec.stale(WorkerID(w.l, w.i))
		default:
			return fmt.Errorf("cluster: worker {%d,%d} got %q from %q while awaiting retire",
				w.i, w.l, msg.Kind, msg.From)
		}
	}
}

// step performs one NAG iteration (Algorithm 1 lines 5–6).
func (w *workerNode) step() error {
	batch, err := w.shard.Batch(w.sampler, w.cfg.BatchSize)
	if err != nil {
		return err
	}
	//flvet:allow allocfree -- workspace pool miss only; steady-state gradient calls reuse pooled buffers
	loss, err := w.cfg.Model.LossGrad(w.x, batch, w.grad)
	if err != nil {
		return err
	}
	w.lastLoss = loss
	if err := w.gradSum.Add(w.grad); err != nil {
		return err
	}
	if err := w.yPrev.CopyFrom(w.y); err != nil {
		return err
	}
	if err := w.y.CopyFrom(w.x); err != nil {
		return err
	}
	if err := w.y.AXPY(-w.cfg.Eta, w.grad); err != nil {
		return err
	}
	if err := w.ySum.Add(w.y); err != nil {
		return err
	}
	if err := w.x.CopyFrom(w.y); err != nil {
		return err
	}
	if err := w.x.AXPY(w.cfg.Gamma, w.y); err != nil {
		return err
	}
	if err := w.x.AXPY(-w.cfg.Gamma, w.yPrev); err != nil {
		return err
	}
	w.opts.Telemetry.M().WorkerSteps.Inc()
	return nil
}
