package cluster

import (
	"errors"
	"strings"
	"testing"
	"time"

	"hieradmo/internal/core"
	"hieradmo/internal/dataset"
	"hieradmo/internal/fl"
	"hieradmo/internal/model"
	"hieradmo/internal/transport"
)

func TestQuorumCount(t *testing.T) {
	cases := []struct {
		frac float64
		n    int
		want int
	}{
		{0.5, 2, 1},
		{0.5, 4, 2},
		{0.5, 5, 3},
		{0.75, 4, 3},
		{0.1, 4, 1},
		{1, 4, 4},
		{0.01, 100, 1},
	}
	for _, c := range cases {
		if got := quorumCount(c.frac, c.n); got != c.want {
			t.Errorf("quorumCount(%v, %d) = %d, want %d", c.frac, c.n, got, c.want)
		}
	}
}

func TestOptionsValidate(t *testing.T) {
	if err := (Options{MinQuorum: 1.5}).validate(); err == nil {
		t.Error("MinQuorum > 1 accepted")
	}
	if err := (Options{MinQuorum: -0.1}).validate(); err == nil {
		t.Error("negative MinQuorum accepted")
	}
	if err := (Options{RecvTimeout: -time.Second}).validate(); err == nil {
		t.Error("negative RecvTimeout accepted")
	}
	if err := (Options{MinQuorum: 0.5}.withDefaults()).validate(); err != nil {
		t.Errorf("valid options rejected: %v", err)
	}
	if !(Options{MinQuorum: 0.5}).tolerant() {
		t.Error("MinQuorum 0.5 not tolerant")
	}
	if (Options{}).withDefaults().tolerant() {
		t.Error("default options tolerant; must be strict fail-stop")
	}
}

// TestEdgeDuplicateReportRejected regression-tests the collection bug where a
// duplicate report overwrote its slot while inflating the reporter count,
// leaving a zero-valued Message (nil vectors) in the aggregation.
func TestEdgeDuplicateReportRejected(t *testing.T) {
	cfg := buildConfig(t, 61, 0)
	hn, err := fl.NewHarness(cfg)
	if err != nil {
		t.Fatal(err)
	}
	net := transport.NewMemoryNetwork()
	defer net.Close()
	edgeEP, err := net.Endpoint(EdgeID(0))
	if err != nil {
		t.Fatal(err)
	}
	w0, err := net.Endpoint(WorkerID(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	w1, err := net.Endpoint(WorkerID(0, 1))
	if err != nil {
		t.Fatal(err)
	}

	x0 := hn.InitParams()
	e := newEdgeNode(cfg, hn, 0, x0, edgeEP, Options{}.withDefaults())
	e.rec = newFaultRecorder(nil)

	report := func(ep transport.Endpoint) {
		t.Helper()
		v := x0.Clone()
		msg := transport.Message{
			Kind:    KindEdgeReport,
			Round:   cfg.Tau,
			Vectors: [][]float64{v, v.Clone(), v.Clone(), v.Clone()},
			Scalars: map[string]float64{ScalarLoss: 1},
		}
		if err := ep.Send(EdgeID(0), msg); err != nil {
			t.Fatal(err)
		}
	}
	report(w0)
	report(w0) // duplicate: must not count as a second distinct reporter
	report(w1)

	reports, idx, adopted, err := e.collectReports(1)
	if err != nil {
		t.Fatal(err)
	}
	if adopted != 0 {
		t.Fatalf("adopted = %d, want 0 (no cloud update in flight)", adopted)
	}
	if len(idx) != 2 || idx[0] != 0 || idx[1] != 1 {
		t.Fatalf("idx = %v, want [0 1]", idx)
	}
	for _, i := range idx {
		if len(reports[i].Vectors) != 4 {
			t.Fatalf("slot %d holds %d vectors (zero-valued duplicate slot?)", i, len(reports[i].Vectors))
		}
	}
	if e.rec.rep.DuplicateReports != 1 {
		t.Errorf("DuplicateReports = %d, want 1", e.rec.rep.DuplicateReports)
	}
	// The aggregation over the collected slots must not touch nil vectors.
	if err := e.update(reports, idx, 1); err != nil {
		t.Errorf("update after duplicate: %v", err)
	}
}

// TestClusterStrictJoinedErrors checks that a strict-mode failure surfaces
// every node's error joined — the crashed worker's root cause must not be
// masked by the cascade of downstream timeouts.
func TestClusterStrictJoinedErrors(t *testing.T) {
	cfg := buildConfig(t, 71, 0)
	cfg.T = 8
	net := transport.NewFaultyNetwork(transport.NewMemoryNetwork(), transport.FaultPlan{
		Seed:         1,
		CrashAtRound: map[string]int{WorkerID(0, 1): 2},
	})
	_, err := Run(cfg, net, Options{Adaptive: true, RecvTimeout: 300 * time.Millisecond})
	if err == nil {
		t.Fatal("strict run with a crashed worker succeeded")
	}
	if !errors.Is(err, transport.ErrCrashed) {
		t.Errorf("joined error lost the crash root cause: %v", err)
	}
	if !errors.Is(err, transport.ErrTimeout) {
		t.Errorf("joined error lost the edge timeout: %v", err)
	}
}

// TestClusterQuorumMatchesPartialParticipation is the bit-equivalence
// acceptance check for graceful degradation: a quorum round whose surviving
// cohort matches the cohort WithParticipation samples must produce exactly
// the simulation's model, because the edge renormalizes weights over
// survivors with the same arithmetic in the same order.
func TestClusterQuorumMatchesPartialParticipation(t *testing.T) {
	cfg := buildConfig(t, 67, 2)
	// One edge round that is also a cloud round, so the sampled cohort is in
	// force for the entire run (crashes are permanent, participation is
	// per-round — they only coincide over a single round).
	cfg.Tau, cfg.Pi, cfg.T = 2, 1, 2
	const frac = 0.5

	ref, err := core.New(core.WithParticipation(frac)).Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	workersPerEdge := make([]int, cfg.NumEdges())
	for l := range cfg.Edges {
		workersPerEdge[l] = len(cfg.Edges[l])
	}
	cohorts := core.ParticipationSchedule(cfg.Seed, frac, workersPerEdge, 1)
	crashes := make(map[string]int)
	for l, n := range workersPerEdge {
		part := make(map[int]bool)
		for _, i := range cohorts[0][l] {
			part[i] = true
		}
		for i := 0; i < n; i++ {
			if !part[i] {
				crashes[WorkerID(l, i)] = cfg.Tau
			}
		}
	}
	if len(crashes) == 0 {
		t.Fatal("participation schedule sampled full cohorts; test needs stragglers")
	}

	net := transport.NewFaultyNetwork(transport.NewMemoryNetwork(),
		transport.FaultPlan{Seed: 1, CrashAtRound: crashes})
	res, err := Run(cfg, net, Options{
		Adaptive:          true,
		MinQuorum:         frac,
		StragglerDeadline: deadlineScale * 100 * time.Millisecond,
		RecvTimeout:       deadlineScale * 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalAcc != ref.FinalAcc {
		t.Errorf("quorum cluster FinalAcc %v != participation simulation %v (must be bit-identical)",
			res.FinalAcc, ref.FinalAcc)
	}
	if res.FaultReport == nil {
		t.Fatal("degraded run carries no fault report")
	}
	if got := len(res.FaultReport.Crashed); got != len(crashes) {
		t.Errorf("Crashed reports %d nodes, want %d", got, len(crashes))
	}
	if got := len(res.FaultReport.NodeErrors); got != len(crashes) {
		t.Errorf("NodeErrors has %d entries, want %d", got, len(crashes))
	}
}

// buildChaosConfig is buildConfig with a wider 8-worker [4,4] topology, so
// an edge that loses one worker for good still has quorum margin against
// report drops.
func buildChaosConfig(t *testing.T, seed uint64) *fl.Config {
	t.Helper()
	genCfg := dataset.GenConfig{
		Name:          "toy",
		Shape:         dataset.Shape{C: 1, H: 5, W: 5},
		NumClasses:    4,
		TemplateScale: 1.0,
		NoiseStd:      0.6,
		SmoothPasses:  1,
	}
	g, err := dataset.NewGenerator(genCfg, seed)
	if err != nil {
		t.Fatal(err)
	}
	train, test := g.TrainTest(320, 80, seed+1)
	shards, err := dataset.PartitionIID(train, 8, seed+2)
	if err != nil {
		t.Fatal(err)
	}
	hier, err := dataset.Hierarchy(shards, []int{4, 4})
	if err != nil {
		t.Fatal(err)
	}
	m, err := model.NewLogisticRegression(genCfg.Shape, genCfg.NumClasses)
	if err != nil {
		t.Fatal(err)
	}
	return &fl.Config{
		Model: m, Edges: hier, Test: test,
		Eta: 0.05, Gamma: 0.5, GammaEdge: 0.5,
		Tau: 2, Pi: 2, T: 24, BatchSize: 8, Seed: seed,
		EvalEvery: 8,
	}
}

// chaosPlan builds the acceptance-test fault schedule: lossy worker→edge
// links plus one worker crashed mid-run. Edge↔cloud links stay clean so the
// cloud's one-miss tolerance is not the thing under test here.
func chaosPlan(cfg *fl.Config) transport.FaultPlan {
	drop := make(map[transport.Link]float64)
	for l := range cfg.Edges {
		for i := range cfg.Edges[l] {
			drop[transport.Link{From: WorkerID(l, i), To: EdgeID(l)}] = 0.12
		}
	}
	return transport.FaultPlan{
		Seed:         9,
		LinkDrop:     drop,
		CrashAtRound: map[string]int{WorkerID(0, 1): 12},
	}
}

// TestClusterChaosDeterministic is the headline robustness acceptance test:
// with ≥10% report loss and a worker crashed mid-run, a quorum run must
// complete, report the faults it survived, still learn, and — because every
// fault decision is drawn from seeded per-link streams — reproduce exactly.
func TestClusterChaosDeterministic(t *testing.T) {
	cfg := buildChaosConfig(t, 73)
	opts := Options{
		Adaptive:          true,
		MinQuorum:         0.5,
		StragglerDeadline: deadlineScale * 100 * time.Millisecond,
		RecvTimeout:       deadlineScale * 2 * time.Second,
	}
	run := func() *fl.Result {
		t.Helper()
		net := transport.NewFaultyNetwork(transport.NewMemoryNetwork(), chaosPlan(cfg))
		res, err := Run(cfg, net, opts)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	res := run()

	hn, err := fl.NewHarness(cfg)
	if err != nil {
		t.Fatal(err)
	}
	baseline, err := model.Accuracy(cfg.Model, hn.InitParams(), cfg.Test)
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalAcc <= baseline {
		t.Errorf("chaos run FinalAcc %v did not beat untrained baseline %v", res.FinalAcc, baseline)
	}

	rep := res.FaultReport
	if !rep.Any() {
		t.Fatal("chaos run reports no faults")
	}
	if rep.Dropped == 0 {
		t.Error("no dropped messages recorded despite 15% link loss")
	}
	if len(rep.Crashed) != 1 || rep.Crashed[0] != WorkerID(0, 1) {
		t.Errorf("Crashed = %v, want [%s]", rep.Crashed, WorkerID(0, 1))
	}
	if rep.TotalMissingWorkers() == 0 {
		t.Error("no missing-worker rounds recorded")
	}
	if len(rep.NodeErrors) != 1 {
		t.Errorf("NodeErrors = %v, want the crashed worker only", rep.NodeErrors)
	}
	if s := rep.String(); !strings.Contains(s, WorkerID(0, 1)) {
		t.Errorf("report text %q does not name the crashed node", s)
	}

	again := run()
	if res.FinalAcc != again.FinalAcc || res.FinalLoss != again.FinalLoss {
		t.Errorf("chaos run not deterministic: %v/%v vs %v/%v",
			res.FinalAcc, res.FinalLoss, again.FinalAcc, again.FinalLoss)
	}
}

// TestClusterEdgeCrashCloudReusesState crashes an edge right before the last
// cloud sync: the cloud must substitute that edge's previous report for the
// one missed sync and still finish.
func TestClusterEdgeCrashCloudReusesState(t *testing.T) {
	cfg := buildConfig(t, 79, 0)
	// Edge rounds end at t = 2,4,...,24; cloud syncs at t = 4,8,...,24. A
	// crash at round 21 kills edge-1 after the t=20 sync, so only the final
	// sync sees it missing.
	net := transport.NewFaultyNetwork(transport.NewMemoryNetwork(), transport.FaultPlan{
		Seed:         2,
		CrashAtRound: map[string]int{EdgeID(1): 21},
	})
	res, err := Run(cfg, net, Options{
		Adaptive:          true,
		MinQuorum:         0.5,
		StragglerDeadline: deadlineScale * 100 * time.Millisecond,
		RecvTimeout:       deadlineScale * 700 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := res.FaultReport
	if rep == nil {
		t.Fatal("no fault report after an edge crash")
	}
	if len(rep.Crashed) != 1 || rep.Crashed[0] != EdgeID(1) {
		t.Errorf("Crashed = %v, want [%s]", rep.Crashed, EdgeID(1))
	}
	if rep.MissingEdges[cfg.T] != 1 {
		t.Errorf("MissingEdges = %v, want 1 at the final sync (t=%d)", rep.MissingEdges, cfg.T)
	}
	if res.FinalAcc <= 0 {
		t.Errorf("degraded run produced no model: FinalAcc = %v", res.FinalAcc)
	}
}

// TestClusterQuorumUnreachableFailsFast: even in tolerant mode, an edge that
// misses two consecutive cloud syncs makes the run fail (with the timeout
// cause preserved) instead of silently training on ever-staler state.
func TestClusterQuorumUnreachableFailsFast(t *testing.T) {
	cfg := buildConfig(t, 83, 0)
	// Edge-1 dies at round 10 and therefore misses the t=12 and t=16 syncs.
	net := transport.NewFaultyNetwork(transport.NewMemoryNetwork(), transport.FaultPlan{
		Seed:         3,
		CrashAtRound: map[string]int{EdgeID(1): 10},
	})
	_, err := Run(cfg, net, Options{
		Adaptive:          true,
		MinQuorum:         0.5,
		StragglerDeadline: 50 * time.Millisecond,
		RecvTimeout:       300 * time.Millisecond,
	})
	if err == nil {
		t.Fatal("run with a permanently dead edge succeeded")
	}
	if !errors.Is(err, transport.ErrTimeout) {
		t.Errorf("err = %v, want wrapped ErrTimeout", err)
	}
	if !strings.Contains(err.Error(), "consecutive") {
		t.Errorf("err = %v, want the consecutive-miss diagnosis", err)
	}
}

// TestEdgeAdoptsMidCollectCloudUpdate regression-tests the desync found by
// chaos-driving flcluster: when every report of one round is lost, the cloud
// completes the sync without this edge and its update arrives while the edge
// is still collecting. The edge must adopt that update and fast-forward —
// discarding it as stale left the edge permanently one sync behind, every
// subsequent report stale, until the miss-streak limit killed the run.
func TestEdgeAdoptsMidCollectCloudUpdate(t *testing.T) {
	cfg := buildConfig(t, 91, 0)
	hn, err := fl.NewHarness(cfg)
	if err != nil {
		t.Fatal(err)
	}
	net := transport.NewMemoryNetwork()
	defer net.Close()
	edgeEP, err := net.Endpoint(EdgeID(0))
	if err != nil {
		t.Fatal(err)
	}
	cloudEP, err := net.Endpoint(CloudID)
	if err != nil {
		t.Fatal(err)
	}

	x0 := hn.InitParams()
	opts := Options{
		MinQuorum:         0.5,
		StragglerDeadline: 50 * time.Millisecond,
		RecvTimeout:       2 * time.Second,
	}.withDefaults()
	e := newEdgeNode(cfg, hn, 0, x0, edgeEP, opts)
	e.rec = newFaultRecorder(nil)

	// The cloud finished the second sync (round 2τπ) while this edge never
	// saw a single round-τ report.
	want := 2 * cfg.Tau * cfg.Pi
	y := x0.Clone()
	y[0] += 1
	x := x0.Clone()
	x[0] += 2
	update := transport.Message{
		Kind:    KindCloudUpdate,
		Round:   want,
		Vectors: [][]float64{y, x},
	}
	if err := cloudEP.Send(EdgeID(0), update); err != nil {
		t.Fatal(err)
	}

	_, _, adopted, err := e.collectReports(1)
	if err != nil {
		t.Fatal(err)
	}
	if adopted != want {
		t.Fatalf("adopted = %d, want %d", adopted, want)
	}
	if e.yMinus[0] != y[0] || e.xPlus[0] != x[0] {
		t.Errorf("edge state not adopted from the cloud update: y[0]=%v x[0]=%v",
			e.yMinus[0], e.xPlus[0])
	}

	// Strict mode must keep discarding out-of-band cloud updates as stale:
	// strict edges never give up on a sync, so such an update cannot be a
	// legitimate fast-forward signal mid-collect.
	strict := newEdgeNode(cfg, hn, 0, x0, edgeEP, Options{
		RecvTimeout: 200 * time.Millisecond,
	}.withDefaults())
	strict.rec = newFaultRecorder(nil)
	if err := cloudEP.Send(EdgeID(0), update); err != nil {
		t.Fatal(err)
	}
	_, _, adopted, err = strict.collectReports(1)
	if !errors.Is(err, transport.ErrTimeout) {
		t.Fatalf("strict collect: adopted=%d err=%v, want timeout", adopted, err)
	}
	if strict.rec.rep.StaleMessages != 1 {
		t.Errorf("strict StaleMessages = %d, want 1", strict.rec.rep.StaleMessages)
	}
}

// TestClusterSurvivesLostCloudUpdates drops a third of the cloud→edge-0
// update messages: the edge must repeatedly recover via ride-out or
// fast-forward and the run must still complete and learn.
func TestClusterSurvivesLostCloudUpdates(t *testing.T) {
	cfg := buildConfig(t, 97, 0)
	net := transport.NewFaultyNetwork(transport.NewMemoryNetwork(), transport.FaultPlan{
		Seed: 6,
		LinkDrop: map[transport.Link]float64{
			{From: CloudID, To: EdgeID(0)}: 0.34,
		},
	})
	res, err := Run(cfg, net, Options{
		Adaptive:          true,
		MinQuorum:         0.5,
		StragglerDeadline: deadlineScale * 100 * time.Millisecond,
		RecvTimeout:       deadlineScale * 500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.FaultReport == nil || res.FaultReport.Dropped == 0 {
		t.Fatal("no drops recorded on a lossy cloud→edge link")
	}
	if res.FinalAcc < 0.4 { // chance = 0.25
		t.Errorf("FinalAcc = %v after lost cloud updates, want >= 0.4", res.FinalAcc)
	}
}
