//go:build race

package cluster

// deadlineScale widens straggler and receive deadlines under the race
// detector, whose instrumentation can stall a goroutine long enough to push
// an otherwise-punctual report past the tight windows the fast build uses.
// Scaling every window of a test by the same factor preserves the deadline
// relationships under test while restoring the timing margin that keeps
// quorum cohorts — and hence results — deterministic.
const deadlineScale = 4
