package cluster

import (
	"errors"
	"fmt"
	"sync"

	"hieradmo/internal/fl"
	"hieradmo/internal/telemetry"
	"hieradmo/internal/transport"
)

// runTree executes the config over the N-tier aggregation tree of
// opts.Topology: one goroutine per training leaf and per aggregating node,
// exchanging KindTierReport/KindTierUpdate messages over the network. The
// root returns the run Result. Options have already been defaulted and
// validated by Run.
func runTree(cfg *fl.Config, net Network, opts Options) (*fl.Result, error) {
	hn, err := fl.NewHarness(cfg)
	if err != nil {
		return nil, err
	}
	ts, err := newTreeSpec(cfg, opts)
	if err != nil {
		return nil, err
	}
	defer net.Close()
	if tset, ok := net.(transport.TelemetrySetter); ok {
		tset.SetTelemetry(opts.Telemetry)
	}

	// Create every endpoint before any node starts (TCP needs all addresses
	// registered up front). eps[i][j] is level i, node j.
	topo := ts.topo
	eps := make([][]transport.Endpoint, topo.Depth())
	for i := range eps {
		eps[i] = make([]transport.Endpoint, topo.Width(i))
		for j := range eps[i] {
			if eps[i][j], err = net.Endpoint(topo.NodeID(i, j)); err != nil {
				return nil, fmt.Errorf("cluster: %s endpoint: %w", topo.NodeID(i, j), err)
			}
		}
	}

	x0 := hn.InitParams()
	rec := newFaultRecorder(opts.Telemetry)
	if sink := opts.Telemetry; sink.Tracing() {
		sink.Emit("run_start",
			telemetry.String("alg", "HierAdMo/tree"),
			telemetry.String("topology", topo.String()),
			telemetry.Int("depth", topo.Depth()),
			telemetry.Int("leaves", topo.NumLeaves()),
			telemetry.Int("T", cfg.T),
			telemetry.Int64("seed", int64(cfg.Seed)))
	}

	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		errs    []error
		result  *fl.Result
		rootErr error
	)
	fail := func(err error) {
		if err == nil {
			return
		}
		mu.Lock()
		errs = append(errs, err)
		mu.Unlock()
	}

	leafLvl := topo.Depth() - 1
	for j := 0; j < topo.NumLeaves(); j++ {
		w := newTreeLeaf(cfg, ts, j, x0, eps[leafLvl][j], opts)
		w.rec = rec
		wg.Add(1)
		go func() {
			defer wg.Done()
			fail(w.run())
		}()
	}
	for i := leafLvl - 1; i > 0; i-- {
		for j := 0; j < topo.Width(i); j++ {
			n := newTierNode(cfg, hn, ts, i, j, x0, eps[i][j], opts)
			n.rec = rec
			wg.Add(1)
			go func() {
				defer wg.Done()
				_, err := n.run()
				fail(err)
			}()
		}
	}
	root := newTierNode(cfg, hn, ts, 0, 0, x0, eps[0][0], opts)
	root.rec = rec
	wg.Add(1)
	go func() {
		defer wg.Done()
		res, err := root.run()
		mu.Lock()
		result, rootErr = res, err
		mu.Unlock()
	}()

	wg.Wait()
	for _, lvl := range eps {
		for _, ep := range lvl {
			if cerr := ep.Close(); cerr != nil {
				fail(fmt.Errorf("cluster: close %s: %w", ep.ID(), cerr))
			}
		}
	}
	if sr, ok := net.(transport.StatsReporter); ok {
		rec.mergeTransport(sr.FaultStats())
	}
	mu.Lock()
	defer mu.Unlock()
	// Same verdict semantics as the 3-tier Run: strict mode fails on any
	// node error, tolerant mode only when the root produced no result; the
	// joined error always carries every node's failure.
	if rootErr != nil || result == nil || (len(errs) > 0 && !opts.tolerant()) {
		all := append([]error{rootErr}, errs...)
		return nil, fmt.Errorf("cluster: tree run failed: %w", errors.Join(all...))
	}
	for _, err := range errs {
		rec.nodeError(err)
	}
	result.FaultReport = rec.report()
	result.AttackReport = rec.attackReportTree(opts)
	if sink := opts.Telemetry; sink.Tracing() {
		sink.Emit("run_end",
			telemetry.Float("final_acc", result.FinalAcc),
			telemetry.Float("final_loss", result.FinalLoss))
	}
	return result, nil
}

// RunTreeNode executes one node of an N-tier deployment against ep: the
// tree counterpart of RunWorkerNode/RunEdgeNode/RunCloudNode for
// multi-process runs (cmd/flnode). level/idx address the node in
// opts.Topology (level topo.Depth()-1 is a training leaf; level 0 returns
// the run result, every other level returns nil on success).
func RunTreeNode(cfg *fl.Config, level, idx int, ep transport.Endpoint, opts Options) (*fl.Result, error) {
	opts = opts.withDefaults()
	if opts.Telemetry == nil {
		opts.Telemetry = cfg.Telemetry
	}
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if opts.Topology == nil {
		return nil, fmt.Errorf("cluster: RunTreeNode requires Options.Topology")
	}
	hn, err := fl.NewHarness(cfg)
	if err != nil {
		return nil, err
	}
	ts, err := newTreeSpec(cfg, opts)
	if err != nil {
		return nil, err
	}
	topo := ts.topo
	if level < 0 || level >= topo.Depth() || idx < 0 || idx >= topo.Width(level) {
		return nil, fmt.Errorf("cluster: no node at level %d index %d in topology %q", level, idx, topo)
	}
	rec := newFaultRecorder(opts.Telemetry)
	if level == topo.Depth()-1 {
		w := newTreeLeaf(cfg, ts, idx, hn.InitParams(), ep, opts)
		w.rec = rec
		return nil, w.run()
	}
	n := newTierNode(cfg, hn, ts, level, idx, hn.InitParams(), ep, opts)
	n.rec = rec
	res, err := n.run()
	if err != nil || res == nil {
		return nil, err
	}
	// Like RunCloudNode, a multi-process root only sees its own tier's
	// observations; lower tiers' faults live on their processes' sinks.
	res.FaultReport = rec.report()
	res.AttackReport = rec.attackReportTree(opts)
	return res, nil
}
