package cluster

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"hieradmo/internal/core"
	"hieradmo/internal/fl"
	"hieradmo/internal/membership"
	"hieradmo/internal/robust"
	"hieradmo/internal/telemetry"
	"hieradmo/internal/topology"
	"hieradmo/internal/transport"
)

// Network abstracts the transport factories the cluster can run over
// (transport.MemoryNetwork, transport.TCPNetwork, and transport.FaultyNetwork
// all satisfy it).
type Network interface {
	// Endpoint returns the endpoint for a node ID.
	Endpoint(id string) (transport.Endpoint, error)
	// Close tears the network down after the run.
	Close() error
}

// DefaultRecvTimeout bounds how long any node waits for a peer message
// before declaring the run failed; generous because workers legitimately
// compute for whole edge intervals between messages.
const DefaultRecvTimeout = 60 * time.Second

// Options tune the distributed run.
type Options struct {
	// Adaptive enables the γℓ adaptation of eq. (6)–(7); false runs
	// HierAdMo-R with the config's fixed GammaEdge.
	Adaptive bool
	// Signal selects the adaptation statistic (default core.SignalYSum).
	Signal core.AdaptSignal
	// Ceiling is the γℓ clamp (default core.DefaultClampCeiling).
	Ceiling float64
	// RecvTimeout bounds every blocking receive (default
	// DefaultRecvTimeout).
	RecvTimeout time.Duration
	// MinQuorum is the minimum fraction of reporters an aggregation needs
	// to proceed (applied at both tiers: workers per edge, edges at the
	// cloud). The default 1 keeps the strict fail-stop protocol: every
	// report is required and any loss surfaces as a timeout error. Values
	// in (0, 1) enable graceful degradation: aggregations proceed with the
	// survivors once the straggler deadline passes, renormalizing weights
	// over them exactly like the simulation's partial-participation path,
	// and nodes ride out lost messages instead of aborting.
	MinQuorum float64
	// StragglerDeadline is the grace period an aggregation grants
	// stragglers after its quorum is reached before proceeding without them
	// (default RecvTimeout; only meaningful with MinQuorum < 1).
	StragglerDeadline time.Duration
	// CheckpointDir enables crash recovery: every node persists its state
	// into this directory (one snapshot file family per node ID) after each
	// completed protocol unit — workers per edge interval, edges per
	// aggregation round, the cloud per sync. Empty disables checkpointing.
	CheckpointDir string
	// Resume restarts the run from the checkpoints in CheckpointDir: each
	// node reloads its newest valid generation and rejoins the protocol at
	// the position it had saved, replaying at most one interval of local
	// compute. Without Resume a run clears leftover generations and starts
	// fresh. Snapshots from a different config or algorithm setup are
	// refused (checkpoint.ErrMismatch).
	Resume bool
	// Interrupt, when non-nil, requests a graceful shutdown once it is
	// closed: every node stops at its next interruptible point, nodes with
	// checkpointing enabled leave their last completed snapshot behind, and
	// Run fails with an error wrapping ErrInterrupted. A later run with
	// Resume picks up from those snapshots.
	Interrupt <-chan struct{}
	// Telemetry, when non-nil, receives metrics and trace events from every
	// node and the transport layer (defaults to the config's Telemetry
	// sink). Cluster trace events carry the emitting node's ID; unlike the
	// single-threaded simulation their interleaving across nodes depends on
	// scheduling, so cluster traces are ordered (per-event seq) but not
	// byte-diffable between runs.
	Telemetry *telemetry.Sink

	// ChurnPlan schedules deterministic worker joins (after round 1) and
	// permanent leaves (before the final round). Nil or empty means no
	// planned churn. Distinct from crash/restart fault injection: churn is
	// part of the protocol — every node knows the plan, late joiners are
	// admitted with fresh state, and leavers retire after a final
	// aggregated report.
	ChurnPlan *membership.Plan
	// RetierEvery, when positive, re-clusters workers onto edges every
	// RetierEvery cloud syncs, by label-distribution distance with ties
	// broken by worker ID. Zero disables re-tiering.
	RetierEvery int
	// Migration selects how adaptive-γℓ edge momentum state migrates when
	// an edge's cohort changes (default membership.MigrateZero, matching
	// the paper's obtuse-angle reset semantics).
	Migration membership.MigrationPolicy
	// Clock injects the wall clock behind receive deadlines and straggler
	// grace windows (default: the system clock). Tests use a fake clock so
	// quorum-timing behavior doesn't depend on real sleep scaling.
	Clock Clock

	// AttackPlan injects deterministic Byzantine behaviour at the
	// worker-report boundary (sign-flip, scale, noise, stale-replay; see
	// internal/robust). Nil or empty attacks nobody. Attacks mutate what
	// compromised workers send, never their local training state, and
	// compose freely with transport fault plans and churn plans. Must
	// match across every node of a multi-process run.
	AttackPlan *robust.AttackPlan
	// EdgeAggregator selects the aggregation rule edges apply to worker
	// reports (default: plain weighted mean, the undefended HierAdMo
	// rule — bit-identical to pre-robust builds).
	EdgeAggregator robust.Spec
	// CloudAggregator selects the aggregation rule the cloud applies to
	// edge reports, independently of EdgeAggregator.
	CloudAggregator robust.Spec

	// Topology, when non-nil, runs the config over an N-tier aggregation
	// tree instead of the fixed cloud/edge/worker triple: per-level sync
	// periods, per-level aggregation rules, and per-level momentum come
	// from the spec (see internal/topology). The config's leaf shards
	// (cfg.Edges flattened in order) are regrouped under the tree's
	// fanout; its NumLeaves must equal cfg.NumWorkers(). Nil keeps the
	// original 3-tier runtime untouched — byte-identical traces,
	// checkpoints, and wire protocol. Tree runs do not yet compose with
	// dynamic membership (ChurnPlan/RetierEvery) or with the 3-tier
	// EdgeAggregator/CloudAggregator options (per-level rules live in the
	// spec instead).
	Topology *topology.Topology
}

// churnEnabled reports whether this run has dynamic membership: a non-empty
// churn plan or periodic re-tiering.
func (o Options) churnEnabled() bool {
	return (o.ChurnPlan != nil && !o.ChurnPlan.Empty()) || o.RetierEvery > 0
}

// robustEnabled reports whether this run departs from the undefended
// baseline: a non-empty attack plan or a non-mean aggregator at either
// tier. Baseline runs keep the original code paths (and checkpoint
// fingerprints) untouched.
func (o Options) robustEnabled() bool {
	return !o.AttackPlan.Empty() || o.EdgeAggregator.Robust() || o.CloudAggregator.Robust()
}

// attackerFor returns the attack executor for node, or nil when the
// run's plan never touches it (including plan-less runs).
func (o Options) attackerFor(node string, nvec, dim int) *robust.Attacker {
	if o.AttackPlan == nil {
		return nil
	}
	return o.AttackPlan.Attacker(node, nvec, dim)
}

// newAggregator builds a tier's robust aggregator, or nil for plain
// mean: the mean path keeps the tier's original WeightedSum arithmetic
// so undefended runs are byte-identical to pre-robust builds. Specs are
// vetted by Options.validate, so construction cannot fail here.
func newAggregator(s robust.Spec) robust.Aggregator {
	if !s.Robust() {
		return nil
	}
	agg, err := robust.New(s)
	if err != nil {
		return nil
	}
	return agg
}

func (o Options) withDefaults() Options {
	if o.Signal == 0 {
		o.Signal = core.SignalYSum
	}
	if o.Ceiling == 0 {
		o.Ceiling = core.DefaultClampCeiling
	}
	if o.RecvTimeout == 0 {
		o.RecvTimeout = DefaultRecvTimeout
	}
	if o.MinQuorum == 0 {
		o.MinQuorum = 1
	}
	if o.StragglerDeadline == 0 {
		o.StragglerDeadline = o.RecvTimeout
	}
	return o
}

func (o Options) validate() error {
	if o.MinQuorum < 0 || o.MinQuorum > 1 {
		return fmt.Errorf("cluster: MinQuorum %v outside (0, 1]", o.MinQuorum)
	}
	if o.StragglerDeadline < 0 || o.RecvTimeout < 0 {
		return fmt.Errorf("cluster: negative timeout")
	}
	if o.Resume && o.CheckpointDir == "" {
		return fmt.Errorf("cluster: Resume requires CheckpointDir")
	}
	if o.RetierEvery < 0 {
		return fmt.Errorf("cluster: negative RetierEvery")
	}
	if o.Migration < membership.MigrateZero || o.Migration > membership.MigrateRescale {
		return fmt.Errorf("cluster: unknown migration policy %d", o.Migration)
	}
	if err := o.AttackPlan.Validate(); err != nil {
		return err
	}
	if err := o.EdgeAggregator.Validate(); err != nil {
		return fmt.Errorf("cluster: edge aggregator: %w", err)
	}
	if err := o.CloudAggregator.Validate(); err != nil {
		return fmt.Errorf("cluster: cloud aggregator: %w", err)
	}
	if o.Topology != nil {
		if o.churnEnabled() {
			return fmt.Errorf("cluster: Topology does not compose with dynamic membership")
		}
		if o.EdgeAggregator.Robust() || o.CloudAggregator.Robust() {
			return fmt.Errorf("cluster: Topology runs configure aggregation per level in the spec, not via Edge/CloudAggregator")
		}
	}
	return nil
}

// tolerant reports whether graceful degradation is enabled (quorum below
// the full cohort): nodes ride out timeouts and the run survives dropouts.
func (o Options) tolerant() bool { return o.MinQuorum < 1 }

// quorumCount converts a quorum fraction into the minimum reporter count
// out of n cohort members (always at least 1).
func quorumCount(frac float64, n int) int {
	q := int(math.Ceil(frac*float64(n) - 1e-9))
	if q < 1 {
		q = 1
	}
	if q > n {
		q = n
	}
	return q
}

// Run executes HierAdMo over the given network: it spawns one node per
// worker, edge, and cloud, runs the full T iterations, and returns the
// cloud's result. The network is closed before returning.
//
// With the default strict options any lost message fails the run with every
// node error joined. With MinQuorum < 1 the run instead degrades gracefully:
// aggregations proceed with a quorum of survivors after the straggler
// deadline and every tolerated fault is recorded in the result's
// FaultReport.
func Run(cfg *fl.Config, net Network, opts Options) (*fl.Result, error) {
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if opts.Telemetry == nil {
		opts.Telemetry = cfg.Telemetry
	}
	if opts.Topology != nil {
		return runTree(cfg, net, opts)
	}
	hn, err := fl.NewHarness(cfg)
	if err != nil {
		return nil, err
	}
	memb, err := newMembership(*cfg, opts)
	if err != nil {
		return nil, err
	}
	defer net.Close()
	// Let the transport count its own faults (drops, delays, retries) live
	// on the sink; mergeTransport below only touches the FaultReport.
	if ts, ok := net.(transport.TelemetrySetter); ok {
		ts.SetTelemetry(opts.Telemetry)
	}

	// Create every endpoint before any node starts (TCP needs all
	// addresses registered up front).
	cloudEP, err := net.Endpoint(CloudID)
	if err != nil {
		return nil, fmt.Errorf("cluster: cloud endpoint: %w", err)
	}
	edgeEPs := make([]transport.Endpoint, cfg.NumEdges())
	workerEPs := make([][]transport.Endpoint, cfg.NumEdges())
	for l := range cfg.Edges {
		if edgeEPs[l], err = net.Endpoint(EdgeID(l)); err != nil {
			return nil, fmt.Errorf("cluster: edge %d endpoint: %w", l, err)
		}
		workerEPs[l] = make([]transport.Endpoint, len(cfg.Edges[l]))
		for i := range cfg.Edges[l] {
			if workerEPs[l][i], err = net.Endpoint(WorkerID(l, i)); err != nil {
				return nil, fmt.Errorf("cluster: worker {%d,%d} endpoint: %w", i, l, err)
			}
		}
	}

	x0 := hn.InitParams()
	rec := newFaultRecorder(opts.Telemetry)
	if sink := opts.Telemetry; sink.Tracing() {
		sink.Emit("run_start",
			telemetry.String("alg", "HierAdMo/cluster"),
			telemetry.Int("edges", cfg.NumEdges()),
			telemetry.Int("workers", cfg.NumWorkers()),
			telemetry.Int("tau", cfg.Tau),
			telemetry.Int("pi", cfg.Pi),
			telemetry.Int("T", cfg.T),
			telemetry.Int64("seed", int64(cfg.Seed)))
	}

	var (
		wg     sync.WaitGroup
		mu     sync.Mutex
		errs   []error
		result *fl.Result
	)
	fail := func(err error) {
		if err == nil {
			return
		}
		mu.Lock()
		errs = append(errs, err)
		mu.Unlock()
	}

	// runDone closes once the cloud has produced its verdict; it bounds the
	// lifetime of respawned workers so a restarted node that has nothing
	// left to do can never outlive the run.
	runDone := make(chan struct{})
	rv, _ := net.(reviver)

	for l := range cfg.Edges {
		for i := range cfg.Edges[l] {
			w := newWorkerNode(cfg, hn, l, i, x0, workerEPs[l][i], opts)
			w.rec = rec
			w.memb = memb
			done := make(chan struct{})
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer close(done)
				fail(w.run())
			}()
			if rv == nil || !opts.tolerant() || !rv.RestartPlanned(WorkerID(l, i)) {
				continue
			}
			// Supervisor: once the original incarnation has died AND the
			// fault plan's outage window has ended, respawn the worker from
			// its checkpoint (Resume). It reloads its last snapshot — or
			// starts from x⁰ when it crashed before ever saving — re-sends
			// its stale report, and rejoins through the stale-rejection and
			// fast-forward resync machinery like any straggler.
			wg.Add(1)
			go func(l, i int, ep transport.Endpoint, done <-chan struct{}) {
				defer wg.Done()
				<-done
				for !rv.Revived(WorkerID(l, i)) {
					select {
					case <-runDone:
						return // run finished before the outage ended
					case <-time.After(5 * time.Millisecond):
					}
				}
				ropts := opts
				ropts.Resume = opts.CheckpointDir != ""
				ropts.Interrupt = mergeInterrupt(opts.Interrupt, runDone)
				rw := newWorkerNode(cfg, hn, l, i, x0, ep, ropts)
				rw.rec = rec
				rw.memb = memb
				if err := rw.run(); err != nil && !errors.Is(err, ErrInterrupted) {
					// An interrupt here just means the run ended while the
					// respawned worker was still catching up — expected, not
					// a fault.
					fail(err)
				}
			}(l, i, workerEPs[l][i], done)
		}
		e := newEdgeNode(cfg, hn, l, x0, edgeEPs[l], opts)
		e.rec = rec
		e.memb = memb
		wg.Add(1)
		go func() {
			defer wg.Done()
			fail(e.run())
		}()
	}

	c := newCloudNode(cfg, hn, x0, cloudEP, opts)
	c.rec = rec
	c.memb = memb
	var cloudErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		res, err := c.run()
		mu.Lock()
		result, cloudErr = res, err
		mu.Unlock()
		close(runDone)
	}()

	wg.Wait()
	for _, ep := range flattenEndpoints(cloudEP, edgeEPs, workerEPs) {
		if cerr := ep.Close(); cerr != nil {
			fail(fmt.Errorf("cluster: close %s: %w", ep.ID(), cerr))
		}
	}
	if sr, ok := net.(transport.StatsReporter); ok {
		rec.mergeTransport(sr.FaultStats())
	}
	mu.Lock()
	defer mu.Unlock()
	// Strict mode fails on any node error; tolerant mode fails only when
	// the cloud could not produce a result. Either way the joined error
	// carries every node's failure so the root cause is never masked by the
	// cascade of downstream timeouts.
	if cloudErr != nil || result == nil || (len(errs) > 0 && !opts.tolerant()) {
		all := append([]error{cloudErr}, errs...)
		return nil, fmt.Errorf("cluster: run failed: %w", errors.Join(all...))
	}
	// Tolerated dropouts become part of the fault report instead.
	for _, err := range errs {
		rec.nodeError(err)
	}
	result.FaultReport = rec.report()
	result.Membership = memb.flReport()
	result.AttackReport = rec.attackReport(opts)
	if sink := opts.Telemetry; sink.Tracing() {
		sink.Emit("run_end",
			telemetry.Float("final_acc", result.FinalAcc),
			telemetry.Float("final_loss", result.FinalLoss))
	}
	return result, nil
}

func flattenEndpoints(cloud transport.Endpoint, edges []transport.Endpoint, workers [][]transport.Endpoint) []transport.Endpoint {
	out := []transport.Endpoint{cloud}
	out = append(out, edges...)
	for _, ws := range workers {
		out = append(out, ws...)
	}
	return out
}
