package cluster

import (
	"fmt"
	"sync"
	"time"

	"hieradmo/internal/core"
	"hieradmo/internal/fl"
	"hieradmo/internal/transport"
)

// Network abstracts the transport factories the cluster can run over
// (transport.MemoryNetwork and transport.TCPNetwork both satisfy it).
type Network interface {
	// Endpoint returns the endpoint for a node ID.
	Endpoint(id string) (transport.Endpoint, error)
	// Close tears the network down after the run.
	Close() error
}

// DefaultRecvTimeout bounds how long any node waits for a peer message
// before declaring the run failed; generous because workers legitimately
// compute for whole edge intervals between messages.
const DefaultRecvTimeout = 60 * time.Second

// Options tune the distributed run.
type Options struct {
	// Adaptive enables the γℓ adaptation of eq. (6)–(7); false runs
	// HierAdMo-R with the config's fixed GammaEdge.
	Adaptive bool
	// Signal selects the adaptation statistic (default core.SignalYSum).
	Signal core.AdaptSignal
	// Ceiling is the γℓ clamp (default core.DefaultClampCeiling).
	Ceiling float64
	// RecvTimeout bounds every blocking receive (default
	// DefaultRecvTimeout).
	RecvTimeout time.Duration
}

func (o Options) withDefaults() Options {
	if o.Signal == 0 {
		o.Signal = core.SignalYSum
	}
	if o.Ceiling == 0 {
		o.Ceiling = core.DefaultClampCeiling
	}
	if o.RecvTimeout == 0 {
		o.RecvTimeout = DefaultRecvTimeout
	}
	return o
}

// Run executes HierAdMo over the given network: it spawns one node per
// worker, edge, and cloud, runs the full T iterations, and returns the
// cloud's result. The network is closed before returning.
func Run(cfg *fl.Config, net Network, opts Options) (*fl.Result, error) {
	opts = opts.withDefaults()
	hn, err := fl.NewHarness(cfg)
	if err != nil {
		return nil, err
	}
	defer net.Close()

	// Create every endpoint before any node starts (TCP needs all
	// addresses registered up front).
	cloudEP, err := net.Endpoint(CloudID)
	if err != nil {
		return nil, fmt.Errorf("cluster: cloud endpoint: %w", err)
	}
	edgeEPs := make([]transport.Endpoint, cfg.NumEdges())
	workerEPs := make([][]transport.Endpoint, cfg.NumEdges())
	for l := range cfg.Edges {
		if edgeEPs[l], err = net.Endpoint(EdgeID(l)); err != nil {
			return nil, fmt.Errorf("cluster: edge %d endpoint: %w", l, err)
		}
		workerEPs[l] = make([]transport.Endpoint, len(cfg.Edges[l]))
		for i := range cfg.Edges[l] {
			if workerEPs[l][i], err = net.Endpoint(WorkerID(l, i)); err != nil {
				return nil, fmt.Errorf("cluster: worker {%d,%d} endpoint: %w", i, l, err)
			}
		}
	}

	x0 := hn.InitParams()

	var (
		wg     sync.WaitGroup
		mu     sync.Mutex
		errs   []error
		result *fl.Result
	)
	fail := func(err error) {
		if err == nil {
			return
		}
		mu.Lock()
		errs = append(errs, err)
		mu.Unlock()
	}

	for l := range cfg.Edges {
		for i := range cfg.Edges[l] {
			w := newWorkerNode(cfg, hn, l, i, x0, workerEPs[l][i], opts)
			wg.Add(1)
			go func() {
				defer wg.Done()
				fail(w.run())
			}()
		}
		e := newEdgeNode(cfg, hn, l, x0, edgeEPs[l], opts)
		wg.Add(1)
		go func() {
			defer wg.Done()
			fail(e.run())
		}()
	}

	c := newCloudNode(cfg, hn, x0, cloudEP, opts)
	wg.Add(1)
	go func() {
		defer wg.Done()
		res, err := c.run()
		if err != nil {
			fail(err)
			return
		}
		mu.Lock()
		result = res
		mu.Unlock()
	}()

	wg.Wait()
	for _, ep := range flattenEndpoints(cloudEP, edgeEPs, workerEPs) {
		if cerr := ep.Close(); cerr != nil {
			fail(fmt.Errorf("cluster: close %s: %w", ep.ID(), cerr))
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if len(errs) > 0 {
		return nil, fmt.Errorf("cluster: run failed: %w", errs[0])
	}
	return result, nil
}

func flattenEndpoints(cloud transport.Endpoint, edges []transport.Endpoint, workers [][]transport.Endpoint) []transport.Endpoint {
	out := []transport.Endpoint{cloud}
	out = append(out, edges...)
	for _, ws := range workers {
		out = append(out, ws...)
	}
	return out
}
