package cluster

import (
	"sync"
	"testing"
	"time"

	"hieradmo/internal/fl"
	"hieradmo/internal/transport"
)

// stepClock is a deterministic Clock: every Now() call advances virtual
// time by a fixed step. Quorum-timing tests drive deadline arithmetic with
// it instead of scaling real sleeps.
type stepClock struct {
	mu   sync.Mutex
	t    time.Time
	step time.Duration
}

func (c *stepClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(c.step)
	return c.t
}

// TestEdgeStragglerDeadlineUsesInjectedClock: with hour-scale RecvTimeout
// and StragglerDeadline on a fake clock that jumps 90 minutes per reading,
// a quorum-satisfied collect must forfeit its straggler near-instantly in
// real time — proof the deadlines run on Options.Clock, not time.Now.
func TestEdgeStragglerDeadlineUsesInjectedClock(t *testing.T) {
	cfg := buildConfig(t, 61, 0)
	hn, err := fl.NewHarness(cfg)
	if err != nil {
		t.Fatal(err)
	}
	net := transport.NewMemoryNetwork()
	defer net.Close()
	edgeEP, err := net.Endpoint(EdgeID(0))
	if err != nil {
		t.Fatal(err)
	}
	w0, err := net.Endpoint(WorkerID(0, 0))
	if err != nil {
		t.Fatal(err)
	}

	clk := &stepClock{t: time.Unix(0, 0), step: 90 * time.Minute}
	opts := Options{
		MinQuorum:         0.5,
		RecvTimeout:       time.Hour,
		StragglerDeadline: time.Hour,
		Clock:             clk,
	}.withDefaults()
	x0 := hn.InitParams()
	e := newEdgeNode(cfg, hn, 0, x0, edgeEP, opts)
	e.rec = newFaultRecorder(nil)

	v := x0.Clone()
	msg := transport.Message{
		Kind:    KindEdgeReport,
		Round:   cfg.Tau,
		Vectors: [][]float64{v, v.Clone(), v.Clone(), v.Clone()},
		Scalars: map[string]float64{ScalarLoss: 1},
	}
	if err := w0.Send(EdgeID(0), msg); err != nil {
		t.Fatal(err)
	}

	start := time.Now()
	reports, idx, adopted, err := e.collectReports(1)
	if err != nil {
		t.Fatal(err)
	}
	if adopted != 0 {
		t.Fatalf("adopted = %d, want 0", adopted)
	}
	if len(idx) != 1 || idx[0] != 0 {
		t.Fatalf("reporter indices = %v, want just worker 0", idx)
	}
	if len(reports[0].Vectors) == 0 {
		t.Fatal("worker 0's report was not admitted")
	}
	if real := time.Since(start); real > 5*time.Second {
		t.Fatalf("straggler forfeit took %v of real time; deadlines are not on the injected clock", real)
	}
}
