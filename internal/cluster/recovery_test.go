package cluster

import (
	"errors"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"hieradmo/internal/checkpoint"
	"hieradmo/internal/core"
	"hieradmo/internal/dataset"
	"hieradmo/internal/fl"
	"hieradmo/internal/model"
	"hieradmo/internal/transport"
)

func TestRecoveryOptionsValidate(t *testing.T) {
	if err := (Options{Resume: true}).withDefaults().validate(); err == nil {
		t.Error("Resume without CheckpointDir accepted")
	}
	if err := (Options{Resume: true, CheckpointDir: t.TempDir()}).withDefaults().validate(); err != nil {
		t.Errorf("valid resume options rejected: %v", err)
	}
}

func TestPendingStashRoundtrip(t *testing.T) {
	const dim = 3
	v := func(base float64) []float64 { return []float64{base, base + 1, base + 2} }
	msgs := []transport.Message{
		{
			From: WorkerID(0, 2), Kind: KindEdgeReport, Round: 6,
			Vectors: [][]float64{v(1), v(10), v(20), v(30)},
			Scalars: map[string]float64{ScalarLoss: 0.5},
		},
		{From: "bogus", Kind: KindEdgeReport, Round: 6, Vectors: [][]float64{v(0), v(0), v(0), v(0)}},
		{From: WorkerID(0, 1), Kind: KindEdgeReport, Round: 8, Vectors: [][]float64{v(2), v(3)}}, // wrong arity
		{
			From: WorkerID(0, 0), Kind: KindEdgeReport, Round: 8,
			Vectors: [][]float64{v(4), v(5), v(6), v(7)},
			Scalars: map[string]float64{ScalarLoss: 1.25},
		},
	}
	flat := encodePending(msgs, 4, dim, parseWorkerIndex)
	// Two well-formed records survive; the malformed sender and wrong-arity
	// messages are dropped, as admission would drop them after a resume.
	if wantLen := 2 * (3 + 4*dim); len(flat) != wantLen {
		t.Fatalf("encoded length %d, want %d", len(flat), wantLen)
	}
	out, err := decodePending(flat, 4, dim, KindEdgeReport, func(i int) string { return WorkerID(0, i) })
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("decoded %d messages, want 2", len(out))
	}
	if out[0].From != WorkerID(0, 2) || out[0].Round != 6 || out[0].Scalars[ScalarLoss] != 0.5 {
		t.Errorf("first record = %+v", out[0])
	}
	if out[1].From != WorkerID(0, 0) || out[1].Round != 8 || out[1].Scalars[ScalarLoss] != 1.25 {
		t.Errorf("second record = %+v", out[1])
	}
	for r, msg := range out {
		if msg.Kind != KindEdgeReport || len(msg.Vectors) != 4 {
			t.Fatalf("record %d malformed: %+v", r, msg)
		}
	}
	if out[0].Vectors[3][1] != 31 || out[1].Vectors[0][2] != 6 {
		t.Errorf("vector payloads scrambled: %v / %v", out[0].Vectors[3], out[1].Vectors[0])
	}

	if _, err := decodePending(flat[:len(flat)-1], 4, dim, KindEdgeReport, EdgeID); err == nil {
		t.Error("truncated stash accepted")
	}
	bad := append([]float64(nil), flat...)
	bad[0] = 6.5 // non-integral round
	if _, err := decodePending(bad, 4, dim, KindEdgeReport, EdgeID); err == nil {
		t.Error("non-integral round accepted")
	}
}

// TestClusterInterruptResume is the graceful-shutdown acceptance test: a run
// interrupted mid-flight must fail with a wrapped ErrInterrupted, leave
// resumable snapshots behind, and — because nodes snapshot only settled
// per-round state and replay the tail interval deterministically — a resumed
// run must finish with results bit-identical to a never-interrupted run.
func TestClusterInterruptResume(t *testing.T) {
	cfg := buildConfig(t, 101, 0)
	cfg.T = 48
	dir := t.TempDir()
	opts := Options{Adaptive: true, CheckpointDir: dir}

	ref, err := Run(cfg, transport.NewMemoryNetwork(), Options{Adaptive: true})
	if err != nil {
		t.Fatal(err)
	}

	// Interrupt as soon as any node has written a snapshot. Sender-side
	// delays stretch the run so the shutdown lands mid-protocol, not at the
	// finish line.
	interrupt := make(chan struct{})
	stop := make(chan struct{})
	var watch sync.WaitGroup
	watch.Add(1)
	go func() {
		defer watch.Done()
		for {
			select {
			case <-stop:
				return
			case <-time.After(2 * time.Millisecond):
			}
			if files, _ := filepath.Glob(filepath.Join(dir, "*.ckpt")); len(files) > 0 {
				close(interrupt)
				return
			}
		}
	}()
	iopts := opts
	iopts.Interrupt = interrupt
	net := transport.NewFaultyNetwork(transport.NewMemoryNetwork(),
		transport.FaultPlan{Seed: 4, MaxDelay: 2 * time.Millisecond})
	_, err = Run(cfg, net, iopts)
	close(stop)
	watch.Wait()
	if err == nil {
		t.Fatal("interrupted run succeeded; the shutdown request was ignored")
	}
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("interrupted run failed with %v, want wrapped ErrInterrupted", err)
	}
	if files, _ := filepath.Glob(filepath.Join(dir, "*.ckpt")); len(files) == 0 {
		t.Fatal("interrupted run left no snapshots behind")
	}

	ropts := opts
	ropts.Resume = true
	res, err := Run(cfg, transport.NewMemoryNetwork(), ropts)
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalAcc != ref.FinalAcc || res.FinalLoss != ref.FinalLoss {
		t.Errorf("resumed run %v/%v != uninterrupted run %v/%v (must be bit-identical)",
			res.FinalAcc, res.FinalLoss, ref.FinalAcc, ref.FinalLoss)
	}
	if len(res.Curve) != len(ref.Curve) {
		t.Fatalf("resumed curve has %d points, reference %d", len(res.Curve), len(ref.Curve))
	}
	for i := range res.Curve {
		if res.Curve[i] != ref.Curve[i] {
			t.Errorf("curve point %d: resumed %+v != reference %+v", i, res.Curve[i], ref.Curve[i])
		}
	}

	// Resuming under different algorithm options must be refused: those
	// snapshots belong to a different trajectory. Checked after the good
	// resume, when every node has a snapshot to mismatch against instantly.
	// Against the interrupted run's partial snapshot set, a subtree whose
	// nodes all missed their first save can complete a round and overwrite
	// good snapshots with wrong-options ones before the refusal propagates.
	wrong := opts
	wrong.Resume = true
	wrong.Ceiling = 0.5
	wrong.RecvTimeout = deadlineScale * 500 * time.Millisecond
	if _, err := Run(cfg, transport.NewMemoryNetwork(), wrong); !errors.Is(err, checkpoint.ErrMismatch) {
		t.Fatalf("resume under changed options = %v, want wrapped checkpoint.ErrMismatch", err)
	}
}

// buildRecoveryConfig is a single-edge three-worker topology sized for the
// crash/restart equivalence test: cloud sync every edge round, two rounds
// total, so a crashed worker's outage can span the whole run and its revival
// can land exactly on the final redistribution.
func buildRecoveryConfig(t *testing.T, seed uint64) *fl.Config {
	t.Helper()
	genCfg := dataset.GenConfig{
		Name:          "toy",
		Shape:         dataset.Shape{C: 1, H: 5, W: 5},
		NumClasses:    4,
		TemplateScale: 1.0,
		NoiseStd:      0.6,
		SmoothPasses:  1,
	}
	g, err := dataset.NewGenerator(genCfg, seed)
	if err != nil {
		t.Fatal(err)
	}
	train, test := g.TrainTest(240, 60, seed+1)
	shards, err := dataset.PartitionIID(train, 3, seed+2)
	if err != nil {
		t.Fatal(err)
	}
	hier, err := dataset.Hierarchy(shards, []int{3})
	if err != nil {
		t.Fatal(err)
	}
	m, err := model.NewLogisticRegression(genCfg.Shape, genCfg.NumClasses)
	if err != nil {
		t.Fatal(err)
	}
	return &fl.Config{
		Model: m, Edges: hier, Test: test,
		Eta: 0.05, Gamma: 0.5, GammaEdge: 0.5,
		Tau: 2, Pi: 1, T: 4, BatchSize: 8, Seed: seed,
	}
}

// TestClusterCrashRestartMatchesParticipation is the crash-recovery
// bit-equivalence acceptance test: a worker that crashes before its first
// report and revives exactly at the final redistribution leaves the same
// surviving cohort in force for the whole run as the matched
// WithParticipation simulation, so the final model must be bit-identical.
// The revival is pinned to the last round deliberately — a worker that
// rejoins mid-run re-enters from adopted cloud state while a simulation
// non-participant trains through the outage, so earlier revivals cannot be
// exact.
func TestClusterCrashRestartMatchesParticipation(t *testing.T) {
	// Seed 3 samples cohort {0, 2} in both rounds (asserted below), leaving
	// worker 1 as the simulation's non-participant and our crash target.
	cfg := buildRecoveryConfig(t, 3)
	const frac = 2.0 / 3
	sched := core.ParticipationSchedule(cfg.Seed, frac, []int{3}, 2)
	for k := range sched {
		c := sched[k][0]
		if len(c) != 2 || c[0] != 0 || c[1] != 2 {
			t.Fatalf("round %d cohort = %v, want [0 2]; the seed no longer matches the RNG", k, c)
		}
	}

	ref, err := core.New(core.WithParticipation(frac)).Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	down := WorkerID(0, 1)
	net := transport.NewFaultyNetwork(transport.NewMemoryNetwork(), transport.FaultPlan{
		Seed:               1,
		CrashAtRound:       map[string]int{down: 2},
		RestartAfterRounds: map[string]int{down: 2}, // back for round 4, the final redistribution
	})
	res, err := Run(cfg, net, Options{
		Adaptive:          true,
		MinQuorum:         frac,
		StragglerDeadline: deadlineScale * 100 * time.Millisecond,
		RecvTimeout:       deadlineScale * 2 * time.Second,
		CheckpointDir:     t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalAcc != ref.FinalAcc {
		t.Errorf("crash/restart cluster FinalAcc %v != participation simulation %v (must be bit-identical)",
			res.FinalAcc, ref.FinalAcc)
	}
	rep := res.FaultReport
	if rep == nil {
		t.Fatal("no fault report after a crash/restart run")
	}
	if len(rep.Crashed) != 1 || rep.Crashed[0] != down {
		t.Errorf("Crashed = %v, want [%s]", rep.Crashed, down)
	}
	if len(rep.Restarted) != 1 || rep.Restarted[0] != down {
		t.Errorf("Restarted = %v, want [%s]", rep.Restarted, down)
	}
}

// TestClusterWorkerRestartRejoins exercises the full in-process recovery
// path: a worker with two snapshots behind it is crashed mid-run, the fault
// plan revives it a few rounds later, and the supervisor must respawn it from
// its checkpoint so it replays its lost interval, fast-forwards through the
// missed rounds, rejoins the cohort, and the run completes and still learns.
func TestClusterWorkerRestartRejoins(t *testing.T) {
	cfg := buildChaosConfig(t, 103)
	down := WorkerID(0, 1)
	net := transport.NewFaultyNetwork(transport.NewMemoryNetwork(), transport.FaultPlan{
		Seed:               5,
		CrashAtRound:       map[string]int{down: 6},
		RestartAfterRounds: map[string]int{down: 4}, // outage [6, 10): misses rounds 6 and 8
	})
	res, err := Run(cfg, net, Options{
		Adaptive:          true,
		MinQuorum:         0.5,
		StragglerDeadline: deadlineScale * 100 * time.Millisecond,
		RecvTimeout:       deadlineScale * 2 * time.Second,
		CheckpointDir:     t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}

	hn, err := fl.NewHarness(cfg)
	if err != nil {
		t.Fatal(err)
	}
	baseline, err := model.Accuracy(cfg.Model, hn.InitParams(), cfg.Test)
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalAcc <= baseline {
		t.Errorf("restart run FinalAcc %v did not beat untrained baseline %v", res.FinalAcc, baseline)
	}

	rep := res.FaultReport
	if rep == nil {
		t.Fatal("no fault report after a restart run")
	}
	if len(rep.Crashed) != 1 || rep.Crashed[0] != down {
		t.Errorf("Crashed = %v, want [%s]", rep.Crashed, down)
	}
	if len(rep.Restarted) != 1 || rep.Restarted[0] != down {
		t.Errorf("Restarted = %v, want [%s]", rep.Restarted, down)
	}
	if len(rep.NodeErrors) != 1 {
		t.Errorf("NodeErrors = %v, want only the crashed incarnation's error", rep.NodeErrors)
	}
	// The respawned incarnation replays its lost interval and re-sends the
	// report for the round it died in; the edge, rounds ahead by then, must
	// reject that replayed report as stale.
	if rep.StaleMessages == 0 {
		t.Error("no stale messages recorded; the respawned worker's replayed report vanished")
	}
	if rep.TotalMissingWorkers() == 0 {
		t.Error("no missing-worker rounds recorded during the outage")
	}
}
