package cluster

import (
	"bytes"
	"fmt"
	"sort"
	"sync"
	"testing"

	"hieradmo/internal/fl"
	"hieradmo/internal/membership"
	"hieradmo/internal/robust"
	"hieradmo/internal/telemetry"
	"hieradmo/internal/transport"
)

// byzPlan parses an inline attack spec under a fixed seed.
func byzPlan(t *testing.T, spec string) *robust.AttackPlan {
	t.Helper()
	plan, err := robust.ParsePlan(spec, 7)
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

func sameResult(t *testing.T, name string, res, ref *fl.Result) {
	t.Helper()
	if res.FinalAcc != ref.FinalAcc || res.FinalLoss != ref.FinalLoss {
		t.Errorf("%s: %v/%v != reference %v/%v (must be bit-identical)",
			name, res.FinalAcc, res.FinalLoss, ref.FinalAcc, ref.FinalLoss)
	}
	if len(res.Curve) != len(ref.Curve) {
		t.Fatalf("%s: curve has %d points, reference %d", name, len(res.Curve), len(ref.Curve))
	}
	for i := range res.Curve {
		if res.Curve[i] != ref.Curve[i] {
			t.Errorf("%s: curve point %d %+v != %+v", name, i, res.Curve[i], ref.Curve[i])
		}
	}
}

// TestClusterEmptyAttackPlanIsBaseline pins the PR's central compatibility
// contract: an empty attack plan with mean aggregation at both tiers is
// not a Byzantine run at all — the robust layer must stay fully disabled
// (nil attack report, nil aggregators, original WeightedSum code path),
// leaving the run bit-identical to plain options.
func TestClusterEmptyAttackPlanIsBaseline(t *testing.T) {
	opts := Options{Adaptive: true, AttackPlan: &robust.AttackPlan{}}
	if opts.robustEnabled() {
		t.Fatal("empty plan with mean aggregators counts as robust-enabled")
	}
	if opts.attackerFor(WorkerID(0, 0), 4, 8) != nil {
		t.Fatal("empty plan built an attacker")
	}
	if a := newAggregator(opts.EdgeAggregator); a != nil {
		t.Fatalf("mean spec built aggregator %v", a)
	}

	cfg := buildConfig(t, 31, 2)
	res, err := Run(cfg, transport.NewMemoryNetwork(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.AttackReport != nil {
		t.Fatalf("baseline run carries attack report %+v", res.AttackReport)
	}
	ref, err := Run(cfg, transport.NewMemoryNetwork(), Options{Adaptive: true})
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "empty-plan", res, ref)
}

// attackEvents canonicalizes a trace's attack_inject lines into sorted
// node@t:kind tuples. Worker goroutines emit concurrently, so the event
// ORDER in a cluster trace varies with scheduling — but the SET of
// injections is part of the deterministic trajectory and must match
// exactly across reruns, pool sizes, and transports.
func attackEvents(t *testing.T, buf *bytes.Buffer) []string {
	t.Helper()
	events, err := telemetry.ReadTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, ev := range events {
		if ev.Ev != "attack_inject" {
			continue
		}
		out = append(out, fmt.Sprintf("%v@%v:%v",
			ev.Fields["node"], ev.Fields["t"], ev.Fields["kind"]))
	}
	sort.Strings(out)
	return out
}

// TestClusterAttackDeterministic is the golden-trace acceptance test: a
// fixed attack plan under the undefended mean aggregator must produce
// bit-identical results and the identical injection set across reruns,
// worker pool sizes 1/2/8, and the memory and TCP transports.
func TestClusterAttackDeterministic(t *testing.T) {
	cfg := buildConfig(t, 61, 2)
	spec := "signflip:worker-0-1@2,noise:worker-1-0@3-5=0.5,replay:worker-1-1@4"
	attacked := func(netf func() Network) (*fl.Result, []string, error) {
		var buf bytes.Buffer
		tr := telemetry.NewTracer(&buf)
		res, err := Run(cfg, netf(), Options{
			Adaptive:   true,
			Telemetry:  telemetry.New(nil, tr),
			AttackPlan: byzPlan(t, spec),
		})
		if err != nil {
			return nil, nil, err
		}
		if err := tr.Flush(); err != nil {
			return nil, nil, err
		}
		return res, attackEvents(t, &buf), nil
	}
	memory := func() Network { return transport.NewMemoryNetwork() }

	ref, refEvents, err := attacked(memory)
	if err != nil {
		t.Fatal(err)
	}
	rep := ref.AttackReport
	if rep == nil {
		t.Fatal("attacked run returned no attack report")
	}
	// k runs 1..12 here: signflip from 2 → 11 hits, noise 3-5 → 3 hits,
	// replay from 4 → 9 hits (its first window boundary stashes round 3's
	// honest report, so every window round re-sends and counts).
	want := map[string]int{"signflip": 11, "noise": 3, "replay": 9}
	for kind, n := range want {
		if rep.Injected[kind] != n {
			t.Errorf("injected[%s] = %d, want %d", kind, rep.Injected[kind], n)
		}
	}
	if len(refEvents) != rep.TotalInjected() {
		t.Fatalf("trace has %d attack_inject events, report says %d injections",
			len(refEvents), rep.TotalInjected())
	}

	same := func(name string, res *fl.Result, events []string) {
		t.Helper()
		sameResult(t, name, res, ref)
		if len(events) != len(refEvents) {
			t.Fatalf("%s: %d attack events, reference %d", name, len(events), len(refEvents))
		}
		for i := range events {
			if events[i] != refEvents[i] {
				t.Errorf("%s: attack event %d %q != reference %q", name, i, events[i], refEvents[i])
			}
		}
	}

	rerun, events, err := attacked(memory)
	if err != nil {
		t.Fatal(err)
	}
	same("rerun", rerun, events)

	for _, workers := range []int{1, 2, 8} {
		cfg.Workers = workers
		res, events, err := attacked(memory)
		if err != nil {
			t.Fatal(err)
		}
		same(fmt.Sprintf("workers=%d", workers), res, events)
	}
	cfg.Workers = 0

	tcp, events, err := attacked(func() Network { return transport.NewTCPNetwork() })
	if err != nil {
		t.Fatal(err)
	}
	same("tcp", tcp, events)
}

// TestClusterAttackAcrossProcessEntryPoints replays a Byzantine scenario
// through the per-role multi-process entry points (static TCP registry,
// every role its own config and harness) and checks bit-equality with the
// single-process run — the attack RNG and aggregator state are pure
// functions of the shared flags, never of process layout.
func TestClusterAttackAcrossProcessEntryPoints(t *testing.T) {
	cfg := buildConfig(t, 107, 2)
	opts := Options{
		Adaptive:        true,
		AttackPlan:      byzPlan(t, "signflip:worker-0-1@2,noise:worker-1-0@3-5=0.5"),
		EdgeAggregator:  robust.Spec{Kind: robust.Median},
		CloudAggregator: robust.Spec{Kind: robust.Median},
	}
	ref, err := Run(cfg, transport.NewMemoryNetwork(), opts)
	if err != nil {
		t.Fatal(err)
	}

	ids := []string{CloudID, EdgeID(0), EdgeID(1),
		WorkerID(0, 0), WorkerID(0, 1), WorkerID(1, 0), WorkerID(1, 1)}
	ports := freePorts(t, len(ids))
	registry := make(map[string]string, len(ids))
	for i, id := range ids {
		registry[id] = ports[i]
	}
	var (
		wg     sync.WaitGroup
		mu     sync.Mutex
		errs   []error
		result = make(chan *fl.Result, 1)
	)
	fail := func(err error) {
		if err == nil {
			return
		}
		mu.Lock()
		errs = append(errs, err)
		mu.Unlock()
	}
	for l := 0; l < 2; l++ {
		for i := 0; i < 2; i++ {
			l, i := l, i
			ep, err := transport.ListenStatic(WorkerID(l, i), registry)
			if err != nil {
				t.Fatal(err)
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer ep.Close()
				fail(RunWorkerNode(cfg, l, i, ep, opts))
			}()
		}
		l := l
		ep, err := transport.ListenStatic(EdgeID(l), registry)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer ep.Close()
			fail(RunEdgeNode(cfg, l, ep, opts))
		}()
	}
	cloudEP, err := transport.ListenStatic(CloudID, registry)
	if err != nil {
		t.Fatal(err)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer cloudEP.Close()
		res, err := RunCloudNode(cfg, cloudEP, opts)
		fail(err)
		result <- res
	}()
	wg.Wait()
	mu.Lock()
	for _, err := range errs {
		t.Error(err)
	}
	mu.Unlock()
	res := <-result
	if res == nil {
		t.Fatal("cloud node returned no result")
	}
	sameResult(t, "multi-process", res, ref)
	if res.AttackReport == nil {
		t.Fatal("robust multi-process run returned no attack report")
	}
	if res.AttackReport.EdgeAggregator != "median" || res.AttackReport.CloudAggregator != "median" {
		t.Errorf("multi-process report names aggregators %q/%q, want median/median",
			res.AttackReport.EdgeAggregator, res.AttackReport.CloudAggregator)
	}
}

// TestClusterAttackChurnInterplay exercises the hairiest composition: a
// worker that replays stale reports retires via a planned leave in the
// same window, under strict full-cohort quorum and a trimmed-mean edge.
// Replay must never register as a duplicate (it re-sends OLD vectors under
// the CURRENT round, so admission sees exactly one report per round) and
// the retired worker must leave the aggregation denominators cleanly.
func TestClusterAttackChurnInterplay(t *testing.T) {
	cfg := buildConfig(t, 51, 2)
	plan, err := membership.ParseSpec("leave:worker-1-0@9")
	if err != nil {
		t.Fatal(err)
	}
	opts := func() Options {
		p := plan.Clone()
		return Options{
			Adaptive:        true,
			ChurnPlan:       &p,
			AttackPlan:      byzPlan(t, "replay:worker-1-0@7-9"),
			EdgeAggregator:  robust.Spec{Kind: robust.Trimmed, Trim: 0.25},
			CloudAggregator: robust.Spec{Kind: robust.Trimmed, Trim: 0.25},
		}
	}
	ref, err := Run(cfg, transport.NewMemoryNetwork(), opts())
	if err != nil {
		t.Fatal(err)
	}
	if ref.Membership == nil || ref.Membership.Leaves != 1 {
		t.Fatalf("membership report %+v, want exactly one leave", ref.Membership)
	}
	if ref.AttackReport == nil {
		t.Fatal("replay run returned no attack report")
	}
	// Window 7-9, stash primed at round 6: all three rounds replay,
	// including the leaver's final report at its retirement round.
	if got := ref.AttackReport.Injected["replay"]; got != 3 {
		t.Errorf("injected[replay] = %d, want 3", got)
	}
	if ref.FaultReport != nil && ref.FaultReport.DuplicateReports > 0 {
		t.Errorf("replay registered %d duplicate reports; admission must see one report per round",
			ref.FaultReport.DuplicateReports)
	}

	rerun, err := Run(cfg, transport.NewMemoryNetwork(), opts())
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "rerun", rerun, ref)
}

// TestClusterRobustMetricsMatchReport scrapes the fl_attack_* and
// fl_robust_* instruments after a defended run and checks them against the
// attack report — the counters must match the report exactly, because the
// report is accumulated at the same call sites that bump them.
func TestClusterRobustMetricsMatchReport(t *testing.T) {
	cfg := buildConfig(t, 31, 2)
	reg := telemetry.NewRegistry()
	res, err := Run(cfg, transport.NewMemoryNetwork(), Options{
		Adaptive:        true,
		Telemetry:       telemetry.New(reg, nil),
		AttackPlan:      byzPlan(t, "signflip:worker-0-1@1,scale:worker-1-0@1=25"),
		EdgeAggregator:  robust.Spec{Kind: robust.Cosine, CosMin: 0},
		CloudAggregator: robust.Spec{Kind: robust.Clip, Clip: 0.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := res.AttackReport
	if rep == nil {
		t.Fatal("defended run returned no attack report")
	}
	if rep.TotalInjected() == 0 {
		t.Fatal("attack plan injected nothing")
	}
	if rep.TotalRejected()+rep.Clipped == 0 {
		t.Fatal("robust aggregation neither rejected nor clipped anything under sustained attack")
	}
	counter := func(name string) int64 {
		t.Helper()
		c := reg.Counter(name)
		if c == nil {
			t.Fatalf("counter %s not registered", name)
		}
		return c.Value()
	}
	if got := counter("fl_attack_injected_total"); got != int64(rep.TotalInjected()) {
		t.Errorf("fl_attack_injected_total = %d, report says %d", got, rep.TotalInjected())
	}
	if got := counter("fl_robust_rejected_total"); got != int64(rep.TotalRejected()) {
		t.Errorf("fl_robust_rejected_total = %d, report says %d", got, rep.TotalRejected())
	}
	if got := counter("fl_robust_clipped_total"); got != int64(rep.Clipped) {
		t.Errorf("fl_robust_clipped_total = %d, report says %d", got, rep.Clipped)
	}
}

// TestClusterRobustResumeFingerprint: resuming a Byzantine run's snapshots
// under a different attack plan or aggregator describes a different
// trajectory and must be refused; resuming under the same scenario must
// finish bit-identically (the attacker's replay stash is part of the
// snapshot).
func TestClusterRobustResumeFingerprint(t *testing.T) {
	cfg := buildConfig(t, 71, 2)
	dir := t.TempDir()
	opts := Options{
		Adaptive:       true,
		CheckpointDir:  dir,
		AttackPlan:     byzPlan(t, "replay:worker-0-1@3"),
		EdgeAggregator: robust.Spec{Kind: robust.Median},
	}
	ref, err := Run(cfg, transport.NewMemoryNetwork(), opts)
	if err != nil {
		t.Fatal(err)
	}
	// The finished run left every node's snapshots behind: a resume under
	// the same scenario replays the final state and must agree.
	resumed := opts
	resumed.Resume = true
	res, err := Run(cfg, transport.NewMemoryNetwork(), resumed)
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "resumed", res, ref)

	wrong := resumed
	wrong.AttackPlan = byzPlan(t, "signflip:worker-0-1@3")
	if _, err := Run(cfg, transport.NewMemoryNetwork(), wrong); err == nil {
		t.Error("resume under a different attack plan was accepted")
	}
	wrongAgg := resumed
	wrongAgg.EdgeAggregator = robust.Spec{Kind: robust.Trimmed, Trim: 0.2}
	if _, err := Run(cfg, transport.NewMemoryNetwork(), wrongAgg); err == nil {
		t.Error("resume under a different edge aggregator was accepted")
	}
}
