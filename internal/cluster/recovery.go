package cluster

import (
	"errors"
	"fmt"
	"time"

	"hieradmo/internal/checkpoint"
	"hieradmo/internal/fl"
	"hieradmo/internal/membership"
	"hieradmo/internal/telemetry"
	"hieradmo/internal/transport"
)

// ErrInterrupted is returned by nodes that stopped on a shutdown request
// (Options.Interrupt). The run's state at that point is a valid checkpoint:
// restarting with Options.Resume picks up where the interrupt landed.
var ErrInterrupted = errors.New("cluster: interrupted")

// interruptSlice bounds how long a blocked receive can delay noticing a
// shutdown request.
const interruptSlice = 200 * time.Millisecond

// interrupted reports whether the shutdown channel has fired (nil = no
// shutdown signal configured).
func interrupted(ch <-chan struct{}) bool {
	if ch == nil {
		return false
	}
	select {
	case <-ch:
		return true
	default:
		return false
	}
}

// recvInterruptible behaves like ep.RecvTimeout(wait), but when a shutdown
// channel is configured it slices the wait so the interrupt is noticed
// within interruptSlice even while blocked on a quiet socket. Callers see
// ErrInterrupted in place of a message. Deadline arithmetic goes through
// the options' clock; the actual socket wait is real time either way.
func recvInterruptible(ep transport.Endpoint, wait time.Duration, opts Options) (transport.Message, error) {
	if opts.Interrupt == nil {
		return ep.RecvTimeout(wait)
	}
	deadline := opts.now().Add(wait)
	for {
		if interrupted(opts.Interrupt) {
			return transport.Message{}, ErrInterrupted
		}
		slice := deadline.Sub(opts.now())
		if slice <= 0 {
			return transport.Message{}, transport.ErrTimeout
		}
		if slice > interruptSlice {
			slice = interruptSlice
		}
		msg, err := ep.RecvTimeout(slice)
		if err == nil || !errors.Is(err, transport.ErrTimeout) {
			return msg, err
		}
	}
}

// nodeRegistry builds the checkpoint registry of one cluster node, keyed by
// its transport ID so every node of a deployment can share one directory.
// Returns nil (no checkpointing) when no directory is configured.
func nodeRegistry(cfg *fl.Config, opts Options, nodeID string) (*checkpoint.Registry, error) {
	if opts.CheckpointDir == "" {
		return nil, nil
	}
	mgr, err := checkpoint.NewManager(opts.CheckpointDir, nodeID)
	if err != nil {
		return nil, err
	}
	// The fingerprint covers everything that shapes the distributed
	// trajectory: the full run config plus the algorithm options. Timeouts
	// and quorum are operational knobs a restarted deployment may
	// legitimately change, so they stay out. Static runs keep the exact
	// pre-churn fingerprint so existing snapshot families stay valid.
	fp := cfg.Fingerprint("cluster/hieradmo") +
		fmt.Sprintf(" adaptive=%v signal=%d ceiling=%g", opts.Adaptive, opts.Signal, opts.Ceiling)
	if opts.churnEnabled() {
		plan := membership.Plan{}
		if opts.ChurnPlan != nil {
			plan = *opts.ChurnPlan
		}
		fp += fmt.Sprintf(" churn=%s retier=%d migrate=%s",
			plan.Signature(), opts.RetierEvery, opts.Migration)
	}
	if opts.robustEnabled() {
		// Attack plan and aggregator choices shape the trajectory just
		// like the algorithm options: resuming a Byzantine run under a
		// different scenario is refused (checkpoint.ErrMismatch). The
		// suffix is only added when the robust layer engages, so
		// baseline snapshot families stay valid.
		fp += fmt.Sprintf(" attack=%s agg-edge=%s agg-cloud=%s",
			opts.AttackPlan.Signature(), opts.EdgeAggregator, opts.CloudAggregator)
	}
	if opts.Topology != nil {
		// The canonical spec string pins the whole tree shape — depth,
		// fan-out, per-level periods, rules, and momentum — so a snapshot
		// can never be resumed under a different topology. Default 3-tier
		// runs (nil Topology) keep their exact pre-tree fingerprints.
		fp += " topology=" + opts.Topology.String()
	}
	return checkpoint.NewRegistry(mgr, fp), nil
}

// restoreOrClear applies the Resume option to a node's registry: resuming
// loads the newest valid generation and returns its sequence number; a
// fresh start clears leftover generations from a previous run instead. An
// actual resume (seq > 0) is mirrored onto the telemetry sink under the
// node's ID.
func restoreOrClear(reg *checkpoint.Registry, resume bool, sink *telemetry.Sink, node string) (int, error) {
	if reg == nil {
		return 0, nil
	}
	if !resume {
		return 0, reg.Clear()
	}
	seq, _, err := reg.Restore()
	if err == nil && seq > 0 {
		sink.M().CheckpointResumes.Inc()
		if sink.Tracing() {
			sink.Emit("checkpoint_resume",
				telemetry.String("node", node),
				telemetry.Int("t", seq))
		}
	}
	return seq, err
}

// saveSnapshot persists the node's registered state as generation seq; a
// nil registry (checkpointing disabled) is a no-op. Successful saves are
// mirrored onto the telemetry sink under the node's ID.
func saveSnapshot(reg *checkpoint.Registry, seq int, sink *telemetry.Sink, node string) error {
	if reg == nil {
		return nil
	}
	if err := reg.Save(seq); err != nil {
		return err
	}
	sink.M().CheckpointSaves.Inc()
	if sink.Tracing() {
		sink.Emit("checkpoint_save",
			telemetry.String("node", node),
			telemetry.Int("t", seq))
	}
	return nil
}

// encodePending flattens a ride-ahead report stash for snapshotting: one
// record per message, laid out as [round, senderIndex, loss, nv·dim vector
// elements]. Messages that do not carry exactly nv model-sized vectors or a
// parseable sender are dropped here — admission would reject them after the
// resume anyway.
func encodePending(msgs []transport.Message, nv, dim int, index func(string) (int, error)) []float64 {
	out := make([]float64, 0, len(msgs)*(3+nv*dim))
	for _, msg := range msgs {
		i, err := index(msg.From)
		if err != nil || len(msg.Vectors) != nv {
			continue
		}
		ok := true
		for _, v := range msg.Vectors {
			if len(v) != dim {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		out = append(out, float64(msg.Round), float64(i), msg.Scalars[ScalarLoss])
		for _, v := range msg.Vectors {
			out = append(out, v...)
		}
	}
	return out
}

// decodePending rebuilds a stash serialized by encodePending; id maps a
// sender index back to its node ID.
func decodePending(flat []float64, nv, dim int, kind string, id func(int) string) ([]transport.Message, error) {
	rec := 3 + nv*dim
	if len(flat)%rec != 0 {
		return nil, fmt.Errorf("pending stash holds %d values, not a multiple of the %d-value record", len(flat), rec)
	}
	var msgs []transport.Message
	for off := 0; off < len(flat); off += rec {
		round, idx := int(flat[off]), int(flat[off+1])
		if float64(round) != flat[off] || float64(idx) != flat[off+1] || round < 0 || idx < 0 {
			return nil, fmt.Errorf("pending stash record at %d has non-integral round/sender %v/%v",
				off, flat[off], flat[off+1])
		}
		vecs := make([][]float64, nv)
		for v := range vecs {
			lo := off + 3 + v*dim
			vecs[v] = append([]float64(nil), flat[lo:lo+dim]...)
		}
		msgs = append(msgs, transport.Message{
			From:    id(idx),
			Kind:    kind,
			Round:   round,
			Vectors: vecs,
			Scalars: map[string]float64{ScalarLoss: flat[off+2]},
		})
	}
	return msgs, nil
}

// reviver is the fault-injection surface the supervisor needs: which nodes
// are scheduled to come back after a crash, and whether a node's outage has
// ended. *transport.FaultyNetwork implements it.
type reviver interface {
	RestartPlanned(id string) bool
	Revived(id string) bool
}

// mergeInterrupt combines a user shutdown channel with the run-completion
// channel so a respawned node stops on whichever fires first.
func mergeInterrupt(a, b <-chan struct{}) <-chan struct{} {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	out := make(chan struct{})
	go func() {
		defer close(out)
		select {
		case <-a:
		case <-b:
		}
	}()
	return out
}
