package cluster

import (
	"fmt"
	"net"
	"sync"
	"testing"

	"hieradmo/internal/core"
	"hieradmo/internal/transport"
)

// freePorts reserves n distinct loopback ports by binding and releasing
// them. The tiny race between release and reuse is acceptable in tests.
func freePorts(t *testing.T, n int) []string {
	t.Helper()
	listeners := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range listeners {
		ln.Close()
	}
	return addrs
}

// TestStaticNodesMatchSimulation drives the multi-process deployment path
// (per-role entry points + static registry TCP endpoints, each role building
// its own config and harness) and checks bit-equality with the simulation.
func TestStaticNodesMatchSimulation(t *testing.T) {
	cfg := buildConfig(t, 107, 2)
	sim, err := core.New().Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	ids := []string{CloudID, EdgeID(0), EdgeID(1),
		WorkerID(0, 0), WorkerID(0, 1), WorkerID(1, 0), WorkerID(1, 1)}
	ports := freePorts(t, len(ids))
	registry := make(map[string]string, len(ids))
	for i, id := range ids {
		registry[id] = ports[i]
	}

	var (
		wg     sync.WaitGroup
		mu     sync.Mutex
		errs   []error
		result = make(chan error, 1)
	)
	fail := func(err error) {
		if err == nil {
			return
		}
		mu.Lock()
		errs = append(errs, err)
		mu.Unlock()
	}
	opts := Options{Adaptive: true}

	for l := 0; l < 2; l++ {
		for i := 0; i < 2; i++ {
			l, i := l, i
			ep, err := transport.ListenStatic(WorkerID(l, i), registry)
			if err != nil {
				t.Fatal(err)
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer ep.Close()
				fail(RunWorkerNode(cfg, l, i, ep, opts))
			}()
		}
		l := l
		ep, err := transport.ListenStatic(EdgeID(l), registry)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer ep.Close()
			fail(RunEdgeNode(cfg, l, ep, opts))
		}()
	}

	cloudEP, err := transport.ListenStatic(CloudID, registry)
	if err != nil {
		t.Fatal(err)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer cloudEP.Close()
		res, err := RunCloudNode(cfg, cloudEP, opts)
		if err != nil {
			result <- err
			return
		}
		if res.FinalAcc != sim.FinalAcc {
			result <- fmt.Errorf("static nodes %v != simulation %v", res.FinalAcc, sim.FinalAcc)
			return
		}
		result <- nil
	}()

	wg.Wait()
	mu.Lock()
	for _, err := range errs {
		t.Error(err)
	}
	mu.Unlock()
	if err := <-result; err != nil {
		t.Error(err)
	}
}

func TestNodeEntryPointValidation(t *testing.T) {
	cfg := buildConfig(t, 109, 0)
	net := transport.NewMemoryNetwork()
	defer net.Close()
	ep, err := net.Endpoint("x")
	if err != nil {
		t.Fatal(err)
	}
	if err := RunWorkerNode(cfg, 9, 0, ep, Options{}); err == nil {
		t.Error("out-of-range edge accepted")
	}
	if err := RunWorkerNode(cfg, 0, 9, ep, Options{}); err == nil {
		t.Error("out-of-range worker accepted")
	}
	if err := RunEdgeNode(cfg, -1, ep, Options{}); err == nil {
		t.Error("negative edge accepted")
	}
	bad := *cfg
	bad.T = 7
	if err := RunWorkerNode(&bad, 0, 0, ep, Options{}); err == nil {
		t.Error("invalid config accepted by worker node")
	}
	if _, err := RunCloudNode(&bad, ep, Options{}); err == nil {
		t.Error("invalid config accepted by cloud node")
	}
}

func TestListenStaticErrors(t *testing.T) {
	if _, err := transport.ListenStatic("ghost", map[string]string{"a": "127.0.0.1:0"}); err == nil {
		t.Error("missing own registry entry accepted")
	}
	if _, err := transport.ListenStatic("a", map[string]string{"a": "999.999.999.999:1"}); err == nil {
		t.Error("unbindable address accepted")
	}
}
