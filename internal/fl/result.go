package fl

import "fmt"

// Point is one sample of the training trajectory.
type Point struct {
	// Iter is the local-iteration index t at which the point was recorded.
	Iter int
	// TestAcc is classification accuracy on the (possibly capped) test set.
	TestAcc float64
	// TrainLoss is the data-weighted average of the workers' latest
	// mini-batch losses.
	TrainLoss float64
}

// Result captures the outcome of one training run.
type Result struct {
	// Algorithm is the report name of the algorithm that produced the run.
	Algorithm string
	// FinalAcc is the full-test-set accuracy of the final global model.
	FinalAcc float64 //flvet:allow ckptstate -- written once after the final iteration, never mid-run
	// FinalLoss is the last recorded weighted training loss.
	FinalLoss float64 //flvet:allow ckptstate -- written once after the final iteration, never mid-run
	// Curve holds the recorded trajectory in iteration order, always ending
	// with a point at Iter == T.
	Curve []Point
	// Iterations is the configured T.
	Iterations int
	// FaultReport describes the faults a degraded distributed run survived;
	// nil for simulation runs and fault-free distributed runs.
	FaultReport *FaultReport `json:",omitempty"`

	// Membership summarizes planned churn and re-tiering for cluster runs
	// with dynamic membership enabled; nil for static runs.
	Membership *MembershipReport `json:",omitempty"`

	// AttackReport summarizes injected Byzantine updates and robust
	// aggregation decisions for cluster runs with the robust layer
	// enabled; nil otherwise.
	AttackReport *AttackReport `json:",omitempty"`
}

// AccuracyAt returns the recorded accuracy of the last curve point at or
// before iteration t, or 0 if none was recorded yet.
func (r *Result) AccuracyAt(t int) float64 {
	acc := 0.0
	for _, p := range r.Curve {
		if p.Iter > t {
			break
		}
		acc = p.TestAcc
	}
	return acc
}

// IterToReach returns the first recorded iteration whose accuracy meets
// target, and whether the run ever reached it.
func (r *Result) IterToReach(target float64) (int, bool) {
	for _, p := range r.Curve {
		if p.TestAcc >= target {
			return p.Iter, true
		}
	}
	return 0, false
}

// String summarizes the result on one line.
func (r *Result) String() string {
	return fmt.Sprintf("%s: acc=%.4f loss=%.4f (T=%d, %d curve points)",
		r.Algorithm, r.FinalAcc, r.FinalLoss, r.Iterations, len(r.Curve))
}
