package fl

import (
	"strings"
	"testing"
)

func TestFaultReportNilSafe(t *testing.T) {
	var f *FaultReport
	if f.Any() {
		t.Error("nil FaultReport reports faults")
	}
}

func TestFaultReportEmpty(t *testing.T) {
	f := &FaultReport{}
	if f.Any() {
		t.Error("empty FaultReport reports faults")
	}
	if got := f.String(); got != "no faults recorded" {
		t.Errorf("empty String() = %q", got)
	}
	if f.TotalMissingWorkers() != 0 || f.TotalMissingEdges() != 0 {
		t.Error("empty report has nonzero missing totals")
	}
}

func TestFaultReportTotalsAndString(t *testing.T) {
	f := &FaultReport{
		MissingWorkers:   map[int]int{4: 2, 8: 1},
		MissingEdges:     map[int]int{8: 1},
		DuplicateReports: 3,
		StaleMessages:    1,
		Timeouts:         2,
		Dropped:          7,
		Retries:          5,
		Crashed:          []string{"worker-0-1"},
		NodeErrors:       []string{"worker-0-1: crashed"},
	}
	if !f.Any() {
		t.Error("populated FaultReport reports no faults")
	}
	if got := f.TotalMissingWorkers(); got != 3 {
		t.Errorf("TotalMissingWorkers() = %d, want 3", got)
	}
	if got := f.TotalMissingEdges(); got != 1 {
		t.Errorf("TotalMissingEdges() = %d, want 1", got)
	}
	s := f.String()
	for _, want := range []string{
		"7 dropped msgs", "5 retries", "2 timeouts", "3 duplicates", "1 stale",
		"crashed nodes: worker-0-1",
		"missing worker reports (3 total)", "4(×2) 8(×1)",
		"substituted edge reports (1 total)",
		"node dropout: worker-0-1: crashed",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q:\n%s", want, s)
		}
	}
}

func TestFaultReportAnyEachField(t *testing.T) {
	cases := map[string]*FaultReport{
		"missing workers": {MissingWorkers: map[int]int{2: 1}},
		"missing edges":   {MissingEdges: map[int]int{4: 1}},
		"duplicates":      {DuplicateReports: 1},
		"stale":           {StaleMessages: 1},
		"timeouts":        {Timeouts: 1},
		"dropped":         {Dropped: 1},
		"retries":         {Retries: 1},
		"crashed":         {Crashed: []string{"x"}},
		"node errors":     {NodeErrors: []string{"x"}},
	}
	for name, f := range cases {
		if !f.Any() {
			t.Errorf("%s alone not detected by Any()", name)
		}
	}
}
