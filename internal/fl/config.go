// Package fl is the federated-learning framework shared by the HierAdMo
// implementation (internal/core) and all baselines (internal/baseline): the
// three-tier topology, run configuration, per-worker gradient plumbing,
// weighted aggregation, and accuracy/loss curve recording.
//
// The framework simulates the distributed execution deterministically in a
// single process: every worker has its own seeded mini-batch stream, and
// algorithms advance all workers in lockstep exactly as the synchronous
// protocols in the paper prescribe. Wall-clock behaviour of the physical
// deployment is modelled separately by internal/netsim.
package fl

import (
	"errors"
	"fmt"
	"strings"

	"hieradmo/internal/dataset"
	"hieradmo/internal/model"
	"hieradmo/internal/telemetry"
)

// Default hyper-parameters mirroring the paper's experimental setup (§V-A).
const (
	DefaultEta       = 0.01
	DefaultGamma     = 0.5
	DefaultGammaEdge = 0.5
	DefaultBatchSize = 64
)

// ErrConfig wraps configuration validation failures.
var ErrConfig = errors.New("fl: invalid config")

// Config describes one federated training run.
type Config struct {
	// Model is the learning model shared by all workers.
	Model model.Model
	// Edges holds the training shard of every worker, grouped per edge node:
	// Edges[l][i] is the dataset of worker {i,l}. Two-tier algorithms flatten
	// this hierarchy and connect every worker directly to the cloud.
	Edges [][]*dataset.Dataset
	// Test is the held-out evaluation set.
	Test *dataset.Dataset

	// Eta is the worker learning rate η.
	Eta float64
	// Gamma is the worker momentum factor γ.
	Gamma float64
	// GammaEdge is the edge (or server) momentum factor γℓ used by
	// fixed-momentum algorithms; HierAdMo adapts it online instead.
	GammaEdge float64

	// Tau is the worker–edge aggregation period τ.
	Tau int
	// Pi is the edge–cloud aggregation period π. Two-tier algorithms use a
	// single aggregation period of Tau*Pi so communication rounds stay
	// comparable, as in the paper's setup.
	Pi int
	// T is the total number of local iterations; must be a multiple of
	// Tau*Pi (T = Kτ = Pτπ).
	T int

	// BatchSize is the worker mini-batch size.
	BatchSize int
	// ClipNorm, when positive, rescales every worker mini-batch gradient
	// whose L2 norm exceeds it (standard stabilization for the deeper
	// models; 0 disables). Applied uniformly by the harness, so every
	// algorithm sees the same clipped gradients.
	ClipNorm float64
	// Seed drives every random choice (init, batch order, evaluation).
	Seed uint64

	// Workers bounds the goroutine pool used for the per-round parallel
	// local-training phase (0 = runtime.GOMAXPROCS(0)). Results are
	// bit-identical at every pool size: only wall-clock changes. 1 forces
	// fully sequential execution.
	Workers int

	// EvalEvery records a curve point every EvalEvery iterations (plus one
	// final point). Zero disables intermediate evaluation.
	EvalEvery int
	// EvalSamples caps how many test samples each curve evaluation uses
	// (0 = full test set). Curve shape is what matters; capping keeps large
	// sweeps fast.
	EvalSamples int

	// CheckpointDir, when non-empty, enables crash recovery: the run
	// periodically snapshots its complete state (model, momentum, RNG
	// positions, round counter) there and resumes bit-exactly from the
	// newest valid snapshot on the next start.
	CheckpointDir string
	// CheckpointEvery is the snapshot period in local iterations. Zero with
	// CheckpointDir set defaults to Tau (one snapshot per edge round).
	CheckpointEvery int

	// Telemetry, when non-nil, receives metrics and trace events from the
	// run (see internal/telemetry). Nil disables observability at zero
	// cost; results are bit-identical either way, so Telemetry is — like
	// Workers — deliberately excluded from Fingerprint.
	Telemetry *telemetry.Sink
}

// Validate checks the configuration for structural errors.
func (c *Config) Validate() error {
	switch {
	case c.Model == nil:
		return fmt.Errorf("%w: nil model", ErrConfig)
	case len(c.Edges) == 0:
		return fmt.Errorf("%w: no edges", ErrConfig)
	case c.Test == nil || c.Test.Len() == 0:
		return fmt.Errorf("%w: empty test set", ErrConfig)
	case c.Eta <= 0:
		return fmt.Errorf("%w: eta %v must be positive", ErrConfig, c.Eta)
	case c.Gamma < 0 || c.Gamma >= 1:
		return fmt.Errorf("%w: gamma %v outside [0,1)", ErrConfig, c.Gamma)
	case c.GammaEdge < 0 || c.GammaEdge >= 1:
		return fmt.Errorf("%w: gammaEdge %v outside [0,1)", ErrConfig, c.GammaEdge)
	case c.Tau <= 0 || c.Pi <= 0:
		return fmt.Errorf("%w: tau %d and pi %d must be positive", ErrConfig, c.Tau, c.Pi)
	case c.T <= 0:
		return fmt.Errorf("%w: T %d must be positive", ErrConfig, c.T)
	case c.T%(c.Tau*c.Pi) != 0:
		return fmt.Errorf("%w: T=%d is not a multiple of tau*pi=%d", ErrConfig, c.T, c.Tau*c.Pi)
	case c.BatchSize <= 0:
		return fmt.Errorf("%w: batch size %d must be positive", ErrConfig, c.BatchSize)
	case c.ClipNorm < 0:
		return fmt.Errorf("%w: negative clip norm %v", ErrConfig, c.ClipNorm)
	case c.Workers < 0:
		return fmt.Errorf("%w: negative worker pool size %d", ErrConfig, c.Workers)
	case c.EvalEvery < 0 || c.EvalSamples < 0:
		return fmt.Errorf("%w: negative eval settings", ErrConfig)
	case c.CheckpointEvery < 0:
		return fmt.Errorf("%w: negative checkpoint period %d", ErrConfig, c.CheckpointEvery)
	case c.CheckpointEvery > 0 && c.CheckpointDir == "":
		return fmt.Errorf("%w: checkpoint period %d without a checkpoint directory", ErrConfig, c.CheckpointEvery)
	}
	for l, edge := range c.Edges {
		if len(edge) == 0 {
			return fmt.Errorf("%w: edge %d has no workers", ErrConfig, l)
		}
		for i, shard := range edge {
			if shard == nil || shard.Len() == 0 {
				return fmt.Errorf("%w: worker {%d,%d} has no data", ErrConfig, i, l)
			}
		}
	}
	return nil
}

// Fingerprint summarizes everything that determines the trajectory of a run
// of the named algorithm: model identity and dimension, data topology and
// shard sizes, every hyper-parameter, and the seed. A checkpoint written
// under one fingerprint refuses to resume under a different one. The worker
// pool size is deliberately excluded — results are bit-identical at every
// pool size, so a run may legitimately resume with a different pool.
func (c *Config) Fingerprint(algorithm string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "alg=%s model=%s dim=%d", algorithm, c.Model.Name(), c.Model.Dim())
	fmt.Fprintf(&b, " edges=")
	for l, edge := range c.Edges {
		if l > 0 {
			b.WriteByte('|')
		}
		for i, shard := range edge {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%d", shard.Len())
		}
	}
	fmt.Fprintf(&b, " test=%d", c.Test.Len())
	fmt.Fprintf(&b, " eta=%g gamma=%g gammaEdge=%g tau=%d pi=%d T=%d",
		c.Eta, c.Gamma, c.GammaEdge, c.Tau, c.Pi, c.T)
	fmt.Fprintf(&b, " batch=%d clip=%g seed=%d evalEvery=%d evalSamples=%d",
		c.BatchSize, c.ClipNorm, c.Seed, c.EvalEvery, c.EvalSamples)
	return b.String()
}

// NumEdges returns L.
func (c *Config) NumEdges() int { return len(c.Edges) }

// NumWorkers returns N = Σ Cℓ.
func (c *Config) NumWorkers() int {
	n := 0
	for _, e := range c.Edges {
		n += len(e)
	}
	return n
}

// Algorithm is a federated-learning procedure that can execute a Config.
type Algorithm interface {
	// Name is the report name (matches the paper's tables).
	Name() string
	// Run executes the configured training and returns the result.
	Run(cfg *Config) (*Result, error)
}
