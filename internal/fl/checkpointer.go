package fl

import (
	"fmt"
	"math"
	"strings"

	"hieradmo/internal/checkpoint"
	"hieradmo/internal/rng"
	"hieradmo/internal/telemetry"
)

// Checkpointer gives a simulation algorithm crash recovery with three calls:
// register the algorithm's persistent state after allocating it, Restore
// once before the training loop (returning the iteration to resume after),
// and MaybeSnapshot at the end of every iteration. A nil *Checkpointer —
// what NewCheckpointer returns when no CheckpointDir is configured — is
// valid and makes every method a no-op, so call sites need no guards.
//
// The harness-owned state every algorithm shares (mini-batch sampler
// positions, per-worker last losses, the recorded curve) is registered
// automatically; the algorithm registers only its own models, momentum
// buffers, and auxiliary RNG streams.
type Checkpointer struct {
	reg   *checkpoint.Registry
	every int
	t     int // total iterations, to skip the redundant final snapshot
	sink  *telemetry.Sink
}

// NewCheckpointer prepares crash recovery for one Run invocation of the
// named algorithm over harness h. The variant string folds run options that
// live outside Config (participation fraction, quantization width) into the
// config fingerprint so a checkpoint never resumes under different options;
// pass "" when the algorithm has none. res is the Result whose curve is
// snapshotted and restored.
func NewCheckpointer(h *Harness, algorithm, variant string, res *Result) (*Checkpointer, error) {
	cfg := h.Cfg()
	if cfg.CheckpointDir == "" {
		return nil, nil
	}
	fingerprint := cfg.Fingerprint(algorithm)
	if variant != "" {
		fingerprint += " " + variant
	}
	mgr, err := checkpoint.NewManager(cfg.CheckpointDir, baseName(algorithm))
	if err != nil {
		return nil, err
	}
	every := cfg.CheckpointEvery
	if every == 0 {
		every = cfg.Tau
	}
	c := &Checkpointer{
		reg:   checkpoint.NewRegistry(mgr, fingerprint),
		every: every,
		t:     cfg.T,
		sink:  h.sink,
	}
	for l := range h.samplers {
		c.reg.Vector(fmt.Sprintf("harness/lastloss/%d", l), h.lastLoss[l])
		for i, r := range h.samplers[l] {
			c.reg.RNG(fmt.Sprintf("harness/sampler/%d/%d", l, i), r)
		}
	}
	c.reg.Dynamic("harness/curve",
		func() []float64 {
			flat := make([]float64, 0, 3*len(res.Curve))
			for _, p := range res.Curve {
				flat = append(flat, float64(p.Iter), p.TestAcc, p.TrainLoss)
			}
			return flat
		},
		func(flat []float64) error {
			if len(flat)%3 != 0 {
				return fmt.Errorf("curve snapshot has %d values, not a multiple of 3", len(flat))
			}
			res.Curve = res.Curve[:0]
			for j := 0; j < len(flat); j += 3 {
				iter := flat[j]
				if iter != math.Trunc(iter) {
					return fmt.Errorf("curve snapshot iteration %v is not an integer", iter)
				}
				res.Curve = append(res.Curve, Point{Iter: int(iter), TestAcc: flat[j+1], TrainLoss: flat[j+2]})
			}
			return nil
		})
	return c, nil
}

// baseName sanitizes an algorithm name into a snapshot file prefix.
func baseName(algorithm string) string {
	s := strings.ToLower(algorithm)
	s = strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			return r
		default:
			return '-'
		}
	}, s)
	return "sim-" + s
}

// Vector registers a fixed-size vector (model parameters, momentum,
// accumulators) with the snapshot.
func (c *Checkpointer) Vector(name string, v []float64) {
	if c != nil {
		c.reg.Vector(name, v)
	}
}

// RNG registers an auxiliary random stream (participation sampling,
// stochastic quantization) with the snapshot.
func (c *Checkpointer) RNG(name string, r *rng.RNG) {
	if c != nil {
		c.reg.RNG(name, r)
	}
}

// Int registers an integer counter with the snapshot.
func (c *Checkpointer) Int(name string, p *int) {
	if c != nil {
		c.reg.Int(name, p)
	}
}

// Float registers a scalar with the snapshot.
func (c *Checkpointer) Float(name string, p *float64) {
	if c != nil {
		c.reg.Float(name, p)
	}
}

// Dynamic registers variable-size state through an encode/decode pair.
func (c *Checkpointer) Dynamic(name string, save func() []float64, load func([]float64) error) {
	if c != nil {
		c.reg.Dynamic(name, save, load)
	}
}

// Restore loads the newest valid snapshot into the registered state and
// returns the last completed iteration; the training loop resumes at
// startT+1. Without a snapshot (or without checkpointing at all) it returns
// 0: start from scratch.
func (c *Checkpointer) Restore() (startT int, err error) {
	if c == nil {
		return 0, nil
	}
	seq, _, err := c.reg.Restore()
	if err != nil {
		return 0, fmt.Errorf("fl: resume: %w", err)
	}
	if seq > 0 {
		c.sink.M().CheckpointResumes.Inc()
		if c.sink.Tracing() {
			c.sink.Emit("checkpoint_resume", telemetry.Int("t", seq))
		}
	}
	return seq, nil
}

// MaybeSnapshot saves a snapshot when iteration t is on the checkpoint
// period. The final iteration is skipped: the run is about to produce its
// final artifact, and a snapshot there would only be re-restored as a
// completed run.
func (c *Checkpointer) MaybeSnapshot(t int) error {
	if c == nil || t%c.every != 0 || t == c.t {
		return nil
	}
	if err := c.reg.Save(t); err != nil {
		return err
	}
	c.sink.M().CheckpointSaves.Inc()
	if c.sink.Tracing() {
		c.sink.Emit("checkpoint_save", telemetry.Int("t", t))
	}
	return nil
}
