package fl

import (
	"fmt"
	"sort"
	"strings"
)

// AttackReport records a distributed run's Byzantine scenario: how many
// adversarial updates were injected (by attack kind) and what the robust
// aggregation layer did about them. A nil AttackReport on a Result means
// the robust layer never engaged — no attack plan and plain mean
// aggregation at both tiers.
type AttackReport struct {
	// Injected maps an attack kind (signflip, scale, noise, replay) to
	// the number of boundary reports it mutated.
	Injected map[string]int `json:",omitempty"`
	// RejectedEdge counts worker reports excluded by edge-tier robust
	// aggregation (non-finite values or cosine-filter outliers).
	RejectedEdge int
	// RejectedCloud counts edge reports excluded by cloud-tier robust
	// aggregation.
	RejectedCloud int
	// Clipped counts updates whose deviation was norm-clipped before
	// averaging.
	Clipped int
	// EdgeAggregator and CloudAggregator are the canonical names of the
	// rules that ran at each tier (e.g. "median", "trimmed(0.2)").
	EdgeAggregator  string
	CloudAggregator string

	// N-tier tree runs (a cluster Topology) attribute robust-layer activity
	// to tier indices (0 = root) instead of the edge/cloud pair; the fields
	// above stay zero/empty there and vice versa.

	// RejectedByTier maps a tier index to the number of child reports its
	// robust aggregations excluded.
	RejectedByTier map[int]int `json:",omitempty"`
	// ClippedByTier maps a tier index to the number of child updates its
	// robust aggregations norm-clipped.
	ClippedByTier map[int]int `json:",omitempty"`
	// TierAggregators lists the canonical rule name per tier, root first.
	TierAggregators []string `json:",omitempty"`
}

// TotalInjected sums the injected-update counts over all attack kinds.
func (a *AttackReport) TotalInjected() int {
	if a == nil {
		return 0
	}
	n := 0
	for _, c := range a.Injected {
		n += c
	}
	return n
}

// TotalRejected sums the rejections across all tiers, whichever attribution
// the run used.
func (a *AttackReport) TotalRejected() int {
	if a == nil {
		return 0
	}
	n := a.RejectedEdge + a.RejectedCloud
	for _, c := range a.RejectedByTier {
		n += c
	}
	return n
}

// TotalClipped sums the clips across all tiers.
func (a *AttackReport) TotalClipped() int {
	if a == nil {
		return 0
	}
	n := a.Clipped
	for _, c := range a.ClippedByTier {
		n += c
	}
	return n
}

// Any reports whether the run saw at least one injection, rejection, or
// clip.
func (a *AttackReport) Any() bool {
	if a == nil {
		return false
	}
	return len(a.Injected) > 0 || a.TotalRejected() > 0 || a.TotalClipped() > 0
}

// String renders a human-readable summary.
func (a *AttackReport) String() string {
	if a == nil {
		return "no attack scenario"
	}
	var b strings.Builder
	if len(a.TierAggregators) > 0 {
		fmt.Fprintf(&b, "byzantine: tier aggregators %s", strings.Join(a.TierAggregators, "/"))
	} else {
		fmt.Fprintf(&b, "byzantine: aggregators edge=%s cloud=%s", a.EdgeAggregator, a.CloudAggregator)
	}
	if len(a.Injected) > 0 {
		kinds := make([]string, 0, len(a.Injected))
		for k := range a.Injected {
			kinds = append(kinds, k)
		}
		sort.Strings(kinds)
		parts := make([]string, len(kinds))
		for i, k := range kinds {
			parts[i] = fmt.Sprintf("%s(×%d)", k, a.Injected[k])
		}
		fmt.Fprintf(&b, "\n  injected updates (%d total): %s", a.TotalInjected(), strings.Join(parts, " "))
	}
	if a.RejectedEdge > 0 || a.RejectedCloud > 0 {
		fmt.Fprintf(&b, "\n  rejected updates: %d at edges, %d at cloud", a.RejectedEdge, a.RejectedCloud)
	}
	if len(a.RejectedByTier) > 0 {
		fmt.Fprintf(&b, "\n  rejected updates by tier: %s", formatByTier(a.RejectedByTier))
	}
	if a.Clipped > 0 {
		fmt.Fprintf(&b, "\n  clipped updates: %d", a.Clipped)
	}
	if len(a.ClippedByTier) > 0 {
		fmt.Fprintf(&b, "\n  clipped updates by tier: %s", formatByTier(a.ClippedByTier))
	}
	return b.String()
}

// formatByTier renders a tier-indexed counter map in ascending tier order
// (map iteration order is not deterministic).
func formatByTier(m map[int]int) string {
	tiers := make([]int, 0, len(m))
	for i := range m {
		tiers = append(tiers, i)
	}
	sort.Ints(tiers)
	parts := make([]string, len(tiers))
	for j, i := range tiers {
		parts[j] = fmt.Sprintf("tier%d(×%d)", i, m[i])
	}
	return strings.Join(parts, " ")
}
