package fl

import (
	"errors"
	"math"
	"testing"

	"hieradmo/internal/dataset"
	"hieradmo/internal/model"
	"hieradmo/internal/tensor"
)

func testConfig(t *testing.T) *Config {
	t.Helper()
	cfg := dataset.GenConfig{
		Name:          "toy",
		Shape:         dataset.Shape{C: 1, H: 4, W: 4},
		NumClasses:    3,
		TemplateScale: 1.0,
		NoiseStd:      0.5,
		SmoothPasses:  1,
	}
	g, err := dataset.NewGenerator(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	train, test := g.TrainTest(240, 60, 5)
	shards, err := dataset.PartitionIID(train, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	edges, err := dataset.Hierarchy(shards, []int{2, 2})
	if err != nil {
		t.Fatal(err)
	}
	m, err := model.NewLogisticRegression(cfg.Shape, cfg.NumClasses)
	if err != nil {
		t.Fatal(err)
	}
	return &Config{
		Model:     m,
		Edges:     edges,
		Test:      test,
		Eta:       0.05,
		Gamma:     0.5,
		GammaEdge: 0.5,
		Tau:       2,
		Pi:        2,
		T:         16,
		BatchSize: 8,
		Seed:      11,
		EvalEvery: 4,
	}
}

func TestConfigValidate(t *testing.T) {
	base := testConfig(t)
	mutations := []struct {
		name string
		mut  func(*Config)
	}{
		{name: "nil model", mut: func(c *Config) { c.Model = nil }},
		{name: "no edges", mut: func(c *Config) { c.Edges = nil }},
		{name: "nil test", mut: func(c *Config) { c.Test = nil }},
		{name: "zero eta", mut: func(c *Config) { c.Eta = 0 }},
		{name: "gamma too big", mut: func(c *Config) { c.Gamma = 1 }},
		{name: "negative gamma", mut: func(c *Config) { c.Gamma = -0.1 }},
		{name: "gammaEdge too big", mut: func(c *Config) { c.GammaEdge = 1.5 }},
		{name: "zero tau", mut: func(c *Config) { c.Tau = 0 }},
		{name: "zero pi", mut: func(c *Config) { c.Pi = 0 }},
		{name: "zero T", mut: func(c *Config) { c.T = 0 }},
		{name: "T not multiple", mut: func(c *Config) { c.T = 15 }},
		{name: "zero batch", mut: func(c *Config) { c.BatchSize = 0 }},
		{name: "negative eval", mut: func(c *Config) { c.EvalEvery = -1 }},
		{name: "empty edge", mut: func(c *Config) { c.Edges = append(c.Edges, nil) }},
		{name: "empty shard", mut: func(c *Config) { c.Edges[0][0] = &dataset.Dataset{} }},
	}
	for _, tt := range mutations {
		t.Run(tt.name, func(t *testing.T) {
			cfg := *base
			cfg.Edges = append([][]*dataset.Dataset{}, base.Edges...)
			cfg.Edges[0] = append([]*dataset.Dataset{}, base.Edges[0]...)
			tt.mut(&cfg)
			if err := cfg.Validate(); !errors.Is(err, ErrConfig) {
				t.Errorf("err = %v, want ErrConfig", err)
			}
		})
	}
	if err := base.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestConfigCounts(t *testing.T) {
	cfg := testConfig(t)
	if cfg.NumEdges() != 2 {
		t.Errorf("NumEdges = %d", cfg.NumEdges())
	}
	if cfg.NumWorkers() != 4 {
		t.Errorf("NumWorkers = %d", cfg.NumWorkers())
	}
}

func TestHarnessWeights(t *testing.T) {
	hn, err := NewHarness(testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	var edgeSum float64
	for _, w := range hn.EdgeWeights {
		edgeSum += w
	}
	if math.Abs(edgeSum-1) > 1e-12 {
		t.Errorf("edge weights sum = %v", edgeSum)
	}
	for l, ws := range hn.WorkerWeights {
		var s float64
		for _, w := range ws {
			s += w
		}
		if math.Abs(s-1) > 1e-12 {
			t.Errorf("edge %d worker weights sum = %v", l, s)
		}
	}
	var globalSum float64
	for l := range hn.WorkerWeights {
		for i := range hn.WorkerWeights[l] {
			globalSum += hn.GlobalWeight(l, i)
		}
	}
	if math.Abs(globalSum-1) > 1e-12 {
		t.Errorf("global weights sum = %v", globalSum)
	}
}

func TestHarnessGradDeterministic(t *testing.T) {
	cfg := testConfig(t)
	h1, err := NewHarness(cfg)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := NewHarness(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p := h1.InitParams()
	g1 := tensor.NewVector(len(p))
	g2 := tensor.NewVector(len(p))
	l1, err := h1.Grad(0, 1, p, g1)
	if err != nil {
		t.Fatal(err)
	}
	l2, err := h2.Grad(0, 1, p, g2)
	if err != nil {
		t.Fatal(err)
	}
	if l1 != l2 {
		t.Errorf("losses differ: %v vs %v", l1, l2)
	}
	for i := range g1 {
		if g1[i] != g2[i] {
			t.Fatalf("gradients differ at %d", i)
		}
	}
}

func TestHarnessWorkerStreamsDiffer(t *testing.T) {
	hn, err := NewHarness(testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	p := hn.InitParams()
	gA := tensor.NewVector(len(p))
	gB := tensor.NewVector(len(p))
	if _, err := hn.Grad(0, 0, p, gA); err != nil {
		t.Fatal(err)
	}
	if _, err := hn.Grad(1, 0, p, gB); err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range gA {
		if gA[i] != gB[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("two different workers produced identical mini-batch gradients")
	}
}

func TestAverages(t *testing.T) {
	hn, err := NewHarness(testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	dim := 3
	ones := tensor.Vector{1, 1, 1}
	twos := tensor.Vector{2, 2, 2}
	dst := tensor.NewVector(dim)
	// Equal-size IID shards → equal weights → plain mean.
	if err := hn.EdgeAverage(dst, 0, []tensor.Vector{ones, twos}); err != nil {
		t.Fatal(err)
	}
	if math.Abs(dst[0]-1.5) > 1e-12 {
		t.Errorf("edge average = %v, want 1.5", dst[0])
	}
	if err := hn.CloudAverage(dst, []tensor.Vector{ones, twos}); err != nil {
		t.Fatal(err)
	}
	if math.Abs(dst[0]-1.5) > 1e-12 {
		t.Errorf("cloud average = %v, want 1.5", dst[0])
	}
	grid := [][]tensor.Vector{{ones, ones}, {twos, twos}}
	if err := hn.GlobalAverage(dst, grid); err != nil {
		t.Fatal(err)
	}
	if math.Abs(dst[0]-1.5) > 1e-12 {
		t.Errorf("global average = %v, want 1.5", dst[0])
	}
}

func TestEvalSubsetCap(t *testing.T) {
	cfg := testConfig(t)
	cfg.EvalSamples = 10
	hn, err := NewHarness(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if hn.evalSet.Len() != 10 {
		t.Errorf("eval subset len = %d, want 10", hn.evalSet.Len())
	}
	cfg.EvalSamples = 10_000 // larger than test set → full set
	hn, err = NewHarness(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if hn.evalSet.Len() != cfg.Test.Len() {
		t.Errorf("eval subset len = %d, want full %d", hn.evalSet.Len(), cfg.Test.Len())
	}
}

func TestShouldEval(t *testing.T) {
	cfg := testConfig(t)
	hn, err := NewHarness(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !hn.ShouldEval(4) || hn.ShouldEval(5) {
		t.Error("ShouldEval schedule wrong")
	}
	if hn.ShouldEval(cfg.T) {
		t.Error("ShouldEval fired at T (Finish records that point)")
	}
	cfg2 := testConfig(t)
	cfg2.EvalEvery = 0
	hn2, err := NewHarness(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if hn2.ShouldEval(4) {
		t.Error("ShouldEval fired with EvalEvery = 0")
	}
}

func TestRecordAndFinish(t *testing.T) {
	hn, err := NewHarness(testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	res := hn.NewResult("test")
	p := hn.InitParams()
	if err := hn.RecordPoint(res, 4, p); err != nil {
		t.Fatal(err)
	}
	if err := hn.Finish(res, p); err != nil {
		t.Fatal(err)
	}
	if len(res.Curve) != 2 {
		t.Fatalf("curve has %d points", len(res.Curve))
	}
	if res.Curve[1].Iter != hn.Cfg().T {
		t.Errorf("final point at iter %d, want %d", res.Curve[1].Iter, hn.Cfg().T)
	}
	if res.FinalAcc < 0 || res.FinalAcc > 1 {
		t.Errorf("FinalAcc = %v", res.FinalAcc)
	}
}

func TestGrids(t *testing.T) {
	hn, err := NewHarness(testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	src := tensor.Vector{1, 2}
	grid := hn.CloneGrid(src)
	if len(grid) != 2 || len(grid[0]) != 2 {
		t.Fatalf("grid shape wrong")
	}
	grid[0][0][0] = 99
	if src[0] != 1 || grid[0][1][0] != 1 {
		t.Error("CloneGrid entries alias each other")
	}
	zgrid := hn.ZeroGrid(3)
	if len(zgrid[1][1]) != 3 || zgrid[1][1][0] != 0 {
		t.Error("ZeroGrid wrong")
	}
}

func TestResultHelpers(t *testing.T) {
	res := &Result{
		Algorithm: "x",
		Curve: []Point{
			{Iter: 10, TestAcc: 0.3},
			{Iter: 20, TestAcc: 0.6},
			{Iter: 30, TestAcc: 0.9},
		},
	}
	if got := res.AccuracyAt(25); got != 0.6 {
		t.Errorf("AccuracyAt(25) = %v", got)
	}
	if got := res.AccuracyAt(5); got != 0 {
		t.Errorf("AccuracyAt(5) = %v", got)
	}
	it, ok := res.IterToReach(0.5)
	if !ok || it != 20 {
		t.Errorf("IterToReach(0.5) = %d,%v", it, ok)
	}
	if _, ok := res.IterToReach(0.95); ok {
		t.Error("IterToReach(0.95) should fail")
	}
	if res.String() == "" {
		t.Error("empty String()")
	}
}

func TestGradClipping(t *testing.T) {
	cfg := testConfig(t)
	cfg.ClipNorm = 1e-6 // force clipping on every batch
	hn, err := NewHarness(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p := hn.InitParams()
	g := tensor.NewVector(len(p))
	if _, err := hn.Grad(0, 0, p, g); err != nil {
		t.Fatal(err)
	}
	if norm := g.Norm(); norm > cfg.ClipNorm*1.0001 {
		t.Errorf("clipped gradient norm %v exceeds clip %v", norm, cfg.ClipNorm)
	}
	cfg2 := testConfig(t)
	cfg2.ClipNorm = -1
	if err := cfg2.Validate(); !errors.Is(err, ErrConfig) {
		t.Errorf("negative clip err = %v", err)
	}
}

func TestWorkerSamplerMatchesHarness(t *testing.T) {
	// The exported sampler must replay exactly the harness's batch stream —
	// the property the distributed runtime depends on.
	cfg := testConfig(t)
	hn, err := NewHarness(cfg)
	if err != nil {
		t.Fatal(err)
	}
	independent := WorkerSampler(cfg.Seed, 1, 0)
	p := hn.InitParams()
	g := tensor.NewVector(len(p))
	if _, err := hn.Grad(1, 0, p, g); err != nil {
		t.Fatal(err)
	}
	batch, err := cfg.Edges[1][0].Batch(independent, cfg.BatchSize)
	if err != nil {
		t.Fatal(err)
	}
	g2 := tensor.NewVector(len(p))
	if _, err := cfg.Model.LossGrad(p, batch, g2); err != nil {
		t.Fatal(err)
	}
	for i := range g {
		if g[i] != g2[i] {
			t.Fatalf("sampler replay diverges at %d", i)
		}
	}
}

func TestEvalSetExported(t *testing.T) {
	cfg := testConfig(t)
	cfg.EvalSamples = 12
	hn, err := NewHarness(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if hn.EvalSet().Len() != 12 {
		t.Errorf("EvalSet len = %d", hn.EvalSet().Len())
	}
}
