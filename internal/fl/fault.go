package fl

import (
	"fmt"
	"sort"
	"strings"
)

// FaultReport records every fault a degraded distributed run survived, so
// such runs are diagnosable rather than silent: per-round missing reporters
// at both aggregation tiers, protocol-level rejections, transport-level
// injection and retry counters, and the errors of nodes that dropped out.
// A nil FaultReport on a Result means the run saw no faults at all.
type FaultReport struct {
	// MissingWorkers maps an edge-aggregation iteration t = kτ to the
	// number of workers (summed over edges) whose report was missing when
	// the quorum proceeded.
	MissingWorkers map[int]int
	// MissingEdges maps a cloud-sync iteration t = pτπ to the number of
	// edges whose report the cloud substituted with their last known state.
	MissingEdges map[int]int
	// DuplicateReports counts reports rejected because the same node
	// already reported in the same round.
	DuplicateReports int
	// StaleMessages counts messages rejected for carrying an already
	// completed round.
	StaleMessages int
	// Timeouts counts tolerated receive timeouts (a node proceeded without
	// the message instead of aborting).
	Timeouts int
	// Dropped counts messages discarded by transport fault injection.
	Dropped int
	// Retries counts transport send attempts repeated after transient
	// failures.
	Retries int
	// Crashed lists node IDs whose injected crash triggered during the run.
	Crashed []string
	// Restarted lists node IDs that crashed and came back during the run.
	Restarted []string
	// NodeErrors holds the rendered errors of nodes that dropped out of a
	// run that still completed.
	NodeErrors []string
}

// Any reports whether the run recorded at least one fault.
func (f *FaultReport) Any() bool {
	if f == nil {
		return false
	}
	return len(f.MissingWorkers) > 0 || len(f.MissingEdges) > 0 ||
		f.DuplicateReports > 0 || f.StaleMessages > 0 || f.Timeouts > 0 ||
		f.Dropped > 0 || f.Retries > 0 || len(f.Crashed) > 0 ||
		len(f.Restarted) > 0 || len(f.NodeErrors) > 0
}

// TotalMissingWorkers sums the missing-worker counts over all rounds.
func (f *FaultReport) TotalMissingWorkers() int {
	n := 0
	for _, c := range f.MissingWorkers {
		n += c
	}
	return n
}

// TotalMissingEdges sums the substituted-edge counts over all syncs.
func (f *FaultReport) TotalMissingEdges() int {
	n := 0
	for _, c := range f.MissingEdges {
		n += c
	}
	return n
}

// String renders a multi-line human-readable fault summary.
func (f *FaultReport) String() string {
	if !f.Any() {
		return "no faults recorded"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "faults: %d dropped msgs, %d retries, %d timeouts, %d duplicates, %d stale",
		f.Dropped, f.Retries, f.Timeouts, f.DuplicateReports, f.StaleMessages)
	if len(f.Crashed) > 0 {
		fmt.Fprintf(&b, "\n  crashed nodes: %s", strings.Join(f.Crashed, ", "))
	}
	if len(f.Restarted) > 0 {
		fmt.Fprintf(&b, "\n  restarted nodes: %s", strings.Join(f.Restarted, ", "))
	}
	if len(f.MissingWorkers) > 0 {
		fmt.Fprintf(&b, "\n  missing worker reports (%d total) at t=%s",
			f.TotalMissingWorkers(), renderRounds(f.MissingWorkers))
	}
	if len(f.MissingEdges) > 0 {
		fmt.Fprintf(&b, "\n  substituted edge reports (%d total) at t=%s",
			f.TotalMissingEdges(), renderRounds(f.MissingEdges))
	}
	for _, e := range f.NodeErrors {
		fmt.Fprintf(&b, "\n  node dropout: %s", e)
	}
	return b.String()
}

// renderRounds formats a round→count map in round order.
func renderRounds(m map[int]int) string {
	rounds := make([]int, 0, len(m))
	for r := range m {
		rounds = append(rounds, r)
	}
	sort.Ints(rounds)
	parts := make([]string, len(rounds))
	for i, r := range rounds {
		parts[i] = fmt.Sprintf("%d(×%d)", r, m[r])
	}
	return strings.Join(parts, " ")
}
