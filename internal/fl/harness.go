package fl

import (
	"fmt"

	"hieradmo/internal/dataset"
	"hieradmo/internal/model"
	"hieradmo/internal/parallel"
	"hieradmo/internal/rng"
	"hieradmo/internal/telemetry"
	"hieradmo/internal/tensor"
)

// Harness is the shared per-run runtime every algorithm builds on: validated
// configuration, data-size weights at every tier, per-worker seeded
// mini-batch streams, and curve recording. One Harness serves exactly one
// Run invocation.
type Harness struct {
	cfg *Config

	// EdgeWeights[l] = Dℓ/D.
	//flvet:allow ckptstate -- config-derived constant, rebuilt identically by NewHarness on resume
	EdgeWeights []float64
	// WorkerWeights[l][i] = D(i,ℓ)/Dℓ.
	//flvet:allow ckptstate -- config-derived constant, rebuilt identically by NewHarness on resume
	WorkerWeights [][]float64

	samplers [][]*rng.RNG
	lastLoss [][]float64
	// batchBufs[l][i] is worker {i,ℓ}'s reusable mini-batch buffer; like the
	// sampler and lastLoss slot it is owned by that worker's goroutine, so
	// Grad never allocates a batch after each worker's first call.
	batchBufs [][][]dataset.Sample
	evalSet   *dataset.Dataset
	sink      *telemetry.Sink
}

// NewHarness validates cfg and prepares the run state.
func NewHarness(cfg *Config) (*Harness, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	h := &Harness{
		cfg:           cfg,
		EdgeWeights:   make([]float64, cfg.NumEdges()),
		WorkerWeights: make([][]float64, cfg.NumEdges()),
		samplers:      make([][]*rng.RNG, cfg.NumEdges()),
		lastLoss:      make([][]float64, cfg.NumEdges()),
		batchBufs:     make([][][]dataset.Sample, cfg.NumEdges()),
		sink:          cfg.Telemetry,
	}
	total := 0
	edgeTotals := make([]int, cfg.NumEdges())
	for l, edge := range cfg.Edges {
		for _, shard := range edge {
			edgeTotals[l] += shard.Len()
		}
		total += edgeTotals[l]
	}
	for l, edge := range cfg.Edges {
		h.EdgeWeights[l] = float64(edgeTotals[l]) / float64(total)
		h.WorkerWeights[l] = make([]float64, len(edge))
		h.samplers[l] = make([]*rng.RNG, len(edge))
		h.lastLoss[l] = make([]float64, len(edge))
		h.batchBufs[l] = make([][]dataset.Sample, len(edge))
		for i, shard := range edge {
			h.WorkerWeights[l][i] = float64(shard.Len()) / float64(edgeTotals[l])
			h.samplers[l][i] = WorkerSampler(cfg.Seed, l, i)
		}
	}
	h.evalSet = cfg.Test
	if cfg.EvalSamples > 0 && cfg.EvalSamples < cfg.Test.Len() {
		idx := make([]int, cfg.EvalSamples)
		for i := range idx {
			idx[i] = i
		}
		h.evalSet = cfg.Test.Subset(idx)
	}
	return h, nil
}

// WorkerSampler returns the deterministic mini-batch stream of worker
// {i,ℓ} for a run seed. It is exported so alternative execution engines
// (the distributed cluster runtime) can reproduce the exact batch sequence
// of the in-process simulation, making results bit-comparable.
func WorkerSampler(seed uint64, l, i int) *rng.RNG {
	return rng.New(seed).Split(uint64(l)<<20 | uint64(i)<<4 | 1)
}

// Cfg returns the validated configuration.
func (h *Harness) Cfg() *Config { return h.cfg }

// Sink returns the run's telemetry sink. It may be nil; every sink
// method is nil-safe and free, so algorithms use it unconditionally.
func (h *Harness) Sink() *telemetry.Sink { return h.sink }

// Workers returns the effective goroutine-pool size for the parallel
// local-training phase: cfg.Workers, defaulting to runtime.GOMAXPROCS(0)
// when unset. Algorithms pass it to parallel.ForEach via
// parallel.WithWorkers.
func (h *Harness) Workers() int { return parallel.Resolve(h.cfg.Workers) }

// EvalSet returns the (possibly EvalSamples-capped) test subset used for
// curve evaluation.
func (h *Harness) EvalSet() *dataset.Dataset { return h.evalSet }

// GlobalWeight returns D(i,ℓ)/D, the worker's weight in the global
// objective.
func (h *Harness) GlobalWeight(l, i int) float64 {
	return h.EdgeWeights[l] * h.WorkerWeights[l][i]
}

// InitParams draws the common initial model x⁰ shared by all workers
// (Algorithm 1 line 1), deterministically from the config seed.
func (h *Harness) InitParams() tensor.Vector {
	return h.cfg.Model.Init(rng.New(h.cfg.Seed).Split(0x1717))
}

// Grad samples a mini-batch for worker {i,ℓ} and overwrites grad with the
// mean stochastic gradient ∇F(i,ℓ)(params); the mini-batch loss is recorded
// for curve reporting and returned.
//
// Grad is safe for concurrent use across DISTINCT workers: each worker
// {i,ℓ} owns its sampler stream and its lastLoss slot, so parallel calls
// never share mutable harness state (the model's workspace pool is itself
// concurrency-safe, see internal/nn). Two concurrent calls for the same
// worker race on both; the parallel round loops therefore fan out at most
// one goroutine per worker. WeightedLoss reads every lastLoss slot and must
// only be called after the round's Grad calls have been joined.
func (h *Harness) Grad(l, i int, params, grad tensor.Vector) (float64, error) {
	batch, err := h.cfg.Edges[l][i].BatchInto(h.samplers[l][i], h.cfg.BatchSize, h.batchBufs[l][i])
	if err != nil {
		return 0, fmt.Errorf("fl: worker {%d,%d} batch: %w", i, l, err)
	}
	h.batchBufs[l][i] = batch
	loss, err := h.cfg.Model.LossGrad(params, batch, grad)
	if err != nil {
		return 0, fmt.Errorf("fl: worker {%d,%d} gradient: %w", i, l, err)
	}
	if h.cfg.ClipNorm > 0 {
		if norm := grad.Norm(); norm > h.cfg.ClipNorm {
			grad.Scale(h.cfg.ClipNorm / norm)
			h.sink.M().GradClips.Inc()
		}
	}
	h.sink.M().WorkerSteps.Inc()
	h.lastLoss[l][i] = loss
	return loss, nil
}

// LastLoss returns worker {i,ℓ}'s most recent mini-batch loss. Like
// WeightedLoss it must only be read after the round's Grad calls have
// been joined; trace emission uses it so worker_train events can be
// written from sequential code (keeping event order deterministic) even
// when the training itself ran on a goroutine pool.
func (h *Harness) LastLoss(l, i int) float64 { return h.lastLoss[l][i] }

// WeightedLoss returns the data-weighted average of every worker's latest
// mini-batch loss — the curve's training-loss signal.
func (h *Harness) WeightedLoss() float64 {
	var total float64
	for l := range h.lastLoss {
		for i, loss := range h.lastLoss[l] {
			total += h.GlobalWeight(l, i) * loss
		}
	}
	return total
}

// EdgeAverage overwrites dst with the Dᵢ/Dℓ-weighted average of the workers'
// vectors at edge ℓ.
func (h *Harness) EdgeAverage(dst tensor.Vector, l int, vecs []tensor.Vector) error {
	if err := tensor.WeightedSum(dst, h.WorkerWeights[l], vecs); err != nil {
		return fmt.Errorf("fl: edge %d average: %w", l, err)
	}
	return nil
}

// CloudAverage overwrites dst with the Dℓ/D-weighted average of per-edge
// vectors.
func (h *Harness) CloudAverage(dst tensor.Vector, perEdge []tensor.Vector) error {
	if err := tensor.WeightedSum(dst, h.EdgeWeights, perEdge); err != nil {
		return fmt.Errorf("fl: cloud average: %w", err)
	}
	return nil
}

// GlobalAverage overwrites dst with the D(i,ℓ)/D-weighted average over all
// workers' vectors (vecs indexed [edge][worker]). This is the evaluation
// model between aggregation instants.
func (h *Harness) GlobalAverage(dst tensor.Vector, vecs [][]tensor.Vector) error {
	dst.Zero()
	for l := range vecs {
		for i, v := range vecs[l] {
			if err := dst.AXPY(h.GlobalWeight(l, i), v); err != nil {
				return fmt.Errorf("fl: global average worker {%d,%d}: %w", i, l, err)
			}
		}
	}
	return nil
}

// NewResult prepares a Result for the named algorithm.
func (h *Harness) NewResult(name string) *Result {
	return &Result{Algorithm: name, Iterations: h.cfg.T}
}

// ShouldEval reports whether iteration t is a curve-recording instant.
func (h *Harness) ShouldEval(t int) bool {
	return h.cfg.EvalEvery > 0 && t%h.cfg.EvalEvery == 0 && t != h.cfg.T
}

// RecordPoint evaluates params on the (possibly capped) test subset and
// appends a curve point for iteration t. Evaluation fans out over the same
// goroutine pool as local training — serial eval would bound the multicore
// speedup of short-τ runs (Amdahl) even with a perfectly parallel worker
// phase.
func (h *Harness) RecordPoint(res *Result, t int, params tensor.Vector) error {
	acc, err := model.AccuracyParallel(h.cfg.Model, params, h.evalSet, h.Workers())
	if err != nil {
		return fmt.Errorf("fl: eval at t=%d: %w", t, err)
	}
	loss := h.WeightedLoss()
	res.Curve = append(res.Curve, Point{Iter: t, TestAcc: acc, TrainLoss: loss})
	h.recordEval(t, acc, loss, false)
	return nil
}

// recordEval publishes one curve point to the sink: gauges always, a
// trace event when tracing is on.
func (h *Harness) recordEval(t int, acc, loss float64, final bool) {
	m := h.sink.M()
	m.Evals.Inc()
	m.TestAccuracy.Set(acc)
	m.TrainLoss.Set(loss)
	if h.sink.Tracing() {
		h.sink.Emit("eval",
			telemetry.Int("t", t),
			telemetry.Float("acc", acc),
			telemetry.Float("loss", loss),
			telemetry.Bool("final", final))
	}
}

// Finish evaluates the final model on the full test set and appends the
// terminal curve point at t = T.
func (h *Harness) Finish(res *Result, params tensor.Vector) error {
	acc, err := model.AccuracyParallel(h.cfg.Model, params, h.cfg.Test, h.Workers())
	if err != nil {
		return fmt.Errorf("fl: final eval: %w", err)
	}
	res.FinalAcc = acc
	res.FinalLoss = h.WeightedLoss()
	res.Curve = append(res.Curve, Point{Iter: h.cfg.T, TestAcc: acc, TrainLoss: res.FinalLoss})
	h.recordEval(h.cfg.T, acc, res.FinalLoss, true)
	return nil
}

// CloneGrid allocates an [edge][worker] grid of vectors, each a copy of src.
func (h *Harness) CloneGrid(src tensor.Vector) [][]tensor.Vector {
	grid := make([][]tensor.Vector, h.cfg.NumEdges())
	for l, edge := range h.cfg.Edges {
		grid[l] = make([]tensor.Vector, len(edge))
		for i := range edge {
			grid[l][i] = src.Clone()
		}
	}
	return grid
}

// ZeroGrid allocates an [edge][worker] grid of zero vectors of length dim.
func (h *Harness) ZeroGrid(dim int) [][]tensor.Vector {
	grid := make([][]tensor.Vector, h.cfg.NumEdges())
	for l, edge := range h.cfg.Edges {
		grid[l] = make([]tensor.Vector, len(edge))
		for i := range edge {
			grid[l][i] = tensor.NewVector(dim)
		}
	}
	return grid
}
