package fl

import "fmt"

// MembershipReport summarizes a cluster run's dynamic-membership
// trajectory: how many workers joined late, left early, or were moved
// between edges by re-tiering, and how the live population evolved. The
// cluster runtime fills it from the precomputed membership schedule, so in
// a fault-free run it always matches the churn trace exactly.
type MembershipReport struct {
	// Joins counts workers that joined after round 1.
	Joins int
	// Leaves counts workers that left before the final round.
	Leaves int
	// Reassignments counts worker moves caused by re-tiering.
	Reassignments int
	// Retierings counts re-tiering steps that changed the assignment.
	Retierings int
	// Epochs is the number of distinct worker→edge assignment intervals.
	Epochs int
	// InitialWorkers and FinalWorkers are the live worker counts at the
	// first and last edge rounds.
	InitialWorkers int
	FinalWorkers   int
	// MigrationPolicy names the γℓ migration rule in effect (zero, carry,
	// or rescale).
	MigrationPolicy string
}

// String renders the report for CLI output.
func (m *MembershipReport) String() string {
	if m == nil {
		return "membership: static"
	}
	return fmt.Sprintf("membership: %d joins, %d leaves, %d reassignments over %d re-tierings; %d epochs; workers %d→%d; migration=%s",
		m.Joins, m.Leaves, m.Reassignments, m.Retierings, m.Epochs, m.InitialWorkers, m.FinalWorkers, m.MigrationPolicy)
}
