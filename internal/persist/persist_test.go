package persist

import (
	"bytes"
	"errors"
	"math"
	"path/filepath"
	"strings"
	"testing"

	"hieradmo/internal/fl"
	"hieradmo/internal/tensor"
)

func sampleResult() *fl.Result {
	return &fl.Result{
		Algorithm:  "HierAdMo",
		FinalAcc:   0.87,
		FinalLoss:  0.12,
		Iterations: 240,
		Curve: []fl.Point{
			{Iter: 40, TestAcc: 0.4, TrainLoss: 1.5},
			{Iter: 240, TestAcc: 0.87, TrainLoss: 0.12},
		},
	}
}

func TestResultJSONRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteResultJSON(&buf, sampleResult()); err != nil {
		t.Fatal(err)
	}
	got, err := ReadResultJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := sampleResult()
	if got.Algorithm != want.Algorithm || got.FinalAcc != want.FinalAcc ||
		len(got.Curve) != len(want.Curve) || got.Curve[1] != want.Curve[1] {
		t.Errorf("round trip mismatch: %+v", got)
	}
}

func TestReadResultJSONMalformed(t *testing.T) {
	if _, err := ReadResultJSON(strings.NewReader("{nope")); !errors.Is(err, ErrFormat) {
		t.Errorf("err = %v, want ErrFormat", err)
	}
}

func TestResultFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "res.json")
	if err := SaveResult(path, sampleResult()); err != nil {
		t.Fatal(err)
	}
	got, err := LoadResult(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.FinalAcc != 0.87 {
		t.Errorf("FinalAcc = %v", got.FinalAcc)
	}
	if _, err := LoadResult(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file loaded")
	}
}

func TestCurveCSVRoundTrip(t *testing.T) {
	a := sampleResult()
	b := sampleResult()
	b.Algorithm = "FedAvg"
	b.Curve[0].TestAcc = 1e-17 // exercise full float precision

	var buf bytes.Buffer
	if err := WriteCurveCSV(&buf, a, b); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCurveCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("%d algorithms", len(got))
	}
	if got["HierAdMo"][1] != a.Curve[1] {
		t.Errorf("HierAdMo curve mismatch: %+v", got["HierAdMo"])
	}
	if got["FedAvg"][0].TestAcc != 1e-17 {
		t.Errorf("precision lost: %v", got["FedAvg"][0].TestAcc)
	}
}

func TestReadCurveCSVMalformed(t *testing.T) {
	cases := []string{
		"",
		"a,b\n",
		"algorithm,iter,test_acc,train_loss\nx,notanint,0.5,0.5\n",
		"algorithm,iter,test_acc,train_loss\nx,1,notafloat,0.5\n",
		"algorithm,iter,test_acc,train_loss\nx,1,0.5,notafloat\n",
	}
	for i, c := range cases {
		if _, err := ReadCurveCSV(strings.NewReader(c)); !errors.Is(err, ErrFormat) {
			t.Errorf("case %d: err = %v, want ErrFormat", i, err)
		}
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	params := tensor.Vector{0, 1, -1, math.Pi, 1e-300, math.MaxFloat64, math.Inf(1)}
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, params); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(params) {
		t.Fatalf("len = %d", len(got))
	}
	for i := range params {
		if math.Float64bits(got[i]) != math.Float64bits(params[i]) {
			t.Errorf("param %d: %v != %v (bit-exactness violated)", i, got[i], params[i])
		}
	}
}

func TestCheckpointFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "model.ckpt")
	params := tensor.NewVector(1000)
	for i := range params {
		params[i] = float64(i) * 0.001
	}
	if err := SaveCheckpoint(path, params); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if got[999] != 0.999 {
		t.Errorf("got[999] = %v", got[999])
	}
}

func TestCheckpointMalformed(t *testing.T) {
	if _, err := ReadCheckpoint(strings.NewReader("WRONGMAG" + strings.Repeat("x", 16))); !errors.Is(err, ErrFormat) {
		t.Errorf("bad magic err = %v", err)
	}
	if _, err := ReadCheckpoint(strings.NewReader("short")); !errors.Is(err, ErrFormat) {
		t.Errorf("truncated err = %v", err)
	}
	// Valid magic, implausible length.
	var buf bytes.Buffer
	buf.WriteString("HADMOCK1")
	buf.Write([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f})
	if _, err := ReadCheckpoint(&buf); !errors.Is(err, ErrFormat) {
		t.Errorf("implausible length err = %v", err)
	}
	// Valid header, truncated data.
	var buf2 bytes.Buffer
	if err := WriteCheckpoint(&buf2, tensor.Vector{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	trunc := buf2.Bytes()[:buf2.Len()-4]
	if _, err := ReadCheckpoint(bytes.NewReader(trunc)); !errors.Is(err, ErrFormat) {
		t.Errorf("truncated data err = %v", err)
	}
}

func TestCheckpointEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, nil); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("empty checkpoint read back %d params", len(got))
	}
}
