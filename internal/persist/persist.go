// Package persist serializes run artifacts: results as JSON, accuracy
// curves as CSV (for external plotting), and model parameters as a compact
// binary checkpoint, all over stdlib encoders. Every format round-trips
// bit-exactly for float64 payloads.
package persist

import (
	"bufio"
	"encoding/binary"
	"encoding/csv"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"strconv"

	"hieradmo/internal/fl"
	"hieradmo/internal/tensor"
)

// ErrFormat wraps malformed-input failures.
var ErrFormat = errors.New("persist: malformed input")

// checkpointMagic identifies parameter checkpoint files.
const checkpointMagic = "HADMOCK1"

// WriteResultJSON serializes a run result as indented JSON.
func WriteResultJSON(w io.Writer, res *fl.Result) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(res); err != nil {
		return fmt.Errorf("persist: encode result: %w", err)
	}
	return nil
}

// ReadResultJSON deserializes a run result.
func ReadResultJSON(r io.Reader) (*fl.Result, error) {
	var res fl.Result
	if err := json.NewDecoder(r).Decode(&res); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrFormat, err)
	}
	return &res, nil
}

// writeFileAtomic writes the payload produced by write into path through a
// temp file in the same directory, fsyncing before the rename: a crash at
// any point leaves either the previous file or the complete new one, never
// a truncated artifact. The file handle is closed exactly once on every
// path.
func writeFileAtomic(path string, write func(io.Writer) error) error {
	f, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	tmp := f.Name()
	if err := write(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("persist: sync %s: %w", tmp, err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("persist: close %s: %w", tmp, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("persist: rename: %w", err)
	}
	return nil
}

// SaveResult writes a result to path as JSON, atomically.
func SaveResult(path string, res *fl.Result) error {
	return writeFileAtomic(path, func(w io.Writer) error {
		return WriteResultJSON(w, res)
	})
}

// LoadResult reads a JSON result from path.
func LoadResult(path string) (*fl.Result, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}
	defer f.Close()
	return ReadResultJSON(f)
}

// WriteCurveCSV writes "iter,test_acc,train_loss" rows for one or more
// results side by side (long format with an algorithm column).
func WriteCurveCSV(w io.Writer, results ...*fl.Result) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"algorithm", "iter", "test_acc", "train_loss"}); err != nil {
		return fmt.Errorf("persist: csv header: %w", err)
	}
	for _, res := range results {
		for _, p := range res.Curve {
			row := []string{
				res.Algorithm,
				strconv.Itoa(p.Iter),
				strconv.FormatFloat(p.TestAcc, 'g', -1, 64),
				strconv.FormatFloat(p.TrainLoss, 'g', -1, 64),
			}
			if err := cw.Write(row); err != nil {
				return fmt.Errorf("persist: csv row: %w", err)
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCurveCSV parses curves previously written by WriteCurveCSV, grouped
// by algorithm in first-appearance order.
func ReadCurveCSV(r io.Reader) (map[string][]fl.Point, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrFormat, err)
	}
	if len(rows) == 0 || len(rows[0]) != 4 {
		return nil, fmt.Errorf("%w: missing header", ErrFormat)
	}
	out := make(map[string][]fl.Point)
	for _, row := range rows[1:] {
		if len(row) != 4 {
			return nil, fmt.Errorf("%w: row with %d fields", ErrFormat, len(row))
		}
		iter, err := strconv.Atoi(row[1])
		if err != nil {
			return nil, fmt.Errorf("%w: iter %q", ErrFormat, row[1])
		}
		acc, err := strconv.ParseFloat(row[2], 64)
		if err != nil {
			return nil, fmt.Errorf("%w: acc %q", ErrFormat, row[2])
		}
		loss, err := strconv.ParseFloat(row[3], 64)
		if err != nil {
			return nil, fmt.Errorf("%w: loss %q", ErrFormat, row[3])
		}
		out[row[0]] = append(out[row[0]], fl.Point{Iter: iter, TestAcc: acc, TrainLoss: loss})
	}
	return out, nil
}

// WriteCheckpoint writes model parameters as a little-endian binary blob
// with a magic header and length prefix.
func WriteCheckpoint(w io.Writer, params tensor.Vector) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(checkpointMagic); err != nil {
		return fmt.Errorf("persist: checkpoint header: %w", err)
	}
	if err := binary.Write(bw, binary.LittleEndian, uint64(len(params))); err != nil {
		return fmt.Errorf("persist: checkpoint length: %w", err)
	}
	buf := make([]byte, 8)
	for _, v := range params {
		binary.LittleEndian.PutUint64(buf, math.Float64bits(v))
		if _, err := bw.Write(buf); err != nil {
			return fmt.Errorf("persist: checkpoint data: %w", err)
		}
	}
	return bw.Flush()
}

// ReadCheckpoint reads parameters written by WriteCheckpoint.
func ReadCheckpoint(r io.Reader) (tensor.Vector, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(checkpointMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("%w: header: %v", ErrFormat, err)
	}
	if string(magic) != checkpointMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrFormat, magic)
	}
	var n uint64
	if err := binary.Read(br, binary.LittleEndian, &n); err != nil {
		return nil, fmt.Errorf("%w: length: %v", ErrFormat, err)
	}
	const maxParams = 1 << 30 // 8 GiB of float64s; reject corrupt lengths
	if n > maxParams {
		return nil, fmt.Errorf("%w: implausible parameter count %d", ErrFormat, n)
	}
	// Grow the parameter slice from bytes actually read rather than trusting
	// the declared count: a corrupt in-range length must not force a
	// multi-GiB allocation before the short read is detected.
	capHint := n
	if capHint > 1<<16 {
		capHint = 1 << 16
	}
	params := make(tensor.Vector, 0, capHint)
	buf := make([]byte, 8)
	for i := uint64(0); i < n; i++ {
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, fmt.Errorf("%w: data at %d: %v", ErrFormat, i, err)
		}
		params = append(params, math.Float64frombits(binary.LittleEndian.Uint64(buf)))
	}
	return params, nil
}

// SaveCheckpoint writes params to path, atomically.
func SaveCheckpoint(path string, params tensor.Vector) error {
	return writeFileAtomic(path, func(w io.Writer) error {
		return WriteCheckpoint(w, params)
	})
}

// LoadCheckpoint reads params from path.
func LoadCheckpoint(path string) (tensor.Vector, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}
	defer f.Close()
	return ReadCheckpoint(f)
}
