package membership

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// ChurnTrace is the replayable text format for churn plans: one event per
// line, `<action> <worker-id> @<round>`, with '#' comments and blank lines
// ignored. Example:
//
//	# seeded churn trace (edge rounds)
//	join worker-0-2 @3
//	leave worker-1-1 @7
//
// The same events can be given inline on a command line as a comma-separated
// spec: "join:worker-0-2@3,leave:worker-1-1@7" (see ParseSpec).

// ParseTrace reads a ChurnTrace from r.
func ParseTrace(r io.Reader) (Plan, error) {
	var p Plan
	sc := bufio.NewScanner(r)
	for lineNo := 1; sc.Scan(); lineNo++ {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 3 || !strings.HasPrefix(fields[2], "@") {
			return Plan{}, fmt.Errorf("membership: trace line %d: want \"<action> <worker-id> @<round>\", got %q", lineNo, line)
		}
		ev, err := parseEvent(fields[0], fields[1], fields[2][1:])
		if err != nil {
			return Plan{}, fmt.Errorf("membership: trace line %d: %w", lineNo, err)
		}
		p.Events = append(p.Events, ev)
	}
	if err := sc.Err(); err != nil {
		return Plan{}, fmt.Errorf("membership: read trace: %w", err)
	}
	return p, nil
}

// WriteTrace writes p to w in canonical (sorted) ChurnTrace form, so a
// written trace parses back to an equivalent plan.
func WriteTrace(w io.Writer, p Plan) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "# churn trace: <action> <worker-id> @<edge-round>")
	for _, e := range p.normalized() {
		fmt.Fprintf(bw, "%s %s @%d\n", e.Action, e.Worker.NodeID(), e.Round)
	}
	return bw.Flush()
}

// ParseSpec parses the inline comma-separated plan form used by CLI flags:
// "join:worker-0-2@3,leave:worker-1-1@7". An empty spec is the empty plan.
func ParseSpec(spec string) (Plan, error) {
	var p Plan
	if strings.TrimSpace(spec) == "" {
		return p, nil
	}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		action, rest, ok := strings.Cut(part, ":")
		if !ok {
			return Plan{}, fmt.Errorf("membership: spec entry %q: want \"<action>:<worker-id>@<round>\"", part)
		}
		id, round, ok := strings.Cut(rest, "@")
		if !ok {
			return Plan{}, fmt.Errorf("membership: spec entry %q: missing @<round>", part)
		}
		ev, err := parseEvent(action, id, round)
		if err != nil {
			return Plan{}, fmt.Errorf("membership: spec entry %q: %w", part, err)
		}
		p.Events = append(p.Events, ev)
	}
	return p, nil
}

// parseEvent assembles an Event from its three textual components.
func parseEvent(action, id, round string) (Event, error) {
	var ev Event
	switch action {
	case "join":
		ev.Action = ActionJoin
	case "leave":
		ev.Action = ActionLeave
	default:
		return Event{}, fmt.Errorf("unknown action %q (want join|leave)", action)
	}
	ref, err := ParseNodeID(id)
	if err != nil {
		return Event{}, err
	}
	ev.Worker = ref
	if _, err := fmt.Sscanf(round, "%d", &ev.Round); err != nil || ev.Round < 1 {
		return Event{}, fmt.Errorf("bad round %q (want a positive integer)", round)
	}
	return ev, nil
}
