package membership

import (
	"errors"
	"strings"
	"testing"
)

// grid builds the natal refs of a [counts[0], counts[1], ...] topology.
func grid(counts ...int) []Ref {
	var refs []Ref
	for l, n := range counts {
		for i := 0; i < n; i++ {
			refs = append(refs, Ref{Edge: l, Index: i})
		}
	}
	return refs
}

// uniformStats gives every worker weight 10 and a one-hot histogram cycling
// over numClasses classes, so clustering has structure to find.
func uniformStats(refs []Ref, numClasses int) []WorkerStat {
	stats := make([]WorkerStat, len(refs))
	for i, r := range refs {
		hist := make([]float64, numClasses)
		hist[i%numClasses] = 1
		stats[i] = WorkerStat{Ref: r, Weight: 10, Hist: hist}
	}
	return stats
}

func TestRefNodeIDRoundTrip(t *testing.T) {
	for _, r := range grid(3, 2) {
		got, err := ParseNodeID(r.NodeID())
		if err != nil || got != r {
			t.Fatalf("round trip %v: got %v, err %v", r, got, err)
		}
	}
	for _, bad := range []string{"worker-1", "edge-0", "worker-1-2-3", "worker--1-0", "worker-a-b", ""} {
		if _, err := ParseNodeID(bad); err == nil {
			t.Errorf("ParseNodeID(%q) should fail", bad)
		}
	}
}

func TestTraceRoundTrip(t *testing.T) {
	in := "# comment\n\njoin worker-0-2 @3\nleave worker-1-1 @7\n"
	p, err := ParseTrace(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Events) != 2 {
		t.Fatalf("got %d events", len(p.Events))
	}
	var buf strings.Builder
	if err := WriteTrace(&buf, p); err != nil {
		t.Fatal(err)
	}
	p2, err := ParseTrace(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if p.Signature() != p2.Signature() {
		t.Fatalf("trace round trip changed plan: %q vs %q", p.Signature(), p2.Signature())
	}
}

func TestParseSpec(t *testing.T) {
	p, err := ParseSpec("join:worker-0-2@3, leave:worker-1-1@7")
	if err != nil {
		t.Fatal(err)
	}
	want := Plan{Events: []Event{
		{Round: 3, Action: ActionJoin, Worker: Ref{0, 2}},
		{Round: 7, Action: ActionLeave, Worker: Ref{1, 1}},
	}}
	if p.Signature() != want.Signature() {
		t.Fatalf("got %q want %q", p.Signature(), want.Signature())
	}
	if p, err := ParseSpec("  "); err != nil || !p.Empty() {
		t.Fatalf("blank spec: %v %v", p, err)
	}
	for _, bad := range []string{"join worker-0-0@1", "hop:worker-0-0@1", "join:worker-0-0", "join:worker-0-0@x"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) should fail", bad)
		}
	}
}

func TestAssignDeterministicAndBalanced(t *testing.T) {
	stats := uniformStats(grid(3, 3, 3), 3)
	a, err := Assign(stats, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Assign(stats, 3)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 3)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("assignment not deterministic at %d: %d vs %d", i, a[i], b[i])
		}
		counts[a[i]]++
	}
	for l, c := range counts {
		if c != 3 {
			t.Fatalf("edge %d got %d workers, want 3", l, c)
		}
	}
	// With one-hot histograms cycling over 3 classes, same-class workers
	// should co-locate after the seeded first three.
	for i := 3; i < 9; i++ {
		if a[i] != a[i%3] {
			t.Errorf("worker %d (class %d) on edge %d, classmate on %d", i, i%3, a[i], a[i%3])
		}
	}
}

func TestAssignErrors(t *testing.T) {
	stats := uniformStats(grid(1, 1), 2)
	if _, err := Assign(stats, 3); err == nil {
		t.Error("2 workers onto 3 edges should fail")
	}
	if _, err := Assign(stats, 0); err == nil {
		t.Error("0 edges should fail")
	}
}

func buildTestSchedule(t *testing.T, plan Plan, retierEvery int) *Schedule {
	t.Helper()
	stats := uniformStats(grid(3, 3), 4)
	s, err := BuildSchedule(plan, stats, 2, 12, 2, retierEvery)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestScheduleStaticPlan(t *testing.T) {
	s := buildTestSchedule(t, Plan{}, 0)
	if s.Epochs() != 1 {
		t.Fatalf("static plan should have 1 epoch, got %d", s.Epochs())
	}
	for k := 1; k <= 12; k++ {
		for l := 0; l < 2; l++ {
			cohort := s.Cohort(k, l)
			if len(cohort) != 3 {
				t.Fatalf("round %d edge %d cohort size %d", k, l, len(cohort))
			}
			for i, r := range cohort {
				if r != (Ref{Edge: l, Index: i}) {
					t.Fatalf("round %d edge %d: natal cohort expected, got %v", k, l, cohort)
				}
			}
		}
	}
	sum := s.Summarize()
	if sum.Joins != 0 || sum.Leaves != 0 || sum.Reassignments != 0 || sum.Retierings != 0 {
		t.Fatalf("static summary has churn: %+v", sum)
	}
}

func TestScheduleJoinLeaveSpans(t *testing.T) {
	plan := Plan{Events: []Event{
		{Round: 3, Action: ActionJoin, Worker: Ref{0, 2}},
		{Round: 7, Action: ActionLeave, Worker: Ref{1, 1}},
	}}
	s := buildTestSchedule(t, plan, 0)

	join, last, ok := s.Span(Ref{0, 2})
	if !ok || join != 3 || last != 12 {
		t.Fatalf("joiner span: %d..%d ok=%v", join, last, ok)
	}
	join, last, ok = s.Span(Ref{1, 1})
	if !ok || join != 1 || last != 7 {
		t.Fatalf("leaver span: %d..%d ok=%v", join, last, ok)
	}
	if _, ok := s.EdgeOf(2, Ref{0, 2}); ok {
		t.Error("joiner live before its join round")
	}
	if l, ok := s.EdgeOf(3, Ref{0, 2}); !ok || l != 0 {
		t.Errorf("joiner should be on natal edge 0 at round 3, got %d ok=%v", l, ok)
	}
	if _, ok := s.EdgeOf(8, Ref{1, 1}); ok {
		t.Error("leaver live after its leave round")
	}
	if got := s.LiveCount(1); got != 5 {
		t.Errorf("round 1 live = %d, want 5", got)
	}
	if got := s.LiveCount(12); got != 5 {
		t.Errorf("round 12 live = %d, want 5", got)
	}
	if j := s.JoinsAt(3); len(j) != 1 || j[0] != (Ref{0, 2}) {
		t.Errorf("JoinsAt(3) = %v", j)
	}
	if l := s.LeavesAfter(7); len(l) != 1 || l[0] != (Ref{1, 1}) {
		t.Errorf("LeavesAfter(7) = %v", l)
	}
	// Weights: at round 1, edge 0 has 2 of 5 live workers (all weight 10).
	ew := s.EdgeWeights(1)
	if ew[0] != 20.0/50.0 || ew[1] != 30.0/50.0 {
		t.Errorf("round 1 edge weights = %v", ew)
	}
	cw := s.CohortWeights(3, 0)
	if len(cw) != 3 || cw[0] != 10.0/30.0 {
		t.Errorf("round 3 edge 0 cohort weights = %v", cw)
	}
}

func TestScheduleRetierBoundaries(t *testing.T) {
	// pi=2, retierEvery=2 → re-tiering effect at rounds 5 and 9 (k-1 ∈ {4, 8}).
	s := buildTestSchedule(t, Plan{}, 2)
	for k := 2; k <= 12; k++ {
		changedEpoch := s.EpochIndex(k) != s.EpochIndex(k-1)
		wantBoundary := k == 5 || k == 9
		if changedEpoch && !wantBoundary {
			t.Errorf("unexpected epoch boundary at round %d", k)
		}
		if changedEpoch && !s.EpochAt(k).Retier {
			t.Errorf("boundary at %d not marked as re-tiering", k)
		}
	}
	// The cyclic one-hot histograms make the natal split non-coherent, so
	// the first re-tiering must actually move someone.
	if s.Retierings() == 0 {
		t.Fatal("expected at least one effective re-tiering")
	}
	if got := s.Summarize().Reassignments; got == 0 {
		t.Fatal("expected reassignments from re-tiering")
	}
	// Overlap flags the change and stays within (0, 1].
	frac, changed := s.Overlap(5, 0)
	if !changed {
		t.Fatal("Overlap(5, 0) should report a change")
	}
	if frac < 0 || frac > 1 {
		t.Fatalf("overlap fraction %v out of range", frac)
	}
	if _, changed := s.Overlap(4, 0); changed {
		t.Error("Overlap(4, 0) should be unchanged")
	}
}

func TestScheduleCohortCollapse(t *testing.T) {
	stats := uniformStats(grid(2, 1), 3)
	plan := Plan{Events: []Event{{Round: 4, Action: ActionLeave, Worker: Ref{1, 0}}}}
	_, err := BuildSchedule(plan, stats, 2, 8, 2, 0)
	if err == nil {
		t.Fatal("emptying edge 1 should fail")
	}
	var ce *CohortError
	if !errors.As(err, &ce) {
		t.Fatalf("want *CohortError, got %T: %v", err, err)
	}
	if ce.Round != 5 || ce.Edge != 1 || ce.Live != 0 {
		t.Fatalf("CohortError = %+v", ce)
	}
	if !errors.Is(err, ErrCohortCollapsed) {
		t.Error("CohortError should match ErrCohortCollapsed")
	}
}

func TestScheduleValidation(t *testing.T) {
	stats := uniformStats(grid(2, 2), 3)
	cases := []Plan{
		{Events: []Event{{Round: 99, Action: ActionJoin, Worker: Ref{0, 0}}}},                                                    // round out of range
		{Events: []Event{{Round: 2, Action: ActionJoin, Worker: Ref{5, 0}}}},                                                     // unknown worker
		{Events: []Event{{Round: 3, Action: ActionJoin, Worker: Ref{0, 0}}, {Round: 2, Action: ActionLeave, Worker: Ref{0, 0}}}}, // leave before join
		{Events: []Event{{Round: 2, Action: ActionJoin, Worker: Ref{0, 0}}, {Round: 3, Action: ActionJoin, Worker: Ref{0, 0}}}},  // double join
	}
	for i, plan := range cases {
		if _, err := BuildSchedule(plan, stats, 2, 8, 2, 0); err == nil {
			t.Errorf("case %d should fail validation", i)
		}
	}
}

func TestScheduleSignatureStable(t *testing.T) {
	plan := Plan{Events: []Event{
		{Round: 7, Action: ActionLeave, Worker: Ref{1, 1}},
		{Round: 3, Action: ActionJoin, Worker: Ref{0, 2}},
	}}
	a := buildTestSchedule(t, plan, 2).Signature()
	b := buildTestSchedule(t, plan.Clone(), 2).Signature()
	if a != b {
		t.Fatalf("signatures differ: %q vs %q", a, b)
	}
	c := buildTestSchedule(t, plan, 1).Signature()
	if a == c {
		t.Fatal("different cadence should change the signature")
	}
}

func TestGenerateDeterministicAndValid(t *testing.T) {
	refs := grid(3, 3)
	spec := GenSpec{Seed: 7, Joins: 1, Leaves: 2}
	p1, err := Generate(spec, refs, 12)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Generate(spec, refs, 12)
	if err != nil {
		t.Fatal(err)
	}
	if p1.Signature() != p2.Signature() {
		t.Fatalf("generation not deterministic: %q vs %q", p1.Signature(), p2.Signature())
	}
	if len(p1.Events) != 3 {
		t.Fatalf("want 3 events, got %d (%s)", len(p1.Events), p1.Signature())
	}
	if _, err := BuildSchedule(p1, uniformStats(refs, 4), 2, 12, 2, 2); err != nil {
		t.Fatalf("generated plan must build a schedule: %v", err)
	}
	other, err := Generate(GenSpec{Seed: 8, Joins: 1, Leaves: 2}, refs, 12)
	if err != nil {
		t.Fatal(err)
	}
	if other.Signature() == p1.Signature() {
		t.Log("different seeds produced the same plan (possible but unlikely)")
	}
}
