package membership

import (
	"fmt"
	"sort"
)

// Epoch is a maximal interval of edge rounds over which the worker→edge
// assignment is constant. A new epoch opens at a join round, the round after
// a leave, or a re-tiering round that actually changed the assignment.
type Epoch struct {
	// Start is the first edge round of the epoch (1-based).
	Start int
	// Cohorts[l] lists the workers assigned to edge l, sorted by Ref — the
	// canonical aggregation order for the epoch.
	Cohorts [][]Ref
	// Retier marks an epoch opened by a cloud re-tiering step (as opposed to
	// a join/leave boundary); the cloud broadcasts REASSIGN for exactly
	// these epochs.
	Retier bool
}

// span records a worker's lifetime in edge rounds: live on [join, last].
type span struct {
	join, last int
}

// Schedule is the precomputed membership trajectory of a run: for every
// edge round 1..K, which workers are live and which edge each reports to.
// It is a pure function of (plan, stats, topology, cadence), so every node
// builds the identical Schedule locally and no runtime decision-making is
// needed — see the package comment for why this is the determinism anchor.
type Schedule struct {
	NumEdges int
	// K is the number of edge rounds (T/τ).
	K int
	// Pi is the cloud sync period in edge rounds.
	Pi int
	// RetierEvery re-clusters workers every RetierEvery cloud syncs
	// (0 disables re-tiering). Re-tiering takes effect at rounds
	// k = m·Pi·RetierEvery + 1, i.e. the first round after an eligible sync.
	RetierEvery int

	plan   Plan
	epochs []Epoch
	// byRound maps round k (1-based; index 0 unused) to its epoch index.
	byRound []int
	weight  map[Ref]float64
	spans   map[Ref]span
	// edgeWeights[e][l] is edge l's live data fraction during epoch e.
	edgeWeights [][]float64
	// cohortWeights[e][l][j] is the data weight of cohort member j of edge l
	// during epoch e, normalized over the cohort.
	cohortWeights [][][]float64
}

// BuildSchedule validates plan against the topology and simulates the full
// membership trajectory. stats must contain every worker in the configured
// topology (its natal position is stats[i].Ref); K is the number of edge
// rounds, pi the cloud sync period, retierEvery the re-tiering cadence in
// cloud syncs (0 disables). A planned state in which some edge's live
// cohort cannot ever meet its quorum — the cluster computes quorums over
// live membership, so that means an empty cohort — yields a *CohortError
// naming the first offending round and edge, letting the runtime fail fast
// instead of hanging until RecvTimeout.
func BuildSchedule(plan Plan, stats []WorkerStat, numEdges, K, pi, retierEvery int) (*Schedule, error) {
	if numEdges < 1 || K < 1 || pi < 1 {
		return nil, fmt.Errorf("membership: bad topology: edges=%d K=%d pi=%d", numEdges, K, pi)
	}
	if retierEvery < 0 {
		return nil, fmt.Errorf("membership: retier-every must be >= 0, got %d", retierEvery)
	}
	byRef := make(map[Ref]WorkerStat, len(stats))
	for _, s := range stats {
		if s.Ref.Edge < 0 || s.Ref.Edge >= numEdges {
			return nil, fmt.Errorf("membership: worker %s names edge outside topology", s.Ref.NodeID())
		}
		if _, dup := byRef[s.Ref]; dup {
			return nil, fmt.Errorf("membership: duplicate worker %s in stats", s.Ref.NodeID())
		}
		byRef[s.Ref] = s
	}

	s := &Schedule{
		NumEdges: numEdges,
		K:        K,
		Pi:       pi,

		RetierEvery: retierEvery,
		plan:        plan.Clone(),
		byRound:     make([]int, K+1),
		weight:      make(map[Ref]float64, len(stats)),
		spans:       make(map[Ref]span, len(stats)),
	}

	// Resolve per-worker lifetimes from the plan.
	joins := make(map[Ref]int)
	leaves := make(map[Ref]int)
	for _, e := range plan.normalized() {
		if _, ok := byRef[e.Worker]; !ok {
			return nil, fmt.Errorf("membership: plan names unknown worker %s", e.Worker.NodeID())
		}
		if e.Round < 1 || e.Round > K {
			return nil, fmt.Errorf("membership: %s %s @%d is outside rounds 1..%d", e.Action, e.Worker.NodeID(), e.Round, K)
		}
		switch e.Action {
		case ActionJoin:
			if _, dup := joins[e.Worker]; dup {
				return nil, fmt.Errorf("membership: worker %s has two join events", e.Worker.NodeID())
			}
			joins[e.Worker] = e.Round
		case ActionLeave:
			if _, dup := leaves[e.Worker]; dup {
				return nil, fmt.Errorf("membership: worker %s has two leave events", e.Worker.NodeID())
			}
			leaves[e.Worker] = e.Round
		}
	}
	refs := make([]Ref, 0, len(stats))
	for _, st := range stats {
		refs = append(refs, st.Ref)
	}
	sort.Slice(refs, func(i, j int) bool { return refs[i].Less(refs[j]) })
	for _, r := range refs {
		sp := span{join: 1, last: K}
		if jr, ok := joins[r]; ok {
			sp.join = jr
		}
		if lr, ok := leaves[r]; ok {
			sp.last = lr
		}
		if sp.last < sp.join {
			return nil, fmt.Errorf("membership: worker %s leaves at round %d before joining at round %d", r.NodeID(), sp.last, sp.join)
		}
		s.spans[r] = sp
		s.weight[r] = byRef[r].Weight
	}

	// Simulate the trajectory round by round. assigned maps each live worker
	// to its current edge; iteration is always over the sorted refs slice,
	// never the map, so every float reduction happens in a fixed order.
	assigned := make(map[Ref]int, len(refs))
	for k := 1; k <= K; k++ {
		changed := k == 1
		for _, r := range refs {
			sp := s.spans[r]
			if sp.join == k {
				assigned[r] = r.Edge // joiners start on their natal edge
				if k > 1 {
					changed = true
				}
			}
			if sp.last == k-1 {
				delete(assigned, r)
				changed = true
			}
		}
		retier := retierEvery > 0 && k > 1 && (k-1)%(pi*retierEvery) == 0
		retierChanged := false
		if retier {
			live := make([]WorkerStat, 0, len(assigned))
			for _, r := range refs {
				if _, ok := assigned[r]; ok {
					live = append(live, byRef[r])
				}
			}
			if len(live) < numEdges {
				return nil, &CohortError{Round: k, Edge: numEdges - 1, Live: 0, Need: 1}
			}
			newEdges, err := Assign(live, numEdges)
			if err != nil {
				return nil, err
			}
			for i, st := range live {
				if assigned[st.Ref] != newEdges[i] {
					assigned[st.Ref] = newEdges[i]
					retierChanged = true
				}
			}
			changed = changed || retierChanged
		}

		if changed {
			cohorts := make([][]Ref, numEdges)
			for _, r := range refs {
				if l, ok := assigned[r]; ok {
					cohorts[l] = append(cohorts[l], r)
				}
			}
			const need = 1
			for l, cohort := range cohorts {
				if len(cohort) < need {
					return nil, &CohortError{Round: k, Edge: l, Live: len(cohort), Need: need}
				}
			}
			s.epochs = append(s.epochs, Epoch{Start: k, Cohorts: cohorts, Retier: retierChanged})
		}
		s.byRound[k] = len(s.epochs) - 1
	}

	s.buildWeights()
	return s, nil
}

// buildWeights precomputes, per epoch, each edge's live data fraction and
// each cohort member's normalized data weight — the same Dℓ/D and D(i,ℓ)/Dℓ
// formulas the static harness uses, restricted to live workers.
func (s *Schedule) buildWeights() {
	s.edgeWeights = make([][]float64, len(s.epochs))
	s.cohortWeights = make([][][]float64, len(s.epochs))
	for e, ep := range s.epochs {
		total := 0.0
		edgeTotals := make([]float64, s.NumEdges)
		for l, cohort := range ep.Cohorts {
			for _, r := range cohort {
				edgeTotals[l] += s.weight[r]
			}
			total += edgeTotals[l]
		}
		ew := make([]float64, s.NumEdges)
		cw := make([][]float64, s.NumEdges)
		for l, cohort := range ep.Cohorts {
			ew[l] = edgeTotals[l] / total
			cw[l] = make([]float64, len(cohort))
			for j, r := range cohort {
				cw[l][j] = s.weight[r] / edgeTotals[l]
			}
		}
		s.edgeWeights[e] = ew
		s.cohortWeights[e] = cw
	}
}

// EpochIndex returns the index of the epoch covering round k (1..K).
func (s *Schedule) EpochIndex(k int) int {
	if k < 1 {
		k = 1
	}
	if k > s.K {
		k = s.K
	}
	return s.byRound[k]
}

// Epochs returns the number of epochs in the trajectory.
func (s *Schedule) Epochs() int { return len(s.epochs) }

// EpochAt returns the epoch covering round k.
func (s *Schedule) EpochAt(k int) Epoch { return s.epochs[s.EpochIndex(k)] }

// Cohort returns edge l's cohort during round k, sorted by Ref. Callers
// must not mutate the returned slice.
func (s *Schedule) Cohort(k, l int) []Ref { return s.EpochAt(k).Cohorts[l] }

// EdgeOf returns the edge worker w reports to during round k, or false when
// w is not live at k.
func (s *Schedule) EdgeOf(k int, w Ref) (int, bool) {
	for l, cohort := range s.EpochAt(k).Cohorts {
		for _, r := range cohort {
			if r == w {
				return l, true
			}
		}
	}
	return 0, false
}

// Span returns worker w's lifetime: its first and last live edge rounds.
// ok is false when w is not part of the topology.
func (s *Schedule) Span(w Ref) (join, last int, ok bool) {
	sp, ok := s.spans[w]
	return sp.join, sp.last, ok
}

// LiveCount returns the number of live workers during round k.
func (s *Schedule) LiveCount(k int) int {
	n := 0
	for _, cohort := range s.EpochAt(k).Cohorts {
		n += len(cohort)
	}
	return n
}

// EdgeWeights returns each edge's live data fraction during round k (the
// cloud aggregation weights for the sync at round k). Callers must not
// mutate the returned slice.
func (s *Schedule) EdgeWeights(k int) []float64 { return s.edgeWeights[s.EpochIndex(k)] }

// CohortWeights returns, aligned with Cohort(k, l), the per-worker data
// weights normalized over edge l's live cohort during round k. Callers must
// not mutate the returned slice.
func (s *Schedule) CohortWeights(k, l int) []float64 {
	return s.cohortWeights[s.EpochIndex(k)][l]
}

// Overlap reports whether edge l's cohort changed between rounds k-1 and k,
// and if so the data-weight fraction of the round-k cohort that was already
// present at round k-1 (the MigrateRescale factor). Round 1 reports no
// change.
func (s *Schedule) Overlap(k, l int) (frac float64, changed bool) {
	if k <= 1 || s.EpochIndex(k) == s.EpochIndex(k-1) {
		return 1, false
	}
	prev := s.Cohort(k-1, l)
	cur := s.Cohort(k, l)
	same := len(prev) == len(cur)
	inPrev := make(map[Ref]bool, len(prev))
	for _, r := range prev {
		inPrev[r] = true
	}
	kept, total := 0.0, 0.0
	for _, r := range cur {
		total += s.weight[r]
		if inPrev[r] {
			kept += s.weight[r]
		} else {
			same = false
		}
	}
	if same {
		return 1, false
	}
	if total == 0 {
		return 0, true
	}
	return kept / total, true
}

// JoinsAt lists workers whose first live round is k (excluding initial
// members at round 1), in Ref order.
func (s *Schedule) JoinsAt(k int) []Ref {
	if k <= 1 {
		return nil
	}
	return s.refsWhere(func(sp span) bool { return sp.join == k })
}

// LeavesAfter lists workers whose last live round is k and who leave before
// the run ends, in Ref order. These are the workers the edge RETIREs after
// the round-k aggregation.
func (s *Schedule) LeavesAfter(k int) []Ref {
	if k >= s.K {
		return nil
	}
	return s.refsWhere(func(sp span) bool { return sp.last == k })
}

// ReassignedAt lists live workers whose edge changed between rounds k-1 and
// k (excluding fresh joiners), in Ref order.
func (s *Schedule) ReassignedAt(k int) []Ref {
	if k <= 1 || s.EpochIndex(k) == s.EpochIndex(k-1) {
		return nil
	}
	var out []Ref
	for _, r := range s.sortedRefs() {
		sp := s.spans[r]
		if sp.join >= k || sp.last < k {
			continue
		}
		prev, okPrev := s.EdgeOf(k-1, r)
		cur, okCur := s.EdgeOf(k, r)
		if okPrev && okCur && prev != cur {
			out = append(out, r)
		}
	}
	return out
}

// Retierings counts the re-tiering epochs in the trajectory.
func (s *Schedule) Retierings() int {
	n := 0
	for _, ep := range s.epochs {
		if ep.Retier {
			n++
		}
	}
	return n
}

// Summary aggregates the trajectory's totals for reporting.
type Summary struct {
	// Joins counts workers that join after round 1.
	Joins int
	// Leaves counts workers that leave before the final round.
	Leaves int
	// Reassignments counts worker moves caused by re-tiering.
	Reassignments int
	// Retierings counts re-tiering steps that changed the assignment.
	Retierings int
	// Epochs is the number of distinct assignment intervals.
	Epochs int
	// InitialWorkers and FinalWorkers are the live counts at the first and
	// last rounds.
	InitialWorkers, FinalWorkers int
}

// Summarize computes the trajectory's Summary.
func (s *Schedule) Summarize() Summary {
	sum := Summary{
		Epochs:         len(s.epochs),
		Retierings:     s.Retierings(),
		InitialWorkers: s.LiveCount(1),
		FinalWorkers:   s.LiveCount(s.K),
	}
	for _, sp := range s.spans {
		if sp.join > 1 {
			sum.Joins++
		}
		if sp.last < s.K {
			sum.Leaves++
		}
	}
	for k := 2; k <= s.K; k++ {
		sum.Reassignments += len(s.ReassignedAt(k))
	}
	return sum
}

// Signature renders a stable encoding of everything that shapes the
// trajectory, for checkpoint fingerprints: plan, cadence, and policy-free
// topology parameters. Two runs with equal signatures (and equal configs)
// have identical trajectories.
func (s *Schedule) Signature() string {
	return fmt.Sprintf("plan=%s retier=%d K=%d pi=%d edges=%d",
		s.plan.Signature(), s.RetierEvery, s.K, s.Pi, s.NumEdges)
}

// refsWhere returns the workers whose span satisfies pred, in Ref order.
func (s *Schedule) refsWhere(pred func(span) bool) []Ref {
	var out []Ref
	for _, r := range s.sortedRefs() {
		if pred(s.spans[r]) {
			out = append(out, r)
		}
	}
	return out
}

// sortedRefs returns every topology worker in Ref order.
func (s *Schedule) sortedRefs() []Ref {
	refs := make([]Ref, 0, len(s.spans))
	for r := range s.spans {
		refs = append(refs, r)
	}
	sort.Slice(refs, func(i, j int) bool { return refs[i].Less(refs[j]) })
	return refs
}
