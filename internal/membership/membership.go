// Package membership implements deterministic dynamic membership for the
// cluster runtime: seeded churn plans (permanent join-at-round and
// leave-at-round events, distinct from crash/restart faults), a replayable
// ChurnTrace text format, and a cloud-driven re-tiering step that re-assigns
// workers to edges by deterministic clustering of their label distributions.
//
// The central object is the Schedule: because every membership decision is a
// pure function of (plan, re-tier cadence, topology, shard statistics), each
// node — cloud, edge, or worker, in-process or in its own OS process —
// precomputes the identical full membership trajectory before the run
// starts. Control messages (ADMIT/RETIRE/REASSIGN) only synchronize runtime
// transitions; they never carry decisions. That is what makes churn runs
// bit-identical across reruns, worker-pool sizes, and transports.
package membership

import (
	"errors"
	"fmt"
	"sort"
)

// Ref names a worker by its natal position in the configured topology: edge
// index and worker index within that edge. The natal position is the
// worker's permanent identity (its node ID stays "worker-<edge>-<index>"
// forever); re-tiering changes which edge it reports to, never its Ref.
type Ref struct {
	Edge  int
	Index int
}

// NodeID renders the transport node ID for the worker (the same format
// internal/cluster uses for worker endpoints).
func (r Ref) NodeID() string { return fmt.Sprintf("worker-%d-%d", r.Edge, r.Index) }

// Less orders Refs by (Edge, Index) — the canonical deterministic order for
// every cohort iteration and reduction in this package.
func (r Ref) Less(o Ref) bool {
	if r.Edge != o.Edge {
		return r.Edge < o.Edge
	}
	return r.Index < o.Index
}

// ParseNodeID inverts NodeID ("worker-1-2" → Ref{1, 2}).
func ParseNodeID(id string) (Ref, error) {
	var r Ref
	n, err := fmt.Sscanf(id, "worker-%d-%d", &r.Edge, &r.Index)
	if err != nil || n != 2 || id != r.NodeID() {
		return Ref{}, fmt.Errorf("membership: %q is not a worker node ID", id)
	}
	if r.Edge < 0 || r.Index < 0 {
		return Ref{}, fmt.Errorf("membership: %q has negative indices", id)
	}
	return r, nil
}

// Action is the kind of a churn event.
type Action int

const (
	// ActionJoin schedules a worker's first training round: a worker with a
	// join at round r sits out rounds 1..r-1 and trains from round r on. A
	// join at round 1 marks an initial member and is a no-op.
	ActionJoin Action = iota
	// ActionLeave schedules a worker's last training round: it participates
	// through round r and is permanently gone from round r+1 — unlike a
	// crash/restart fault, it never comes back.
	ActionLeave
)

// String renders the action as it appears in a ChurnTrace.
func (a Action) String() string {
	switch a {
	case ActionJoin:
		return "join"
	case ActionLeave:
		return "leave"
	}
	return fmt.Sprintf("action(%d)", int(a))
}

// Event is one planned membership change, pinned to an edge round.
type Event struct {
	// Round is the edge round (1-based, in units of τ worker iterations) the
	// event takes effect at, per the Action semantics above.
	Round int
	// Action is join or leave.
	Action Action
	// Worker is the natal reference of the affected worker.
	Worker Ref
}

// Plan is a set of churn events. The zero value is the empty plan (no
// churn). Plans are value types; Events must not be mutated after a
// Schedule is built from them.
type Plan struct {
	Events []Event
}

// Empty reports whether the plan schedules no events.
func (p Plan) Empty() bool { return len(p.Events) == 0 }

// Clone deep-copies the plan.
func (p Plan) Clone() Plan {
	return Plan{Events: append([]Event(nil), p.Events...)}
}

// normalized returns the events sorted by (Round, Action, Worker) — the
// canonical order used for validation, signatures, and trace output.
func (p Plan) normalized() []Event {
	ev := append([]Event(nil), p.Events...)
	sort.Slice(ev, func(i, j int) bool {
		if ev[i].Round != ev[j].Round {
			return ev[i].Round < ev[j].Round
		}
		if ev[i].Action != ev[j].Action {
			return ev[i].Action < ev[j].Action
		}
		return ev[i].Worker.Less(ev[j].Worker)
	})
	return ev
}

// Signature renders a stable one-line encoding of the plan, used in
// checkpoint fingerprints so a resume under a different plan is rejected.
func (p Plan) Signature() string {
	if p.Empty() {
		return "none"
	}
	s := ""
	for i, e := range p.normalized() {
		if i > 0 {
			s += ","
		}
		s += fmt.Sprintf("%s:%s@%d", e.Action, e.Worker.NodeID(), e.Round)
	}
	return s
}

// ErrCohortCollapsed is the sentinel wrapped by CohortError; match it with
// errors.Is when the specific round/edge does not matter.
var ErrCohortCollapsed = errors.New("membership: cohort collapsed")

// CohortError reports that a planned membership change leaves an edge with
// too few live workers to satisfy its quorum — the typed, fail-fast
// alternative to hanging until RecvTimeout. It names the first offending
// round and cohort.
type CohortError struct {
	// Round is the first edge round at which the cohort is too small.
	Round int
	// Edge is the affected edge index.
	Edge int
	// Live is the number of workers still assigned to the edge at Round.
	Live int
	// Need is the minimum cohort size required (at least 1; higher when the
	// caller validates against a quorum fraction).
	Need int
}

func (e *CohortError) Error() string {
	return fmt.Sprintf("membership: edge %d cohort has %d live workers at round %d, need %d",
		e.Edge, e.Live, e.Round, e.Need)
}

// Unwrap lets errors.Is(err, ErrCohortCollapsed) match a CohortError.
func (e *CohortError) Unwrap() error { return ErrCohortCollapsed }

// MigrationPolicy selects how an edge's adaptive-γℓ momentum state is
// treated on the first aggregation after its cohort changes (a worker
// joined, left, or was re-tiered in or out).
type MigrationPolicy int

const (
	// MigrateZero resets γℓ to zero for the first aggregation of a changed
	// cohort — the conservative default, matching the paper's obtuse-angle
	// reset semantics: when the momentum direction can no longer be trusted
	// (here: it was formed by a different cohort), discard it.
	MigrateZero MigrationPolicy = iota
	// MigrateCarry keeps the momentum state untouched across the change.
	MigrateCarry
	// MigrateRescale multiplies γℓ by the data-weight fraction of the new
	// cohort that was already present in the old one, shrinking trust in the
	// momentum proportionally to cohort turnover.
	MigrateRescale
)

// String renders the policy as accepted by ParseMigrationPolicy.
func (m MigrationPolicy) String() string {
	switch m {
	case MigrateZero:
		return "zero"
	case MigrateCarry:
		return "carry"
	case MigrateRescale:
		return "rescale"
	}
	return fmt.Sprintf("policy(%d)", int(m))
}

// ParseMigrationPolicy parses "zero", "carry", or "rescale".
func ParseMigrationPolicy(s string) (MigrationPolicy, error) {
	switch s {
	case "zero":
		return MigrateZero, nil
	case "carry":
		return MigrateCarry, nil
	case "rescale":
		return MigrateRescale, nil
	}
	return 0, fmt.Errorf("membership: unknown migration policy %q (want zero|carry|rescale)", s)
}
