package membership

import (
	"fmt"
	"sort"

	"hieradmo/internal/rng"
)

// GenSpec parameterizes the seeded churn-plan generator.
type GenSpec struct {
	// Seed derives every random choice; equal specs over equal topologies
	// generate equal plans.
	Seed uint64
	// Joins is the number of workers converted into late joiners; Leaves the
	// number of workers that leave early. The two sets are disjoint.
	Joins, Leaves int
}

// Generate draws a seeded churn plan over the given workers: Joins distinct
// workers join in the first half of the run (rounds 2..⌈K/2⌉) and Leaves
// other distinct workers leave in the second half (rounds ⌈K/2⌉+1..K-1).
// Placing joins early and leaves late keeps generated plans valid for any
// topology whose edges would survive losing Leaves workers; callers still
// validate by building a Schedule. The draw is a pure function of
// (spec, refs, K).
func Generate(spec GenSpec, refs []Ref, K int) (Plan, error) {
	if spec.Joins < 0 || spec.Leaves < 0 {
		return Plan{}, fmt.Errorf("membership: generate: negative event counts")
	}
	if spec.Joins+spec.Leaves > len(refs) {
		return Plan{}, fmt.Errorf("membership: generate: %d events over %d workers", spec.Joins+spec.Leaves, len(refs))
	}
	if K < 4 && spec.Joins+spec.Leaves > 0 {
		return Plan{}, fmt.Errorf("membership: generate: need at least 4 rounds, got %d", K)
	}
	ordered := append([]Ref(nil), refs...)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].Less(ordered[j]) })
	r := rng.New(spec.Seed).Split(0xC0110)
	r.Shuffle(len(ordered), func(i, j int) { ordered[i], ordered[j] = ordered[j], ordered[i] })

	half := (K + 1) / 2
	var p Plan
	for i := 0; i < spec.Joins; i++ {
		round := 2 + r.Intn(max(1, half-1)) // rounds 2..half
		p.Events = append(p.Events, Event{Round: round, Action: ActionJoin, Worker: ordered[i]})
	}
	for i := 0; i < spec.Leaves; i++ {
		round := half + 1 + r.Intn(max(1, K-1-half)) // rounds half+1..K-1
		p.Events = append(p.Events, Event{Round: round, Action: ActionLeave, Worker: ordered[spec.Joins+i]})
	}
	p.Events = p.normalized()
	return p, nil
}
