package membership

import (
	"fmt"
	"sort"
)

// WorkerStat is the clustering statistic for one worker: its data weight
// (shard size) and its normalized class histogram. Both are pure functions
// of the deterministic data partition, so every node derives identical
// stats from the shared config — the precondition for decision-free
// re-tiering.
type WorkerStat struct {
	Ref Ref
	// Weight is the worker's shard size in samples.
	Weight float64
	// Hist is the worker's class distribution, normalized to sum to 1. All
	// stats passed to one Assign call must have the same length.
	Hist []float64
}

// Assign clusters the given workers onto numEdges edges by label
// distribution and returns, aligned with stats sorted by Ref, the edge index
// assigned to each worker. The algorithm is a deterministic balanced greedy
// pass:
//
//   - Workers are visited in sorted Ref order.
//   - Edge capacities are balanced: ⌈n/L⌉ or ⌊n/L⌋, the larger ones on the
//     lowest edge indices.
//   - A worker goes to the lowest-index empty edge while any edge is empty
//     (every edge must end non-empty); otherwise to the non-full edge whose
//     weighted centroid histogram is nearest in L1 distance, ties broken by
//     the lowest edge index (i.e. ultimately by worker/edge ID order).
//
// Grouping similar label distributions under one edge makes each edge's
// aggregate gradient coherent, which is what the adaptive γℓ cosine test
// rewards. The same float operations run in the same order on every node,
// so the assignment is bit-identical everywhere.
func Assign(stats []WorkerStat, numEdges int) ([]int, error) {
	n := len(stats)
	if numEdges < 1 {
		return nil, fmt.Errorf("membership: assign: need at least one edge, got %d", numEdges)
	}
	if n < numEdges {
		return nil, fmt.Errorf("membership: assign: %d workers cannot fill %d edges", n, numEdges)
	}
	ordered := append([]WorkerStat(nil), stats...)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].Ref.Less(ordered[j].Ref) })
	dim := len(ordered[0].Hist)
	for _, s := range ordered {
		if len(s.Hist) != dim {
			return nil, fmt.Errorf("membership: assign: histogram length mismatch for %s", s.Ref.NodeID())
		}
	}

	capacity := make([]int, numEdges)
	for l := range capacity {
		capacity[l] = n / numEdges
		if l < n%numEdges {
			capacity[l]++
		}
	}
	counts := make([]int, numEdges)
	centW := make([]float64, numEdges)
	cent := make([][]float64, numEdges)
	for l := range cent {
		cent[l] = make([]float64, dim)
	}

	out := make([]int, n)
	for i, s := range ordered {
		best := -1
		bestDist := 0.0
		for l := 0; l < numEdges; l++ {
			if counts[l] >= capacity[l] {
				continue
			}
			if counts[l] == 0 {
				// Empty edges are filled first (lowest index wins) so every
				// edge ends non-empty.
				best = l
				break
			}
			d := 0.0
			for c := 0; c < dim; c++ {
				diff := s.Hist[c] - cent[l][c]/centW[l]
				if diff < 0 {
					diff = -diff
				}
				d += diff
			}
			if best < 0 || d < bestDist {
				best, bestDist = l, d
			}
		}
		if best < 0 {
			// Unreachable: Σ capacity == n, so some edge always has room.
			return nil, fmt.Errorf("membership: assign: no edge with spare capacity for %s", s.Ref.NodeID())
		}
		out[i] = best
		counts[best]++
		centW[best] += s.Weight
		for c := 0; c < dim; c++ {
			cent[best][c] += s.Weight * s.Hist[c]
		}
	}
	return out, nil
}
