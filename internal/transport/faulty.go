package transport

import (
	"fmt"
	"sync"
	"time"

	"hieradmo/internal/rng"
	"hieradmo/internal/telemetry"
)

// Link identifies one directed sender→receiver pair for per-link fault
// configuration.
type Link struct {
	From, To string
}

// FaultPlan is a deterministic seeded fault schedule for a FaultyNetwork.
// Every random decision is drawn from a per-link stream derived from Seed,
// so the set of dropped messages depends only on the per-link message
// sequence, not on goroutine interleaving across links.
type FaultPlan struct {
	// Seed derives every per-link fault stream.
	Seed uint64
	// DropRate is the default probability that any message is silently
	// discarded (sender sees success, receiver nothing).
	DropRate float64
	// LinkDrop overrides DropRate for specific directed links.
	LinkDrop map[Link]float64
	// MaxDelay, when positive, stalls each surviving send for a uniform
	// random duration in [0, MaxDelay] before handing it to the inner
	// network (sender-side latency injection).
	MaxDelay time.Duration
	// CrashAtRound crashes a node at a protocol round: once the node sends
	// a message with Round >= the configured round — or a peer sends one to
	// it — the node counts as crashed: its own sends and receives return
	// ErrCrashed, and messages addressed to it are silently dropped (nobody
	// is reading them anymore).
	CrashAtRound map[string]int
	// RestartAfterRounds bounds a CrashAtRound outage: a node that crashes
	// at round r comes back at round r + RestartAfterRounds[id]. Traffic
	// inside the outage window [r, r+Δ) is still black-holed, but the first
	// message at or past the revival round — sent by the node or addressed
	// to it — marks the node as restarted: its endpoint works again and the
	// runtime may respawn it from its checkpoint. Nodes absent from the map
	// stay down forever (the plain CrashAtRound semantics).
	RestartAfterRounds map[string]int
}

// dropRate resolves the drop probability for one directed link.
func (p *FaultPlan) dropRate(from, to string) float64 {
	if r, ok := p.LinkDrop[Link{From: from, To: to}]; ok {
		return r
	}
	return p.DropRate
}

// crashRound returns the round at which id crashes, or false.
func (p *FaultPlan) crashRound(id string) (int, bool) {
	r, ok := p.CrashAtRound[id]
	return r, ok
}

// reviveRound returns the round at which id's injected outage ends, or
// false when the node crashes without a scheduled restart.
func (p *FaultPlan) reviveRound(id string) (int, bool) {
	r, ok := p.CrashAtRound[id]
	if !ok {
		return 0, false
	}
	d, ok := p.RestartAfterRounds[id]
	if !ok || d <= 0 {
		return 0, false
	}
	return r + d, true
}

// FaultyNetwork composes deterministic fault injection over any inner
// Network (MemoryNetwork and TCPNetwork both work): per-link message drops,
// per-message delays, and crash-at-round node failures. It generalizes the
// drop injection that used to be private to MemoryNetwork and works
// identically over real sockets, so chaos tests run against the same
// transport code production uses.
type FaultyNetwork struct {
	inner Network
	plan  FaultPlan

	mu      sync.Mutex
	links   map[Link]*rng.RNG
	crashed map[string]bool
	revived map[string]bool
	stats   FaultStats
	sink    *telemetry.Sink
}

// SetTelemetry mirrors injected drops and delays onto sink's counters as
// they happen, and forwards the sink to the inner network when it accepts
// one (so TCP send retries are counted too). Call before the run starts.
func (n *FaultyNetwork) SetTelemetry(sink *telemetry.Sink) {
	n.mu.Lock()
	n.sink = sink
	n.mu.Unlock()
	if ts, ok := n.inner.(TelemetrySetter); ok {
		ts.SetTelemetry(sink)
	}
}

// NewFaultyNetwork wraps inner with the given fault plan.
func NewFaultyNetwork(inner Network, plan FaultPlan) *FaultyNetwork {
	return &FaultyNetwork{
		inner:   inner,
		plan:    plan,
		links:   make(map[Link]*rng.RNG),
		crashed: make(map[string]bool),
		revived: make(map[string]bool),
	}
}

// Endpoint returns a fault-injecting endpoint for id backed by the inner
// network's endpoint.
func (n *FaultyNetwork) Endpoint(id string) (Endpoint, error) {
	ep, err := n.inner.Endpoint(id)
	if err != nil {
		return nil, err
	}
	return &faultyEndpoint{net: n, inner: ep}, nil
}

// Close tears down the inner network.
func (n *FaultyNetwork) Close() error { return n.inner.Close() }

// FaultStats reports the faults injected so far, merged with the inner
// network's own counters when it exposes them.
func (n *FaultyNetwork) FaultStats() FaultStats {
	n.mu.Lock()
	stats := n.stats
	stats.Crashed = append([]string(nil), n.stats.Crashed...)
	stats.Restarted = append([]string(nil), n.stats.Restarted...)
	n.mu.Unlock()
	if sr, ok := n.inner.(StatsReporter); ok {
		stats.merge(sr.FaultStats())
	}
	return stats
}

// linkRNG returns the deterministic fault stream for one directed link,
// derived from the plan seed and a hash of the link's node IDs.
func (n *FaultyNetwork) linkRNG(l Link) *rng.RNG {
	if r, ok := n.links[l]; ok {
		return r
	}
	// FNV-1a over "from\x00to" labels the stream; collisions would only
	// correlate two links' fault schedules, never break determinism.
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	for _, b := range []byte(l.From) {
		h = (h ^ uint64(b)) * prime
	}
	h = (h ^ 0) * prime
	for _, b := range []byte(l.To) {
		h = (h ^ uint64(b)) * prime
	}
	r := rng.New(n.plan.Seed).Split(h)
	n.links[l] = r
	return r
}

// markCrashed records that id's crash has triggered (idempotently).
func (n *FaultyNetwork) markCrashed(id string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if !n.crashed[id] {
		n.crashed[id] = true
		n.stats.Crashed = append(n.stats.Crashed, id)
	}
}

func (n *FaultyNetwork) isCrashed(id string) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.crashed[id]
}

// markRevived records that id's outage window has ended (idempotently). The
// crash is recorded too if nobody observed it before the revival round.
func (n *FaultyNetwork) markRevived(id string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if !n.crashed[id] {
		n.crashed[id] = true
		n.stats.Crashed = append(n.stats.Crashed, id)
	}
	if !n.revived[id] {
		n.revived[id] = true
		n.stats.Restarted = append(n.stats.Restarted, id)
	}
}

// Revived reports whether id's injected outage has ended: the node crashed
// and traffic at or past its revival round has since been observed. The
// cluster runtime polls this to decide when to respawn the node from its
// checkpoint.
func (n *FaultyNetwork) Revived(id string) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.revived[id]
}

// RestartPlanned reports whether the plan schedules id to come back after
// its crash.
func (n *FaultyNetwork) RestartPlanned(id string) bool {
	_, ok := n.plan.reviveRound(id)
	return ok
}

// isDown reports whether id is inside its outage: crashed and not (yet)
// revived.
func (n *FaultyNetwork) isDown(id string) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.crashed[id] && !n.revived[id]
}

type faultyEndpoint struct {
	net   *FaultyNetwork
	inner Endpoint
}

var _ Endpoint = (*faultyEndpoint)(nil)

func (e *faultyEndpoint) ID() string { return e.inner.ID() }

func (e *faultyEndpoint) Send(to string, msg Message) error {
	n := e.net
	// Crash-at-round: a node learns it is dead the moment it acts at or
	// past its crash round; its peers' messages to it are black-holed from
	// that round on (the process is no longer reading). A scheduled restart
	// bounds the outage: the first message at or past the revival round —
	// the node's own or a peer's — flips it back to alive. A revived node
	// sends freely at ANY round: the respawned process replays rounds from
	// its checkpoint, and those catch-up sends belong to the new incarnation,
	// not the outage.
	if r, ok := n.plan.crashRound(e.ID()); ok && !n.Revived(e.ID()) {
		if r2, restarts := n.plan.reviveRound(e.ID()); restarts && msg.Round >= r2 {
			n.markRevived(e.ID())
		} else if msg.Round >= r || n.isCrashed(e.ID()) {
			n.markCrashed(e.ID())
			return fmt.Errorf("transport: %q send at round %d: %w", e.ID(), msg.Round, ErrCrashed)
		}
	}
	if r, ok := n.plan.crashRound(to); ok && msg.Round >= r {
		if r2, restarts := n.plan.reviveRound(to); restarts && msg.Round >= r2 {
			// Past the outage window: the restarted process is reading again.
			n.markRevived(to)
		} else if !n.Revived(to) {
			// Inside the outage window (or crashed for good): record the
			// crash so the node's own receives start failing and the fault
			// report names it, then black-hole the message.
			n.markCrashed(to)
			n.mu.Lock()
			n.stats.Dropped++
			sink := n.sink
			n.mu.Unlock()
			sink.M().DroppedMessages.Inc()
			return nil
		}
	}
	link := Link{From: e.ID(), To: to}
	drop := n.plan.dropRate(e.ID(), to)
	var delay time.Duration
	if drop > 0 || n.plan.MaxDelay > 0 {
		n.mu.Lock()
		r := n.linkRNG(link)
		dropped := drop > 0 && r.Float64() < drop
		delayed := !dropped && n.plan.MaxDelay > 0
		if delayed {
			delay = time.Duration(r.Float64() * float64(n.plan.MaxDelay))
			n.stats.Delayed++
		}
		if dropped {
			n.stats.Dropped++
		}
		sink := n.sink
		n.mu.Unlock()
		if dropped {
			sink.M().DroppedMessages.Inc()
			return nil // injected loss: sender sees success
		}
		if delayed {
			sink.M().DelayedMessages.Inc()
		}
	}
	if delay > 0 {
		time.Sleep(delay)
	}
	return e.inner.Send(to, msg)
}

func (e *faultyEndpoint) Recv() (Message, error) {
	if e.net.isDown(e.ID()) {
		return Message{}, fmt.Errorf("transport: %q recv: %w", e.ID(), ErrCrashed)
	}
	return e.inner.Recv()
}

func (e *faultyEndpoint) RecvTimeout(d time.Duration) (Message, error) {
	if e.net.isDown(e.ID()) {
		return Message{}, fmt.Errorf("transport: %q recv: %w", e.ID(), ErrCrashed)
	}
	return e.inner.RecvTimeout(d)
}

func (e *faultyEndpoint) Close() error { return e.inner.Close() }
