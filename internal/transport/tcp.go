package transport

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"hieradmo/internal/telemetry"
)

// Send-side retry policy for transient TCP failures (peer restarted, broken
// pipe, encoder poisoned by a partial write): the first attempt plus
// sendRetries redials with capped exponential backoff.
const (
	sendRetries     = 3
	sendBackoffBase = 10 * time.Millisecond
	sendBackoffCap  = 160 * time.Millisecond
)

// TCPNetwork runs the transport over real loopback (or LAN) sockets: every
// node listens on its own address, messages are gob-encoded frames, and
// outbound connections are cached per destination. Node addresses are
// registered on Listen, so all endpoints must be created before the
// protocol starts — which matches how the cluster coordinator works.
type TCPNetwork struct {
	mu     sync.Mutex
	addrs  map[string]string
	closed bool
	// retries aggregates send retries across all of the network's endpoints.
	retries atomic.Int64
	// sink, when set, counts send retries live (fl_send_retries_total).
	sink atomic.Pointer[telemetry.Sink]
}

// SetTelemetry mirrors send retries onto sink's counters as they happen.
// Applies to endpoints created afterwards, so call before Listen/Endpoint.
func (n *TCPNetwork) SetTelemetry(sink *telemetry.Sink) { n.sink.Store(sink) }

// FaultStats reports the send retries the network's endpoints performed.
func (n *TCPNetwork) FaultStats() FaultStats {
	return FaultStats{Retries: int(n.retries.Load())}
}

// NewTCPNetwork returns an empty TCP node registry.
func NewTCPNetwork() *TCPNetwork {
	return &TCPNetwork{addrs: make(map[string]string)}
}

// Listen starts an endpoint for id on an ephemeral 127.0.0.1 port and
// registers its address for the other nodes.
func (n *TCPNetwork) Listen(id string) (Endpoint, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil, ErrClosed
	}
	// A TCP node ID claim lasts for the network's lifetime: the listen
	// address is published to peers on first registration, so reusing the
	// ID on a different port would silently split its traffic.
	if _, dup := n.addrs[id]; dup {
		return nil, fmt.Errorf("%w: %q already listening", ErrDuplicateNode, id)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("transport: listen for %q: %w", id, err)
	}
	n.addrs[id] = ln.Addr().String()
	ep := &tcpEndpoint{
		net:      n,
		id:       id,
		ln:       ln,
		inbox:    make(chan Message, inboxSize),
		closed:   make(chan struct{}),
		conns:    make(map[string]*tcpConn),
		accepted: make(map[net.Conn]struct{}),
		resolve:  n.lookup,
		retries:  &n.retries,
	}
	ep.sink.Store(n.sink.Load())
	ep.wg.Add(1)
	go ep.acceptLoop() //flvet:allow goexec -- accept loop lives for the endpoint's lifetime; transport owns its goroutines
	return ep, nil
}

// Endpoint implements the cluster.Network interface by starting a listener
// for id (each node ID gets exactly one endpoint per network).
func (n *TCPNetwork) Endpoint(id string) (Endpoint, error) { return n.Listen(id) }

// Close marks the registry closed; individual endpoints are closed by their
// owners.
func (n *TCPNetwork) Close() error {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.closed = true
	return nil
}

// lookup resolves a node ID to its listen address.
func (n *TCPNetwork) lookup(id string) (string, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	addr, ok := n.addrs[id]
	if !ok {
		return "", fmt.Errorf("%w: %q", ErrUnknownNode, id)
	}
	return addr, nil
}

type tcpConn struct {
	mu   sync.Mutex
	conn net.Conn
	enc  *gob.Encoder
}

type tcpEndpoint struct {
	net *TCPNetwork // nil for static (cross-process) endpoints
	id  string
	ln  net.Listener
	// resolve maps a peer ID to its dial address (registry- or
	// network-backed).
	resolve func(id string) (string, error)

	inbox  chan Message
	closed chan struct{}
	once   sync.Once
	//flvet:allow goexec -- transport-internal lifecycle tracking for accept/read loops; Close waits for them, no training data order depends on it
	wg sync.WaitGroup

	connMu   sync.Mutex
	conns    map[string]*tcpConn
	accepted map[net.Conn]struct{}
	// retries counts send attempts repeated after a transient failure
	// (shared with the owning TCPNetwork, endpoint-local for static nodes).
	retries *atomic.Int64
	// sink, when set, counts retries live on the telemetry sink too.
	sink atomic.Pointer[telemetry.Sink]
}

// SetTelemetry mirrors this endpoint's send retries onto sink's counters
// (fl_send_retries_total). Used by multi-process nodes (ListenStatic), where
// there is no owning TCPNetwork to configure.
func (e *tcpEndpoint) SetTelemetry(sink *telemetry.Sink) { e.sink.Store(sink) }

var _ Endpoint = (*tcpEndpoint)(nil)

func (e *tcpEndpoint) ID() string { return e.id }

func (e *tcpEndpoint) acceptLoop() {
	defer e.wg.Done()
	for {
		conn, err := e.ln.Accept()
		if err != nil {
			return // listener closed
		}
		e.connMu.Lock()
		e.accepted[conn] = struct{}{}
		e.connMu.Unlock()
		e.wg.Add(1)
		go e.readLoop(conn) //flvet:allow goexec -- one read loop per accepted conn, joined by Close via the WaitGroup
	}
}

func (e *tcpEndpoint) readLoop(conn net.Conn) {
	defer e.wg.Done()
	defer func() {
		conn.Close()
		e.connMu.Lock()
		delete(e.accepted, conn)
		e.connMu.Unlock()
	}()
	dec := gob.NewDecoder(conn)
	for {
		var msg Message
		if err := dec.Decode(&msg); err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				// Connection-level failures surface to the receiver as
				// silence (and hence RecvTimeout), mirroring real deployments.
				return
			}
			return
		}
		select {
		case e.inbox <- msg:
		case <-e.closed:
			return
		}
	}
}

// connTo returns the cached connection to a peer, dialing one if needed.
func (e *tcpEndpoint) connTo(to string) (*tcpConn, error) {
	e.connMu.Lock()
	c, ok := e.conns[to]
	e.connMu.Unlock()
	if ok {
		return c, nil
	}
	addr, err := e.resolve(to)
	if err != nil {
		return nil, err
	}
	// In multi-process deployments peers come up in arbitrary order, so
	// the first dial races the peer's bind; retry briefly before giving
	// up.
	var raw net.Conn
	for attempt := 0; ; attempt++ {
		raw, err = net.DialTimeout("tcp", addr, 5*time.Second)
		if err == nil {
			break
		}
		if attempt >= 40 {
			return nil, fmt.Errorf("transport: dial %q: %w", to, err)
		}
		select {
		case <-e.closed:
			return nil, ErrClosed
		case <-time.After(250 * time.Millisecond):
		}
	}
	c = &tcpConn{conn: raw, enc: gob.NewEncoder(raw)}
	e.connMu.Lock()
	if existing, dup := e.conns[to]; dup {
		raw.Close()
		c = existing
	} else {
		e.conns[to] = c
	}
	e.connMu.Unlock()
	return c, nil
}

// dropConn evicts a connection after a send failure (comparing pointers so a
// concurrent sender's replacement is never evicted) so the next attempt
// redials with a fresh encoder — a gob encoder is poisoned by any error.
func (e *tcpEndpoint) dropConn(to string, c *tcpConn) {
	e.connMu.Lock()
	if e.conns[to] == c {
		delete(e.conns, to)
	}
	e.connMu.Unlock()
	c.conn.Close()
}

func (e *tcpEndpoint) Send(to string, msg Message) error {
	m := msg.Clone()
	m.From = e.id
	m.To = to

	backoff := sendBackoffBase
	var lastErr error
	for attempt := 0; attempt <= sendRetries; attempt++ {
		select {
		case <-e.closed:
			return ErrClosed
		default:
		}
		if attempt > 0 {
			if e.retries != nil {
				e.retries.Add(1)
			}
			e.sink.Load().M().SendRetries.Inc()
			select {
			case <-e.closed:
				return ErrClosed
			case <-time.After(backoff):
			}
			if backoff *= 2; backoff > sendBackoffCap {
				backoff = sendBackoffCap
			}
		}
		c, err := e.connTo(to)
		if err != nil {
			if errors.Is(err, ErrUnknownNode) || errors.Is(err, ErrClosed) {
				return err // permanent: no peer to retry against
			}
			lastErr = err
			continue
		}
		c.mu.Lock()
		err = c.enc.Encode(m)
		c.mu.Unlock()
		if err == nil {
			return nil
		}
		lastErr = err
		e.dropConn(to, c)
	}
	return fmt.Errorf("transport: send to %q (after %d retries): %w", to, sendRetries, lastErr)
}

func (e *tcpEndpoint) Recv() (Message, error) {
	select {
	case msg := <-e.inbox:
		return msg, nil
	case <-e.closed:
		// Drain anything already queued before reporting closure.
		select {
		case msg := <-e.inbox:
			return msg, nil
		default:
			return Message{}, ErrClosed
		}
	}
}

func (e *tcpEndpoint) RecvTimeout(d time.Duration) (Message, error) {
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case msg := <-e.inbox:
		return msg, nil
	case <-e.closed:
		return Message{}, ErrClosed
	case <-timer.C:
		return Message{}, fmt.Errorf("%w: %q after %v", ErrTimeout, e.id, d)
	}
}

func (e *tcpEndpoint) Close() error {
	e.once.Do(func() {
		close(e.closed)
		e.ln.Close()
		e.connMu.Lock()
		for _, c := range e.conns {
			c.conn.Close()
		}
		// Inbound connections block their readLoops in Decode until closed;
		// without this, Close would wait for peers to shut down first.
		for conn := range e.accepted {
			conn.Close()
		}
		e.connMu.Unlock()
	})
	e.wg.Wait()
	return nil
}
