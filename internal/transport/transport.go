// Package transport provides the message-passing substrate for the
// distributed execution of HierAdMo (internal/cluster): a Message format
// carrying model-sized vectors between named nodes, an in-memory network
// with failure injection for tests, and a TCP network (net + encoding/gob)
// for running the protocol over real sockets.
//
// The in-process simulation in internal/fl is the reference semantics; the
// cluster runtime built on this package must produce bit-identical results
// (verified by the equivalence tests in internal/cluster).
package transport

import (
	"errors"
	"time"

	"hieradmo/internal/telemetry"
)

// Protocol errors callers can match.
var (
	// ErrClosed is returned by operations on a closed endpoint.
	ErrClosed = errors.New("transport: endpoint closed")
	// ErrUnknownNode is returned when sending to an unregistered node.
	ErrUnknownNode = errors.New("transport: unknown node")
	// ErrTimeout is returned by RecvTimeout when no message arrives in time.
	ErrTimeout = errors.New("transport: receive timeout")
	// ErrCrashed is returned by endpoints of a node a FaultPlan has crashed;
	// the node's goroutine observes it and exits, simulating process death.
	ErrCrashed = errors.New("transport: node crashed (injected fault)")
	// ErrDuplicateNode is returned when a node ID registers while its
	// previous registration is still live. Silently shadowing the old
	// stream would let two processes split one identity's traffic, so
	// late-joining nodes must either use a fresh ID or wait for the old
	// endpoint to close.
	ErrDuplicateNode = errors.New("transport: node already registered")
)

// Network is the transport factory a protocol runs over; MemoryNetwork,
// TCPNetwork, and FaultyNetwork all satisfy it (as does cluster.Network,
// which is structurally identical).
type Network interface {
	// Endpoint returns the endpoint for a node ID.
	Endpoint(id string) (Endpoint, error)
	// Close tears the network down after the run.
	Close() error
}

// FaultStats aggregates transport-level fault counters for observability:
// injected losses, injected crashes, and send retries.
type FaultStats struct {
	// Dropped counts messages discarded by fault injection (the sender saw
	// success, the receiver nothing).
	Dropped int
	// Delayed counts messages delivered after an injected delay.
	Delayed int
	// Retries counts send attempts that had to be repeated after a
	// transient failure.
	Retries int
	// Crashed lists node IDs whose injected crash has triggered.
	Crashed []string
	// Restarted lists node IDs whose injected crash ended with a restart
	// (the node came back after its configured outage window).
	Restarted []string
}

// merge adds other's counters into s.
func (s *FaultStats) merge(other FaultStats) {
	s.Dropped += other.Dropped
	s.Delayed += other.Delayed
	s.Retries += other.Retries
	s.Crashed = append(s.Crashed, other.Crashed...)
	s.Restarted = append(s.Restarted, other.Restarted...)
}

// StatsReporter is implemented by networks that track fault statistics;
// callers may type-assert a Network to surface them after a run.
type StatsReporter interface {
	FaultStats() FaultStats
}

// TelemetrySetter is implemented by networks (and endpoints) that can mirror
// their fault counters onto a telemetry sink live as faults happen —
// injected drops and delays on FaultyNetwork, send retries on TCP transports.
// Must be called before the run starts sending; a nil sink is a no-op. The
// end-of-run FaultStats totals are unaffected either way, so callers that
// fold FaultStats into a FaultReport never double-count.
type TelemetrySetter interface {
	SetTelemetry(*telemetry.Sink)
}

// Message is one protocol datagram. Vectors carry model-sized state (models,
// momenta, gradient accumulators); Scalars carry small metadata such as
// losses and data weights.
type Message struct {
	// From and To are node IDs; the sending endpoint fills From.
	From string `json:"from"`
	To   string `json:"to"`
	// Kind is the protocol message type (e.g. "edge-report").
	Kind string `json:"kind"`
	// Round is the protocol round the message belongs to, for debugging and
	// ordering assertions.
	Round int `json:"round"`
	// Vectors is the model-sized payload.
	Vectors [][]float64 `json:"vectors"`
	// Scalars is small named metadata.
	Scalars map[string]float64 `json:"scalars"`
}

// Clone deep-copies the message so transports can deliver without aliasing
// the sender's buffers.
func (m Message) Clone() Message {
	out := m
	out.Vectors = make([][]float64, len(m.Vectors))
	for i, v := range m.Vectors {
		out.Vectors[i] = append([]float64(nil), v...)
	}
	if m.Scalars != nil {
		out.Scalars = make(map[string]float64, len(m.Scalars))
		for k, v := range m.Scalars {
			out.Scalars[k] = v
		}
	}
	return out
}

// Endpoint is one node's handle on a network.
type Endpoint interface {
	// ID returns the node's name.
	ID() string
	// Send delivers msg to the named node. The transport fills From/To.
	Send(to string, msg Message) error
	// Recv blocks until a message arrives or the endpoint closes.
	Recv() (Message, error)
	// RecvTimeout is Recv with a deadline; it returns ErrTimeout when no
	// message arrives in time (the failure-detection primitive the cluster
	// protocol uses).
	RecvTimeout(d time.Duration) (Message, error)
	// Close releases the endpoint; pending and future Recv calls return
	// ErrClosed.
	Close() error
}
