package transport

import (
	"errors"
	"fmt"
	"net"
	"sync/atomic"
	"syscall"
)

// ListenStatic starts a TCP endpoint for a node whose peers live in OTHER
// processes (or machines): the node binds the address the shared registry
// assigns to its own ID and resolves peers from the same registry. This is
// the multi-process deployment path used by cmd/flnode; the single-process
// TCPNetwork remains the in-process path.
//
// The registry maps node IDs to host:port strings and must contain id
// itself (that entry is the bind address).
func ListenStatic(id string, registry map[string]string) (Endpoint, error) {
	bind, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("%w: %q missing from registry", ErrUnknownNode, id)
	}
	ln, err := net.Listen("tcp", bind)
	if err != nil {
		// An address in use means another process is live under this ID —
		// the registry assigns one address per identity, so surface the
		// typed duplicate error rather than a bare socket failure.
		if errors.Is(err, syscall.EADDRINUSE) {
			return nil, fmt.Errorf("%w: %q bound at %s: %v", ErrDuplicateNode, id, bind, err)
		}
		return nil, fmt.Errorf("transport: listen %q on %s: %w", id, bind, err)
	}
	// Copy the registry so later caller mutations cannot race the resolver.
	addrs := make(map[string]string, len(registry))
	for k, v := range registry {
		addrs[k] = v
	}
	ep := &tcpEndpoint{
		net:      nil,
		id:       id,
		ln:       ln,
		inbox:    make(chan Message, inboxSize),
		closed:   make(chan struct{}),
		conns:    make(map[string]*tcpConn),
		accepted: make(map[net.Conn]struct{}),
		retries:  new(atomic.Int64),
		resolve: func(peer string) (string, error) {
			addr, ok := addrs[peer]
			if !ok {
				return "", fmt.Errorf("%w: %q", ErrUnknownNode, peer)
			}
			return addr, nil
		},
	}
	ep.wg.Add(1)
	go ep.acceptLoop() //flvet:allow goexec -- accept loop lives for the endpoint's lifetime; transport owns its goroutines
	return ep, nil
}
