package transport

import (
	"fmt"
	"sync"
	"time"

	"hieradmo/internal/rng"
)

// inboxSize bounds each node's pending-message queue. The cluster protocol
// has at most one outstanding message per peer pair per round, so the bound
// is never reached in correct runs; it exists so a misbehaving test cannot
// grow memory without bound while still decoupling sender and receiver
// schedules.
const inboxSize = 64

// MemoryNetwork is an in-process hub connecting named endpoints through
// buffered channels, with optional failure injection (message drops and
// delivery delays) for protocol robustness tests.
type MemoryNetwork struct {
	mu      sync.Mutex
	inboxes map[string]chan Message
	// claimed tracks node IDs with a live endpoint; a second Endpoint call
	// for a claimed ID is rejected with ErrDuplicateNode until the first
	// endpoint closes, so late joiners cannot shadow a running node.
	claimed map[string]bool
	closed  bool

	dropRate float64
	maxDelay time.Duration
	faultRNG *rng.RNG
	stats    FaultStats

	//flvet:allow goexec -- transport-internal lifecycle tracking for injected-delay deliveries; no training data flows through it
	wg sync.WaitGroup // tracks delayed deliveries
}

// FaultStats reports how many messages the hub's own injection dropped or
// delayed.
func (n *MemoryNetwork) FaultStats() FaultStats {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.stats
}

// MemoryOption configures failure injection.
type MemoryOption func(*MemoryNetwork)

// WithDropRate makes the network silently discard each message with
// probability p, using the seeded generator for reproducibility.
func WithDropRate(p float64, seed uint64) MemoryOption {
	return func(n *MemoryNetwork) {
		n.dropRate = p
		n.faultRNG = rng.New(seed)
	}
}

// WithDelay delivers each message after a uniform random delay in
// [0, maxDelay], exercising reordering across sender pairs.
func WithDelay(maxDelay time.Duration, seed uint64) MemoryOption {
	return func(n *MemoryNetwork) {
		n.maxDelay = maxDelay
		if n.faultRNG == nil {
			n.faultRNG = rng.New(seed)
		}
	}
}

// NewMemoryNetwork returns an empty hub.
func NewMemoryNetwork(opts ...MemoryOption) *MemoryNetwork {
	n := &MemoryNetwork{inboxes: make(map[string]chan Message), claimed: make(map[string]bool)}
	for _, o := range opts {
		o(n)
	}
	return n
}

// Endpoint registers the endpoint for a node ID. The ID stays claimed until
// the returned endpoint closes; registering it again before then returns
// ErrDuplicateNode. The node's inbox outlives the endpoint, so a later
// (re-)registration — e.g. a planned late join after a clean close — sees
// messages queued in between.
func (n *MemoryNetwork) Endpoint(id string) (Endpoint, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil, ErrClosed
	}
	if n.claimed[id] {
		return nil, fmt.Errorf("%w: %q", ErrDuplicateNode, id)
	}
	n.claimed[id] = true
	if _, ok := n.inboxes[id]; !ok {
		n.inboxes[id] = make(chan Message, inboxSize)
	}
	return &memoryEndpoint{net: n, id: id}, nil
}

// Close shuts the hub down; all blocked receivers return ErrClosed.
func (n *MemoryNetwork) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	for _, ch := range n.inboxes {
		close(ch)
	}
	n.mu.Unlock()
	n.wg.Wait()
	return nil
}

func (n *MemoryNetwork) deliver(msg Message) error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return ErrClosed
	}
	inbox, ok := n.inboxes[msg.To]
	if !ok {
		n.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrUnknownNode, msg.To)
	}
	var delay time.Duration
	if n.faultRNG != nil {
		if n.dropRate > 0 && n.faultRNG.Float64() < n.dropRate {
			n.stats.Dropped++
			n.mu.Unlock()
			return nil // injected loss: sender sees success, receiver nothing
		}
		if n.maxDelay > 0 {
			delay = time.Duration(n.faultRNG.Float64() * float64(n.maxDelay))
			n.stats.Delayed++
		}
	}
	if delay == 0 {
		n.mu.Unlock()
		select {
		case inbox <- msg:
			return nil
		default:
			return fmt.Errorf("transport: inbox of %q full", msg.To)
		}
	}
	n.wg.Add(1)
	n.mu.Unlock()
	timer := time.AfterFunc(delay, func() {
		defer n.wg.Done()
		defer func() {
			// The inbox may close concurrently with delivery; a send on a
			// closed channel panics, which we convert to a dropped message —
			// acceptable during shutdown.
			_ = recover()
		}()
		select {
		case inbox <- msg:
		default:
		}
	})
	_ = timer
	return nil
}

type memoryEndpoint struct {
	net *MemoryNetwork
	id  string
	// released makes Close idempotent: only the first call gives the ID
	// claim back (a second endpoint may hold it by then).
	released bool
}

var _ Endpoint = (*memoryEndpoint)(nil)

func (e *memoryEndpoint) ID() string { return e.id }

func (e *memoryEndpoint) Send(to string, msg Message) error {
	m := msg.Clone()
	m.From = e.id
	m.To = to
	return e.net.deliver(m)
}

func (e *memoryEndpoint) inbox() (chan Message, error) {
	e.net.mu.Lock()
	defer e.net.mu.Unlock()
	if e.net.closed {
		return nil, ErrClosed
	}
	ch, ok := e.net.inboxes[e.id]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownNode, e.id)
	}
	return ch, nil
}

func (e *memoryEndpoint) Recv() (Message, error) {
	ch, err := e.inbox()
	if err != nil {
		return Message{}, err
	}
	msg, ok := <-ch
	if !ok {
		return Message{}, ErrClosed
	}
	return msg, nil
}

func (e *memoryEndpoint) RecvTimeout(d time.Duration) (Message, error) {
	ch, err := e.inbox()
	if err != nil {
		return Message{}, err
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case msg, ok := <-ch:
		if !ok {
			return Message{}, ErrClosed
		}
		return msg, nil
	case <-timer.C:
		return Message{}, fmt.Errorf("%w: %q after %v", ErrTimeout, e.id, d)
	}
}

func (e *memoryEndpoint) Close() error {
	// Closing an endpoint releases its ID claim so the name can be taken
	// again; the inbox stays open (sibling nodes keep running, and queued
	// messages survive for a successor). The hub's Close tears everything
	// down.
	e.net.mu.Lock()
	defer e.net.mu.Unlock()
	if !e.released {
		e.released = true
		delete(e.net.claimed, e.id)
	}
	return nil
}
