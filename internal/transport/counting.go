package transport

import (
	"sync/atomic"
	"time"

	"hieradmo/internal/telemetry"
)

// CountingNetwork wraps any Network and counts the messages and payload
// bytes its endpoints send, for communication-cost accounting in
// experiments (e.g. churn vs static hierarchy traffic). In a fault-free
// run the counts are deterministic: the protocol sends a fixed message
// sequence regardless of scheduling.
type CountingNetwork struct {
	inner Network
	msgs  atomic.Int64
	bytes atomic.Int64
}

// NewCountingNetwork wraps inner with traffic accounting.
func NewCountingNetwork(inner Network) *CountingNetwork {
	return &CountingNetwork{inner: inner}
}

// Endpoint returns a counting endpoint backed by the inner network's.
func (n *CountingNetwork) Endpoint(id string) (Endpoint, error) {
	ep, err := n.inner.Endpoint(id)
	if err != nil {
		return nil, err
	}
	return &countingEndpoint{net: n, inner: ep}, nil
}

// Close tears down the inner network.
func (n *CountingNetwork) Close() error { return n.inner.Close() }

// Traffic reports the totals so far: messages successfully handed to the
// inner network and their payload sizes in bytes.
func (n *CountingNetwork) Traffic() (messages, bytes int64) {
	return n.msgs.Load(), n.bytes.Load()
}

// FaultStats forwards the inner network's fault counters when it has any.
func (n *CountingNetwork) FaultStats() FaultStats {
	if sr, ok := n.inner.(StatsReporter); ok {
		return sr.FaultStats()
	}
	return FaultStats{}
}

// SetTelemetry forwards the sink to the inner network when it accepts one.
func (n *CountingNetwork) SetTelemetry(sink *telemetry.Sink) {
	if ts, ok := n.inner.(TelemetrySetter); ok {
		ts.SetTelemetry(sink)
	}
}

// messageBytes approximates the wire size of a message: 8 bytes per float64
// in vectors and scalars plus the string fields. Constant per message shape,
// so totals stay deterministic.
func messageBytes(m Message) int64 {
	n := int64(len(m.From) + len(m.To) + len(m.Kind) + 8) // header + round
	for _, v := range m.Vectors {
		n += 8 * int64(len(v))
	}
	for k := range m.Scalars {
		n += int64(len(k)) + 8
	}
	return n
}

type countingEndpoint struct {
	net   *CountingNetwork
	inner Endpoint
}

var _ Endpoint = (*countingEndpoint)(nil)

func (e *countingEndpoint) ID() string { return e.inner.ID() }

func (e *countingEndpoint) Send(to string, msg Message) error {
	if err := e.inner.Send(to, msg); err != nil {
		return err
	}
	// The inner transport fills From/To on the wire copy, so size the
	// addressed message here.
	m := msg
	m.From, m.To = e.ID(), to
	e.net.msgs.Add(1)
	e.net.bytes.Add(messageBytes(m))
	return nil
}

func (e *countingEndpoint) Recv() (Message, error) { return e.inner.Recv() }
func (e *countingEndpoint) RecvTimeout(d time.Duration) (Message, error) {
	return e.inner.RecvTimeout(d)
}
func (e *countingEndpoint) Close() error { return e.inner.Close() }
